(* A BMP-inspired monitoring mirror (RFC 7854, version 3).

   BMP is how real deployments watch a BGP speaker from the outside:
   the router streams its received routes (Route Monitoring messages
   wrapping verbatim UPDATE PDUs) and session events (Peer Up / Peer
   Down) to a passive collector, which never talks back. We reproduce
   the wire format faithfully — common header, 42-byte per-peer
   header, network byte order — but deliver the frames in-process: a
   scenario attaches a [collector] to a daemon and every accepted
   UPDATE and session edge is mirrored to it, so a test or the CLI can
   audit "what did the speaker tell the world it learned" without
   touching daemon internals.

   Messages implemented: Route Monitoring (0), Peer Down Notification
   (2), Peer Up Notification (3), Initiation (4). Timestamps come from
   the caller (scenarios pass the simulated clock), keeping recordings
   deterministic. *)

let version = 3
let common_header_size = 6
let per_peer_header_size = 42

type msg_type =
  | Route_monitoring  (** type 0: verbatim UPDATE PDU *)
  | Stats_report  (** type 1 (not emitted) *)
  | Peer_down  (** type 2 *)
  | Peer_up  (** type 3 *)
  | Initiation  (** type 4 *)
  | Termination  (** type 5 (not emitted) *)

let type_code = function
  | Route_monitoring -> 0
  | Stats_report -> 1
  | Peer_down -> 2
  | Peer_up -> 3
  | Initiation -> 4
  | Termination -> 5

let type_of_code = function
  | 0 -> Some Route_monitoring
  | 1 -> Some Stats_report
  | 2 -> Some Peer_down
  | 3 -> Some Peer_up
  | 4 -> Some Initiation
  | 5 -> Some Termination
  | _ -> None

let type_name = function
  | Route_monitoring -> "route_monitoring"
  | Stats_report -> "stats_report"
  | Peer_down -> "peer_down"
  | Peer_up -> "peer_up"
  | Initiation -> "initiation"
  | Termination -> "termination"

(** The monitored peer, as carried in the per-peer header. Addresses
    and BGP identifiers are IPv4 u32s (the per-peer header stores the
    address IPv4-mapped in its 16-byte field). *)
type peer = { addr : int; asn : int; bgp_id : int }

(* --- encoding --- *)

let add_u32 b v = Buffer.add_int32_be b (Int32.of_int (v land 0xFFFFFFFF))

let add_per_peer b (p : peer) ~ts_us =
  Buffer.add_uint8 b 0 (* peer type: global instance *);
  Buffer.add_uint8 b 0 (* flags: IPv4, post-policy *);
  Buffer.add_int64_be b 0L (* peer distinguisher *);
  Buffer.add_string b (String.make 12 '\x00') (* v4-mapped padding *);
  add_u32 b p.addr;
  add_u32 b p.asn;
  add_u32 b p.bgp_id;
  add_u32 b (ts_us / 1_000_000);
  add_u32 b (ts_us mod 1_000_000)

let finish ty body =
  let b = Buffer.create (common_header_size + String.length body) in
  Buffer.add_uint8 b version;
  add_u32 b (common_header_size + String.length body);
  Buffer.add_uint8 b (type_code ty);
  Buffer.add_string b body;
  Buffer.contents b

let route_monitoring ~peer ~ts_us ~update =
  let b = Buffer.create (per_peer_header_size + String.length update) in
  add_per_peer b peer ~ts_us;
  Buffer.add_string b update;
  finish Route_monitoring (Buffer.contents b)

(* A minimal syntactically-valid BGP OPEN for the Peer Up payload when
   the host no longer holds the original (we mirror established
   sessions, not the handshake bytes). *)
let synth_open ~asn ~bgp_id ~hold_time =
  let b = Buffer.create 29 in
  Buffer.add_string b (String.make 16 '\xff');
  Buffer.add_uint16_be b 29;
  Buffer.add_uint8 b 1 (* OPEN *);
  Buffer.add_uint8 b 4 (* BGP-4 *);
  Buffer.add_uint16_be b (asn land 0xFFFF);
  Buffer.add_uint16_be b hold_time;
  add_u32 b bgp_id;
  Buffer.add_uint8 b 0 (* no optional parameters *);
  Buffer.contents b

let peer_up ~peer ~ts_us ~local_addr ~local_asn ~local_bgp_id ~hold_time =
  let b = Buffer.create 128 in
  add_per_peer b peer ~ts_us;
  Buffer.add_string b (String.make 12 '\x00');
  add_u32 b local_addr;
  Buffer.add_uint16_be b 179 (* local port *);
  Buffer.add_uint16_be b 179 (* remote port *);
  Buffer.add_string b (synth_open ~asn:local_asn ~bgp_id:local_bgp_id ~hold_time);
  Buffer.add_string b (synth_open ~asn:peer.asn ~bgp_id:peer.bgp_id ~hold_time);
  finish Peer_up (Buffer.contents b)

(** RFC 7854 §4.9 reason 2: local system closed, no notification. *)
let reason_local_no_notification = 2

(** Reason 4: remote system closed, no notification. *)
let reason_remote_no_notification = 4

let peer_down ~peer ~ts_us ~reason =
  let b = Buffer.create (per_peer_header_size + 1) in
  add_per_peer b peer ~ts_us;
  Buffer.add_uint8 b reason;
  finish Peer_down (Buffer.contents b)

let initiation ~sys_name ~sys_descr =
  let b = Buffer.create 64 in
  let tlv ty s =
    Buffer.add_uint16_be b ty;
    Buffer.add_uint16_be b (String.length s);
    Buffer.add_string b s
  in
  tlv 1 sys_descr;
  tlv 2 sys_name;
  finish Initiation (Buffer.contents b)

(* --- decoding (the collector side) --- *)

let u32_at s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

type parsed_peer = { p_peer : peer; p_ts_us : int }

type msg =
  | Route of parsed_peer * string  (** the wrapped BGP UPDATE PDU *)
  | Up of parsed_peer
  | Down of parsed_peer * int  (** reason code *)
  | Init of (int * string) list  (** information TLVs *)
  | Other of msg_type * string

let parse_per_peer s off =
  {
    p_peer =
      {
        addr = u32_at s (off + 22);
        asn = u32_at s (off + 26);
        bgp_id = u32_at s (off + 30);
      };
    p_ts_us = (u32_at s (off + 34) * 1_000_000) + u32_at s (off + 38);
  }

let parse raw : (msg, string) result =
  let n = String.length raw in
  if n < common_header_size then Error "short BMP header"
  else if Char.code raw.[0] <> version then
    Error (Printf.sprintf "BMP version %d" (Char.code raw.[0]))
  else if u32_at raw 1 <> n then
    Error
      (Printf.sprintf "BMP length %d does not match frame %d" (u32_at raw 1) n)
  else
    match type_of_code (Char.code raw.[5]) with
    | None -> Error (Printf.sprintf "BMP type %d" (Char.code raw.[5]))
    | Some ty -> (
      let body_off = common_header_size in
      let need k = n >= body_off + k in
      match ty with
      | Route_monitoring ->
        if not (need per_peer_header_size) then Error "short per-peer header"
        else
          Ok
            (Route
               ( parse_per_peer raw body_off,
                 String.sub raw
                   (body_off + per_peer_header_size)
                   (n - body_off - per_peer_header_size) ))
      | Peer_up ->
        if not (need per_peer_header_size) then Error "short per-peer header"
        else Ok (Up (parse_per_peer raw body_off))
      | Peer_down ->
        if not (need (per_peer_header_size + 1)) then Error "short peer down"
        else
          Ok
            (Down
               ( parse_per_peer raw body_off,
                 Char.code raw.[body_off + per_peer_header_size] ))
      | Initiation ->
        let tlvs = ref [] in
        let p = ref body_off in
        (try
           while !p + 4 <= n do
             let ty = (Char.code raw.[!p] lsl 8) lor Char.code raw.[!p + 1] in
             let len =
               (Char.code raw.[!p + 2] lsl 8) lor Char.code raw.[!p + 3]
             in
             if !p + 4 + len > n then raise Exit;
             tlvs := (ty, String.sub raw (!p + 4) len) :: !tlvs;
             p := !p + 4 + len
           done
         with Exit -> ());
        Ok (Init (List.rev !tlvs))
      | _ -> Ok (Other (ty, String.sub raw body_off (n - body_off))))

(* --- the passive collector --- *)

type collector = {
  mutable frames : string list;  (** raw frames, newest first *)
  mutable parsed : msg list;  (** newest first *)
  mutable errors : string list;  (** newest first *)
  counts : (string, int ref) Hashtbl.t;
}

let collector () =
  { frames = []; parsed = []; errors = []; counts = Hashtbl.create 8 }

let receive c raw =
  c.frames <- raw :: c.frames;
  match parse raw with
  | Ok m ->
    c.parsed <- m :: c.parsed;
    let key =
      match m with
      | Route _ -> type_name Route_monitoring
      | Up _ -> type_name Peer_up
      | Down _ -> type_name Peer_down
      | Init _ -> type_name Initiation
      | Other (ty, _) -> type_name ty
    in
    (match Hashtbl.find_opt c.counts key with
    | Some r -> incr r
    | None -> Hashtbl.replace c.counts key (ref 1))
  | Error e -> c.errors <- e :: c.errors

let messages c = List.rev c.parsed
let raw_frames c = List.rev c.frames
let errors c = List.rev c.errors
let count c = List.length c.parsed

let count_of c ty =
  match Hashtbl.find_opt c.counts (type_name ty) with
  | Some r -> !r
  | None -> 0

let to_json c =
  let counts =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) c.counts []
    |> List.sort compare
    |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v)
    |> String.concat ","
  in
  Printf.sprintf
    "{\"messages\":%d,\"errors\":%d,\"counts\":{%s}}"
    (count c) (List.length c.errors) counts
