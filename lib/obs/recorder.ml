(* The flight recorder: a bounded binary ring of structured events.

   Airliners keep the last N minutes of everything; so do we. Every
   interesting state change — session FSM transitions, route
   add/replace/withdraw with provenance, update-group splits and merges,
   xprog faults and native fallbacks, map evictions — is framed into a
   preallocated byte ring. When the ring is full the *oldest whole
   records* are evicted to make room, and every eviction is counted:
   under fuzzing, "the history was truncated here" must be a fact in the
   report, never a silent hole.

   Two properties the fuzz and test layers lean on:

   - {b determinism}: the recorder never reads a wall clock. Timestamps
     come from an injectable [clock] (microseconds); scenarios inject
     [Netsim.Sched.now], so a replayed case produces a byte-identical
     recording.
   - {b bounded cost}: one [record] is a few field encodes into a
     scratch buffer plus a blit; nothing downstream of a daemon pays
     unless a recorder was actually attached (the hosts keep
     [Recorder.t option] and skip the call entirely on [None]).

   Frame layout, little-endian, designed so a reader can walk the ring
   front to back with no index structure:

     [u16 frame_len][u32 seqno][u64 ts_us][u8 kind][payload]

   where [payload] is a field list, each field
   [u8 key_len][key][u16 val_len][value]. [frame_len] covers the whole
   frame including the header. *)

type kind =
  | Session_transition
  | Route_add
  | Route_replace
  | Route_withdraw
  | Group_split
  | Group_merge
  | Group_rekey
  | Xprog_fault
  | Native_fallback
  | Map_evict
  | Note  (** free-form marker (scenario phase labels, test annotations) *)

let all_kinds =
  [
    Session_transition;
    Route_add;
    Route_replace;
    Route_withdraw;
    Group_split;
    Group_merge;
    Group_rekey;
    Xprog_fault;
    Native_fallback;
    Map_evict;
    Note;
  ]

let kind_code = function
  | Session_transition -> 0
  | Route_add -> 1
  | Route_replace -> 2
  | Route_withdraw -> 3
  | Group_split -> 4
  | Group_merge -> 5
  | Group_rekey -> 6
  | Xprog_fault -> 7
  | Native_fallback -> 8
  | Map_evict -> 9
  | Note -> 10

let kind_of_code = function
  | 0 -> Session_transition
  | 1 -> Route_add
  | 2 -> Route_replace
  | 3 -> Route_withdraw
  | 4 -> Group_split
  | 5 -> Group_merge
  | 6 -> Group_rekey
  | 7 -> Xprog_fault
  | 8 -> Native_fallback
  | 9 -> Map_evict
  | 10 -> Note
  | n -> invalid_arg (Printf.sprintf "Recorder.kind_of_code: %d" n)

let kind_name = function
  | Session_transition -> "session"
  | Route_add -> "route_add"
  | Route_replace -> "route_replace"
  | Route_withdraw -> "route_withdraw"
  | Group_split -> "group_split"
  | Group_merge -> "group_merge"
  | Group_rekey -> "group_rekey"
  | Xprog_fault -> "xprog_fault"
  | Native_fallback -> "native_fallback"
  | Map_evict -> "map_evict"
  | Note -> "note"

type event = {
  seq : int;
  ts_us : int;
  kind : kind;
  fields : (string * string) list;  (** in record order *)
}

type t = {
  buf : Bytes.t;
  cap : int;
  mutable head : int;  (** ring offset of the oldest frame *)
  mutable used : int;  (** live bytes in the ring *)
  mutable count : int;  (** live frames in the ring *)
  mutable next_seq : int;
  mutable clock_us : unit -> int;
  c_dropped : Telemetry.Counter.t;
  c_events : Telemetry.Counter.t array;  (** indexed by [kind_code] *)
  g_bytes : Telemetry.Gauge.t;
  scratch : Buffer.t;
}

let frame_header = 2 + 4 + 8 + 1

let default_capacity = 1 lsl 16 (* 64 KiB: thousands of events *)

let create ?(capacity = default_capacity) ?telemetry ?(name = "recorder") () =
  if capacity < 256 then invalid_arg "Recorder.create: capacity < 256";
  let tele =
    match telemetry with
    | Some t -> t
    | None -> Telemetry.create ~enabled:false ()
  in
  let labels = [ ("recorder", name) ] in
  {
    buf = Bytes.create capacity;
    cap = capacity;
    head = 0;
    used = 0;
    count = 0;
    next_seq = 0;
    clock_us = (fun () -> 0);
    c_dropped =
      Telemetry.counter tele
        ~help:"flight-recorder events evicted by ring overflow"
        ~name:"xbgp_recorder_dropped_total" ~labels ();
    c_events =
      Array.of_list
        (List.map
           (fun k ->
             Telemetry.counter tele ~help:"flight-recorder events recorded"
               ~name:"xbgp_recorder_events_total"
               ~labels:(("kind", kind_name k) :: labels)
               ())
           all_kinds);
    g_bytes =
      Telemetry.gauge tele
        ~help:"flight-recorder ring occupancy in bytes (max = high water)"
        ~name:"xbgp_recorder_bytes" ~labels ();
    scratch = Buffer.create 256;
  }

let set_clock t f = t.clock_us <- f
let dropped t = Telemetry.Counter.value t.c_dropped
let next_seq t = t.next_seq
let length t = t.count
let capacity t = t.cap

(* --- ring primitives: all offsets are mod cap, frames may wrap --- *)

let ring_read_u8 t off = Bytes.get_uint8 t.buf (off mod t.cap)

let ring_read_u16 t off =
  ring_read_u8 t off lor (ring_read_u8 t (off + 1) lsl 8)

let ring_read_u32 t off =
  ring_read_u16 t off lor (ring_read_u16 t (off + 2) lsl 16)

let ring_read_u64 t off =
  ring_read_u32 t off lor (ring_read_u32 t (off + 4) lsl 32)

let ring_write_string t off s =
  let n = String.length s in
  let off = off mod t.cap in
  let first = min n (t.cap - off) in
  Bytes.blit_string s 0 t.buf off first;
  if first < n then Bytes.blit_string s first t.buf 0 (n - first)

let ring_read_string t off n =
  let b = Bytes.create n in
  let off = off mod t.cap in
  let first = min n (t.cap - off) in
  Bytes.blit t.buf off b 0 first;
  if first < n then Bytes.blit t.buf 0 b first (n - first);
  Bytes.unsafe_to_string b

(* Evict the oldest frame. *)
let evict t =
  let len = ring_read_u16 t t.head in
  t.head <- (t.head + len) mod t.cap;
  t.used <- t.used - len;
  t.count <- t.count - 1;
  Telemetry.Counter.inc t.c_dropped

let record t kind fields =
  let b = t.scratch in
  Buffer.clear b;
  List.iter
    (fun (k, v) ->
      let kl = min (String.length k) 255
      and vl = min (String.length v) 0xFFFF in
      Buffer.add_uint8 b kl;
      Buffer.add_substring b k 0 kl;
      Buffer.add_uint16_le b vl;
      Buffer.add_substring b v 0 vl)
    fields;
  let payload = Buffer.contents b in
  let len = frame_header + String.length payload in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Telemetry.Counter.inc t.c_events.(kind_code kind);
  if len > t.cap then
    (* a frame that cannot fit even in an empty ring is itself a drop *)
    Telemetry.Counter.inc t.c_dropped
  else begin
    while t.used + len > t.cap do
      evict t
    done;
    let off = t.head + t.used in
    Buffer.clear b;
    Buffer.add_uint16_le b len;
    Buffer.add_int32_le b (Int32.of_int seq);
    Buffer.add_int64_le b (Int64.of_int (t.clock_us ()));
    Buffer.add_uint8 b (kind_code kind);
    Buffer.add_string b payload;
    ring_write_string t off (Buffer.contents b);
    t.used <- t.used + len;
    t.count <- t.count + 1;
    Telemetry.Gauge.set t.g_bytes t.used
  end

(* --- decoding --- *)

let decode_frame t off =
  let len = ring_read_u16 t off in
  let seq = ring_read_u32 t (off + 2) in
  let ts_us = ring_read_u64 t (off + 6) in
  let kind = kind_of_code (ring_read_u8 t (off + 14)) in
  let fields = ref [] in
  let p = ref (off + frame_header) in
  let stop = off + len in
  while !p < stop do
    let kl = ring_read_u8 t !p in
    let key = ring_read_string t (!p + 1) kl in
    let vl = ring_read_u16 t (!p + 1 + kl) in
    let value = ring_read_string t (!p + 3 + kl) vl in
    fields := (key, value) :: !fields;
    p := !p + 3 + kl + vl
  done;
  ({ seq; ts_us; kind; fields = List.rev !fields }, len)

let fold t f acc =
  let acc = ref acc in
  let off = ref t.head in
  for _ = 1 to t.count do
    let ev, len = decode_frame t !off in
    acc := f !acc ev;
    off := !off + len
  done;
  !acc

let events t = List.rev (fold t (fun acc ev -> ev :: acc) [])

let since t seq =
  List.rev
    (fold t (fun acc ev -> if ev.seq >= seq then ev :: acc else acc) [])

let tail ?(n = 20) t =
  let evs = fold t (fun acc ev -> ev :: acc) [] in
  let rec take k = function
    | ev :: rest when k > 0 -> ev :: take (k - 1) rest
    | _ -> []
  in
  List.rev (take n evs)

(* --- rendering --- *)

let event_to_text ev =
  let fields =
    String.concat " "
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ev.fields)
  in
  Printf.sprintf "#%d %dus %s%s" ev.seq ev.ts_us (kind_name ev.kind)
    (if fields = "" then "" else " " ^ fields)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_to_json ev =
  let fields =
    String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "%S:\"%s\"" (json_escape k) (json_escape v))
         ev.fields)
  in
  Printf.sprintf "{\"seq\":%d,\"ts_us\":%d,\"kind\":\"%s\",\"fields\":{%s}}"
    ev.seq ev.ts_us (kind_name ev.kind) fields

let to_json ?(since = 0) t =
  let evs =
    List.rev
      (fold t (fun acc ev -> if ev.seq >= since then ev :: acc else acc) [])
  in
  Printf.sprintf
    "{\"next_seq\":%d,\"dropped\":%d,\"events\":[%s]}"
    t.next_seq (dropped t)
    (String.concat "," (List.map event_to_json evs))

(* The last-N tail a fuzz divergence report attaches next to the fault
   records: one line per event, oldest first, prefixed so the report
   reads as one block. *)
let tail_lines ?(n = 20) ?(prefix = "  ") t =
  List.map (fun ev -> prefix ^ event_to_text ev) (tail ~n t)
