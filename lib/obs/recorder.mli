(** The flight recorder: a bounded binary ring of structured events.

    Sessions, routes, update groups, xprog faults and map evictions all
    report here; the ring keeps the most recent history, evicts the
    oldest whole records on overflow and counts every eviction in
    [xbgp_recorder_dropped_total] — truncation is observable, never
    silent. Timestamps come from an injectable microsecond clock so a
    recording made under [Netsim.Sched] is deterministic and
    byte-reproducible. *)

type kind =
  | Session_transition
  | Route_add
  | Route_replace
  | Route_withdraw
  | Group_split
  | Group_merge
  | Group_rekey
  | Xprog_fault
  | Native_fallback
  | Map_evict
  | Note  (** free-form marker (scenario phase labels, test annotations) *)

val all_kinds : kind list
val kind_name : kind -> string

type event = {
  seq : int;  (** monotonically increasing, never reused *)
  ts_us : int;  (** injectable clock at record time *)
  kind : kind;
  fields : (string * string) list;  (** in record order *)
}

type t

val create : ?capacity:int -> ?telemetry:Telemetry.t -> ?name:string ->
  unit -> t
(** [capacity] is the ring size in bytes (default 64 KiB, minimum 256).
    [telemetry] receives [xbgp_recorder_events_total{kind}],
    [xbgp_recorder_dropped_total] and the [xbgp_recorder_bytes]
    occupancy gauge; [name] labels them when several recorders share a
    registry. *)

val set_clock : t -> (unit -> int) -> unit
(** Install the microsecond clock (scenarios inject the simulated
    scheduler's [now]). Default: a constant 0. *)

val record : t -> kind -> (string * string) list -> unit
(** Frame and append one event. Field keys are truncated at 255 bytes,
    values at 65535. On overflow the oldest whole frames are evicted
    (and counted) until the new frame fits. *)

val events : t -> event list
(** Every event still in the ring, oldest first. *)

val tail : ?n:int -> t -> event list
(** The last [n] (default 20) events, oldest first. *)

val since : t -> int -> event list
(** Events with [seq >=] the given seqno, oldest first. *)

val dropped : t -> int
(** Events evicted by overflow since creation. *)

val next_seq : t -> int
(** The seqno the next [record] will take (= events ever recorded). *)

val length : t -> int
(** Events currently held. *)

val capacity : t -> int

val event_to_text : event -> string
(** ["#seq TSus kind k=v k=v"]. *)

val event_to_json : event -> string

val to_json : ?since:int -> t -> string
(** [{"next_seq":..,"dropped":..,"events":[..]}]. *)

val tail_lines : ?n:int -> ?prefix:string -> t -> string list
(** The last-N tail as report lines (oldest first) — what fuzz
    divergence reports attach next to their fault records. *)

val json_escape : string -> string
(** Minimal JSON string escaping, shared by the obs emitters. *)
