(** Per-route provenance: the compact "why is this route here?" record
    kept by both daemons for the latest import of each prefix.

    A record names the ingress peer, replays the import chain that ran
    (per bytecode: program, engine, dynamic outcome, whether it may
    mutate attributes, which maps it may write) and explains the
    decision process's disposal (winning tie-break step vs the closest
    runner-up, only-candidate, or an attached BGP_DECISION extension).

    Determinism contract: records carry no run counters or timestamps,
    so the same route must yield {!equal} records through the batched
    and per-prefix import paths and through grouped and per-peer
    export. *)

type step = {
  program : string;
  bytecode : string;
  engine : string;
  outcome : string;
      (** "accept" / "reject" / "next()" / "fault" / "ret=N" *)
  attrs_mutated : bool;
      (** statically: calls set_attr/add_attr/remove_attr *)
  maps_written : string list;  (** statically: maps it may write *)
}

type decision =
  | Only_candidate
  | Best of { runner_up : string; step : int; step_name : string }
      (** [step] is the 1-based RFC 4271 tie-break step separating it
          from the runner-up; [0] = tied (arrival order decided) *)
  | Shadowed of { best : string; step : int; step_name : string }
  | Xprog_decided of { runner_up : string }

type status = Installed | Candidate | Rejected | Withdrawn

type t = {
  prefix : string;
  ingress : string;  (** ["peer <name> (AS <n>)"] or ["local"] *)
  chain : step list;
  import : string;
      (** "accepted" / "accepted (native)" / "rejected: <why>" *)
  decision : decision option;
  status : status;
}

val status_name : status -> string
val equal : t -> t -> bool

val to_text : t -> string
(** Multi-line operator-facing rendering (what [show provenance]
    prints). *)

val to_json : t -> string
val step_to_text : step -> string
val decision_to_text : decision -> string

val summary : t -> string
(** One-line digest used in flight-recorder route events. *)
