(** BMP-inspired monitoring mirror (RFC 7854 v3): wire-faithful
    encoders for Route Monitoring / Peer Up / Peer Down / Initiation
    messages plus an in-process passive collector. Scenarios attach a
    {!collector} to a daemon; the daemon mirrors every accepted UPDATE
    and session edge to it, so tests and the CLI can audit the
    speaker's announced state from the outside. *)

type msg_type =
  | Route_monitoring
  | Stats_report
  | Peer_down
  | Peer_up
  | Initiation
  | Termination

val type_name : msg_type -> string

type peer = { addr : int; asn : int; bgp_id : int }
(** The monitored peer as carried in the 42-byte per-peer header
    (IPv4 u32s, v4-mapped into the 16-byte address field). *)

val route_monitoring : peer:peer -> ts_us:int -> update:string -> string
(** Frame one received BGP UPDATE PDU (verbatim) for the collector. *)

val peer_up :
  peer:peer ->
  ts_us:int ->
  local_addr:int ->
  local_asn:int ->
  local_bgp_id:int ->
  hold_time:int ->
  string
(** Session reached Established; OPENs are synthesized (we mirror the
    established session, not the handshake bytes). *)

val peer_down : peer:peer -> ts_us:int -> reason:int -> string

val reason_local_no_notification : int
val reason_remote_no_notification : int

val initiation : sys_name:string -> sys_descr:string -> string

(** {1 Collector} *)

type parsed_peer = { p_peer : peer; p_ts_us : int }

type msg =
  | Route of parsed_peer * string  (** the wrapped BGP UPDATE PDU *)
  | Up of parsed_peer
  | Down of parsed_peer * int  (** reason code *)
  | Init of (int * string) list
  | Other of msg_type * string

val parse : string -> (msg, string) result

type collector

val collector : unit -> collector

val receive : collector -> string -> unit
(** Feed one raw frame; parse failures are retained in {!errors}. *)

val messages : collector -> msg list
(** Parsed messages, oldest first. *)

val raw_frames : collector -> string list
(** Raw frames, oldest first. *)

val errors : collector -> string list
val count : collector -> int
val count_of : collector -> msg_type -> int
val to_json : collector -> string
