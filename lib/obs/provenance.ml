(* Per-route provenance: the compact "why is this route here?" record.

   The paper's accountability worry is that once operator-shipped
   extensions can rewrite attributes and filter routes, `show ip bgp`
   stops explaining the RIB: the answer now involves which bytecodes
   ran, what each returned, and what it was allowed to touch. A
   provenance record captures exactly that, for the *latest* import of
   each prefix:

   - where the route came from (ingress peer, or locally originated);
   - the import chain that ran: per bytecode its program, engine,
     outcome (accept / reject / next()/ fault), whether it may mutate
     route attributes and which maps it may write — the static half
     comes from [Xprog.dispatch_summary], the dynamic half from the
     VMM's last-dispatch trace;
   - the import verdict (native policy counts too);
   - the decision outcome: which RFC 4271 step separated this route
     from the runner-up, or that it was the only candidate, or that an
     attached BGP_DECISION extension made the call.

   Determinism contract: a record contains no run counters, no
   timestamps and no engine-internal state, so the same route arriving
   through the batched fast path, the per-prefix path, a grouped or a
   per-peer export MUST produce equal records — test_provenance.ml and
   the CLI's byte-identity check enforce it. *)

type step = {
  program : string;
  bytecode : string;
  engine : string;
  outcome : string;
      (** "accept" / "reject" / "next()" / "fault" / "ret=N" — the
          dynamic verdict of this bytecode in the recorded dispatch *)
  attrs_mutated : bool;
      (** statically: the bytecode calls set_attr/add_attr/remove_attr *)
  maps_written : string list;
      (** statically: map names it may update or delete *)
}

(** How the decision process disposed of the route, once imported. *)
type decision =
  | Only_candidate  (** installed without comparison *)
  | Best of { runner_up : string; step : int; step_name : string }
      (** won; [step] is the 1-based RFC 4271 tie-break step that
          separated it from the closest runner-up ([0] = tied, broken
          by arrival order) *)
  | Shadowed of { best : string; step : int; step_name : string }
      (** lost to [best] at [step] — kept as a candidate only *)
  | Xprog_decided of { runner_up : string }
      (** a BGP_DECISION extension chain ordered the candidates *)

type status = Installed | Candidate | Rejected | Withdrawn

type t = {
  prefix : string;
  ingress : string;  (** "peer <name> (AS <n>)" or "local" *)
  chain : step list;  (** import chain, execution order; [] = none *)
  import : string;
      (** "accepted" / "accepted (native)" / "rejected: <why>" *)
  decision : decision option;  (** [None] until the decision process ran *)
  status : status;
}

let status_name = function
  | Installed -> "installed"
  | Candidate -> "candidate"
  | Rejected -> "rejected"
  | Withdrawn -> "withdrawn"

let equal (a : t) (b : t) = a = b

(* --- rendering --- *)

let decision_to_text = function
  | Only_candidate -> "only candidate"
  | Best { runner_up; step = 0; _ } ->
    Printf.sprintf "best (tied with %s, first installed wins)" runner_up
  | Best { runner_up; step; step_name } ->
    Printf.sprintf "best: beats %s at step %d (%s)" runner_up step step_name
  | Shadowed { best; step = 0; _ } ->
    Printf.sprintf "candidate (tied with installed %s)" best
  | Shadowed { best; step; step_name } ->
    Printf.sprintf "candidate: loses to %s at step %d (%s)" best step
      step_name
  | Xprog_decided { runner_up } ->
    Printf.sprintf "best: BGP_DECISION extension preferred it over %s"
      runner_up

let step_to_text s =
  Printf.sprintf "%s/%s [%s] -> %s%s%s" s.program s.bytecode s.engine
    s.outcome
    (if s.attrs_mutated then " (mutates attrs)" else "")
    (match s.maps_written with
    | [] -> ""
    | ms -> Printf.sprintf " (writes maps: %s)" (String.concat "," ms))

let to_text t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %s\n  from: %s\n" t.prefix (status_name t.status)
       t.ingress);
  (match t.chain with
  | [] -> Buffer.add_string b "  import chain: (none attached)\n"
  | steps ->
    Buffer.add_string b "  import chain:\n";
    List.iter
      (fun s -> Buffer.add_string b ("    " ^ step_to_text s ^ "\n"))
      steps);
  Buffer.add_string b (Printf.sprintf "  import: %s\n" t.import);
  (match t.decision with
  | None -> ()
  | Some d ->
    Buffer.add_string b
      (Printf.sprintf "  decision: %s\n" (decision_to_text d)));
  Buffer.contents b

let js = Recorder.json_escape

let step_to_json s =
  Printf.sprintf
    "{\"program\":\"%s\",\"bytecode\":\"%s\",\"engine\":\"%s\",\
     \"outcome\":\"%s\",\"attrs_mutated\":%b,\"maps_written\":[%s]}"
    (js s.program) (js s.bytecode) (js s.engine) (js s.outcome)
    s.attrs_mutated
    (String.concat ","
       (List.map (fun m -> Printf.sprintf "\"%s\"" (js m)) s.maps_written))

let decision_to_json = function
  | Only_candidate -> "{\"kind\":\"only_candidate\"}"
  | Best { runner_up; step; step_name } ->
    Printf.sprintf
      "{\"kind\":\"best\",\"runner_up\":\"%s\",\"step\":%d,\
       \"step_name\":\"%s\"}"
      (js runner_up) step (js step_name)
  | Shadowed { best; step; step_name } ->
    Printf.sprintf
      "{\"kind\":\"shadowed\",\"best\":\"%s\",\"step\":%d,\
       \"step_name\":\"%s\"}"
      (js best) step (js step_name)
  | Xprog_decided { runner_up } ->
    Printf.sprintf "{\"kind\":\"xprog_decided\",\"runner_up\":\"%s\"}"
      (js runner_up)

let to_json t =
  Printf.sprintf
    "{\"prefix\":\"%s\",\"status\":\"%s\",\"ingress\":\"%s\",\
     \"chain\":[%s],\"import\":\"%s\",\"decision\":%s}"
    (js t.prefix) (status_name t.status) (js t.ingress)
    (String.concat "," (List.map step_to_json t.chain))
    (js t.import)
    (match t.decision with None -> "null" | Some d -> decision_to_json d)

(* One-line summary for recorder events: compact enough for ring frames,
   detailed enough that a divergence tail explains itself. *)
let summary t =
  Printf.sprintf "%s from=%s import=%s chain=[%s]%s" (status_name t.status)
    t.ingress t.import
    (String.concat ";"
       (List.map (fun s -> s.program ^ ":" ^ s.outcome) t.chain))
    (match t.decision with
    | None -> ""
    | Some d -> " decision=" ^ decision_to_text d)
