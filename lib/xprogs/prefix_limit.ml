(* A stateful per-peer max-prefix limit, in the spirit of §3.1: "since
   the xBGP API provides access to the data structures maintained by a
   BGP implementation, network operators can leverage it to implement new
   filters".

   Vendors expose max-prefix as a per-session knob; here it is thirty
   lines of bytecode plus a map. The [import] bytecode counts the routes
   accepted from each peer (map 0, keyed by peer address) and rejects
   anything beyond get_xtra("max_prefix"). The count approximates the
   Adj-RIB-In size: implicit replacements and withdrawals are not
   decremented, which operators usually accept (real implementations tear
   the session down at the threshold anyway — rejecting is our gentler
   variant). *)

open Ebpf.Asm
open Ebpf.Insn

let key = "max_prefix"
let key_at = -32

let import =
  assemble
    (List.concat
       [
         Util.store_cstring ~at:key_at key;
         [
           mov R1 R10;
           addi R1 key_at;
           call Xbgp.Api.h_get_xtra;
           jeqi R0 0 "defer";
           (* no limit configured *)
           ldxw R6 R0 4;
           be32 R6;
           (* r6 = limit *)
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "defer";
           ldxw R1 R0 Xbgp.Api.pi_peer_addr;
           stxw R10 (-8) R1;
           (* current count for this peer *)
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           call Xbgp.Api.h_map_lookup;
           movi R7 0;
           jeqi R0 0 "have_count";
           ldxw R7 R0 0;
           label "have_count";
           jge R7 R6 "reject";
           (* count + 1 back into the map *)
           addi R7 1;
           stxw R10 (-16) R7;
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           mov R3 R10;
           addi R3 (-16);
           call Xbgp.Api.h_map_update;
           label "defer";
         ];
         Util.tail_next;
         [ label "reject"; movi R0 1; exit_ ];
       ])

let program =
  Xbgp.Xprog.v ~name:"prefix_limit"
    (* the per-peer counter is keyed by PEER, not prefix, so it cannot
       be partitioned by prefix hash: per-shard instances would each
       count their shard's subsequence and trip the limit late. One
       shared instance keeps the count global — and, because shared-map
       writes are not shard-parallel-safe, correctly pins this chain to
       the serial import lane under a sharded daemon. *)
    ~maps:
      [ Xbgp.Xprog.map ~name:"seen" ~shared:true ~key_size:4 ~value_size:4 () ]
    ~allowed_helpers:
      Xbgp.Api.
        [ h_next; h_get_peer_info; h_get_xtra; h_map_lookup; h_map_update ]
    [ ("import", import) ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "prefix_limit" ]
    ~attachments:
      [
        {
          program = "prefix_limit";
          bytecode = "import";
          point = Xbgp.Api.Bgp_inbound_filter;
          order = 0;
        };
      ]
