(** The bytecode registry: resolves the program names a manifest mentions
    to their compiled artifacts — the moral equivalent of the directory
    of .o files the real libxbgp loads from disk. *)

val all : Xbgp.Xprog.t list
val find : string -> Xbgp.Xprog.t option

val manifests : (string * Xbgp.Manifest.t) list
(** Stock attachment manifests by program name — the menu the fuzzer and
    the CLI draw from. *)

val find_manifest : string -> Xbgp.Manifest.t option

val vmm_of_manifest :
  ?heap_size:int ->
  ?budget:int ->
  ?engine:Ebpf.Vm.engine ->
  ?telemetry:Telemetry.t ->
  ?shards:int ->
  host:string ->
  Xbgp.Manifest.t ->
  Xbgp.Vmm.t
(** Build a VMM for [host] and load the manifest into it. [shards]
    (default 1) partitions the VMM {e before} the load — a VMM refuses
    to re-partition once programs are attached.
    @raise Invalid_argument when the manifest does not apply cleanly. *)
