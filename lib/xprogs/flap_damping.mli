(** Route-flap damping (RFC 2439), event-driven: withdrawals add
    penalty to a per-prefix LRU map entry, announcements decay it; a
    prefix over the cut-off threshold is suppressed until its penalty
    falls below the reuse threshold.

    See the .ml for the annotated bytecode. *)

val penalty_per_flap : int
val penalty_cap : int
val suppress_threshold : int
val reuse_threshold : int

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
