(* The bytecode registry: resolves the program names a manifest mentions
   to their compiled artifacts — the moral equivalent of the directory of
   .o files the real libxbgp loads from disk. *)

let all : Xbgp.Xprog.t list =
  [
    Igp_filter.program;
    Route_reflector.program;
    Origin_validation.program;
    Valley_free.program;
    Geoloc.program;
    Med_compare.program;
    Prefix_limit.program;
    Community_strip.program;
    Flap_damping.program;
    Rate_limit.program;
  ]

let find name =
  List.find_opt (fun (p : Xbgp.Xprog.t) -> p.name = name) all

(* Stock attachment manifests, by program name — the menu the fuzzer and
   the CLI draw from. *)
let manifests =
  [
    ("igp_filter", Igp_filter.manifest);
    ("route_reflector", Route_reflector.manifest);
    ("origin_validation", Origin_validation.manifest);
    ("valley_free", Valley_free.manifest);
    ("geoloc", Geoloc.manifest);
    ("med_compare", Med_compare.manifest);
    ("prefix_limit", Prefix_limit.manifest);
    ("community_strip", Community_strip.manifest);
    ("flap_damping", Flap_damping.manifest);
    ("rate_limit", Rate_limit.manifest);
  ]

let find_manifest name = List.assoc_opt name manifests

(** Build a VMM for [host] and load [manifest] into it. [shards] must be
    set here, before the load, because a VMM refuses to re-partition
    once programs are attached.
    @raise Invalid_argument when the manifest does not apply cleanly. *)
let vmm_of_manifest ?heap_size ?budget ?engine ?telemetry ?(shards = 1) ~host
    manifest =
  let vmm = Xbgp.Vmm.create ?heap_size ?budget ?engine ?telemetry ~host () in
  (if shards > 1 then
     match Xbgp.Vmm.set_shards vmm shards with
     | Ok () -> ()
     | Error e -> invalid_arg ("Registry.vmm_of_manifest: " ^ e));
  (match Xbgp.Manifest.load vmm ~registry:find manifest with
  | Ok () -> ()
  | Error e -> invalid_arg ("Registry.vmm_of_manifest: " ^ e));
  vmm
