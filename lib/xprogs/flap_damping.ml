(* Route-flap damping (RFC 2439), the canonical stateful extension: the
   paper's §3 argues operators should not have to wait for vendors to
   ship policy like this, and with maps it is two bytecodes.

   Per-prefix penalty state lives in map 0 ("damp", LRU): 8-byte key
   [addr u32 BE][plen u8][pad3], 8-byte value [penalty u32 LE]
   [suppressed u32 LE].

   The adaptation is event-driven — our simulated daemons have no wall
   clock, so instead of RFC 2439's exponential time decay the penalty
   decays by a quarter on every announcement of the prefix:

   - [receive] (BGP_RECEIVE_MESSAGE) parses the UPDATE body's WITHDRAWN
     ROUTES section and adds 1000 to each withdrawn prefix's penalty
     (capped at 5000), setting the suppressed flag at 2500 (RFC 2439's
     cut-off threshold);
   - [import] (BGP_INBOUND_FILTER) runs per announced prefix: decay the
     penalty, and while the flag is set reject the route until the
     penalty falls below 700 (the reuse threshold), then clear the flag
     and let the chain decide.

   So a prefix that flaps (withdraw+announce) four times is suppressed,
   and a few clean announcements later it is usable again. Prefixes with
   no damping state cost one miss and defer straight to the chain. *)

open Ebpf.Asm
open Ebpf.Insn

let penalty_per_flap = 1000
let penalty_cap = 5000
let suppress_threshold = 2500
let reuse_threshold = 700

(* Stack frame (both bytecodes):
   r10-16 .. r10-9  : map key  [addr BE][plen][pad3]
   r10-24 .. r10-17 : map value [penalty u32 LE][flags u32 LE] *)

(* Walk the withdrawn-routes section: [withdrawn_len u16 BE] then
   (plen u8, ceil(plen/8) addr bytes)*. Loop state lives in r6 (cursor)
   and r7 (section end) — the only registers the map helpers preserve
   besides r8/r9. *)
let receive =
  assemble
    (List.concat
       [
         [
           movi R1 Xbgp.Api.arg_update_payload;
           call Xbgp.Api.h_get_arg;
           jeqi R0 0 "done";
           ldxw R7 R0 0;
           (* blob header: body length *)
           jlti R7 2 "done";
           mov R6 R0;
           addi R6 Xbgp.Api.blob_header_size;
           ldxh R8 R6 0;
           be16 R8;
           (* r8 = withdrawn-section bytes *)
           addi R6 2;
           mov R7 R6;
           add R7 R8;
           (* r7 = end of withdrawn section *)
           label "loop";
           jge R6 R7 "done";
           (* build the key: zero pad, then plen, then addr bytes *)
           stdw R10 (-16) 0;
           ldxb R1 R6 0;
           stxb R10 (-12) R1;
           (* nbytes = (plen + 7) / 8 *)
           mov R2 R1;
           addi R2 7;
           rshi R2 3;
           addi R6 1;
           (* accumulate the encoded address bytes, MSB first *)
           movi R4 0;
           movi R3 0;
           label "addr";
           jge R3 R2 "addr_done";
           lshi R4 8;
           ldxb R5 R6 0;
           or_ R4 R5;
           addi R6 1;
           addi R3 1;
           ja "addr";
           label "addr_done";
           (* left-align: shift by 8*(4 - nbytes) *)
           movi R1 4;
           sub R1 R2;
           muli R1 8;
           lsh R4 R1;
           be32 R4;
           stxw R10 (-16) R4;
           (* current value, or zeroes for a fresh prefix *)
           movi R1 0;
           mov R2 R10;
           addi R2 (-16);
           call Xbgp.Api.h_map_lookup;
           stdw R10 (-24) 0;
           jeqi R0 0 "fresh";
           ldxdw R1 R0 0;
           stxdw R10 (-24) R1;
           label "fresh";
           ldxw R8 R10 (-24);
           addi R8 penalty_per_flap;
           jlti R8 penalty_cap "capped";
           movi R8 penalty_cap;
           label "capped";
           stxw R10 (-24) R8;
           jlti R8 suppress_threshold "store";
           movi R1 1;
           stxw R10 (-20) R1;
           label "store";
           movi R1 0;
           mov R2 R10;
           addi R2 (-16);
           mov R3 R10;
           addi R3 (-24);
           call Xbgp.Api.h_map_update;
           ja "loop";
           label "done";
         ];
         Util.tail_next;
       ])

(* Per announced prefix: arg_prefix is [addr u32 BE][plen u8]; the blob
   bytes are copied verbatim into the key (an LE load + LE store
   round-trips the BE bytes unchanged). *)
let import =
  assemble
    (List.concat
       [
         [
           movi R1 Xbgp.Api.arg_prefix;
           call Xbgp.Api.h_get_arg;
           jeqi R0 0 "defer";
           stdw R10 (-16) 0;
           ldxw R1 R0 Xbgp.Api.blob_header_size;
           stxw R10 (-16) R1;
           ldxb R1 R0 (Xbgp.Api.blob_header_size + 4);
           stxb R10 (-12) R1;
           movi R1 0;
           mov R2 R10;
           addi R2 (-16);
           call Xbgp.Api.h_map_lookup;
           jeqi R0 0 "defer";
           (* no damping state: let the chain decide *)
           ldxw R7 R0 0;
           (* penalty *)
           ldxw R8 R0 4;
           (* suppressed flag *)
           (* decay on announcement: p -= p/4 *)
           mov R1 R7;
           rshi R1 2;
           sub R7 R1;
           movi R9 0;
           (* r9 = verdict (1 = reject) *)
           jeqi R8 0 "store";
           jlti R7 reuse_threshold "reuse";
           movi R9 1;
           ja "store";
           label "reuse";
           movi R8 0;
           label "store";
           stxw R10 (-24) R7;
           stxw R10 (-20) R8;
           movi R1 0;
           mov R2 R10;
           addi R2 (-16);
           mov R3 R10;
           addi R3 (-24);
           call Xbgp.Api.h_map_update;
           jeqi R9 1 "reject";
           label "defer";
         ];
         Util.tail_next;
         [ label "reject"; movi R0 1; exit_ ];
       ])

let program =
  Xbgp.Xprog.v ~name:"flap_damping"
    ~maps:
      [
        (* shared across VMM shards: the receive-point bytecode (a
           control point, shard 0) and the import-point bytecode (routed
           by prefix) read and write the same damping state *)
        Xbgp.Xprog.map ~name:"damp" ~kind:Ebpf.Map.Lru ~max_entries:256
          ~key_size:8 ~value_size:8 ~shared:true ();
      ]
    ~allowed_helpers:
      Xbgp.Api.[ h_next; h_get_arg; h_map_lookup; h_map_update ]
    [ ("receive", receive); ("import", import) ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "flap_damping" ]
    ~attachments:
      [
        {
          program = "flap_damping";
          bytecode = "receive";
          point = Xbgp.Api.Bgp_receive_message;
          order = 0;
        };
        {
          program = "flap_damping";
          bytecode = "import";
          point = Xbgp.Api.Bgp_inbound_filter;
          order = 5;
        };
      ]
