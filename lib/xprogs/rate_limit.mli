(** Per-peer prefix-rate limiting: a per-peer-array map window counts
    the prefixes each UPDATE announces; beyond get_xtra("rate_limit")
    prefixes are rejected and a cumulative per-peer drop counter is
    kept in the map.

    See the .ml for the annotated bytecode. *)

val slots : int
(** Array-map slots; peers hash in by [peer_addr mod slots]. *)

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
