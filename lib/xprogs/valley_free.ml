(* §3.3: valley-free routing inside a data center, without resorting to
   duplicate AS numbers.

   The operator loads two pieces of configuration at init time:
   - get_xtra("vf_pairs"): every (child AS, parent AS) pair, one per
     eBGP session between adjacent levels of the Clos hierarchy -> map 0;
   - get_xtra("vf_internal"): the ASNs originating *fabric-internal*
     prefixes (the ToRs) -> map 1.

   The [import] bytecode runs at BGP_INBOUND_FILTER. When the session the
   route arrives on is an *upward* one ((peer_as, local_as) in map 0),
   accepting the route would move it up, so it must never have moved
   *down* before. A downward hop reads, left to right in the AS_PATH, as
   an adjacent (child, parent) pair — exactly a map-0 key.

   Exemption (the partition-avoidance benefit the paper claims over the
   duplicate-ASN trick): when the route's *origin* AS is fabric-internal
   (map 1), valleys are allowed — under multiple link failures they are
   the only way to keep the fabric connected (Fig. 5), and the decision
   process never prefers them while shorter valley-free paths exist. *)

open Ebpf.Asm
open Ebpf.Insn

let pairs_key = "vf_pairs"
let internal_key = "vf_internal"
let key_at = -48
let tlv_slot = -24 (* saved AS_PATH TLV pointer across helper calls *)

(* load (child,parent) pairs into map 0 and internal ASNs into map 1 *)
let init =
  assemble
    (List.concat
       [
         Util.store_cstring ~at:key_at pairs_key;
         [
           mov R1 R10;
           addi R1 key_at;
           call Xbgp.Api.h_get_xtra;
           jeqi R0 0 "internal";
           mov R6 R0;
           ldxw R7 R6 0;
           movi R8 0;
           label "pair_loop";
           jge R8 R7 "internal";
           mov R2 R6;
           add R2 R8;
           ldxw R3 R2 4;
           be32 R3;
           stxw R10 (-8) R3;
           ldxw R3 R2 8;
           be32 R3;
           stxw R10 (-4) R3;
           movi R3 1;
           stxw R10 (-16) R3;
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           mov R3 R10;
           addi R3 (-16);
           call Xbgp.Api.h_map_update;
           addi R8 8;
           ja "pair_loop";
           label "internal";
         ];
         Util.store_cstring ~at:key_at internal_key;
         [
           mov R1 R10;
           addi R1 key_at;
           call Xbgp.Api.h_get_xtra;
           jeqi R0 0 "done";
           mov R6 R0;
           ldxw R7 R6 0;
           movi R8 0;
           label "asn_loop";
           jge R8 R7 "done";
           mov R2 R6;
           add R2 R8;
           ldxw R3 R2 4;
           be32 R3;
           stxw R10 (-8) R3;
           movi R3 1;
           stxw R10 (-16) R3;
           movi R1 1;
           mov R2 R10;
           addi R2 (-8);
           mov R3 R10;
           addi R3 (-16);
           call Xbgp.Api.h_map_update;
           addi R8 4;
           ja "asn_loop";
           label "done";
           movi R0 0;
           exit_;
         ];
       ])

let import =
  assemble
    (List.concat
       [
         [
           (* is this an upward session? map-0 key = (peer_as, local_as) *)
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "defer";
           ldxw R1 R0 Xbgp.Api.pi_peer_as;
           stxw R10 (-8) R1;
           ldxw R1 R0 Xbgp.Api.pi_local_as;
           stxw R10 (-4) R1;
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           call Xbgp.Api.h_map_lookup;
           jeqi R0 0 "defer";
           movi R1 Bgp.Attr.code_as_path;
           call Xbgp.Api.h_get_attr;
           jeqi R0 0 "defer";
           stxdw R10 tlv_slot R0;
           (* pass 1 (no helper calls): origin AS = last ASN *)
           mov R6 R0;
           ldxh R7 R6 2;
           be16 R7;
           movi R3 0;
           movi R5 0;
           label "o_seg";
           mov R4 R3;
           addi R4 2;
           jgt R4 R7 "o_done";
           mov R4 R6;
           add R4 R3;
           ldxb R2 R4 5;
           (* count *)
           jeqi R2 0 "o_skip";
           mov R1 R2;
           lshi R1 2;
           add R1 R4;
           ldxw R5 R1 2;
           be32 R5;
           label "o_skip";
           mov R1 R2;
           lshi R1 2;
           addi R1 2;
           add R3 R1;
           ja "o_seg";
           label "o_done";
           (* internal destination? map-1 key = origin AS *)
           stxw R10 (-8) R5;
           movi R1 1;
           mov R2 R10;
           addi R2 (-8);
           call Xbgp.Api.h_map_lookup;
           jnei R0 0 "defer";
           (* pass 2: scan adjacent pairs for a downward hop *)
           ldxdw R6 R10 tlv_slot;
           ldxh R9 R6 2;
           be16 R9;
           addi R6 4;
           (* r6 = segment cursor *)
           add R9 R6;
           (* r9 = payload end *)
           label "outer";
           mov R1 R6;
           addi R1 2;
           jgt R1 R9 "defer";
           ldxb R7 R6 1;
           (* r7 = ASN count *)
           mov R8 R6;
           addi R8 2;
           (* r8 = first ASN *)
           mov R1 R7;
           lshi R1 2;
           addi R1 2;
           add R6 R1;
           jlei R7 1 "outer";
           subi R7 1;
           label "pair";
           ldxw R1 R8 0;
           be32 R1;
           stxw R10 (-8) R1;
           ldxw R1 R8 4;
           be32 R1;
           stxw R10 (-4) R1;
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           call Xbgp.Api.h_map_lookup;
           jnei R0 0 "reject";
           addi R8 4;
           subi R7 1;
           jnei R7 0 "pair";
           ja "outer";
           label "reject";
           movi R0 1;
           exit_;
           label "defer";
         ];
         Util.tail_next;
       ])

let program =
  Xbgp.Xprog.v ~name:"valley_free"
    ~maps:
      [
        Xbgp.Xprog.map ~name:"rel" ~key_size:8 ~value_size:4 ();
        Xbgp.Xprog.map ~name:"myas" ~key_size:4 ~value_size:4 ();
      ]
    ~allowed_helpers:
      Xbgp.Api.
        [
          h_next;
          h_get_peer_info;
          h_get_attr;
          h_get_xtra;
          h_map_lookup;
          h_map_update;
        ]
    [ ("init", init); ("import", import) ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "valley_free" ]
    ~attachments:
      [
        {
          program = "valley_free";
          bytecode = "init";
          point = Xbgp.Api.Bgp_init;
          order = 0;
        };
        {
          program = "valley_free";
          bytecode = "import";
          point = Xbgp.Api.Bgp_inbound_filter;
          order = 0;
        };
      ]
