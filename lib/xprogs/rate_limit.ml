(* Per-peer prefix-rate limiting: cap how many prefixes one UPDATE from
   a peer may announce, dropping the excess instead of tearing the
   session down.

   State lives in map 0 ("win", per-peer array of 16 slots keyed by
   peer_addr mod 16): 8-byte value [count u32 LE][drops u32 LE]. The
   [receive] bytecode opens a fresh window at every UPDATE message —
   count is zeroed, the cumulative drop counter survives — and [import]
   then counts each announced prefix against get_xtra("rate_limit"),
   rejecting once the window is full. With our hosts dispatching the
   inbound filter once per NLRI prefix, the window is exactly "prefixes
   per UPDATE per peer".

   Array slots always exist (zero-initialised), so both bytecodes are
   lookup-hit-only on the happy path; peers with no limit configured
   cost one absent get_xtra and defer. *)

open Ebpf.Asm
open Ebpf.Insn

let slots = 16
let xtra_key = "rate_limit"
let key_at = -32

(* Stack frame (both bytecodes):
   r10-8  .. r10-5  : map key   [slot u32 LE]
   r10-16 .. r10-9  : map value [count u32 LE][drops u32 LE]
   r10-32 ..        : get_xtra cstring key (import only) *)

let receive =
  assemble
    (List.concat
       [
         [
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "done";
           ldxw R1 R0 Xbgp.Api.pi_peer_addr;
           modi R1 slots;
           stxw R10 (-8) R1;
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           call Xbgp.Api.h_map_lookup;
           jeqi R0 0 "done";
           (* fresh window: zero the count, keep the drop total *)
           ldxw R8 R0 4;
           stw R10 (-16) 0;
           stxw R10 (-12) R8;
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           mov R3 R10;
           addi R3 (-16);
           call Xbgp.Api.h_map_update;
           label "done";
         ];
         Util.tail_next;
       ])

let import =
  assemble
    (List.concat
       [
         Util.store_cstring ~at:key_at xtra_key;
         [
           mov R1 R10;
           addi R1 key_at;
           call Xbgp.Api.h_get_xtra;
           jeqi R0 0 "defer";
           (* no limit configured *)
           ldxw R6 R0 Xbgp.Api.blob_header_size;
           be32 R6;
           (* r6 = limit *)
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "defer";
           ldxw R1 R0 Xbgp.Api.pi_peer_addr;
           modi R1 slots;
           stxw R10 (-8) R1;
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           call Xbgp.Api.h_map_lookup;
           jeqi R0 0 "defer";
           ldxw R7 R0 0;
           (* window count *)
           ldxw R8 R0 4;
           (* cumulative drops *)
           jge R7 R6 "over";
           addi R7 1;
           movi R9 0;
           ja "store";
           label "over";
           addi R8 1;
           movi R9 1;
           label "store";
           stxw R10 (-16) R7;
           stxw R10 (-12) R8;
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           mov R3 R10;
           addi R3 (-16);
           call Xbgp.Api.h_map_update;
           jeqi R9 1 "reject";
           label "defer";
         ];
         Util.tail_next;
         [ label "reject"; movi R0 1; exit_ ];
       ])

let program =
  Xbgp.Xprog.v ~name:"rate_limit"
    ~maps:
      [
        (* shared across VMM shards: the window is indexed by peer, not
           prefix, so per-shard instances would each see a fraction of
           the peer's true announcement rate *)
        Xbgp.Xprog.map ~name:"win" ~kind:Ebpf.Map.Per_peer_array
          ~max_entries:slots ~key_size:4 ~value_size:8 ~shared:true ();
      ]
    ~allowed_helpers:
      Xbgp.Api.
        [ h_next; h_get_xtra; h_get_peer_info; h_map_lookup; h_map_update ]
    [ ("receive", receive); ("import", import) ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "rate_limit" ]
    ~attachments:
      [
        {
          program = "rate_limit";
          bytecode = "receive";
          point = Xbgp.Api.Bgp_receive_message;
          order = 1;
        };
        {
          program = "rate_limit";
          bytecode = "import";
          point = Xbgp.Api.Bgp_inbound_filter;
          order = 6;
        };
      ]
