(* §3.4: RPKI route-origin validation as extension code.

   Like the paper's DUT, the router "does not implement the RPKI-Rtr
   protocol but loads a file" of ROAs: the [init] bytecode reads the
   serialized ROA table from the router configuration
   (get_xtra("roa_table")) and fills an xBGP *hash map* — the same data
   structure BIRD uses natively, and the reason this extension beats
   FRRouting's native trie-walking validation (§3.4).

   The [import] bytecode then validates the origin of every incoming
   route: it derives the origin AS by walking the AS_PATH payload, looks
   the (prefix, origin) up in the map, and tags the route with a
   community — valid 65535:1, invalid 65535:2, not-found 65535:3 — but
   never discards it, exactly as in the paper's experiment.

   Map 0: key  = 8 bytes [addr u32 LE][len u32 LE]
          value = 4 bytes [asn u32 LE]. *)

open Ebpf.Asm
open Ebpf.Insn

let community_valid = 0xFFFF0001L
let community_invalid = 0xFFFF0002L
let community_notfound = 0xFFFF0003L

let roa_key = "roa_table"
let roa_key_at = -48

let init =
  assemble
    (List.concat
       [
         Util.store_cstring ~at:roa_key_at roa_key;
         [
           mov R1 R10;
           addi R1 roa_key_at;
           call Xbgp.Api.h_get_xtra;
           jeqi R0 0 "done";
           mov R6 R0;
           ldxw R7 R6 0;
           (* blob length (host-written, little endian) *)
           movi R8 0;
           label "loop";
           jge R8 R7 "done";
           mov R2 R6;
           add R2 R8;
           (* entry fields at r2+4 (skip blob header): addr, len, asn *)
           ldxw R3 R2 4;
           be32 R3;
           stxw R10 (-8) R3;
           ldxb R4 R2 8;
           stxw R10 (-4) R4;
           ldxw R5 R2 12;
           be32 R5;
           stxw R10 (-16) R5;
           movi R1 0;
           mov R2 R10;
           addi R2 (-8);
           mov R3 R10;
           addi R3 (-16);
           call Xbgp.Api.h_map_update;
           addi R8 12;
           ja "loop";
           label "done";
           movi R0 0;
           exit_;
         ];
       ])

let import =
  assemble
    [
      (* the route's prefix *)
      movi R1 Xbgp.Api.arg_prefix;
      call Xbgp.Api.h_get_arg;
      jeqi R0 0 "defer";
      mov R6 R0;
      ldxw R1 R6 4;
      be32 R1;
      stxw R10 (-8) R1;
      ldxb R2 R6 8;
      stxw R10 (-4) R2;
      (* origin AS: last ASN of the AS_PATH *)
      movi R1 Bgp.Attr.code_as_path;
      call Xbgp.Api.h_get_attr;
      jeqi R0 0 "defer";
      mov R7 R0;
      ldxh R8 R7 2;
      be16 R8;
      (* r8 = payload byte length *)
      movi R3 0;
      (* r3 = offset into payload *)
      movi R9 0;
      (* r9 = origin AS found so far *)
      label "seg_loop";
      mov R4 R3;
      addi R4 2;
      jgt R4 R8 "seg_done";
      mov R4 R7;
      add R4 R3;
      (* segment header at r4+4: type, count *)
      ldxb R5 R4 5;
      (* r5 = ASN count *)
      jeqi R5 0 "skip_seg";
      (* last ASN of this segment at r4 + 4 + 2 + 4*cnt - 4 *)
      mov R2 R5;
      lshi R2 2;
      add R2 R4;
      ldxw R9 R2 2;
      be32 R9;
      label "skip_seg";
      mov R2 R5;
      lshi R2 2;
      addi R2 2;
      add R3 R2;
      ja "seg_loop";
      label "seg_done";
      (* look the (prefix, origin) up *)
      movi R1 0;
      mov R2 R10;
      addi R2 (-8);
      call Xbgp.Api.h_map_lookup;
      jeqi R0 0 "notfound";
      ldxw R1 R0 0;
      jeq R1 R9 "valid";
      lddw R6 community_invalid;
      ja "tag";
      label "valid";
      lddw R6 community_valid;
      ja "tag";
      label "notfound";
      lddw R6 community_notfound;
      label "tag";
      (* append the community to the existing COMMUNITY payload *)
      movi R1 Bgp.Attr.code_communities;
      call Xbgp.Api.h_get_attr;
      mov R7 R0;
      movi R8 0;
      jeqi R7 0 "no_old";
      ldxh R8 R7 2;
      be16 R8;
      label "no_old";
      mov R1 R8;
      addi R1 4;
      call Xbgp.Api.h_memalloc;
      jeqi R0 0 "defer";
      mov R4 R0;
      movi R3 0;
      label "copy";
      jge R3 R8 "copy_done";
      mov R2 R7;
      add R2 R3;
      ldxb R5 R2 4;
      mov R2 R4;
      add R2 R3;
      stxb R2 0 R5;
      addi R3 1;
      ja "copy";
      label "copy_done";
      mov R2 R4;
      add R2 R8;
      mov R5 R6;
      be32 R5;
      stxw R2 0 R5;
      movi R1 Bgp.Attr.code_communities;
      movi R2 (Bgp.Attr.flag_optional lor Bgp.Attr.flag_transitive);
      mov R3 R8;
      addi R3 4;
      call Xbgp.Api.h_add_attr;
      movi R0 0;
      (* FILTER_ACCEPT: tag, never discard *)
      exit_;
      label "defer";
      call Xbgp.Api.h_next;
      movi R0 0;
      exit_;
    ]

let program =
  Xbgp.Xprog.v ~name:"origin_validation"
    (* the ROA table is read-only config data filled once at Bgp_init —
       one instance visible to every shard, so the init attachment stays
       legal at a control point under a sharded VMM *)
    ~maps:[ Xbgp.Xprog.map ~name:"roa" ~shared:true ~key_size:8 ~value_size:4 () ]
    ~allowed_helpers:
      Xbgp.Api.
        [
          h_next;
          h_get_arg;
          h_get_attr;
          h_add_attr;
          h_get_xtra;
          h_memalloc;
          h_map_lookup;
          h_map_update;
        ]
    [ ("init", init); ("import", import) ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "origin_validation" ]
    ~attachments:
      [
        {
          program = "origin_validation";
          bytecode = "init";
          point = Xbgp.Api.Bgp_init;
          order = 0;
        };
        {
          program = "origin_validation";
          bytecode = "import";
          point = Xbgp.Api.Bgp_inbound_filter;
          order = 0;
        };
      ]
