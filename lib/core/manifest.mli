(** The deployment manifest (§2.1): the VMM "is initialized with a
    manifest containing the extension bytecodes and the points where they
    must be inserted [...] the manifest defines in which order they are
    executed".

    Bytecode artifacts are resolved by program name through a registry;
    the manifest is the small operator-editable text deciding what runs
    where:

    {v
# GeoLoc on the edge routers
program geoloc
engine  geoloc block
map    geoloc visited hash 8 4 1024
attach geoloc receive BGP_RECEIVE_MESSAGE 0
attach geoloc import  BGP_INBOUND_FILTER  10
    v}

    The optional [engine] directive pins a program to one of the eBPF
    execution engines ([interpreted], [compiled] or [block]); programs
    without one use the VMM's default. [map] directives declare the
    name, kind ([hash]/[lru]/[array]) and sizes of the maps the
    operator is willing to host for a program. *)

type attachment = {
  program : string;
  bytecode : string;
  point : Api.point;
  order : int;
}

type t = {
  programs : string list;
  attachments : attachment list;
  engines : (string * Ebpf.Vm.engine) list;
      (** per-program execution-engine overrides ([engine] directives) *)
  maps : (string * Ebpf.Map.spec) list;
      (** per-program map declarations ([map] directives:
          [map <program> <name> <kind> <key> <value> <entries>], kind
          one of [hash]/[lru]/[array]); when a program has any, they
          replace the program's built-in specs at {!load} time *)
}

val empty : t

val v : programs:string list -> attachments:attachment list -> t
(** A manifest with no engine overrides or map declarations; see
    {!with_engines} and {!with_maps}. *)

val with_engines : (string * Ebpf.Vm.engine) list -> t -> t
(** Replace the per-program engine overrides. *)

val with_maps : (string * Ebpf.Map.spec) list -> t -> t
(** Replace the per-program map declarations. *)

val to_string : t -> string
val parse : string -> (t, string) result

val load :
  Vmm.t -> registry:(string -> Xprog.t option) -> t -> (unit, string) result
(** Register every listed program and attach its bytecodes. Stops at the
    first error, leaving earlier registrations in place. *)
