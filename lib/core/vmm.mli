(** The Virtual Machine Manager — the runtime heart of libxbgp (§2.1).

    The VMM owns the registered xBGP programs, the per-insertion-point
    ordered queues of attached bytecodes, and the execution machinery.
    At an insertion point the host calls {!run}; the VMM then

    - executes the first attached bytecode in manifest order, in its
      per-attachment eBPF VM (built at attach time and reused) whose
      memory holds a private ephemeral heap plus the program's persistent
      scratch region;
    - on the special [next()] helper, moves to the next attachment, and
      past the last one falls back to the host's native [default];
    - on a normal return, hands r0 back to the host;
    - on a fault (bad access, exhausted budget, helper misuse), logs,
      notifies the host and falls back to the native default.

    Ephemeral memory — every helper-returned structure and
    [ebpf_memalloc] allocation — is reclaimed wholesale after each run:
    the paper's automatic ephemeral reclamation. *)

exception Next
(** Raised by the [next()] helper; never escapes {!run}. *)

type t

type stats = {
  mutable runs : int;  (** bytecode executions started *)
  mutable native_fallbacks : int;  (** chains that ended in native code *)
  mutable faults : int;
  mutable next_calls : int;
  mutable insns : int;  (** total eBPF instructions retired *)
}

(** The structured record of a bytecode fault: where it happened
    (insertion point, program, bytecode, engine), best-effort location in
    the program ([fault_pc] and disassembly — exact for the interpreter,
    the faulting block's leader for [Block], absent for [Compiled]), and
    the raw error message. *)
type fault = {
  fault_host : string;
  fault_point : Api.point;
  fault_program : string;
  fault_bytecode : string;
  fault_engine : Ebpf.Vm.engine;
  fault_pc : int option;
  fault_insn : string option;  (** disassembly of the faulting insn *)
  fault_chain_slot : int option;
      (** the faulting slot in the fused chain's address space
          ({!Ebpf.Chain.layout}) — [Some] only for faults caught inside
          a whole-chain fused dispatch; {!locate_chain_slot} inverts
          it *)
  fault_msg : string;
  fault_init : bool;  (** faulted during {!run_init} *)
}

val create :
  ?heap_size:int ->
  ?budget:int ->
  ?engine:Ebpf.Vm.engine ->
  ?telemetry:Telemetry.t ->
  host:string ->
  unit ->
  t
(** [host] names the embedding implementation (for log messages);
    [heap_size] is the per-attachment ephemeral heap (default 64 KiB);
    [budget] the per-run instruction limit; [engine] selects the eBPF
    execution engine for every attached bytecode whose program does not
    carry its own [Xprog.engine] override; [telemetry] is the shared
    registry every run records into (default: a fresh disabled registry,
    so counters still count but nothing else is retained). *)

val stats : t -> stats
(** Aggregate over every shard. The unsharded VMM returns its live
    record (the historical contract: hold it, read updated fields); a
    sharded one returns a fresh summed snapshot. *)

val shards : t -> int
(** Current shard count (1 unless {!set_shards} raised it). *)

val set_shards : t -> int -> (unit, string) result
(** Re-partition the VMM into [n] shards: per-attachment VMs, dispatch
    stats, last-dispatch traces and fused chain closures all become
    per-shard, and unshared maps get one instance per shard while
    [shared] specs keep one lock-serialized instance. Only legal while
    nothing is attached — hosts set the count once, before loading the
    manifest. Shard [s]'s dispatch surface must then be driven from at
    most one domain at a time (its worker in the parallel lane, or the
    coordinating domain after a barrier): the VMM partitions the state,
    the host owns the discipline. *)

val shard_runs : t -> int -> int
(** Bytecode executions started on one shard — per-shard load for the
    [show shards] introspection surface. *)

val shard_parallel_safe : t -> Api.point -> bool
(** True when the chain at [point] may be dispatched concurrently from
    per-shard workers over prefix-disjoint task streams and remain
    indistinguishable from sequential dispatch: no persistent scratch,
    helpers confined to the batchable set plus map writes, map writes
    statically resolved to per-shard (unshared) maps only — a shared-map
    write lands in lock-acquisition order, not submission order — and no
    reads of shared LRU maps (recency refresh is a write in disguise).
    Statically unresolvable map accesses fail closed; an empty chain is
    vacuously safe. Hosts gate their parallel lane on this per
    generation; the serial fallback routes through the same per-shard
    VMs so map placement never flips with the lane. *)

val telemetry : t -> Telemetry.t
(** The registry this VMM records into. *)

val last_fault : t -> string option
(** Rendered description of the most recent bytecode fault, if any — for
    fault diagnosis in divergence reports. Equal to
    [Option.map render_fault (last_fault_record t)]. *)

val last_fault_record : t -> fault option

val render_fault : fault -> string
(** The legacy one-line rendering
    (["host: extension prog/bc at point faulted: msg"]). *)

val fault_detail : fault -> string
(** {!render_fault} plus engine, slot and disassembly when known — what
    fuzz divergence reports print. *)

val register : t -> Xprog.t -> (unit, string) result
(** Verify every bytecode (structural checks, the program's helper
    whitelist and its map declarations — bad map specs and
    statically-known out-of-range map indices are rejected here) and
    instantiate the program's scratch. Maps are created at the
    program's first {!attach} and destroyed at its last {!detach}:
    their lifetime is the attachment's, surviving every dispatch in
    between. *)

val attach :
  t ->
  program:string ->
  bytecode:string ->
  point:Api.point ->
  order:int ->
  (unit, string) result
(** Attach a bytecode to an insertion point; [order] positions it in the
    point's execution queue. Builds the attachment's per-shard VMs.
    Under sharding ({!set_shards} > 1), attaching a program that
    declares a per-shard (unshared) map at a control point
    ([Bgp_init] / [Bgp_receive_message] / [Bgp_encode_message]) is
    rejected: control dispatches are not routed by prefix, so a
    per-shard instance there would silently split state the program
    expects to be whole. *)

val detach : t -> program:string -> point:Api.point -> unit
(** Remove [program]'s attachments at [point]. When this was the
    program's last attachment at {e any} point, its maps are destroyed
    (entries dropped, telemetry entry gauges zeroed; the monotone map
    counters survive in the registry). *)

val replace_program : t -> Xprog.t -> (unit, string) result
(** Hot-swap a registered program with a new version — the rekey path.
    Attachments and their orders survive: every point where the program
    is attached gets fresh runtimes built from the new bytecodes, and
    the generation bump invalidates everything cached off the chains
    (update-group keys, fused whole-chain closures), so the very next
    dispatch runs the new code with no detached window. The new version
    must pass {!register}'s verification and still carry every bytecode
    name currently attached. Persistent scratch survives when its size
    is unchanged; map instances (and contents) survive when the map
    specs are unchanged, else they are recreated. *)

val attachments : t -> Api.point -> (string * string * int) list
(** [(program, bytecode, order)] per attachment, in execution order. *)

val has_attachment : t -> Api.point -> bool

val has_any_attachment : t -> bool
(** True when any point has at least one attachment — the hosts gate
    their conversion caches on this so the pure-native baseline pays
    for no memoization it can never use. *)

val chain_compiled : t -> Api.point -> bool
(** Whether [point] currently dispatches through a whole-chain fused
    closure (every attachment resolved to the [Chain] engine and the
    unit has been compiled by a dispatch under the current generation).
    Compilation is lazy, so right after an attach/detach/rekey this is
    [false] until the next dispatch. *)

val locate_chain_slot :
  t -> Api.point -> int -> (string * string * int) option
(** Invert a fused-chain slot ({!fault}'s [fault_chain_slot]) to
    [(program, bytecode, local pc)] for the chain currently attached at
    [point]. *)

val registered : t -> string list

val batch_invariant : t -> Api.point -> variant_args:int list -> bool
(** True when every bytecode attached at [point] provably computes the
    same result for every element of a batch whose members differ only
    in the [variant_args] argument ids: it never fetches those
    arguments, all its argument reads are statically resolved
    ({!Xprog.dispatch_summary}), and it has no per-call observable
    effects (map writes, RIB injection, logging, persistent scratch).
    Map lookups are admitted only when every lookup statically resolves
    to a non-LRU map — an LRU lookup refreshes recency, so the run
    count would change later eviction order. An empty chain is
    vacuously invariant. The hosts use this to run an UPDATE's import
    chain once and share the verdict — and any route-attribute edits —
    across the whole NLRI list. *)

val group_invariant : t -> Api.point -> allow_write_buf:bool -> bool
(** True when every bytecode attached at [point] provably behaves the
    same towards every peer, so one run can stand in for a whole
    update-group: no [h_get_peer_info], no map access of any kind (a
    per-peer-keyed read depends on which peer asks, and an LRU lookup
    is a write in disguise), no per-call observable effects
    (map writes, RIB injection, logging, message-buffer writes,
    persistent scratch). [allow_write_buf] additionally admits
    [h_write_buf] — at the encode point one shared buffer per group is
    exactly the intended semantics. An empty chain is vacuously
    invariant. *)

val chain_signature : t -> Api.point -> string
(** Stable textual identity (program/bytecode\@order, execution order) of
    the chain attached at [point]; update-group keys embed it. *)

val generation : t -> int
(** Monotonic counter bumped by every {!attach}, {!detach} and
    {!replace_program} — lets a host revalidate chain-derived cached
    decisions (update-group keys) with one integer compare; the fused
    whole-chain closures invalidate on the same edge. *)

val set_recorder : t -> Obs.Recorder.t option -> unit
(** Attach a flight recorder: bytecode faults, native fallbacks and LRU
    map evictions are recorded as structured events. [None] (the
    default) makes every hook one load-and-branch. *)

val recorder : t -> Obs.Recorder.t option

type event = Obs.Recorder.kind * (string * string) list
(** A staged recorder event: exactly what {!Obs.Recorder.record} would
    have been called with. *)

val begin_events : t -> shard:int -> unit
(** Start staging recorder-bound events (bytecode faults, native
    fallbacks, map evictions) from [shard]'s dispatches instead of
    recording them — workers bracket each task with
    [begin_events]/[take_events] so the coordinating domain can replay
    event streams in deterministic submission order and keep the flight
    recorder byte-identical to a sequential run. *)

val take_events : t -> shard:int -> event list
(** Stop staging and return the staged events in emission order. *)

val replay_events : t -> event list -> unit
(** Record captured events into the recorder (no-op without one). *)

val last_trace : ?shard:int -> t -> Api.point -> Obs.Provenance.step list option
(** The dispatch {!run} just executed at [point], as provenance steps —
    one per bytecode that ran, in order, with its dynamic verdict
    ("accept" / "reject" / "next()" / "fault" / point-rendered return)
    and the attach-time static facts (may it mutate route attributes,
    which maps it may write). [None] when the last traced dispatch was
    at a different point or the chains changed since. Read it
    immediately after the dispatch: a nested dispatch (import ->
    [rib_add] -> export) overwrites the trace. *)

val run :
  ?shard:int ->
  t ->
  Api.point ->
  ops:Host_intf.ops ->
  args:Host_intf.Args.t ->
  default:(unit -> int64) ->
  int64
(** Execute the chain attached to a point, on [shard]'s VMs (default
    [0], the only shard of an unsharded VMM). [args] are the
    insertion-point arguments exposed through [get_arg] (ids from
    {!Api}) — hosts on the hot path reuse one {!Host_intf.Args.t} buffer
    across calls, one-shot callers build one with
    [Host_intf.Args.of_list]; [default] is the host's native
    implementation, used when nothing is attached, when the last
    bytecode calls [next()], or when a bytecode faults. A point with no
    attachments costs one array load before [default] runs. A point
    whose attachments all resolve to the [Chain] engine dispatches
    through one whole-chain fused closure, compiled lazily on the first
    dispatch after the chains change; every other shape takes the
    generic loop, with identical observable behavior. *)

val run_init : t -> ops:Host_intf.ops -> unit
(** Run every bytecode attached to [Bgp_init] once (manifest load time);
    faults are logged and initialization continues. *)

(** {1 Introspection} (tests, the CLI and the fuzz map-state oracle) *)

val map_size : t -> program:string -> int -> int option
(** Live entries of map [idx] of [program]; [Some 0] when the program
    is registered but its maps are not live (never attached, or fully
    detached); [None] on an unknown program or map index. *)

val map_stats : t -> program:string -> int -> Ebpf.Map.stats option
(** Operation counters of a live map ([None] when not live). *)

val map_dump : t -> program:string -> (string * (string * string) list) list option
(** Canonical contents of every live map of [program], in declaration
    order: [(map_name, sorted (key, value) entries)]. [None] when the
    program is unknown or its maps are not live. *)

val map_state : t -> (string * (string * (string * string) list) list) list
(** {!map_dump} for every program with live maps, sorted by program
    name — the cross-leg comparison unit of the fuzz map-state oracle.
    Programs whose maps are not live are omitted, so "never attached"
    and "attached then fully detached" compare equal. *)

val scratch : t -> program:string -> bytes option
