(** An xBGP program: the deployable unit an operator ships to routers.

    One program groups several bytecodes (the GeoLoc use case of Fig. 2
    is four), the maps and the persistent scratch memory they share, and
    the helper whitelist the manifest declares for them. Bytecodes of the
    same program share state; distinct programs are fully isolated
    (§2.1). *)

type map_spec = Ebpf.Map.spec = {
  name : string;
  kind : Ebpf.Map.kind;
  key_size : int;
  value_size : int;
  max_entries : int;
  shared : bool;  (** one instance across VMM shards (see {!Ebpf.Map.spec}) *)
}

val map :
  ?name:string ->
  ?kind:Ebpf.Map.kind ->
  ?max_entries:int ->
  ?shared:bool ->
  key_size:int ->
  value_size:int ->
  unit ->
  map_spec
(** Spec builder; defaults to an anonymous 1024-entry hash map
    (anonymous maps are named ["map<i>"] by {!v}), per-shard
    ([shared] defaults to [false]). Not validated here — {!v} validates
    via {!Ebpf.Map.validate}. *)

type t = {
  name : string;
  bytecodes : (string * Ebpf.Insn.t list) list;  (** entry name -> code *)
  maps : map_spec list;  (** referenced by index from bytecode *)
  scratch_size : int;  (** persistent memory shared by the bytecodes *)
  allowed_helpers : int list option;
      (** helper whitelist ([None] = unrestricted), enforced by the
          verifier at registration *)
  engine : Ebpf.Vm.engine option;
      (** per-program execution-engine override ([None] = the VMM's
          default); set from the manifest's [engine] directive *)
}

val v :
  ?maps:map_spec list ->
  ?scratch_size:int ->
  ?allowed_helpers:int list ->
  ?engine:Ebpf.Vm.engine ->
  name:string ->
  (string * Ebpf.Insn.t list) list ->
  t
(** @raise Invalid_argument on an empty bytecode list, an invalid map
    spec (see {!Ebpf.Map.validate}) or a negative scratch size. *)

val bytecode : t -> string -> Ebpf.Insn.t list option

val total_slots : t -> int
(** Total instruction slots across all bytecodes. *)

(** {1 Batch-dispatch analysis} *)

type dispatch_summary = {
  arg_reads : int list option;
      (** argument ids the bytecode may fetch through
          [h_get_arg]/[h_arg_len]; [None] = statically unresolvable
          (treat as "could read any argument") *)
  effectful : bool;
      (** the bytecode has per-call observable effects beyond its return
          value and its route-attribute edits: map writes, RIB
          injection, message-buffer writes, logging *)
  helpers : int list;
      (** every helper id the bytecode calls, in first-call order. The
          raw set behind [effectful]: consumers with a different notion
          of invariance (the update-group engine treats the batchable
          [h_get_peer_info] as disqualifying and the effectful
          [h_write_buf] as allowed at the encode point) start from
          here. *)
  map_reads : int list option;
      (** map indices possibly passed to [h_map_lookup]; [None] =
          statically unresolvable. Consumers need the indices because a
          lookup on an LRU map refreshes recency (a write in disguise)
          while hash/array lookups are pure. *)
  map_writes : int list option;
      (** map indices possibly passed to [h_map_update]/[h_map_delete];
          [None] = unresolvable. Anything but [Some []] makes the
          number of runs observable. *)
}

val batchable_helpers : int list
(** Helpers whose effect is confined to the run's return value, the
    ephemeral heap, or the shared route record — the whitelist behind
    [dispatch_summary.effectful]. *)

val dispatch_summary : Ebpf.Insn.t list -> dispatch_summary
(** Conservative linear scan of one bytecode. Hosts use it (through
    {!Vmm.batch_invariant}) to share one import verdict across every
    prefix of an UPDATE: sound because any unresolvable argument read
    degrades to [None] and any non-whitelisted helper call sets
    [effectful]. Note the summary ignores the program's persistent
    scratch — callers must treat any bytecode of a program with
    [scratch_size > 0] as effectful (scratch read/write cannot be told
    apart statically). *)
