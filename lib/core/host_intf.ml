(* What a BGP implementation must expose to become xBGP-compliant.

   Every call of [Vmm.run] passes an [ops] record binding the xBGP API to
   the host's data structures *for the current operation* (current peer,
   current route, current output buffer...). This is the paper's
   "execution context": hidden from the extension code, visible to the
   host, and the only channel through which helpers reach host state.

   Attribute payloads are exchanged in the neutral network-byte-order TLV
   form of [Bgp.Attr.to_tlv]/[of_tlv]; each daemon's adapter converts
   to/from its internal representation (cheap for BIRD-like eattrs,
   conversion work for FRR-like interned attributes — §2.1). *)

type peer_info = {
  peer_type : int;  (** [Api.ebgp_session] or [Api.ibgp_session] *)
  peer_as : int;
  peer_router_id : int;
  peer_addr : int;
  local_as : int;
  local_router_id : int;
  cluster_id : int;
  rr_client : bool;  (** the peer is a route-reflector client *)
}

type ops = {
  peer_info : unit -> peer_info option;
      (** the peer of the current operation, if any *)
  nexthop : unit -> (int * int) option;
      (** (address, IGP metric) of the current route's NEXT_HOP *)
  get_attr : int -> bytes option;
      (** neutral TLV of the current route's attribute with this code *)
  set_attr : bytes -> bool;
      (** install/replace an attribute (neutral TLV) on the current route *)
  remove_attr : int -> bool;
  get_xtra : string -> bytes option;
      (** named router-configuration extras (coordinates, manifest data) *)
  write_buf : bytes -> bool;
      (** append raw bytes to the message being encoded *)
  rib_add : addr:int -> len:int -> nexthop:int -> bool;
      (** inject a route into the RIB (uses hidden host arguments) *)
  log : string -> unit;
}

(** An ops record where nothing is available; building block for hosts
    that only wire the operations meaningful at a given insertion point. *)
let null_ops =
  {
    peer_info = (fun () -> None);
    nexthop = (fun () -> None);
    get_attr = (fun _ -> None);
    set_attr = (fun _ -> false);
    remove_attr = (fun _ -> false);
    get_xtra = (fun _ -> None);
    write_buf = (fun _ -> false);
    rib_add = (fun ~addr:_ ~len:_ ~nexthop:_ -> false);
    log = ignore;
  }

(** The per-run argument set ([Api.arg_*] id -> payload), passed to
    [Vmm.run] alongside [ops]. A flat pair of parallel arrays instead of
    an assoc list so the hot dispatch path can reuse one buffer per
    daemon across every update instead of consing tuples per call; the
    VM copies payloads into its own heap on [get_arg], so a host may
    overwrite a payload's bytes between runs. *)
module Args = struct
  type t = {
    mutable n : int;
    mutable ids : int array;
    mutable payloads : bytes array;
  }

  let initial_capacity = 4

  let create () =
    {
      n = 0;
      ids = Array.make initial_capacity 0;
      payloads = Array.make initial_capacity Bytes.empty;
    }

  let clear a =
    (* drop payload references so a parked buffer doesn't pin buffers *)
    for i = 0 to a.n - 1 do
      a.payloads.(i) <- Bytes.empty
    done;
    a.n <- 0

  let grow a =
    let cap = 2 * Array.length a.ids in
    let ids = Array.make cap 0 and payloads = Array.make cap Bytes.empty in
    Array.blit a.ids 0 ids 0 a.n;
    Array.blit a.payloads 0 payloads 0 a.n;
    a.ids <- ids;
    a.payloads <- payloads

  (** Install or replace the payload for [id]. *)
  let set a id payload =
    let rec find i = if i >= a.n then -1 else if a.ids.(i) = id then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then a.payloads.(i) <- payload
    else begin
      if a.n = Array.length a.ids then grow a;
      a.ids.(a.n) <- id;
      a.payloads.(a.n) <- payload;
      a.n <- a.n + 1
    end

  let find a id =
    let rec go i =
      if i >= a.n then None
      else if a.ids.(i) = id then Some a.payloads.(i)
      else go (i + 1)
    in
    go 0

  let of_list l =
    let a = create () in
    List.iter (fun (id, payload) -> set a id payload) l;
    a

  let to_list a = List.init a.n (fun i -> (a.ids.(i), a.payloads.(i)))

  (** Shared empty set for argument-less runs; never mutate it. *)
  let empty = create ()
end

let peer_info_to_bytes (p : peer_info) =
  let b = Bytes.create Api.peer_info_size in
  let set off v = Bytes.set_int32_le b off (Int32.of_int (v land 0xFFFFFFFF)) in
  set Api.pi_peer_type p.peer_type;
  set Api.pi_peer_as p.peer_as;
  set Api.pi_peer_router_id p.peer_router_id;
  set Api.pi_peer_addr p.peer_addr;
  set Api.pi_local_as p.local_as;
  set Api.pi_local_router_id p.local_router_id;
  set Api.pi_cluster_id p.cluster_id;
  set Api.pi_rr_client (if p.rr_client then 1 else 0);
  b

let nexthop_to_bytes (addr, metric) =
  let b = Bytes.create Api.nexthop_size in
  Bytes.set_int32_le b Api.nh_addr (Int32.of_int (addr land 0xFFFFFFFF));
  Bytes.set_int32_le b Api.nh_igp_metric
    (Int32.of_int (metric land 0xFFFFFFFF));
  b

(** The provenance of the route under filtering, exposed through
    [Api.arg_source]. *)
type source = {
  src_peer_type : int;  (** 0 when the route is locally originated *)
  src_router_id : int;
  src_addr : int;
  src_rr_client : bool;
  src_is_local : bool;
}

let source_to_bytes s =
  let b = Bytes.create Api.source_size in
  let set off v = Bytes.set_int32_le b off (Int32.of_int (v land 0xFFFFFFFF)) in
  set Api.src_peer_type s.src_peer_type;
  set Api.src_router_id s.src_router_id;
  set Api.src_addr s.src_addr;
  set Api.src_rr_client (if s.src_rr_client then 1 else 0);
  set Api.src_is_local (if s.src_is_local then 1 else 0);
  b

(** Summary of a candidate route for the [Bgp_decision] insertion point
    (the paper's circle 3), encoded per the [Api.cd_*] layout. *)
type candidate = {
  cd_local_pref : int;
  cd_as_path_len : int;
  cd_origin : int;
  cd_med : int;
  cd_igp_metric : int;
  cd_originator_id : int;
  cd_peer_addr : int;
  cd_is_ebgp : bool;
}

let candidate_to_bytes c =
  let b = Bytes.create Api.candidate_size in
  let set off v = Bytes.set_int32_le b off (Int32.of_int (v land 0xFFFFFFFF)) in
  set Api.cd_local_pref c.cd_local_pref;
  set Api.cd_as_path_len c.cd_as_path_len;
  set Api.cd_origin c.cd_origin;
  set Api.cd_med c.cd_med;
  set Api.cd_igp_metric c.cd_igp_metric;
  set Api.cd_originator_id c.cd_originator_id;
  set Api.cd_peer_addr c.cd_peer_addr;
  set Api.cd_is_ebgp (if c.cd_is_ebgp then 1 else 0);
  b
