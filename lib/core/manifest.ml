(* The deployment manifest (§2.1): "the VMM is initialized with a manifest
   containing the extension bytecodes and the points where they must be
   inserted [...] the manifest defines in which order they are executed".

   Bytecode artifacts themselves are looked up by program name in a
   registry (in this repository, [Xprogs.registry]); the manifest is the
   small operator-editable text that decides what runs where:

     # GeoLoc on the edge routers
     program geoloc
     attach geoloc receive  BGP_RECEIVE_MESSAGE 0
     attach geoloc import   BGP_INBOUND_FILTER  10
*)

type attachment = {
  program : string;
  bytecode : string;
  point : Api.point;
  order : int;
}

type t = {
  programs : string list;
  attachments : attachment list;
  engines : (string * Ebpf.Vm.engine) list;
      (** per-program execution-engine overrides ([engine] directives) *)
  maps : (string * Ebpf.Map.spec) list;
      (** per-program map declarations ([map] directives); when a
          program has any, they replace the program's built-in specs at
          [load] time *)
}

let empty = { programs = []; attachments = []; engines = []; maps = [] }

let v ~programs ~attachments =
  { programs; attachments; engines = []; maps = [] }

(* the record is public: callers add overrides with [with_engines] or a
   record update *)
let with_engines engines t = { t with engines }
let with_maps maps t = { t with maps }

(* --- text form --- *)

let to_string t =
  let b = Buffer.create 256 in
  List.iter (fun p -> Buffer.add_string b ("program " ^ p ^ "\n")) t.programs;
  List.iter
    (fun (p, e) ->
      Buffer.add_string b
        (Printf.sprintf "engine %s %s\n" p (Ebpf.Vm.engine_name e)))
    t.engines;
  List.iter
    (fun (p, (m : Ebpf.Map.spec)) ->
      Buffer.add_string b
        (Printf.sprintf "map %s %s %s %d %d %d%s\n" p m.name
           (Ebpf.Map.kind_name m.kind) m.key_size m.value_size m.max_entries
           (if m.shared then " shared" else "")))
    t.maps;
  List.iter
    (fun a ->
      Buffer.add_string b
        (Printf.sprintf "attach %s %s %s %d\n" a.program a.bytecode
           (Api.point_name a.point) a.order))
    t.attachments;
  Buffer.contents b

let parse (s : string) : (t, string) result =
  let err line fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt
  in
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok acc
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> go (lineno + 1) acc rest
      | [ "program"; name ] ->
        go (lineno + 1) { acc with programs = name :: acc.programs } rest
      | [ "engine"; program; engine_s ] -> (
        match Ebpf.Vm.engine_of_name engine_s with
        | Some e ->
          go (lineno + 1) { acc with engines = (program, e) :: acc.engines } rest
        | None -> err lineno "unknown engine %S" engine_s)
      | "map" :: program :: name :: kind_s :: key_s :: value_s :: entries_s
        :: mode -> (
        (* optional trailing [shared] token: one instance across every
           VMM shard instead of one per shard *)
        match mode with
        | [] | [ "shared" ] -> (
          let shared = mode = [ "shared" ] in
          match
            ( Ebpf.Map.kind_of_name kind_s,
              int_of_string_opt key_s,
              int_of_string_opt value_s,
              int_of_string_opt entries_s )
          with
          | Some kind, Some key_size, Some value_size, Some max_entries -> (
            let spec =
              { Ebpf.Map.name; kind; key_size; value_size; max_entries; shared }
            in
            match Ebpf.Map.validate spec with
            | Ok () ->
              go (lineno + 1)
                { acc with maps = (program, spec) :: acc.maps }
                rest
            | Error e -> err lineno "%s" e)
          | None, _, _, _ -> err lineno "unknown map kind %S" kind_s
          | _ -> err lineno "bad map sizes %S %S %S" key_s value_s entries_s)
        | m :: _ -> err lineno "bad map mode %S (expected \"shared\")" m)
      | [ "attach"; program; bytecode; point_s; order_s ] -> (
        match (Api.point_of_name point_s, int_of_string_opt order_s) with
        | Some point, Some order ->
          let a = { program; bytecode; point; order } in
          go (lineno + 1) { acc with attachments = a :: acc.attachments } rest
        | None, _ -> err lineno "unknown insertion point %S" point_s
        | _, None -> err lineno "bad order %S" order_s)
      | w :: _ -> err lineno "unknown directive %S" w)
  in
  match go 1 empty lines with
  | Ok t ->
    Ok
      {
        programs = List.rev t.programs;
        attachments = List.rev t.attachments;
        engines = List.rev t.engines;
        maps = List.rev t.maps;
      }
  | e -> e

(** Apply a manifest to a VMM: register every listed program (resolved
    through [registry]), applying any [engine] override, and attach its
    bytecodes. Stops at the first error, leaving earlier registrations in
    place. *)
let load vmm ~registry t : (unit, string) result =
  let ( let* ) = Result.bind in
  let rec register_all = function
    | [] -> Ok ()
    | name :: rest -> (
      match registry name with
      | None -> Error (Printf.sprintf "unknown program %S" name)
      | Some (prog : Xprog.t) ->
        let prog =
          match List.assoc_opt name t.engines with
          | Some e -> { prog with Xprog.engine = Some e }
          | None -> prog
        in
        (* [map] directives for this program replace its built-in
           specs wholesale: the operator declares the sizes they are
           willing to host, exactly like the helper whitelist *)
        let prog =
          match
            List.filter_map
              (fun (p, s) -> if p = name then Some s else None)
              t.maps
          with
          | [] -> prog
          | maps -> { prog with Xprog.maps }
        in
        let* () = Vmm.register vmm prog in
        register_all rest)
  in
  let rec attach_all = function
    | [] -> Ok ()
    | a :: rest ->
      let* () =
        Vmm.attach vmm ~program:a.program ~bytecode:a.bytecode ~point:a.point
          ~order:a.order
      in
      attach_all rest
  in
  let* () = register_all t.programs in
  attach_all t.attachments
