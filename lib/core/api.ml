(* The xBGP API: the vendor-neutral contract between extension bytecode and
   any compliant BGP implementation (§2 of the paper).

   Three things live here and nowhere else, because both daemons and every
   extension program must agree on them bit-for-bit:
   - the insertion points (the green circles of Fig. 2);
   - the helper-function identifiers bytecode compiles against;
   - the in-VM layouts of the structures helpers expose, plus the return
     conventions of each insertion point.

   Scalars inside info structures are VM-native (little-endian); attribute
   payloads crossing the boundary are the *neutral* network-byte-order TLV
   of [Bgp.Attr.to_tlv]. *)

(** Insertion points — specific operations of RFC 4271 message processing
    where the VMM may substitute extension code (Fig. 2, green circles). *)
type point =
  | Bgp_init  (** once, when the manifest is loaded *)
  | Bgp_receive_message  (** 1: raw UPDATE just received *)
  | Bgp_inbound_filter  (** 2: import policy on one route *)
  | Bgp_decision  (** 3: compare two candidate routes *)
  | Bgp_outbound_filter  (** 4: export policy on one route *)
  | Bgp_encode_message  (** 5: UPDATE serialization for a peer *)

let all_points =
  [
    Bgp_init;
    Bgp_receive_message;
    Bgp_inbound_filter;
    Bgp_decision;
    Bgp_outbound_filter;
    Bgp_encode_message;
  ]

let num_points = 6

(** Dense index of a point, for array-indexed dispatch tables
    ([0 .. num_points - 1], in [all_points] order). *)
let point_index = function
  | Bgp_init -> 0
  | Bgp_receive_message -> 1
  | Bgp_inbound_filter -> 2
  | Bgp_decision -> 3
  | Bgp_outbound_filter -> 4
  | Bgp_encode_message -> 5

let point_name = function
  | Bgp_init -> "BGP_INIT"
  | Bgp_receive_message -> "BGP_RECEIVE_MESSAGE"
  | Bgp_inbound_filter -> "BGP_INBOUND_FILTER"
  | Bgp_decision -> "BGP_DECISION"
  | Bgp_outbound_filter -> "BGP_OUTBOUND_FILTER"
  | Bgp_encode_message -> "BGP_ENCODE_MESSAGE"

let point_of_name s =
  List.find_opt (fun p -> point_name p = s) all_points

let pp_point ppf p = Fmt.string ppf (point_name p)

(* --- return conventions --- *)

(** Inbound/outbound filters: accept and hand the (possibly modified)
    route on, or reject it. [next()] instead defers to the next bytecode
    (ultimately the host's native policy). *)
let filter_accept = 0L

let filter_reject = 1L

(** [Bgp_decision]: pick the first candidate, the second, or declare a
    tie — on a tie (or next()/fault) the host's native decision process
    decides. *)
let decision_tie = 0L

let decision_first = 1L
let decision_second = 2L

(** Generic success/failure for the message-level points. *)
let ret_ok = 0L

let ret_error = -1L

(* --- session types, as seen in peer_info --- *)

let ebgp_session = 1
let ibgp_session = 2

(* --- helper identifiers (the CALL immediates) --- *)

let h_next = 1
let h_get_arg = 2
let h_arg_len = 3
let h_get_peer_info = 4
let h_get_nexthop = 5
let h_get_attr = 6
let h_set_attr = 7
let h_add_attr = 8
let h_remove_attr = 9
let h_get_xtra = 10
let h_write_buf = 11
let h_memalloc = 12
let h_print = 13
let h_htonl = 14
let h_htons = 15
let h_map_lookup = 16
let h_map_update = 17
let h_map_delete = 18
let h_rib_add = 19
let h_log_int = 20

let helper_name = function
  | 1 -> "next"
  | 2 -> "get_arg"
  | 3 -> "arg_len"
  | 4 -> "get_peer_info"
  | 5 -> "get_nexthop"
  | 6 -> "get_attr"
  | 7 -> "set_attr"
  | 8 -> "add_attr"
  | 9 -> "remove_attr"
  | 10 -> "get_xtra"
  | 11 -> "write_buf"
  | 12 -> "ebpf_memalloc"
  | 13 -> "ebpf_print"
  | 14 -> "bpf_htonl"
  | 15 -> "bpf_htons"
  | 16 -> "map_lookup"
  | 17 -> "map_update"
  | 18 -> "map_delete"
  | 19 -> "add_route_to_rib"
  | 20 -> "log_int"
  | n -> Printf.sprintf "helper_%d" n

let helper_of_name s =
  let rec go = function
    | 0 -> None
    | n -> if helper_name n = s then Some n else go (n - 1)
  in
  go 20

let all_helpers = List.init 20 (fun i -> i + 1)

(* --- peer_info structure: 32 bytes, little-endian u32 fields --- *)

let peer_info_size = 32
(* [ebgp_session] or [ibgp_session] *)
let pi_peer_type = 0
let pi_peer_as = 4
let pi_peer_router_id = 8
let pi_peer_addr = 12
let pi_local_as = 16
let pi_local_router_id = 20
let pi_cluster_id = 24
let pi_rr_client = 28  (* 1 when the peer is a route-reflector client *)

(* --- nexthop structure: 8 bytes --- *)

let nexthop_size = 8
let nh_addr = 0
(* 0xFFFFFFFF when unreachable *)
let nh_igp_metric = 4

let igp_unreachable = 0xFFFFFFFF

(* --- blob structure returned by get_arg / get_xtra: u32 length
       followed by the payload bytes. map_lookup is NOT a blob: it
       returns the raw value bytes (the length is the map's declared
       value_size, known statically to the bytecode) --- *)

let blob_header_size = 4

(* --- well-known argument ids per insertion point --- *)

(** [Bgp_receive_message] / [Bgp_encode_message]: the raw UPDATE body. *)
let arg_update_payload = 1

(** Filter points: the route's prefix as 5 bytes (u32 addr BE, u8 len). *)
let arg_prefix = 2

(** [Bgp_decision]: candidate route handles (opaque u32). *)
let arg_candidate_a = 3

let arg_candidate_b = 4

(** Filter points: where the route was learned — 20 bytes of little-endian
    u32 fields: peer_type (0 when locally originated), router_id, addr,
    rr_client, is_local. *)
let arg_source = 5

(* candidate summary exposed at [Bgp_decision]: 32 bytes of little-endian
   u32 fields *)
let cd_local_pref = 0
let cd_as_path_len = 4
let cd_origin = 8
let cd_med = 12
let cd_igp_metric = 16
let cd_originator_id = 20
let cd_peer_addr = 24
let cd_is_ebgp = 28
let candidate_size = 32

let src_peer_type = 0
let src_router_id = 4
let src_addr = 8
let src_rr_client = 12
let src_is_local = 16
let source_size = 20

(* --- memory map of a VM run (region base addresses) --- *)

let heap_base = 0x2000_0000L  (** ephemeral, freed after each run *)

let scratch_base = 0x4000_0000L  (** persistent, shared per xBGP program *)
