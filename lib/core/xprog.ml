(* An xBGP program: the deployable unit an operator ships to their routers.

   One program groups several bytecodes (the GeoLoc use case of Fig. 2 is
   four bytecodes attached to four insertion points), the maps and the
   persistent scratch memory they share, and the helper whitelist the
   manifest declares for them. Bytecodes of the same program share state;
   distinct programs are fully isolated from each other (§2.1). *)

type map_spec = { key_size : int; value_size : int }

type t = {
  name : string;
  bytecodes : (string * Ebpf.Insn.t list) list;  (** entry name -> code *)
  maps : map_spec list;  (** referenced by index from bytecode *)
  scratch_size : int;  (** persistent memory shared by the bytecodes *)
  allowed_helpers : int list option;
      (** helper whitelist ([None] = unrestricted); enforced by the
          verifier at registration time *)
  engine : Ebpf.Vm.engine option;
      (** per-program execution-engine override; [None] uses the VMM's
          default. Set from the manifest's [engine] directive. *)
}

let v ?(maps = []) ?(scratch_size = 0) ?allowed_helpers ?engine ~name bytecodes
    =
  if bytecodes = [] then invalid_arg "Xprog.v: no bytecodes";
  List.iter
    (fun { key_size; value_size } ->
      if key_size <= 0 || value_size <= 0 then
        invalid_arg "Xprog.v: map sizes must be positive")
    maps;
  if scratch_size < 0 then invalid_arg "Xprog.v: negative scratch size";
  { name; bytecodes; maps; scratch_size; allowed_helpers; engine }

let bytecode t name = List.assoc_opt name t.bytecodes

(** Total instruction slots across all bytecodes (a rough LoC measure). *)
let total_slots t =
  List.fold_left
    (fun acc (_, code) ->
      List.fold_left (fun a i -> a + Ebpf.Insn.slots i) acc code)
    0 t.bytecodes
