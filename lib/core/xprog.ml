(* An xBGP program: the deployable unit an operator ships to their routers.

   One program groups several bytecodes (the GeoLoc use case of Fig. 2 is
   four bytecodes attached to four insertion points), the maps and the
   persistent scratch memory they share, and the helper whitelist the
   manifest declares for them. Bytecodes of the same program share state;
   distinct programs are fully isolated from each other (§2.1). *)

type map_spec = Ebpf.Map.spec = {
  name : string;
  kind : Ebpf.Map.kind;
  key_size : int;
  value_size : int;
  max_entries : int;
  shared : bool;
}

(* Spec builder for the common case: a small anonymous hash map. [v]
   names anonymous maps "map<i>" by declaration index. *)
let map ?(name = "") ?(kind = Ebpf.Map.Hash) ?(max_entries = 1024)
    ?(shared = false) ~key_size ~value_size () =
  { name; kind; key_size; value_size; max_entries; shared }

type t = {
  name : string;
  bytecodes : (string * Ebpf.Insn.t list) list;  (** entry name -> code *)
  maps : map_spec list;  (** referenced by index from bytecode *)
  scratch_size : int;  (** persistent memory shared by the bytecodes *)
  allowed_helpers : int list option;
      (** helper whitelist ([None] = unrestricted); enforced by the
          verifier at registration time *)
  engine : Ebpf.Vm.engine option;
      (** per-program execution-engine override; [None] uses the VMM's
          default. Set from the manifest's [engine] directive. *)
}

let v ?(maps = []) ?(scratch_size = 0) ?allowed_helpers ?engine ~name bytecodes
    =
  if bytecodes = [] then invalid_arg "Xprog.v: no bytecodes";
  let maps =
    List.mapi
      (fun i (m : map_spec) ->
        let m =
          if m.name = "" then { m with name = Printf.sprintf "map%d" i }
          else m
        in
        match Ebpf.Map.validate m with
        | Ok () -> m
        | Error e -> invalid_arg ("Xprog.v: " ^ e))
      maps
  in
  if scratch_size < 0 then invalid_arg "Xprog.v: negative scratch size";
  { name; bytecodes; maps; scratch_size; allowed_helpers; engine }

let bytecode t name = List.assoc_opt name t.bytecodes

(* --- batch-dispatch analysis ---

   A conservative static summary of one bytecode's dispatch behaviour,
   used by the hosts to decide whether one run's verdict can be shared
   across a batch (every prefix of an UPDATE's NLRI list shares the
   peer and the attribute set — if the bytecode provably never looks at
   the prefix and has no per-call observable state, running it once per
   UPDATE is indistinguishable from running it once per prefix).

   The analysis is linear over the slot stream: the constant in R1 is
   tracked to resolve which argument ids [h_get_arg]/[h_arg_len] fetch,
   and is discarded at every jump target (a value arriving over a
   control-flow edge is unknown) and after every call (R1–R5 are
   caller-saved). Anything unresolvable degrades to "unknown", never to
   a wrong answer. *)

type dispatch_summary = {
  arg_reads : int list option;
      (** argument ids the bytecode may fetch; [None] = statically
          unresolvable (treat as "could read any argument") *)
  effectful : bool;
      (** the bytecode has per-call observable effects beyond its return
          value and its route-attribute edits: map writes, RIB
          injection, message-buffer writes, logging *)
  helpers : int list;
      (** every helper id the bytecode calls. [effectful] is a
          batch-oriented digest of this set; the update-group engine
          needs the raw set because its invariance question is different
          (e.g. [h_get_peer_info] is batchable — a batch shares the peer
          — yet peer-dependent, and [h_write_buf] is effectful yet
          exactly what the encode point is for) *)
  map_reads : int list option;
      (** map indices the bytecode may pass to [h_map_lookup]; [None] =
          statically unresolvable (treat as "could read any map"). The
          batch gate needs the indices, not just the helper id, because
          a lookup on an LRU map refreshes recency — a write in
          disguise — while a lookup on a hash or array map is pure. *)
  map_writes : int list option;
      (** map indices the bytecode may pass to
          [h_map_update]/[h_map_delete]; [None] = unresolvable. A
          bytecode with [map_writes <> Some []] makes the number of runs
          observable and must never be batch-shared or update-grouped. *)
}

(* Helpers whose effect is confined to the run's return value, the
   ephemeral heap, or the shared route record (attribute edits are
   applied once and shared by the whole batch, exactly like the
   converted attribute view). Everything else — map writes, rib_add,
   write_buf, logging — makes the number of runs observable. *)
let batchable_helpers =
  [
    Api.h_next;
    Api.h_get_arg;
    Api.h_arg_len;
    Api.h_get_peer_info;
    Api.h_get_nexthop;
    Api.h_get_attr;
    Api.h_set_attr;
    Api.h_add_attr;
    Api.h_remove_attr;
    Api.h_get_xtra;
    Api.h_memalloc;
    Api.h_htonl;
    Api.h_htons;
    Api.h_map_lookup;
  ]

let dispatch_summary code =
  let jump_targets = Hashtbl.create 16 in
  let pos = ref 0 in
  List.iter
    (fun insn ->
      (match insn with
      | Ebpf.Insn.Ja off -> Hashtbl.replace jump_targets (!pos + 1 + off) ()
      | Ebpf.Insn.Jcond (_, _, _, _, off) ->
        Hashtbl.replace jump_targets (!pos + 1 + off) ()
      | _ -> ());
      pos := !pos + Ebpf.Insn.slots insn)
    code;
  let reads = ref [] in
  let unknown = ref false in
  let mreads = ref [] in
  let mreads_unknown = ref false in
  let mwrites = ref [] in
  let mwrites_unknown = ref false in
  let effectful = ref false in
  let helpers = ref [] in
  let r1 = ref None in
  let pos = ref 0 in
  List.iter
    (fun insn ->
      if Hashtbl.mem jump_targets !pos then r1 := None;
      (match insn with
      | Ebpf.Insn.Alu (_, Ebpf.Insn.Mov, Ebpf.Insn.R1, Ebpf.Insn.Imm v) ->
        r1 := Some (Int32.to_int v)
      | Ebpf.Insn.Lddw (Ebpf.Insn.R1, v) -> r1 := Some (Int64.to_int v)
      | Ebpf.Insn.Alu (_, _, Ebpf.Insn.R1, _)
      | Ebpf.Insn.Endian (_, Ebpf.Insn.R1, _)
      | Ebpf.Insn.Ldx (_, Ebpf.Insn.R1, _, _) ->
        r1 := None
      | Ebpf.Insn.Call id ->
        if id = Api.h_get_arg || id = Api.h_arg_len then begin
          match !r1 with
          | Some a -> if not (List.mem a !reads) then reads := a :: !reads
          | None -> unknown := true
        end;
        if id = Api.h_map_lookup then begin
          match !r1 with
          | Some m -> if not (List.mem m !mreads) then mreads := m :: !mreads
          | None -> mreads_unknown := true
        end;
        if id = Api.h_map_update || id = Api.h_map_delete then begin
          match !r1 with
          | Some m ->
            if not (List.mem m !mwrites) then mwrites := m :: !mwrites
          | None -> mwrites_unknown := true
        end;
        if not (List.mem id batchable_helpers) then effectful := true;
        if not (List.mem id !helpers) then helpers := id :: !helpers;
        r1 := None
      | _ -> ());
      pos := !pos + Ebpf.Insn.slots insn)
    code;
  {
    arg_reads = (if !unknown then None else Some !reads);
    effectful = !effectful;
    helpers = List.rev !helpers;
    map_reads = (if !mreads_unknown then None else Some (List.rev !mreads));
    map_writes = (if !mwrites_unknown then None else Some (List.rev !mwrites));
  }

(** Total instruction slots across all bytecodes (a rough LoC measure). *)
let total_slots t =
  List.fold_left
    (fun acc (_, code) ->
      List.fold_left (fun a i -> a + Ebpf.Insn.slots i) acc code)
    0 t.bytecodes
