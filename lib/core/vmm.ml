(* The Virtual Machine Manager — the runtime heart of libxbgp (§2.1).

   The VMM owns the registered xBGP programs, the per-insertion-point
   ordered queues of attached bytecodes, and the execution machinery. At
   an insertion point the host calls [run]; the VMM then:

   - executes the first attached bytecode in manifest order, in a fresh
     eBPF VM whose memory holds a private ephemeral heap plus the
     program's persistent scratch region;
   - if the bytecode calls the special [next()] helper, moves on to the
     next attachment, and past the last one falls back to the host's
     native [default] function;
   - if the bytecode returns, hands its r0 back to the host;
   - if it faults (bad access, budget exhausted, helper misuse), logs the
     error, notifies the host and falls back to the native default.

   Ephemeral memory (every helper-returned structure, [ebpf_memalloc])
   lives in the per-run heap and is freed wholesale when the bytecode
   finishes — the paper's automatic ephemeral reclamation. *)

let src = Logs.Src.create "xbgp.vmm" ~doc:"xBGP virtual machine manager"

module Log = (val Logs.src_log src : Logs.LOG)

(* Raised by the next() helper; never escapes [run]. *)
exception Next

(* A live map plus its telemetry handles. Handles are interned by
   (name, labels) in the registry, so a program that is detached and
   re-attached gets a fresh [Ebpf.Map.t] (the paper's lifecycle: maps
   are created at attach, destroyed at detach) while its counters stay
   monotone — the chaos telemetry oracle depends on that. *)
type live_map = {
  map : Ebpf.Map.t;
  m_lock : Mutex.t option;
      (** [Some] iff the spec is [shared]: the single instance serves
          every shard, so helper calls on it serialize here. Per-shard
          instances are only ever touched from one domain at a time and
          need no lock. *)
  m_entries : Telemetry.Gauge.t;
  m_hits : Telemetry.Counter.t;
  m_misses : Telemetry.Counter.t;
  m_updates : Telemetry.Counter.t;
  m_deletes : Telemetry.Counter.t;
  m_evictions : Telemetry.Counter.t;
}

type ext = {
  prog : Xprog.t;
  mutable maps : live_map array array option;
      (** [Some] while the program is attached anywhere; [None] before
          the first attach and after the last detach. Outer index =
          shard, inner = map declaration index. A [shared] map is ONE
          physical [live_map] referenced from every shard's row; an
          unshared map is one instance per shard. Unsharded VMMs have a
          single row. *)
  scratch : bytes;  (** persistent across runs, shared by the program *)
}

(* Per-attachment execution state. A virtual machine is built once, when
   the bytecode is attached (§2: the VMM "attaches bytecode with an
   associated virtual machine to one specific insertion point"), and
   reused for every run: only the registers, the instruction budget and
   the ephemeral-heap cursor are reset. The [ops]/[args] fields carry the
   current operation's execution context into the helpers. *)
type runtime = {
  vm : Ebpf.Vm.t;
  heap : Ebpf.Memory.region;
  mutable heap_pos : int;
  mutable ops : Host_intf.ops;
  mutable args : Host_intf.Args.t;
}

(* Per-attachment telemetry handles, resolved once at attach time: the
   labels (host, point, program, bytecode, engine) are fixed for the
   attachment's whole lifetime, so the hot path pays only the store per
   event, never a registry lookup. *)
type probe = {
  span_tags : (string * string) list;
  p_runs : Telemetry.Counter.t;
  p_next : Telemetry.Counter.t;
  p_insns : Telemetry.Histogram.t;
  p_ns : Telemetry.Histogram.t;
  p_heap : Telemetry.Gauge.t;
}

type attachment = {
  ext : ext;
  bc_name : string;
  order : int;
  runtimes : runtime array;
      (** one VM per shard — the per-shard execution surface. A shard's
          runtimes are only ever driven from one domain at a time (the
          shard's worker in the parallel lane, or the coordinating
          domain after a barrier), which is what makes the mutable
          [runtime] fields safe without locks. Unsharded VMMs have a
          single entry. *)
  probe : probe;
  summary : Xprog.dispatch_summary;
      (** computed once at attach time; persistent scratch makes the
          run count observable, so such bytecodes are pinned effectful *)
}

type stats = {
  mutable runs : int;  (** bytecode executions started *)
  mutable native_fallbacks : int;  (** chains that ended in native code *)
  mutable faults : int;
  mutable next_calls : int;
  mutable insns : int;  (** total eBPF instructions retired *)
}

type fault = {
  fault_host : string;
  fault_point : Api.point;
  fault_program : string;
  fault_bytecode : string;
  fault_engine : Ebpf.Vm.engine;
  fault_pc : int option;
  fault_insn : string option;
  fault_chain_slot : int option;
      (** the faulting slot in the fused chain's address space
          ({!Ebpf.Chain.layout}); [Some] only for faults caught inside a
          fused dispatch *)
  fault_msg : string;
  fault_init : bool;
}

(* The legacy one-line rendering — [last_fault] consumers (fuzz
   reproducer logs, tests) rely on this exact shape. *)
let render_fault f =
  if f.fault_init then
    Printf.sprintf "%s: init of %s/%s faulted: %s" f.fault_host
      f.fault_program f.fault_bytecode f.fault_msg
  else
    Printf.sprintf "%s: extension %s/%s at %s faulted: %s" f.fault_host
      f.fault_program f.fault_bytecode
      (Api.point_name f.fault_point)
      f.fault_msg

let fault_detail f =
  let chain =
    match f.fault_chain_slot with
    | Some off -> Printf.sprintf "; chain slot %d" off
    | None -> ""
  in
  let where =
    match (f.fault_pc, f.fault_insn) with
    | Some pc, Some insn -> Printf.sprintf " [%s, slot %d: %s%s]"
        (Ebpf.Vm.engine_name f.fault_engine) pc insn chain
    | Some pc, None ->
      Printf.sprintf " [%s, slot %d%s]"
        (Ebpf.Vm.engine_name f.fault_engine) pc chain
    | None, _ -> Printf.sprintf " [%s]" (Ebpf.Vm.engine_name f.fault_engine)
  in
  render_fault f ^ where

(* Per-dispatch context of a fused chain: [run] arms the host's ops,
   args and native default here (three stores), the fused sites and the
   fallback read them. One preallocated cell per compiled unit. *)
type fused_ctx = {
  mutable c_ops : Host_intf.ops;
  mutable c_args : Host_intf.Args.t;
  mutable c_default : unit -> int64;
}

(* A whole-chain compiled dispatch unit — the [Chain] engine's upper
   half (its lower half, inside [Ebpf.Vm], executes as [Block]). *)
type fused = {
  f_enter : unit -> int64;
  f_ctx : fused_ctx;
  f_layout : Ebpf.Chain.layout;
}

(* Last-dispatch trace: which bytecodes of the chain ran and what each
   returned, captured by [run] into preallocated arrays so the hot path
   pays two int stores per bytecode and nothing allocates. Hosts turn it
   into provenance steps via [last_trace] immediately after their
   dispatch wrapper returns — a nested dispatch (import -> rib_add ->
   export) overwrites it. One trace per shard: concurrent dispatches on
   different shards each keep their own. *)
type trace = {
  mutable trace_point : int;  (** point index of the traced dispatch; -1 none *)
  mutable trace_gen : int;  (** [generation] at capture; stale -> no trace *)
  mutable trace_len : int;
  mutable trace_out : int array;  (** 0 = returned value, 1 = next(), 2 = fault *)
  mutable trace_val : int64;  (** r0 of the deciding bytecode *)
}

(* A staged recorder event: what [Obs.Recorder.record] would have been
   called with. Workers stage instead of recording so the coordinating
   domain can replay events in deterministic (submission) order. *)
type event = Obs.Recorder.kind * (string * string) list

(* Everything a dispatch mutates, split per shard so shard [s]'s
   dispatches — driven from at most one domain at a time — never share
   mutable state with shard [s']'s. The single-writer-per-shard
   discipline is the host's to uphold (workers own their shard; the
   coordinating domain only touches a shard's surface after a barrier);
   the VMM provides the partitioned state. *)
type shard_state = {
  s_stats : stats;
  s_trace : trace;
  s_fused : fused option array;
      (** indexed by [Api.point_index]: the point's whole-chain compiled
          dispatch unit for this shard, valid while [s_fused_gen]
          matches [generation]. [None] under a current generation means
          the chain is not fusable (empty, or not all-[Chain]) and [run]
          keeps the generic loop *)
  s_fused_gen : int array;
  mutable s_events : event list;  (** staged, newest first *)
  mutable s_capturing : bool;
      (** when set, recorder-bound events from this shard's dispatches
          are staged in [s_events] instead of hitting the recorder *)
}

let fresh_shard_state () =
  {
    s_stats =
      { runs = 0; native_fallbacks = 0; faults = 0; next_calls = 0; insns = 0 };
    s_trace =
      {
        trace_point = -1;
        trace_gen = -1;
        trace_len = 0;
        trace_out = Array.make 8 0;
        trace_val = 0L;
      };
    s_fused = Array.make Api.num_points None;
    s_fused_gen = Array.make Api.num_points (-1);
    s_events = [];
    s_capturing = false;
  }

type t = {
  host : string;
  extensions : (string, ext) Hashtbl.t;
  chains : attachment array array;
      (** indexed by [Api.point_index]; total over all points, so an
          unattached (or never-touched) point is an empty array and
          dispatch can never raise [Not_found] *)
  heap_size : int;
  budget : int;
  engine : Ebpf.Vm.engine;
  mutable shard_state : shard_state array;
      (** one per shard; length 1 = the unsharded VMM, where every code
          path below degenerates to the pre-sharding behaviour *)
  tele : Telemetry.t;
  fallbacks : Telemetry.Counter.t array;  (** indexed by [Api.point_index] *)
  mutable last_fault_record : fault option;
  mutable generation : int;
      (** bumped on every attach/detach, so hosts caching decisions
          derived from the chains (update-group keys) can revalidate
          with one integer compare *)
  mutable recorder : Obs.Recorder.t option;
      (** flight recorder for faults, native fallbacks and map
          evictions; [None] (the default) costs one load per event *)
}

let create ?(heap_size = 1 lsl 16) ?(budget = Ebpf.Vm.default_budget)
    ?(engine = Ebpf.Vm.Interpreted) ?telemetry ~host () =
  let tele =
    match telemetry with
    | Some t -> t
    | None -> Telemetry.create ~enabled:false ()
  in
  let fallbacks =
    Array.map
      (fun p ->
        Telemetry.counter tele
          ~help:"chains that ended in the host's native code"
          ~name:"xbgp_native_fallbacks_total"
          ~labels:[ ("host", host); ("point", Api.point_name p) ]
          ())
      (Array.of_list Api.all_points)
  in
  {
    host;
    extensions = Hashtbl.create 8;
    chains = Array.make Api.num_points [||];
    heap_size;
    budget;
    engine;
    shard_state = [| fresh_shard_state () |];
    tele;
    fallbacks;
    last_fault_record = None;
    generation = 0;
    recorder = None;
  }

let shards t = Array.length t.shard_state

(** Re-partition the VMM into [n] shards. Only legal while nothing is
    attached: attachments own per-shard VMs and live maps, and resizing
    under them would have to rebuild both (hosts set the shard count
    once, before loading the manifest). *)
let set_shards t n : (unit, string) result =
  if n < 1 then Error "set_shards: shard count must be >= 1"
  else if Array.exists (fun c -> Array.length c > 0) t.chains then
    Error "set_shards: programs are attached; set the shard count first"
  else begin
    t.shard_state <- Array.init n (fun _ -> fresh_shard_state ());
    Ok ()
  end

(* Aggregate stats across shards. The unsharded VMM hands out its live
   record (callers hold it across runs and read updated fields — the
   historical contract); a sharded one sums into a fresh snapshot. *)
let stats t =
  if Array.length t.shard_state = 1 then t.shard_state.(0).s_stats
  else
    Array.fold_left
      (fun acc ss ->
        {
          runs = acc.runs + ss.s_stats.runs;
          native_fallbacks = acc.native_fallbacks + ss.s_stats.native_fallbacks;
          faults = acc.faults + ss.s_stats.faults;
          next_calls = acc.next_calls + ss.s_stats.next_calls;
          insns = acc.insns + ss.s_stats.insns;
        })
      { runs = 0; native_fallbacks = 0; faults = 0; next_calls = 0; insns = 0 }
      t.shard_state

let shard_runs t shard = t.shard_state.(shard).s_stats.runs
let generation t = t.generation
let telemetry t = t.tele
let last_fault_record t = t.last_fault_record
let last_fault t = Option.map render_fault t.last_fault_record
let set_recorder t r = t.recorder <- r
let recorder t = t.recorder

(* Route one recorder-bound event: staged when the shard is capturing
   (the host replays it later in deterministic order), straight to the
   recorder otherwise. *)
let emit_event t ~shard kind fields =
  let ss = t.shard_state.(shard) in
  if ss.s_capturing then ss.s_events <- (kind, fields) :: ss.s_events
  else
    match t.recorder with
    | None -> ()
    | Some r -> Obs.Recorder.record r kind fields

(** Start staging recorder-bound events (faults, native fallbacks, map
    evictions) from [shard]'s dispatches instead of recording them. *)
let begin_events t ~shard =
  let ss = t.shard_state.(shard) in
  ss.s_events <- [];
  ss.s_capturing <- true

(** Stop staging and return the staged events in emission order. *)
let take_events t ~shard : event list =
  let ss = t.shard_state.(shard) in
  let evs = List.rev ss.s_events in
  ss.s_events <- [];
  ss.s_capturing <- false;
  evs

(** Replay events captured by {!take_events} into the recorder — called
    by the coordinating domain, in commit order. *)
let replay_events t (evs : event list) =
  match t.recorder with
  | None -> ()
  | Some r -> List.iter (fun (k, fields) -> Obs.Recorder.record r k fields) evs

(** Register an xBGP program: verify every bytecode against the structural
    checks, the program's helper whitelist and its map declarations, then
    instantiate its persistent scratch. Maps are *not* created here — the
    VMM owns their lifecycle and brings them up at the first attach. *)
let register t (prog : Xprog.t) : (unit, string) result =
  if Hashtbl.mem t.extensions prog.name then
    Error (Printf.sprintf "program %S already registered" prog.name)
  else begin
    let bad =
      List.filter_map
        (fun (name, code) ->
          match
            Ebpf.Verifier.check ?allowed_helpers:prog.allowed_helpers
              ~map_helpers:[ Api.h_map_lookup; Api.h_map_update; Api.h_map_delete ]
              ~maps:prog.maps code
          with
          | Ok () -> None
          | Error es ->
            Some
              (Fmt.str "%s/%s: %a" prog.name name
                 Fmt.(list ~sep:semi Ebpf.Verifier.pp_error)
                 es))
        prog.bytecodes
    in
    match bad with
    | e :: _ -> Error ("verifier rejected " ^ e)
    | [] ->
      let ext =
        { prog; maps = None; scratch = Bytes.make prog.scratch_size '\x00' }
      in
      Hashtbl.replace t.extensions prog.name ext;
      Ok ()
  end

(* --- map lifecycle ---

   Maps come up when the program gains its first attachment and are torn
   down when it loses its last one (across *all* points — the bytecodes
   of one program share state, so the maps must survive as long as any
   of them can run). Contents do survive plain dispatches; only the
   attach/detach edges move state. *)

let map_probe t (ext : ext) ?shard (spec : Ebpf.Map.spec) : live_map =
  let labels =
    [ ("host", t.host); ("program", ext.prog.Xprog.name); ("map", spec.name) ]
    @
    (* per-shard instances get their own telemetry series; the single
       instance of a shared map (and every map of an unsharded VMM)
       keeps the historical label set *)
    match shard with
    | Some s -> [ ("shard", string_of_int s) ]
    | None -> []
  in
  let counter help name =
    Telemetry.counter t.tele ~help ~name ~labels ()
  in
  {
    map = Ebpf.Map.create spec;
    m_lock = (if spec.shared then Some (Mutex.create ()) else None);
    m_entries =
      Telemetry.gauge t.tele ~help:"live map entries" ~name:"xbgp_map_entries"
        ~labels ();
    m_hits = counter "map lookup hits" "xbgp_map_lookup_hits_total";
    m_misses = counter "map lookup misses" "xbgp_map_lookup_misses_total";
    m_updates = counter "map updates applied" "xbgp_map_updates_total";
    m_deletes = counter "map entries deleted" "xbgp_map_deletes_total";
    m_evictions = counter "LRU evictions" "xbgp_map_evictions_total";
  }

let ensure_maps_live t (ext : ext) =
  match ext.maps with
  | Some _ -> ()
  | None ->
    let n = Array.length t.shard_state in
    let specs = ext.prog.Xprog.maps in
    (* a shared spec yields ONE instance referenced from every shard's
       row; an unshared spec yields one instance per shard *)
    let shared_insts =
      List.map
        (fun (s : Ebpf.Map.spec) ->
          if s.shared then Some (map_probe t ext s) else None)
        specs
    in
    ext.maps <-
      Some
        (Array.init n (fun shard ->
             Array.of_list
               (List.map2
                  (fun (s : Ebpf.Map.spec) pre ->
                    match pre with
                    | Some lm -> lm
                    | None ->
                      map_probe t ext
                        ?shard:(if n > 1 then Some shard else None)
                        s)
                  specs shared_insts)))

let destroy_maps (ext : ext) =
  (match ext.maps with
  | Some rows ->
    Array.iter
      (fun live ->
        Array.iter (fun lm -> Telemetry.Gauge.set lm.m_entries 0) live)
      rows
  | None -> ());
  ext.maps <- None

(* --- bytecode execution --- *)

type exec_outcome = Value of int64 | Deferred | Faulted of string

let blob_of_bytes payload =
  let b = Bytes.create (Api.blob_header_size + Bytes.length payload) in
  Bytes.set_int32_le b 0 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 b Api.blob_header_size (Bytes.length payload);
  b

let u32_of v = Int64.to_int (Int64.logand v 0xFFFFFFFFL)

(* Wrap one helper with its call counter (always on, always exact) and,
   on the sampled ticks of an enabled registry, a latency histogram (the
   two clock reads are the expensive part). Handles are interned per
   (helper, host), so every attachment of the same VMM shares them. *)
let instrument_helper t (id, f) =
  let labels = [ ("helper", Api.helper_name id); ("host", t.host) ] in
  let calls =
    Telemetry.counter t.tele ~help:"helper invocations"
      ~name:"xbgp_helper_calls_total" ~labels ()
  in
  let lat =
    Telemetry.histogram t.tele ~help:"helper latency in nanoseconds"
      ~name:"xbgp_helper_ns" ~labels ()
  in
  ( id,
    fun vm a ->
      Telemetry.Counter.inc calls;
      if Telemetry.sample t.tele then begin
        let t0 = Telemetry.now_ns t.tele in
        let r = f vm a in
        Telemetry.Histogram.observe lat (Telemetry.now_ns t.tele - t0);
        r
      end
      else f vm a )

(* The per-attachment VM, heap and helper bindings. Helpers read the
   current operation's context through the runtime's mutable [ops]/[args]
   fields. The ephemeral heap is reclaimed wholesale after each run by
   resetting [heap_pos]; its *contents* are not scrubbed, which is safe
   because the region starts zeroed and belongs to one attachment of one
   program (its own earlier writes are all it can ever see). *)
let make_runtime t (ext : ext) ~shard (code : Ebpf.Insn.t list) : runtime =
  let mem = Ebpf.Memory.create () in
  let heap =
    Ebpf.Memory.add_region mem ~name:"heap" ~base:Api.heap_base ~writable:true
      (Bytes.make t.heap_size '\x00')
  in
  if Bytes.length ext.scratch > 0 then
    ignore
      (Ebpf.Memory.add_region mem ~name:"scratch" ~base:Api.scratch_base
         ~writable:true ext.scratch);
  (* the program's manifest-declared engine wins over the VMM default *)
  let engine = Option.value ext.prog.engine ~default:t.engine in
  (* Map-helper slots bind their live [Ebpf.Map] instances here, once:
     runtimes are only ever built for a program whose maps are already
     up ([attach] and [replace_program] call [ensure_maps_live] first),
     and a runtime dies with its attachment while the maps outlive it —
     so the per-call [ext.maps] match of earlier revisions bought
     nothing. A program with no maps binds the empty array. *)
  let live_maps =
    match ext.maps with Some rows -> rows.(shard) | None -> [||]
  in
  (* a shared map's single instance is hit from every shard's VMs, so
     its helper bodies serialize on the instance lock; per-shard
     instances take the [None] branch and pay nothing *)
  let with_map_lock lm f =
    match lm.m_lock with
    | None -> f ()
    | Some l ->
      Mutex.lock l;
      Fun.protect ~finally:(fun () -> Mutex.unlock l) f
  in
  let rec rt =
    lazy
      {
        vm =
          Ebpf.Vm.create ~budget:t.budget ~engine ~mem
            ~helpers:(List.map (instrument_helper t) helpers)
            code;
        heap;
        heap_pos = 0;
        ops = Host_intf.null_ops;
        args = Host_intf.Args.empty;
      }
  and alloc_raw size =
    let r = Lazy.force rt in
    let aligned = (size + 7) land lnot 7 in
    if r.heap_pos + aligned > t.heap_size then
      raise (Ebpf.Vm.Error "extension heap exhausted");
    let addr = Int64.add Api.heap_base (Int64.of_int r.heap_pos) in
    r.heap_pos <- r.heap_pos + aligned;
    addr
  and alloc_bytes payload =
    let addr = alloc_raw (Bytes.length payload) in
    Ebpf.Memory.write_bytes mem addr payload;
    addr
  and ops () = (Lazy.force rt).ops
  and args () = (Lazy.force rt).args
  and read_mem vm addr len =
    Ebpf.Memory.read_bytes (Ebpf.Vm.memory vm) addr len
  and live_map idx =
    if idx < 0 || idx >= Array.length live_maps then
      raise (Ebpf.Vm.Error (Printf.sprintf "no map %d" idx))
    else live_maps.(idx)
  and helpers =
    [
      (Api.h_next, fun _ _ -> raise Next);
      ( Api.h_get_arg,
        fun _ a ->
          match Host_intf.Args.find (args ()) (u32_of a.(0)) with
          | Some payload -> alloc_bytes (blob_of_bytes payload)
          | None -> 0L );
      ( Api.h_arg_len,
        fun _ a ->
          match Host_intf.Args.find (args ()) (u32_of a.(0)) with
          | Some payload -> Int64.of_int (Bytes.length payload)
          | None -> -1L );
      ( Api.h_get_peer_info,
        fun _ _ ->
          match (ops ()).peer_info () with
          | Some pi -> alloc_bytes (Host_intf.peer_info_to_bytes pi)
          | None -> 0L );
      ( Api.h_get_nexthop,
        fun _ _ ->
          match (ops ()).nexthop () with
          | Some nh -> alloc_bytes (Host_intf.nexthop_to_bytes nh)
          | None -> 0L );
      ( Api.h_get_attr,
        fun _ a ->
          match (ops ()).get_attr (u32_of a.(0)) with
          | Some tlv -> alloc_bytes tlv
          | None -> 0L );
      ( Api.h_set_attr,
        fun vm a ->
          let header = read_mem vm a.(0) 4 in
          let len = Bytes.get_uint16_be header 2 in
          let tlv = read_mem vm a.(0) (4 + len) in
          if (ops ()).set_attr tlv then 0L else -1L );
      ( Api.h_add_attr,
        fun vm a ->
          let code = u32_of a.(0) land 0xff in
          let flags = u32_of a.(1) land 0xff in
          let len = u32_of a.(2) in
          if len > 0xffff then raise (Ebpf.Vm.Error "add_attr: length");
          let payload = read_mem vm a.(3) len in
          let tlv = Bytes.create (4 + len) in
          Bytes.set_uint8 tlv 0 flags;
          Bytes.set_uint8 tlv 1 code;
          Bytes.set_uint16_be tlv 2 len;
          Bytes.blit payload 0 tlv 4 len;
          if (ops ()).set_attr tlv then 0L else -1L );
      ( Api.h_remove_attr,
        fun _ a -> if (ops ()).remove_attr (u32_of a.(0)) then 0L else -1L );
      ( Api.h_get_xtra,
        fun vm a ->
          let key = Ebpf.Memory.read_cstring (Ebpf.Vm.memory vm) a.(0) in
          match (ops ()).get_xtra key with
          | Some payload -> alloc_bytes (blob_of_bytes payload)
          | None -> 0L );
      ( Api.h_write_buf,
        fun vm a ->
          let len = u32_of a.(1) in
          let data = read_mem vm a.(0) len in
          if (ops ()).write_buf data then Int64.of_int len else -1L );
      ( Api.h_memalloc,
        fun _ a ->
          let size = u32_of a.(0) in
          if size <= 0 then 0L else alloc_raw size );
      ( Api.h_print,
        fun vm a ->
          (ops ()).log (Ebpf.Memory.read_cstring (Ebpf.Vm.memory vm) a.(0));
          0L );
      (Api.h_htonl, fun _ a -> Int64.logand (Ebpf.Vm.bswap32 a.(0)) 0xFFFFFFFFL);
      (Api.h_htons, fun _ a -> Ebpf.Vm.bswap16 a.(0));
      (* Map helpers copy the key/value out of VM memory (immutable
         strings — a stored entry can never alias bytecode-visible
         memory) and a looked-up value into freshly allocated ephemeral
         heap, so the blob dies with the run while the entry lives with
         the map. Lookup returns the RAW value bytes, no blob header. *)
      ( Api.h_map_lookup,
        fun vm a ->
          let lm = live_map (u32_of a.(0)) in
          let ks = (Ebpf.Map.spec lm.map).Ebpf.Map.key_size in
          let key = Bytes.to_string (read_mem vm a.(1) ks) in
          match with_map_lock lm (fun () -> Ebpf.Map.lookup lm.map key) with
          | Some value ->
            Telemetry.Counter.inc lm.m_hits;
            alloc_bytes (Bytes.of_string value)
          | None ->
            Telemetry.Counter.inc lm.m_misses;
            0L );
      ( Api.h_map_update,
        fun vm a ->
          let lm = live_map (u32_of a.(0)) in
          let spec = Ebpf.Map.spec lm.map in
          let key =
            Bytes.to_string (read_mem vm a.(1) spec.Ebpf.Map.key_size)
          in
          let value =
            Bytes.to_string (read_mem vm a.(2) spec.Ebpf.Map.value_size)
          in
          let ok, evicted, entries =
            with_map_lock lm (fun () ->
                let ev0 = (Ebpf.Map.stats lm.map).Ebpf.Map.evictions in
                let ok = Ebpf.Map.update lm.map key value in
                let ev1 = (Ebpf.Map.stats lm.map).Ebpf.Map.evictions in
                (ok, ev1 - ev0, Ebpf.Map.length lm.map))
          in
          if evicted > 0 then begin
            Telemetry.Counter.add lm.m_evictions evicted;
            emit_event t ~shard Obs.Recorder.Map_evict
              [
                ("host", t.host);
                ("program", ext.prog.Xprog.name);
                ("map", spec.Ebpf.Map.name);
                ("n", string_of_int evicted);
              ]
          end;
          if ok then begin
            Telemetry.Counter.inc lm.m_updates;
            Telemetry.Gauge.set lm.m_entries entries;
            0L
          end
          else -1L );
      ( Api.h_map_delete,
        fun vm a ->
          let lm = live_map (u32_of a.(0)) in
          let ks = (Ebpf.Map.spec lm.map).Ebpf.Map.key_size in
          let key = Bytes.to_string (read_mem vm a.(1) ks) in
          let deleted, entries =
            with_map_lock lm (fun () ->
                (Ebpf.Map.delete lm.map key, Ebpf.Map.length lm.map))
          in
          if deleted then begin
            Telemetry.Counter.inc lm.m_deletes;
            Telemetry.Gauge.set lm.m_entries entries;
            0L
          end
          else -1L );
      ( Api.h_rib_add,
        fun _ a ->
          if
            (ops ()).rib_add ~addr:(u32_of a.(0)) ~len:(u32_of a.(1))
              ~nexthop:(u32_of a.(2))
          then 0L
          else -1L );
      ( Api.h_log_int,
        fun vm a ->
          let label = Ebpf.Memory.read_cstring (Ebpf.Vm.memory vm) a.(0) in
          (ops ()).log (Printf.sprintf "%s=%Ld" label a.(1));
          0L );
    ]
  in
  Lazy.force rt

let outcome_name = function
  | Value _ -> "value"
  | Deferred -> "next"
  | Faulted _ -> "fault"

let exec_one t att ~shard ~(ops : Host_intf.ops) ~(args : Host_intf.Args.t) :
    exec_outcome =
  let rt = att.runtimes.(shard) in
  let st = t.shard_state.(shard).s_stats in
  rt.ops <- ops;
  rt.args <- args;
  rt.heap_pos <- 0;
  Ebpf.Vm.set_budget rt.vm t.budget;
  st.runs <- st.runs + 1;
  Telemetry.Counter.inc att.probe.p_runs;
  let enabled = Telemetry.enabled t.tele in
  (* [span_begin] applies the registry's 1-in-N sampling; a dummy span
     (id 0) means this run pays for neither clock reads nor the end-tag
     allocation. Counters and the instruction histogram stay exact. *)
  let span = Telemetry.span_begin t.tele ~tags:att.probe.span_tags "xbgp.run" in
  let sampled = span.Telemetry.Span.id <> 0 in
  let before = Ebpf.Vm.executed rt.vm in
  let t0_ns = if sampled then Telemetry.now_ns t.tele else 0 in
  let outcome =
    try Value (Ebpf.Vm.run rt.vm) with
    | Next ->
      st.next_calls <- st.next_calls + 1;
      Telemetry.Counter.inc att.probe.p_next;
      Deferred
    | Ebpf.Vm.Error msg | Ebpf.Memory.Fault msg -> Faulted msg
  in
  (* [Ebpf.Vm.executed] is cumulative over the reused VM's lifetime; the
     per-run figure is the delta *)
  let insns = Ebpf.Vm.executed rt.vm - before in
  st.insns <- st.insns + insns;
  if enabled then begin
    Telemetry.Histogram.observe att.probe.p_insns insns;
    Telemetry.Gauge.set att.probe.p_heap rt.heap_pos
  end;
  if sampled then begin
    Telemetry.Histogram.observe att.probe.p_ns
      (Telemetry.now_ns t.tele - t0_ns);
    Telemetry.span_end t.tele span
      ~tags:
        [
          ("outcome", outcome_name outcome);
          ("insns", string_of_int insns);
          ("budget_left", string_of_int (Ebpf.Vm.budget rt.vm));
          ("heap", string_of_int rt.heap_pos);
        ]
  end;
  rt.ops <- Host_intf.null_ops;
  rt.args <- Host_intf.Args.empty;
  outcome

(* Capture the structured fault record and bump the labeled fault
   counter. The disassembly is best effort: exact for the interpreter,
   the faulting block's leader for [Block], absent for [Compiled]. *)
let record_fault ?chain_slot t att ~shard point ~init msg =
  let vm = att.runtimes.(shard).vm in
  let pc = Ebpf.Vm.fault_pc vm in
  let insn =
    Option.bind pc (fun pc ->
        Option.map Ebpf.Disasm.insn_to_string (Ebpf.Vm.insn_at vm pc))
  in
  let f =
    {
      fault_host = t.host;
      fault_point = point;
      fault_program = att.ext.prog.name;
      fault_bytecode = att.bc_name;
      fault_engine = Ebpf.Vm.engine vm;
      fault_pc = pc;
      fault_insn = insn;
      fault_chain_slot = chain_slot;
      fault_msg = msg;
      fault_init = init;
    }
  in
  t.last_fault_record <- Some f;
  Telemetry.Counter.inc
    (Telemetry.counter t.tele ~help:"bytecode faults"
       ~name:"xbgp_faults_total"
       ~labels:
         (att.probe.span_tags @ [ ("insn", Option.value ~default:"-" insn) ])
       ());
  emit_event t ~shard Obs.Recorder.Xprog_fault
    [
      ("host", t.host);
      ("point", Api.point_name point);
      ("program", att.ext.prog.name);
      ("bytecode", att.bc_name);
      ("msg", msg);
    ];
  f

let make_probe t (ext : ext) ~bytecode ~point =
  let engine = Option.value ext.prog.engine ~default:t.engine in
  let labels =
    [
      ("host", t.host);
      ("point", Api.point_name point);
      ("program", ext.prog.name);
      ("bytecode", bytecode);
      ("engine", Ebpf.Vm.engine_name engine);
    ]
  in
  {
    span_tags = labels;
    p_runs =
      Telemetry.counter t.tele ~help:"bytecode executions started"
        ~name:"xbgp_runs_total" ~labels ();
    p_next =
      Telemetry.counter t.tele ~help:"next() deferrals"
        ~name:"xbgp_next_total" ~labels ();
    p_insns =
      Telemetry.histogram t.tele ~help:"instructions retired per run"
        ~name:"xbgp_run_insns" ~labels ();
    p_ns =
      Telemetry.histogram t.tele ~help:"wall time per run in nanoseconds"
        ~name:"xbgp_run_ns" ~labels ();
    p_heap =
      Telemetry.gauge t.tele
        ~help:"ephemeral-heap bytes used by the last run (max = high water)"
        ~name:"xbgp_heap_bytes" ~labels ();
  }

(* --- whole-chain compilation: the [Chain] engine's upper half ---

   [Block] removed per-instruction dispatch *inside* one bytecode; the
   E8/E9 ablation showed the residual native-vs-extension gap lives in
   the crossing *around* it — [exec_one]'s engine dispatch, outcome
   boxing, and the loop that walks the attachment chain. When every
   attachment at a point resolves to the [Chain] engine, the VMM
   compiles the point's whole chain into one closure ([Ebpf.Chain.fuse])
   on the first dispatch after the chains change:

   - each site specializes its prologue/epilogue — budget refill, heap
     reset, probe handles, trace stores — around [Vm.prepared_entry],
     which resolves the VM's engine dispatch and entry checks once;
   - the attach-time dispatch summary prunes argument plumbing for
     bytecodes that provably never read an argument ([get_attr] TLVs
     already cross at most once per dispatch: conversion caching keys on
     the route, so a chain of N programs re-reading the same attribute
     marshals it once, not N times);
   - map-helper slots were bound to their live [Ebpf.Map] instances when
     the runtime was built (see [make_runtime]);
   - a value exits the closure directly, a deferral falls through to the
     next site's closure with no loop re-entry, a fault routes to the
     shared fallback.

   Per-site budget refill is kept deliberately: hoisting a single budget
   across the chain would change which programs exhaust it — the fused
   unit must stay bit-exact with the generic loop (the N-way fuzz oracle
   checks value, registers, helper trace, map fingerprints and
   provenance across engines on every campaign).

   Anything unfusable — an empty chain, a mixed-engine chain — keeps the
   generic loop below, which is exact for [Chain] attachments too: a
   [Chain] VM executes as [Block] inside [Ebpf.Vm]. Invalidation rides
   the existing [generation] machinery (attach / detach /
   [replace_program] each bump it), so a rekey recompiles the fused
   closure on the very next dispatch with no dropped dispatches in
   between. *)

let unarmed_default () =
  invalid_arg "xbgp: fused dispatch entered with no armed context"

let fusable chain =
  Array.length chain > 0
  && Array.for_all
       (fun att -> Ebpf.Vm.engine att.runtimes.(0).vm = Ebpf.Vm.Chain)
       chain

let compile_fused t ~shard idx point chain =
  let ss = t.shard_state.(shard) in
  let st = ss.s_stats in
  let tr = ss.s_trace in
  let n = Array.length chain in
  if Array.length tr.trace_out < n then tr.trace_out <- Array.make n 0;
  let ctx =
    {
      c_ops = Host_intf.null_ops;
      c_args = Host_intf.Args.empty;
      c_default = unarmed_default;
    }
  in
  let layout =
    Ebpf.Chain.layout
      (Array.map (fun att -> Ebpf.Vm.program_slots att.runtimes.(shard).vm) chain)
  in
  let fallback () =
    st.native_fallbacks <- st.native_fallbacks + 1;
    Telemetry.Counter.inc t.fallbacks.(idx);
    emit_event t ~shard Obs.Recorder.Native_fallback
      [ ("host", t.host); ("point", Api.point_name point) ];
    ctx.c_default ()
  in
  (* One site = [exec_one]'s exact observable sequence, specialized.
     [Telemetry.enabled] is re-read per run (the registry is mutable);
     only what cannot change under this generation is resolved here. *)
  let site i att =
    let rt = att.runtimes.(shard) in
    let probe = att.probe in
    let entry = Ebpf.Vm.prepared_entry rt.vm in
    let wants_args = att.summary.Xprog.arg_reads <> Some [] in
    let budget = t.budget in
    let run () =
      rt.ops <- ctx.c_ops;
      if wants_args then rt.args <- ctx.c_args;
      rt.heap_pos <- 0;
      Ebpf.Vm.set_budget rt.vm budget;
      st.runs <- st.runs + 1;
      Telemetry.Counter.inc probe.p_runs;
      let enabled = Telemetry.enabled t.tele in
      let span =
        Telemetry.span_begin t.tele ~tags:probe.span_tags "xbgp.run"
      in
      let sampled = span.Telemetry.Span.id <> 0 in
      let before = Ebpf.Vm.executed rt.vm in
      let t0_ns = if sampled then Telemetry.now_ns t.tele else 0 in
      let finish outcome =
        let insns = Ebpf.Vm.executed rt.vm - before in
        st.insns <- st.insns + insns;
        if enabled then begin
          Telemetry.Histogram.observe probe.p_insns insns;
          Telemetry.Gauge.set probe.p_heap rt.heap_pos
        end;
        if sampled then begin
          Telemetry.Histogram.observe probe.p_ns
            (Telemetry.now_ns t.tele - t0_ns);
          Telemetry.span_end t.tele span
            ~tags:
              [
                ("outcome", outcome);
                ("insns", string_of_int insns);
                ("budget_left", string_of_int (Ebpf.Vm.budget rt.vm));
                ("heap", string_of_int rt.heap_pos);
              ]
        end;
        rt.ops <- Host_intf.null_ops;
        rt.args <- Host_intf.Args.empty
      in
      match entry () with
      | v ->
        finish "value";
        v
      | exception Next ->
        st.next_calls <- st.next_calls + 1;
        Telemetry.Counter.inc probe.p_next;
        finish "next";
        raise Next
      | exception ((Ebpf.Vm.Error _ | Ebpf.Memory.Fault _) as e) ->
        finish "fault";
        raise e
    in
    let on_value v =
      tr.trace_out.(i) <- 0;
      tr.trace_val <- v;
      tr.trace_len <- i + 1
    in
    let on_defer () =
      tr.trace_out.(i) <- 1;
      tr.trace_len <- i + 1
    in
    let on_fault msg =
      st.faults <- st.faults + 1;
      let chain_slot =
        Option.map
          (fun pc -> Ebpf.Chain.offset layout ~site:i ~pc)
          (Ebpf.Vm.fault_pc rt.vm)
      in
      let err =
        render_fault
          (record_fault ?chain_slot t att ~shard point ~init:false msg)
      in
      Log.warn (fun m -> m "%s" err);
      ctx.c_ops.log err;
      tr.trace_out.(i) <- 2;
      tr.trace_len <- i + 1
    in
    { Ebpf.Chain.run; on_value; on_defer; on_fault }
  in
  let sites = Array.mapi site chain in
  let f_enter =
    Ebpf.Chain.fuse
      ~is_defer:(function Next -> true | _ -> false)
      ~sites ~fallback
  in
  { f_enter; f_ctx = ctx; f_layout = layout }

(* The (point, shard) fused unit under the current generation: cached,
   [None] if the chain is unfusable, recompiled at most once per
   generation per shard. Lazy compilation inherits the shard's
   single-driver discipline: whoever dispatches on the shard compiles
   for it, and nobody else dispatches on it concurrently. *)
let fused_for t ~shard idx point chain =
  let ss = t.shard_state.(shard) in
  if ss.s_fused_gen.(idx) = t.generation then ss.s_fused.(idx)
  else begin
    let f =
      if fusable chain then Some (compile_fused t ~shard idx point chain)
      else None
    in
    ss.s_fused.(idx) <- f;
    ss.s_fused_gen.(idx) <- t.generation;
    f
  end

(** Attach one bytecode of a registered program to an insertion point;
    [order] positions it in the point's execution queue (§2.1: "the
    manifest defines in which order they are executed"). *)
let attach t ~program ~bytecode ~point ~order : (unit, string) result =
  match Hashtbl.find_opt t.extensions program with
  | None -> Error (Printf.sprintf "program %S not registered" program)
  | Some ext -> (
    match Xprog.bytecode ext.prog bytecode with
    | None ->
      Error (Printf.sprintf "program %S has no bytecode %S" program bytecode)
    | Some code -> (
      let nshards = Array.length t.shard_state in
      (* Control points (message decode/encode/init) are not routed by
         prefix, so under sharding their dispatches may land on any
         shard — a per-shard map there would silently split state the
         program expects to be whole. Prefix-scoped points are exempt:
         their per-shard instances see a stable prefix partition. *)
      let control_point =
        match point with
        | Api.Bgp_init | Api.Bgp_receive_message | Api.Bgp_encode_message ->
          true
        | Api.Bgp_inbound_filter | Api.Bgp_decision | Api.Bgp_outbound_filter
          ->
          false
      in
      let per_shard_map =
        List.find_opt
          (fun (s : Ebpf.Map.spec) -> not s.shared)
          ext.prog.Xprog.maps
      in
      match per_shard_map with
      | Some m when nshards > 1 && control_point ->
        Error
          (Printf.sprintf
             "program %S declares per-shard map %S; attaching at control \
              point %s under %d shards requires declaring it 'shared'"
             program m.Ebpf.Map.name (Api.point_name point) nshards)
      | _ ->
      let idx = Api.point_index point in
      let summary =
        let s = Xprog.dispatch_summary code in
        if ext.prog.scratch_size > 0 then { s with Xprog.effectful = true }
        else s
      in
      (* maps come up with the program's first attachment *)
      ensure_maps_live t ext;
      let att =
        {
          ext;
          bc_name = bytecode;
          order;
          runtimes =
            Array.init nshards (fun shard -> make_runtime t ext ~shard code);
          probe = make_probe t ext ~bytecode ~point;
          summary;
        }
      in
      (* the chain is rebuilt per attach — cold path — so [run] reads a
         ready-sorted flat array with no per-dispatch sorting or consing *)
      t.chains.(idx) <-
        Array.of_list
          (List.sort
             (fun a b -> Int.compare a.order b.order)
             (att :: Array.to_list t.chains.(idx)));
      t.generation <- t.generation + 1;
      Ok ()))

let detach t ~program ~point =
  let idx = Api.point_index point in
  t.chains.(idx) <-
    Array.of_list
      (List.filter
         (fun a -> a.ext.prog.name <> program)
         (Array.to_list t.chains.(idx)));
  (* maps die with the program's last attachment — across all points,
     because every bytecode of the program shares them *)
  let still_attached =
    Array.exists
      (fun chain ->
        Array.exists (fun a -> a.ext.prog.name = program) chain)
      t.chains
  in
  if not still_attached then
    Option.iter destroy_maps (Hashtbl.find_opt t.extensions program);
  t.generation <- t.generation + 1

(* [Api.point_index] maps to [all_points] order, so the inverse is an
   array index. *)
let point_of_index =
  let arr = Array.of_list Api.all_points in
  fun i -> arr.(i)

(** Hot-swap a registered program with a new version — the rekey path.
    Attachments and their orders survive: every point where the program
    is attached gets fresh runtimes built from the new bytecodes, and
    the generation bump invalidates everything cached off the chains
    (update-group keys, fused chain closures), so the very next dispatch
    runs the new code — there is no detached window in which dispatches
    would fall back to native. The new version must pass the same
    verification as [register] and must still carry every bytecode name
    currently attached. Persistent scratch survives when its size is
    unchanged; map instances (and their contents) survive when the map
    specs are unchanged, otherwise they are torn down and recreated. *)
let replace_program t (prog : Xprog.t) : (unit, string) result =
  match Hashtbl.find_opt t.extensions prog.name with
  | None -> Error (Printf.sprintf "program %S not registered" prog.name)
  | Some old -> (
    let missing = ref [] in
    Array.iter
      (fun chain ->
        Array.iter
          (fun att ->
            if
              att.ext.prog.Xprog.name = prog.name
              && Xprog.bytecode prog att.bc_name = None
            then missing := att.bc_name :: !missing)
          chain)
      t.chains;
    match !missing with
    | bc :: _ ->
      Error
        (Printf.sprintf
           "replace %S: attached bytecode %S missing from the new version"
           prog.name bc)
    | [] -> (
      let bad =
        List.filter_map
          (fun (name, code) ->
            match
              Ebpf.Verifier.check ?allowed_helpers:prog.allowed_helpers
                ~map_helpers:
                  [ Api.h_map_lookup; Api.h_map_update; Api.h_map_delete ]
                ~maps:prog.maps code
            with
            | Ok () -> None
            | Error es ->
              Some
                (Fmt.str "%s/%s: %a" prog.name name
                   Fmt.(list ~sep:semi Ebpf.Verifier.pp_error)
                   es))
          prog.bytecodes
      in
      match bad with
      | e :: _ -> Error ("verifier rejected " ^ e)
      | [] ->
        let scratch =
          if prog.scratch_size = Bytes.length old.scratch then old.scratch
          else Bytes.make prog.scratch_size '\x00'
        in
        let keep_maps = prog.maps = old.prog.Xprog.maps in
        if not keep_maps then destroy_maps old;
        let ext =
          { prog; maps = (if keep_maps then old.maps else None); scratch }
        in
        Hashtbl.replace t.extensions prog.name ext;
        let attached_somewhere =
          Array.exists
            (fun chain ->
              Array.exists (fun a -> a.ext.prog.Xprog.name = prog.name) chain)
            t.chains
        in
        if attached_somewhere then ensure_maps_live t ext;
        Array.iteri
          (fun idx chain ->
            if
              Array.exists (fun a -> a.ext.prog.Xprog.name = prog.name) chain
            then begin
              let point = point_of_index idx in
              t.chains.(idx) <-
                Array.map
                  (fun att ->
                    if att.ext.prog.Xprog.name <> prog.name then att
                    else begin
                      let code =
                        Option.get (Xprog.bytecode prog att.bc_name)
                      in
                      let summary =
                        let s = Xprog.dispatch_summary code in
                        if prog.scratch_size > 0 then
                          { s with Xprog.effectful = true }
                        else s
                      in
                      {
                        ext;
                        bc_name = att.bc_name;
                        order = att.order;
                        runtimes =
                          Array.init
                            (Array.length t.shard_state)
                            (fun shard -> make_runtime t ext ~shard code);
                        probe = make_probe t ext ~bytecode:att.bc_name ~point;
                        summary;
                      }
                    end)
                  chain
            end)
          t.chains;
        t.generation <- t.generation + 1;
        Ok ()))

let attachments t point =
  List.map
    (fun a -> (a.ext.prog.name, a.bc_name, a.order))
    (Array.to_list t.chains.(Api.point_index point))

let has_attachment t point =
  Array.length t.chains.(Api.point_index point) > 0

let has_any_attachment t =
  Array.exists (fun chain -> Array.length chain > 0) t.chains

(* Whether the point currently dispatches through a compiled fused unit
   — introspection for the rekey test and the live-status CLI. Compiling
   is lazy (first dispatch after a generation bump), so this reports the
   state as of the last dispatch, without forcing a compile. Shard 0 is
   the reference surface (the only one in an unsharded VMM). *)
let chain_compiled t point =
  let idx = Api.point_index point in
  let ss = t.shard_state.(0) in
  ss.s_fused_gen.(idx) = t.generation && Option.is_some ss.s_fused.(idx)

(* Chain offset -> (program, bytecode, local pc) for the chain attached
   at [point] — fault reporters and divergence reports use it to
   disassemble a fused-chain slot. Cold path; reuses the compiled unit's
   layout when one is live, recomputes otherwise, so it works whether or
   not the point is fused. *)
let locate_chain_slot t point off =
  let idx = Api.point_index point in
  let chain = t.chains.(idx) in
  let ss = t.shard_state.(0) in
  let layout =
    match ss.s_fused.(idx) with
    | Some f when ss.s_fused_gen.(idx) = t.generation -> f.f_layout
    | _ ->
      Ebpf.Chain.layout
        (Array.map (fun att -> Ebpf.Vm.program_slots att.runtimes.(0).vm) chain)
  in
  Option.map
    (fun (site, pc) ->
      let att = chain.(site) in
      (att.ext.prog.Xprog.name, att.bc_name, pc))
    (Ebpf.Chain.locate layout off)

(* True when every bytecode attached at [point] provably computes the
   same result for every element of a batch whose members differ only in
   [variant_args]: no effectful helpers or persistent scratch, every
   argument read statically resolved to an id outside [variant_args],
   and no map access that makes the run count observable — writes are
   out entirely (they are also [effectful]), and every lookup must
   statically resolve to a non-LRU map, because an LRU lookup refreshes
   recency and thereby changes later eviction order. An empty chain is
   vacuously invariant. *)
let batch_invariant t point ~variant_args =
  Array.for_all
    (fun att ->
      (not att.summary.Xprog.effectful)
      && att.summary.Xprog.map_writes = Some []
      && (match att.summary.Xprog.map_reads with
         | None -> false
         | Some idxs ->
           List.for_all
             (fun i ->
               match List.nth_opt att.ext.prog.Xprog.maps i with
               | Some spec -> spec.Ebpf.Map.kind <> Ebpf.Map.Lru
               | None -> false)
             idxs)
      &&
      match att.summary.Xprog.arg_reads with
      | None -> false
      | Some reads -> not (List.exists (fun a -> List.mem a variant_args) reads))
    t.chains.(Api.point_index point)

(* True when every bytecode attached at [point] provably behaves the same
   towards every peer: the chain is global (all peers run the same
   bytecodes), so the only ways a run can depend on — or reveal — the
   peer are reading peer state ([h_get_peer_info]) and per-call
   observable effects (maps, logs, rib_add, persistent scratch: one run
   per group instead of one per peer changes what they see). Route edits
   and the ephemeral heap are fine — the exported route is shared by the
   whole group, exactly like an NLRI batch shares them. [h_write_buf] is
   per-call observable too, but at the encode point one buffer per group
   is precisely the semantics the caller wants, so it is opt-in.

   Map access of ANY kind — including lookups — disqualifies a chain
   from grouping: a per-peer-keyed map read necessarily depends on which
   peer is asking (the whole point of the key), and even a peer-blind
   LRU lookup refreshes recency, so one run per group would leave
   different state than one per peer. *)
let group_invariant t point ~allow_write_buf =
  Array.for_all
    (fun att ->
      att.ext.prog.Xprog.scratch_size = 0
      && List.for_all
           (fun id ->
             (allow_write_buf && id = Api.h_write_buf)
             || id <> Api.h_get_peer_info
                && id <> Api.h_map_lookup
                && List.mem id Xprog.batchable_helpers)
           att.summary.Xprog.helpers)
    t.chains.(Api.point_index point)

(* True when the chain at [point] may be dispatched concurrently from
   per-shard workers, one prefix-disjoint task stream per shard, and
   still be indistinguishable — route-for-route, map-entry-for-map-entry
   — from dispatching the same tasks sequentially. Each clause kills a
   specific way parallel order could become observable:

   - persistent scratch is one byte region shared by every shard's VMs:
     any scratch program both races and observes scheduling order;
   - helpers outside [batchable_helpers] (logging, rib_add, write_buf)
     have host-visible per-call effects whose interleaving the host
     cannot re-serialize; map writes are re-admitted below under their
     own placement rule;
   - a write to a SHARED map is applied under the instance lock in
     worker completion order, which is not submission order — only
     per-shard instances (disjoint key spaces, deterministic per-shard
     FIFO) keep writes deterministic;
   - a read of a shared LRU map refreshes recency, a write in disguise
     — the same reason LRU reads disqualify batching. Per-shard LRU
     reads stay in: each instance sees its shard's deterministic
     subsequence.

   Statically unresolvable map accesses ([None]) fail closed. An empty
   chain is vacuously safe (nothing runs). Hosts gate their parallel
   lane on this per generation and fall back to the serial lane — which
   still routes through the same per-shard VMs, so map placement never
   flips with the lane. *)
let shard_parallel_safe t point =
  Array.for_all
    (fun att ->
      att.ext.prog.Xprog.scratch_size = 0
      && List.for_all
           (fun id ->
             List.mem id Xprog.batchable_helpers
             || id = Api.h_map_update || id = Api.h_map_delete)
           att.summary.Xprog.helpers
      && (match att.summary.Xprog.map_writes with
         | None -> false
         | Some idxs ->
           List.for_all
             (fun i ->
               match List.nth_opt att.ext.prog.Xprog.maps i with
               | Some spec -> not spec.Ebpf.Map.shared
               | None -> false)
             idxs)
      &&
      match att.summary.Xprog.map_reads with
      | None -> false
      | Some idxs ->
        List.for_all
          (fun i ->
            match List.nth_opt att.ext.prog.Xprog.maps i with
            | Some spec ->
              (not spec.Ebpf.Map.shared) || spec.Ebpf.Map.kind <> Ebpf.Map.Lru
            | None -> false)
          idxs)
    t.chains.(Api.point_index point)

(* A stable textual identity of the chain at [point] — update-group keys
   embed it so an attach/detach re-partitions the peers. *)
let chain_signature t point =
  String.concat ";"
    (List.map
       (fun att ->
         Printf.sprintf "%s/%s@%d" att.ext.prog.Xprog.name att.bc_name
           att.order)
       (Array.to_list t.chains.(Api.point_index point)))

let registered t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.extensions []

(** Execute the bytecode chain attached to [point].

    [args] are the insertion-point arguments exposed through [get_arg]
    (ids from [Api]); [default] is the host's native implementation of the
    operation, used when nothing is attached, when the last bytecode calls
    [next()], or when a bytecode faults. *)
let run ?(shard = 0) t point ~(ops : Host_intf.ops)
    ~(args : Host_intf.Args.t) ~(default : unit -> int64) : int64 =
  let idx = Api.point_index point in
  let chain = t.chains.(idx) in
  let n = Array.length chain in
  if n = 0 then default ()
    (* the common case — no extension attached — costs one array load
       and a length test, with nothing allocated *)
  else
    match fused_for t ~shard idx point chain with
    | Some f ->
      (* whole-chain fused dispatch: arm the trace and the per-dispatch
         context, then one call runs the entire chain. The context is
         disarmed on the way out; an exception escaping the fused unit
         (a host callback raising) leaves it armed until the next
         dispatch overwrites it, exactly as harmless as the stale
         last-dispatch trace. *)
      let tr = t.shard_state.(shard).s_trace in
      tr.trace_point <- idx;
      tr.trace_gen <- t.generation;
      tr.trace_len <- 0;
      let ctx = f.f_ctx in
      ctx.c_ops <- ops;
      ctx.c_args <- args;
      ctx.c_default <- default;
      let r = f.f_enter () in
      ctx.c_ops <- Host_intf.null_ops;
      ctx.c_args <- Host_intf.Args.empty;
      ctx.c_default <- unarmed_default;
      r
    | None ->
  begin
    let ss = t.shard_state.(shard) in
    let st = ss.s_stats in
    let tr = ss.s_trace in
    (* arm the last-dispatch trace (two stores per bytecode, no
       allocation; [last_trace] rebuilds the structured view on demand) *)
    if Array.length tr.trace_out < n then tr.trace_out <- Array.make n 0;
    tr.trace_point <- idx;
    tr.trace_gen <- t.generation;
    tr.trace_len <- 0;
    let i = ref 0 and decided = ref false and result = ref 0L in
    while (not !decided) && !i < n do
      let att = chain.(!i) in
      match exec_one t att ~shard ~ops ~args with
      | Value v ->
        result := v;
        decided := true;
        tr.trace_out.(!i) <- 0;
        tr.trace_val <- v;
        tr.trace_len <- !i + 1
      | Deferred ->
        tr.trace_out.(!i) <- 1;
        tr.trace_len <- !i + 1;
        incr i
      | Faulted msg ->
        st.faults <- st.faults + 1;
        let err =
          render_fault (record_fault t att ~shard point ~init:false msg)
        in
        Log.warn (fun m -> m "%s" err);
        ops.log err;
        tr.trace_out.(!i) <- 2;
        tr.trace_len <- !i + 1;
        (* a fault abandons the rest of the chain and falls back *)
        i := n
    done;
    if !decided then !result
    else begin
      st.native_fallbacks <- st.native_fallbacks + 1;
      Telemetry.Counter.inc t.fallbacks.(idx);
      emit_event t ~shard Obs.Recorder.Native_fallback
        [ ("host", t.host); ("point", Api.point_name point) ];
      default ()
    end
  end

(** Run every bytecode attached to [Bgp_init] once (manifest load time).
    Faults are logged; initialization continues with the next bytecode.
    Init runs on shard 0 — persistent scratch and maps reachable from
    init must be shared or shard-0-resident by the attach-time rule. *)
let run_init t ~ops =
  Array.iter
    (fun att ->
      match exec_one t att ~shard:0 ~ops ~args:Host_intf.Args.empty with
      | Value _ | Deferred -> ()
      | Faulted msg ->
        t.shard_state.(0).s_stats.faults <-
          t.shard_state.(0).s_stats.faults + 1;
        let err =
          render_fault (record_fault t att ~shard:0 Api.Bgp_init ~init:true msg)
        in
        ops.log err)
    t.chains.(Api.point_index Api.Bgp_init)

(* --- introspection used by tests and the CLI --- *)

(* Render the r0 of the deciding bytecode in the point's return
   convention — provenance wants "accept", not "ret=0". *)
let outcome_value_name point v =
  match point with
  | Api.Bgp_inbound_filter | Api.Bgp_outbound_filter ->
    if v = Api.filter_accept then "accept"
    else if v = Api.filter_reject then "reject"
    else Printf.sprintf "ret=%Ld" v
  | Api.Bgp_decision ->
    if v = Api.decision_tie then "tie"
    else if v = Api.decision_first then "first"
    else if v = Api.decision_second then "second"
    else Printf.sprintf "ret=%Ld" v
  | _ -> Printf.sprintf "ret=%Ld" v

(* The last dispatch at [point] as provenance steps: one per bytecode
   that actually ran, in execution order, static facts (may it mutate
   attributes? which maps can it write?) from the attach-time dispatch
   summary and the dynamic verdict from the trace [run] just captured.
   [None] when the last traced dispatch was at a different point or the
   chains changed since — callers must read it before dispatching
   anything else (a nested import -> rib_add -> export overwrites it). *)
let last_trace ?(shard = 0) t point : Obs.Provenance.step list option =
  let idx = Api.point_index point in
  let tr = t.shard_state.(shard).s_trace in
  if tr.trace_point <> idx || tr.trace_gen <> t.generation then None
  else begin
    let chain = t.chains.(idx) in
    let n = min tr.trace_len (Array.length chain) in
    let steps = ref [] in
    for i = n - 1 downto 0 do
      let att = chain.(i) in
      let outcome =
        match tr.trace_out.(i) with
        | 0 -> outcome_value_name point tr.trace_val
        | 1 -> "next()"
        | _ -> "fault"
      in
      let attrs_mutated =
        List.exists
          (fun h ->
            h = Api.h_set_attr || h = Api.h_add_attr || h = Api.h_remove_attr)
          att.summary.Xprog.helpers
      in
      let map_names = List.map (fun s -> s.Ebpf.Map.name) att.ext.prog.maps in
      let maps_written =
        match att.summary.Xprog.map_writes with
        | Some idxs ->
          List.filteri (fun i _ -> List.mem i idxs) map_names
        | None -> map_names (* unresolvable: any declared map *)
      in
      steps :=
        {
          Obs.Provenance.program = att.ext.prog.name;
          bytecode = att.bc_name;
          engine =
            Ebpf.Vm.engine_name
              (Option.value att.ext.prog.engine ~default:t.engine);
          outcome;
          attrs_mutated;
          maps_written;
        }
        :: !steps
    done;
    Some !steps
  end

(* The physical instances behind map declaration [idx]: one (the first
   row's) for a shared map, one per shard otherwise. *)
let map_instances (rows : live_map array array) idx =
  let lm0 = rows.(0).(idx) in
  if (Ebpf.Map.spec lm0.map).Ebpf.Map.shared then [ lm0 ]
  else Array.to_list rows |> List.map (fun row -> row.(idx))

let map_size t ~program idx =
  match Hashtbl.find_opt t.extensions program with
  | Some ext when idx >= 0 && idx < List.length ext.prog.Xprog.maps -> (
    match ext.maps with
    | Some rows ->
      Some
        (List.fold_left
           (fun n lm -> n + Ebpf.Map.length lm.map)
           0 (map_instances rows idx))
    | None -> Some 0 (* declared but not live: registered, unattached *))
  | _ -> None

let map_stats t ~program idx =
  match Hashtbl.find_opt t.extensions program with
  | Some { maps = Some rows; _ } when idx >= 0 && idx < Array.length rows.(0)
    ->
    Some
      (List.fold_left
         (fun (acc : Ebpf.Map.stats) lm ->
           let s = Ebpf.Map.stats lm.map in
           {
             Ebpf.Map.lookups = acc.lookups + s.Ebpf.Map.lookups;
             hits = acc.hits + s.Ebpf.Map.hits;
             updates = acc.updates + s.Ebpf.Map.updates;
             deletes = acc.deletes + s.Ebpf.Map.deletes;
             evictions = acc.evictions + s.Ebpf.Map.evictions;
           })
         { Ebpf.Map.lookups = 0; hits = 0; updates = 0; deletes = 0;
           evictions = 0 }
         (map_instances rows idx))
  | _ -> None

(* One declaration's canonical dump: the union of its physical
   instances' dumps, re-sorted by key bytes. For a prefix-keyed
   per-shard map the shards hold disjoint keys, so the union is exactly
   what a single-instance run would dump; a key duplicated across
   shards surfaces as a duplicate entry — deliberately, because it
   means the program violated the per-shard keying contract and the
   equality oracle SHOULD fail. *)
let merged_dump rows idx =
  map_instances rows idx
  |> List.concat_map (fun lm -> Ebpf.Map.dump lm.map)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Canonical dumps for the fuzz oracles: every live map of [program] (in
   declaration order) with its entries sorted by key bytes. *)
let map_dump t ~program =
  match Hashtbl.find_opt t.extensions program with
  | Some { maps = Some rows; prog; _ } ->
    Some
      (List.mapi
         (fun idx (s : Ebpf.Map.spec) -> (s.Ebpf.Map.name, merged_dump rows idx))
         prog.Xprog.maps)
  | _ -> None

(* The whole VMM's live map state, sorted by program name — the
   cross-leg comparison unit of the map-state oracle. Programs with no
   live maps are omitted, so a VMM that never attached a stateful
   program compares equal to one that attached and fully detached it.
   Sharded VMMs report the merged canonical union, so a sharded leg
   compares route-for-route against a sequential one. *)
let map_state t =
  Hashtbl.fold
    (fun name ext acc ->
      match ext.maps with
      | Some rows when Array.length rows.(0) > 0 ->
        let dumps =
          List.mapi
            (fun idx (s : Ebpf.Map.spec) ->
              (s.Ebpf.Map.name, merged_dump rows idx))
            ext.prog.Xprog.maps
        in
        (name, dumps) :: acc
      | _ -> acc)
    t.extensions []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let scratch t ~program =
  Option.map (fun e -> e.scratch) (Hashtbl.find_opt t.extensions program)
