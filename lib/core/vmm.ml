(* The Virtual Machine Manager — the runtime heart of libxbgp (§2.1).

   The VMM owns the registered xBGP programs, the per-insertion-point
   ordered queues of attached bytecodes, and the execution machinery. At
   an insertion point the host calls [run]; the VMM then:

   - executes the first attached bytecode in manifest order, in a fresh
     eBPF VM whose memory holds a private ephemeral heap plus the
     program's persistent scratch region;
   - if the bytecode calls the special [next()] helper, moves on to the
     next attachment, and past the last one falls back to the host's
     native [default] function;
   - if the bytecode returns, hands its r0 back to the host;
   - if it faults (bad access, budget exhausted, helper misuse), logs the
     error, notifies the host and falls back to the native default.

   Ephemeral memory (every helper-returned structure, [ebpf_memalloc])
   lives in the per-run heap and is freed wholesale when the bytecode
   finishes — the paper's automatic ephemeral reclamation. *)

let src = Logs.Src.create "xbgp.vmm" ~doc:"xBGP virtual machine manager"

module Log = (val Logs.src_log src : Logs.LOG)

(* Raised by the next() helper; never escapes [run]. *)
exception Next

type map_state = { spec : Xprog.map_spec; table : (string, bytes) Hashtbl.t }

type ext = {
  prog : Xprog.t;
  maps : map_state array;
  scratch : bytes;  (** persistent across runs, shared by the program *)
}

(* Per-attachment execution state. A virtual machine is built once, when
   the bytecode is attached (§2: the VMM "attaches bytecode with an
   associated virtual machine to one specific insertion point"), and
   reused for every run: only the registers, the instruction budget and
   the ephemeral-heap cursor are reset. The [ops]/[args] fields carry the
   current operation's execution context into the helpers. *)
type runtime = {
  vm : Ebpf.Vm.t;
  heap : Ebpf.Memory.region;
  mutable heap_pos : int;
  mutable ops : Host_intf.ops;
  mutable args : (int * bytes) list;
}

type attachment = {
  ext : ext;
  bc_name : string;
  order : int;
  runtime : runtime;
}

type stats = {
  mutable runs : int;  (** bytecode executions started *)
  mutable native_fallbacks : int;  (** chains that ended in native code *)
  mutable faults : int;
  mutable next_calls : int;
  mutable insns : int;  (** total eBPF instructions retired *)
}

type t = {
  host : string;
  extensions : (string, ext) Hashtbl.t;
  points : (Api.point, attachment list ref) Hashtbl.t;
  heap_size : int;
  budget : int;
  engine : Ebpf.Vm.engine;
  stats : stats;
  mutable last_fault : string option;
}

let create ?(heap_size = 1 lsl 16) ?(budget = Ebpf.Vm.default_budget)
    ?(engine = Ebpf.Vm.Interpreted) ~host () =
  let points = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace points p (ref [])) Api.all_points;
  {
    host;
    extensions = Hashtbl.create 8;
    points;
    heap_size;
    budget;
    engine;
    stats =
      { runs = 0; native_fallbacks = 0; faults = 0; next_calls = 0; insns = 0 };
    last_fault = None;
  }

let stats t = t.stats
let last_fault t = t.last_fault

(** Register an xBGP program: verify every bytecode against the structural
    checks and the program's helper whitelist, then instantiate its maps
    and persistent scratch. *)
let register t (prog : Xprog.t) : (unit, string) result =
  if Hashtbl.mem t.extensions prog.name then
    Error (Printf.sprintf "program %S already registered" prog.name)
  else begin
    let bad =
      List.filter_map
        (fun (name, code) ->
          match
            Ebpf.Verifier.check ?allowed_helpers:prog.allowed_helpers code
          with
          | Ok () -> None
          | Error es ->
            Some
              (Fmt.str "%s/%s: %a" prog.name name
                 Fmt.(list ~sep:semi Ebpf.Verifier.pp_error)
                 es))
        prog.bytecodes
    in
    match bad with
    | e :: _ -> Error ("verifier rejected " ^ e)
    | [] ->
      let maps =
        Array.of_list
          (List.map
             (fun spec -> { spec; table = Hashtbl.create 64 })
             prog.maps)
      in
      let ext = { prog; maps; scratch = Bytes.make prog.scratch_size '\x00' } in
      Hashtbl.replace t.extensions prog.name ext;
      Ok ()
  end

(* --- bytecode execution --- *)

type exec_outcome = Value of int64 | Deferred | Faulted of string

let blob_of_bytes payload =
  let b = Bytes.create (Api.blob_header_size + Bytes.length payload) in
  Bytes.set_int32_le b 0 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 b Api.blob_header_size (Bytes.length payload);
  b

let u32_of v = Int64.to_int (Int64.logand v 0xFFFFFFFFL)

(* The per-attachment VM, heap and helper bindings. Helpers read the
   current operation's context through the runtime's mutable [ops]/[args]
   fields. The ephemeral heap is reclaimed wholesale after each run by
   resetting [heap_pos]; its *contents* are not scrubbed, which is safe
   because the region starts zeroed and belongs to one attachment of one
   program (its own earlier writes are all it can ever see). *)
let make_runtime t (ext : ext) (code : Ebpf.Insn.t list) : runtime =
  let mem = Ebpf.Memory.create () in
  let heap =
    Ebpf.Memory.add_region mem ~name:"heap" ~base:Api.heap_base ~writable:true
      (Bytes.make t.heap_size '\x00')
  in
  if Bytes.length ext.scratch > 0 then
    ignore
      (Ebpf.Memory.add_region mem ~name:"scratch" ~base:Api.scratch_base
         ~writable:true ext.scratch);
  (* the program's manifest-declared engine wins over the VMM default *)
  let engine = Option.value ext.prog.engine ~default:t.engine in
  let rec rt =
    lazy
      {
        vm = Ebpf.Vm.create ~budget:t.budget ~engine ~mem ~helpers code;
        heap;
        heap_pos = 0;
        ops = Host_intf.null_ops;
        args = [];
      }
  and alloc_raw size =
    let r = Lazy.force rt in
    let aligned = (size + 7) land lnot 7 in
    if r.heap_pos + aligned > t.heap_size then
      raise (Ebpf.Vm.Error "extension heap exhausted");
    let addr = Int64.add Api.heap_base (Int64.of_int r.heap_pos) in
    r.heap_pos <- r.heap_pos + aligned;
    addr
  and alloc_bytes payload =
    let addr = alloc_raw (Bytes.length payload) in
    Ebpf.Memory.write_bytes mem addr payload;
    addr
  and ops () = (Lazy.force rt).ops
  and args () = (Lazy.force rt).args
  and read_mem vm addr len =
    Ebpf.Memory.read_bytes (Ebpf.Vm.memory vm) addr len
  and map_of_index idx =
    if idx < 0 || idx >= Array.length ext.maps then
      raise (Ebpf.Vm.Error (Printf.sprintf "no map %d" idx))
    else ext.maps.(idx)
  and helpers =
    [
      (Api.h_next, fun _ _ -> raise Next);
      ( Api.h_get_arg,
        fun _ a ->
          match List.assoc_opt (u32_of a.(0)) (args ()) with
          | Some payload -> alloc_bytes (blob_of_bytes payload)
          | None -> 0L );
      ( Api.h_arg_len,
        fun _ a ->
          match List.assoc_opt (u32_of a.(0)) (args ()) with
          | Some payload -> Int64.of_int (Bytes.length payload)
          | None -> -1L );
      ( Api.h_get_peer_info,
        fun _ _ ->
          match (ops ()).peer_info () with
          | Some pi -> alloc_bytes (Host_intf.peer_info_to_bytes pi)
          | None -> 0L );
      ( Api.h_get_nexthop,
        fun _ _ ->
          match (ops ()).nexthop () with
          | Some nh -> alloc_bytes (Host_intf.nexthop_to_bytes nh)
          | None -> 0L );
      ( Api.h_get_attr,
        fun _ a ->
          match (ops ()).get_attr (u32_of a.(0)) with
          | Some tlv -> alloc_bytes tlv
          | None -> 0L );
      ( Api.h_set_attr,
        fun vm a ->
          let header = read_mem vm a.(0) 4 in
          let len = Bytes.get_uint16_be header 2 in
          let tlv = read_mem vm a.(0) (4 + len) in
          if (ops ()).set_attr tlv then 0L else -1L );
      ( Api.h_add_attr,
        fun vm a ->
          let code = u32_of a.(0) land 0xff in
          let flags = u32_of a.(1) land 0xff in
          let len = u32_of a.(2) in
          if len > 0xffff then raise (Ebpf.Vm.Error "add_attr: length");
          let payload = read_mem vm a.(3) len in
          let tlv = Bytes.create (4 + len) in
          Bytes.set_uint8 tlv 0 flags;
          Bytes.set_uint8 tlv 1 code;
          Bytes.set_uint16_be tlv 2 len;
          Bytes.blit payload 0 tlv 4 len;
          if (ops ()).set_attr tlv then 0L else -1L );
      ( Api.h_remove_attr,
        fun _ a -> if (ops ()).remove_attr (u32_of a.(0)) then 0L else -1L );
      ( Api.h_get_xtra,
        fun vm a ->
          let key = Ebpf.Memory.read_cstring (Ebpf.Vm.memory vm) a.(0) in
          match (ops ()).get_xtra key with
          | Some payload -> alloc_bytes (blob_of_bytes payload)
          | None -> 0L );
      ( Api.h_write_buf,
        fun vm a ->
          let len = u32_of a.(1) in
          let data = read_mem vm a.(0) len in
          if (ops ()).write_buf data then Int64.of_int len else -1L );
      ( Api.h_memalloc,
        fun _ a ->
          let size = u32_of a.(0) in
          if size <= 0 then 0L else alloc_raw size );
      ( Api.h_print,
        fun vm a ->
          (ops ()).log (Ebpf.Memory.read_cstring (Ebpf.Vm.memory vm) a.(0));
          0L );
      (Api.h_htonl, fun _ a -> Int64.logand (Ebpf.Vm.bswap32 a.(0)) 0xFFFFFFFFL);
      (Api.h_htons, fun _ a -> Ebpf.Vm.bswap16 a.(0));
      ( Api.h_map_lookup,
        fun vm a ->
          let m = map_of_index (u32_of a.(0)) in
          let key = read_mem vm a.(1) m.spec.key_size in
          match Hashtbl.find_opt m.table (Bytes.to_string key) with
          | Some value -> alloc_bytes value
          | None -> 0L );
      ( Api.h_map_update,
        fun vm a ->
          let m = map_of_index (u32_of a.(0)) in
          let key = read_mem vm a.(1) m.spec.key_size in
          let value = read_mem vm a.(2) m.spec.value_size in
          Hashtbl.replace m.table (Bytes.to_string key) value;
          0L );
      ( Api.h_map_delete,
        fun vm a ->
          let m = map_of_index (u32_of a.(0)) in
          let key = Bytes.to_string (read_mem vm a.(1) m.spec.key_size) in
          if Hashtbl.mem m.table key then begin
            Hashtbl.remove m.table key;
            0L
          end
          else -1L );
      ( Api.h_rib_add,
        fun _ a ->
          if
            (ops ()).rib_add ~addr:(u32_of a.(0)) ~len:(u32_of a.(1))
              ~nexthop:(u32_of a.(2))
          then 0L
          else -1L );
      ( Api.h_log_int,
        fun vm a ->
          let label = Ebpf.Memory.read_cstring (Ebpf.Vm.memory vm) a.(0) in
          (ops ()).log (Printf.sprintf "%s=%Ld" label a.(1));
          0L );
    ]
  in
  Lazy.force rt

let exec_one t att ~(ops : Host_intf.ops) ~args : exec_outcome =
  let rt = att.runtime in
  rt.ops <- ops;
  rt.args <- args;
  rt.heap_pos <- 0;
  Ebpf.Vm.set_budget rt.vm t.budget;
  t.stats.runs <- t.stats.runs + 1;
  let outcome =
    try Value (Ebpf.Vm.run rt.vm) with
    | Next ->
      t.stats.next_calls <- t.stats.next_calls + 1;
      Deferred
    | Ebpf.Vm.Error msg | Ebpf.Memory.Fault msg -> Faulted msg
  in
  t.stats.insns <- t.stats.insns + Ebpf.Vm.executed rt.vm;
  rt.ops <- Host_intf.null_ops;
  rt.args <- [];
  outcome

(** Attach one bytecode of a registered program to an insertion point;
    [order] positions it in the point's execution queue (§2.1: "the
    manifest defines in which order they are executed"). *)
let attach t ~program ~bytecode ~point ~order : (unit, string) result =
  match Hashtbl.find_opt t.extensions program with
  | None -> Error (Printf.sprintf "program %S not registered" program)
  | Some ext -> (
    match Xprog.bytecode ext.prog bytecode with
    | None ->
      Error (Printf.sprintf "program %S has no bytecode %S" program bytecode)
    | Some code ->
      let q = Hashtbl.find t.points point in
      let att =
        { ext; bc_name = bytecode; order; runtime = make_runtime t ext code }
      in
      q :=
        List.sort
          (fun a b -> Int.compare a.order b.order)
          (att :: !q);
      Ok ())

let detach t ~program ~point =
  let q = Hashtbl.find t.points point in
  q := List.filter (fun a -> a.ext.prog.name <> program) !q

let attachments t point =
  List.map
    (fun a -> (a.ext.prog.name, a.bc_name, a.order))
    !(Hashtbl.find t.points point)

let has_attachment t point = !(Hashtbl.find t.points point) <> []

let registered t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.extensions []

(** Execute the bytecode chain attached to [point].

    [args] are the insertion-point arguments exposed through [get_arg]
    (ids from [Api]); [default] is the host's native implementation of the
    operation, used when nothing is attached, when the last bytecode calls
    [next()], or when a bytecode faults. *)
let run t point ~(ops : Host_intf.ops) ~args ~(default : unit -> int64) :
    int64 =
  match !(Hashtbl.find t.points point) with
  | [] -> default ()
  | atts ->
    let rec chain = function
      | [] ->
        t.stats.native_fallbacks <- t.stats.native_fallbacks + 1;
        default ()
      | att :: rest -> (
        match exec_one t att ~ops ~args with
        | Value v -> v
        | Deferred -> chain rest
        | Faulted msg ->
          t.stats.faults <- t.stats.faults + 1;
          let err =
            Printf.sprintf "%s: extension %s/%s at %s faulted: %s" t.host
              att.ext.prog.name att.bc_name (Api.point_name point) msg
          in
          t.last_fault <- Some err;
          Log.warn (fun m -> m "%s" err);
          ops.log err;
          t.stats.native_fallbacks <- t.stats.native_fallbacks + 1;
          default ())
    in
    chain atts

(** Run every bytecode attached to [Bgp_init] once (manifest load time).
    Faults are logged; initialization continues with the next bytecode. *)
let run_init t ~ops =
  List.iter
    (fun att ->
      match exec_one t att ~ops ~args:[] with
      | Value _ | Deferred -> ()
      | Faulted msg ->
        t.stats.faults <- t.stats.faults + 1;
        let err =
          Printf.sprintf "%s: init of %s/%s faulted: %s" t.host
            att.ext.prog.name att.bc_name msg
        in
        t.last_fault <- Some err;
        ops.log err)
    !(Hashtbl.find t.points Api.Bgp_init)

(* --- introspection used by tests and the CLI --- *)

let map_size t ~program idx =
  match Hashtbl.find_opt t.extensions program with
  | Some ext when idx < Array.length ext.maps ->
    Some (Hashtbl.length ext.maps.(idx).table)
  | _ -> None

let scratch t ~program =
  Option.map (fun e -> e.scratch) (Hashtbl.find_opt t.extensions program)
