(* The shared measurement substrate (see telemetry.mli for the contract).

   Implementation notes:

   - Counters and gauges are bare mutable ints behind a handle; hot paths
     obtain the handle once (registry lookup interns on (name, sorted
     labels)) and pay one store per event, unconditionally.
   - Histograms are 64 log2 buckets in a flat int array; [observe] is a
     bit-scan plus two stores, but callers gate it on [enabled] because
     the *data* is only wanted when someone will export it.
   - The tracer keeps finished spans in a preallocated circular array;
     wrap-around drops the oldest span and counts it, so a long run can
     never grow memory without bound.
   - Both clocks are plain [unit -> int] references so the library
     depends on nothing: the simulator injects its deterministic
     microsecond clock, hosts with a real clock inject nanoseconds. *)

(* --- metric primitives ---

   All three are domain-safe since the multicore shard runtime: worker
   domains increment the same handles the main domain snapshots.
   Counters keep one cell per domain slot (merged on read) so parallel
   increments never contend on one cache line; gauges and histogram
   buckets use atomic adds; the span ring and nesting stack sit behind a
   mutex (spans are sampled, so the lock is off the hot path). *)

module Counter = struct
  (* Per-domain cells: a domain increments the cell at [domain id mod
     slots]; [value] merges on snapshot. Collisions between domains
     sharing a slot stay correct (the cells are atomic) — the slots
     exist to keep the common case contention-free. *)
  let slots = 8

  type t = { cells : int Atomic.t array }

  let make () = { cells = Array.init slots (fun _ -> Atomic.make 0) }

  let cell c =
    c.cells.((Domain.self () :> int) land (slots - 1))

  let inc c = ignore (Atomic.fetch_and_add (cell c) 1)
  let add c n = ignore (Atomic.fetch_and_add (cell c) n)

  let value c =
    let s = ref 0 in
    Array.iter (fun a -> s := !s + Atomic.get a) c.cells;
    !s
end

module Gauge = struct
  type t = { v : int Atomic.t; hwm : int Atomic.t }

  let make () = { v = Atomic.make 0; hwm = Atomic.make 0 }

  let rec raise_hwm g v =
    let cur = Atomic.get g.hwm in
    if v > cur && not (Atomic.compare_and_set g.hwm cur v) then
      raise_hwm g v

  let set g v =
    Atomic.set g.v v;
    raise_hwm g v

  let add g n = raise_hwm g (Atomic.fetch_and_add g.v n + n)
  let value g = Atomic.get g.v
  let max_value g = Atomic.get g.hwm
end

module Histogram = struct
  (* bucket 0: v <= 0; bucket k >= 1: 2^(k-1) <= v <= 2^k - 1 *)
  let buckets = 64

  type t = {
    counts : int Atomic.t array;
    total : int Atomic.t;
    sum : int Atomic.t;
  }

  let make () =
    {
      counts = Array.init buckets (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      sum = Atomic.make 0;
    }

  let bucket_index v =
    if v <= 0 then 0
    else begin
      (* number of significant bits = 1 + floor(log2 v) *)
      let k = ref 0 and x = ref v in
      while !x > 0 do
        incr k;
        x := !x lsr 1
      done;
      !k
    end

  (* saturate at [max_int]: OCaml ints carry 62 value bits, so
     [1 lsl k] overflows for the top buckets *)
  let bucket_upper k =
    if k <= 0 then 0 else if k >= 62 then max_int else (1 lsl k) - 1

  let observe h v =
    let k = bucket_index v in
    ignore (Atomic.fetch_and_add h.counts.(k) 1);
    ignore (Atomic.fetch_and_add h.total 1);
    ignore (Atomic.fetch_and_add h.sum (max v 0))

  let count h = Atomic.get h.total
  let sum h = Atomic.get h.sum

  let bucket_count h k =
    if k >= 0 && k < buckets then Atomic.get h.counts.(k) else 0

  let merge_into ~dst src =
    Array.iteri
      (fun i c -> ignore (Atomic.fetch_and_add dst.counts.(i) (Atomic.get c)))
      src.counts;
    ignore (Atomic.fetch_and_add dst.total (Atomic.get src.total));
    ignore (Atomic.fetch_and_add dst.sum (Atomic.get src.sum))

  let percentile h p =
    let total = count h in
    if total = 0 then 0
    else begin
      let p = Float.max 0. (Float.min 100. p) in
      let rank =
        max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int total)))
      in
      let k = ref 0 and seen = ref 0 in
      (try
         for i = 0 to buckets - 1 do
           seen := !seen + Atomic.get h.counts.(i);
           if !seen >= rank then begin
             k := i;
             raise Exit
           end
         done
       with Exit -> ());
      bucket_upper !k
    end

  let p50 h = percentile h 50.
  let p99 h = percentile h 99.
end

(* --- the registry --- *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_hist of Histogram.t

type family = {
  fname : string;
  help : string;
  kind : [ `Counter | `Gauge | `Histogram ];
  instances : (string, (string * string) list * metric) Hashtbl.t;
      (* keyed by the serialized sorted label set *)
}

module Span = struct
  type t = {
    id : int;
    parent : int;
    name : string;
    mutable tags : (string * string) list;
    ts_us : int;
    mutable dur_us : int;
    ts_ns : int;
    mutable dur_ns : int;
  }

  let tag s k = List.assoc_opt k s.tags
end

let dummy_span : Span.t =
  {
    id = 0;
    parent = 0;
    name = "";
    tags = [];
    ts_us = 0;
    dur_us = 0;
    ts_ns = 0;
    dur_ns = 0;
  }

type t = {
  mutable enabled : bool;
  mutable sample_n : int;  (* record 1 span in [sample_n]; 1 = every span *)
  sample_tick : int Atomic.t;
  families : (string, family) Hashtbl.t;
  reg_lock : Mutex.t;  (* guards [families] interning *)
  mutable clock_us : unit -> int;
  mutable clock_ns : unit -> int;
  (* tracer; [ring_lock] guards everything below (spans are sampled, so
     the lock sits off the hot path) *)
  ring_lock : Mutex.t;
  ring : Span.t array;
  capacity : int;
  mutable ring_head : int;  (* next write slot *)
  mutable ring_len : int;
  mutable dropped : int;
  mutable next_id : int;
  mutable open_stack : int list;  (* ids of open spans, innermost first *)
}

let default_ns () = int_of_float (Sys.time () *. 1e9)

let create ?(enabled = true) ?(ring_capacity = 4096) () =
  let capacity = max 1 ring_capacity in
  {
    enabled;
    sample_n = 1;
    sample_tick = Atomic.make 0;
    families = Hashtbl.create 32;
    reg_lock = Mutex.create ();
    clock_us = (fun () -> 0);
    clock_ns = default_ns;
    ring_lock = Mutex.create ();
    ring = Array.make capacity dummy_span;
    capacity;
    ring_head = 0;
    ring_len = 0;
    dropped = 0;
    next_id = 1;
    open_stack = [];
  }

let enabled t = t.enabled
let set_enabled t e = t.enabled <- e

let set_span_sampling t n =
  t.sample_n <- max 1 n;
  Atomic.set t.sample_tick 0

let span_sampling t = t.sample_n

(* One shared deterministic tick stream: every would-be expensive event
   (a span, a helper-latency measurement) consumes a tick and records
   only when its tick is the [sample_n]-th. Counters never consult this —
   they are always exact. The tick is atomic so worker domains can
   consume ticks concurrently; the 1-in-N rate stays exact. *)
let sample t =
  t.enabled
  && (t.sample_n <= 1
     || (Atomic.fetch_and_add t.sample_tick 1 + 1) mod t.sample_n = 0)
let set_clock_us t f = t.clock_us <- f
let set_clock_ns t f = t.clock_ns <- f
let now_us t = t.clock_us ()
let now_ns t = t.clock_ns ()

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let label_key labels =
  String.concat "\x00"
    (List.concat_map (fun (k, v) -> [ k; v ]) labels)

let family t ~name ~help ~kind =
  match Hashtbl.find_opt t.families name with
  | Some f ->
    if f.kind <> kind then
      invalid_arg
        (Printf.sprintf "Telemetry: metric %S re-registered with another kind"
           name);
    f
  | None ->
    let f = { fname = name; help; kind; instances = Hashtbl.create 8 } in
    Hashtbl.replace t.families name f;
    f

let instance t ~name ~help ~kind ~labels make =
  (* interning is rare (handles are resolved once, at create/attach
     time) but may happen from a worker domain — e.g. a map created by
     a sharded attach — so it serializes on the registry lock *)
  Mutex.lock t.reg_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.reg_lock)
    (fun () ->
      let f = family t ~name ~help ~kind in
      let labels = normalize_labels labels in
      let key = label_key labels in
      match Hashtbl.find_opt f.instances key with
      | Some (_, m) -> m
      | None ->
        let m = make () in
        Hashtbl.replace f.instances key (labels, m);
        m)

let counter t ?(help = "") ~name ~labels () =
  match
    instance t ~name ~help ~kind:`Counter ~labels (fun () ->
        M_counter (Counter.make ()))
  with
  | M_counter c -> c
  | _ -> assert false

let gauge t ?(help = "") ~name ~labels () =
  match
    instance t ~name ~help ~kind:`Gauge ~labels (fun () ->
        M_gauge (Gauge.make ()))
  with
  | M_gauge g -> g
  | _ -> assert false

let histogram t ?(help = "") ~name ~labels () =
  match
    instance t ~name ~help ~kind:`Histogram ~labels (fun () ->
        M_hist (Histogram.make ()))
  with
  | M_hist h -> h
  | _ -> assert false

let find_metric t ~name ~labels =
  match Hashtbl.find_opt t.families name with
  | None -> None
  | Some f ->
    Option.map snd
      (Hashtbl.find_opt f.instances (label_key (normalize_labels labels)))

let counter_value t ~name ~labels =
  match find_metric t ~name ~labels with
  | Some (M_counter c) -> Counter.value c
  | _ -> 0

let histogram_count t ~name ~labels =
  match find_metric t ~name ~labels with
  | Some (M_hist h) -> Histogram.count h
  | _ -> 0

let metric_names t =
  List.sort String.compare
    (Hashtbl.fold (fun name _ acc -> name :: acc) t.families [])

(* Enumerate every instance of one metric kind, sorted by (family,
   label key) so two snapshots of the same registry line up pairwise —
   what the chaos fuzzer's monotonicity and leak oracles diff. *)
let instances_of_kind t ~kind ~value =
  Hashtbl.fold
    (fun name (f : family) acc ->
      if f.kind <> kind then acc
      else
        Hashtbl.fold
          (fun _ (labels, m) acc -> (name, labels, value m) :: acc)
          f.instances acc)
    t.families []
  |> List.sort (fun (na, la, _) (nb, lb, _) ->
         match String.compare na nb with
         | 0 -> compare la lb
         | c -> c)

let counters t =
  instances_of_kind t ~kind:`Counter ~value:(function
    | M_counter c -> Counter.value c
    | _ -> 0)

let gauges t =
  instances_of_kind t ~kind:`Gauge ~value:(function
    | M_gauge g -> Gauge.value g
    | _ -> 0)

(* --- spans --- *)

let span_begin t ?(tags = []) name : Span.t =
  if not (sample t) then dummy_span
  else begin
    Mutex.lock t.ring_lock;
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent = match t.open_stack with [] -> 0 | p :: _ -> p in
    t.open_stack <- id :: t.open_stack;
    Mutex.unlock t.ring_lock;
    {
      id;
      parent;
      name;
      tags;
      ts_us = t.clock_us ();
      dur_us = 0;
      ts_ns = t.clock_ns ();
      dur_ns = 0;
    }
  end

let ring_push t (s : Span.t) =
  if t.ring_len = t.capacity then begin
    (* overwrite the oldest slot *)
    t.dropped <- t.dropped + 1;
    t.ring.(t.ring_head) <- s;
    t.ring_head <- (t.ring_head + 1) mod t.capacity
  end
  else begin
    t.ring.((t.ring_head + t.ring_len) mod t.capacity) <- s;
    t.ring_len <- t.ring_len + 1
  end

let span_end t ?(tags = []) (s : Span.t) =
  if t.enabled && s.id <> 0 then begin
    s.dur_us <- max 0 (t.clock_us () - s.ts_us);
    s.dur_ns <- max 0 (t.clock_ns () - s.ts_ns);
    if tags <> [] then s.tags <- s.tags @ tags;
    Mutex.lock t.ring_lock;
    (* pop this span — and any forgotten descendants — off the nesting
       stack; a span closed out of order just unwinds past the others *)
    let rec unwind = function
      | [] -> []
      | id :: rest -> if id = s.id then rest else unwind rest
    in
    if List.mem s.id t.open_stack then t.open_stack <- unwind t.open_stack;
    ring_push t s;
    Mutex.unlock t.ring_lock
  end

let spans t =
  Mutex.lock t.ring_lock;
  let out =
    List.init t.ring_len (fun i ->
        t.ring.((t.ring_head + i) mod t.capacity))
  in
  Mutex.unlock t.ring_lock;
  out

let dropped_spans t = t.dropped

let reset_spans t =
  Mutex.lock t.ring_lock;
  t.ring_head <- 0;
  t.ring_len <- 0;
  t.dropped <- 0;
  t.open_stack <- [];
  Mutex.unlock t.ring_lock

(* --- exporters --- *)

let escape_label_value v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v))
           labels)
    ^ "}"

let sorted_instances f =
  List.sort
    (fun (k1, _) (k2, _) -> String.compare k1 k2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) f.instances [])

let to_prometheus t =
  let b = Buffer.create 4096 in
  List.iter
    (fun name ->
      let f = Hashtbl.find t.families name in
      if f.help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" f.fname f.help);
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" f.fname
           (match f.kind with
           | `Counter -> "counter"
           | `Gauge -> "gauge"
           | `Histogram -> "histogram"));
      List.iter
        (fun (_, (labels, m)) ->
          match m with
          | M_counter c ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %d\n" f.fname (render_labels labels)
                 (Counter.value c))
          | M_gauge g ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %d\n" f.fname (render_labels labels)
                 (Gauge.value g))
          | M_hist h ->
            let cum = ref 0 in
            for k = 0 to Histogram.buckets - 1 do
              (* only emit the buckets up to the last non-empty one; the
                 +Inf bucket always carries the full count *)
              if Histogram.bucket_count h k > 0 then begin
                cum := !cum + Histogram.bucket_count h k;
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" f.fname
                     (render_labels labels
                        ~extra:("le", string_of_int (Histogram.bucket_upper k)))
                     !cum)
              end
            done;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" f.fname
                 (render_labels labels ~extra:("le", "+Inf"))
                 (Histogram.count h));
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %d\n" f.fname (render_labels labels)
                 (Histogram.sum h));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" f.fname (render_labels labels)
                 (Histogram.count h)))
        (sorted_instances f))
    (metric_names t);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_trace t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i (s : Span.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%d,\"dur\":%d,\"args\":{"
           (json_escape s.name) s.ts_us s.dur_us);
      let args =
        [ ("span_id", string_of_int s.id); ("parent", string_of_int s.parent) ]
        @ s.tags
      in
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        args;
      Buffer.add_string b "}}")
    (spans t);
  Buffer.add_string b
    (Printf.sprintf "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":\"%d\"}}"
       t.dropped);
  Buffer.contents b

(* --- the per-xprog profile table --- *)

(* Rows come from the two histogram families the VMM maintains per
   attachment; they share a label set, so pairing is by serialized
   labels. *)
let profile_table t =
  match Hashtbl.find_opt t.families "xbgp_run_insns" with
  | None -> ""
  | Some insns_f ->
    let ns_for key =
      match Hashtbl.find_opt t.families "xbgp_run_ns" with
      | None -> None
      | Some f -> (
        match Hashtbl.find_opt f.instances key with
        | Some (_, M_hist h) -> Some h
        | _ -> None)
    in
    let rows =
      List.filter_map
        (fun (key, (labels, m)) ->
          match m with
          | M_hist h when Histogram.count h > 0 ->
            let l k = Option.value ~default:"-" (List.assoc_opt k labels) in
            let prog =
              match (l "program", l "bytecode") with
              | p, "-" -> p
              | p, b -> p ^ "/" ^ b
            in
            Some (l "point", prog, l "engine", h, ns_for key)
          | _ -> None)
        (sorted_instances insns_f)
    in
    if rows = [] then ""
    else begin
      let b = Buffer.create 1024 in
      Buffer.add_string b
        (Printf.sprintf "%-24s %-28s %-12s %8s %10s %10s %10s %10s\n" "point"
           "program" "engine" "runs" "p50 insns" "p99 insns" "p50 ns" "p99 ns");
      List.iter
        (fun (point, prog, engine, insns_h, ns_h) ->
          let pns p =
            match ns_h with
            | Some h when Histogram.count h > 0 ->
              string_of_int (Histogram.percentile h p)
            | _ -> "-"
          in
          Buffer.add_string b
            (Printf.sprintf "%-24s %-28s %-12s %8d %10d %10d %10s %10s\n" point
               prog engine
               (Histogram.count insns_h)
               (Histogram.p50 insns_h) (Histogram.p99 insns_h) (pns 50.)
               (pns 99.)))
        (List.sort compare rows);
      Buffer.contents b
    end

(* --- the shared daemon-stats snapshot --- *)

type daemon_stats = {
  mutable updates_rx : int;
  mutable routes_in : int;
  mutable withdrawals_rx : int;
  mutable import_rejected : int;
  mutable export_rejected : int;
  mutable updates_tx : int;
}
