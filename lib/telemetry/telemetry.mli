(** The shared measurement substrate: a zero-dependency registry of
    counters, gauges and log2-bucketed histograms, plus a span-based
    tracer with a bounded ring buffer.

    One registry is threaded through a whole simulated deployment — the
    VMM, both BGP daemons, the session FSMs and the netsim pipes all
    record into it — so a single export (Prometheus text, Chrome trace
    JSON) shows the full picture.

    Two design rules keep it honest on the hot path:

    - {b counters and gauges are always on}: an increment is one integer
      store, cheaper than the branch that would gate it, and the daemons'
      [stats] accessors are derived from them so they must always count;
    - {b histograms and spans obey {!enabled}}: they allocate, so the
      disabled path is a single load-and-branch (the bench's paired
      enabled/disabled run bounds the residual cost).

    The trace timebase is injectable ({!set_clock_us}) and is expected to
    be the netsim scheduler clock, which makes traces deterministic under
    simulation. Durations for latency histograms come from a separate
    nanosecond clock ({!set_clock_ns}) because simulated work takes zero
    simulated time; hosts with access to a real clock install one. *)

type t
(** A registry: metric families, the tracer ring, and the two clocks. *)

val create : ?enabled:bool -> ?ring_capacity:int -> unit -> t
(** [enabled] gates histograms and spans (default [true]);
    [ring_capacity] bounds the finished-span ring (default 4096). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_span_sampling : t -> int -> unit
(** [set_span_sampling t n] records only one span in [n] (deterministic
    modulo counting, not random). Counters and gauges remain exact;
    histograms fed from sampled code paths (e.g. the VMM's span-derived
    latency histograms) see proportionally fewer observations. [n <= 1]
    restores the record-everything default. *)

val span_sampling : t -> int
(** The current 1-in-N span sampling factor (1 = every span). *)

val sample : t -> bool
(** Consume one sampling tick: [true] when the registry is enabled and
    this event is the 1-in-N one that should pay for expensive
    instrumentation (clock reads, allocation). Hot paths use this to
    gate latency measurements the same way {!span_begin} gates spans. *)

val set_clock_us : t -> (unit -> int) -> unit
(** Install the trace timebase, in microseconds. The simulator installs
    [fun () -> Netsim.Sched.now sched]; the default clock returns 0. *)

val set_clock_ns : t -> (unit -> int) -> unit
(** Install the duration clock, in nanoseconds, used for latency
    histograms and span durations measured in wall time. The default is
    derived from [Sys.time] (coarse but dependency-free). *)

val now_us : t -> int
val now_ns : t -> int

(** {1 Metrics}

    Metrics are identified by a family name plus a label set; asking for
    the same (name, labels) twice returns the same instance, so hot paths
    cache the handle once and pay only the store per event. *)

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  (** Also tracks the high-water mark. *)

  val add : t -> int -> unit
  val value : t -> int

  val max_value : t -> int
  (** Highest value ever {!set} (the queue-depth / heap high-water
      mark). *)
end

module Histogram : sig
  (** Log2-bucketed histogram of non-negative integers. Bucket 0 holds
      values [<= 0]; value [v >= 1] lands in bucket [1 + floor(log2 v)],
      i.e. bucket [k >= 1] covers [2^(k-1) .. 2^k - 1]. A reported
      percentile is the upper bound of the bucket holding that rank, so
      for any true quantile [q]: [q <= reported < 2 * max q 1]. *)

  type t

  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int

  val bucket_index : int -> int
  (** The bucket a value lands in. *)

  val bucket_upper : int -> int
  (** Inclusive upper bound of a bucket: [0] for bucket 0, else
      [2^k - 1], saturating at [max_int] for the top buckets. *)

  val bucket_count : t -> int -> int
  (** Observations in one bucket. *)

  val merge_into : dst:t -> t -> unit
  (** Bucket-wise addition of [src] into [dst]. *)

  val percentile : t -> float -> int
  (** [percentile h p] for [p] in [0..100]: the upper bound of the
      bucket containing the [ceil (p/100 * count)]-th smallest
      observation; [0] when empty. *)

  val p50 : t -> int
  val p99 : t -> int
end

val counter :
  t -> ?help:string -> name:string -> labels:(string * string) list ->
  unit -> Counter.t

val gauge :
  t -> ?help:string -> name:string -> labels:(string * string) list ->
  unit -> Gauge.t

val histogram :
  t -> ?help:string -> name:string -> labels:(string * string) list ->
  unit -> Histogram.t

val counter_value : t -> name:string -> labels:(string * string) list -> int
(** Read a counter without creating it; [0] when absent — what tests use
    to assert on metrics. *)

val histogram_count :
  t -> name:string -> labels:(string * string) list -> int

val metric_names : t -> string list
(** Registered family names, sorted. *)

val counters : t -> (string * (string * string) list * int) list
(** Every counter instance as [(family, labels, value)], sorted by
    family then labels — two snapshots of the same registry line up
    pairwise, which is how the chaos fuzzer asserts monotonicity. *)

val gauges : t -> (string * (string * string) list * int) list
(** Every gauge instance as [(family, labels, value)], same order
    contract as {!counters} (the chaos fuzzer's leak oracle reads the
    [net_in_flight_chunks] instances at quiescence). *)

(** {1 Spans}

    A span is one timed operation (a [Vmm.run], a scenario phase). Spans
    nest: a span begun while another is open records it as its parent.
    Finished spans land in a bounded ring — when it wraps, the oldest
    spans are dropped and counted in {!dropped_spans}. When the registry
    is disabled, {!span_begin} returns a shared dummy and records
    nothing; under {!set_span_sampling} it does the same for the
    unsampled ticks. *)

module Span : sig
  type t = {
    id : int;  (** 0 on the disabled dummy *)
    parent : int;  (** 0 = no parent *)
    name : string;
    mutable tags : (string * string) list;
    ts_us : int;  (** start, trace timebase *)
    mutable dur_us : int;
    ts_ns : int;  (** start, duration clock *)
    mutable dur_ns : int;
  }

  val tag : t -> string -> string option
end

val span_begin : t -> ?tags:(string * string) list -> string -> Span.t

val span_end : t -> ?tags:(string * string) list -> Span.t -> unit
(** Close the span (extra [tags] are appended) and push it into the
    ring. Closing a span closes any still-open descendants' nesting
    scope as well. *)

val spans : t -> Span.t list
(** Finished spans, oldest first (at most the ring capacity). *)

val dropped_spans : t -> int
val reset_spans : t -> unit

(** {1 Exporters} *)

val to_prometheus : t -> string
(** Prometheus text exposition format, version 0.0.4: [# HELP]/[# TYPE]
    headers, one sample line per labeled instance, histograms expanded
    into [_bucket]/[_sum]/[_count] with cumulative [le] labels. *)

val to_chrome_trace : t -> string
(** Chrome trace-event JSON ([{"traceEvents": [...]}]), one complete
    event (["ph":"X"]) per finished span, [ts]/[dur] in microseconds of
    the trace timebase, tags as [args] — loadable in [chrome://tracing]
    or Perfetto. *)

val profile_table : t -> string
(** The per-xprog profile: one row per (insertion point, program,
    engine) with run count and p50/p99 retired instructions and
    nanoseconds, derived from the [xbgp_run_insns]/[xbgp_run_ns]
    histogram families the VMM records. Empty string when nothing was
    recorded. *)

(** {1 The shared daemon-stats snapshot}

    Both BGP daemons expose [stats : t -> stats] returning this record,
    assembled from their registry counters — one definition instead of
    two drifting copies. *)

type daemon_stats = {
  mutable updates_rx : int;
  mutable routes_in : int;
  mutable withdrawals_rx : int;
  mutable import_rejected : int;
  mutable export_rejected : int;
  mutable updates_tx : int;
}
