(** The FRR-like BGP daemon — one of the two deliberately different xBGP
    hosts (§2.1 of the paper).

    Signature traits mirroring FRRouting: interned host-byte-order
    attributes ({!Attr_intern}, so every xBGP call pays a TLV
    conversion); a native parser that drops unknown attributes and an
    encoder that emits only known ones; native origin validation through
    a ROA {e trie} ({!Rpki.Store_trie}, §3.4); native RFC 4456 route
    reflection that can be switched off and replaced by extension
    bytecode (§3.2).

    The pipeline per received UPDATE follows Fig. 2:
    receive-message point -> parse -> per-prefix inbound-filter point ->
    Adj-RIB-In -> Loc-RIB/decision (decision point) -> per-peer
    outbound-filter point -> Adj-RIB-Out -> encode-message point ->
    wire. *)

type peer_conf = {
  pname : string;
  remote_as : int;
  remote_addr : int;
  rr_client : bool;  (** route-reflector client (RFC 4456) *)
  port : Netsim.Pipe.port;
}

type config

val config :
  ?cluster_id:int ->
  ?hold_time:int ->
  ?native_rr:bool ->
  ?native_ov:Rpki.Store_trie.t ->
  ?igp_metric:(int -> int) ->
  ?xtras:(string * bytes) list ->
  ?batch_updates:bool ->
  ?update_groups:bool ->
  ?shards:int ->
  name:string ->
  router_id:int ->
  local_as:int ->
  local_addr:int ->
  unit ->
  config
(** [cluster_id] defaults to the router id; [igp_metric] maps a next-hop
    address to its IGP cost; [xtras] feed the [get_xtra] helper.
    [batch_updates] (default [true]) processes a multi-prefix UPDATE's
    NLRI as one batch sharing one converted attribute view; [false]
    restores the legacy per-prefix path (the dispatch-bench baseline).
    [update_groups] (default [true]) partitions peers into update groups
    ({!Rib.Update_group}) so export policy, outbound dispatch and UPDATE
    encoding run once per group and the frames fan out to every member;
    [false] restores the per-peer export path (the fan-out baseline).
    [shards] (default [1]) partitions the Loc-RIB by prefix hash across
    that many OCaml domains: import-filter dispatch and UPDATE encoding
    fan out to per-shard workers when the attached chains pass
    {!Xbgp.Vmm.shard_parallel_safe}, while every state commit stays on
    the coordinating domain in submission order — so the observable
    routing state is identical, route for route, to [shards = 1].
    [1] spawns no domain and is bit-for-bit today's sequential path. *)

(** Validation-result communities attached by native origin validation
    and, identically, by the extension (65535:1/2/3). *)

val ov_community_valid : int
val ov_community_invalid : int
val ov_community_notfound : int

(** Route provenance tags. *)

val src_local : int
val src_ebgp : int
val src_ibgp : int

type route = {
  attrs : Attr_intern.t;
  src : int;  (** peer index; -1 = locally originated *)
  src_type : int;
  src_router_id : int;
  src_addr : int;
  src_rr_client : bool;
  igp_cost : int;
}

type peer = {
  idx : int;
  conf : peer_conf;
  peer_type : int;
  session : Session.Fsm.t;
  mutable synced : bool;
}

type stats = Telemetry.daemon_stats = {
  mutable updates_rx : int;
  mutable routes_in : int;
  mutable withdrawals_rx : int;
  mutable import_rejected : int;
  mutable export_rejected : int;
  mutable updates_tx : int;
}
(** The shared daemon-stats shape ({!Telemetry.daemon_stats}); {!stats}
    returns a point-in-time snapshot assembled from the registry
    counters ([bgp_*_total] with labels [daemon]/[impl="frr"]). *)

type t

val create :
  ?telemetry:Telemetry.t -> ?vmm:Xbgp.Vmm.t -> sched:Netsim.Sched.t ->
  config -> peer_conf list -> t
(** Passing [vmm] makes the daemon xBGP-compliant: every insertion point
    consults it, including the decision process. [telemetry] is the
    registry all counters land in (default: the VMM's registry when a
    VMM is given, else a fresh disabled one). *)

val start : t -> unit
(** Run extension init bytecodes, then open all sessions. *)

val shutdown : t -> unit
(** Join the worker domains (no-op for an unsharded daemon). Call when
    the simulation retires the router; the parallel lanes are unusable
    afterwards. *)

val originate : t -> Bgp.Prefix.t -> Bgp.Attr.t list -> unit
(** Originate a route locally with explicit attributes (e.g. a RIS feed,
    §3.2); it enters the Loc-RIB and is advertised per policy. *)

val withdraw_local : t -> Bgp.Prefix.t -> unit

val restart_sessions : t -> unit
(** Re-open any session that has fallen back to Idle (e.g. after a link
    failure healed). *)

val set_xtra : t -> string -> bytes -> unit
(** Replace (or add) one named configuration extra at runtime — how an
    operator delivers an updated ROA file or threshold to a running
    router. Init-time extension state needs {!rerun_init} afterwards. *)

val rerun_init : t -> unit
(** Re-run the extension init bytecodes against the current xtras (the
    runtime half of a configuration swap, e.g. an RPKI ROA update). *)

val refresh_exports : t -> unit
(** Re-evaluate export policy for every best route — what a daemon does
    when IGP state changes (§3.1). *)

(** {1 Introspection} *)

val loc_count : t -> int
val loc_best : t -> Bgp.Prefix.t -> route option
val best_route : t -> Bgp.Prefix.t -> route option
val best_attrs : t -> Bgp.Prefix.t -> Bgp.Attr.t list option

val loc_snapshot : t -> (Bgp.Prefix.t * Bgp.Attr.t list) list
(** Whole-Loc-RIB snapshot in the neutral codec form, sorted by prefix —
    the xBGP-visible state compared across hosts by the differential
    fuzzer. *)

val iter_loc : t -> (Bgp.Prefix.t -> route -> unit) -> unit
val stats : t -> stats
val telemetry : t -> Telemetry.t

val group_count : t -> int
(** Active update groups (0 until a peer syncs, or when [update_groups]
    is off). *)

val shard_info : t -> Shard.Info.t
(** Per-shard route balance, VM load, queue pressure and lane counters —
    the [show shards] payload. Degenerate but well-formed when
    unsharded. *)

val peer : t -> int -> peer
val peer_established : t -> int -> bool
val set_log : t -> (string -> unit) -> unit
val name : t -> string
val vmm : t -> Xbgp.Vmm.t option

(** {1 Observability: provenance, flight recorder, BMP mirror} *)

val provenance : t -> Bgp.Prefix.t -> Obs.Provenance.t option
(** Provenance of the prefix's current best route — ingress peer, the
    import chain that ran (per-bytecode verdicts, attribute mutations,
    map writes) and the decision-process disposal computed against the
    live Loc-RIB. Falls back to the last reject/withdraw record once no
    candidate is left. *)

val provenance_candidates : t -> Bgp.Prefix.t -> Obs.Provenance.t list

val provenance_snapshot : t -> (Bgp.Prefix.t * Obs.Provenance.t) list
(** One record per installed best route, sorted by prefix. *)

val set_recorder : t -> Obs.Recorder.t option -> unit
(** Attach (or detach) a flight recorder; the hook is pushed down to the
    VMM (xprog faults, native fallbacks, map evictions), the session
    FSMs (transitions) and the update-group engine (split/merge/rekey),
    while the daemon itself records route add/replace/withdraw events
    with provenance digests. *)

val recorder : t -> Obs.Recorder.t option

val set_collector : t -> Obs.Bmp.collector option -> unit
(** Attach a BMP-style (RFC 7854-inspired) monitoring collector: every
    received UPDATE is mirrored verbatim as Route Monitoring, and every
    session edge as Peer Up / Peer Down. *)

val collector : t -> Obs.Bmp.collector option

val group_details : t -> (string * int list) list
(** Update-group partition [(key, ascending member indices)] in group
    creation order — the [show update-groups] payload. *)
