(** FRRouting-style attribute storage: a fixed host-byte-order record
    with one field per known attribute, deduplicated ("interned") through
    a hash table so identical attribute sets share one allocation.

    Nothing here is close to the wire format: every crossing of the xBGP
    boundary converts between this record and the neutral
    network-byte-order TLV — the conversion work that made the FRRouting
    adapter the larger of the two in the paper (§2.1).

    The [extra] field carries attributes "not defined by any standard" —
    the attribute API the paper's authors had to add to FRRouting. The
    native UPDATE parser still drops unknown attributes and the native
    encoder only emits known ones; recovering and re-emitting them is
    what the GeoLoc extension's receive/encode bytecodes are for. *)

type t = {
  origin : int;
  as_path : Bgp.Attr.segment list;
  as_path_len : int;  (** cached at intern time, like FRR *)
  next_hop : int;
  med : int option;
  local_pref : int option;
  atomic : bool;
  aggregator : (int * int) option;
  communities : int list;
  originator_id : int option;
  cluster_list : int list;
  extra : (int * int * string) list;
      (** (code, flags, payload) of non-standard attributes, sorted *)
  uid : int;
      (** unique id assigned at intern time (0 = not interned) — the
          conversion-cache key; records built with [{ t with ... }] keep
          their source's uid until re-interned, and the cache ignores
          uid 0 *)
}

val empty : t

val intern : t -> t
(** Canonicalize through the intern table (recomputes the cached path
    length). *)

val intern_table_size : unit -> int
val reset_intern_table : unit -> unit

val hash : t -> int
(** Full-structure hash (the stdlib polymorphic hash only explores a
    bounded number of nodes and collides badly on attribute records). *)

(** Hash tables keyed by {e interned} records (physical equality). *)
module Interned_tbl : Hashtbl.S with type key = t

val of_attrs : Bgp.Attr.t list -> t
(** Build (and intern) from parsed attributes; unknown attributes are
    dropped, as FRRouting's parser does. *)

val to_attrs : t -> Bgp.Attr.t list
(** The known attributes in canonical code order, for the native encoder;
    [extra] is deliberately not included. *)

(** {1 The xBGP adapter} — neutral TLV <-> interned record *)

val get_tlv : t -> int -> bytes option
(** Fetch one attribute as a neutral TLV (builds the wire form from the
    host representation — the FRR-side conversion cost). Probing for an
    absent attribute is answered from the record fields for free; with
    the conversion cache enabled each present attribute's TLV is built
    once per canonical record (lazily, per requested code) and served
    from the memo after that. The returned bytes are shared and must be
    treated as read-only. *)

(** {2 The conversion cache}

    Interned records are immutable and canonical, so interned-set ->
    neutral-TLV conversion is a pure function of the record's physical
    identity; the cache memoizes {!to_attrs} and the {!get_tlv} snapshot
    per canonical record. The mutation APIs ({!set_tlv}, {!remove},
    {!prepend_as}) invalidate their result's entry explicitly, and
    {!reset_intern_table} drops the whole cache. *)

val set_intern_serialized : bool -> unit
(** Route every {!intern} (and memo invalidation) through a mutex —
    required before a sharded daemon's worker domains intern
    concurrently. Flipped once per process, before any worker exists,
    and never back; single-domain runs keep the lock-free path. *)

val set_conversion_cache : bool -> unit
(** Enable/disable the memo (enabled by default). Disabling clears it,
    so re-enabling starts cold — what the bench ablation and the fuzz
    force-on/off runs use. *)

val set_cache_gate : bool -> unit
(** The attachment gate (default on): the daemon lowers it while its
    VMM has no attachment anywhere, so the pure-native baseline never
    pays for memo bookkeeping no extension can read. Composes with
    {!set_conversion_cache} (the memo runs only when both are on);
    unlike it, flipping the gate keeps the memo table, so a
    detach/re-attach cycle restarts warm. *)

val conversion_cache_enabled : unit -> bool

val conversion_cache_stats : unit -> int * int
(** [(hits, misses)] since the last {!reset_conversion_cache_stats}. *)

val reset_conversion_cache_stats : unit -> unit

val invalidate_conversion : t -> unit
(** Drop the memo entry for one record (mutation APIs call this on their
    result; exposed for hosts with out-of-band mutations). *)

val set_tlv : t -> bytes -> t
(** Install/replace an attribute from its TLV; parses, updates the record
    and re-interns. @raise Bgp.Attr.Parse_error *)

val remove : t -> int -> t
val has_extra : t -> int -> bool

(** {1 Policy / decision accessors} *)

val local_pref_or_default : t -> int
val med_or_default : t -> int
val neighbor_as : t -> int
val origin_as : t -> int option
val contains_as : t -> int -> bool
val prepend_as : t -> int -> t
