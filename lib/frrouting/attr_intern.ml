(* FRRouting-style attribute storage.

   Like FRRouting's `struct attr`, this is a *fixed host-byte-order
   record* with one field per known attribute, deduplicated ("interned")
   through a hash table so identical attribute sets share one allocation.
   Nothing here is close to the wire format: every crossing of the xBGP
   boundary converts between this record and the neutral network-byte-
   order TLV — the conversion work that made the FRRouting adapter 589
   lines against BIRD's 400 in the paper (§2.1).

   FRRouting also had no way to carry attributes "not defined by any
   standard"; the [extra] field is the equivalent of the attribute API the
   authors had to add to the host to support [add_attr]. Note that the
   native UPDATE *parser* still drops unknown attributes and the native
   *encoder* still only emits known ones — recovering and re-emitting
   unknown attributes is exactly what the GeoLoc extension's
   BGP_RECEIVE_MESSAGE and BGP_ENCODE_MESSAGE bytecodes are for. *)

type t = {
  origin : int;
  as_path : Bgp.Attr.segment list;
  as_path_len : int;  (** cached at intern time, like FRR *)
  next_hop : int;
  med : int option;
  local_pref : int option;
  atomic : bool;
  aggregator : (int * int) option;
  communities : int list;
  originator_id : int option;
  cluster_list : int list;
  extra : (int * int * string) list;
      (** (code, flags, payload) of non-standard attributes, sorted by
          code — the attribute API added for xBGP *)
  uid : int;
      (** unique id assigned at intern time (0 = not interned) — the
          cheap conversion-cache key, so a memo lookup costs an int hash
          instead of a full-structure traversal *)
}

let empty =
  {
    origin = Bgp.Attr.origin_code Bgp.Attr.Incomplete;
    as_path = [];
    as_path_len = 0;
    next_hop = 0;
    med = None;
    local_pref = None;
    atomic = false;
    aggregator = None;
    communities = [];
    originator_id = None;
    cluster_list = [];
    extra = [];
    uid = 0;
  }

(* --- interning --- *)

(* Full-structure hash: the stdlib polymorphic hash only explores a
   bounded number of nodes, which makes AS-path-heavy records collide
   catastrophically once the table holds tens of thousands of entries. *)
let hash_attrs t =
  let h = ref (t.origin + (t.next_hop * 31)) in
  let mix v = h := ((!h * 131) + v) land max_int in
  List.iter
    (fun seg ->
      match seg with
      | Bgp.Attr.Seq l ->
        mix 1;
        List.iter mix l
      | Bgp.Attr.Set l ->
        mix 2;
        List.iter mix l)
    t.as_path;
  mix (Option.value ~default:(-1) t.med);
  mix (Option.value ~default:(-1) t.local_pref);
  mix (if t.atomic then 1 else 0);
  (match t.aggregator with
  | Some (a, r) ->
    mix a;
    mix r
  | None -> mix (-2));
  List.iter mix t.communities;
  mix (Option.value ~default:(-1) t.originator_id);
  List.iter mix t.cluster_list;
  List.iter
    (fun (code, flags, payload) ->
      mix code;
      mix flags;
      mix (Hashtbl.hash payload))
    t.extra;
  !h

let hash t = hash_attrs { t with as_path_len = 0 }

(* Hash table over *interned* records: physical equality suffices and the
   full-structure hash avoids the stdlib polymorphic hash's bounded
   traversal, which collides catastrophically on attribute records. *)
module Interned_tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = hash
end)

(* Semantic equality for the intern table: every field except the
   derived [as_path_len] and the identity [uid] (a record built with
   [{ canonical with ... }] carries its source's uid until interned). *)
let semantic_equal a b =
  a.origin = b.origin && a.next_hop = b.next_hop && a.med = b.med
  && a.local_pref = b.local_pref && a.atomic = b.atomic
  && a.aggregator = b.aggregator
  && a.originator_id = b.originator_id
  && a.as_path = b.as_path
  && a.communities = b.communities
  && a.cluster_list = b.cluster_list
  && a.extra = b.extra

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = semantic_equal
  let hash = hash
end)

let intern_table : t Table.t = Table.create 4096
let uid_counter = ref 0

(* The intern table is process-global, and a sharded daemon interns from
   its worker domains (origin-validation tagging, set_attr edits inside
   an import dispatch). [set_intern_serialized true] — flipped once,
   before any worker domain exists, and never back — routes every intern
   through a mutex; single-domain runs keep the lock-free path. *)
let intern_serialized = ref false
let intern_lock = Mutex.create ()

let set_intern_serialized b = intern_serialized := b

let intern_unlocked raw =
  match Table.find_opt intern_table raw with
  | Some canonical -> canonical
  | None ->
    incr uid_counter;
    let raw = { raw with uid = !uid_counter } in
    Table.add intern_table raw raw;
    raw

let intern raw =
  let raw = { raw with as_path_len = Bgp.Attr.as_path_length raw.as_path } in
  if !intern_serialized then begin
    Mutex.lock intern_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock intern_lock)
      (fun () -> intern_unlocked raw)
  end
  else intern_unlocked raw

(* --- the conversion cache ---

   Every crossing of the xBGP boundary rebuilds the neutral TLV form
   from this record (the paper's FRR-side conversion cost). But interned
   records are immutable and canonical — one physical record per
   attribute value — so the conversion is a pure function of the
   record's identity and can be memoized per canonical record: thousands
   of routes sharing one interned set pay for one conversion.

   The memo is keyed by the [uid] assigned at intern time — a cheap int
   key, where hashing the record itself would traverse the whole AS path
   on every lookup and cost more than the conversion it saves. A
   mutation API ([set_tlv]/[remove]/[prepend_as]) re-interns and returns
   a record with its own uid, so a memoized conversion can never be
   observed stale. The mutation APIs still invalidate their result's
   entry explicitly: a freshly mutated set's next conversion is always
   recomputed from the post-mutation value rather than served from a
   previous life of the same canonical record. *)

type memo = {
  mutable m_attrs : Bgp.Attr.t list option;  (** [to_attrs] result *)
  mutable m_tlvs : (int * bytes) list;
      (** neutral TLVs converted so far, lazily per requested code —
          converting every present attribute up front would charge one
          [get_tlv] for the whole set (an AS-path conversion to answer a
          MED probe), which is slower than no cache at all for
          extensions that only probe one or two attributes *)
}

let memo_capacity = 65536
let memo_tbl : (int, memo) Hashtbl.t = Hashtbl.create 4096
let cache_enabled = ref true
let cache_hits = ref 0
let cache_misses = ref 0

(* The daemon drives this from [Vmm.has_any_attachment]: with no
   extension attached nothing ever probes a TLV, so the native baseline
   must not pay for memo bookkeeping it can never use (the BENCH_pr4
   native-speedup regression). Unlike [set_conversion_cache], flipping
   the gate keeps the memo table — a detach/re-attach cycle restarts
   warm. *)
let cache_gate = ref true

let set_conversion_cache b =
  cache_enabled := b;
  if not b then Hashtbl.reset memo_tbl

let set_cache_gate b = cache_gate := b
let conversion_cache_enabled () = !cache_enabled
let conversion_cache_stats () = (!cache_hits, !cache_misses)

let reset_conversion_cache_stats () =
  cache_hits := 0;
  cache_misses := 0

(* Serialized alongside the intern table: a worker-domain attribute edit
   invalidates its record's memo entry, and the memo table is as global
   as the intern table is. The coordinating domain never serves memo
   entries while workers run (the sharded daemons force the cache gate
   down), so removal is the only concurrent access to guard. *)
let invalidate_conversion t =
  if t.uid <> 0 then
    if !intern_serialized then begin
      Mutex.lock intern_lock;
      Hashtbl.remove memo_tbl t.uid;
      Mutex.unlock intern_lock
    end
    else Hashtbl.remove memo_tbl t.uid

let memo_for t =
  match Hashtbl.find_opt memo_tbl t.uid with
  | Some m -> m
  | None ->
    (* cap the table rather than tracking LRU: a reset costs one full
       reconversion wave, reaching the cap at all means the workload has
       more live attribute sets than any of our scenarios *)
    if Hashtbl.length memo_tbl >= memo_capacity then Hashtbl.reset memo_tbl;
    let m = { m_attrs = None; m_tlvs = [] } in
    Hashtbl.add memo_tbl t.uid m;
    m

let intern_table_size () = Table.length intern_table

let reset_intern_table () =
  Table.reset intern_table;
  (* uids are never recycled (the counter is global), but the memos of
     the dropped generation are dead weight — free them *)
  Hashtbl.reset memo_tbl

(* --- conversion from/to the shared wire codec types --- *)

(** Build the interned record from parsed attributes. Unknown attributes
    are dropped, as FRRouting's parser does (the GeoLoc use case relies on
    this). *)
let of_attrs (attrs : Bgp.Attr.t list) =
  let t =
    List.fold_left
      (fun acc (a : Bgp.Attr.t) ->
        match a.value with
        | Origin o -> { acc with origin = Bgp.Attr.origin_code o }
        | As_path p -> { acc with as_path = p }
        | Next_hop n -> { acc with next_hop = n }
        | Med m -> { acc with med = Some m }
        | Local_pref p -> { acc with local_pref = Some p }
        | Atomic_aggregate -> { acc with atomic = true }
        | Aggregator (a, r) -> { acc with aggregator = Some (a, r) }
        | Communities cs -> { acc with communities = cs }
        | Originator_id r -> { acc with originator_id = Some r }
        | Cluster_list l -> { acc with cluster_list = l }
        | Unknown _ -> acc)
      empty attrs
  in
  intern t

(** The known attributes, in canonical code order, ready for the native
    encoder. [extra] is deliberately *not* included (see module header). *)
let to_attrs_fresh t : Bgp.Attr.t list =
  let open Bgp.Attr in
  let origin =
    match origin_of_code t.origin with Some o -> o | None -> Incomplete
  in
  List.filter_map
    (fun x -> x)
    [
      Some (v (Origin origin));
      Some (v (As_path t.as_path));
      Some (v (Next_hop t.next_hop));
      Option.map (fun m -> v (Med m)) t.med;
      Option.map (fun p -> v (Local_pref p)) t.local_pref;
      (if t.atomic then Some (v Atomic_aggregate) else None);
      Option.map (fun (a, r) -> v (Aggregator (a, r))) t.aggregator;
      (match t.communities with [] -> None | cs -> Some (v (Communities cs)));
      Option.map (fun r -> v (Originator_id r)) t.originator_id;
      (match t.cluster_list with
      | [] -> None
      | l -> Some (v (Cluster_list l)));
    ]

let to_attrs t =
  if (not !cache_enabled) || (not !cache_gate) || t.uid = 0 then
    to_attrs_fresh t
  else begin
    let m = memo_for t in
    match m.m_attrs with
    | Some l ->
      incr cache_hits;
      l
    | None ->
      incr cache_misses;
      let l = to_attrs_fresh t in
      m.m_attrs <- Some l;
      l
  end

(* --- the xBGP adapter: neutral TLV <-> interned record --- *)

(** Fetch one attribute as a neutral TLV; requires building the wire form
    from the host representation (the FRR-side conversion cost). *)
let get_tlv_fresh t acode =
  let of_value value = Some (Bgp.Attr.to_tlv (Bgp.Attr.v value)) in
  let open Bgp.Attr in
  if acode = code_origin then
    of_value
      (Origin
         (match origin_of_code t.origin with
         | Some o -> o
         | None -> Incomplete))
  else if acode = code_as_path then of_value (As_path t.as_path)
  else if acode = code_next_hop then of_value (Next_hop t.next_hop)
  else if acode = code_med then Option.bind t.med (fun m -> of_value (Med m))
  else if acode = code_local_pref then
    Option.bind t.local_pref (fun p -> of_value (Local_pref p))
  else if acode = code_atomic_aggregate then
    if t.atomic then of_value Atomic_aggregate else None
  else if acode = code_aggregator then
    Option.bind t.aggregator (fun (a, r) -> of_value (Aggregator (a, r)))
  else if acode = code_communities then
    match t.communities with
    | [] -> None
    | cs -> of_value (Communities cs)
  else if acode = code_originator_id then
    Option.bind t.originator_id (fun r -> of_value (Originator_id r))
  else if acode = code_cluster_list then
    match t.cluster_list with
    | [] -> None
    | l -> of_value (Cluster_list l)
  else
    match List.find_opt (fun (c, _, _) -> c = acode) t.extra with
    | Some (c, flags, payload) ->
      let p = Bytes.of_string payload in
      Some
        (Bgp.Attr.to_tlv
           (Bgp.Attr.with_flags flags (Unknown { code = c; payload = p })))
    | None -> None

(* Absence is answered from the record fields without touching the memo:
   probing for an attribute a route does not carry is the common case
   (an RR extension asking every transit route for its CLUSTER_LIST) and
   costs nothing in the host representation. *)
let has_code t acode =
  let open Bgp.Attr in
  acode = code_origin || acode = code_as_path || acode = code_next_hop
  || (acode = code_med && t.med <> None)
  || (acode = code_local_pref && t.local_pref <> None)
  || (acode = code_atomic_aggregate && t.atomic)
  || (acode = code_aggregator && t.aggregator <> None)
  || (acode = code_communities && t.communities <> [])
  || (acode = code_originator_id && t.originator_id <> None)
  || (acode = code_cluster_list && t.cluster_list <> [])
  || List.exists (fun (c, _, _) -> c = acode) t.extra

let get_tlv t acode =
  if (not !cache_enabled) || (not !cache_gate) || t.uid = 0 then
    get_tlv_fresh t acode
  else if not (has_code t acode) then None
  else begin
    let m = memo_for t in
    match List.assoc_opt acode m.m_tlvs with
    | Some tlv ->
      incr cache_hits;
      (* callers must treat the returned TLV as read-only (the VMM
         copies it into VM memory before the extension can touch it) *)
      Some tlv
    | None ->
      incr cache_misses;
      let tlv = get_tlv_fresh t acode in
      Option.iter (fun v -> m.m_tlvs <- (acode, v) :: m.m_tlvs) tlv;
      tlv
  end

(** Install/replace an attribute from its neutral TLV; parses the wire
    form, updates the record and re-interns. @raise Bgp.Attr.Parse_error *)
let set_tlv t tlv =
  let a = Bgp.Attr.of_tlv tlv in
  let open Bgp.Attr in
  let t =
    match a.value with
    | Origin o -> { t with origin = origin_code o }
    | As_path p -> { t with as_path = p }
    | Next_hop n -> { t with next_hop = n }
    | Med m -> { t with med = Some m }
    | Local_pref p -> { t with local_pref = Some p }
    | Atomic_aggregate -> { t with atomic = true }
    | Aggregator (asn, r) -> { t with aggregator = Some (asn, r) }
    | Communities cs -> { t with communities = cs }
    | Originator_id r -> { t with originator_id = Some r }
    | Cluster_list l -> { t with cluster_list = l }
    | Unknown { code; payload } ->
      let extra =
        (code, a.flags, Bytes.to_string payload)
        :: List.filter (fun (c, _, _) -> c <> code) t.extra
      in
      { t with extra = List.sort Stdlib.compare extra }
  in
  let t' = intern t in
  (* explicit invalidation: the mutated set's next conversion is always
     recomputed from the post-mutation value *)
  invalidate_conversion t';
  t'

let remove t acode =
  let open Bgp.Attr in
  let t =
    if acode = code_med then { t with med = None }
    else if acode = code_local_pref then { t with local_pref = None }
    else if acode = code_atomic_aggregate then { t with atomic = false }
    else if acode = code_aggregator then { t with aggregator = None }
    else if acode = code_communities then { t with communities = [] }
    else if acode = code_originator_id then { t with originator_id = None }
    else if acode = code_cluster_list then { t with cluster_list = [] }
    else { t with extra = List.filter (fun (c, _, _) -> c <> acode) t.extra }
  in
  let t' = intern t in
  invalidate_conversion t';
  t'

let has_extra t code = List.exists (fun (c, _, _) -> c = code) t.extra

(* --- convenience used by the decision process and policies --- *)

let local_pref_or_default t = Option.value ~default:100 t.local_pref
let med_or_default t = Option.value ~default:0 t.med
let neighbor_as t = Option.value ~default:0 (Bgp.Attr.as_path_first t.as_path)
let origin_as t = Bgp.Attr.as_path_origin t.as_path

let contains_as t asn = List.mem asn (Bgp.Attr.as_path_asns t.as_path)

let prepend_as t asn =
  let t' = intern { t with as_path = Bgp.Attr.as_path_prepend asn t.as_path } in
  invalidate_conversion t';
  t'
