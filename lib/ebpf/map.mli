(** eBPF maps: persistent state store behind the map helpers.

    Keys and values cross the boundary as immutable [string]s, so map
    entries never alias bytecode-visible VM memory. Each map keeps its
    own operation counters for telemetry export. *)

type kind =
  | Hash  (** bounded hash table; insert into a full table fails *)
  | Lru
      (** hash table that evicts the least-recently-used entry when
          full; recency is refreshed by lookups {e and} updates, which
          makes lookups stateful *)
  | Per_peer_array
      (** [max_entries] zero-initialised slots indexed by a u32
          little-endian key; in-range slots always exist *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

type spec = {
  name : string;
  kind : kind;
  key_size : int;
  value_size : int;
  max_entries : int;
  shared : bool;
      (** Placement under a sharded VMM: a shared map keeps ONE instance
          serving every shard (helper calls on it are serialized by the
          VMM), preserving cross-prefix or cross-point state such as
          per-peer rate windows. A non-shared map is instantiated once
          per shard, which is only sound when the program derives its
          keys from the dispatched prefix. Irrelevant when the VMM runs
          unsharded (the default). *)
}

val max_key_size : int
val max_value_size : int
val max_max_entries : int

val validate : spec -> (unit, string) result
(** Size/name bounds; array maps additionally require [key_size = 4]. *)

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable updates : int;
  mutable deletes : int;
  mutable evictions : int;
}

type t

val create : spec -> t
(** @raise Invalid_argument when {!validate} rejects the spec. *)

val spec : t -> spec
val stats : t -> stats

val lookup : t -> string -> string option
(** [None] on wrong-size key, absent hash/LRU key, or out-of-range
    array index. Refreshes LRU recency on hit. *)

val update : t -> string -> string -> bool
(** [false] on wrong-size key/value, a full [Hash] map (new key), or an
    out-of-range array index. [Lru] evicts instead of failing. *)

val delete : t -> string -> bool
(** [false] when nothing was deleted. Array delete zeroes the slot and
    succeeds only when the slot held a non-zero value. *)

val length : t -> int
(** Live entries; for array maps, the number of non-zero slots. *)

val dump : t -> (string * string) list
(** Canonical contents for the fuzz oracles: entries sorted by key
    bytes; array maps report non-zero slots only (key rendered as the
    4-byte LE index). Recency ticks are excluded on purpose. *)

val clear : t -> unit
(** Drop all entries (stats are preserved). *)

val pp_spec : Format.formatter -> spec -> unit
