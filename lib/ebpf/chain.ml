(* Whole-chain fusion for the [Chain] engine.

   [Block] removed per-instruction dispatch inside one bytecode; what is
   left of the extension-vs-native gap is the crossing *around* each
   bytecode — per-program VM entry/exit, outcome boxing, and the
   dispatch loop that walks the attachment chain (the E8/E9 ablation).
   This module fuses an attachment point's entire chain into a single
   closure built once, at attach time:

   - each attached bytecode becomes a [site]: a prologue/epilogue pair
     specialized by the caller (the xBGP VMM binds budget refill, heap
     reset, telemetry probes and trace capture there, resolving
     everything resolvable from the attach-time dispatch summary), plus
     the VM's {!Vm.prepared_entry};
   - the sites are chained last-to-first so one dispatch is one call:
     a returned value exits the fused closure directly, the deferral
     exception ([next()] — injected by the caller via [is_defer], since
     the control exception belongs to the VMM layer) falls through to
     the next site's closure, and a contained fault ({!Vm.Error} /
     {!Memory.Fault}) routes to the shared fallback;
   - past the last site (or after a fault) control reaches [fallback],
     where the caller put the native-fallback bookkeeping and the
     host's default function.

   The module is engine-agnostic glue: it never inspects bytecode and
   holds no VM state, so its semantics are exactly the dispatch loop it
   replaces — the N-way fuzz oracle checks that on every campaign.

   [layout] is the fused unit's address space: site [i]'s slots occupy
   chain offsets [bases.(i) .. bases.(i) + slots_i). Fault reporters use
   it to render a faulting slot in both coordinate systems (local pc for
   disassembly, chain offset for the fused view). *)

(* --- chain-offset <-> (site, pc) tables --- *)

type layout = {
  bases : int array;  (** chain offset of each site's slot 0 *)
  total : int;  (** total slots across the chain *)
}

let layout slot_counts =
  let n = Array.length slot_counts in
  let bases = Array.make n 0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    bases.(i) <- !pos;
    pos := !pos + slot_counts.(i)
  done;
  { bases; total = !pos }

let total l = l.total
let base l site = l.bases.(site)
let offset l ~site ~pc = l.bases.(site) + pc

(* Sites are few (a chain is a handful of bytecodes); linear scan. *)
let locate l off =
  if off < 0 || off >= l.total then None
  else begin
    let n = Array.length l.bases in
    let site = ref 0 in
    for i = 0 to n - 1 do
      if l.bases.(i) <= off then site := i
    done;
    Some (!site, off - l.bases.(!site))
  end

(* --- fusion --- *)

type site = {
  run : unit -> int64;
      (** prologue + VM entry + epilogue, as specialized by the caller;
          returns r0, raises the deferral exception on [next()], and
          {!Vm.Error}/{!Memory.Fault} on a contained fault (with the
          epilogue already applied — the caller wraps it around the
          raise) *)
  on_value : int64 -> unit;  (** bookkeeping for a deciding return *)
  on_defer : unit -> unit;  (** bookkeeping for a [next()] deferral *)
  on_fault : string -> unit;
      (** bookkeeping for a contained fault (fault record, counters,
          logs); the fused closure then routes to [fallback] *)
}

(** Fuse [sites] into one closure. [is_defer] recognizes the caller's
    control exception for [next()]; [fallback] is entered after the last
    site defers or any site faults — exactly the dispatch loop's two
    paths into the host's native default. Any other exception (a bug,
    or a host callback raising) propagates unchanged, as it does out of
    the unfused loop. *)
let fuse ~(is_defer : exn -> bool) ~(sites : site array)
    ~(fallback : unit -> int64) : unit -> int64 =
  let n = Array.length sites in
  (* built last-to-first so each site's closure tail-calls its successor
     directly — no loop, no index, no outcome variant allocated *)
  let rec build i =
    if i >= n then fallback
    else begin
      let s = sites.(i) in
      let next = build (i + 1) in
      fun () ->
        match s.run () with
        | v ->
          s.on_value v;
          v
        | exception e ->
          if is_defer e then begin
            s.on_defer ();
            next ()
          end
          else (
            match e with
            | Vm.Error msg | Memory.Fault msg ->
              s.on_fault msg;
              fallback ()
            | e -> raise e)
    end
  in
  build 0
