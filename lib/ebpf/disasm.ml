(* Textual disassembly of eBPF programs, one instruction per line with its
   slot index — handy for debugging extension bytecode and used by the
   [xbgp-sim disasm] CLI subcommand. *)

let pp_program ppf (prog : Insn.t list) =
  let _ =
    List.fold_left
      (fun slot i ->
        Fmt.pf ppf "%4d: %a@." slot Insn.pp i;
        slot + Insn.slots i)
      0 prog
  in
  ()

let program_to_string prog = Fmt.str "%a" pp_program prog

let insn_to_string insn = Fmt.str "%a" Insn.pp insn

(** Disassemble wire-form bytecode. @raise Insn.Decode_error *)
let of_bytes buf = program_to_string (Insn.decode buf)
