(** The eBPF interpreter.

    Faithful to the classic execution model: eleven 64-bit registers, a
    512-byte stack addressed through the read-only frame pointer r10,
    little-endian memory, trapping unsigned division by zero, and helper
    calls dispatched on the CALL immediate.

    Execution is metered by an instruction budget. Exhausting it, touching
    memory outside a granted region, or dividing by zero raises {!Error};
    the xBGP virtual machine manager catches the exception and falls back
    to the host's native code (§2.1 of the paper).

    A VM may be reused across runs — the xBGP VMM keeps one VM attached
    per insertion point; {!run} zeroes r0..r9 on entry. *)

exception Error of string

(** The execution engine: a classic interpreter; closure threading built
    at VM creation (the repository's stand-in for ubpf's JIT); the
    basic-block pre-compiler, which decodes the program once into fused
    basic blocks, charges the instruction budget per block instead of
    per instruction, accesses statically-bounded r10 stack slots
    directly, and resolves helper calls at compile time; or the
    whole-chain engine, which executes exactly as [Block] inside this
    module but additionally signals the xBGP VMM to fuse the whole
    attachment chain around the VM into one compiled dispatch unit (see
    {!Chain}). All four share the same semantics; the ablation bench
    measures the gaps. *)
type engine = Interpreted | Compiled | Block | Chain

val engine_name : engine -> string
(** ["interpreted"], ["compiled"], ["block"] or ["chain"] — the names
    used by manifests, benches and the fuzz oracle. *)

val engine_of_name : string -> engine option
(** Inverse of {!engine_name}. *)

val all_engines : engine list
(** Every engine, in [Interpreted; Compiled; Block; Chain] order — the
    set the differential oracle and the conformance suite quantify
    over. *)

type t

type helper = t -> int64 array -> int64
(** A helper receives the VM (for memory access) and the argument
    registers r1..r5; its result lands in r0. A helper may raise to abort
    the run (e.g. the xBGP [next()] control signal). *)

val default_budget : int
val stack_size : int
val stack_base : int64

val create :
  ?budget:int ->
  ?engine:engine ->
  ?mem:Memory.t ->
  helpers:(int * helper) list ->
  Insn.t list ->
  t
(** Create a VM for a program. [mem] defaults to a fresh memory; the
    512-byte stack region is always added to it. [engine] defaults to
    [Interpreted]. *)

val engine : t -> engine

val run : ?entry:int -> t -> int64
(** Execute from slot [entry] (default 0) until EXIT and return r0.
    Registers r0..r9 are zeroed on entry and r10 re-pointed at the stack
    top, so a VM can be reused. @raise Error on any fault. *)

val prepared_entry : t -> unit -> int64
(** A closure equivalent to [run t]: same register reset, same faults,
    same result — but the engine dispatch and the entry checks are
    resolved once, when the closure is built. The whole-chain compiler
    ({!Chain}) enters each attachment's VM through this. *)

val memory : t -> Memory.t
val reg : t -> Insn.reg -> int64
val set_reg : t -> Insn.reg -> int64 -> unit

val set_budget : t -> int -> unit
(** Refill the instruction budget (the VMM does this before each run). *)

val budget : t -> int
(** Remaining instruction budget — after a successful run, the headroom
    left over. *)

val fault_pc : t -> int option
(** Best-effort slot of the instruction being executed when the last run
    faulted: exact for [Interpreted] (and for [Block]/[Chain] once they
    have fallen back to the interpreter on budget exhaustion), the
    faulting block's leader for [Block] and [Chain], [None] for
    [Compiled] (untracked — pc stores would defeat closure threading)
    and before any run. Only meaningful right after {!run} raised. *)

val program_slots : t -> int
(** Slots the program occupies (LDDW counts two) — the VM's share of a
    fused chain's address space ({!Chain.layout}). *)

val insn_at : t -> int -> Insn.t option
(** The decoded instruction at a slot ([None] out of range or on an LDDW
    pad slot) — lets fault reporters disassemble the faulting
    instruction. *)

val executed : t -> int
(** Instructions retired over the VM's lifetime. *)

val helper_calls : t -> int

(** Byte-swap primitives, exposed for helper implementations. *)

val bswap16 : int64 -> int64
val bswap32 : int64 -> int64
val bswap64 : int64 -> int64
