(** Basic-block analysis for the block-compiled engine.

    Pure program analysis: partitions a decoded slot array into basic
    blocks, resolves jump targets to slot indices, and fuses common
    instruction pairs (load+ALU, mov-imm bursts feeding a CALL, a
    trailing ALU folded into a conditional branch). The VM turns the
    result into one closure per block; each block carries the exact
    number of instructions it retires so the engine can charge the
    budget once per block instead of once per instruction. *)

type slot = Op of Insn.t | Pad

type uop =
  | Plain of Insn.t  (** one instruction; retires 1 *)
  | Load_alu of Insn.t * Insn.t
      (** fused LDX; ALU pair (neither writes r10); retires 2 *)
  | Movi_call of (int * int64) list * int
      (** constant moves [(register index, value)] into r1..r5 followed
          by CALL id; retires [length + 1] *)

type terminator =
  | Exit_  (** EXIT; retires 1 *)
  | Jump of int  (** JA to target slot; retires 1 *)
  | Branch of Insn.width * Insn.cond * Insn.reg * Insn.src * int * int
      (** conditional jump: taken slot, fallthrough slot; retires 1 *)
  | Alu_branch of
      Insn.t * (Insn.width * Insn.cond * Insn.reg * Insn.src * int * int)
      (** trailing ALU fused into the branch; retires 2 *)
  | Fall of int
      (** control reaches slot [target] without a jump; retires 0. The
          target is the next leader, or [>= length] when execution falls
          off the end of the program. *)

type t = {
  start : int;  (** leader slot *)
  uops : uop list;  (** body, in program order *)
  term : terminator;
  retired : int;  (** instructions charged when the block completes *)
}

val analyze : slot array -> t array * int array
(** [analyze slots] is [(blocks, block_of_slot)]: the blocks in program
    order and a map from slot index to block id ([-1] for slots that are
    not leaders). Every in-range jump target landing on an instruction
    is a leader; targets that are out of range or inside an LDDW pair
    are left to the engine to resolve as traps. *)
