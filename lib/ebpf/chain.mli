(** Whole-chain fusion for the [Chain] engine.

    Fuses an attachment point's entire bytecode chain into a single
    closure: each attached bytecode is a {!site} (caller-specialized
    prologue/epilogue around {!Vm.prepared_entry}); a returned value
    exits directly, a deferral ([next()], recognized via [is_defer])
    falls through to the next site, a contained fault routes to the
    shared fallback. Semantics are exactly the dispatch loop this
    replaces — the N-way fuzz oracle machine-checks that equivalence.

    {!layout} maps between chain offsets and per-site pcs so fault
    reporters can render a faulting slot in the fused coordinate
    system. *)

type layout = {
  bases : int array;  (** chain offset of each site's slot 0 *)
  total : int;  (** total slots across the chain *)
}

val layout : int array -> layout
(** [layout slot_counts] lays the sites out consecutively. *)

val total : layout -> int
val base : layout -> int -> int

val offset : layout -> site:int -> pc:int -> int
(** Chain offset of [pc] inside site [site]. *)

val locate : layout -> int -> (int * int) option
(** Inverse of {!offset}: [(site, pc)], or [None] out of range. *)

type site = {
  run : unit -> int64;
      (** prologue + VM entry + epilogue; returns r0, raises the
          deferral exception on [next()], {!Vm.Error}/{!Memory.Fault}
          on a contained fault *)
  on_value : int64 -> unit;
  on_defer : unit -> unit;
  on_fault : string -> unit;
}

val fuse :
  is_defer:(exn -> bool) ->
  sites:site array ->
  fallback:(unit -> int64) ->
  unit ->
  int64
(** One closure for the whole chain. [fallback] is entered after the
    last site defers or any site faults; other exceptions propagate
    unchanged. *)
