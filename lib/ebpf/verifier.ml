(* Static checks performed before bytecode may be attached to an insertion
   point. These mirror the structural subset of the Linux verifier that
   matters for an interpreter with fully bounds-checked memory:

   - every jump lands on an instruction boundary inside the program;
   - control flow cannot fall off the end of the program;
   - every instruction is reachable from the entry slot (the kernel
     verifier's dead-code rejection);
   - the frame pointer r10 is never written;
   - helper calls are restricted to the whitelist from the manifest
     (the paper's manifest "lists the different xBGP API functions that
     the bytecode uses");
   - immediate division/modulo by zero is rejected outright;
   - the program fits the size limit.

   Dynamic properties (memory safety, termination) are enforced at run
   time by [Memory] bounds checks and the [Vm] instruction budget. *)

type error = { slot : int; message : string }

let pp_error ppf { slot; message } = Fmt.pf ppf "slot %d: %s" slot message

let max_insns = 65536

type check_result = (unit, error list) result

let writes_r10 (i : Insn.t) =
  match i with
  | Alu (_, _, R10, _) | Endian (_, R10, _) | Lddw (R10, _) | Ldx (_, R10, _, _)
    ->
    true
  | _ -> false

(** [check ?allowed_helpers prog] verifies [prog]; [allowed_helpers] is the
    manifest whitelist ([None] = all helpers allowed). [map_helpers] are
    the helper ids that take a map index in r1 (supplied by the caller —
    this library does not know the xBGP helper numbering) and [maps] the
    program's declared map specs: a call to a map helper is rejected when
    the program declares no maps, or when the index in r1 is statically
    known and out of range. An index the linear scan cannot resolve is
    left to the runtime check. *)
let check ?allowed_helpers ?(map_helpers = []) ?(maps = [])
    (prog : Insn.t list) : check_result =
  let errors = ref [] in
  let err slot fmt =
    Printf.ksprintf (fun message -> errors := { slot; message } :: !errors) fmt
  in
  let nslots = List.fold_left (fun a i -> a + Insn.slots i) 0 prog in
  if prog = [] then err 0 "empty program";
  if nslots > max_insns then
    err 0 "program too large: %d slots (max %d)" nslots max_insns;
  (* slot -> instruction start map *)
  let starts = Array.make (max nslots 1) false in
  let _ =
    List.fold_left
      (fun slot i ->
        if slot < nslots then starts.(slot) <- true;
        slot + Insn.slots i)
      0 prog
  in
  let check_target slot off =
    let tgt = slot + 1 + off in
    if tgt < 0 || tgt >= nslots then
      err slot "jump target %d outside program" tgt
    else if not starts.(tgt) then
      err slot "jump target %d lands inside lddw" tgt
  in
  let _ =
    List.fold_left
      (fun slot (i : Insn.t) ->
        if writes_r10 i then err slot "write to frame pointer r10";
        (match i with
        | Ja off -> check_target slot off
        | Jcond (_, _, _, _, off) ->
          check_target slot off;
          (* fall-through must stay in range *)
          if slot + 1 >= nslots then err slot "conditional jump at end"
        | Call id -> (
          match allowed_helpers with
          | Some allowed when not (List.mem id allowed) ->
            err slot "helper %d not in manifest whitelist" id
          | _ -> ())
        | Alu (_, Div, _, Imm 0l) -> err slot "division by zero immediate"
        | Alu (_, Mod, _, Imm 0l) -> err slot "modulo by zero immediate"
        | Endian (_, _, bits) ->
          if bits <> 16 && bits <> 32 && bits <> 64 then
            err slot "invalid endian width %d" bits
        | _ -> ());
        (* no fall-off: any instruction whose successor would be past the
           end must be an exit or an unconditional jump *)
        (match i with
        | Exit | Ja _ -> ()
        | _ ->
          if slot + Insn.slots i >= nslots then
            err slot "control flow falls off the end of the program");
        slot + Insn.slots i)
      0 prog
  in
  (* map access: the spec bounds themselves, then a linear scan tracking
     the constant in r1 (the map-index argument register) to catch
     statically-known out-of-range indices at map-helper call sites. The
     constant is discarded at every jump target and after every call,
     mirroring the dispatch-summary analysis: unresolvable degrades to
     "checked at runtime", never to a wrong rejection. *)
  List.iteri
    (fun i spec ->
      match Map.validate spec with
      | Ok () -> ()
      | Error m -> err 0 "map %d: %s" i m)
    maps;
  if map_helpers <> [] then begin
    let nmaps = List.length maps in
    let jump_targets = Hashtbl.create 16 in
    let pos = ref 0 in
    List.iter
      (fun (i : Insn.t) ->
        (match i with
        | Ja off -> Hashtbl.replace jump_targets (!pos + 1 + off) ()
        | Jcond (_, _, _, _, off) ->
          Hashtbl.replace jump_targets (!pos + 1 + off) ()
        | _ -> ());
        pos := !pos + Insn.slots i)
      prog;
    let r1 = ref None in
    let pos = ref 0 in
    List.iter
      (fun (i : Insn.t) ->
        if Hashtbl.mem jump_targets !pos then r1 := None;
        (match i with
        | Alu (_, Mov, R1, Imm v) -> r1 := Some (Int32.to_int v)
        | Lddw (R1, v) -> r1 := Some (Int64.to_int v)
        | Alu (_, _, R1, _) | Endian (_, R1, _) | Ldx (_, R1, _, _) ->
          r1 := None
        | Call id ->
          if List.mem id map_helpers then begin
            if nmaps = 0 then
              err !pos "map helper %d called but the program declares no maps"
                id
            else
              match !r1 with
              | Some idx when idx < 0 || idx >= nmaps ->
                err !pos "map index %d out of range (program declares %d)"
                  idx nmaps
              | _ -> ()
          end;
          r1 := None
        | _ -> ());
        pos := !pos + Insn.slots i)
      prog
  end;
  (* reachability: every instruction must be reachable from slot 0. Only
     meaningful once the jump targets themselves are sound, so skip the
     pass when structural errors were already found. *)
  if !errors = [] && nslots > 0 then begin
    let insns = Array.of_list prog in
    (* slot of the i-th instruction, and instruction index at a slot *)
    let index_at = Array.make nslots (-1) in
    let slot_of = Array.make (Array.length insns) 0 in
    let _ =
      Array.to_list insns
      |> List.fold_left
           (fun (idx, slot) i ->
             index_at.(slot) <- idx;
             slot_of.(idx) <- slot;
             (idx + 1, slot + Insn.slots i))
           (0, 0)
    in
    let reachable = Array.make (Array.length insns) false in
    let rec visit idx =
      if idx >= 0 && idx < Array.length insns && not reachable.(idx) then begin
        reachable.(idx) <- true;
        let slot = slot_of.(idx) in
        match insns.(idx) with
        | Exit -> ()
        | Ja off -> visit index_at.(slot + 1 + off)
        | Jcond (_, _, _, _, off) ->
          visit index_at.(slot + 1 + off);
          visit (idx + 1)
        | _ -> visit (idx + 1)
      end
    in
    visit 0;
    Array.iteri
      (fun idx r ->
        if not r then err slot_of.(idx) "unreachable instruction")
      reachable
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_exn ?allowed_helpers ?map_helpers ?maps prog =
  match check ?allowed_helpers ?map_helpers ?maps prog with
  | Ok () -> ()
  | Error es ->
    invalid_arg
      (Fmt.str "verifier rejected program: %a" (Fmt.list ~sep:Fmt.semi pp_error) es)
