(* eBPF maps: the persistent state store behind the map helpers.

   Three kinds, matching what real libxbgp extensions need (§2.1 of the
   paper lists maps among the services the VMM exposes to bytecode):

   - [Hash]: a bounded hash table. Inserting into a full table fails
     (the helper returns an error to the bytecode), matching
     BPF_MAP_TYPE_HASH.
   - [Lru]: like [Hash], but inserting into a full table evicts the
     least-recently-used entry instead of failing. Recency is refreshed
     by both lookups and updates, matching BPF_MAP_TYPE_LRU_HASH — which
     makes *lookups* stateful, a fact the Vmm invariance gates must
     respect.
   - [Per_peer_array]: a fixed array of [max_entries] zero-initialised
     value slots indexed by a u32 little-endian key, matching
     BPF_MAP_TYPE_ARRAY. All in-range slots always exist; out-of-range
     indices miss on lookup and fail on update.

   Keys and values cross the map boundary as immutable [string]s, so an
   entry can never alias bytecode-visible VM memory: the Vmm copies
   bytes out of the VM to build the key/value and copies the value into
   freshly allocated ephemeral heap on lookup. This module keeps its own
   counters (lookups/hits/updates/deletes/evictions) so the Vmm can
   export map health through the telemetry registry without reaching
   into the representation. *)

type kind = Hash | Lru | Per_peer_array

let kind_name = function
  | Hash -> "hash"
  | Lru -> "lru"
  | Per_peer_array -> "array"

let kind_of_name = function
  | "hash" -> Some Hash
  | "lru" -> Some Lru
  | "array" -> Some Per_peer_array
  | _ -> None

type spec = {
  name : string;
  kind : kind;
  key_size : int;
  value_size : int;
  max_entries : int;
  shared : bool;
      (* one instance across every VMM shard (serialized) vs. one
         instance per shard; meaningless when the VMM is unsharded *)
}

(* Bounds enforced at registration (and thus before any bytecode that
   touches the map can be attached). Generous but finite: a key or
   value must fit comfortably in the 512-byte eBPF stack frame the
   bytecode builds it in. *)
let max_key_size = 64
let max_value_size = 512
let max_max_entries = 65536

let validate (s : spec) : (unit, string) result =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if s.name = "" then fail "map name must be non-empty"
  else if String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') s.name then
    fail "map name %S must not contain whitespace" s.name
  else if s.key_size < 1 || s.key_size > max_key_size then
    fail "map %s: key_size %d out of range [1;%d]" s.name s.key_size
      max_key_size
  else if s.value_size < 1 || s.value_size > max_value_size then
    fail "map %s: value_size %d out of range [1;%d]" s.name s.value_size
      max_value_size
  else if s.max_entries < 1 || s.max_entries > max_max_entries then
    fail "map %s: max_entries %d out of range [1;%d]" s.name s.max_entries
      max_max_entries
  else if s.kind = Per_peer_array && s.key_size <> 4 then
    fail "map %s: array maps index by a u32 key (key_size must be 4, got %d)"
      s.name s.key_size
  else Ok ()

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable updates : int;
  mutable deletes : int;
  mutable evictions : int;
}

type entry = { mutable value : string; mutable tick : int }

type t = {
  spec : spec;
  table : (string, entry) Hashtbl.t; (* Hash / Lru *)
  slots : string array; (* Per_peer_array *)
  mutable tick : int; (* monotone recency clock (Lru) *)
  stats : stats;
}

let zero_value s = String.make s.value_size '\000'

let create (spec : spec) : t =
  (match validate spec with Ok () -> () | Error e -> invalid_arg e);
  {
    spec;
    table = Hashtbl.create 16;
    slots =
      (match spec.kind with
      | Per_peer_array -> Array.make spec.max_entries (zero_value spec)
      | Hash | Lru -> [||]);
    tick = 0;
    stats = { lookups = 0; hits = 0; updates = 0; deletes = 0; evictions = 0 };
  }

let spec t = t.spec
let stats t = t.stats

(* u32 little-endian array index; [None] when the key bytes are not a
   valid in-range index. *)
let array_index t (key : string) =
  if String.length key <> 4 then None
  else
    let b i = Char.code key.[i] in
    let idx = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    if idx >= 0 && idx < t.spec.max_entries then Some idx else None

let key_of_index i =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (i land 0xff);
  Bytes.set_uint8 b 1 ((i lsr 8) land 0xff);
  Bytes.set_uint8 b 2 ((i lsr 16) land 0xff);
  Bytes.set_uint8 b 3 ((i lsr 24) land 0xff);
  Bytes.unsafe_to_string b

let touch (t : t) (e : entry) =
  t.tick <- t.tick + 1;
  e.tick <- t.tick

let lookup t (key : string) : string option =
  t.stats.lookups <- t.stats.lookups + 1;
  if String.length key <> t.spec.key_size then None
  else
    match t.spec.kind with
    | Per_peer_array -> (
      match array_index t key with
      | Some i ->
        t.stats.hits <- t.stats.hits + 1;
        Some t.slots.(i)
      | None -> None)
    | Hash | Lru -> (
      match Hashtbl.find_opt t.table key with
      | Some e ->
        t.stats.hits <- t.stats.hits + 1;
        if t.spec.kind = Lru then touch t e;
        Some e.value
      | None -> None)

(* Evict the least-recently-used entry. O(n) scan: map sizes here are
   small (hundreds), and keeping the representation a plain Hashtbl
   keeps [dump] and the model-based tests honest. *)
let evict_lru t =
  let victim : (string * entry) option ref = ref None in
  Hashtbl.iter
    (fun k (e : entry) ->
      match !victim with
      | Some (_, best) when best.tick <= e.tick -> ()
      | _ -> victim := Some (k, e))
    t.table;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.stats.evictions <- t.stats.evictions + 1
  | None -> ()

let update t (key : string) (value : string) : bool =
  if
    String.length key <> t.spec.key_size
    || String.length value <> t.spec.value_size
  then false
  else
    match t.spec.kind with
    | Per_peer_array -> (
      match array_index t key with
      | Some i ->
        t.slots.(i) <- value;
        t.stats.updates <- t.stats.updates + 1;
        true
      | None -> false)
    | Hash | Lru -> (
      match Hashtbl.find_opt t.table key with
      | Some e ->
        e.value <- value;
        if t.spec.kind = Lru then touch t e;
        t.stats.updates <- t.stats.updates + 1;
        true
      | None ->
        if Hashtbl.length t.table >= t.spec.max_entries then
          if t.spec.kind = Lru then evict_lru t else ();
        if Hashtbl.length t.table >= t.spec.max_entries then false
        else begin
          t.tick <- t.tick + 1;
          Hashtbl.replace t.table key { value; tick = t.tick };
          t.stats.updates <- t.stats.updates + 1;
          true
        end)

let delete t (key : string) : bool =
  if String.length key <> t.spec.key_size then false
  else
    match t.spec.kind with
    | Per_peer_array -> (
      match array_index t key with
      | Some i when t.slots.(i) <> zero_value t.spec ->
        t.slots.(i) <- zero_value t.spec;
        t.stats.deletes <- t.stats.deletes + 1;
        true
      | _ -> false)
    | Hash | Lru ->
      if Hashtbl.mem t.table key then begin
        Hashtbl.remove t.table key;
        t.stats.deletes <- t.stats.deletes + 1;
        true
      end
      else false

let length t =
  match t.spec.kind with
  | Per_peer_array ->
    Array.fold_left
      (fun n v -> if v <> zero_value t.spec then n + 1 else n)
      0 t.slots
  | Hash | Lru -> Hashtbl.length t.table

(* Canonical, order-independent view of the contents for the fuzz
   oracles: entries sorted by key bytes. Array maps report only
   non-zero slots (a zero slot is indistinguishable from "never
   written", and the oracles compare freshly-created maps against
   long-lived ones). Recency ticks are deliberately NOT part of the
   dump: two legs that performed the same writes in a different
   interleaving may disagree on ticks, and the gates that keep
   LRU-reading chains out of batching/grouping are what make the
   entry-level comparison sound. *)
let dump t : (string * string) list =
  match t.spec.kind with
  | Per_peer_array ->
    let acc = ref [] in
    for i = Array.length t.slots - 1 downto 0 do
      if t.slots.(i) <> zero_value t.spec then
        acc := (key_of_index i, t.slots.(i)) :: !acc
    done;
    !acc
  | Hash | Lru ->
    Hashtbl.fold (fun k e acc -> (k, e.value) :: acc) t.table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let clear t =
  Hashtbl.reset t.table;
  (match t.spec.kind with
  | Per_peer_array ->
    Array.fill t.slots 0 (Array.length t.slots) (zero_value t.spec)
  | Hash | Lru -> ());
  t.tick <- 0

let pp_spec ppf s =
  Fmt.pf ppf "%s:%s k=%d v=%d max=%d" s.name (kind_name s.kind) s.key_size
    s.value_size s.max_entries
