(** Textual disassembly of eBPF programs, one instruction per line with
    its slot index. *)

val pp_program : Format.formatter -> Insn.t list -> unit
val program_to_string : Insn.t list -> string

val insn_to_string : Insn.t -> string
(** One instruction, no slot index — fault reports use it to show the
    faulting instruction. *)

val of_bytes : bytes -> string
(** Disassemble wire-form bytecode. @raise Insn.Decode_error *)
