(* Basic-block analysis for the block-compiled engine.

   This module is pure: it partitions a decoded slot array into basic
   blocks and fuses common instruction pairs, but performs no execution
   and holds no VM state. The VM ([Vm.compile_blocks]) turns the result
   into closures.

   Leaders are slot 0, every in-range jump target that lands on an
   instruction boundary, and the slot after every control-transfer
   instruction (JA, conditional jumps, EXIT). Jump targets that are out
   of range or land inside an LDDW pair are *not* leaders — the engine
   resolves them to trap closures so arbitrary (unverified) programs keep
   interpreter-identical fault behaviour.

   Fusions (each removes per-instruction dispatch in the hot loop):
   - [Load_alu]: an LDX immediately followed by an ALU op (neither
     writing r10) retires as one unit;
   - [Movi_call]: a burst of constant moves into r1..r5 (MOV-imm or
     LDDW) feeding a CALL collapses into precomputed argument stores
     plus the call;
   - [Alu_branch]: a trailing ALU op fused into the conditional-jump
     terminator.
   Fusion never crosses a leader, so a jump into the middle of a fused
   pair is impossible by construction. *)

type slot = Op of Insn.t | Pad

type uop =
  | Plain of Insn.t  (** one instruction; retires 1 *)
  | Load_alu of Insn.t * Insn.t  (** fused LDX; ALU pair; retires 2 *)
  | Movi_call of (int * int64) list * int
      (** constant moves [(reg index, value)] into r1..r5, then CALL id;
          retires [length + 1] *)

type terminator =
  | Exit_  (** EXIT; retires 1 *)
  | Jump of int  (** JA to target slot; retires 1 *)
  | Branch of Insn.width * Insn.cond * Insn.reg * Insn.src * int * int
      (** conditional jump: taken slot, fallthrough slot; retires 1 *)
  | Alu_branch of
      Insn.t * (Insn.width * Insn.cond * Insn.reg * Insn.src * int * int)
      (** trailing ALU fused into the branch; retires 2 *)
  | Fall of int
      (** control reaches the next leader (or falls off the end when the
          target is [= length]); retires 0 *)

type t = {
  start : int;  (** leader slot *)
  uops : uop list;  (** body, in program order *)
  term : terminator;
  retired : int;
      (** instructions charged against the budget when the block runs to
          completion (body + terminator) *)
}

let uop_retires = function
  | Plain _ -> 1
  | Load_alu _ -> 2
  | Movi_call (moves, _) -> List.length moves + 1

let term_retires = function
  | Exit_ | Jump _ | Branch _ -> 1
  | Alu_branch _ -> 2
  | Fall _ -> 0

(* A constant move into an argument register, as fused by [Movi_call].
   The 32-bit MOV zero-extends, exactly as [Vm.alu32 Mov]. *)
let const_arg_move = function
  | Insn.Alu (w, Mov, r, Imm i) ->
    let d = Insn.reg_index r in
    if d >= 1 && d <= 5 then
      let v = Int64.of_int32 i in
      let v =
        match w with Insn.W64bit -> v | Insn.W32bit -> Int64.logand v 0xFFFFFFFFL
      in
      Some (d, v)
    else None
  | Insn.Lddw (r, v) ->
    let d = Insn.reg_index r in
    if d >= 1 && d <= 5 then Some (d, v) else None
  | _ -> None

let writes_r10 = function
  | Insn.Alu (_, _, r, _)
  | Insn.Endian (_, r, _)
  | Insn.Lddw (r, _)
  | Insn.Ldx (_, r, _, _) ->
    Insn.reg_index r = 10
  | _ -> false

let analyze slots =
  let n = Array.length slots in
  let is_leader = Array.make (max n 1) false in
  let mark t =
    if t >= 0 && t < n then
      match slots.(t) with Op _ -> is_leader.(t) <- true | Pad -> ()
  in
  if n > 0 then is_leader.(0) <- true;
  Array.iteri
    (fun i slot ->
      match slot with
      | Pad -> ()
      | Op insn -> (
        match insn with
        | Ja off ->
          mark (i + 1 + off);
          mark (i + 1)
        | Jcond (_, _, _, _, off) ->
          mark (i + 1 + off);
          mark (i + 1)
        | Exit -> mark (i + 1)
        | _ -> ()))
    slots;
  let block_of_slot = Array.make (max n 1) (-1) in
  let blocks = ref [] in
  let nblocks = ref 0 in
  (* Build one block starting at leader [l]. *)
  let build l =
    let body = ref [] in
    let push u = body := u :: !body in
    let finish term =
      let uops = List.rev !body in
      (* fuse a trailing ALU into a conditional-jump terminator *)
      let uops, term =
        match (term, uops) with
        | Branch (w, c, d, s, tk, fl), _ -> (
          match List.rev uops with
          | Plain (Insn.Alu _ as a) :: prefix when not (writes_r10 a) ->
            (List.rev prefix, Alu_branch (a, (w, c, d, s, tk, fl)))
          | _ -> (uops, term))
        | _ -> (uops, term)
      in
      let retired =
        List.fold_left (fun acc u -> acc + uop_retires u) 0 uops
        + term_retires term
      in
      { start = l; uops; term; retired }
    in
    (* Try to fuse a burst of constant argument moves ending in CALL,
       none of which (past the first) may be a leader. *)
    let try_movi_call i =
      let rec burst j acc =
        if j >= n then None
        else if j > i && is_leader.(j) then None
        else
          match slots.(j) with
          | Pad -> None
          | Op (Insn.Call id) ->
            if acc = [] then None else Some (Movi_call (List.rev acc, id), j + 1)
          | Op insn -> (
            match const_arg_move insn with
            | Some mv -> burst (j + Insn.slots insn) (mv :: acc)
            | None -> None)
      in
      burst i []
    in
    let rec walk i =
      if i >= n then finish (Fall i)
      else if i > l && is_leader.(i) then finish (Fall i)
      else
        match slots.(i) with
        | Pad ->
          (* unreachable from a leader walk (pads only follow LDDW), but
             keep arbitrary arrays safe: end the block here *)
          finish (Fall i)
        | Op insn -> (
          match insn with
          | Exit -> finish Exit_
          | Ja off -> finish (Jump (i + 1 + off))
          | Jcond (w, c, d, s, off) -> finish (Branch (w, c, d, s, i + 1 + off, i + 1))
          | Ldx (_, d, _, _)
            when Insn.reg_index d <> 10
                 && i + 1 < n
                 && not is_leader.(i + 1) -> (
            match slots.(i + 1) with
            | Op (Insn.Alu (_, _, d2, _) as a) when Insn.reg_index d2 <> 10 ->
              push (Load_alu (insn, a));
              walk (i + 2)
            | _ ->
              push (Plain insn);
              walk (i + 1))
          | Alu (_, Mov, _, Imm _) | Lddw _ when const_arg_move insn <> None
            -> (
            match try_movi_call i with
            | Some (u, next) ->
              push u;
              walk next
            | None ->
              push (Plain insn);
              walk (i + Insn.slots insn))
          | _ ->
            push (Plain insn);
            walk (i + Insn.slots insn))
    in
    walk l
  in
  for l = 0 to n - 1 do
    if is_leader.(l) then begin
      block_of_slot.(l) <- !nblocks;
      incr nblocks;
      blocks := build l :: !blocks
    end
  done;
  (Array.of_list (List.rev !blocks), block_of_slot)
