(* The eBPF execution engines.

   Faithful to the classic eBPF execution model: eleven 64-bit registers,
   a 512-byte stack addressed through the read-only frame pointer r10,
   little-endian memory, unsigned div/mod-by-zero trapping, and helper
   calls dispatched on the CALL immediate. Jump offsets are expressed in
   8-byte slots, so LDDW counts for two, exactly as in the wire format.

   Execution is metered by an instruction budget. Exhausting the budget,
   touching memory outside a granted region or dividing by zero raises
   [Error]; the caller (the xBGP virtual machine manager) catches it and
   falls back to the host's native code, as §2.1 of the paper specifies.

   Four engines share these semantics bit for bit:
   - [Interpreted]: a classic decode-and-dispatch loop over the slots;
   - [Compiled]: closure threading — at VM creation every instruction is
     translated once into an OCaml closure that performs the operation
     and tail-calls its successor, removing the per-instruction decode
     and dispatch. This is the repository's stand-in for ubpf's JIT and
     feeds the §4 discussion ("eBPF should be compared with other Virtual
     Machines by considering performance"); the ablation bench measures
     the gap;
   - [Block]: a basic-block pre-compiler (see [Block] the module). The
     program is partitioned once into basic blocks with fused
     instruction pairs; each block is one closure that charges its whole
     retired-instruction count against the budget on entry, runs with no
     per-instruction metering, dispatch, or generic memory lookup for
     statically-bounded r10 accesses, and tail-calls the next block
     directly. Helper calls resolve their target at compile time and
     reuse a preallocated argument buffer. When the remaining budget
     cannot cover a whole block the engine re-enters the interpreter at
     the block's leader, so budget-exhaustion faults (including partial
     helper side effects) are bit-identical to the interpreter's;
   - [Chain]: block compilation plus whole-chain fusion one layer up.
     Inside this module [Chain] executes exactly as [Block] (same block
     closures, same metering, same faults); the variant exists so the
     xBGP VMM can tell, per attachment, that the *dispatch* around the
     VM should also be specialized — the [Chain] module fuses an
     attachment point's whole bytecode chain (prologue, argument
     plumbing, outcome routing, fallback) into one closure entered via
     {!prepared_entry}, removing the per-program entry/exit from every
     dispatch.

   Engine equivalence on success is exact: same r0, same final register
   file, same helper-call sequence, same retired-instruction count. On a
   fault the engines agree on the fault itself but may differ in the
   retired-instruction counter ([Compiled] does not tick on pad-slot
   jumps; [Block] charges a faulting block up front) — the fuzz oracle
   therefore compares outcomes, registers and host-visible state, not
   the meters, on faulting runs. *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type engine = Interpreted | Compiled | Block | Chain

let engine_name = function
  | Interpreted -> "interpreted"
  | Compiled -> "compiled"
  | Block -> "block"
  | Chain -> "chain"

let engine_of_name = function
  | "interpreted" -> Some Interpreted
  | "compiled" -> Some Compiled
  | "block" -> Some Block
  | "chain" -> Some Chain
  | _ -> None

let all_engines = [ Interpreted; Compiled; Block; Chain ]

type slot = I of Insn.t | Pad

type t = {
  mem : Memory.t;
  regs : int64 array;
  helpers : (int, helper) Hashtbl.t;
  program : slot array;
  stack : Memory.region;
  engine : engine;
  mutable budget : int;
  mutable executed : int;  (** instructions retired over the VM lifetime *)
  mutable helper_calls : int;
  mutable last_pc : int;
      (** slot of the most recent instruction entered, for fault
          attribution; -1 when untracked (the [Compiled] engine) or before
          any run. [Interpreted] tracks exactly; [Block] records the block
          leader on entry (exact again once it falls back to the
          interpreter on budget exhaustion). *)
  mutable compiled : (unit -> int64) array;
      (** per-slot entry points; empty unless the engine is [Compiled] *)
  mutable blocks : (unit -> int64) array;
      (** per-basic-block entry points; empty unless the engine is
          [Block] or [Chain] *)
  mutable block_index : int array;
      (** slot -> block id (-1 when not a leader); empty unless [Block]
          or [Chain] *)
}

and helper = t -> int64 array -> int64

let default_budget = 50_000_000
let stack_size = 512
let stack_base = 0x1000_0000L

let slots_of_program prog =
  let n = List.fold_left (fun acc i -> acc + Insn.slots i) 0 prog in
  let arr = Array.make n Pad in
  let pos = ref 0 in
  List.iter
    (fun insn ->
      arr.(!pos) <- I insn;
      pos := !pos + Insn.slots insn)
    prog;
  arr

let memory t = t.mem
let reg t r = t.regs.(Insn.reg_index r)
let set_reg t r v = t.regs.(Insn.reg_index r) <- v
let executed t = t.executed
let helper_calls t = t.helper_calls
let program_slots t = Array.length t.program
let set_budget t b = t.budget <- b
let budget t = t.budget
let fault_pc t = if t.last_pc < 0 then None else Some t.last_pc

let insn_at t pc =
  if pc < 0 || pc >= Array.length t.program then None
  else match t.program.(pc) with I i -> Some i | Pad -> None

let u32 v = Int64.logand v 0xFFFFFFFFL
let sx32 v = Int64.of_int32 (Int64.to_int32 v)

let bswap16 v =
  let v = Int64.to_int v land 0xffff in
  Int64.of_int (((v land 0xff) lsl 8) lor (v lsr 8))

let bswap32 v =
  let v = u32 v in
  let b i = Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL in
  Int64.logor
    (Int64.shift_left (b 0) 24)
    (Int64.logor
       (Int64.shift_left (b 1) 16)
       (Int64.logor (Int64.shift_left (b 2) 8) (b 3)))

let bswap64 v =
  Int64.logor
    (Int64.shift_left (bswap32 v) 32)
    (bswap32 (Int64.shift_right_logical v 32))

let alu64 op a b =
  let open Int64 in
  match (op : Insn.alu_op) with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> if b = 0L then error "division by zero" else unsigned_div a b
  | Mod -> if b = 0L then error "modulo by zero" else unsigned_rem a b
  | Or -> logor a b
  | And -> logand a b
  | Xor -> logxor a b
  | Lsh -> shift_left a (to_int b land 63)
  | Rsh -> shift_right_logical a (to_int b land 63)
  | Arsh -> shift_right a (to_int b land 63)
  | Neg -> neg a
  | Mov -> b

let alu32 op a b =
  match (op : Insn.alu_op) with
  | Arsh ->
    (* sign-extend the operand, arithmetic shift, then zero-extend *)
    u32 (Int64.shift_right (sx32 a) (Int64.to_int b land 31))
  | Lsh -> u32 (Int64.shift_left (u32 a) (Int64.to_int b land 31))
  | Rsh -> Int64.shift_right_logical (u32 a) (Int64.to_int b land 31)
  | _ -> u32 (alu64 op (u32 a) (u32 b))

let cond_holds w c a b =
  let a, b =
    match (w : Insn.width) with
    | W64bit -> (a, b)
    | W32bit -> (u32 a, u32 b)
  in
  let sa, sb = match w with W64bit -> (a, b) | W32bit -> (sx32 a, sx32 b) in
  let ucmp = Int64.unsigned_compare a b in
  match (c : Insn.cond) with
  | Eq -> a = b
  | Ne -> a <> b
  | Gt -> ucmp > 0
  | Ge -> ucmp >= 0
  | Lt -> ucmp < 0
  | Le -> ucmp <= 0
  | Set -> Int64.logand a b <> 0L
  | Sgt -> Int64.compare sa sb > 0
  | Sge -> Int64.compare sa sb >= 0
  | Slt -> Int64.compare sa sb < 0
  | Sle -> Int64.compare sa sb <= 0

let src_value t = function
  | Insn.Imm i -> Int64.of_int32 i
  | Insn.Reg r -> t.regs.(Insn.reg_index r)

let endian_apply e bits v =
  match ((e : Insn.endianness), bits) with
  | Le, 16 -> Int64.logand v 0xFFFFL
  | Le, 32 -> u32 v
  | Le, 64 -> v
  | Be, 16 -> bswap16 v
  | Be, 32 -> bswap32 v
  | Be, 64 -> bswap64 v
  | _ -> error "endian width %d" bits

let do_call t id =
  match Hashtbl.find_opt t.helpers id with
  | None -> error "call to unknown helper %d" id
  | Some f ->
    t.helper_calls <- t.helper_calls + 1;
    let args =
      [| t.regs.(1); t.regs.(2); t.regs.(3); t.regs.(4); t.regs.(5) |]
    in
    t.regs.(0) <- f t args

(* --- closure-threaded compilation --- *)

(* Translate every slot into a closure that performs the operation and
   tail-calls its successor through the closure table. Semantics are
   identical to the interpreter: same metering, same faults. *)
let compile t : (unit -> int64) array =
  let n = Array.length t.program in
  let fns = Array.make n (fun () -> error "unreachable") in
  let tick () =
    if t.budget <= 0 then error "instruction budget exhausted";
    t.budget <- t.budget - 1;
    t.executed <- t.executed + 1
  in
  let goto pc =
    if pc < 0 || pc >= n then fun () ->
      error "pc %d out of program (0..%d)" pc (n - 1)
    else fun () -> fns.(pc) ()
  in
  let source = function
    | Insn.Imm i ->
      let v = Int64.of_int32 i in
      fun () -> v
    | Insn.Reg r ->
      let s = Insn.reg_index r in
      fun () -> t.regs.(s)
  in
  Array.iteri
    (fun i slot ->
      match slot with
      | Pad ->
        fns.(i) <-
          (fun () -> error "jump into the middle of lddw at slot %d" i)
      | I insn -> (
        let dst_checked r =
          let d = Insn.reg_index r in
          if d = 10 then None else Some d
        in
        let bad_r10 () =
          fns.(i) <- (fun () -> error "write to frame pointer r10")
        in
        match insn with
        | Alu (w, op, dst, src) -> (
          match dst_checked dst with
          | None -> bad_r10 ()
          | Some d ->
            let get = source src in
            let cont = goto (i + 1) in
            let f =
              match w with
              | Insn.W64bit -> alu64 op
              | Insn.W32bit -> alu32 op
            in
            fns.(i) <-
              (fun () ->
                tick ();
                t.regs.(d) <- f t.regs.(d) (get ());
                cont ()))
        | Endian (e, dst, bits) -> (
          match dst_checked dst with
          | None -> bad_r10 ()
          | Some d ->
            let cont = goto (i + 1) in
            fns.(i) <-
              (fun () ->
                tick ();
                t.regs.(d) <- endian_apply e bits t.regs.(d);
                cont ()))
        | Lddw (dst, v) -> (
          match dst_checked dst with
          | None -> bad_r10 ()
          | Some d ->
            let cont = goto (i + 2) in
            fns.(i) <-
              (fun () ->
                tick ();
                t.regs.(d) <- v;
                cont ()))
        | Ldx (sz, dst, src, off) -> (
          match dst_checked dst with
          | None -> bad_r10 ()
          | Some d ->
            let s = Insn.reg_index src in
            let offl = Int64.of_int off in
            let cont = goto (i + 1) in
            fns.(i) <-
              (fun () ->
                tick ();
                (try
                   t.regs.(d) <-
                     Memory.load t.mem sz (Int64.add t.regs.(s) offl)
                 with Memory.Fault m -> error "load: %s" m);
                cont ()))
        | St (sz, dst, off, imm) ->
          let d = Insn.reg_index dst in
          let offl = Int64.of_int off in
          let v = Int64.of_int32 imm in
          let cont = goto (i + 1) in
          fns.(i) <-
            (fun () ->
              tick ();
              (try Memory.store t.mem sz (Int64.add t.regs.(d) offl) v
               with Memory.Fault m -> error "store: %s" m);
              cont ())
        | Stx (sz, dst, off, src) ->
          let d = Insn.reg_index dst in
          let s = Insn.reg_index src in
          let offl = Int64.of_int off in
          let cont = goto (i + 1) in
          fns.(i) <-
            (fun () ->
              tick ();
              (try
                 Memory.store t.mem sz (Int64.add t.regs.(d) offl) t.regs.(s)
               with Memory.Fault m -> error "store: %s" m);
              cont ())
        | Ja off ->
          let cont = goto (i + 1 + off) in
          fns.(i) <-
            (fun () ->
              tick ();
              cont ())
        | Jcond (w, c, dst, src, off) ->
          let d = Insn.reg_index dst in
          let get = source src in
          let taken = goto (i + 1 + off) in
          let fallthrough = goto (i + 1) in
          fns.(i) <-
            (fun () ->
              tick ();
              if cond_holds w c t.regs.(d) (get ()) then taken ()
              else fallthrough ())
        | Call id ->
          let cont = goto (i + 1) in
          fns.(i) <-
            (fun () ->
              tick ();
              do_call t id;
              cont ())
        | Exit ->
          fns.(i) <-
            (fun () ->
              tick ();
              t.regs.(0))))
    t.program;
  fns

(* --- the interpreter proper --- *)

(* Decode-and-dispatch from slot [entry]. Shared by the [Interpreted]
   engine and by the [Block] engine's budget-exhaustion fallback, which
   re-enters here at a block leader so metering faults are bit-identical
   to the interpreter's. *)
let interp_from t entry =
  let n = Array.length t.program in
  let rec step pc =
    if pc < 0 || pc >= n then error "pc %d out of program (0..%d)" pc (n - 1);
    t.last_pc <- pc;
    if t.budget <= 0 then error "instruction budget exhausted";
    t.budget <- t.budget - 1;
    t.executed <- t.executed + 1;
    match t.program.(pc) with
    | Pad -> error "jump into the middle of lddw at slot %d" pc
    | I insn -> (
      match insn with
      | Alu (w, op, dst, src) ->
        let d = Insn.reg_index dst in
        if d = 10 then error "write to frame pointer r10";
        let a = t.regs.(d) and b = src_value t src in
        let v =
          match w with W64bit -> alu64 op a b | W32bit -> alu32 op a b
        in
        t.regs.(d) <- v;
        step (pc + 1)
      | Endian (e, dst, bits) ->
        let d = Insn.reg_index dst in
        if d = 10 then error "write to frame pointer r10";
        t.regs.(d) <- endian_apply e bits t.regs.(d);
        step (pc + 1)
      | Lddw (dst, v) ->
        let d = Insn.reg_index dst in
        if d = 10 then error "write to frame pointer r10";
        t.regs.(d) <- v;
        step (pc + 2)
      | Ldx (sz, dst, src, off) ->
        let addr = Int64.add t.regs.(Insn.reg_index src) (Int64.of_int off) in
        let d = Insn.reg_index dst in
        if d = 10 then error "write to frame pointer r10";
        (try t.regs.(d) <- Memory.load t.mem sz addr
         with Memory.Fault m -> error "load: %s" m);
        step (pc + 1)
      | St (sz, dst, off, imm) ->
        let addr = Int64.add t.regs.(Insn.reg_index dst) (Int64.of_int off) in
        (try Memory.store t.mem sz addr (Int64.of_int32 imm)
         with Memory.Fault m -> error "store: %s" m);
        step (pc + 1)
      | Stx (sz, dst, off, src) ->
        let addr = Int64.add t.regs.(Insn.reg_index dst) (Int64.of_int off) in
        (try Memory.store t.mem sz addr t.regs.(Insn.reg_index src)
         with Memory.Fault m -> error "store: %s" m);
        step (pc + 1)
      | Ja off -> step (pc + 1 + off)
      | Jcond (w, c, dst, src, off) ->
        let a = t.regs.(Insn.reg_index dst) and b = src_value t src in
        if cond_holds w c a b then step (pc + 1 + off) else step (pc + 1)
      | Call id ->
        do_call t id;
        step (pc + 1)
      | Exit -> t.regs.(0))
  in
  step entry

(* --- basic-block compilation --- *)

(* Turn the [Block.analyze] result into one closure per block. Each
   closure charges the block's whole retired-instruction count against
   the budget on entry (falling back to [interp_from] at the leader when
   the budget cannot cover the block, which reproduces the interpreter's
   exhaustion point and partial side effects exactly), then runs the
   fused body with no per-instruction metering and tail-calls the next
   block through a direct reference.

   Fast paths, both justified by r10 being read-only and pinned to the
   VM's own stack top by [run]:
   - LDX/ST/STX through r10 with a statically in-bounds offset compile
     to direct byte accesses on the stack buffer, skipping the region
     walk; statically out-of-bounds r10 offsets keep the generic
     bounds-checked path (the address may legitimately resolve into
     another region).
   - CALL resolves the helper once at compile time and refills one
     preallocated argument buffer per call site instead of allocating. *)
let compile_blocks t : (unit -> int64) array * int array =
  let n = Array.length t.program in
  let slots =
    Array.map (function I i -> Block.Op i | Pad -> Block.Pad) t.program
  in
  let blocks, block_of_slot = Block.analyze slots in
  let bfns = Array.make (max (Array.length blocks) 1) (fun () -> error "unreachable") in
  let resolve target =
    if target < 0 || target >= n then fun () ->
      error "pc %d out of program (0..%d)" target (n - 1)
    else
      match t.program.(target) with
      | Pad ->
        fun () -> error "jump into the middle of lddw at slot %d" target
      | I _ ->
        (* every in-range jump target on an instruction is a leader *)
        let bid = block_of_slot.(target) in
        fun () -> bfns.(bid) ()
  in
  let source = function
    | Insn.Imm i ->
      let v = Int64.of_int32 i in
      fun () -> v
    | Insn.Reg r ->
      let s = Insn.reg_index r in
      fun () -> t.regs.(s)
  in
  let sbytes = Memory.region_bytes t.stack in
  (* static r10-relative stack access: Some index when the whole access
     provably stays inside the stack buffer *)
  let stack_index off sz =
    let idx = stack_size + off in
    if idx >= 0 && idx + Insn.size_bytes sz <= stack_size then Some idx
    else None
  in
  let trap fmt = Printf.ksprintf (fun s () -> raise (Error s)) fmt in
  let emit_alu w op d src =
    let get = source src in
    let f = match w with Insn.W64bit -> alu64 op | Insn.W32bit -> alu32 op in
    fun () -> t.regs.(d) <- f t.regs.(d) (get ())
  in
  let emit_call id =
    match Hashtbl.find_opt t.helpers id with
    | None -> trap "call to unknown helper %d" id
    | Some f ->
      let args = Array.make 5 0L in
      fun () ->
        t.helper_calls <- t.helper_calls + 1;
        args.(0) <- t.regs.(1);
        args.(1) <- t.regs.(2);
        args.(2) <- t.regs.(3);
        args.(3) <- t.regs.(4);
        args.(4) <- t.regs.(5);
        t.regs.(0) <- f t args
  in
  (* one instruction as a unit closure (no metering — the block already
     charged for it) *)
  let emit_insn insn : unit -> unit =
    let dst_checked r =
      let d = Insn.reg_index r in
      if d = 10 then None else Some d
    in
    let r10_trap = trap "write to frame pointer r10" in
    match (insn : Insn.t) with
    | Alu (w, op, dst, src) -> (
      match dst_checked dst with
      | None -> r10_trap
      | Some d -> emit_alu w op d src)
    | Endian (e, dst, bits) -> (
      match dst_checked dst with
      | None -> r10_trap
      | Some d -> fun () -> t.regs.(d) <- endian_apply e bits t.regs.(d))
    | Lddw (dst, v) -> (
      match dst_checked dst with
      | None -> r10_trap
      | Some d -> fun () -> t.regs.(d) <- v)
    | Ldx (sz, dst, src, off) -> (
      match dst_checked dst with
      | None -> r10_trap
      | Some d -> (
        match (src, stack_index off sz) with
        | Insn.R10, Some idx -> (
          match sz with
          | Insn.W8 ->
            fun () -> t.regs.(d) <- Int64.of_int (Bytes.get_uint8 sbytes idx)
          | Insn.W16 ->
            fun () ->
              t.regs.(d) <- Int64.of_int (Bytes.get_uint16_le sbytes idx)
          | Insn.W32 ->
            fun () ->
              t.regs.(d) <-
                Int64.logand
                  (Int64.of_int32 (Bytes.get_int32_le sbytes idx))
                  0xFFFFFFFFL
          | Insn.W64 -> fun () -> t.regs.(d) <- Bytes.get_int64_le sbytes idx)
        | _ ->
          let s = Insn.reg_index src in
          let offl = Int64.of_int off in
          fun () -> (
            try t.regs.(d) <- Memory.load t.mem sz (Int64.add t.regs.(s) offl)
            with Memory.Fault m -> error "load: %s" m)))
    | St (sz, dst, off, imm) -> (
      let v = Int64.of_int32 imm in
      match (dst, stack_index off sz) with
      | Insn.R10, Some idx -> (
        match sz with
        | Insn.W8 ->
          let b = Int64.to_int v land 0xff in
          fun () -> Bytes.set_uint8 sbytes idx b
        | Insn.W16 ->
          let h = Int64.to_int v land 0xffff in
          fun () -> Bytes.set_uint16_le sbytes idx h
        | Insn.W32 ->
          let w = Int64.to_int32 v in
          fun () -> Bytes.set_int32_le sbytes idx w
        | Insn.W64 -> fun () -> Bytes.set_int64_le sbytes idx v)
      | _ ->
        let d = Insn.reg_index dst in
        let offl = Int64.of_int off in
        fun () -> (
          try Memory.store t.mem sz (Int64.add t.regs.(d) offl) v
          with Memory.Fault m -> error "store: %s" m))
    | Stx (sz, dst, off, src) -> (
      let s = Insn.reg_index src in
      match (dst, stack_index off sz) with
      | Insn.R10, Some idx -> (
        match sz with
        | Insn.W8 ->
          fun () -> Bytes.set_uint8 sbytes idx (Int64.to_int t.regs.(s) land 0xff)
        | Insn.W16 ->
          fun () ->
            Bytes.set_uint16_le sbytes idx (Int64.to_int t.regs.(s) land 0xffff)
        | Insn.W32 ->
          fun () -> Bytes.set_int32_le sbytes idx (Int64.to_int32 t.regs.(s))
        | Insn.W64 -> fun () -> Bytes.set_int64_le sbytes idx t.regs.(s))
      | _ ->
        let d = Insn.reg_index dst in
        let offl = Int64.of_int off in
        fun () -> (
          try Memory.store t.mem sz (Int64.add t.regs.(d) offl) t.regs.(s)
          with Memory.Fault m -> error "store: %s" m))
    | Call id -> emit_call id
    | Ja _ | Jcond _ | Exit ->
      (* terminators never appear in a block body *)
      trap "unreachable: terminator in block body"
  in
  let emit_uop : Block.uop -> unit -> unit = function
    | Plain insn -> emit_insn insn
    | Load_alu (ld, alu) ->
      let l = emit_insn ld and a = emit_insn alu in
      fun () ->
        l ();
        a ()
    | Movi_call (moves, id) ->
      let call = emit_call id in
      let rec chain = function
        | [] -> call
        | (d, v) :: rest ->
          let k = chain rest in
          fun () ->
            t.regs.(d) <- v;
            k ()
      in
      chain moves
  in
  let emit_term : Block.terminator -> unit -> int64 = function
    | Exit_ -> fun () -> t.regs.(0)
    | Jump target -> resolve target
    | Fall target -> resolve target
    | Branch (w, c, dst, src, taken, fall) ->
      let d = Insn.reg_index dst in
      let get = source src in
      let tk = resolve taken and fl = resolve fall in
      fun () -> if cond_holds w c t.regs.(d) (get ()) then tk () else fl ()
    | Alu_branch (alu, (w, c, dst, src, taken, fall)) ->
      let a = emit_insn alu in
      let d = Insn.reg_index dst in
      let get = source src in
      let tk = resolve taken and fl = resolve fall in
      fun () ->
        a ();
        if cond_holds w c t.regs.(d) (get ()) then tk () else fl ()
  in
  (* fuse the uop list and the terminator into one closure chain at
     compile time — no per-run loop, no separate terminator dispatch *)
  let rec seq fs term =
    match fs with
    | [] -> term
    | [ f ] ->
      fun () ->
        f ();
        term ()
    | [ f; g ] ->
      fun () ->
        f ();
        g ();
        term ()
    | f :: rest ->
      let r = seq rest term in
      fun () ->
        f ();
        r ()
  in
  Array.iteri
    (fun bid (b : Block.t) ->
      let body = seq (List.map emit_uop b.uops) (emit_term b.term) in
      let retired = b.retired and start = b.start in
      bfns.(bid) <-
        (fun () ->
          t.last_pc <- start;
          if t.budget < retired then interp_from t start
          else begin
            t.budget <- t.budget - retired;
            t.executed <- t.executed + retired;
            body ()
          end))
    blocks;
  (bfns, block_of_slot)

(** Create a VM for [program]. [mem] defaults to a fresh memory into which
    only the stack is mapped; callers add argument/heap regions as needed.
    Helpers are given as [(id, fn)] pairs; [engine] picks the execution
    engine (default [Interpreted]). *)
let create ?(budget = default_budget) ?(engine = Interpreted) ?mem ~helpers
    program =
  let mem = match mem with Some m -> m | None -> Memory.create () in
  let stack =
    (* zeroed, not [Bytes.create]: a program reading stack slots it never
       wrote must see deterministic zeros, not host allocation garbage *)
    Memory.add_region mem ~name:"stack" ~base:stack_base ~writable:true
      (Bytes.make stack_size '\x00')
  in
  let table = Hashtbl.create 17 in
  List.iter (fun (id, f) -> Hashtbl.replace table id f) helpers;
  let t =
    {
      mem;
      regs = Array.make 11 0L;
      helpers = table;
      program = slots_of_program program;
      stack;
      engine;
      budget;
      executed = 0;
      helper_calls = 0;
      last_pc = -1;
      compiled = [||];
      blocks = [||];
      block_index = [||];
    }
  in
  (match engine with
  | Interpreted -> ()
  | Compiled -> t.compiled <- compile t
  | Block | Chain ->
    let bfns, index = compile_blocks t in
    t.blocks <- bfns;
    t.block_index <- index);
  t

let engine t = t.engine

(** Execute the program from slot [entry] (default 0) until EXIT; the result
    is the final value of r0. A VM may be reused across runs (the xBGP VMM
    keeps one VM attached per insertion point): registers r0..r9 are zeroed
    on entry — callers set up arguments afterwards through [set_reg] or
    helpers — and r10 is (re)pointed at the top of the stack. *)
let run ?(entry = 0) t =
  let n = Array.length t.program in
  t.last_pc <- -1;
  Array.fill t.regs 0 10 0L;
  t.regs.(10) <-
    Int64.add (Memory.region_addr t.stack) (Int64.of_int stack_size);
  match t.engine with
  | Interpreted -> interp_from t entry
  | Compiled ->
    if entry < 0 || entry >= n then
      error "pc %d out of program (0..%d)" entry (n - 1);
    t.compiled.(entry) ()
  | Block | Chain ->
    if entry < 0 || entry >= n then
      error "pc %d out of program (0..%d)" entry (n - 1);
    let bid = t.block_index.(entry) in
    (* a non-leader entry (possible only through an explicit [~entry])
       runs interpreted; block dispatch needs a leader *)
    if bid >= 0 then t.blocks.(bid) () else interp_from t entry

(** A closure equivalent to [run t] (entry 0), with the engine dispatch,
    the entry bounds check and the r10 value all resolved now instead of
    per run. The whole-chain compiler calls each attachment's VM through
    this — one indirect call per bytecode, no per-run [match]. *)
let prepared_entry t =
  let n = Array.length t.program in
  let r10 = Int64.add (Memory.region_addr t.stack) (Int64.of_int stack_size) in
  let reset () =
    t.last_pc <- -1;
    Array.fill t.regs 0 10 0L;
    t.regs.(10) <- r10
  in
  if n = 0 then fun () ->
    reset ();
    error "pc 0 out of program (0..%d)" (n - 1)
  else
    match t.engine with
    | Interpreted ->
      fun () ->
        reset ();
        interp_from t 0
    | Compiled ->
      let entry = t.compiled.(0) in
      fun () ->
        reset ();
        entry ()
    | Block | Chain ->
      let bid = t.block_index.(0) in
      if bid >= 0 then fun () ->
        reset ();
        t.blocks.(bid) ()
      else fun () ->
        reset ();
        interp_from t 0
