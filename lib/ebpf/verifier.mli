(** Static checks performed before bytecode may be attached to an
    insertion point — the structural subset of the Linux verifier that
    matters for an interpreter with fully bounds-checked memory:

    - every jump lands on an instruction boundary inside the program;
    - control flow cannot fall off the end;
    - every instruction is reachable from the entry (dead code is
      rejected, as in the kernel verifier);
    - the frame pointer r10 is never written;
    - helper calls are restricted to the manifest's whitelist;
    - map specs are bounds-checked and map-helper calls with a
      statically-known bad map index are rejected;
    - immediate division/modulo by zero is rejected;
    - the program fits {!max_insns}.

    Dynamic properties (memory safety, termination) are enforced at run
    time by {!Memory} bounds checks and the {!Vm} instruction budget. *)

type error = { slot : int; message : string }

val pp_error : Format.formatter -> error -> unit

val max_insns : int

type check_result = (unit, error list) result

val check :
  ?allowed_helpers:int list ->
  ?map_helpers:int list ->
  ?maps:Map.spec list ->
  Insn.t list ->
  check_result
(** Verify a program; [allowed_helpers] is the manifest whitelist ([None]
    = all helpers allowed). [map_helpers] names the helper ids that take
    a map index in r1 (the caller supplies the numbering) and [maps] the
    program's declared map specs: each spec is bounds-checked, a map
    helper call with no declared maps is rejected, and a statically
    resolvable out-of-range index in r1 is rejected. Unresolvable
    indices are left to the runtime check. *)

val check_exn :
  ?allowed_helpers:int list ->
  ?map_helpers:int list ->
  ?maps:Map.spec list ->
  Insn.t list ->
  unit
(** @raise Invalid_argument with the error list rendered when rejected. *)
