(** BGP path attributes (RFC 4271 §4.3, route-reflection attributes from
    RFC 4456, 32-bit AS numbers per RFC 6793).

    Two representations coexist:
    - the typed view {!t} used by daemon code;
    - the {e neutral} TLV form (flag byte, code byte, 16-bit big-endian
      length, payload in network byte order) that crosses the xBGP API
      boundary — "the neutral xBGP representation" of §2.1 of the
      paper. *)

(** {1 Attribute type codes} *)

val code_origin : int
val code_as_path : int
val code_next_hop : int
val code_med : int
val code_local_pref : int
val code_atomic_aggregate : int
val code_aggregator : int
val code_communities : int
val code_originator_id : int
val code_cluster_list : int

(** {1 Flag bits} *)

val flag_optional : int
val flag_transitive : int
val flag_partial : int
val flag_extended : int

type origin = Igp | Egp | Incomplete

val origin_code : origin -> int
val origin_of_code : int -> origin option
val pp_origin : Format.formatter -> origin -> unit

(** An AS-path segment; ASNs are 32-bit. *)
type segment = Seq of int list | Set of int list

type value =
  | Origin of origin
  | As_path of segment list
  | Next_hop of int  (** IPv4 address as int *)
  | Med of int
  | Local_pref of int
  | Atomic_aggregate
  | Aggregator of int * int  (** ASN, router id *)
  | Communities of int list  (** 32-bit community values *)
  | Originator_id of int
  | Cluster_list of int list
  | Unknown of { code : int; payload : bytes }
      (** any attribute this codec does not interpret *)

type t = { flags : int; value : value }

exception Parse_error of string

val v : value -> t
(** Wrap a value with its RFC-default flags. *)

val with_flags : int -> value -> t
val code : t -> int
val code_of_value : value -> int
val default_flags : value -> int
val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order on the neutral wire form: attribute code, then flags,
    then payload bytes. *)

val sort_canonical : t list -> t list
(** Sort by {!compare} — the canonical attribute-list shape used when
    comparing routes produced by different hosts. *)

val pp : Format.formatter -> t -> unit

(** {1 AS-path helpers} *)

val as_path_length : segment list -> int
(** Path length as used by the decision process: an AS_SET counts 1. *)

val as_path_asns : segment list -> int list
(** All ASNs in the path, leftmost first. *)

val as_path_prepend : int -> segment list -> segment list
(** Prepend an ASN (a leading AS_SEQUENCE is extended). *)

val as_path_first : segment list -> int option
(** Leftmost ASN — the neighbouring AS. *)

val as_path_origin : segment list -> int option
(** Rightmost ASN — the origin AS. *)

(** {1 Wire form} *)

val encode_payload : value -> bytes
(** The network-byte-order payload of an attribute value. *)

val decode_payload : code:int -> flags:int -> bytes -> t
(** Decode a payload given its attribute code; unrecognized codes become
    [Unknown]. @raise Parse_error on malformed known attributes. *)

val encode_into_buffer : Buffer.t -> t -> unit
(** Append the full wire form (flags, code, length, payload); the
    extended-length flag is set automatically for payloads over 255
    bytes. *)

val decode_from : bytes -> int -> int -> t * int
(** [decode_from buf pos limit] decodes one attribute; returns it and the
    next position. @raise Parse_error *)

(** {1 Neutral xBGP TLV}: flags(1) code(1) length(2, big-endian)
    payload. *)

val to_tlv : t -> bytes
val of_tlv : bytes -> t
(** @raise Parse_error *)

(**/**)

(* low-level readers shared with tests *)
val get_u8 : bytes -> int -> int -> int
val get_u32 : bytes -> int -> int -> int
