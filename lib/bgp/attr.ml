(* BGP path attributes (RFC 4271 §4.3, plus route-reflection attributes from
   RFC 4456 and 32-bit AS numbers per RFC 6793).

   Two representations coexist:
   - the typed view [t] used by daemon code;
   - the *neutral* TLV form (flag byte, code byte, 16-bit length, payload in
     network byte order) that crosses the xBGP API boundary. The paper:
     "The xBGP functions that deal with BGP messages and attributes always
     manipulate them in network byte order (the neutral xBGP
     representation)". *)

(* attribute type codes *)
let code_origin = 1
let code_as_path = 2
let code_next_hop = 3
let code_med = 4
let code_local_pref = 5
let code_atomic_aggregate = 6
let code_aggregator = 7
let code_communities = 8
let code_originator_id = 9
let code_cluster_list = 10

(* flag bits *)
let flag_optional = 0x80
let flag_transitive = 0x40
let flag_partial = 0x20
let flag_extended = 0x10

type origin = Igp | Egp | Incomplete

let origin_code = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let origin_of_code = function
  | 0 -> Some Igp
  | 1 -> Some Egp
  | 2 -> Some Incomplete
  | _ -> None

let pp_origin ppf o =
  Fmt.string ppf
    (match o with Igp -> "IGP" | Egp -> "EGP" | Incomplete -> "incomplete")

type segment = Seq of int list | Set of int list

type value =
  | Origin of origin
  | As_path of segment list
  | Next_hop of int  (** IPv4 address as int *)
  | Med of int
  | Local_pref of int
  | Atomic_aggregate
  | Aggregator of int * int  (** ASN, router id *)
  | Communities of int list  (** 32-bit community values *)
  | Originator_id of int
  | Cluster_list of int list
  | Unknown of { code : int; payload : bytes }

type t = { flags : int; value : value }

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let code_of_value = function
  | Origin _ -> code_origin
  | As_path _ -> code_as_path
  | Next_hop _ -> code_next_hop
  | Med _ -> code_med
  | Local_pref _ -> code_local_pref
  | Atomic_aggregate -> code_atomic_aggregate
  | Aggregator _ -> code_aggregator
  | Communities _ -> code_communities
  | Originator_id _ -> code_originator_id
  | Cluster_list _ -> code_cluster_list
  | Unknown { code; _ } -> code

let code t = code_of_value t.value

let default_flags = function
  | Origin _ | As_path _ | Next_hop _ -> flag_transitive
  | Local_pref _ -> flag_transitive
  | Med _ -> flag_optional
  | Atomic_aggregate -> flag_transitive
  | Aggregator _ -> flag_optional lor flag_transitive
  | Communities _ -> flag_optional lor flag_transitive
  | Originator_id _ | Cluster_list _ -> flag_optional
  | Unknown _ -> flag_optional lor flag_transitive

(** Wrap a value with its RFC-default flags. *)
let v value = { flags = default_flags value; value }

let with_flags flags value = { flags; value }

(* --- AS-path helpers --- *)

(** Path length as used by the decision process: an AS_SET counts 1. *)
let as_path_length segs =
  List.fold_left
    (fun acc -> function Seq l -> acc + List.length l | Set _ -> acc + 1)
    0 segs

(** All ASNs appearing anywhere in the path, leftmost first. *)
let as_path_asns segs =
  List.concat_map (function Seq l -> l | Set l -> l) segs

(** Prepend [asn] to the path (a leading AS_SEQUENCE is extended). *)
let as_path_prepend asn = function
  | Seq l :: rest -> Seq (asn :: l) :: rest
  | segs -> Seq [ asn ] :: segs

(** Leftmost ASN of the path, i.e. the neighbouring AS, if any. *)
let as_path_first segs =
  match segs with
  | Seq (a :: _) :: _ -> Some a
  | Set (a :: _) :: _ -> Some a
  | _ -> None

(** Origin AS: the rightmost ASN of the path, if any. *)
let as_path_origin segs =
  match List.rev (as_path_asns segs) with a :: _ -> Some a | [] -> None

(* --- payload encode/decode (network byte order) --- *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_u16 b v = Buffer.add_uint16_be b (v land 0xffff)
let put_u32 b v = Buffer.add_int32_be b (Int32.of_int (v land 0xFFFFFFFF))

let encode_payload value =
  let b = Buffer.create 16 in
  (match value with
  | Origin o -> put_u8 b (origin_code o)
  | As_path segs ->
    List.iter
      (fun seg ->
        let ty, asns = match seg with Seq l -> (2, l) | Set l -> (1, l) in
        put_u8 b ty;
        put_u8 b (List.length asns);
        List.iter (put_u32 b) asns)
      segs
  | Next_hop a -> put_u32 b a
  | Med m -> put_u32 b m
  | Local_pref p -> put_u32 b p
  | Atomic_aggregate -> ()
  | Aggregator (asn, rid) ->
    put_u32 b asn;
    put_u32 b rid
  | Communities cs -> List.iter (put_u32 b) cs
  | Originator_id rid -> put_u32 b rid
  | Cluster_list ids -> List.iter (put_u32 b) ids
  | Unknown { payload; _ } -> Buffer.add_bytes b payload);
  Buffer.to_bytes b

let get_u8 buf pos limit =
  if pos >= limit then parse_error "truncated u8";
  Bytes.get_uint8 buf pos

let get_u32 buf pos limit =
  if pos + 4 > limit then parse_error "truncated u32";
  Int32.to_int (Bytes.get_int32_be buf pos) land 0xFFFFFFFF

let decode_u32_list buf pos limit =
  if (limit - pos) mod 4 <> 0 then parse_error "payload not 4-byte aligned";
  let rec go pos acc =
    if pos >= limit then List.rev acc
    else go (pos + 4) (get_u32 buf pos limit :: acc)
  in
  go pos []

let decode_as_path buf pos limit =
  let rec segs pos acc =
    if pos >= limit then List.rev acc
    else begin
      let ty = get_u8 buf pos limit in
      let count = get_u8 buf (pos + 1) limit in
      let body_end = pos + 2 + (4 * count) in
      if body_end > limit then parse_error "AS_PATH: truncated segment";
      let rec asns p n acc =
        if n = 0 then List.rev acc
        else asns (p + 4) (n - 1) (get_u32 buf p limit :: acc)
      in
      let l = asns (pos + 2) count [] in
      let seg =
        match ty with
        | 1 -> Set l
        | 2 -> Seq l
        | t -> parse_error "AS_PATH: segment type %d" t
      in
      segs body_end (seg :: acc)
    end
  in
  segs pos []

(** Decode a payload given its attribute [code]; unrecognized codes become
    [Unknown]. @raise Parse_error on malformed known attributes. *)
let decode_payload ~code ~flags payload =
  let limit = Bytes.length payload in
  let value =
    if code = code_origin then begin
      match origin_of_code (get_u8 payload 0 limit) with
      | Some o when limit = 1 -> Origin o
      | _ -> parse_error "ORIGIN: invalid"
    end
    else if code = code_as_path then As_path (decode_as_path payload 0 limit)
    else if code = code_next_hop then
      if limit = 4 then Next_hop (get_u32 payload 0 limit)
      else parse_error "NEXT_HOP: length %d" limit
    else if code = code_med then
      if limit = 4 then Med (get_u32 payload 0 limit)
      else parse_error "MED: length %d" limit
    else if code = code_local_pref then
      if limit = 4 then Local_pref (get_u32 payload 0 limit)
      else parse_error "LOCAL_PREF: length %d" limit
    else if code = code_atomic_aggregate then
      if limit = 0 then Atomic_aggregate
      else parse_error "ATOMIC_AGGREGATE: length %d" limit
    else if code = code_aggregator then
      if limit = 8 then
        Aggregator (get_u32 payload 0 limit, get_u32 payload 4 limit)
      else parse_error "AGGREGATOR: length %d" limit
    else if code = code_communities then
      Communities (decode_u32_list payload 0 limit)
    else if code = code_originator_id then
      if limit = 4 then Originator_id (get_u32 payload 0 limit)
      else parse_error "ORIGINATOR_ID: length %d" limit
    else if code = code_cluster_list then
      Cluster_list (decode_u32_list payload 0 limit)
    else Unknown { code; payload }
  in
  { flags; value }

(* --- full attribute wire form: flags code [len|ext-len] payload --- *)

let encode_into_buffer b t =
  let payload = encode_payload t.value in
  let len = Bytes.length payload in
  let flags =
    if len > 255 then t.flags lor flag_extended
    else t.flags land lnot flag_extended
  in
  put_u8 b flags;
  put_u8 b (code t);
  if flags land flag_extended <> 0 then put_u16 b len else put_u8 b len;
  Buffer.add_bytes b payload

(** Decode one attribute at [pos]; returns it and the next position. *)
let decode_from buf pos limit =
  if pos + 2 > limit then parse_error "attribute: truncated header";
  let flags = Bytes.get_uint8 buf pos in
  let code = Bytes.get_uint8 buf (pos + 1) in
  let len, body =
    if flags land flag_extended <> 0 then begin
      if pos + 4 > limit then parse_error "attribute: truncated ext length";
      (Bytes.get_uint16_be buf (pos + 2), pos + 4)
    end
    else begin
      if pos + 3 > limit then parse_error "attribute: truncated length";
      (Bytes.get_uint8 buf (pos + 2), pos + 3)
    end
  in
  if body + len > limit then parse_error "attribute: truncated payload";
  let payload = Bytes.sub buf body len in
  (decode_payload ~code ~flags payload, body + len)

(* --- neutral xBGP TLV: flags(1) code(1) length(2, BE) payload --- *)

(** Serialize to the neutral representation exchanged over the xBGP API. *)
let to_tlv t =
  let payload = encode_payload t.value in
  let len = Bytes.length payload in
  let buf = Bytes.create (4 + len) in
  Bytes.set_uint8 buf 0 t.flags;
  Bytes.set_uint8 buf 1 (code t);
  Bytes.set_uint16_be buf 2 len;
  Bytes.blit payload 0 buf 4 len;
  buf

(** Parse the neutral representation. @raise Parse_error *)
let of_tlv buf =
  if Bytes.length buf < 4 then parse_error "TLV: truncated header";
  let flags = Bytes.get_uint8 buf 0 in
  let code = Bytes.get_uint8 buf 1 in
  let len = Bytes.get_uint16_be buf 2 in
  if Bytes.length buf < 4 + len then parse_error "TLV: truncated payload";
  decode_payload ~code ~flags (Bytes.sub buf 4 len)

let pp_segment ppf = function
  | Seq l -> Fmt.(list ~sep:sp int) ppf l
  | Set l -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) l

let pp_value ppf = function
  | Origin o -> Fmt.pf ppf "origin %a" pp_origin o
  | As_path segs ->
    Fmt.pf ppf "as-path [%a]" Fmt.(list ~sep:sp pp_segment) segs
  | Next_hop a -> Fmt.pf ppf "next-hop %a" Prefix.pp_addr a
  | Med m -> Fmt.pf ppf "med %d" m
  | Local_pref p -> Fmt.pf ppf "local-pref %d" p
  | Atomic_aggregate -> Fmt.string ppf "atomic-aggregate"
  | Aggregator (asn, rid) ->
    Fmt.pf ppf "aggregator AS%d %a" asn Prefix.pp_addr rid
  | Communities cs ->
    let pp_c ppf c = Fmt.pf ppf "%d:%d" (c lsr 16) (c land 0xffff) in
    Fmt.pf ppf "communities [%a]" Fmt.(list ~sep:sp pp_c) cs
  | Originator_id rid -> Fmt.pf ppf "originator-id %a" Prefix.pp_addr rid
  | Cluster_list ids ->
    Fmt.pf ppf "cluster-list [%a]" Fmt.(list ~sep:sp Prefix.pp_addr) ids
  | Unknown { code; payload } ->
    Fmt.pf ppf "attr<%d> (%d bytes)" code (Bytes.length payload)

let pp ppf t = pp_value ppf t.value

let equal a b = a.flags = b.flags && a.value = b.value

(* Total order on the neutral wire form: code first, then flags, then
   payload bytes — so sorting an attribute list yields one canonical
   shape regardless of which host emitted it. *)
let compare a b =
  let c = Int.compare (code a) (code b) in
  if c <> 0 then c
  else
    let c = Int.compare a.flags b.flags in
    if c <> 0 then c
    else Bytes.compare (encode_payload a.value) (encode_payload b.value)

let sort_canonical attrs = List.sort compare attrs
