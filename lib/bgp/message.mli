(** BGP-4 message codec (RFC 4271 §4): the 19-byte header with all-ones
    marker, the OPEN / UPDATE / NOTIFICATION / KEEPALIVE bodies, and a
    stream deframer for the byte streams the simulated TCP sessions
    carry. *)

exception Parse_error of string

val header_size : int
val max_size : int

val as_trans : int
(** AS_TRANS (23456), used in the 16-bit OPEN field for 32-bit ASNs. *)

type open_msg = {
  version : int;
  my_as : int;
  hold_time : int;
  bgp_id : int;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attr.t list;
  nlri : Prefix.t list;
}

type notification = { code : int; subcode : int; data : bytes }

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive

val update_empty : update

val encode : t -> bytes
(** Full frame, header included. @raise Parse_error when over
    {!max_size}. *)

val encode_update_raw :
  withdrawn:Prefix.t list -> attr_bytes:bytes -> nlri:Prefix.t list -> bytes
(** Build a raw UPDATE frame from pre-encoded attribute bytes — used when
    the BGP_ENCODE_MESSAGE insertion point has appended attributes beyond
    what the native encoder produces.
    @raise Parse_error when the frame would exceed 4096 bytes (use
    {!split_update_raw} to stay within the limit). *)

val split_update_raw :
  withdrawn:Prefix.t list -> attr_bytes:bytes -> nlri:Prefix.t list ->
  bytes list
(** Like {!encode_update_raw}, but splits the prefix lists (order
    preserved, withdrawn-only frames first, every NLRI frame repeating
    [attr_bytes]) so each frame respects the RFC 4271 §4 4096-byte
    maximum. Empty result when both lists are empty.
    @raise Parse_error when [attr_bytes] alone leaves no room for any
    NLRI prefix. *)

val decode : bytes -> t
(** Decode a full frame. @raise Parse_error *)

val deframe : bytes -> bytes list * bytes
(** Split an accumulated byte stream into complete frames plus the
    leftover bytes. @raise Parse_error on an impossible length field. *)

val pp : Format.formatter -> t -> unit
