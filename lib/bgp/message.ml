(* BGP-4 message codec (RFC 4271 §4): the 19-byte header with all-ones
   marker, then OPEN / UPDATE / NOTIFICATION / KEEPALIVE bodies, plus a
   stream deframer that extracts complete messages from a byte stream —
   exactly what the simulated TCP sessions between routers carry. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let header_size = 19
let max_size = 4096

type open_msg = {
  version : int;
  my_as : int;  (** 16-bit field; AS_TRANS (23456) for 32-bit ASNs *)
  hold_time : int;
  bgp_id : int;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attr.t list;
  nlri : Prefix.t list;
}

type notification = { code : int; subcode : int; data : bytes }

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive

let as_trans = 23456

let update_empty = { withdrawn = []; attrs = []; nlri = [] }

let type_code = function
  | Open _ -> 1
  | Update _ -> 2
  | Notification _ -> 3
  | Keepalive -> 4

(* --- encoding --- *)

let encode_update_body b { withdrawn; attrs; nlri } =
  let prefixes_bytes ps =
    let size = List.fold_left (fun a p -> a + Prefix.wire_size p) 0 ps in
    let buf = Bytes.create size in
    let _ = List.fold_left (fun pos p -> Prefix.encode_into buf pos p) 0 ps in
    buf
  in
  let w = prefixes_bytes withdrawn in
  Buffer.add_uint16_be b (Bytes.length w);
  Buffer.add_bytes b w;
  let ab = Buffer.create 64 in
  List.iter (Attr.encode_into_buffer ab) attrs;
  Buffer.add_uint16_be b (Buffer.length ab);
  Buffer.add_buffer b ab;
  Buffer.add_bytes b (prefixes_bytes nlri)

let encode msg =
  let body = Buffer.create 64 in
  (match msg with
  | Open { version; my_as; hold_time; bgp_id } ->
    Buffer.add_uint8 body version;
    Buffer.add_uint16_be body (if my_as > 0xffff then as_trans else my_as);
    Buffer.add_uint16_be body hold_time;
    Buffer.add_int32_be body (Int32.of_int (bgp_id land 0xFFFFFFFF));
    Buffer.add_uint8 body 0 (* no optional parameters *)
  | Update u -> encode_update_body body u
  | Notification { code; subcode; data } ->
    Buffer.add_uint8 body code;
    Buffer.add_uint8 body subcode;
    Buffer.add_bytes body data
  | Keepalive -> ());
  let len = header_size + Buffer.length body in
  if len > max_size then parse_error "message too large (%d bytes)" len;
  let buf = Bytes.make (header_size + Buffer.length body) '\xff' in
  Bytes.set_uint16_be buf 16 len;
  Bytes.set_uint8 buf 18 (type_code msg);
  Buffer.blit body 0 buf header_size (Buffer.length body);
  buf

(** Build a raw UPDATE frame from pre-encoded parts. The daemons use this
    when the BGP_ENCODE_MESSAGE insertion point has appended attribute
    bytes beyond what the native encoder produces. *)
let encode_update_raw ~(withdrawn : Prefix.t list) ~(attr_bytes : bytes)
    ~(nlri : Prefix.t list) =
  let wsize = List.fold_left (fun a p -> a + Prefix.wire_size p) 0 withdrawn in
  let nsize = List.fold_left (fun a p -> a + Prefix.wire_size p) 0 nlri in
  let alen = Bytes.length attr_bytes in
  let len = header_size + 2 + wsize + 2 + alen + nsize in
  if len > max_size then parse_error "message too large (%d bytes)" len;
  let buf = Bytes.make len '\xff' in
  Bytes.set_uint16_be buf 16 len;
  Bytes.set_uint8 buf 18 2;
  let pos = header_size in
  Bytes.set_uint16_be buf pos wsize;
  let pos =
    List.fold_left (fun p w -> Prefix.encode_into buf p w) (pos + 2) withdrawn
  in
  Bytes.set_uint16_be buf pos alen;
  Bytes.blit attr_bytes 0 buf (pos + 2) alen;
  let pos =
    List.fold_left (fun p n -> Prefix.encode_into buf p n) (pos + 2 + alen) nlri
  in
  assert (pos = len);
  buf

(** Build raw UPDATE frames from pre-encoded parts, splitting the prefix
    lists so every frame respects the RFC 4271 §4 4096-byte maximum.
    Withdrawn routes go first in attribute-less frames; the NLRI frames
    each repeat [attr_bytes]. Returns the frames in send order — empty
    when there is nothing to announce or withdraw.
    @raise Parse_error when [attr_bytes] alone (with any NLRI at all)
    cannot fit one frame. *)
let split_update_raw ~(withdrawn : Prefix.t list) ~(attr_bytes : bytes)
    ~(nlri : Prefix.t list) =
  (* greedy chunking, order preserved; [capacity] is the room left for
     prefix bytes once the header and both length fields are counted *)
  let chunk capacity prefixes =
    let rec go acc size chunks = function
      | [] -> List.rev (if acc = [] then chunks else List.rev acc :: chunks)
      | p :: rest ->
        let s = Prefix.wire_size p in
        if s > capacity then
          parse_error "split_update_raw: %d attribute bytes leave no room \
                       for NLRI"
            (Bytes.length attr_bytes)
        else if size + s > capacity && acc <> [] then
          go [ p ] s (List.rev acc :: chunks) rest
        else go (p :: acc) (size + s) chunks rest
    in
    go [] 0 [] prefixes
  in
  let wd_frames =
    List.map
      (fun ps -> encode_update_raw ~withdrawn:ps ~attr_bytes:Bytes.empty ~nlri:[])
      (chunk (max_size - header_size - 4) withdrawn)
  in
  let nlri_frames =
    List.map
      (fun ps -> encode_update_raw ~withdrawn:[] ~attr_bytes ~nlri:ps)
      (chunk (max_size - header_size - 4 - Bytes.length attr_bytes) nlri)
  in
  wd_frames @ nlri_frames

(* --- decoding --- *)

let decode_prefix_list buf pos limit =
  let rec go pos acc =
    if pos >= limit then List.rev acc
    else
      let p, pos =
        try Prefix.decode_from buf pos limit
        with Prefix.Parse_error m -> parse_error "%s" m
      in
      go pos (p :: acc)
  in
  go pos []

let decode_update buf pos limit =
  if pos + 2 > limit then parse_error "UPDATE: truncated withdrawn length";
  let wlen = Bytes.get_uint16_be buf pos in
  let wend = pos + 2 + wlen in
  if wend > limit then parse_error "UPDATE: truncated withdrawn routes";
  let withdrawn = decode_prefix_list buf (pos + 2) wend in
  if wend + 2 > limit then parse_error "UPDATE: truncated attribute length";
  let alen = Bytes.get_uint16_be buf wend in
  let aend = wend + 2 + alen in
  if aend > limit then parse_error "UPDATE: truncated attributes";
  let rec attrs pos acc =
    if pos >= aend then List.rev acc
    else
      let a, pos =
        try Attr.decode_from buf pos aend
        with Attr.Parse_error m -> parse_error "UPDATE: %s" m
      in
      attrs pos (a :: acc)
  in
  let attrs = attrs (wend + 2) [] in
  let nlri = decode_prefix_list buf aend limit in
  { withdrawn; attrs; nlri }

(** Decode a full message (header included). @raise Parse_error *)
let decode buf =
  let total = Bytes.length buf in
  if total < header_size then parse_error "truncated header";
  for i = 0 to 15 do
    if Bytes.get_uint8 buf i <> 0xff then parse_error "bad marker"
  done;
  let len = Bytes.get_uint16_be buf 16 in
  if len <> total then parse_error "length field %d, got %d bytes" len total;
  let ty = Bytes.get_uint8 buf 18 in
  let pos = header_size in
  match ty with
  | 1 ->
    if pos + 10 > total then parse_error "OPEN: truncated";
    let version = Bytes.get_uint8 buf pos in
    let my_as = Bytes.get_uint16_be buf (pos + 1) in
    let hold_time = Bytes.get_uint16_be buf (pos + 3) in
    let bgp_id = Int32.to_int (Bytes.get_int32_be buf (pos + 5)) land 0xFFFFFFFF in
    Open { version; my_as; hold_time; bgp_id }
  | 2 -> Update (decode_update buf pos total)
  | 3 ->
    if pos + 2 > total then parse_error "NOTIFICATION: truncated";
    Notification
      {
        code = Bytes.get_uint8 buf pos;
        subcode = Bytes.get_uint8 buf (pos + 1);
        data = Bytes.sub buf (pos + 2) (total - pos - 2);
      }
  | 4 -> Keepalive
  | t -> parse_error "unknown message type %d" t

(* --- stream deframing --- *)

(** [deframe buffer] splits the accumulated byte stream into complete
    messages; returns the raw message frames and the leftover bytes. *)
let deframe (data : bytes) : bytes list * bytes =
  let total = Bytes.length data in
  let rec go pos acc =
    if pos + header_size > total then (List.rev acc, pos)
    else
      let len = Bytes.get_uint16_be data (pos + 16) in
      if len < header_size || len > max_size then
        parse_error "deframe: invalid length %d" len
      else if pos + len > total then (List.rev acc, pos)
      else go (pos + len) (Bytes.sub data pos len :: acc)
  in
  let frames, consumed = go 0 [] in
  (frames, Bytes.sub data consumed (total - consumed))

let pp ppf = function
  | Open o ->
    Fmt.pf ppf "OPEN v%d AS%d hold=%d id=%a" o.version o.my_as o.hold_time
      Prefix.pp_addr o.bgp_id
  | Update u ->
    Fmt.pf ppf "UPDATE withdrawn=[%a] attrs=[%a] nlri=[%a]"
      Fmt.(list ~sep:sp Prefix.pp)
      u.withdrawn
      Fmt.(list ~sep:semi Attr.pp)
      u.attrs
      Fmt.(list ~sep:sp Prefix.pp)
      u.nlri
  | Notification n -> Fmt.pf ppf "NOTIFICATION %d/%d" n.code n.subcode
  | Keepalive -> Fmt.string ppf "KEEPALIVE"
