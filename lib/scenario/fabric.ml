(* Instantiate the Fig. 5 data-center fabric as live daemons.

   Three configurations matter for §3.3:
   - [`Plain]    distinct ASNs, no filter: valleys are accepted;
   - [`Same_as]  the duplicate-ASN configuration trick (S1/S2 share an
                 AS, leaf pairs share ASes): valleys are blocked by
                 ordinary loop prevention, but double failures partition
                 the fabric;
   - [`Xbgp]     distinct ASNs + the valley_free extension on every
                 router: valleys blocked for external prefixes, recovery
                 paths for fabric-internal prefixes allowed. *)

type config = [ `Plain | `Same_as | `Xbgp ]

type t = {
  sched : Netsim.Sched.t;
  clos : Dataset.Clos.t;
  daemons : (string * Daemon.t) list;
  pipes : ((string * string) * (Netsim.Pipe.port * Netsim.Pipe.port)) list;
}

let hold_time = 9 (* short hold: failure scenarios converge quickly *)

let build ?(host : Testbed.host = `Frr) ?(with_transit = false)
    ?(engine = Ebpf.Vm.Interpreted) ?telemetry ?(batch_updates = true)
    ?(update_groups = true) (config : config) : t =
  let clos =
    Dataset.Clos.fig5 ~with_transit ~same_spine_as:(config = `Same_as) ()
  in
  Frrouting.Attr_intern.reset_intern_table ();
  let sched = Netsim.Sched.create () in
  let telemetry =
    match telemetry with
    | Some t -> t
    | None -> Telemetry.create ~enabled:false ()
  in
  Telemetry.set_clock_us telemetry (fun () -> Netsim.Sched.now sched);
  let pipes =
    List.map
      (fun ((a, b) as link) ->
        ( link,
          Netsim.Pipe.create ~telemetry
            ~name:(Printf.sprintf "%s-%s" a b)
            sched ))
      clos.links
  in
  (* peer configurations per router *)
  let ports_of name =
    List.filter_map
      (fun (((a, b) as link), (pa, pb)) ->
        if a = name then Some (link, b, pa)
        else if b = name then Some (link, a, pb)
        else None)
      pipes
  in
  let xtras =
    if config = `Xbgp then
      [
        ("vf_pairs", Xprogs.Util.encode_as_pairs clos.vf_pairs);
        ("vf_internal", Xprogs.Util.encode_asn_list clos.internal_asns);
      ]
    else []
  in
  let daemons =
    List.map
      (fun (r : Dataset.Clos.router) ->
        let peers = ports_of r.rname in
        let vmm =
          if config = `Xbgp then
            Some
              (Xprogs.Registry.vmm_of_manifest ~engine ~telemetry
                 ~host:r.rname Xprogs.Valley_free.manifest)
          else None
        in
        let daemon =
          match host with
          | `Frr ->
            let confs =
              List.map
                (fun (_, other, port) ->
                  let o = Dataset.Clos.router clos other in
                  {
                    Frrouting.Bgpd.pname = other;
                    remote_as = o.asn;
                    remote_addr = o.addr;
                    rr_client = false;
                    port;
                  })
                peers
            in
            Daemon.Frr
              (Frrouting.Bgpd.create ~telemetry ?vmm ~sched
                 (Frrouting.Bgpd.config ~name:r.rname ~router_id:r.router_id
                    ~local_as:r.asn ~local_addr:r.addr ~hold_time
                    ~batch_updates ~update_groups ~xtras ())
                 confs)
          | `Bird ->
            let confs =
              List.map
                (fun (_, other, port) ->
                  let o = Dataset.Clos.router clos other in
                  {
                    Bird.Bgpd.pname = other;
                    remote_as = o.asn;
                    remote_addr = o.addr;
                    rr_client = false;
                    port;
                  })
                peers
            in
            Daemon.Bird
              (Bird.Bgpd.create ~telemetry ?vmm ~sched
                 (Bird.Bgpd.config ~name:r.rname ~router_id:r.router_id
                    ~local_as:r.asn ~local_addr:r.addr ~hold_time
                    ~batch_updates ~update_groups ~xtras ())
                 confs)
        in
        (r.rname, daemon))
      clos.routers
  in
  { sched; clos; daemons; pipes }

let daemon t name = List.assoc name t.daemons

(* One recorder for the whole fabric: events carry the daemon name, and
   the shared simulated clock keeps the stream totally ordered. *)
let attach_recorder t rc =
  Obs.Recorder.set_clock rc (fun () -> Netsim.Sched.now t.sched);
  List.iter (fun (_, d) -> Daemon.set_recorder d (Some rc)) t.daemons

let attach_collector t name col = Daemon.set_collector (daemon t name) (Some col)

(** Start every daemon; every router originates its prefix. *)
let start t =
  List.iter (fun (_, d) -> Daemon.start d) t.daemons;
  List.iter
    (fun (r : Dataset.Clos.router) ->
      Daemon.originate (daemon t r.rname)
          (Dataset.Clos.originated_prefix r)
          [
            Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
            Bgp.Attr.v (Bgp.Attr.As_path []);
            Bgp.Attr.v (Bgp.Attr.Next_hop r.addr);
          ])
    t.clos.routers

(** Advance simulated time by [seconds]. *)
let settle t seconds =
  ignore (Netsim.Sched.run ~until:(Netsim.Sched.now t.sched + (seconds * 1_000_000)) t.sched)

(** Fail the link [a]--[b]; sessions notice via their hold timers. *)
let fail_link t a b =
  match
    List.assoc_opt (a, b) t.pipes
    |> (function None -> List.assoc_opt (b, a) t.pipes | some -> some)
  with
  | Some (pa, _) -> Netsim.Pipe.set_up pa false
  | None -> invalid_arg (Printf.sprintf "Fabric.fail_link: no link %s-%s" a b)

(** Repair the link [a]--[b] and re-open the sessions that died. *)
let repair_link t a b =
  (match
     List.assoc_opt (a, b) t.pipes
     |> function None -> List.assoc_opt (b, a) t.pipes | some -> some
   with
  | Some (pa, _) -> Netsim.Pipe.set_up pa true
  | None -> invalid_arg (Printf.sprintf "Fabric.repair_link: no link %s-%s" a b));
  List.iter
    (fun (_, d) ->
      match d with
      | Daemon.Frr fd -> Frrouting.Bgpd.restart_sessions fd
      | Daemon.Bird bd -> Bird.Bgpd.restart_sessions bd)
    t.daemons

(** Does [router] currently hold a route towards [target]'s prefix? *)
let reaches t router target =
  let r = Dataset.Clos.router t.clos target in
  Daemon.has_route (daemon t router) (Dataset.Clos.originated_prefix r)

let path t router target =
  let r = Dataset.Clos.router t.clos target in
  Daemon.best_path (daemon t router) (Dataset.Clos.originated_prefix r)
