(* The three-router testbed of Fig. 3: upstream — DUT — downstream.

   As in the paper, the upstream and downstream routers always run the
   FRR-like daemon; the Device Under Test runs either host, natively or
   with extension bytecode loaded. Sessions on links L1/L2 are iBGP for
   the route-reflection experiment (§3.2) and eBGP for origin validation
   (§3.4). *)

type host = [ `Frr | `Bird ]

type mode = {
  host : host;
  ibgp : bool;
  manifest : Xbgp.Manifest.t option;  (** extension config for the DUT *)
  native_rr : bool;
  native_ov_roas : Rpki.Roa.t list option;
  xtras : (string * bytes) list;  (** DUT configuration extras *)
  hold_time : int;
  engine : Ebpf.Vm.engine;  (** eBPF engine for the DUT's extensions *)
  telemetry : Telemetry.t option;
      (** shared registry for the whole deployment; None = disabled *)
  batch_updates : bool;
      (** batched NLRI processing in every daemon (false = the legacy
          per-prefix path, the dispatch-bench baseline) *)
  update_groups : bool;
      (** update-group export in every daemon (false = the legacy
          per-peer export path, the fan-out baseline) *)
}

let mode ?(host = `Frr) ?(ibgp = true) ?manifest ?(native_rr = false)
    ?native_ov_roas ?(xtras = []) ?(hold_time = 90)
    ?(engine = Ebpf.Vm.Interpreted) ?telemetry ?(batch_updates = true)
    ?(update_groups = true) () =
  {
    host;
    ibgp;
    manifest;
    native_rr;
    native_ov_roas;
    xtras;
    hold_time;
    engine;
    telemetry;
    batch_updates;
    update_groups;
  }

type t = {
  sched : Netsim.Sched.t;
  upstream : Frrouting.Bgpd.t;
  dut : Daemon.t;
  downstream : Frrouting.Bgpd.t;
  dut_vmm : Xbgp.Vmm.t option;
  telemetry : Telemetry.t;
}

let addr = Bgp.Prefix.addr_of_quad

let frr_peer ?(rr_client = false) name remote_as remote_addr port =
  { Frrouting.Bgpd.pname = name; remote_as; remote_addr; rr_client; port }

let bird_peer ?(rr_client = false) name remote_as remote_addr port =
  { Bird.Bgpd.pname = name; remote_as; remote_addr; rr_client; port }

let create (m : mode) : t =
  (* fresh-process semantics: a new testbed means new daemons *)
  Frrouting.Attr_intern.reset_intern_table ();
  let sched = Netsim.Sched.create () in
  let telemetry =
    match m.telemetry with
    | Some t -> t
    | None -> Telemetry.create ~enabled:false ()
  in
  (* the scheduler clock is the trace timebase: deterministic under
     simulation, so traces of the same scenario are identical *)
  Telemetry.set_clock_us telemetry (fun () -> Netsim.Sched.now sched);
  let dut_as = 65000 in
  let up_as = if m.ibgp then 65000 else 65001 in
  let down_as = if m.ibgp then 65000 else 65002 in
  let up_addr = addr (10, 0, 0, 1)
  and dut_addr = addr (10, 0, 0, 2)
  and down_addr = addr (10, 0, 0, 3) in
  let l1_up, l1_dut = Netsim.Pipe.create ~telemetry ~name:"L1" sched in
  let l2_dut, l2_down = Netsim.Pipe.create ~telemetry ~name:"L2" sched in
  let upstream =
    Frrouting.Bgpd.create ~telemetry ~sched
      (Frrouting.Bgpd.config ~name:"upstream" ~router_id:up_addr
         ~local_as:up_as ~local_addr:up_addr ~hold_time:m.hold_time
         ~batch_updates:m.batch_updates ~update_groups:m.update_groups ())
      [ frr_peer "dut" dut_as dut_addr l1_up ]
  in
  let downstream =
    Frrouting.Bgpd.create ~telemetry ~sched
      (Frrouting.Bgpd.config ~name:"downstream" ~router_id:down_addr
         ~local_as:down_as ~local_addr:down_addr ~hold_time:m.hold_time
         ~batch_updates:m.batch_updates ~update_groups:m.update_groups ())
      [ frr_peer "dut" dut_as dut_addr l2_down ]
  in
  let dut_vmm =
    Option.map
      (fun manifest ->
        Xprogs.Registry.vmm_of_manifest ~engine:m.engine ~telemetry
          ~host:"dut" manifest)
      m.manifest
  in
  let dut =
    match m.host with
    | `Frr ->
      let native_ov = Option.map Rpki.Store_trie.of_list m.native_ov_roas in
      Daemon.Frr
        (Frrouting.Bgpd.create ~telemetry ?vmm:dut_vmm ~sched
           (Frrouting.Bgpd.config ~name:"dut" ~router_id:dut_addr
              ~local_as:dut_as ~local_addr:dut_addr ~hold_time:m.hold_time
              ~native_rr:m.native_rr ?native_ov ~xtras:m.xtras
              ~batch_updates:m.batch_updates ~update_groups:m.update_groups ())
           [
             frr_peer "upstream" up_as up_addr l1_dut;
             frr_peer ~rr_client:true "downstream" down_as down_addr l2_dut;
           ])
    | `Bird ->
      let native_ov = Option.map Rpki.Store_hash.of_list m.native_ov_roas in
      Daemon.Bird
        (Bird.Bgpd.create ~telemetry ?vmm:dut_vmm ~sched
           (Bird.Bgpd.config ~name:"dut" ~router_id:dut_addr
              ~local_as:dut_as ~local_addr:dut_addr ~hold_time:m.hold_time
              ~native_rr:m.native_rr ?native_ov ~xtras:m.xtras
              ~batch_updates:m.batch_updates ~update_groups:m.update_groups ())
           [
             bird_peer "upstream" up_as up_addr l1_dut;
             bird_peer ~rr_client:true "downstream" down_as down_addr l2_dut;
           ])
  in
  { sched; upstream; dut; downstream; dut_vmm; telemetry }

(** Bring all three sessions up. @raise Failure if they do not establish. *)
let establish t =
  Frrouting.Bgpd.start t.upstream;
  Daemon.start t.dut;
  Frrouting.Bgpd.start t.downstream;
  let up () =
    Frrouting.Bgpd.peer_established t.upstream 0
    && Frrouting.Bgpd.peer_established t.downstream 0
  in
  if not (Netsim.Sched.run_until t.sched up) then
    failwith "Testbed.establish: sessions did not come up"

(** Feed the RIS table into the upstream router (§3.2: "the upstream
    router is first fed with IPv4 BGP routes"). *)
let feed t (routes : Dataset.Ris_gen.route list) =
  List.iter
    (fun (r : Dataset.Ris_gen.route) ->
      Frrouting.Bgpd.originate t.upstream r.prefix r.attrs)
    routes

(** Run the simulation until the downstream router holds [expect] routes
    ("the delay between the announcement of the first prefix ... and the
    reception of the last prefix ... on the downstream router").
    Returns false if the event queue drains first. *)
let run_until_downstream_has t expect =
  Netsim.Sched.run_until t.sched (fun () ->
      Frrouting.Bgpd.loc_count t.downstream >= expect)

let downstream_count t = Frrouting.Bgpd.loc_count t.downstream
