(** `show`-style live introspection queries over a running daemon:
    Loc-RIB, per-route provenance, update-group partition, eBPF map
    contents, flight-recorder events and the BMP mirror. Each query has
    a text form and a JSON form and is strictly read-only — answering
    never dispatches extension bytecode or perturbs daemon state. *)

val show_rib : ?json:bool -> Daemon.t -> string

val show_provenance : ?json:bool -> Daemon.t -> Bgp.Prefix.t -> string
(** Why the prefix's best route is installed: ingress peer, the import
    chain's per-bytecode verdicts/mutations and the winning decision
    step (falls back to the last reject/withdraw record). *)

val show_update_groups : ?json:bool -> Daemon.t -> string
val show_maps : ?json:bool -> Daemon.t -> string

val show_shards : ?json:bool -> Daemon.t -> string
(** The multicore pipeline's live state: per-shard Loc-RIB route counts
    and VM run counters, per-worker queue depths/high-water marks, and
    the merge counters (barriers, parallel vs serial import batches).
    On a single-domain daemon it reports one shard and no queues. *)

val show_recorder : ?json:bool -> ?since:int -> Daemon.t -> string
(** Flight-recorder contents; [since] restricts to events with
    seqno >= the given value. *)

val show_bmp : ?json:bool -> Daemon.t -> string

val usage : string

val query : Daemon.t -> json:bool -> string list -> (string, string) result
(** Dispatch a tokenized query — [["rib"]], [["provenance"; p]],
    [["update-groups"]], [["maps"]], [["shards"]], [["recorder"]],
    [["recorder"; "--since"; n]], [["bmp"]]. *)
