(* Star topology: one DUT hub fanning a table out to N spoke peers.

   The fan-out counterpart of {!Testbed}'s three-router chain: the Device
   Under Test runs either host; every spoke is a minimal scripted "sink"
   built directly on {!Session.Fsm}, which completes the OPEN/KEEPALIVE
   handshake, emits keepalives, and records every UPDATE frame it
   receives — in arrival order, bytes included — so grouped and per-peer
   export paths can be compared stream-for-stream. Sinks can also
   originate routes into the DUT, which makes one of them a split-horizon
   source member of its own update group. *)

type sink = {
  sidx : int;
  fsm : Session.Fsm.t;
  port : Netsim.Pipe.port;  (** sink-side port, for link failures *)
  frames : bytes list ref;  (** received UPDATE frames, newest first *)
  adv_seen : int ref;  (** NLRI entries received, cumulative *)
  wd_seen : int ref;  (** withdrawn entries received, cumulative *)
  rib : (Bgp.Prefix.t, Bgp.Attr.t list) Hashtbl.t;
      (** derived adj-RIB-in (reset on session close) *)
}

type t = {
  sched : Netsim.Sched.t;
  dut : Daemon.t;
  dut_vmm : Xbgp.Vmm.t option;
  telemetry : Telemetry.t;
  sinks : sink array;
}

let addr = Bgp.Prefix.addr_of_quad

let create ?(host = `Frr) ?manifest ?(engine = Ebpf.Vm.Interpreted) ?telemetry
    ?vmm ?(update_groups = true) ?(batch_updates = true) ?(shards = 1)
    ?(ibgp = false) ?(native_rr = false) ?(rr_client = fun _ -> false)
    ?(hold_time = 90) ?(record_frames = true) ?(track_rib = true) ?(xtras = [])
    ~npeers () : t =
  if npeers < 1 || npeers > 200 then invalid_arg "Star.create: npeers";
  (* fresh-process semantics: a new star means new daemons *)
  Frrouting.Attr_intern.reset_intern_table ();
  let sched = Netsim.Sched.create () in
  let telemetry =
    match telemetry with
    | Some t -> t
    | None -> Telemetry.create ~enabled:false ()
  in
  Telemetry.set_clock_us telemetry (fun () -> Netsim.Sched.now sched);
  let dut_as = 65000 in
  let dut_addr = addr (10, 0, 0, 1) in
  let sink_as i = if ibgp then dut_as else 65101 + i in
  let sink_addr i = addr (10, 1, 0, 2 + i) in
  let links =
    Array.init npeers (fun i ->
        Netsim.Pipe.create ~telemetry ~name:(Printf.sprintf "S%d" i) sched)
  in
  let dut_vmm =
    match vmm with
    | Some _ -> vmm
    | None ->
      Option.map
        (fun m ->
          Xprogs.Registry.vmm_of_manifest ~engine ~telemetry ~shards
            ~host:"dut" m)
        manifest
  in
  let dut =
    match host with
    | `Frr ->
      Daemon.Frr
        (Frrouting.Bgpd.create ~telemetry ?vmm:dut_vmm ~sched
           (Frrouting.Bgpd.config ~name:"dut" ~router_id:dut_addr
              ~local_as:dut_as ~local_addr:dut_addr ~hold_time ~native_rr
              ~batch_updates ~update_groups ~shards ~xtras ())
           (List.init npeers (fun i ->
                {
                  Frrouting.Bgpd.pname = Printf.sprintf "sink%d" i;
                  remote_as = sink_as i;
                  remote_addr = sink_addr i;
                  rr_client = rr_client i;
                  port = fst links.(i);
                })))
    | `Bird ->
      Daemon.Bird
        (Bird.Bgpd.create ~telemetry ?vmm:dut_vmm ~sched
           (Bird.Bgpd.config ~name:"dut" ~router_id:dut_addr
              ~local_as:dut_as ~local_addr:dut_addr ~hold_time ~native_rr
              ~batch_updates ~update_groups ~shards ~xtras ())
           (List.init npeers (fun i ->
                {
                  Bird.Bgpd.pname = Printf.sprintf "sink%d" i;
                  remote_as = sink_as i;
                  remote_addr = sink_addr i;
                  rr_client = rr_client i;
                  port = fst links.(i);
                })))
  in
  let sinks =
    Array.init npeers (fun i ->
        let port = snd links.(i) in
        let frames = ref [] and adv_seen = ref 0 and wd_seen = ref 0 in
        let rib = Hashtbl.create 64 in
        let on_update (u : Bgp.Message.update) ~raw =
          if record_frames then frames := Bytes.copy raw :: !frames;
          adv_seen := !adv_seen + List.length u.nlri;
          wd_seen := !wd_seen + List.length u.withdrawn;
          if track_rib then begin
            List.iter (Hashtbl.remove rib) u.withdrawn;
            List.iter (fun p -> Hashtbl.replace rib p u.attrs) u.nlri
          end
        in
        let cbs =
          {
            Session.Fsm.on_update;
            on_established = (fun () -> ());
            on_close = (fun _ -> Hashtbl.reset rib);
          }
        in
        let fsm =
          Session.Fsm.create ~telemetry sched port
            {
              local_as = sink_as i;
              local_id = sink_addr i;
              peer_as = dut_as;
              hold_time;
            }
            cbs
        in
        { sidx = i; fsm; port; frames; adv_seen; wd_seen; rib })
  in
  { sched; dut; dut_vmm; telemetry; sinks }

let npeers t = Array.length t.sinks
let dut t = t.dut
let dut_vmm t = t.dut_vmm
let telemetry t = t.telemetry
let sched t = t.sched

let start t =
  Daemon.start t.dut;
  Array.iter (fun s -> Session.Fsm.start s.fsm) t.sinks

let all_established t =
  let ok = ref true in
  Array.iteri
    (fun i s ->
      if
        not
          (Session.Fsm.is_established s.fsm && Daemon.peer_established t.dut i)
      then ok := false)
    t.sinks;
  !ok

let establish t =
  start t;
  if not (Netsim.Sched.run_until t.sched (fun () -> all_established t)) then
    failwith "Star.establish: sessions did not come up"

let run_for t us =
  ignore (Netsim.Sched.run ~until:(Netsim.Sched.now t.sched + us) t.sched)

(* The event queue never drains while sessions hold keepalive timers, so
   every run is bounded by simulated time. *)
let run_until ?(timeout_us = 120_000_000) t pred =
  let deadline = Netsim.Sched.now t.sched + timeout_us in
  let met = ref false in
  let stop () =
    if pred () then met := true;
    !met || Netsim.Sched.now t.sched >= deadline
  in
  ignore (Netsim.Sched.run_until t.sched stop);
  !met

let total_activity t =
  Array.fold_left (fun acc s -> acc + !(s.adv_seen) + !(s.wd_seen)) 0 t.sinks

(* Quiescence: flushes are scheduled at +0 and pipe latency is ~100 us,
   while keepalives tick at hold/3 *seconds* — so a 200 ms slice with no
   new routes at any sink means the routing system is settled. *)
let settle ?(slice_us = 200_000) ?(max_slices = 500) t =
  let rec go n last =
    if n > 0 then begin
      run_for t slice_us;
      let cur = total_activity t in
      if cur <> last then go (n - 1) cur
    end
  in
  go max_slices (total_activity t)

(* Observability attachments. The recorder clock is the simulated
   clock, so event timestamps are reproducible under Netsim.Sched. *)
let attach_recorder t rc =
  Obs.Recorder.set_clock rc (fun () -> Netsim.Sched.now t.sched);
  Daemon.set_recorder t.dut (Some rc)

let attach_collector t col = Daemon.set_collector t.dut (Some col)

let originate t prefix attrs = Daemon.originate t.dut prefix attrs
let withdraw_local t prefix = Daemon.withdraw_local t.dut prefix

let sink_announce t i ~attrs nlri =
  Session.Fsm.send_update t.sinks.(i).fsm
    { Bgp.Message.withdrawn = []; attrs; nlri }

let sink_withdraw t i prefixes =
  Session.Fsm.send_update t.sinks.(i).fsm
    { Bgp.Message.withdrawn = prefixes; attrs = []; nlri = [] }

let sink_established t i = Session.Fsm.is_established t.sinks.(i).fsm

let sink_address t i =
  if i < 0 || i >= Array.length t.sinks then invalid_arg "Star.sink_address";
  addr (10, 1, 0, 2 + i)
let sink_frames t i = List.rev !(t.sinks.(i).frames)
let sink_frame_count t i = List.length !(t.sinks.(i).frames)
let sink_adv_seen t i = !(t.sinks.(i).adv_seen)
let sink_wd_seen t i = !(t.sinks.(i).wd_seen)
let sink_rib_size t i = Hashtbl.length t.sinks.(i).rib

let sink_rib t i =
  Hashtbl.fold (fun p attrs acc -> (p, attrs) :: acc) t.sinks.(i).rib []
  |> List.sort (fun (a, _) (b, _) -> Bgp.Prefix.compare a b)

let set_link_up t i up = Netsim.Pipe.set_up t.sinks.(i).port up

let restart t =
  Daemon.restart_sessions t.dut;
  Array.iter
    (fun s ->
      if Session.Fsm.state s.fsm = Session.Fsm.Idle then
        Session.Fsm.start s.fsm)
    t.sinks

let shutdown t = Daemon.shutdown t.dut
