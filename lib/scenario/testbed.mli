(** The three-router testbed of Fig. 3: upstream — DUT — downstream.

    As in the paper, upstream and downstream always run the FRR-like
    daemon; the Device Under Test runs either host, natively or with
    extension bytecode. Sessions are iBGP for the route-reflection
    experiment (§3.2), eBGP for origin validation (§3.4). *)

type host = [ `Bird | `Frr ]

type mode = {
  host : host;
  ibgp : bool;
  manifest : Xbgp.Manifest.t option;  (** extension config for the DUT *)
  native_rr : bool;
  native_ov_roas : Rpki.Roa.t list option;
  xtras : (string * bytes) list;  (** DUT configuration extras *)
  hold_time : int;
  engine : Ebpf.Vm.engine;  (** eBPF engine for the DUT's extensions *)
  telemetry : Telemetry.t option;
      (** shared registry for the whole deployment; None = disabled *)
  batch_updates : bool;
      (** batched NLRI processing in every daemon (false = the legacy
          per-prefix path, the dispatch-bench baseline) *)
  update_groups : bool;
      (** update-group export in every daemon (false = the legacy
          per-peer export path, the fan-out baseline) *)
}

val mode :
  ?host:host ->
  ?ibgp:bool ->
  ?manifest:Xbgp.Manifest.t ->
  ?native_rr:bool ->
  ?native_ov_roas:Rpki.Roa.t list ->
  ?xtras:(string * bytes) list ->
  ?hold_time:int ->
  ?engine:Ebpf.Vm.engine ->
  ?telemetry:Telemetry.t ->
  ?batch_updates:bool ->
  ?update_groups:bool ->
  unit ->
  mode

type t = {
  sched : Netsim.Sched.t;
  upstream : Frrouting.Bgpd.t;
  dut : Daemon.t;
  downstream : Frrouting.Bgpd.t;
  dut_vmm : Xbgp.Vmm.t option;
  telemetry : Telemetry.t;
      (** the deployment's registry (the one from [mode], or a fresh
          disabled one); its trace clock is the scheduler clock *)
}

val create : mode -> t
(** Also resets the FRR intern table (fresh-process semantics). *)

val establish : t -> unit
(** Bring all sessions up. @raise Failure if they do not establish. *)

val feed : t -> Dataset.Ris_gen.route list -> unit
(** Originate the table at the upstream router (§3.2: "the upstream
    router is first fed with IPv4 BGP routes"). *)

val run_until_downstream_has : t -> int -> bool
(** Run the simulation until the downstream router holds that many
    routes — the paper's measurement interval; false if the event queue
    drains first. *)

val downstream_count : t -> int
