(* The live introspection surface: `show`-style queries answered from a
   running daemon's actual state — Loc-RIB, provenance records, the
   update-group partition, eBPF map contents, the flight recorder and
   the BMP mirror. Every query has a text rendering (operator-facing)
   and a JSON rendering (machine-checkable; the CI smoke validates the
   shapes). The queries are read-only: answering one never dispatches
   extension bytecode or mutates daemon state. *)

let jstr s = "\"" ^ Obs.Recorder.json_escape s ^ "\""

let jlist f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let attr_to_string (a : Bgp.Attr.t) = Fmt.str "%a" Bgp.Attr.pp a

(* Map keys/values are raw binary blobs; show printable ASCII as-is and
   hex-dump the rest (keeps the JSON valid UTF-8). *)
let blob s =
  let printable c = Char.code c >= 0x20 && Char.code c < 0x7f in
  if s <> "" && String.for_all printable s then s
  else
    "0x" ^ String.concat "" (List.map (Printf.sprintf "%02x")
                               (List.map Char.code (List.init (String.length s)
                                                      (String.get s))))

(* --- show rib --- *)

let show_rib ?(json = false) d =
  let snap = Daemon.loc_snapshot d in
  if json then
    Printf.sprintf "{\"daemon\":%s,\"count\":%d,\"routes\":%s}"
      (jstr (Daemon.name d))
      (List.length snap)
      (jlist
         (fun (p, attrs) ->
           Printf.sprintf "{\"prefix\":%s,\"attrs\":%s}"
             (jstr (Bgp.Prefix.to_string p))
             (jlist (fun a -> jstr (attr_to_string a)) attrs))
         snap)
  else
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "%s: %d route(s) in Loc-RIB\n" (Daemon.name d)
         (List.length snap));
    List.iter
      (fun (p, attrs) ->
        Buffer.add_string b
          (Printf.sprintf "  %s  %s\n"
             (Bgp.Prefix.to_string p)
             (String.concat " " (List.map attr_to_string attrs))))
      snap;
    Buffer.contents b

(* --- show provenance --- *)

let show_provenance ?(json = false) d prefix =
  match Daemon.provenance d prefix with
  | Some pr ->
    if json then
      Printf.sprintf "{\"daemon\":%s,\"provenance\":%s}"
        (jstr (Daemon.name d))
        (Obs.Provenance.to_json pr)
    else Obs.Provenance.to_text pr
  | None ->
    if json then
      Printf.sprintf "{\"daemon\":%s,\"provenance\":null}"
        (jstr (Daemon.name d))
    else
      Printf.sprintf "%s: no provenance recorded for %s\n" (Daemon.name d)
        (Bgp.Prefix.to_string prefix)

(* --- show update-groups --- *)

let show_update_groups ?(json = false) d =
  let groups = Daemon.group_details d in
  if json then
    Printf.sprintf "{\"daemon\":%s,\"count\":%d,\"groups\":%s}"
      (jstr (Daemon.name d))
      (List.length groups)
      (jlist
         (fun (key, members) ->
           Printf.sprintf "{\"key\":%s,\"members\":%s}" (jstr key)
             (jlist string_of_int members))
         groups)
  else
    let b = Buffer.create 128 in
    Buffer.add_string b
      (Printf.sprintf "%s: %d update group(s)\n" (Daemon.name d)
         (List.length groups));
    List.iter
      (fun (key, members) ->
        Buffer.add_string b
          (Printf.sprintf "  %-40s members: %s\n" key
             (String.concat "," (List.map string_of_int members))))
      groups;
    Buffer.contents b

(* --- show maps --- *)

let show_maps ?(json = false) d =
  let state =
    match Daemon.vmm d with Some vmm -> Xbgp.Vmm.map_state vmm | None -> []
  in
  if json then
    Printf.sprintf "{\"daemon\":%s,\"programs\":%s}"
      (jstr (Daemon.name d))
      (jlist
         (fun (prog, maps) ->
           Printf.sprintf "{\"program\":%s,\"maps\":%s}" (jstr prog)
             (jlist
                (fun (m, entries) ->
                  Printf.sprintf "{\"map\":%s,\"entries\":%s}" (jstr m)
                    (jlist
                       (fun (k, v) ->
                         Printf.sprintf "{\"key\":%s,\"value\":%s}"
                           (jstr (blob k)) (jstr (blob v)))
                       entries))
                maps))
         state)
  else
    let b = Buffer.create 128 in
    if state = [] then
      Buffer.add_string b
        (Printf.sprintf "%s: no live eBPF maps\n" (Daemon.name d))
    else
      List.iter
        (fun (prog, maps) ->
          Buffer.add_string b (Printf.sprintf "%s/%s:\n" (Daemon.name d) prog);
          List.iter
            (fun (m, entries) ->
              Buffer.add_string b
                (Printf.sprintf "  %s (%d entries)\n" m (List.length entries));
              List.iter
                (fun (k, v) ->
                  Buffer.add_string b
                    (Printf.sprintf "    %s = %s\n" (blob k) (blob v)))
                entries)
            maps)
        state;
    Buffer.contents b

(* --- show shards --- *)

let show_shards ?(json = false) d =
  let info = Daemon.shard_info d in
  let open Shard.Info in
  let slice s =
    let count = info.counts.(s) in
    let runs = if s < Array.length info.runs then info.runs.(s) else 0 in
    let q =
      if s < Array.length info.queues then Some info.queues.(s) else None
    in
    (count, runs, q)
  in
  if json then
    Printf.sprintf
      "{\"daemon\":%s,\"shards\":%d,\"barriers\":%d,\"par_batches\":%d,\
       \"seq_batches\":%d,\"slices\":%s}"
      (jstr (Daemon.name d))
      info.shards info.barriers info.par_batches info.seq_batches
      (jlist
         (fun s ->
           let count, runs, q = slice s in
           match q with
           | None ->
             Printf.sprintf "{\"shard\":%d,\"routes\":%d,\"vm_runs\":%d}" s
               count runs
           | Some st ->
             Printf.sprintf
               "{\"shard\":%d,\"routes\":%d,\"vm_runs\":%d,\
                \"jobs_submitted\":%d,\"jobs_completed\":%d,\
                \"queue_depth\":%d,\"queue_hwm\":%d}"
               s count runs st.Shard.Runtime.submitted
               st.Shard.Runtime.completed st.Shard.Runtime.queue_depth
               st.Shard.Runtime.queue_hwm)
         (List.init info.shards Fun.id))
  else
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf
         "%s: %d shard(s), %d merge barrier(s), %d parallel batch(es), %d \
          serial batch(es)\n"
         (Daemon.name d) info.shards info.barriers info.par_batches
         info.seq_batches);
    for s = 0 to info.shards - 1 do
      let count, runs, q = slice s in
      Buffer.add_string b
        (match q with
        | None ->
          Printf.sprintf "  shard %d: %d route(s), %d vm run(s)\n" s count runs
        | Some st ->
          Printf.sprintf
            "  shard %d: %d route(s), %d vm run(s), %d/%d job(s) done, queue \
             depth %d (hwm %d)\n"
            s count runs st.Shard.Runtime.completed st.Shard.Runtime.submitted
            st.Shard.Runtime.queue_depth st.Shard.Runtime.queue_hwm)
    done;
    Buffer.contents b

(* --- show recorder --- *)

let show_recorder ?(json = false) ?since d =
  match Daemon.recorder d with
  | None ->
    if json then
      Printf.sprintf "{\"daemon\":%s,\"recorder\":null}" (jstr (Daemon.name d))
    else Printf.sprintf "%s: no flight recorder attached\n" (Daemon.name d)
  | Some rc ->
    if json then
      Printf.sprintf "{\"daemon\":%s,\"recorder\":%s}"
        (jstr (Daemon.name d))
        (Obs.Recorder.to_json ?since rc)
    else
      let events =
        match since with
        | Some s -> Obs.Recorder.since rc s
        | None -> Obs.Recorder.events rc
      in
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Printf.sprintf "%s: flight recorder: %d event(s) held, %d dropped\n"
           (Daemon.name d)
           (Obs.Recorder.length rc)
           (Obs.Recorder.dropped rc));
      List.iter
        (fun e ->
          Buffer.add_string b ("  " ^ Obs.Recorder.event_to_text e ^ "\n"))
        events;
      Buffer.contents b

(* --- show bmp --- *)

let show_bmp ?(json = false) d =
  match Daemon.collector d with
  | None ->
    if json then
      Printf.sprintf "{\"daemon\":%s,\"bmp\":null}" (jstr (Daemon.name d))
    else Printf.sprintf "%s: no BMP collector attached\n" (Daemon.name d)
  | Some col ->
    if json then
      Printf.sprintf "{\"daemon\":%s,\"bmp\":%s}"
        (jstr (Daemon.name d))
        (Obs.Bmp.to_json col)
    else
      Printf.sprintf
        "%s: BMP mirror: %d message(s) (%d route-monitoring, %d peer-up, %d \
         peer-down), %d parse error(s)\n"
        (Daemon.name d) (Obs.Bmp.count col)
        (Obs.Bmp.count_of col Obs.Bmp.Route_monitoring)
        (Obs.Bmp.count_of col Obs.Bmp.Peer_up)
        (Obs.Bmp.count_of col Obs.Bmp.Peer_down)
        (List.length (Obs.Bmp.errors col))

let usage =
  "show queries: rib | provenance <prefix> | update-groups | maps | shards | \
   recorder [--since SEQ] | bmp"

(* --- dispatcher --- *)

let query d ~json args =
  match args with
  | [ "rib" ] -> Ok (show_rib ~json d)
  | [ "provenance"; p ] -> (
    match Bgp.Prefix.of_string p with
    | prefix -> Ok (show_provenance ~json d prefix)
    | exception Invalid_argument _ ->
      Error (Printf.sprintf "malformed prefix %S (want a.b.c.d/len)" p))
  | [ "update-groups" ] -> Ok (show_update_groups ~json d)
  | [ "maps" ] -> Ok (show_maps ~json d)
  | [ "shards" ] -> Ok (show_shards ~json d)
  | [ "recorder" ] -> Ok (show_recorder ~json d)
  | [ "recorder"; "--since"; s ] -> (
    match int_of_string_opt s with
    | Some since -> Ok (show_recorder ~json ~since d)
    | None -> Error (Printf.sprintf "malformed seqno %S" s))
  | [ "bmp" ] -> Ok (show_bmp ~json d)
  | _ -> Error usage
