(** The Fig. 5 data-center fabric as live daemons.

    Three configurations matter for §3.3: [`Plain] (distinct ASNs, no
    protection), [`Same_as] (the duplicate-ASN trick: valleys blocked by
    loop prevention, fabric partitions under double failures), [`Xbgp]
    (distinct ASNs + the valley_free extension on every router). *)

type config = [ `Plain | `Same_as | `Xbgp ]

type t = {
  sched : Netsim.Sched.t;
  clos : Dataset.Clos.t;
  daemons : (string * Daemon.t) list;
  pipes : ((string * string) * (Netsim.Pipe.port * Netsim.Pipe.port)) list;
}

val build :
  ?host:Testbed.host ->
  ?with_transit:bool ->
  ?engine:Ebpf.Vm.engine ->
  ?telemetry:Telemetry.t ->
  ?batch_updates:bool ->
  ?update_groups:bool ->
  config ->
  t
(** [engine] selects the eBPF execution engine for the valley_free VMMs
    (only meaningful under [`Xbgp]); [telemetry] is shared by every
    daemon and pipe (default: a fresh disabled registry);
    [batch_updates] / [update_groups] (both default [true]) are the same
    daemon knobs as on {!Star.create}. *)

val daemon : t -> string -> Daemon.t
(** @raise Not_found for an unknown router name. *)

val attach_recorder : t -> Obs.Recorder.t -> unit
(** Attach one flight recorder to {e every} daemon in the fabric —
    events carry the daemon name, and the shared simulated clock keeps
    the stream totally ordered. *)

val attach_collector : t -> string -> Obs.Bmp.collector -> unit
(** Attach a BMP-style passive collector to the named router, mirroring
    its received UPDATEs and session edges.
    @raise Not_found for an unknown router name. *)

val start : t -> unit
(** Start every daemon; every router originates its prefix. *)

val settle : t -> int -> unit
(** Advance simulated time by that many seconds. *)

val fail_link : t -> string -> string -> unit
(** Fail a link; sessions notice through their hold timers.
    @raise Invalid_argument for an unknown link. *)

val repair_link : t -> string -> string -> unit
(** Bring a failed link back and re-open the sessions that died. *)

val reaches : t -> string -> string -> bool
(** Does the first router hold a route towards the second's prefix? *)

val path : t -> string -> string -> int list option
(** The AS path of that route. *)
