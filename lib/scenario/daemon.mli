(** A uniform handle over the two daemon implementations, for harness
    code (tests, examples, benchmarks) that instantiates either host.
    Deliberately not part of the xBGP architecture — the daemons stay
    independent programs. *)

type t = Frr of Frrouting.Bgpd.t | Bird of Bird.Bgpd.t

val name : t -> string
val start : t -> unit
val originate : t -> Bgp.Prefix.t -> Bgp.Attr.t list -> unit
val withdraw_local : t -> Bgp.Prefix.t -> unit
val loc_count : t -> int
val peer_established : t -> int -> bool

val best_attrs : t -> Bgp.Prefix.t -> Bgp.Attr.t list option
(** Attributes of the best route in the shared codec type — how the
    equivalence tests compare hosts. *)

val has_route : t -> Bgp.Prefix.t -> bool

val loc_snapshot : t -> (Bgp.Prefix.t * Bgp.Attr.t list) list
(** Whole-Loc-RIB snapshot in the neutral codec form, sorted by prefix. *)

val best_path : t -> Bgp.Prefix.t -> int list option
(** Flattened AS path of the best route. *)

val best_communities : t -> Bgp.Prefix.t -> int list option
val updates_rx : t -> int
val import_rejected : t -> int
val set_log : t -> (string -> unit) -> unit

val restart_sessions : t -> unit
(** Re-open any session that has fallen back to Idle. *)

val set_xtra : t -> string -> bytes -> unit
(** Replace one named configuration extra at runtime (e.g. an updated
    ROA table); pair with {!rerun_init} for init-time extension state. *)

val rerun_init : t -> unit
(** Re-run the extension init bytecodes against the current xtras. *)

val stats : t -> Telemetry.daemon_stats
(** Point-in-time daemon counters (updates/routes/rejections). *)

val refresh_exports : t -> unit
(** Re-evaluate export policy for every best route. *)

val group_count : t -> int
(** Active update groups (0 when update groups are off). *)

val vmm : t -> Xbgp.Vmm.t option

val shutdown : t -> unit
(** Join the daemon's worker domains (no-op when unsharded). *)

val shard_info : t -> Shard.Info.t
(** Per-shard route balance, VM load, queue pressure and lane counters. *)

val provenance : t -> Bgp.Prefix.t -> Obs.Provenance.t option
(** Provenance of the prefix's current best route, falling back to the
    last reject/withdraw record once no candidate is left. *)

val provenance_candidates : t -> Bgp.Prefix.t -> Obs.Provenance.t list
val provenance_snapshot : t -> (Bgp.Prefix.t * Obs.Provenance.t) list

val set_recorder : t -> Obs.Recorder.t option -> unit
(** Attach a flight recorder to the daemon (routes), its VMM (faults,
    fallbacks, map evictions), its session FSMs (transitions) and its
    update-group engine (split/merge/rekey). *)

val recorder : t -> Obs.Recorder.t option
val set_collector : t -> Obs.Bmp.collector option -> unit
val collector : t -> Obs.Bmp.collector option

val group_details : t -> (string * int list) list
(** Update-group partition [(key, member indices)] in creation order. *)
