(** Star topology: one DUT hub fanning a table out to N spoke peers — the
    harness behind the fan-out benchmark, the [--fanout] fuzz oracle and
    the grouped-vs-per-peer equivalence properties.

    The DUT runs either host. Every spoke is a minimal scripted "sink"
    peer built directly on {!Session.Fsm}: it completes the handshake,
    keeps the session alive, and records each UPDATE frame it receives —
    in arrival order, raw bytes included — so the grouped export path can
    be compared stream-for-stream against the per-peer baseline. Sinks
    can also originate routes into the DUT, making one of them a
    split-horizon source member of its own update group. *)

type t

val create :
  ?host:Testbed.host ->
  ?manifest:Xbgp.Manifest.t ->
  ?engine:Ebpf.Vm.engine ->
  ?telemetry:Telemetry.t ->
  ?vmm:Xbgp.Vmm.t ->
  ?update_groups:bool ->
  ?batch_updates:bool ->
  ?shards:int ->
  ?ibgp:bool ->
  ?native_rr:bool ->
  ?rr_client:(int -> bool) ->
  ?hold_time:int ->
  ?record_frames:bool ->
  ?track_rib:bool ->
  ?xtras:(string * bytes) list ->
  npeers:int ->
  unit ->
  t
(** [vmm] installs a pre-built VMM on the DUT (benchmarks attach custom
    bytecode); otherwise [manifest] is instantiated through the program
    registry. [ibgp] makes every spoke an iBGP peer (default: each spoke
    its own AS); [rr_client i] marks spoke [i] a route-reflector client.
    [shards] (default 1) runs the DUT with a prefix-sharded Loc-RIB and
    that many worker domains — pair with {!shutdown}.
    [record_frames] / [track_rib] (default true) can be switched off to
    keep full-table benchmark runs lean. [xtras] are the DUT's named
    configuration extras (ROA tables, thresholds) fed to [get_xtra].
    Also resets the FRR intern table (fresh-process semantics).
    @raise Invalid_argument unless [1 <= npeers <= 200]. *)

val npeers : t -> int
val dut : t -> Daemon.t
val dut_vmm : t -> Xbgp.Vmm.t option
val telemetry : t -> Telemetry.t
val sched : t -> Netsim.Sched.t

val start : t -> unit
(** Start the DUT and open every sink session (no settling). *)

val establish : t -> unit
(** {!start}, then run until every session is Established on both ends.
    @raise Failure if they do not come up. *)

val all_established : t -> bool

val run_for : t -> int -> unit
(** Run the simulation for that many microseconds of simulated time. *)

val run_until : ?timeout_us:int -> t -> (unit -> bool) -> bool
(** Run until the predicate holds; false if [timeout_us] (default 120 s)
    of simulated time passes first. The event queue never drains while
    keepalive timers are armed, so every run is time-bounded. *)

val settle : ?slice_us:int -> ?max_slices:int -> t -> unit
(** Run until a whole [slice_us] window (default 200 ms simulated)
    brings no new route activity at any sink — long past the +0 flush
    delay and the 100 us pipe latency, far under the keepalive period. *)

val attach_recorder : t -> Obs.Recorder.t -> unit
(** Attach a flight recorder to the DUT (daemon, VMM, session FSMs,
    update-group engine), clocked by the simulated scheduler so event
    timestamps are reproducible. *)

val attach_collector : t -> Obs.Bmp.collector -> unit
(** Attach a BMP-style passive collector mirroring the DUT's received
    UPDATEs and session edges. *)

val originate : t -> Bgp.Prefix.t -> Bgp.Attr.t list -> unit
val withdraw_local : t -> Bgp.Prefix.t -> unit

val sink_announce : t -> int -> attrs:Bgp.Attr.t list -> Bgp.Prefix.t list -> unit
(** Originate routes from sink [i] into the DUT (split-horizon tests). *)

val sink_withdraw : t -> int -> Bgp.Prefix.t list -> unit
val sink_established : t -> int -> bool

val sink_address : t -> int -> int
(** Sink [i]'s address (its NEXT_HOP when it originates routes). *)

val sink_frames : t -> int -> bytes list
(** UPDATE frames received by sink [i], oldest first, raw bytes — the
    stream the fan-out oracle compares across export modes. *)

val sink_frame_count : t -> int -> int
val sink_adv_seen : t -> int -> int
val sink_wd_seen : t -> int -> int
val sink_rib_size : t -> int -> int

val sink_rib : t -> int -> (Bgp.Prefix.t * Bgp.Attr.t list) list
(** Sink [i]'s derived adj-RIB-in, sorted by prefix (reset when its
    session closes). *)

val set_link_up : t -> int -> bool -> unit
(** Fail / repair the link to sink [i] (both directions). *)

val restart : t -> unit
(** Re-open every session that has fallen back to Idle on both the DUT
    and the sinks (e.g. after a link failure healed). *)

val shutdown : t -> unit
(** Join the DUT's worker domains (no-op unless [shards > 1]). Sharded
    harness legs must call this before the star goes out of scope, or
    the worker domains leak for the rest of the process. *)
