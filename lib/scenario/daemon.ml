(* A uniform handle over the two daemon implementations, for harness code
   (tests, examples, benchmarks) that instantiates either host. This is
   deliberately *not* part of the xBGP architecture — the daemons stay
   independent programs; only the experiment harness needs to treat them
   alike. *)

type t = Frr of Frrouting.Bgpd.t | Bird of Bird.Bgpd.t

let name = function
  | Frr d -> Frrouting.Bgpd.name d
  | Bird d -> Bird.Bgpd.name d

let start = function
  | Frr d -> Frrouting.Bgpd.start d
  | Bird d -> Bird.Bgpd.start d

let originate t prefix attrs =
  match t with
  | Frr d -> Frrouting.Bgpd.originate d prefix attrs
  | Bird d -> Bird.Bgpd.originate d prefix attrs

let withdraw_local t prefix =
  match t with
  | Frr d -> Frrouting.Bgpd.withdraw_local d prefix
  | Bird d -> Bird.Bgpd.withdraw_local d prefix

let loc_count = function
  | Frr d -> Frrouting.Bgpd.loc_count d
  | Bird d -> Bird.Bgpd.loc_count d

let peer_established t idx =
  match t with
  | Frr d -> Frrouting.Bgpd.peer_established d idx
  | Bird d -> Bird.Bgpd.peer_established d idx

(** Attributes of the best route for [prefix], in the shared codec type —
    this is how the equivalence tests compare hosts. *)
let best_attrs t prefix =
  match t with
  | Frr d -> Frrouting.Bgpd.best_attrs d prefix
  | Bird d -> Bird.Bgpd.best_attrs d prefix

let has_route t prefix = best_attrs t prefix <> None

(** Whole-Loc-RIB snapshot in the neutral codec form, sorted by prefix. *)
let loc_snapshot = function
  | Frr d -> Frrouting.Bgpd.loc_snapshot d
  | Bird d -> Bird.Bgpd.loc_snapshot d

(** AS path (flattened) of the best route towards [prefix]. *)
let best_path t prefix =
  Option.bind (best_attrs t prefix) (fun attrs ->
      List.find_map
        (fun (a : Bgp.Attr.t) ->
          match a.value with
          | Bgp.Attr.As_path segs -> Some (Bgp.Attr.as_path_asns segs)
          | _ -> None)
        attrs)

(** Community values of the best route towards [prefix]. *)
let best_communities t prefix =
  match best_attrs t prefix with
  | None -> None
  | Some attrs ->
    Some
      (Option.value ~default:[]
         (List.find_map
            (fun (a : Bgp.Attr.t) ->
              match a.value with
              | Bgp.Attr.Communities cs -> Some cs
              | _ -> None)
            attrs))

let updates_rx = function
  | Frr d -> (Frrouting.Bgpd.stats d).updates_rx
  | Bird d -> (Bird.Bgpd.stats d).updates_rx

let import_rejected = function
  | Frr d -> (Frrouting.Bgpd.stats d).import_rejected
  | Bird d -> (Bird.Bgpd.stats d).import_rejected

let set_log t f =
  match t with
  | Frr d -> Frrouting.Bgpd.set_log d f
  | Bird d -> Bird.Bgpd.set_log d f

let restart_sessions = function
  | Frr d -> Frrouting.Bgpd.restart_sessions d
  | Bird d -> Bird.Bgpd.restart_sessions d

let set_xtra t key value =
  match t with
  | Frr d -> Frrouting.Bgpd.set_xtra d key value
  | Bird d -> Bird.Bgpd.set_xtra d key value

let rerun_init = function
  | Frr d -> Frrouting.Bgpd.rerun_init d
  | Bird d -> Bird.Bgpd.rerun_init d

let stats = function
  | Frr d -> Frrouting.Bgpd.stats d
  | Bird d -> Bird.Bgpd.stats d

let refresh_exports = function
  | Frr d -> Frrouting.Bgpd.refresh_exports d
  | Bird d -> Bird.Bgpd.refresh_exports d

(** Active update groups on the daemon (0 with update groups off). *)
let group_count = function
  | Frr d -> Frrouting.Bgpd.group_count d
  | Bird d -> Bird.Bgpd.group_count d

let vmm = function
  | Frr d -> Frrouting.Bgpd.vmm d
  | Bird d -> Bird.Bgpd.vmm d

let shutdown = function
  | Frr d -> Frrouting.Bgpd.shutdown d
  | Bird d -> Bird.Bgpd.shutdown d

let shard_info = function
  | Frr d -> Frrouting.Bgpd.shard_info d
  | Bird d -> Bird.Bgpd.shard_info d

(** Provenance of the prefix's current best route (or the last
    reject/withdraw record). *)
let provenance t prefix =
  match t with
  | Frr d -> Frrouting.Bgpd.provenance d prefix
  | Bird d -> Bird.Bgpd.provenance d prefix

let provenance_candidates t prefix =
  match t with
  | Frr d -> Frrouting.Bgpd.provenance_candidates d prefix
  | Bird d -> Bird.Bgpd.provenance_candidates d prefix

let provenance_snapshot = function
  | Frr d -> Frrouting.Bgpd.provenance_snapshot d
  | Bird d -> Bird.Bgpd.provenance_snapshot d

let set_recorder t r =
  match t with
  | Frr d -> Frrouting.Bgpd.set_recorder d r
  | Bird d -> Bird.Bgpd.set_recorder d r

let recorder = function
  | Frr d -> Frrouting.Bgpd.recorder d
  | Bird d -> Bird.Bgpd.recorder d

let set_collector t c =
  match t with
  | Frr d -> Frrouting.Bgpd.set_collector d c
  | Bird d -> Bird.Bgpd.set_collector d c

let collector = function
  | Frr d -> Frrouting.Bgpd.collector d
  | Bird d -> Bird.Bgpd.collector d

(** Update-group partition [(key, member indices)] in creation order. *)
let group_details = function
  | Frr d -> Frrouting.Bgpd.group_details d
  | Bird d -> Bird.Bgpd.group_details d
