(** The BGP session finite-state machine (RFC 4271 §8), simplified to the
    transitions a deterministic simulated transport can exercise:

    {v Idle -> OpenSent -> OpenConfirm -> Established v}

    Both ends open actively; keepalives are emitted every [hold_time]/3
    and the hold timer tears the session down when the peer goes quiet
    (e.g. after {!Netsim.Pipe.set_up}[ false]). *)

type state = Idle | Open_sent | Open_confirm | Established

val state_name : state -> string

type config = {
  local_as : int;
  local_id : int;  (** router id *)
  peer_as : int;  (** expected remote AS *)
  hold_time : int;  (** seconds of simulated time *)
}

type callbacks = {
  on_update : Bgp.Message.update -> raw:bytes -> unit;
      (** decoded UPDATE plus the raw frame, for the BGP_RECEIVE_MESSAGE
          insertion point *)
  on_established : unit -> unit;
  on_close : string -> unit;
}

type t

val create :
  ?telemetry:Telemetry.t ->
  Netsim.Sched.t -> Netsim.Pipe.port -> config -> callbacks -> t
(** [telemetry] receives one [bgp_session_transitions_total] increment
    per state edge, labeled [from]/[to]/[local_as] (default: a fresh
    disabled registry — the counters still count, nobody reads them). *)

val set_recorder : t -> Obs.Recorder.t option -> unit
(** Attach a flight recorder: every FSM edge is recorded as a
    [Session_transition] event (labeled local/peer AS, from, to). *)

val start : t -> unit
(** Actively open the session (send OPEN). *)

val send_update : t -> Bgp.Message.update -> unit
(** Ignored unless Established. *)

val send_raw : t -> bytes -> unit
(** Send a pre-encoded UPDATE frame — the daemons build frames themselves
    so the BGP_ENCODE_MESSAGE insertion point can append attribute
    bytes. *)

val send_raw_shared : t list -> bytes -> int
(** Fan one pre-encoded UPDATE frame out to every Established session of
    the list, sharing the single buffer across deliveries
    ({!Netsim.Pipe.send_shared}); non-Established sessions are skipped.
    Returns the number of sessions the frame went to. *)

val state : t -> state
val is_established : t -> bool

val peer_id : t -> int
(** The peer's router id, learned from its OPEN. *)

val stats : t -> int * int
(** Messages received, messages sent. *)
