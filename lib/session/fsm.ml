(* The BGP session finite-state machine (RFC 4271 §8), simplified to the
   transitions a deterministic simulated transport can exercise:

     Idle -> Open_sent -> Open_confirm -> Established

   Both ends are active openers (the simulated pipe cannot fail to
   connect); collisions cannot happen because each pipe carries exactly
   one session. Keepalives are emitted every hold_time/3 and a hold timer
   tears the session down when the peer goes quiet — which happens when a
   pipe is failed via [Netsim.Pipe.set_up]. *)

let src = Logs.Src.create "session" ~doc:"BGP session FSM"

module Log = (val Logs.src_log src : Logs.LOG)

type state = Idle | Open_sent | Open_confirm | Established

let state_name = function
  | Idle -> "Idle"
  | Open_sent -> "OpenSent"
  | Open_confirm -> "OpenConfirm"
  | Established -> "Established"

type config = {
  local_as : int;
  local_id : int;  (** router id *)
  peer_as : int;  (** expected remote AS (eBGP) or own AS (iBGP) *)
  hold_time : int;  (** seconds of simulated time *)
}

type callbacks = {
  on_update : Bgp.Message.update -> raw:bytes -> unit;
      (** a decoded UPDATE, plus the raw frame for the
          BGP_RECEIVE_MESSAGE insertion point *)
  on_established : unit -> unit;
  on_close : string -> unit;
}

type t = {
  sched : Netsim.Sched.t;
  port : Netsim.Pipe.port;
  config : config;
  callbacks : callbacks;
  tele : Telemetry.t;
  mutable state : state;
  mutable peer_id : int;  (** learned from the peer's OPEN *)
  mutable pending : bytes;  (** unconsumed stream bytes *)
  mutable hold_deadline : int;  (** absolute sim time *)
  mutable keepalive_gen : int;  (** cancels stale keepalive timers *)
  mutable msgs_rx : int;
  mutable msgs_tx : int;
  mutable recorder : Obs.Recorder.t option;
      (** flight recorder; every FSM edge lands in it when attached *)
}

let sec s = s * 1_000_000

(* Every state change funnels through here so the registry sees each
   (from, to) edge — and the flight recorder, when one is attached.
   Transitions are rare, so the counter lookup per edge is fine. *)
let transition t to_state =
  if t.state <> to_state then begin
    Telemetry.Counter.inc
      (Telemetry.counter t.tele ~help:"BGP session state transitions"
         ~name:"bgp_session_transitions_total"
         ~labels:
           [
             ("from", state_name t.state);
             ("to", state_name to_state);
             ("local_as", string_of_int t.config.local_as);
           ]
         ());
    (match t.recorder with
    | None -> ()
    | Some r ->
      Obs.Recorder.record r Obs.Recorder.Session_transition
        [
          ("local_as", string_of_int t.config.local_as);
          ("peer_as", string_of_int t.config.peer_as);
          ("from", state_name t.state);
          ("to", state_name to_state);
        ]);
    t.state <- to_state
  end

let set_recorder t r = t.recorder <- r

let rec create ?telemetry sched port config callbacks =
  let tele =
    match telemetry with
    | Some t -> t
    | None -> Telemetry.create ~enabled:false ()
  in
  let t =
    {
      sched;
      port;
      config;
      callbacks;
      tele;
      state = Idle;
      peer_id = 0;
      pending = Bytes.empty;
      hold_deadline = max_int;
      keepalive_gen = 0;
      msgs_rx = 0;
      msgs_tx = 0;
      recorder = None;
    }
  in
  Netsim.Pipe.set_receiver port (fun chunk -> receive t chunk);
  t

and send_msg t msg =
  t.msgs_tx <- t.msgs_tx + 1;
  Netsim.Pipe.send t.port (Bgp.Message.encode msg)

and close t reason =
  if t.state <> Idle then begin
    Log.debug (fun m -> m "AS%d: session closed: %s" t.config.local_as reason);
    transition t Idle;
    t.keepalive_gen <- t.keepalive_gen + 1;
    t.pending <- Bytes.empty;
    t.callbacks.on_close reason
  end

and arm_hold_timer t =
  let deadline = Netsim.Sched.now t.sched + sec t.config.hold_time in
  t.hold_deadline <- deadline;
  Netsim.Sched.after t.sched (sec t.config.hold_time) (fun () ->
      if t.state <> Idle && Netsim.Sched.now t.sched >= t.hold_deadline then begin
        let handshaking = t.state <> Established in
        (* no Notification for an expired handshake: when both ends
           retry at the same instant, each side's Notification would
           arrive just ahead of the peer's fresh OPEN and tear the new
           attempt down again — a livelock *)
        if not handshaking then
          send_msg t
            (Bgp.Message.Notification
               { code = 4; subcode = 0; data = Bytes.empty });
        close t "hold timer expired";
        (* connect retry (RFC 4271 §8.2.1): a handshake that never
           completed lost its OPEN — typically sent into a link that was
           down at the time — so re-open, or the session would sit Idle
           forever even after the link heals. An Established session
           that expires stays down until its owner restarts it. *)
        if handshaking then start t
      end)

and schedule_keepalive t =
  let gen = t.keepalive_gen in
  let interval = max 1 (t.config.hold_time / 3) in
  Netsim.Sched.after t.sched (sec interval) (fun () ->
      if t.state = Established && gen = t.keepalive_gen then begin
        send_msg t Bgp.Message.Keepalive;
        schedule_keepalive t
      end)

and establish t =
  transition t Established;
  arm_hold_timer t;
  schedule_keepalive t;
  t.callbacks.on_established ()

and handle_msg t msg ~raw =
  t.msgs_rx <- t.msgs_rx + 1;
  match (t.state, msg) with
  | _, Bgp.Message.Notification n ->
    close t (Printf.sprintf "notification %d/%d received" n.code n.subcode)
  | (Idle | Open_sent | Open_confirm), Bgp.Message.Open o ->
    let expected =
      if t.config.peer_as > 0xffff then Bgp.Message.as_trans
      else t.config.peer_as
    in
    if o.version <> 4 then begin
      send_msg t
        (Bgp.Message.Notification { code = 2; subcode = 1; data = Bytes.empty });
      close t "unsupported version"
    end
    else if o.my_as <> expected then begin
      send_msg t
        (Bgp.Message.Notification { code = 2; subcode = 2; data = Bytes.empty });
      close t
        (Printf.sprintf "bad peer AS %d (expected %d)" o.my_as expected)
    end
    else begin
      (* passive open: an OPEN arriving while Idle (from a peer in its
         connect-retry loop) is answered with our own OPEN instead of
         being dropped — otherwise two peers whose handshakes failed at
         different times livelock, each retry landing in the other's
         Idle. A duplicate OPEN in Open_confirm (simultaneous retries
         answering each other's passive opens) is benign: re-confirm
         rather than treating it as a protocol error. *)
      if t.state = Idle then
        send_msg t
          (Bgp.Message.Open
             {
               version = 4;
               my_as = t.config.local_as;
               hold_time = t.config.hold_time;
               bgp_id = t.config.local_id;
             });
      t.peer_id <- o.bgp_id;
      transition t Open_confirm;
      send_msg t Bgp.Message.Keepalive;
      arm_hold_timer t
    end
  | Open_confirm, Bgp.Message.Keepalive ->
    arm_hold_timer t;
    establish t
  | Established, Bgp.Message.Keepalive -> arm_hold_timer t
  | Established, Bgp.Message.Update u ->
    arm_hold_timer t;
    t.callbacks.on_update u ~raw
  | Idle, _ ->
    (* stale in-flight frames from before a close; drop silently *)
    ()
  | state, msg ->
    send_msg t
      (Bgp.Message.Notification { code = 5; subcode = 0; data = Bytes.empty });
    close t
      (Fmt.str "unexpected %a in state %s" Bgp.Message.pp msg
         (state_name state))

and receive t chunk =
  t.pending <-
    (if Bytes.length t.pending = 0 then chunk
     else Bytes.cat t.pending chunk);
  match Bgp.Message.deframe t.pending with
  | frames, rest ->
    t.pending <- rest;
    List.iter
      (fun raw ->
        (* Idle frames still reach [handle_msg]: an OPEN there is a
           passive open, everything else is dropped *)
        match Bgp.Message.decode raw with
        | msg -> handle_msg t msg ~raw
        | exception Bgp.Message.Parse_error e ->
          if t.state <> Idle then begin
            send_msg t
              (Bgp.Message.Notification
                 { code = 1; subcode = 0; data = Bytes.empty });
            close t ("parse error: " ^ e)
          end)
      frames
  | exception Bgp.Message.Parse_error e ->
    send_msg t
      (Bgp.Message.Notification { code = 1; subcode = 0; data = Bytes.empty });
    close t ("framing error: " ^ e)

(* Actively open the session (send OPEN). In the recursive knot because
   the hold-timer expiry of a failed handshake retries through it. *)
and start t =
  if t.state = Idle then begin
    transition t Open_sent;
    send_msg t
      (Bgp.Message.Open
         {
           version = 4;
           my_as = t.config.local_as;
           hold_time = t.config.hold_time;
           bgp_id = t.config.local_id;
         });
    arm_hold_timer t
  end

(** Send an UPDATE; silently ignored unless Established. *)
let send_update t u =
  if t.state = Established then send_msg t (Bgp.Message.Update u)

(** Send a pre-encoded UPDATE frame (the daemons build these themselves so
    the BGP_ENCODE_MESSAGE insertion point can append attribute bytes). *)
let send_raw t frame =
  if t.state = Established then begin
    t.msgs_tx <- t.msgs_tx + 1;
    Netsim.Pipe.send t.port frame
  end

(** Fan one pre-encoded UPDATE frame out to every Established session,
    sharing the single buffer across the deliveries
    ([Netsim.Pipe.send_shared]). Returns the number of sessions the
    frame was sent to. *)
let send_raw_shared sessions frame =
  let ports =
    List.filter_map
      (fun t ->
        if t.state = Established then begin
          t.msgs_tx <- t.msgs_tx + 1;
          Some t.port
        end
        else None)
      sessions
  in
  Netsim.Pipe.send_shared ports frame;
  List.length ports

let state t = t.state
let is_established t = t.state = Established
let peer_id t = t.peer_id
let stats t = (t.msgs_rx, t.msgs_tx)
