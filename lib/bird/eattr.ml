(* BIRD-style attribute storage.

   BIRD keeps route attributes as a generic list of `eattr` records whose
   payloads stay in (or very near) wire form, with one flexible API over
   all of them — which is why the paper's BIRD xBGP adapter was thinner
   than FRRouting's (§2.1: "BIRD includes a flexible API to manage BGP
   attributes. xBGP simply extends this API").

   Consequences faithfully reproduced here:
   - converting to/from the neutral xBGP TLV is nearly free (the payload
     *is* the network-byte-order wire payload);
   - any attribute code, standard or not, is carried uniformly — but the
     native UPDATE parser still only admits codes it knows (so the GeoLoc
     use case behaves the same on both hosts), and the native encoder
     only emits known codes;
   - scalar readers parse the payload on each access (with the small
     per-route cache BIRD keeps for hot fields, we cache only the AS-path
     length). *)

type t = { code : int; flags : int; payload : string }

(** An attribute set: eattrs sorted by code, unique per code.

    The two memo fields cache this set's neutral conversions (the
    BIRD-side symmetric of the FRR conversion cache). They are sound by
    construction: [eattrs] is immutable and every mutation API builds a
    {e new} record whose memos start empty, so a memo can only ever
    describe the eattrs it sits next to. [equal] ignores them. *)
type set = {
  eattrs : t list;
  path_len : int;  (** cached AS-path length *)
  mutable memo_attrs : Bgp.Attr.t list option;
      (** cached [to_attrs] (the neutral snapshot) *)
  mutable memo_encoded : bytes option;  (** cached [encode_known] *)
}

let rec insert_sorted (e : t) = function
  | [] -> [ e ]
  | x :: rest when x.code = e.code -> e :: rest
  | x :: rest when x.code > e.code -> e :: x :: rest
  | x :: rest -> x :: insert_sorted e rest

let find_code code set =
  List.find_opt (fun (e : t) -> e.code = code) set.eattrs

(* --- payload readers (network byte order) --- *)

let read_u32 s off =
  ((Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3])

let u32_payload v =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (v land 0xFFFFFFFF));
  Bytes.to_string b

(** Walk an AS_PATH payload: segment length counting a SET as 1. *)
let path_length_of_payload s =
  let n = String.length s in
  let rec go off acc =
    if off + 2 > n then acc
    else
      let ty = Char.code s.[off] in
      let count = Char.code s.[off + 1] in
      let next = off + 2 + (4 * count) in
      if next > n then acc
      else go next (acc + if ty = 2 then count else 1)
  in
  go 0 0

(** All ASNs of an AS_PATH payload, leftmost first. *)
let path_asns_of_payload s =
  let n = String.length s in
  let rec go off acc =
    if off + 2 > n then List.rev acc
    else
      let count = Char.code s.[off + 1] in
      let next = off + 2 + (4 * count) in
      if next > n then List.rev acc
      else begin
        let rec asns i acc =
          if i = count then acc
          else asns (i + 1) (read_u32 s (off + 2 + (4 * i)) :: acc)
        in
        go next (asns 0 acc)
      end
  in
  go 0 []

let recompute_path_len eattrs =
  match List.find_opt (fun (e : t) -> e.code = Bgp.Attr.code_as_path) eattrs with
  | Some e -> path_length_of_payload e.payload
  | None -> 0

let of_eattrs eattrs =
  let eattrs = List.sort (fun (a : t) b -> compare a.code b.code) eattrs in
  {
    eattrs;
    path_len = recompute_path_len eattrs;
    memo_attrs = None;
    memo_encoded = None;
  }

let empty =
  { eattrs = []; path_len = 0; memo_attrs = None; memo_encoded = None }

let set_eattr set (e : t) =
  let eattrs = insert_sorted e set.eattrs in
  {
    eattrs;
    path_len =
      (if e.code = Bgp.Attr.code_as_path then
         path_length_of_payload e.payload
       else set.path_len);
    memo_attrs = None;
    memo_encoded = None;
  }

let remove_code code set =
  let eattrs = List.filter (fun (e : t) -> e.code <> code) set.eattrs in
  {
    eattrs;
    path_len = (if code = Bgp.Attr.code_as_path then 0 else set.path_len);
    memo_attrs = None;
    memo_encoded = None;
  }

(* --- the conversion cache toggle (mirrors Attr_intern's) --- *)

let cache_enabled = ref true

(* Driven from [Vmm.has_any_attachment] by the daemon, mirroring
   [Attr_intern.set_cache_gate]: the pure-native baseline must not pay
   for memos no extension can read. Per-set memos are kept across gate
   flips — they can never be stale. *)
let cache_gate = ref true
let cache_hits = ref 0
let cache_misses = ref 0
let set_conversion_cache b = cache_enabled := b
let set_cache_gate b = cache_gate := b
let conversion_cache_enabled () = !cache_enabled
let conversion_cache_stats () = (!cache_hits, !cache_misses)

let reset_conversion_cache_stats () =
  cache_hits := 0;
  cache_misses := 0

let invalidate_conversion set =
  set.memo_attrs <- None;
  set.memo_encoded <- None

(* --- from/to the shared wire codec --- *)

let known_codes =
  Bgp.Attr.
    [
      code_origin;
      code_as_path;
      code_next_hop;
      code_med;
      code_local_pref;
      code_atomic_aggregate;
      code_aggregator;
      code_communities;
      code_originator_id;
      code_cluster_list;
    ]

(** Admit parsed attributes into the set; unknown codes are dropped by the
    *native* parser, like the FRR-side (see module header). Flags of
    known attributes are canonicalized to their RFC defaults — stray
    flag bits on the wire must not survive into xBGP-visible state (the
    record-based host re-derives flags, so keeping them here would make
    the two hosts diverge on exactly the malformed input). *)
let of_attrs (attrs : Bgp.Attr.t list) =
  let eattrs =
    List.filter_map
      (fun (a : Bgp.Attr.t) ->
        let code = Bgp.Attr.code a in
        if List.mem code known_codes then
          Some
            {
              code;
              flags = Bgp.Attr.default_flags a.value;
              payload = Bytes.to_string (Bgp.Attr.encode_payload a.value);
            }
        else None)
      attrs
  in
  of_eattrs eattrs

(** Decode to the shared codec type (known codes only) for the native
    encoder. @raise Bgp.Attr.Parse_error on corrupt payloads. *)
let to_attrs_fresh set : Bgp.Attr.t list =
  List.filter_map
    (fun (e : t) ->
      if List.mem e.code known_codes then
        Some
          (Bgp.Attr.decode_payload ~code:e.code ~flags:e.flags
             (Bytes.of_string e.payload))
      else None)
    set.eattrs

let to_attrs set =
  if (not !cache_enabled) || not !cache_gate then to_attrs_fresh set
  else
    match set.memo_attrs with
    | Some l ->
      incr cache_hits;
      l
    | None ->
      incr cache_misses;
      let l = to_attrs_fresh set in
      set.memo_attrs <- Some l;
      l

(* --- the xBGP adapter: near-zero-cost TLV conversion --- *)

let get_tlv set code =
  match find_code code set with
  | None -> None
  | Some e ->
    let len = String.length e.payload in
    let b = Bytes.create (4 + len) in
    Bytes.set_uint8 b 0 e.flags;
    Bytes.set_uint8 b 1 e.code;
    Bytes.set_uint16_be b 2 len;
    Bytes.blit_string e.payload 0 b 4 len;
    Some b

(** Install an attribute straight from the neutral TLV — the payload is
    stored as-is, no parsing. *)
let set_tlv set tlv =
  if Bytes.length tlv < 4 then invalid_arg "Eattr.set_tlv: short TLV";
  let flags = Bytes.get_uint8 tlv 0 in
  let code = Bytes.get_uint8 tlv 1 in
  let len = Bytes.get_uint16_be tlv 2 in
  if Bytes.length tlv < 4 + len then invalid_arg "Eattr.set_tlv: truncated";
  set_eattr set { code; flags; payload = Bytes.sub_string tlv 4 len }

(* --- scalar accessors (parse on demand) --- *)

let u32_attr code default set =
  match find_code code set with
  | Some e when String.length e.payload = 4 -> read_u32 e.payload 0
  | _ -> default

let origin set =
  match find_code Bgp.Attr.code_origin set with
  | Some e when String.length e.payload = 1 -> Char.code e.payload.[0]
  | _ -> 2

let next_hop set = u32_attr Bgp.Attr.code_next_hop 0 set
let med set = u32_attr Bgp.Attr.code_med 0 set
let local_pref set = u32_attr Bgp.Attr.code_local_pref 100 set
let originator_id set = u32_attr Bgp.Attr.code_originator_id 0 set

let cluster_list_len set =
  match find_code Bgp.Attr.code_cluster_list set with
  | Some e -> String.length e.payload / 4
  | None -> 0

let path_asns set =
  match find_code Bgp.Attr.code_as_path set with
  | Some e -> path_asns_of_payload e.payload
  | None -> []

let neighbor_as set = match path_asns set with a :: _ -> a | [] -> 0

let origin_as set =
  match List.rev (path_asns set) with a :: _ -> Some a | [] -> None

let contains_as set asn = List.mem asn (path_asns set)

(** Prepend an ASN to the AS_PATH, working directly on the wire payload
    (extending a leading AS_SEQUENCE when below 255 hops). *)
let prepend_as set asn =
  let payload =
    match find_code Bgp.Attr.code_as_path set with
    | Some e -> e.payload
    | None -> ""
  in
  let new_payload =
    let n = String.length payload in
    if n >= 2 && Char.code payload.[0] = 2 && Char.code payload.[1] < 255 then begin
      (* extend leading AS_SEQUENCE *)
      let b = Bytes.create (n + 4) in
      Bytes.set_uint8 b 0 2;
      Bytes.set_uint8 b 1 (Char.code payload.[1] + 1);
      Bytes.blit_string (u32_payload asn) 0 b 2 4;
      Bytes.blit_string payload 2 b 6 (n - 2);
      Bytes.to_string b
    end
    else begin
      let b = Bytes.create (n + 6) in
      Bytes.set_uint8 b 0 2;
      Bytes.set_uint8 b 1 1;
      Bytes.blit_string (u32_payload asn) 0 b 2 4;
      Bytes.blit_string payload 0 b 6 n;
      Bytes.to_string b
    end
  in
  set_eattr set
    {
      code = Bgp.Attr.code_as_path;
      flags = Bgp.Attr.flag_transitive;
      payload = new_payload;
    }

(** Prepend a cluster id to the CLUSTER_LIST payload. *)
let prepend_cluster set cid =
  let old =
    match find_code Bgp.Attr.code_cluster_list set with
    | Some e -> e.payload
    | None -> ""
  in
  set_eattr set
    {
      code = Bgp.Attr.code_cluster_list;
      flags = Bgp.Attr.flag_optional;
      payload = u32_payload cid ^ old;
    }

(** Append a community value to the COMMUNITY payload. *)
let append_community set c =
  let old =
    match find_code Bgp.Attr.code_communities set with
    | Some e -> e.payload
    | None -> ""
  in
  set_eattr set
    {
      code = Bgp.Attr.code_communities;
      flags = Bgp.Attr.flag_optional lor Bgp.Attr.flag_transitive;
      payload = old ^ u32_payload c;
    }

(** Serialized wire form of the whole set (message grouping key and the
    native encoder input). Known codes only — see module header. The
    cached bytes are shared across calls; callers must not mutate. *)
let encode_known set =
  let fresh () =
    let buf = Buffer.create 64 in
    List.iter (Bgp.Attr.encode_into_buffer buf) (to_attrs set);
    Buffer.to_bytes buf
  in
  if (not !cache_enabled) || not !cache_gate then fresh ()
  else
    match set.memo_encoded with
    | Some b ->
      incr cache_hits;
      b
    | None ->
      incr cache_misses;
      let b = fresh () in
      set.memo_encoded <- Some b;
      b

let equal (a : set) (b : set) = a.eattrs = b.eattrs
