(* The BIRD-like BGP daemon — the second xBGP host (§2.1).

   Same protocol behaviour as the FRR-like daemon (it must be: both obey
   RFC 4271), entirely different internals:
   - attributes are generic [Eattr.set] lists kept in wire form, so xBGP
     TLV conversion is nearly free (thin adapter, as in the paper);
   - no interning: route values are plain immutable records;
   - native origin validation uses a *hash* ROA store ([Rpki.Store_hash]),
     the structure the paper credits for BIRD's fast native validation;
   - scalar attribute reads parse payloads on demand.

   Both daemons run the *same extension bytecode* — that is the point of
   xBGP — and the integration tests check the resulting routing state is
   identical. *)

type peer_conf = {
  pname : string;
  remote_as : int;
  remote_addr : int;
  rr_client : bool;
  port : Netsim.Pipe.port;
}

type config = {
  name : string;
  router_id : int;
  local_as : int;
  local_addr : int;
  cluster_id : int;
  hold_time : int;
  native_rr : bool;
  native_ov : Rpki.Store_hash.t option;
      (** native origin validation (hash-based, BIRD-style) *)
  igp_metric : int -> int;
  xtras : (string * bytes) list;
  batch_updates : bool;
      (** process a multi-prefix UPDATE's NLRI as one batch sharing one
          converted attribute view (off = the legacy per-prefix path,
          kept for the dispatch-bench baseline) *)
  update_groups : bool;
      (** partition peers into update groups and run export policy,
          outbound dispatch and UPDATE encoding once per group (off =
          the legacy per-peer path, kept as the fan-out baseline) *)
  shards : int;
      (** partition the Loc-RIB (and the VMM's per-prefix dispatch
          state) across this many OCaml domains; 1 = the sequential
          daemon, bit-for-bit today's behaviour with no domain spawned *)
}

let config ?(cluster_id = 0) ?(hold_time = 90) ?(native_rr = false)
    ?native_ov ?(igp_metric = fun _ -> 0) ?(xtras = [])
    ?(batch_updates = true) ?(update_groups = true) ?(shards = 1) ~name
    ~router_id ~local_as ~local_addr () =
  {
    name;
    router_id;
    local_as;
    local_addr;
    cluster_id = (if cluster_id = 0 then router_id else cluster_id);
    hold_time;
    native_rr;
    native_ov;
    igp_metric;
    xtras;
    batch_updates;
    update_groups;
    shards = max 1 shards;
  }

(* identical tag values to the FRR-like daemon so results are comparable *)
let ov_community_valid = (65535 * 65536) + 1
let ov_community_invalid = (65535 * 65536) + 2
let ov_community_notfound = (65535 * 65536) + 3

let src_local = 0
let src_ebgp = 1
let src_ibgp = 2

type route = {
  attrs : Eattr.set;
  src : int;
  src_type : int;
  src_router_id : int;
  src_addr : int;
  src_rr_client : bool;
  igp_cost : int;
}

type peer = {
  idx : int;
  conf : peer_conf;
  peer_type : int;
  session : Session.Fsm.t;
  mutable synced : bool;
}

type stats = Telemetry.daemon_stats = {
  mutable updates_rx : int;
  mutable routes_in : int;
  mutable withdrawals_rx : int;
  mutable import_rejected : int;
  mutable export_rejected : int;
  mutable updates_tx : int;
}

(* Counter handles interned once at daemon creation; [stats] snapshots
   them, so the registry is the single source of truth. *)
type probes = {
  c_updates_rx : Telemetry.Counter.t;
  c_routes_in : Telemetry.Counter.t;
  c_withdrawals_rx : Telemetry.Counter.t;
  c_import_rejected : Telemetry.Counter.t;
  c_export_rejected : Telemetry.Counter.t;
  c_updates_tx : Telemetry.Counter.t;
  c_decisions : Telemetry.Counter.t;
  c_roa_valid : Telemetry.Counter.t;
  c_roa_invalid : Telemetry.Counter.t;
  c_roa_notfound : Telemetry.Counter.t;
}

let make_probes tele ~daemon ~impl ~store =
  let labels = [ ("daemon", daemon); ("impl", impl) ] in
  let c help name = Telemetry.counter tele ~help ~name ~labels () in
  let roa result =
    Telemetry.counter tele ~help:"native origin-validation lookups"
      ~name:"bgp_roa_lookups_total"
      ~labels:(labels @ [ ("store", store); ("result", result) ])
      ()
  in
  {
    c_updates_rx = c "UPDATE messages received" "bgp_updates_rx_total";
    c_routes_in = c "routes accepted into Adj-RIB-In" "bgp_routes_in_total";
    c_withdrawals_rx = c "prefixes withdrawn by peers" "bgp_withdrawals_rx_total";
    c_import_rejected = c "routes rejected by import policy" "bgp_import_rejected_total";
    c_export_rejected = c "routes rejected by export policy" "bgp_export_rejected_total";
    c_updates_tx = c "UPDATE messages sent" "bgp_updates_tx_total";
    c_decisions = c "decision-process route comparisons" "bgp_decisions_total";
    c_roa_valid = roa "valid";
    c_roa_invalid = roa "invalid";
    c_roa_notfound = roa "not_found";
  }

type t = {
  config : config;
  sched : Netsim.Sched.t;
  vmm : Xbgp.Vmm.t option;
  tele : Telemetry.t;
  probes : probes;
  mutable peers : peer array;
  adj_in : route Rib.Adj_rib.t;
  adj_out : Eattr.set Rib.Adj_rib.t;
  loc : route Shard.Sharded_loc.t;
  pool : Shard.Runtime.t option;  (** worker domains; [None] unsharded *)
  mutable par_batches : int;
      (** NLRI batches whose import dispatch ran on the worker pool *)
  mutable seq_batches : int;
      (** batches the serial lane took (chain not shard-parallel-safe) *)
  pending_adv : (int, (Bgp.Prefix.t * Eattr.set) list ref) Hashtbl.t;
  pending_wd : (int, Bgp.Prefix.t list ref) Hashtbl.t;
  mutable flush_scheduled : bool;
  ugroups : Eattr.set Rib.Update_group.t;
      (** update-group partition (the encode-once/fan-out-many path);
          unused when [config.update_groups] is off *)
  mutable group_gen : int;
      (** {!Xbgp.Vmm.generation} at the last re-grouping; -1 forces the
          first {!refresh_grouping} to compute the partition key *)
  mutable groupable : bool;
      (** both outbound points pass {!Xbgp.Vmm.group_invariant}; when
          false every peer gets a singleton "solo" group *)
  mutable chain_sig : string;  (** outbound chain signatures *)
  mutable gate_gen : int;
      (** {!Xbgp.Vmm.generation} at the last conversion-cache gate sync;
          -1 forces the first dispatch to sync *)
  prov : (Bgp.Prefix.t * int, Obs.Provenance.t) Hashtbl.t;
      (** import half of the provenance record, keyed by (prefix, source
          peer index; -1 = local). Decision disposal is computed on
          demand against the live Loc-RIB, never stored. *)
  last_prov : (Bgp.Prefix.t, Obs.Provenance.t) Hashtbl.t;
      (** last reject/withdraw record per prefix — what [show
          provenance] answers once no candidate is left *)
  mutable recorder : Obs.Recorder.t option;
  mutable collector : Obs.Bmp.collector option;
      (** BMP-style monitoring mirror (RFC 7854-inspired) *)
  xtras : (string, bytes) Hashtbl.t;
  mutable log_fn : string -> unit;
  mutable base_ops : Xbgp.Host_intf.ops;
      (** the per-update-invariant ops closures, built once at [create]
          instead of per message (dispatch fast path) *)
  args_pool : Xbgp.Host_intf.Args.t array;
  mutable args_busy : int;  (** bitmask over [args_pool] slots *)
}

(* The decision view reads wire payloads on demand — BIRD's profile. *)
let decision_view : route Rib.Decision.view =
  {
    local_pref = (fun r -> Eattr.local_pref r.attrs);
    as_path_len = (fun r -> r.attrs.path_len);
    origin = (fun r -> Eattr.origin r.attrs);
    med = (fun r -> Eattr.med r.attrs);
    neighbor_as = (fun r -> Eattr.neighbor_as r.attrs);
    is_ebgp = (fun r -> r.src_type = src_ebgp);
    igp_cost = (fun r -> r.igp_cost);
    originator_id =
      (fun r ->
        match Eattr.originator_id r.attrs with
        | 0 -> r.src_router_id
        | oid -> oid);
    cluster_list_len = (fun r -> Eattr.cluster_list_len r.attrs);
    peer_addr = (fun r -> r.src_addr);
  }

let peer_info t (p : peer) : Xbgp.Host_intf.peer_info =
  {
    peer_type =
      (if p.peer_type = src_ebgp then Xbgp.Api.ebgp_session
       else Xbgp.Api.ibgp_session);
    peer_as = p.conf.remote_as;
    peer_router_id = Session.Fsm.peer_id p.session;
    peer_addr = p.conf.remote_addr;
    local_as = t.config.local_as;
    local_router_id = t.config.router_id;
    cluster_id = t.config.cluster_id;
    rr_client = p.conf.rr_client;
  }

(* forward declaration knot: base_ops needs route injection, which needs
   the outbound machinery defined below *)
let rib_add_hook :
    (t -> addr:int -> len:int -> nexthop:int -> bool) ref =
  ref (fun _ ~addr:_ ~len:_ ~nexthop:_ -> false)

let make_base_ops t =
  {
    Xbgp.Host_intf.null_ops with
    get_xtra = (fun key -> Hashtbl.find_opt t.xtras key);
    rib_add = (fun ~addr ~len ~nexthop -> !rib_add_hook t ~addr ~len ~nexthop);
    log = (fun m -> t.log_fn (t.config.name ^ ": " ^ m));
  }

(* Reusable argument buffers for [Vmm.run]: a dispatch borrows a parked
   buffer and returns it when the run ends. Dispatches nest — a rib_add
   helper can originate, propagate and re-enter [Vmm.run] while the
   outer run still reads its arguments — so a small pool with a busy
   bitmask hands each nesting level its own buffer, allocating fresh
   only past the pool's depth. *)
let borrow_args t =
  let n = Array.length t.args_pool in
  let rec go i =
    if i >= n then Xbgp.Host_intf.Args.create ()
    else if t.args_busy land (1 lsl i) = 0 then begin
      t.args_busy <- t.args_busy lor (1 lsl i);
      t.args_pool.(i)
    end
    else go (i + 1)
  in
  go 0

let release_args t a =
  Xbgp.Host_intf.Args.clear a;
  let n = Array.length t.args_pool in
  let rec go i =
    if i < n then
      if t.args_pool.(i) == a then
        t.args_busy <- t.args_busy land lnot (1 lsl i)
      else go (i + 1)
  in
  go 0

(* Keep the global conversion-cache gate in sync with whether any
   extension is attached (one integer compare per dispatch) — the
   BIRD-side mirror of the FRR daemon's gate sync: the pure-native
   baseline must not pay for memos nothing can read, and instances
   sharing the global cache re-assert their own state before
   dispatching (last writer wins, single-threaded runtime). *)
let refresh_cache_gate t =
  let gen = match t.vmm with Some v -> Xbgp.Vmm.generation v | None -> 0 in
  if gen <> t.gate_gen then begin
    (* the per-set memos are written without synchronization, so a
       sharded daemon keeps the gate down: worker dispatches convert
       fresh instead of racing on the memo fields *)
    Eattr.set_cache_gate
      (t.config.shards = 1
      &&
      match t.vmm with
      | Some v -> Xbgp.Vmm.has_any_attachment v
      | None -> false);
    (* a chain change may alter the BGP_DECISION behaviour hidden inside
       the Loc-RIB's compare closure: drop the incumbent fast path until
       each prefix has re-selected in full *)
    Shard.Sharded_loc.invalidate_best t.loc;
    t.gate_gen <- gen
  end

let vmm_run ?(shard = 0) t point ~ops ~args ~default =
  refresh_cache_gate t;
  match t.vmm with
  | None -> default ()
  | Some vmm -> Xbgp.Vmm.run ~shard vmm point ~ops ~args ~default

let set_prefix_arg b p =
  Bytes.set_int32_be b 0 (Int32.of_int (Bgp.Prefix.addr p));
  Bytes.set_uint8 b 4 (Bgp.Prefix.len p)

let prefix_arg p =
  let b = Bytes.create 5 in
  set_prefix_arg b p;
  b

let source_arg (r : route) =
  Xbgp.Host_intf.source_to_bytes
    {
      src_peer_type = r.src_type;
      src_router_id = r.src_router_id;
      src_addr = r.src_addr;
      src_rr_client = r.src_rr_client;
      src_is_local = r.src = -1;
    }

(* The thin BIRD-side adapter: eattrs are already in wire form. *)
let route_ops t ~peer ~(route_ref : route ref) =
  {
    t.base_ops with
    Xbgp.Host_intf.peer_info =
      (fun () -> Option.map (fun p -> peer_info t p) peer);
    nexthop =
      (fun () ->
        let nh = Eattr.next_hop !route_ref.attrs in
        Some (nh, t.config.igp_metric nh));
    get_attr = (fun code -> Eattr.get_tlv !route_ref.attrs code);
    set_attr =
      (fun tlv ->
        match Eattr.set_tlv !route_ref.attrs tlv with
        | attrs ->
          route_ref := { !route_ref with attrs };
          true
        | exception Invalid_argument _ -> false);
    remove_attr =
      (fun code ->
        route_ref :=
          { !route_ref with attrs = Eattr.remove_code code !route_ref.attrs };
        true);
  }

(* The BGP_DECISION insertion point (circle 3 of Fig. 2): extension
   bytecode may compare two candidate routes ahead of the native
   RFC 4271 tie-breaking; a tie (or fault) falls back to it. *)
let candidate_arg t (r : route) =
  ignore t;
  Xbgp.Host_intf.candidate_to_bytes
    {
      Xbgp.Host_intf.cd_local_pref = Eattr.local_pref r.attrs;
      cd_as_path_len = r.attrs.path_len;
      cd_origin = Eattr.origin r.attrs;
      cd_med = Eattr.med r.attrs;
      cd_igp_metric = r.igp_cost;
      cd_originator_id =
        (match Eattr.originator_id r.attrs with
        | 0 -> r.src_router_id
        | oid -> oid);
      cd_peer_addr = r.src_addr;
      cd_is_ebgp = r.src_type = src_ebgp;
    }

(* [shard] is the Loc-RIB slice asking: decision dispatches run on that
   slice's VM shard, so a per-shard decision map stays partitioned by
   prefix just like the filter points' maps. *)
let decision_compare t vmm ~shard a b =
  Telemetry.Counter.inc t.probes.c_decisions;
  if Xbgp.Vmm.has_attachment vmm Xbgp.Api.Bgp_decision then begin
    let args = borrow_args t in
    Xbgp.Host_intf.Args.set args Xbgp.Api.arg_candidate_a (candidate_arg t a);
    Xbgp.Host_intf.Args.set args Xbgp.Api.arg_candidate_b (candidate_arg t b);
    let verdict =
      Xbgp.Vmm.run ~shard vmm Xbgp.Api.Bgp_decision ~ops:t.base_ops ~args
        ~default:(fun () -> Xbgp.Api.decision_tie)
    in
    release_args t args;
    if verdict = Xbgp.Api.decision_first then -1
    else if verdict = Xbgp.Api.decision_second then 1
    else Rib.Decision.compare decision_view a b
  end
  else Rib.Decision.compare decision_view a b

(* --- provenance and monitoring mirror (same contract as the FRR-like
   host: records carry no counters or timestamps, so both daemons and
   all dispatch paths produce equal records for the same route) --- *)

let src_label t idx =
  if idx < 0 then "local"
  else
    let p = t.peers.(idx) in
    Printf.sprintf "peer %s (AS %d)" p.conf.pname p.conf.remote_as

(* Read the import chain's execution trace immediately after the
   dispatch: the VMM keeps only the last dispatch per point, and the
   propagate step below re-enters it for the outbound chain. *)
let import_trace ?(shard = 0) t =
  match t.vmm with
  | None -> []
  | Some vmm -> (
    match Xbgp.Vmm.last_trace ~shard vmm Xbgp.Api.Bgp_inbound_filter with
    | Some steps -> steps
    | None -> [])

let chain_decided (chain : Obs.Provenance.step list) =
  match List.rev chain with
  | last :: _ ->
    last.Obs.Provenance.outcome <> "next()"
    && last.Obs.Provenance.outcome <> "fault"
  | [] -> false

let import_verdict chain ~accepted =
  let base = if accepted then "accepted" else "rejected" in
  if chain_decided chain then base else base ^ " (native)"

(* Decision-process disposal computed on demand against the live
   Loc-RIB; runner-up ranking uses the native RFC 4271 order and never
   dispatches the BGP_DECISION chain (explaining a route must not
   perturb it) — an attached decision extension is reported as
   [Xprog_decided]. *)
let decision_info t prefix ~src :
    Obs.Provenance.decision option * Obs.Provenance.status =
  match Shard.Sharded_loc.best_with_peer t.loc prefix with
  | None -> (None, Obs.Provenance.Withdrawn)
  | Some (bpeer, best) ->
    let cands = Shard.Sharded_loc.candidates t.loc prefix in
    let others = List.filter (fun (p, _) -> p <> bpeer) cands in
    let xprog =
      match t.vmm with
      | Some vmm -> Xbgp.Vmm.has_attachment vmm Xbgp.Api.Bgp_decision
      | None -> false
    in
    if src = bpeer then
      match others with
      | [] -> (Some Obs.Provenance.Only_candidate, Obs.Provenance.Installed)
      | first :: rest ->
        let rup, ru =
          List.fold_left
            (fun (bp, br) (p, r) ->
              if Rib.Decision.compare decision_view r br < 0 then (p, r)
              else (bp, br))
            first rest
        in
        let d =
          if xprog then
            Obs.Provenance.Xprog_decided { runner_up = src_label t rup }
          else
            let step = Rib.Decision.deciding_step decision_view best ru in
            Obs.Provenance.Best
              {
                runner_up = src_label t rup;
                step;
                step_name = Rib.Decision.step_name step;
              }
        in
        (Some d, Obs.Provenance.Installed)
    else
      let d =
        if xprog then
          Some (Obs.Provenance.Xprog_decided { runner_up = src_label t bpeer })
        else
          match List.assoc_opt src cands with
          | None -> None
          | Some r ->
            let step = Rib.Decision.deciding_step decision_view best r in
            Some
              (Obs.Provenance.Shadowed
                 {
                   best = src_label t bpeer;
                   step;
                   step_name = Rib.Decision.step_name step;
                 })
      in
      (d, Obs.Provenance.Candidate)

let assemble_prov t prefix (stored : Obs.Provenance.t) ~src =
  let decision, status = decision_info t prefix ~src in
  { stored with Obs.Provenance.decision; status }

let import_record t prefix ~src ~chain ~import ~status : Obs.Provenance.t =
  {
    Obs.Provenance.prefix = Bgp.Prefix.to_string prefix;
    ingress = src_label t src;
    chain;
    import;
    decision = None;
    status;
  }

let note_gone t prefix ~src (pr : Obs.Provenance.t) =
  Hashtbl.remove t.prov (prefix, src);
  Hashtbl.replace t.last_prov prefix pr

let record_route_event t kind prefix (pr : Obs.Provenance.t) =
  match t.recorder with
  | None -> ()
  | Some rc ->
    Obs.Recorder.record rc kind
      [
        ("daemon", t.config.name);
        ("prefix", Bgp.Prefix.to_string prefix);
        ("prov", Obs.Provenance.summary pr);
      ]

let bmp_peer (p : peer) : Obs.Bmp.peer =
  {
    Obs.Bmp.addr = p.conf.remote_addr;
    asn = p.conf.remote_as;
    bgp_id = Session.Fsm.peer_id p.session;
  }

let mirror t frame =
  match t.collector with
  | None -> ()
  | Some col -> Obs.Bmp.receive col frame

(* --- native policies --- *)

let native_import t (route_ref : route ref) prefix peer =
  let r = !route_ref in
  let reject = ref false in
  if t.config.native_rr && peer.peer_type = src_ibgp then begin
    if Eattr.originator_id r.attrs = t.config.router_id then reject := true;
    (match Eattr.find_code Bgp.Attr.code_cluster_list r.attrs with
    | Some e ->
      let n = String.length e.payload / 4 in
      for i = 0 to n - 1 do
        if Eattr.read_u32 e.payload (4 * i) = t.config.cluster_id then
          reject := true
      done
    | None -> ())
  end;
  if !reject then Xbgp.Api.filter_reject
  else begin
    (match t.config.native_ov with
    | Some store ->
      let origin = Option.value ~default:0 (Eattr.origin_as r.attrs) in
      let tag =
        match Rpki.Store_hash.validate store prefix origin with
        | Rpki.Roa.Valid ->
          Telemetry.Counter.inc t.probes.c_roa_valid;
          ov_community_valid
        | Rpki.Roa.Invalid ->
          Telemetry.Counter.inc t.probes.c_roa_invalid;
          ov_community_invalid
        | Rpki.Roa.Not_found ->
          Telemetry.Counter.inc t.probes.c_roa_notfound;
          ov_community_notfound
      in
      route_ref := { r with attrs = Eattr.append_community r.attrs tag }
    | None -> ());
    Xbgp.Api.filter_accept
  end

let native_export t (route_ref : route ref) (target : peer) =
  let r = !route_ref in
  if r.src_type = src_ibgp && target.peer_type = src_ibgp then
    if t.config.native_rr && (r.src_rr_client || target.conf.rr_client) then begin
      let attrs = r.attrs in
      let attrs =
        if Eattr.originator_id attrs = 0 then
          Eattr.set_eattr attrs
            {
              code = Bgp.Attr.code_originator_id;
              flags = Bgp.Attr.flag_optional;
              payload = Eattr.u32_payload r.src_router_id;
            }
        else attrs
      in
      let attrs = Eattr.prepend_cluster attrs t.config.cluster_id in
      route_ref := { r with attrs };
      Xbgp.Api.filter_accept
    end
    else Xbgp.Api.filter_reject
  else Xbgp.Api.filter_accept

let canonicalize t (r : route) (target : peer) =
  let attrs = r.attrs in
  if target.peer_type = src_ebgp then begin
    let attrs = Eattr.prepend_as attrs t.config.local_as in
    let attrs =
      Eattr.set_eattr attrs
        {
          code = Bgp.Attr.code_next_hop;
          flags = Bgp.Attr.flag_transitive;
          payload = Eattr.u32_payload t.config.local_addr;
        }
    in
    let attrs = Eattr.remove_code Bgp.Attr.code_local_pref attrs in
    (* MED is meant for the neighbouring AS but is not propagated beyond
       it: strip it only from eBGP-learned routes *)
    let attrs =
      if r.src_type = src_ebgp then
        Eattr.remove_code Bgp.Attr.code_med attrs
      else attrs
    in
    let attrs = Eattr.remove_code Bgp.Attr.code_originator_id attrs in
    Eattr.remove_code Bgp.Attr.code_cluster_list attrs
  end
  else begin
    let attrs =
      if r.src_type = src_ibgp then attrs
      else
        Eattr.set_eattr attrs
          {
            code = Bgp.Attr.code_next_hop;
            flags = Bgp.Attr.flag_transitive;
            payload = Eattr.u32_payload t.config.local_addr;
          }
    in
    Eattr.set_eattr attrs
      {
        code = Bgp.Attr.code_local_pref;
        flags = Bgp.Attr.flag_transitive;
        payload = Eattr.u32_payload (Eattr.local_pref attrs);
      }
  end

(* --- outbound machinery --- *)

let pending_list tbl peer =
  match Hashtbl.find_opt tbl peer with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace tbl peer l;
    l

(* A withdrawal supersedes any advertisement of the same prefix still
   sitting in the peer's pending queue. Flush emits withdrawals before
   advertisements, so a stale queued advertisement would be delivered
   AFTER the withdrawal that semantically follows it — the receiver
   would keep a candidate this side's adj-RIB-out no longer tracks, and
   no later event would ever correct it (path hunting then "converges"
   onto ghost routes). *)
let purge_pending_adv t peer_idx prefix =
  match Hashtbl.find_opt t.pending_adv peer_idx with
  | Some l ->
    l := List.filter (fun (p, _) -> Bgp.Prefix.compare p prefix <> 0) !l
  | None -> ()

(* RFC 4271 §4: both export paths frame through [split_update_raw], so a
   prefix list (or an attribute block grown by an encode-point
   extension) can never push a frame past the 4096-byte maximum. *)
let withdrawal_frames prefixes =
  Bgp.Message.split_update_raw ~withdrawn:prefixes ~attr_bytes:Bytes.empty
    ~nlri:[]

let rec schedule_flush t =
  if not t.flush_scheduled then begin
    t.flush_scheduled <- true;
    Netsim.Sched.after t.sched 0 (fun () ->
        t.flush_scheduled <- false;
        flush t)
  end

and flush t =
  if t.config.update_groups then flush_groups t
  else
    Array.iter
      (fun peer ->
        if Session.Fsm.is_established peer.session then begin
          (match Hashtbl.find_opt t.pending_wd peer.idx with
          | Some ({ contents = _ :: _ } as l) ->
            let prefixes = List.rev !l in
            l := [];
            send_withdrawals t peer prefixes
          | _ -> ());
          match Hashtbl.find_opt t.pending_adv peer.idx with
          | Some ({ contents = _ :: _ } as l) ->
            let advs = List.rev !l in
            l := [];
            send_advertisements t peer advs
          | _ -> ()
        end)
      t.peers

(* The fan-out fast path: drain each group's queued events as flush
   classes (members whose pending streams are identical), encode each
   class's frames once, and share the buffers across every member
   session. A class of one degrades to exactly the per-peer baseline. *)
and flush_groups t =
  (* Drain every group's flush classes first: the class list (in group
     order) is the deterministic work-list both the sequential and the
     offloaded encode path walk. Classes without a live session are
     dropped before encoding so the offloaded path never runs an encode
     dispatch the sequential daemon would have skipped. *)
  let classes = ref [] in
  Rib.Update_group.iter_groups t.ugroups (fun g ->
      List.iter
        (fun (members, wds, advs) ->
          let sessions =
            List.filter_map
              (fun m ->
                let p = t.peers.(m) in
                if Session.Fsm.is_established p.session then Some p.session
                else None)
              members
          in
          if sessions <> [] then
            classes := (members, wds, advs, sessions) :: !classes)
        (Rib.Update_group.take_classes g));
  let classes = Array.of_list (List.rev !classes) in
  let send sessions frames =
    List.iter
      (fun frame ->
        let sent = Session.Fsm.send_raw_shared sessions frame in
        Telemetry.Counter.add t.probes.c_updates_tx sent;
        Rib.Update_group.note_fanout_saved t.ugroups
          ((sent - 1) * Bytes.length frame))
      frames
  in
  let offload =
    match t.pool with
    | Some pool when Array.length classes > 1 -> (
      match t.vmm with
      | Some vmm ->
        if Xbgp.Vmm.shard_parallel_safe vmm Xbgp.Api.Bgp_encode_message then
          Some pool
        else None
      | None -> Some pool)
    | _ -> None
  in
  match offload with
  | Some pool ->
    (* UPDATE encoding (attribute serialization + the encode-point
       dispatch + 4096-byte framing) fans out across the worker pool,
       one class per job; sending stays on this domain, in class order.
       [parallel_map] places item [i] on worker [i mod workers] — the
       dispatch runs on that worker's VM shard, so each shard's VMs
       still see a single driving domain. *)
    refresh_cache_gate t;
    let w = Shard.Runtime.workers pool in
    let indexed = Array.mapi (fun i c -> (i, c)) classes in
    let encoded =
      Shard.Runtime.parallel_map pool indexed
        (fun (i, (members, wds, advs, _sessions)) ->
          let shard = i mod w in
          (match t.vmm with
          | Some vmm -> Xbgp.Vmm.begin_events vmm ~shard
          | None -> ());
          let wd_frames = withdrawal_frames wds in
          let adv_frames =
            if advs = [] then []
            else
              advertisement_frames ~shard ~isolated:true t
                t.peers.(List.hd members)
                advs
          in
          let events =
            match t.vmm with
            | Some vmm -> Xbgp.Vmm.take_events vmm ~shard
            | None -> []
          in
          (wd_frames, adv_frames, events))
    in
    Array.iteri
      (fun i (wd_frames, adv_frames, events) ->
        (match t.vmm with
        | Some vmm -> Xbgp.Vmm.replay_events vmm events
        | None -> ());
        let _, _, _, sessions = classes.(i) in
        send sessions wd_frames;
        send sessions adv_frames)
      encoded
  | None ->
    Array.iter
      (fun (members, wds, advs, sessions) ->
        send sessions (withdrawal_frames wds);
        if advs <> [] then
          send sessions
            (advertisement_frames t t.peers.(List.hd members) advs))
      classes

and send_withdrawals t peer prefixes =
  List.iter
    (fun frame ->
      Telemetry.Counter.inc t.probes.c_updates_tx;
      Session.Fsm.send_raw peer.session frame)
    (withdrawal_frames prefixes)

(* Build the UPDATE frames advertising [advs] towards [peer]. The
   grouped path calls this once per flush class with a representative
   member — sound because peers only share a group when the outbound
   chains pass [Vmm.group_invariant], so the bytecode provably never
   observes which peer the ops record answers for. *)
(* [isolated] marks a call running on a worker domain: it must not touch
   the daemon's argument-buffer pool or the cache-gate bookkeeping, and
   its encode dispatch is pinned to [shard]'s VMs. *)
and advertisement_frames ?(shard = 0) ?(isolated = false) t peer advs =
  (* BIRD groups by the serialized attribute bytes themselves *)
  let groups : (string, (Eattr.set * Bgp.Prefix.t list ref)) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun (p, attrs) ->
      let key = Bytes.to_string (Eattr.encode_known attrs) in
      match Hashtbl.find_opt groups key with
      | Some (_, l) -> l := p :: !l
      | None ->
        Hashtbl.replace groups key (attrs, ref [ p ]);
        order := key :: !order)
    advs;
  List.concat_map
    (fun key ->
      let attrs, prefixes_ref = Hashtbl.find groups key in
      let prefixes = List.rev !prefixes_ref in
      let buf = Buffer.create 64 in
      Buffer.add_string buf key;
      let ops =
        {
          t.base_ops with
          Xbgp.Host_intf.peer_info = (fun () -> Some (peer_info t peer));
          get_attr = (fun code -> Eattr.get_tlv attrs code);
          write_buf =
            (fun b ->
              Buffer.add_bytes buf b;
              true);
        }
      in
      let args =
        if isolated then Xbgp.Host_intf.Args.create () else borrow_args t
      in
      Xbgp.Host_intf.Args.set args Xbgp.Api.arg_update_payload
        (Buffer.to_bytes buf);
      (if isolated then
         match t.vmm with
         | None -> ()
         | Some vmm ->
           ignore
             (Xbgp.Vmm.run ~shard vmm Xbgp.Api.Bgp_encode_message ~ops ~args
                ~default:(fun () -> Xbgp.Api.ret_ok))
       else
         ignore
           (vmm_run ~shard t Xbgp.Api.Bgp_encode_message ~ops ~args
              ~default:(fun () -> Xbgp.Api.ret_ok)));
      if not isolated then release_args t args;
      let attr_bytes = Buffer.to_bytes buf in
      Bgp.Message.split_update_raw ~withdrawn:[] ~attr_bytes ~nlri:prefixes)
    (List.rev !order)

and send_advertisements t peer advs =
  List.iter
    (fun frame ->
      Telemetry.Counter.inc t.probes.c_updates_tx;
      Session.Fsm.send_raw peer.session frame)
    (advertisement_frames t peer advs)

and export t (target : peer) prefix (r : route) : Eattr.set option =
  if r.src = target.idx then None
  else begin
    let route_ref = ref r in
    let ops = route_ops t ~peer:(Some target) ~route_ref in
    let args = borrow_args t in
    Xbgp.Host_intf.Args.set args Xbgp.Api.arg_prefix (prefix_arg prefix);
    Xbgp.Host_intf.Args.set args Xbgp.Api.arg_source (source_arg r);
    let verdict =
      (* outbound dispatches stay on this domain, but still run on the
         prefix's owning VM shard so a per-shard outbound map keeps its
         keys partitioned exactly like the inbound points' maps *)
      vmm_run
        ~shard:(Shard.Sharded_loc.shard_of t.loc prefix)
        t Xbgp.Api.Bgp_outbound_filter ~ops ~args
        ~default:(fun () -> native_export t route_ref target)
    in
    release_args t args;
    if verdict = Xbgp.Api.filter_accept then
      Some (canonicalize t !route_ref target)
    else begin
      Telemetry.Counter.inc t.probes.c_export_rejected;
      None
    end
  end

(* Which update group a peer belongs in: everything the export path can
   observe about the peer. [native_export] and [canonicalize] read only
   the peer type and reflection role; the xprog chains are covered by
   their signatures and may not read peer identity at all when
   [t.groupable] holds. Peer-dependent chains degrade every peer to a
   singleton group, which flows through the same machinery as the
   per-peer baseline. *)
and group_key t peer =
  if not t.groupable then Printf.sprintf "solo:%d" peer.idx
  else
    Printf.sprintf "pt%d:rr%b:%s" peer.peer_type peer.conf.rr_client
      t.chain_sig

(* Re-derive the partition key when the attached chains changed (one
   integer compare per propagate — [Vmm.generation] bumps only on
   attach/detach). Queued events are drained under the old partition
   first; the re-key itself emits nothing, like the baseline. *)
and refresh_grouping t =
  let gen = match t.vmm with Some v -> Xbgp.Vmm.generation v | None -> 0 in
  if gen <> t.group_gen then begin
    flush_groups t;
    (match t.vmm with
    | Some vmm ->
      t.groupable <-
        Xbgp.Vmm.group_invariant vmm Xbgp.Api.Bgp_outbound_filter
          ~allow_write_buf:false
        && Xbgp.Vmm.group_invariant vmm Xbgp.Api.Bgp_encode_message
             ~allow_write_buf:true;
      t.chain_sig <-
        Xbgp.Vmm.chain_signature vmm Xbgp.Api.Bgp_outbound_filter
        ^ "|"
        ^ Xbgp.Vmm.chain_signature vmm Xbgp.Api.Bgp_encode_message
    | None ->
      t.groupable <- true;
      t.chain_sig <- "");
    t.group_gen <- gen;
    Rib.Update_group.rekey t.ugroups ~desired:(fun m ->
        group_key t t.peers.(m))
  end

(* One export evaluation per group instead of per peer: run the filter
   chain for a representative member and let the engine expand the
   result into per-member transitions. *)
and export_to_group t g prefix (r : route) =
  let members = Rib.Update_group.members g in
  match List.find_opt (fun m -> m <> r.src) members with
  | None -> Rib.Update_group.route_update t.ugroups g prefix None
  | Some rep ->
    let entry =
      match export t t.peers.(rep) prefix r with
      | Some attrs ->
        let skip = if List.mem r.src members then r.src else -1 in
        Some (attrs, skip)
      | None ->
        (* keep the rejection counter peer-accurate: the baseline counts
           one rejection per eligible member *)
        let eligible =
          List.length members - (if List.mem r.src members then 1 else 0)
        in
        Telemetry.Counter.add t.probes.c_export_rejected (eligible - 1);
        None
    in
    Rib.Update_group.route_update t.ugroups g prefix entry

and propagate t prefix (change : route Rib.Loc_rib.change) =
  if t.config.update_groups then begin
    refresh_grouping t;
    match change with
    | Rib.Loc_rib.Unchanged -> ()
    | Rib.Loc_rib.Withdrawn ->
      Rib.Update_group.iter_groups t.ugroups (fun g ->
          Rib.Update_group.route_update t.ugroups g prefix None);
      schedule_flush t
    | Rib.Loc_rib.New_best r ->
      Rib.Update_group.iter_groups t.ugroups (fun g ->
          export_to_group t g prefix r);
      schedule_flush t
  end
  else
    match change with
    | Rib.Loc_rib.Unchanged -> ()
    | Rib.Loc_rib.Withdrawn ->
      Array.iter
        (fun peer ->
          match Rib.Adj_rib.clear t.adj_out ~peer:peer.idx prefix with
          | Some _ ->
            purge_pending_adv t peer.idx prefix;
            let l = pending_list t.pending_wd peer.idx in
            l := prefix :: !l
          | None -> ())
        t.peers;
      schedule_flush t
    | Rib.Loc_rib.New_best r ->
      Array.iter
        (fun peer ->
          if Session.Fsm.is_established peer.session && peer.synced then
            advertise_to t peer prefix r)
        t.peers;
      schedule_flush t

and advertise_to t peer prefix r =
  match export t peer prefix r with
  | Some attrs ->
    let previous = Rib.Adj_rib.find t.adj_out ~peer:peer.idx prefix in
    let same =
      match previous with Some p -> Eattr.equal p attrs | None -> false
    in
    if not same then begin
      ignore (Rib.Adj_rib.set t.adj_out ~peer:peer.idx prefix attrs);
      let l = pending_list t.pending_adv peer.idx in
      l := (prefix, attrs) :: !l
    end
  | None -> (
    match Rib.Adj_rib.clear t.adj_out ~peer:peer.idx prefix with
    | Some _ ->
      purge_pending_adv t peer.idx prefix;
      let l = pending_list t.pending_wd peer.idx in
      l := prefix :: !l
    | None -> ())

(* --- inbound processing --- *)

let withdraw_prefix t peer prefix =
  match Rib.Adj_rib.clear t.adj_in ~peer:peer.idx prefix with
  | Some _ ->
    Telemetry.Counter.inc t.probes.c_withdrawals_rx;
    let pr =
      import_record t prefix ~src:peer.idx ~chain:[] ~import:"withdrawn"
        ~status:Obs.Provenance.Withdrawn
    in
    note_gone t prefix ~src:peer.idx pr;
    let change = Shard.Sharded_loc.update t.loc ~peer:peer.idx prefix None in
    record_route_event t Obs.Recorder.Route_withdraw prefix pr;
    propagate t prefix change
  | None -> ()

let accept_route t peer prefix (r : route) ~chain ~import =
  Telemetry.Counter.inc t.probes.c_routes_in;
  let existed =
    t.recorder <> None
    && Rib.Adj_rib.find t.adj_in ~peer:peer.idx prefix <> None
  in
  ignore (Rib.Adj_rib.set t.adj_in ~peer:peer.idx prefix r);
  let stored =
    import_record t prefix ~src:peer.idx ~chain ~import
      ~status:Obs.Provenance.Candidate
  in
  Hashtbl.replace t.prov (prefix, peer.idx) stored;
  let change = Shard.Sharded_loc.update t.loc ~peer:peer.idx prefix (Some r) in
  (match t.recorder with
  | None -> ()
  | Some _ ->
    record_route_event t
      (if existed then Obs.Recorder.Route_replace else Obs.Recorder.Route_add)
      prefix
      (assemble_prov t prefix stored ~src:peer.idx));
  propagate t prefix change

let reject_route t peer prefix ~chain ~import =
  Telemetry.Counter.inc t.probes.c_import_rejected;
  withdraw_prefix t peer prefix;
  (* the rejection supersedes the withdrawal record the clear leaves *)
  Hashtbl.replace t.last_prov prefix
    (import_record t prefix ~src:peer.idx ~chain ~import
       ~status:Obs.Provenance.Rejected)

(* The legacy per-prefix path (kept verbatim for the dispatch-bench
   baseline; [config.batch_updates = false]). *)
let learn_route t peer prefix (route : route) =
  let route_ref = ref route in
  let ops = route_ops t ~peer:(Some peer) ~route_ref in
  let shard = Shard.Sharded_loc.shard_of t.loc prefix in
  let verdict =
    vmm_run ~shard t Xbgp.Api.Bgp_inbound_filter ~ops
      ~args:
        (Xbgp.Host_intf.Args.of_list
           [
             (Xbgp.Api.arg_prefix, prefix_arg prefix);
             (Xbgp.Api.arg_source, source_arg route);
           ])
      ~default:(fun () -> native_import t route_ref prefix peer)
  in
  let chain = import_trace ~shard t in
  if verdict = Xbgp.Api.filter_accept then
    accept_route t peer prefix !route_ref ~chain
      ~import:(import_verdict chain ~accepted:true)
  else
    reject_route t peer prefix ~chain
      ~import:(import_verdict chain ~accepted:false)

(* Batched NLRI processing: every prefix of one UPDATE shares the same
   attribute set, so share the eattr view and the dispatch plumbing
   across the batch. *)
let learn_routes t peer prefixes (route : route) =
  match prefixes with
  | [] -> ()
  | first :: _ ->
    let has_inbound_ext =
      match t.vmm with
      | Some vmm -> Xbgp.Vmm.has_attachment vmm Xbgp.Api.Bgp_inbound_filter
      | None -> false
    in
    let batchable_ext =
      (not has_inbound_ext)
      ||
      match t.vmm with
      | Some vmm ->
        Xbgp.Vmm.batch_invariant vmm Xbgp.Api.Bgp_inbound_filter
          ~variant_args:[ Xbgp.Api.arg_prefix ]
      | None -> true
    in
    if batchable_ext && t.config.native_ov = None then begin
      (* Fast path: no prefix-dependent policy anywhere on the import
         chain. The RFC 4456 loop checks in [native_import] read only
         the shared attributes, and any attached bytecode provably
         never fetches the prefix argument and has no per-call state
         ([Vmm.batch_invariant]) — so one verdict (and one set of
         route-attribute edits) covers the whole NLRI list. *)
      let route_ref = ref route in
      let verdict =
        if has_inbound_ext then begin
          let ops = route_ops t ~peer:(Some peer) ~route_ref in
          let args = borrow_args t in
          Xbgp.Host_intf.Args.set args Xbgp.Api.arg_prefix (prefix_arg first);
          Xbgp.Host_intf.Args.set args Xbgp.Api.arg_source (source_arg route);
          let v =
            vmm_run t Xbgp.Api.Bgp_inbound_filter ~ops ~args
              ~default:(fun () -> native_import t route_ref first peer)
          in
          release_args t args;
          v
        end
        else native_import t route_ref first peer
      in
      (* one trace covers the whole batch — [batch_invariant] is exactly
         the proof that per-prefix dispatches would have replayed it *)
      let chain = if has_inbound_ext then import_trace t else [] in
      let accepted = verdict = Xbgp.Api.filter_accept in
      let import = import_verdict chain ~accepted in
      if accepted then
        List.iter
          (fun prefix -> accept_route t peer prefix !route_ref ~chain ~import)
          prefixes
      else
        List.iter
          (fun prefix -> reject_route t peer prefix ~chain ~import)
          prefixes
    end
    else begin
      let parallel_ok =
        t.pool <> None
        && ((not has_inbound_ext)
           ||
           match t.vmm with
           | Some vmm ->
             Xbgp.Vmm.shard_parallel_safe vmm Xbgp.Api.Bgp_inbound_filter
           | None -> true)
      in
      match (t.pool, parallel_ok) with
      | Some pool, true when List.length prefixes > 1 ->
        (* The parallel import lane — see the FRR-like host for the
           full determinism argument. Workers run only the dispatch
           for the prefixes their shard owns (in NLRI order within the
           shard); every state transition happens afterwards on this
           domain in NLRI order, with staged recorder events replayed
           at each commit. *)
        refresh_cache_gate t;
        let arr = Array.of_list prefixes in
        let n = Array.length arr in
        let results = Array.make n None in
        let nshards = Shard.Runtime.workers pool in
        let buckets = Array.make nshards [] in
        for i = n - 1 downto 0 do
          let s = Shard.Sharded_loc.shard_of t.loc arr.(i) in
          buckets.(s) <- (i, arr.(i)) :: buckets.(s)
        done;
        Array.iteri
          (fun s items ->
            if items <> [] then
              Shard.Runtime.submit pool ~worker:s (fun () ->
                  let route_ref = ref route in
                  let ops = route_ops t ~peer:(Some peer) ~route_ref in
                  let src = source_arg route in
                  let pbuf = Bytes.create 5 in
                  let args = Xbgp.Host_intf.Args.create () in
                  Xbgp.Host_intf.Args.set args Xbgp.Api.arg_prefix pbuf;
                  Xbgp.Host_intf.Args.set args Xbgp.Api.arg_source src;
                  List.iter
                    (fun (i, prefix) ->
                      route_ref := route;
                      set_prefix_arg pbuf prefix;
                      (match t.vmm with
                      | Some vmm -> Xbgp.Vmm.begin_events vmm ~shard:s
                      | None -> ());
                      let verdict =
                        match t.vmm with
                        | Some vmm when has_inbound_ext ->
                          Xbgp.Vmm.run ~shard:s vmm Xbgp.Api.Bgp_inbound_filter
                            ~ops ~args ~default:(fun () ->
                              native_import t route_ref prefix peer)
                        | _ -> native_import t route_ref prefix peer
                      in
                      let chain =
                        if has_inbound_ext then import_trace ~shard:s t
                        else []
                      in
                      let events =
                        match t.vmm with
                        | Some vmm -> Xbgp.Vmm.take_events vmm ~shard:s
                        | None -> []
                      in
                      results.(i) <- Some (verdict, !route_ref, chain, events))
                    items))
          buckets;
        Shard.Runtime.barrier pool;
        t.par_batches <- t.par_batches + 1;
        Array.iteri
          (fun i result ->
            match result with
            | None -> ()
            | Some (verdict, rt, chain, events) ->
              (match t.vmm with
              | Some vmm -> Xbgp.Vmm.replay_events vmm events
              | None -> ());
              let prefix = arr.(i) in
              if verdict = Xbgp.Api.filter_accept then
                accept_route t peer prefix rt ~chain
                  ~import:(import_verdict chain ~accepted:true)
              else
                reject_route t peer prefix ~chain
                  ~import:(import_verdict chain ~accepted:false))
          results
      | _ ->
        (* The serial per-prefix lane (also the sharded daemon's
           fallback when the chain is not shard-parallel-safe): the ops
           record, the source argument and the argument buffer are
           hoisted out of the loop. The 5-byte prefix buffer is mutated
           in place between runs — safe because [get_arg] copies the
           payload into the VM heap. Dispatches still run on each
           prefix's owning VM shard, so per-shard map placement never
           depends on which lane ran. *)
        if t.pool <> None then t.seq_batches <- t.seq_batches + 1;
        let route_ref = ref route in
        let ops = route_ops t ~peer:(Some peer) ~route_ref in
        let src = source_arg route in
        let pbuf = Bytes.create 5 in
        let args = borrow_args t in
        Xbgp.Host_intf.Args.set args Xbgp.Api.arg_prefix pbuf;
        Xbgp.Host_intf.Args.set args Xbgp.Api.arg_source src;
        List.iter
          (fun prefix ->
            route_ref := route;
            set_prefix_arg pbuf prefix;
            let shard = Shard.Sharded_loc.shard_of t.loc prefix in
            let verdict =
              vmm_run ~shard t Xbgp.Api.Bgp_inbound_filter ~ops ~args
                ~default:(fun () -> native_import t route_ref prefix peer)
            in
            let chain = import_trace ~shard t in
            if verdict = Xbgp.Api.filter_accept then
              accept_route t peer prefix !route_ref ~chain
                ~import:(import_verdict chain ~accepted:true)
            else
              reject_route t peer prefix ~chain
                ~import:(import_verdict chain ~accepted:false))
          prefixes;
        release_args t args
    end

(* RFC 7606 treat-as-withdraw: NLRI announced without the mandatory
   ORIGIN / AS_PATH / NEXT_HOP attributes is withdrawn, not learned —
   keeping the eattr list free of half-formed routes that a record-based
   host would pad with defaults (and so diverge on). An extension at
   BGP_RECEIVE_MESSAGE may still supply the missing attribute first. *)
let mandatory_present (attrs : Bgp.Attr.t list) extra_tlvs =
  let codes =
    List.map Bgp.Attr.code attrs
    @ List.filter_map
        (fun tlv ->
          match Bgp.Attr.of_tlv tlv with
          | a -> Some (Bgp.Attr.code a)
          | exception Bgp.Attr.Parse_error _ -> None)
        extra_tlvs
  in
  List.mem Bgp.Attr.code_origin codes
  && List.mem Bgp.Attr.code_as_path codes
  && List.mem Bgp.Attr.code_next_hop codes

let on_update t peer (u : Bgp.Message.update) ~raw =
  Telemetry.Counter.inc t.probes.c_updates_rx;
  (* BMP-style route monitoring: mirror the UPDATE PDU verbatim, pre
     policy (RFC 7854 §5) *)
  if t.collector <> None then
    mirror t
      (Obs.Bmp.route_monitoring ~peer:(bmp_peer peer)
         ~ts_us:(Netsim.Sched.now t.sched)
         ~update:(Bytes.to_string raw));
  let extra_tlvs = ref [] in
  (* withdraw-only UPDATEs go through the point too (flap damping needs
     to see withdrawals; the point runs before they are processed);
     only truly empty messages — End-of-RIB markers — are skipped *)
  (if u.nlri <> [] || u.withdrawn <> [] then
     let body =
       Bytes.sub raw Bgp.Message.header_size
         (Bytes.length raw - Bgp.Message.header_size)
     in
     let ops =
       {
         t.base_ops with
         Xbgp.Host_intf.peer_info = (fun () -> Some (peer_info t peer));
         set_attr =
           (fun tlv ->
             extra_tlvs := tlv :: !extra_tlvs;
             true);
       }
     in
     let args = borrow_args t in
     Xbgp.Host_intf.Args.set args Xbgp.Api.arg_update_payload body;
     ignore
       (vmm_run t Xbgp.Api.Bgp_receive_message ~ops ~args
          ~default:(fun () -> Xbgp.Api.ret_ok));
     release_args t args);
  List.iter (fun p -> withdraw_prefix t peer p) u.withdrawn;
  if u.nlri <> [] && not (mandatory_present u.attrs (List.rev !extra_tlvs))
  then
    List.iter
      (fun p ->
        withdraw_prefix t peer p;
        Hashtbl.replace t.last_prov p
          (import_record t p ~src:peer.idx ~chain:[]
             ~import:
               "rejected: missing mandatory attribute (treat-as-withdraw)"
             ~status:Obs.Provenance.Rejected))
      u.nlri
  else if u.nlri <> [] then begin
    let attrs0 = Eattr.of_attrs u.attrs in
    let attrs0 =
      List.fold_left
        (fun acc tlv ->
          match Eattr.set_tlv acc tlv with
          | a -> a
          | exception Invalid_argument _ -> acc)
        attrs0 (List.rev !extra_tlvs)
    in
    (* RFC 4271: a route whose AS_PATH already contains our AS is
       unfeasible — an implicit withdrawal of any earlier route for the
       same NLRI from this peer. Silently ignoring it would keep the
       older advertisement alive after the sender switched to a looped
       path, and path hunting then locks onto ghost cycles. *)
    if
      peer.peer_type = src_ebgp && Eattr.contains_as attrs0 t.config.local_as
    then
      List.iter
        (fun p ->
          reject_route t peer p ~chain:[]
            ~import:"rejected: own AS in AS_PATH (eBGP loop)")
        u.nlri
    else begin
      let route =
        {
          attrs = attrs0;
          src = peer.idx;
          src_type = peer.peer_type;
          src_router_id = Session.Fsm.peer_id peer.session;
          src_addr = peer.conf.remote_addr;
          src_rr_client = peer.conf.rr_client;
          igp_cost = t.config.igp_metric (Eattr.next_hop attrs0);
        }
      in
      if t.config.batch_updates then learn_routes t peer u.nlri route
      else List.iter (fun p -> learn_route t peer p route) u.nlri
    end
  end

(* --- session lifecycle --- *)

let sync_peer t peer =
  if t.collector <> None then
    mirror t
      (Obs.Bmp.peer_up ~peer:(bmp_peer peer)
         ~ts_us:(Netsim.Sched.now t.sched)
         ~local_addr:t.config.local_addr ~local_asn:t.config.local_as
         ~local_bgp_id:t.config.router_id ~hold_time:t.config.hold_time);
  peer.synced <- true;
  if t.config.update_groups then begin
    refresh_grouping t;
    let g =
      Rib.Update_group.join t.ugroups ~peer:peer.idx ~key:(group_key t peer)
    in
    (* catch-up: one fresh export per Loc-RIB best, targeted at the
       joiner only — identical to a baseline initial sync, and
       self-healing for group entries dropped while nobody listened *)
    Shard.Sharded_loc.iter_best t.loc (fun prefix r ->
        match export t peer prefix r with
        | Some attrs ->
          let skip =
            if Rib.Update_group.is_member g r.src then r.src else -1
          in
          Rib.Update_group.catch_up_entry g prefix attrs ~skip
            ~member:peer.idx
        | None -> ())
  end
  else
    Shard.Sharded_loc.iter_best t.loc (fun prefix r -> advertise_to t peer prefix r);
  schedule_flush t

let on_close t peer =
  if t.collector <> None then
    mirror t
      (Obs.Bmp.peer_down ~peer:(bmp_peer peer)
         ~ts_us:(Netsim.Sched.now t.sched)
         ~reason:Obs.Bmp.reason_remote_no_notification);
  peer.synced <- false;
  if t.config.update_groups then
    Rib.Update_group.leave t.ugroups ~peer:peer.idx;
  (* a closed session must not leave stale queued frames behind — on
     re-establishment the initial sync re-sends the whole table *)
  (match Hashtbl.find_opt t.pending_adv peer.idx with
  | Some l -> l := []
  | None -> ());
  (match Hashtbl.find_opt t.pending_wd peer.idx with
  | Some l -> l := []
  | None -> ());
  let prefixes =
    let acc = ref [] in
    Rib.Adj_rib.iter_peer t.adj_in ~peer:peer.idx (fun p _ ->
        acc := p :: !acc);
    !acc
  in
  List.iter
    (fun prefix ->
      ignore (Rib.Adj_rib.clear t.adj_in ~peer:peer.idx prefix);
      let pr =
        import_record t prefix ~src:peer.idx ~chain:[]
          ~import:"withdrawn: session closed"
          ~status:Obs.Provenance.Withdrawn
      in
      note_gone t prefix ~src:peer.idx pr;
      let change = Shard.Sharded_loc.update t.loc ~peer:peer.idx prefix None in
      record_route_event t Obs.Recorder.Route_withdraw prefix pr;
      propagate t prefix change)
    prefixes;
  Rib.Adj_rib.drop_peer t.adj_out peer.idx

let create ?telemetry ?vmm ~sched (config : config)
    (peer_confs : peer_conf list) : t =
  (* share the VMM's registry unless the caller supplies one, so the
     whole deployment lands in a single export *)
  let tele =
    match telemetry with
    | Some t -> t
    | None -> (
      match vmm with
      | Some v -> Xbgp.Vmm.telemetry v
      | None -> Telemetry.create ~enabled:false ())
  in
  (match vmm with
  | Some v when config.shards > 1 && Xbgp.Vmm.shards v <> config.shards -> (
    match Xbgp.Vmm.set_shards v config.shards with
    | Ok () -> ()
    | Error e -> invalid_arg ("Bgpd.create: " ^ e))
  | _ -> ());
  let t =
    {
      config;
      sched;
      vmm;
      tele;
      probes = make_probes tele ~daemon:config.name ~impl:"bird" ~store:"hash";
      peers = [||];
      adj_in = Rib.Adj_rib.create ();
      adj_out = Rib.Adj_rib.create ();
      loc = Shard.Sharded_loc.create ~shards:config.shards decision_view;
      pool =
        (if config.shards > 1 then
           Some (Shard.Runtime.create ~workers:config.shards ())
         else None);
      par_batches = 0;
      seq_batches = 0;
      pending_adv = Hashtbl.create 8;
      pending_wd = Hashtbl.create 8;
      flush_scheduled = false;
      ugroups =
        Rib.Update_group.create ~telemetry:tele ~daemon:config.name
          ~equal:Eattr.equal ();
      group_gen = -1;
      groupable = false;
      chain_sig = "";
      gate_gen = -1;
      prov = Hashtbl.create 64;
      last_prov = Hashtbl.create 16;
      recorder = None;
      collector = None;
      xtras = Hashtbl.create 8;
      log_fn = ignore;
      base_ops = Xbgp.Host_intf.null_ops;
      args_pool = Array.init 4 (fun _ -> Xbgp.Host_intf.Args.create ());
      args_busy = 0;
    }
  in
  t.base_ops <- make_base_ops t;
  List.iter (fun (k, v) -> Hashtbl.replace t.xtras k v) config.xtras;
  t.peers <-
    Array.of_list
      (List.mapi
         (fun idx conf ->
           let peer_type =
             if conf.remote_as = config.local_as then src_ibgp else src_ebgp
           in
           let session_config =
             {
               Session.Fsm.local_as = config.local_as;
               local_id = config.router_id;
               peer_as = conf.remote_as;
               hold_time = config.hold_time;
             }
           in
           let rec peer =
             lazy
               {
                 idx;
                 conf;
                 peer_type;
                 session =
                   Session.Fsm.create ~telemetry:tele sched conf.port
                     session_config
                     {
                       on_update =
                         (fun u ~raw -> on_update t (Lazy.force peer) u ~raw);
                       on_established =
                         (fun () -> sync_peer t (Lazy.force peer));
                       on_close = (fun _ -> on_close t (Lazy.force peer));
                     };
                 synced = false;
               }
           in
           Lazy.force peer)
         peer_confs);
  (match vmm with
  | Some vmm ->
    (* bake each slice's shard index into its compare closure, so
       decision dispatches land on the VM shard owning the prefix *)
    for s = 0 to config.shards - 1 do
      Rib.Loc_rib.set_compare
        (Shard.Sharded_loc.slice t.loc s)
        (Some (fun a b -> decision_compare t vmm ~shard:s a b))
    done
  | None ->
    (* still count decision comparisons when no VMM is attached *)
    Shard.Sharded_loc.set_compare t.loc
      (Some
         (fun a b ->
           Telemetry.Counter.inc t.probes.c_decisions;
           Rib.Decision.compare decision_view a b)));
  t

let shutdown t =
  match t.pool with Some p -> Shard.Runtime.shutdown p | None -> ()

let start t =
  (match t.vmm with
  | Some vmm -> Xbgp.Vmm.run_init vmm ~ops:t.base_ops
  | None -> ());
  Array.iter (fun p -> Session.Fsm.start p.session) t.peers

let originate t prefix (attrs : Bgp.Attr.t list) =
  let route =
    {
      attrs = Eattr.of_attrs attrs;
      src = -1;
      src_type = src_local;
      src_router_id = t.config.router_id;
      src_addr = t.config.local_addr;
      src_rr_client = false;
      igp_cost = 0;
    }
  in
  let existed = t.recorder <> None && Hashtbl.mem t.prov (prefix, -1) in
  let stored =
    import_record t prefix ~src:(-1) ~chain:[]
      ~import:"accepted (local origination)" ~status:Obs.Provenance.Candidate
  in
  Hashtbl.replace t.prov (prefix, -1) stored;
  let change = Shard.Sharded_loc.update t.loc ~peer:(-1) prefix (Some route) in
  (match t.recorder with
  | None -> ()
  | Some _ ->
    record_route_event t
      (if existed then Obs.Recorder.Route_replace else Obs.Recorder.Route_add)
      prefix
      (assemble_prov t prefix stored ~src:(-1)));
  propagate t prefix change

(* the add_route_to_rib helper: inject a locally-sourced route *)
let () =
  rib_add_hook :=
    fun t ~addr ~len ~nexthop ->
      match Bgp.Prefix.v addr len with
      | prefix ->
        originate t prefix
          [
            Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Incomplete);
            Bgp.Attr.v (Bgp.Attr.As_path []);
            Bgp.Attr.v (Bgp.Attr.Next_hop nexthop);
          ];
        true
      | exception Invalid_argument _ -> false

let withdraw_local t prefix =
  if Hashtbl.mem t.prov (prefix, -1) then begin
    let pr =
      import_record t prefix ~src:(-1) ~chain:[] ~import:"withdrawn (local)"
        ~status:Obs.Provenance.Withdrawn
    in
    note_gone t prefix ~src:(-1) pr;
    record_route_event t Obs.Recorder.Route_withdraw prefix pr
  end;
  let change = Shard.Sharded_loc.update t.loc ~peer:(-1) prefix None in
  propagate t prefix change

(** Replace (or add) one named configuration extra at runtime — how the
    simulated operator delivers an updated ROA file or a new threshold
    to a running router. Extensions observe the new blob on their next
    [get_xtra]; state built at init time needs {!rerun_init}. *)
let set_xtra t key value = Hashtbl.replace t.xtras key value

(** Re-run the extension init bytecodes against the current xtras — the
    runtime half of a configuration swap (e.g. an RPKI ROA update that
    must be folded into the origin-validation map). *)
let rerun_init t =
  match t.vmm with
  | Some vmm -> Xbgp.Vmm.run_init vmm ~ops:t.base_ops
  | None -> ()

(** Re-open any session that has fallen back to Idle (e.g. after a link
    failure healed). Peers already Established are untouched. *)
let restart_sessions t =
  Array.iter
    (fun p ->
      if not (Session.Fsm.is_established p.session) then
        Session.Fsm.start p.session)
    t.peers

(** Re-evaluate export policy for every best route towards every peer —
    what a real daemon does when IGP state changes (§3.1: the export
    filter consults the live IGP metric of the next hop). *)
let refresh_exports t =
  if t.config.update_groups then begin
    refresh_grouping t;
    Shard.Sharded_loc.iter_best t.loc (fun prefix r ->
        Rib.Update_group.iter_groups t.ugroups (fun g ->
            export_to_group t g prefix r))
  end
  else
    Shard.Sharded_loc.iter_best t.loc (fun prefix r ->
        Array.iter
          (fun peer ->
            if Session.Fsm.is_established peer.session && peer.synced then
              advertise_to t peer prefix r)
          t.peers);
  schedule_flush t

(* --- introspection --- *)

let loc_count t = Shard.Sharded_loc.count t.loc
let loc_best t prefix = Shard.Sharded_loc.best t.loc prefix
let iter_loc t f = Shard.Sharded_loc.iter_best t.loc f
(* a point-in-time snapshot assembled from the registry counters *)
let stats t : stats =
  {
    updates_rx = Telemetry.Counter.value t.probes.c_updates_rx;
    routes_in = Telemetry.Counter.value t.probes.c_routes_in;
    withdrawals_rx = Telemetry.Counter.value t.probes.c_withdrawals_rx;
    import_rejected = Telemetry.Counter.value t.probes.c_import_rejected;
    export_rejected = Telemetry.Counter.value t.probes.c_export_rejected;
    updates_tx = Telemetry.Counter.value t.probes.c_updates_tx;
  }

let telemetry t = t.tele
let shard_info t : Shard.Info.t =
  let n = Shard.Sharded_loc.shards t.loc in
  {
    Shard.Info.shards = n;
    counts = Shard.Sharded_loc.counts t.loc;
    runs =
      (match t.vmm with
      | Some vmm -> Array.init n (fun s -> Xbgp.Vmm.shard_runs vmm s)
      | None -> Array.make n 0);
    queues =
      (match t.pool with
      | Some pool ->
        Array.init (Shard.Runtime.workers pool) (fun i ->
            Shard.Runtime.worker_stats pool i)
      | None -> [||]);
    barriers = (match t.pool with Some p -> Shard.Runtime.barriers p | None -> 0);
    par_batches = t.par_batches;
    seq_batches = t.seq_batches;
  }

let group_count t = Rib.Update_group.group_count t.ugroups
let vmm t = t.vmm

(** Attach (or detach, [None]) a flight recorder: the daemon itself
    records route events, and the hook is pushed down to the VMM
    (faults, fallbacks, map evictions), the session FSMs (transitions)
    and the update-group engine (split/merge/rekey). *)
let set_recorder t r =
  t.recorder <- r;
  (match t.vmm with
  | Some vmm -> Xbgp.Vmm.set_recorder vmm r
  | None -> ());
  Rib.Update_group.set_recorder t.ugroups r;
  Array.iter (fun p -> Session.Fsm.set_recorder p.session r) t.peers

let recorder t = t.recorder

(** Attach a BMP-style monitoring collector; the daemon mirrors every
    received UPDATE and every session up/down edge to it. *)
let set_collector t c = t.collector <- c

let collector t = t.collector

(** Provenance of the prefix's current best route (decision disposal
    computed against the live Loc-RIB), falling back to the last
    reject/withdraw record once no candidate is left. *)
let provenance t prefix =
  match Shard.Sharded_loc.best_with_peer t.loc prefix with
  | Some (bpeer, _) -> (
    match Hashtbl.find_opt t.prov (prefix, bpeer) with
    | Some stored -> Some (assemble_prov t prefix stored ~src:bpeer)
    | None -> Hashtbl.find_opt t.last_prov prefix)
  | None -> Hashtbl.find_opt t.last_prov prefix

(** Provenance of every candidate for the prefix. *)
let provenance_candidates t prefix =
  List.filter_map
    (fun (src, _) ->
      Option.map
        (fun stored -> assemble_prov t prefix stored ~src)
        (Hashtbl.find_opt t.prov (prefix, src)))
    (Shard.Sharded_loc.candidates t.loc prefix)

(** One provenance record per installed best route, sorted by prefix. *)
let provenance_snapshot t =
  let acc = ref [] in
  Shard.Sharded_loc.iter_best t.loc (fun p _ ->
      match provenance t p with
      | Some pr -> acc := (p, pr) :: !acc
      | None -> ());
  List.sort (fun (a, _) (b, _) -> Bgp.Prefix.compare a b) !acc

(** Update-group partition: [(key, ascending member indices)] in group
    creation order — the [show update-groups] payload. *)
let group_details t =
  let acc = ref [] in
  Rib.Update_group.iter_groups t.ugroups (fun g ->
      acc := (Rib.Update_group.key g, Rib.Update_group.members g) :: !acc);
  List.rev !acc

let peer t idx = t.peers.(idx)
let peer_established t idx = Session.Fsm.is_established t.peers.(idx).session
let set_log t f = t.log_fn <- f
let name t = t.config.name

let best_attrs t prefix =
  Option.map (fun r -> Eattr.to_attrs r.attrs) (loc_best t prefix)

(** Whole-Loc-RIB snapshot in the neutral codec form, sorted by prefix —
    the xBGP-visible state the differential fuzzer compares across
    hosts. *)
let loc_snapshot t =
  let acc = ref [] in
  iter_loc t (fun p r -> acc := (p, Eattr.to_attrs r.attrs) :: !acc);
  List.sort (fun (a, _) (b, _) -> Bgp.Prefix.compare a b) !acc

let best_route t prefix = loc_best t prefix
