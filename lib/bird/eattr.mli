(** BIRD-style attribute storage: a generic list of [eattr] records whose
    payloads stay in wire form, with one flexible API over all of them —
    why the paper's BIRD xBGP adapter was the thinner one (§2.1: "BIRD
    includes a flexible API to manage BGP attributes. xBGP simply extends
    this API").

    Consequences reproduced here: converting to/from the neutral TLV is
    nearly free (the payload {e is} the network-byte-order payload), any
    code is carried uniformly, and scalar readers parse the payload on
    access (only the AS-path length is cached). *)

type t = { code : int; flags : int; payload : string }

(** An attribute set: eattrs sorted by code, unique per code. The memo
    fields cache this set's neutral conversions ({!to_attrs},
    {!encode_known}); they are sound by construction — every mutation
    API returns a {e new} record with empty memos — and {!equal} ignores
    them. *)
type set = {
  eattrs : t list;
  path_len : int;  (** cached AS-path length *)
  mutable memo_attrs : Bgp.Attr.t list option;
  mutable memo_encoded : bytes option;
}

val empty : set
val of_eattrs : t list -> set
val set_eattr : set -> t -> set
val remove_code : int -> set -> set
val find_code : int -> set -> t option
val equal : set -> set -> bool

(** {1 Wire payload helpers} *)

val read_u32 : string -> int -> int
val u32_payload : int -> string
val path_length_of_payload : string -> int
val path_asns_of_payload : string -> int list

(** {1 From/to the shared codec} *)

val of_attrs : Bgp.Attr.t list -> set
(** Admit parsed attributes; unknown codes are dropped by the native
    parser (see module header). *)

val to_attrs : set -> Bgp.Attr.t list
(** Known codes only, for the native encoder.
    @raise Bgp.Attr.Parse_error on corrupt payloads. *)

val encode_known : set -> bytes
(** Serialized wire form of the known attributes — the message-grouping
    key and native encoder input. With the cache enabled the bytes are
    shared across calls on the same set; treat them as read-only. *)

(** {1 The conversion cache} (the BIRD-side symmetric of
    [Attr_intern]'s) *)

val set_conversion_cache : bool -> unit
(** Enable/disable memo use (enabled by default). Existing memos are
    kept but ignored while disabled — they can never be stale. *)

val set_cache_gate : bool -> unit
(** The attachment gate (default on), mirroring
    [Attr_intern.set_cache_gate]: lowered by the daemon while its VMM
    has no attachment anywhere, so the native baseline skips memo
    bookkeeping. Memos are kept across gate flips — they can never be
    stale. *)

val conversion_cache_enabled : unit -> bool

val conversion_cache_stats : unit -> int * int
(** [(hits, misses)] since {!reset_conversion_cache_stats}. *)

val reset_conversion_cache_stats : unit -> unit

val invalidate_conversion : set -> unit
(** Drop one set's memos (for hosts mutating out of band). *)

(** {1 The xBGP adapter} — near-zero-cost TLV conversion *)

val get_tlv : set -> int -> bytes option
val set_tlv : set -> bytes -> set
(** @raise Invalid_argument on a malformed TLV. *)

(** {1 Scalar accessors} (parse on demand) *)

val origin : set -> int
val next_hop : set -> int
val med : set -> int
val local_pref : set -> int
val originator_id : set -> int
val cluster_list_len : set -> int
val path_asns : set -> int list
val neighbor_as : set -> int
val origin_as : set -> int option
val contains_as : set -> int -> bool

(** {1 Wire-level mutations} *)

val prepend_as : set -> int -> set
(** Extend the leading AS_SEQUENCE directly in the payload. *)

val prepend_cluster : set -> int -> set
val append_community : set -> int -> set
