(* One domain per shard, each draining its own bounded SPSC queue.
   See the .mli for the determinism contract split between the runtime
   (per-worker FIFO, barrier visibility) and the caller (disjoint
   state, commit by submission sequence). *)

type worker_stats = {
  submitted : int;
  completed : int;
  queue_depth : int;
  queue_hwm : int;
}

type t = {
  queues : (unit -> unit) Spsc.t array;
  mutable domains : unit Domain.t array;  (* filled right after spawn *)
  submitted : int array;  (* written by the coordinating domain only *)
  completed : int Atomic.t array;
  mutable total_submitted : int;
  mutable barrier_count : int;
  poison : (exn * Printexc.raw_backtrace) option Atomic.t;
      (* first job exception since the last barrier; re-raised there *)
  progress_lock : Mutex.t;
  progress : Condition.t;  (* signalled by workers after each job *)
  mutable alive : bool;
}

let workers t = Array.length t.queues

let worker_loop t i =
  let q = t.queues.(i) in
  let rec go () =
    match Spsc.pop q with
    | None -> () (* closed and drained: shutdown *)
    | Some job ->
      (try job ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set t.poison None (Some (e, bt))));
      Atomic.incr t.completed.(i);
      Mutex.lock t.progress_lock;
      Condition.broadcast t.progress;
      Mutex.unlock t.progress_lock;
      go ()
  in
  go ()

let create ?(queue_capacity = 256) ~workers () =
  if workers < 1 then invalid_arg "Runtime.create: workers must be >= 1";
  let t =
    {
      queues = Array.init workers (fun _ -> Spsc.create ~capacity:queue_capacity);
      domains = [||];
      submitted = Array.make workers 0;
      completed = Array.init workers (fun _ -> Atomic.make 0);
      total_submitted = 0;
      barrier_count = 0;
      poison = Atomic.make None;
      progress_lock = Mutex.create ();
      progress = Condition.create ();
      alive = true;
    }
  in
  t.domains <-
    Array.init workers (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let submit t ~worker job =
  if not t.alive then invalid_arg "Runtime.submit: runtime was shut down";
  t.submitted.(worker) <- t.submitted.(worker) + 1;
  t.total_submitted <- t.total_submitted + 1;
  Spsc.push t.queues.(worker) job

let completed_total t =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.completed

let reraise_poison t =
  match Atomic.exchange t.poison None with
  | None -> ()
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt

let barrier t =
  Mutex.lock t.progress_lock;
  while completed_total t < t.total_submitted do
    Condition.wait t.progress t.progress_lock
  done;
  Mutex.unlock t.progress_lock;
  t.barrier_count <- t.barrier_count + 1;
  reraise_poison t

let parallel_map (type b) t items (f : _ -> b) : b array =
  let n = Array.length items in
  let out : b option array = Array.make n None in
  let w = workers t in
  for i = 0 to n - 1 do
    let item = items.(i) in
    submit t ~worker:(i mod w) (fun () -> out.(i) <- Some (f item))
  done;
  barrier t;
  Array.map
    (function
      | Some r -> r
      | None ->
        (* only reachable when the producing job raised — the barrier
           re-raises first, so this is belt and braces *)
        invalid_arg "Runtime.parallel_map: missing result")
    out

let barriers t = t.barrier_count

let worker_stats t i =
  {
    submitted = t.submitted.(i);
    completed = Atomic.get t.completed.(i);
    queue_depth = Spsc.depth t.queues.(i);
    queue_hwm = Spsc.high_water t.queues.(i);
  }

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter Spsc.close t.queues;
    Array.iter Domain.join t.domains
  end
