(** A bounded single-producer / single-consumer queue with a blocking
    doorbell — the submission channel between the coordinating domain
    and one shard worker.

    The implementation is a mutex-guarded ring with two condition
    variables rather than a lock-free ring: correctness is load-bearing
    here (the sharding equivalence oracle runs on top of it) and the
    daemons amortize the lock over multi-route tasks, so the constant
    factor is noise next to an eBPF dispatch. Blocking — not spinning —
    also keeps oversubscribed hosts (more shards than cores) honest:
    a waiting worker yields its core instead of burning it. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Enqueue, blocking while full. @raise Invalid_argument if closed. *)

val pop : 'a t -> 'a option
(** Dequeue, blocking while empty; [None] once the queue is closed AND
    drained — the worker's exit signal. *)

val try_pop : 'a t -> 'a option
(** Non-blocking dequeue; [None] when currently empty (says nothing
    about closure). *)

val close : 'a t -> unit
(** No further pushes; pending elements remain poppable. Idempotent. *)

val depth : 'a t -> int
(** Elements currently queued. *)

val high_water : 'a t -> int
(** Maximum depth ever observed — queue-pressure introspection for
    [show shards]. *)
