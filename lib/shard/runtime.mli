(** The shard worker pool: one OCaml 5 domain per shard, each draining a
    bounded {!Spsc} queue of jobs submitted by the coordinating domain.

    The contract that makes the sharded daemons deterministic lives
    here, split between the two sides:

    - the runtime guarantees each worker executes its own queue's jobs
      in FIFO submission order, and that {!barrier} returns only after
      every job submitted so far (on every worker) has finished, with
      all their writes visible to the caller;
    - the caller guarantees jobs submitted to different workers touch
      disjoint state (the prefix partition), tags results with their
      global submission sequence, and commits them in that order after
      the barrier — a k-way merge by sequence number, not by completion
      order.

    Workers never steal: a shard's tasks form a deterministic
    subsequence of the submission stream, which is what lets per-shard
    state (VM scratch-free dispatch, per-shard maps, LRU recency) match
    the sequential baseline shard by shard. *)

type t

type worker_stats = {
  submitted : int;  (** jobs handed to this worker so far *)
  completed : int;  (** jobs it has finished *)
  queue_depth : int;  (** currently waiting in its queue *)
  queue_hwm : int;  (** deepest the queue has ever been *)
}

val create : ?queue_capacity:int -> workers:int -> unit -> t
(** Spawn [workers] domains (>= 1), each with a bounded submission
    queue (default capacity 256). *)

val workers : t -> int

val submit : t -> worker:int -> (unit -> unit) -> unit
(** Enqueue a job on one worker, blocking while its queue is full.
    Jobs run on the worker domain in submission order. A job that
    raises poisons the runtime: the exception is re-raised (with its
    original backtrace) by the next {!barrier}. *)

val barrier : t -> unit
(** Block until every job submitted so far has completed; afterwards
    all their effects are visible to the caller. Re-raises the first
    exception any job raised since the last barrier. *)

val parallel_map : t -> 'a array -> ('a -> 'b) -> 'b array
(** Run [f] over the array with items distributed round-robin across
    the workers ([item i] on [worker (i mod workers)]), wait for all of
    them, and return results in item order — completion order never
    shows. Includes a {!barrier}, so earlier submitted jobs are also
    drained. *)

val barriers : t -> int
(** Barriers executed so far (each one is a full merge point) — for the
    [show shards] introspection surface. *)

val worker_stats : t -> int -> worker_stats

val shutdown : t -> unit
(** Drain, stop and join every worker domain. Idempotent; the runtime
    is unusable afterwards. *)
