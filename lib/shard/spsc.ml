(* Bounded SPSC queue: mutex-guarded ring + two condition doorbells.
   See the .mli for why this is deliberately not a lock-free ring. *)

type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* next pop slot *)
  mutable len : int;
  mutable closed : bool;
  mutable hwm : int;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  {
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false;
    hwm = 0;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let cap t = Array.length t.buf

let push t v =
  Mutex.lock t.lock;
  while t.len = cap t && not t.closed do
    Condition.wait t.not_full t.lock
  done;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Spsc.push: queue is closed"
  end;
  t.buf.((t.head + t.len) mod cap t) <- Some v;
  t.len <- t.len + 1;
  if t.len > t.hwm then t.hwm <- t.len;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let take_locked t =
  let v = t.buf.(t.head) in
  t.buf.(t.head) <- None;
  t.head <- (t.head + 1) mod cap t;
  t.len <- t.len - 1;
  Condition.signal t.not_full;
  v

let pop t =
  Mutex.lock t.lock;
  while t.len = 0 && not t.closed do
    Condition.wait t.not_empty t.lock
  done;
  let v = if t.len = 0 then None (* closed and drained *) else take_locked t in
  Mutex.unlock t.lock;
  v

let try_pop t =
  Mutex.lock t.lock;
  let v = if t.len = 0 then None else take_locked t in
  Mutex.unlock t.lock;
  v

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  (* wake a blocked popper (sees the closed flag) and a blocked pusher
     (raises) *)
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock

let depth t =
  Mutex.lock t.lock;
  let n = t.len in
  Mutex.unlock t.lock;
  n

let high_water t =
  Mutex.lock t.lock;
  let n = t.hwm in
  Mutex.unlock t.lock;
  n
