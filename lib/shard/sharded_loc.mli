(** A Loc-RIB partitioned by prefix across [n] independent slices — the
    structural backbone of the sharded daemons.

    Every candidate and best route for a prefix lives in exactly one
    slice, chosen by {!shard_of_prefix} — a deterministic hash of
    (address, length) — so two daemons (or two runs) with the same shard
    count agree on placement, and per-prefix operations never touch two
    slices. Updates route to the owning slice; whole-table iteration
    re-establishes the unsharded order by k-way-merging the slices'
    in-order streams, so [iter_best] over a sharded table is
    byte-for-byte the sequence an unsharded [Rib.Loc_rib] would produce
    — the property the sharding equivalence oracle leans on.

    The table itself is not thread-safe: the daemons mutate it from the
    coordinating domain only (workers dispatch filters; commits are
    serialized), so no slice ever sees concurrent writers. *)

type 'r t

val shard_of_prefix : shards:int -> Bgp.Prefix.t -> int
(** The owning shard of a prefix: a deterministic avalanche hash of
    (address, length) reduced mod [shards]. Always [0] when
    [shards <= 1]. *)

val create : shards:int -> 'r Rib.Decision.view -> 'r t
(** [shards >= 1] independent slices sharing one decision view. *)

val shards : 'r t -> int

val shard_of : 'r t -> Bgp.Prefix.t -> int
(** {!shard_of_prefix} under this table's shard count. *)

val slice : 'r t -> int -> 'r Rib.Loc_rib.t
(** Direct access to one slice (per-shard introspection; the fuzz
    oracle compares slices pairwise). *)

val set_compare : 'r t -> ('r -> 'r -> int) option -> unit
(** Install (or clear) a route-order override on every slice. *)

val invalidate_best : 'r t -> unit
(** {!Rib.Loc_rib.invalidate_best} on every slice. *)

val update : 'r t -> peer:int -> Bgp.Prefix.t -> 'r option -> 'r Rib.Loc_rib.change
(** Routes to the owning slice; semantics of {!Rib.Loc_rib.update}. *)

val best : 'r t -> Bgp.Prefix.t -> 'r option
val best_with_peer : 'r t -> Bgp.Prefix.t -> (int * 'r) option
val candidates : 'r t -> Bgp.Prefix.t -> (int * 'r) list

val count : 'r t -> int
(** Prefixes with a best route, across all slices. O(shards). *)

val counts : 'r t -> int array
(** Per-slice best counts — the [show shards] balance view. *)

val iter_best : 'r t -> (Bgp.Prefix.t -> 'r -> unit) -> unit
(** Visit best routes across all slices in the unsharded table order
    (address ascending, shorter prefix first on ties) via a k-way merge
    of the slices' in-order streams. *)

val fold_best : 'r t -> (Bgp.Prefix.t -> 'r -> 'b -> 'b) -> 'b -> 'b
(** Same merged order as {!iter_best}. *)
