(* Prefix-sharded Loc-RIB: n independent Rib.Loc_rib slices plus the
   routing hash and the merged-order iteration that hides the split. *)

type 'r t = { slices : 'r Rib.Loc_rib.t array }

(* A deterministic avalanche hash — NOT Hashtbl.hash, whose output is
   only specified per-process. Placement must agree across runs,
   builds and the equivalence oracle's two daemons. *)
let shard_of_prefix ~shards p =
  if shards <= 1 then 0
  else begin
    let h = Bgp.Prefix.addr p lxor (Bgp.Prefix.len p * 0x9E3779B1) in
    let h = h lxor (h lsr 16) in
    let h = h * 0x7FEB352D land 0xFFFFFFFF in
    let h = h lxor (h lsr 15) in
    h mod shards
  end

let create ~shards view =
  if shards < 1 then invalid_arg "Sharded_loc.create: shards must be >= 1";
  { slices = Array.init shards (fun _ -> Rib.Loc_rib.create view) }

let shards t = Array.length t.slices
let shard_of t p = shard_of_prefix ~shards:(shards t) p
let slice t i = t.slices.(i)
let owner t p = t.slices.(shard_of t p)

let set_compare t cmp = Array.iter (fun s -> Rib.Loc_rib.set_compare s cmp) t.slices
let invalidate_best t = Array.iter Rib.Loc_rib.invalidate_best t.slices

let update t ~peer p r = Rib.Loc_rib.update (owner t p) ~peer p r
let best t p = Rib.Loc_rib.best (owner t p) p
let best_with_peer t p = Rib.Loc_rib.best_with_peer (owner t p) p
let candidates t p = Rib.Loc_rib.candidates (owner t p) p

let count t = Array.fold_left (fun acc s -> acc + Rib.Loc_rib.count s) 0 t.slices
let counts t = Array.map Rib.Loc_rib.count t.slices

(* The unsharded table (a Ptrie) yields address ascending, SHORTER
   prefix first on address ties — which is NOT Prefix.compare (that
   one puts the more-specific first). The merge must replicate the
   trie order exactly or the equivalence oracle would flag phantom
   diffs on e.g. 10.0.0.0/8 vs 10.0.0.0/16. *)
let trie_order a b =
  let c = compare (Bgp.Prefix.addr a) (Bgp.Prefix.addr b) in
  if c <> 0 then c else compare (Bgp.Prefix.len a) (Bgp.Prefix.len b)

(* K-way merge over per-slice in-order streams. Shard counts are tiny
   (<= 8 in practice), so a linear min-scan beats a heap. *)
let fold_best t f init =
  let n = Array.length t.slices in
  if n = 1 then Rib.Loc_rib.fold_best t.slices.(0) f init
  else begin
    let streams =
      Array.map
        (fun s ->
          (* materialize in order; slices are disjoint so total memory
             matches one whole-table listing *)
          ref (List.rev (Rib.Loc_rib.fold_best s (fun p r acc -> (p, r) :: acc) [])))
        t.slices
    in
    let acc = ref init in
    let continue = ref true in
    while !continue do
      let best_i = ref (-1) in
      for i = 0 to n - 1 do
        match !(streams.(i)) with
        | [] -> ()
        | (p, _) :: _ ->
          (match !best_i with
          | -1 -> best_i := i
          | j ->
            let (pj, _) = List.hd !(streams.(j)) in
            if trie_order p pj < 0 then best_i := i)
      done;
      match !best_i with
      | -1 -> continue := false
      | i ->
        (match !(streams.(i)) with
        | (p, r) :: rest ->
          streams.(i) := rest;
          acc := f p r !acc
        | [] -> assert false)
    done;
    !acc
  end

let iter_best t f = fold_best t (fun p r () -> f p r) ()
