(* The [show shards] payload — one flat record both daemons fill from
   their sharded Loc-RIB, their VMM and their worker pool, so the
   introspection layer formats one shape regardless of host. *)

type t = {
  shards : int;
  counts : int array;  (* best routes per Loc-RIB slice *)
  runs : int array;  (* bytecode executions per VM shard *)
  queues : Runtime.worker_stats array;  (* one per worker; empty unsharded *)
  barriers : int;  (* merge points executed so far *)
  par_batches : int;  (* NLRI batches taken by the parallel lane *)
  seq_batches : int;  (* batches that fell back to the serial lane *)
}

let unsharded ~count =
  {
    shards = 1;
    counts = [| count |];
    runs = [| 0 |];
    queues = [||];
    barriers = 0;
    par_batches = 0;
    seq_batches = 0;
  }
