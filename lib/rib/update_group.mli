(** Update groups: the encode-once / fan-out-many export engine.

    Peers whose outbound policy provably produces identical bytes are
    partitioned into groups sharing one adj-RIB-out; a daemon evaluates
    export policy and the outbound xprog chain once per group, encodes
    each UPDATE once, and fans the frames to every member.

    The module is daemon-neutral and generic in the attribute
    representation ['attrs] (the FRR-like host groups interned records,
    the BIRD-like host wire-form attribute sets) — equality is injected
    at {!create}. Sharing is only sound when the caller groups peers
    whose outbound chains pass {!Vmm.group_invariant}; peer-dependent
    chains belong in singleton groups, which flow through the same
    machinery and degrade to the per-peer baseline.

    Membership is dynamic: peers {!join} on session sync, {!leave} on
    close, and {!rekey} re-partitions everyone when attachment changes
    alter the export-relevant key. Churn is observable through the
    [bgp_update_groups_active] gauge and the [bgp_group_splits_total] /
    [bgp_group_merges_total] / [bgp_fanout_bytes_saved_total] counters
    (label [daemon]). *)

type 'attrs t
(** The partition: every tracked peer is in exactly one group. *)

type 'attrs group

val create :
  ?telemetry:Telemetry.t ->
  daemon:string ->
  equal:('attrs -> 'attrs -> bool) ->
  unit ->
  'attrs t
(** [equal] decides whether two export results are the same
    advertisement (drives re-advertise suppression, exactly as the
    per-peer baseline's comparison does). *)

val set_recorder : 'attrs t -> Obs.Recorder.t option -> unit
(** Attach a flight recorder: every split, merge and re-key cluster
    move is recorded as a structured event (fields [daemon], [key] /
    [from]/[to], moved peer indices). *)

val group_count : 'attrs t -> int
val iter_groups : 'attrs t -> ('attrs group -> unit) -> unit
(** Stable order (group creation order), so flush framing is
    reproducible. *)

val members : 'attrs group -> int list
(** Ascending peer indices. *)

val key : 'attrs group -> string
val is_member : 'attrs group -> int -> bool
val member_group : 'attrs t -> int -> 'attrs group option
val pending : 'attrs group -> bool
val rib_size : 'attrs group -> int
val rib_find : 'attrs group -> Bgp.Prefix.t -> ('attrs * int) option

val join : 'attrs t -> peer:int -> key:string -> 'attrs group
(** Put [peer] into the group for [key], creating it when absent
    (joining an existing group counts one merge). A no-op returning the
    current group when the peer is already under that key (including a
    re-keyed ["key#n"] variant of it). *)

val leave : 'attrs t -> peer:int -> unit
(** Remove a peer (session close); empty groups are deleted. *)

val route_update :
  'attrs t -> 'attrs group -> Bgp.Prefix.t -> ('attrs * int) option -> unit
(** One Loc-RIB change with the export evaluated once for a
    representative member. [Some (attrs, skip)]: every member except
    [skip] (the route's source; [-1] when not a member) should carry
    [attrs]. [None]: nobody should. Updates the shared adj-RIB-out and
    queues exactly the per-member advertise/withdraw transitions the
    baseline would emit. *)

val catch_up_entry :
  'attrs group -> Bgp.Prefix.t -> 'attrs -> skip:int -> member:int -> unit
(** Queue a targeted advertisement bringing a just-joined [member] up to
    date with one accepted export ([attrs]); creates the shared RIB
    entry (with [skip]) when the group didn't have it yet. Call in
    Loc-RIB iteration order so the catch-up stream matches a baseline
    initial sync. *)

val take_classes :
  'attrs group ->
  (int list * Bgp.Prefix.t list * (Bgp.Prefix.t * 'attrs) list) list
(** Drain the queued events into flush classes
    [(members, withdrawals, advertisements)]: members of one class have
    bytewise-identical pending streams (both lists in enqueue order), so
    the caller encodes each class once and fans the frames to all its
    members. Returns [[]] when nothing is pending. *)

val rekey : 'attrs t -> desired:(int -> string) -> unit
(** Re-partition after export-relevant keys changed (xprog
    attach/detach). Members of one group moving to one key travel as a
    cluster: they merge into an existing group under that key only when
    its shared RIB equals theirs, and otherwise seed a fresh group from
    a copy of their RIB — no events are emitted (the baseline sends
    nothing on attach/detach either). Counts one split per cluster that
    leaves a surviving group and one merge per cluster absorbed into an
    existing group.
    @raise Invalid_argument if an affected group has pending events —
    flush before re-keying. *)

val note_fanout_saved : 'attrs t -> int -> unit
(** Credit [bgp_fanout_bytes_saved_total] with bytes that were fanned
    out instead of re-encoded ((recipients − 1) × frame length). *)
