(* The Loc-RIB: per prefix, the candidate routes contributed by each peer
   and the current best as picked by the decision process. Updates are
   incremental — a daemon feeds the post-import-filter route (or a
   withdrawal) and learns whether the best route changed, which is what
   drives re-advertisement to the Adj-RIB-Out side.

   Hot-path structure: candidates live in a small array sorted by peer
   id (binary search instead of [List.remove_assoc]'s linear scan), and
   the incumbent best is cached so the common cases — a new route that
   loses to the incumbent, a replacement from a non-best peer, a
   withdrawal of a shadowed candidate — cost one route comparison
   instead of a full re-selection fold. A full re-selection only runs
   when the incumbent itself is displaced or withdrawn, or when the
   route order may have changed since the best was picked
   ({!invalidate_best}). *)

type 'r entry = {
  mutable cands : (int * 'r) array;  (** sorted by peer id ascending *)
  mutable best : (int * 'r) option;
  mutable sel_gen : int;
      (** {!t.cmp_gen} at the last full selection; a mismatch means the
          route order may have changed under the cached best *)
}

type 'r t = {
  trie : 'r entry Ptrie.t;
  view : 'r Decision.view;
  mutable best_count : int;  (** prefixes that currently have a best *)
  mutable compare : 'r -> 'r -> int;
      (** route order; defaults to [Decision.compare view] and may be
          overridden (the xBGP BGP_DECISION insertion point) *)
  mutable cmp_gen : int;
      (** bumped whenever the route order may have changed; entries
          whose [sel_gen] lags re-select in full on their next update *)
}

type 'r change =
  | Unchanged
  | New_best of 'r  (** best route (re)selected for the prefix *)
  | Withdrawn  (** no candidate left for the prefix *)

let create view =
  {
    trie = Ptrie.create ();
    view;
    best_count = 0;
    compare = Decision.compare view;
    cmp_gen = 0;
  }

(** Override the route order (pass [None] to restore the RFC 4271
    decision process). Affects subsequent updates only. *)
let set_compare t cmp =
  t.compare <-
    (match cmp with Some f -> f | None -> Decision.compare t.view);
  t.cmp_gen <- t.cmp_gen + 1

(** Signal that the installed compare closure's behaviour may have
    changed (e.g. a BGP_DECISION chain was attached or detached behind
    it): cached incumbents are re-validated by a full selection on each
    prefix's next update. *)
let invalidate_best t = t.cmp_gen <- t.cmp_gen + 1

(* --- sorted candidate array primitives --- *)

(* index of [peer] in [cands], or the insertion point encoded as
   [-(i+1)] when absent *)
let find_peer (cands : (int * 'r) array) peer =
  let lo = ref 0 and hi = ref (Array.length cands) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst cands.(mid) < peer then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length cands && fst cands.(!lo) = peer then !lo
  else -(!lo + 1)

let insert_at (cands : (int * 'r) array) i binding =
  let n = Array.length cands in
  let out = Array.make (n + 1) binding in
  Array.blit cands 0 out 0 i;
  Array.blit cands i out (i + 1) (n - i);
  out

let remove_at (cands : (int * 'r) array) i =
  let n = Array.length cands in
  if n = 1 then [||]
  else begin
    let out = Array.make (n - 1) cands.(0) in
    Array.blit cands 0 out 0 i;
    Array.blit cands (i + 1) out i (n - 1 - i);
    out
  end

(* Full selection: first minimal binding under [t.compare], scanning in
   peer-id order. *)
let select t (cands : (int * 'r) array) =
  let n = Array.length cands in
  if n = 0 then None
  else begin
    let best = ref cands.(0) in
    for i = 1 to n - 1 do
      let (_, r) = cands.(i) in
      if t.compare r (snd !best) < 0 then best := cands.(i)
    done;
    Some !best
  end

(** [update t ~peer p route] replaces ([Some r]) or withdraws ([None]) the
    candidate contributed by [peer] for prefix [p]. *)
let update t ~peer p route =
  let entry =
    match Ptrie.find t.trie p with
    | Some e -> e
    | None ->
      let e = { cands = [||]; best = None; sel_gen = t.cmp_gen } in
      ignore (Ptrie.replace t.trie p e);
      e
  in
  let old_best = entry.best in
  let idx = find_peer entry.cands peer in
  let stale = entry.sel_gen <> t.cmp_gen in
  let new_best =
    match route with
    | Some r ->
      let binding = (peer, r) in
      if idx >= 0 then entry.cands.(idx) <- binding
      else entry.cands <- insert_at entry.cands (-idx - 1) binding;
      (match old_best with
      | Some ((bp, br) as b) when not stale ->
        if bp = peer then begin
          (* the incumbent itself was replaced: re-select in full *)
          entry.sel_gen <- t.cmp_gen;
          select t entry.cands
        end
        else if t.compare r br <= 0 then
          (* ties go to the arriving route, matching the historical
             fold order (newest candidate seeded the accumulator) *)
          Some binding
        else Some b
      | _ ->
        entry.sel_gen <- t.cmp_gen;
        select t entry.cands)
    | None ->
      if idx < 0 then old_best  (* nothing to withdraw *)
      else begin
        entry.cands <- remove_at entry.cands idx;
        match old_best with
        | Some (bp, _) when (not stale) && bp <> peer -> old_best
        | _ ->
          entry.sel_gen <- t.cmp_gen;
          select t entry.cands
      end
  in
  entry.best <- new_best;
  (match (old_best, new_best) with
  | None, Some _ -> t.best_count <- t.best_count + 1
  | Some _, None -> t.best_count <- t.best_count - 1
  | _ -> ());
  if entry.cands = [||] then ignore (Ptrie.remove t.trie p);
  match (old_best, new_best) with
  | None, None -> Unchanged
  | Some _, None -> Withdrawn
  | None, Some (_, r) -> New_best r
  | Some (op, or_), Some (np, nr) ->
    if op = np && or_ == nr then Unchanged else New_best nr

let best t p =
  match Ptrie.find t.trie p with
  | Some { best = Some (_, r); _ } -> Some r
  | _ -> None

let best_with_peer t p =
  match Ptrie.find t.trie p with Some { best; _ } -> best | _ -> None

let candidates t p =
  match Ptrie.find t.trie p with
  | Some e -> Array.to_list e.cands
  | None -> []

(** Number of prefixes that currently have a best route. O(1). *)
let count t = t.best_count

let iter_best t f =
  Ptrie.iter t.trie (fun p e ->
      match e.best with Some (_, r) -> f p r | None -> ())

let fold_best t f acc =
  Ptrie.fold t.trie
    (fun p e acc ->
      match e.best with Some (_, r) -> f p r acc | None -> acc)
    acc
