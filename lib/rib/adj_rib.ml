(* Adj-RIB-In / Adj-RIB-Out: one prefix-keyed store per peer (RFC 4271
   §3.2). The same container serves both directions; daemons keep one
   [t] for inbound state (exact routes as learned, pre-decision) and one
   for outbound state (what has been advertised to each peer, which lets
   them send implicit withdraws only when something actually changed).

   A running size counter makes [total] O(1): it is read from stats
   snapshots and [show rib] on every query, where folding [Ptrie.size]
   over each peer table was O(peers x prefixes). *)

type 'r t = {
  tables : (int, 'r Ptrie.t) Hashtbl.t;
  mutable total : int;  (** live bindings across every peer table *)
}

let create () = { tables = Hashtbl.create 8; total = 0 }

let table t peer =
  match Hashtbl.find_opt t.tables peer with
  | Some tr -> tr
  | None ->
    let tr = Ptrie.create () in
    Hashtbl.replace t.tables peer tr;
    tr

(** Store (or replace) the route for [p] learned from / sent to [peer];
    returns the previous route if any. *)
let set t ~peer p r =
  let prev = Ptrie.replace (table t peer) p r in
  if prev = None then t.total <- t.total + 1;
  prev

(** Remove the route for [p]; returns the removed route if any. *)
let clear t ~peer p =
  let prev = Ptrie.remove (table t peer) p in
  if prev <> None then t.total <- t.total - 1;
  prev

let find t ~peer p = Ptrie.find (table t peer) p

(** Drop the whole table of [peer] (session reset). *)
let drop_peer t peer =
  (match Hashtbl.find_opt t.tables peer with
  | Some tr -> t.total <- t.total - Ptrie.size tr
  | None -> ());
  Hashtbl.remove t.tables peer

let iter_peer t ~peer f = Ptrie.iter (table t peer) f
let count_peer t ~peer = Ptrie.size (table t peer)

let peers t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables []

(** Live bindings across every peer table. O(1). *)
let total t = t.total
