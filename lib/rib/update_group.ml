(* Update groups: the encode-once / fan-out-many export engine.

   BGP implementations discovered long ago (BIRD's "channels", FRR's
   update-groups, JunOS's out-queues) that at full-table scale the
   dominant export cost is not deciding *what* to send but encoding it
   once per peer. Peers whose outbound policy provably produces the same
   bytes can share one adj-RIB-out and one encoded UPDATE stream.

   This module is the daemon-neutral core: it knows nothing about wire
   encoding or sessions. A daemon

   - [join]s each synced peer under a string key capturing everything
     export-relevant (peer type, reflection role, attached xprog chains
     via {!Vmm.chain_signature}); peers with equal keys land in one
     group;
   - feeds each Loc-RIB change through [route_update] with the export
     result computed ONCE for a representative member;
   - drains [take_classes] at flush time: members whose pending event
     streams are bytewise identical come back as one class, so the
     daemon encodes the class stream once and fans the frames out.

   Correctness of sharing one export evaluation rests on the caller
   only grouping peers whose outbound chains pass
   {!Vmm.group_invariant}; peer-dependent chains get singleton "solo"
   groups and flow through the very same machinery, which then degrades
   to exactly the per-peer baseline.

   Split horizon makes streams per-member even inside a group: the
   member that sourced a route must not receive it. Events therefore
   carry a target spec ([All_except source] / [Only member]) instead of
   assuming broadcast. Late joiners are handled with per-member join
   serials: an event only applies to members that joined before it was
   enqueued, so a catch-up stream for the joiner cannot duplicate
   broadcasts that were already pending. *)

type target =
  | All_except of int
      (** every member except the named one (−1 or a non-member index
          means genuinely everyone) *)
  | Only of int  (** exactly the named member *)

type 'attrs event =
  | Adv of { prefix : Bgp.Prefix.t; attrs : 'attrs; targets : target }
  | Wd of { prefix : Bgp.Prefix.t; targets : target }

type 'attrs group = {
  id : int;
  key : string;
  mutable members : (int * int) list;
      (* (peer index, join serial), ascending by index; an event with
         serial [s] applies to a member iff its join serial <= s *)
  rib : ('attrs * int) Ptrie.t;
      (* the shared adj-RIB-out: best export plus the member index the
         route must be withheld from (its source; -1 when the source is
         not a member) *)
  mutable events : 'attrs event list;  (* newest first *)
  mutable serial : int;  (* events ever enqueued on this group *)
}

type 'attrs t = {
  equal : 'attrs -> 'attrs -> bool;
  daemon : string;
  groups : (string, 'attrs group) Hashtbl.t;
  by_peer : (int, 'attrs group) Hashtbl.t;
  mutable next_id : int;
  g_active : Telemetry.Gauge.t;
  c_splits : Telemetry.Counter.t;
  c_merges : Telemetry.Counter.t;
  c_saved : Telemetry.Counter.t;
  mutable recorder : Obs.Recorder.t option;
      (** flight recorder; splits, merges and re-key moves land in it *)
}

let create ?telemetry ~daemon ~equal () =
  let tele =
    match telemetry with
    | Some t -> t
    | None -> Telemetry.create ~enabled:false ()
  in
  let labels = [ ("daemon", daemon) ] in
  {
    equal;
    daemon;
    groups = Hashtbl.create 8;
    by_peer = Hashtbl.create 8;
    next_id = 0;
    g_active =
      Telemetry.gauge tele ~help:"update groups currently active"
        ~name:"bgp_update_groups_active" ~labels ();
    c_splits =
      Telemetry.counter tele
        ~help:
          "update-group splits: a re-key moved some members out of a \
           group that kept others"
        ~name:"bgp_group_splits_total" ~labels ();
    c_merges =
      Telemetry.counter tele
        ~help:"update-group merges: members joined an existing group"
        ~name:"bgp_group_merges_total" ~labels ();
    c_saved =
      Telemetry.counter tele
        ~help:
          "UPDATE bytes never re-encoded thanks to shared fan-out \
           ((recipients - 1) x frame length)"
        ~name:"bgp_fanout_bytes_saved_total" ~labels ();
    recorder = None;
  }

let set_recorder t r = t.recorder <- r

let record_group_event t kind fields =
  match t.recorder with
  | None -> ()
  | Some r -> Obs.Recorder.record r kind (("daemon", t.daemon) :: fields)

let group_count t = Hashtbl.length t.groups
let members g = List.map fst g.members
let key g = g.key
let is_member g m = List.mem_assoc m g.members
let member_group t peer = Hashtbl.find_opt t.by_peer peer
let pending g = g.events <> []
let rib_size g = Ptrie.size g.rib
let rib_find g prefix = Ptrie.find g.rib prefix
let note_fanout_saved t n = if n > 0 then Telemetry.Counter.add t.c_saved n

(* Groups created by a re-key when the natural key is taken get a
   "#<id>" suffix; [base_key] recovers the daemon-assigned part. *)
let base_key k =
  match String.index_opt k '#' with
  | Some i -> String.sub k 0 i
  | None -> k

let iter_groups t f =
  (* stable order (by id) so flush framing is reproducible run-to-run *)
  let gs = Hashtbl.fold (fun _ g acc -> g :: acc) t.groups [] in
  List.iter f (List.sort (fun a b -> compare a.id b.id) gs)

let insert_member ms m js =
  let rec go = function
    | [] -> [ (m, js) ]
    | ((x, _) as hd) :: tl when x < m -> hd :: go tl
    | rest -> (m, js) :: rest
  in
  go ms

let new_group t ~key =
  let id = t.next_id in
  t.next_id <- id + 1;
  let g =
    { id; key; members = []; rib = Ptrie.create (); events = []; serial = 0 }
  in
  Hashtbl.replace t.groups key g;
  Telemetry.Gauge.add t.g_active 1;
  g

let drop_if_empty t g =
  if g.members = [] then begin
    Hashtbl.remove t.groups g.key;
    Telemetry.Gauge.add t.g_active (-1)
  end

let detach_member t peer =
  match Hashtbl.find_opt t.by_peer peer with
  | None -> ()
  | Some g ->
    g.members <- List.filter (fun (m, _) -> m <> peer) g.members;
    Hashtbl.remove t.by_peer peer;
    drop_if_empty t g

let leave t ~peer = detach_member t peer

let join t ~peer ~key =
  match Hashtbl.find_opt t.by_peer peer with
  | Some g when base_key g.key = key -> g
  | previous ->
    (match previous with Some _ -> detach_member t peer | None -> ());
    let g =
      match Hashtbl.find_opt t.groups key with
      | Some g ->
        Telemetry.Counter.inc t.c_merges;
        record_group_event t Obs.Recorder.Group_merge
          [ ("peer", string_of_int peer); ("key", key) ];
        g
      | None -> new_group t ~key
    in
    g.members <- insert_member g.members peer g.serial;
    Hashtbl.replace t.by_peer peer g;
    g

let push g ev =
  g.events <- ev :: g.events;
  g.serial <- g.serial + 1

(* One Loc-RIB change, with the export already evaluated once for a
   representative member. [entry = Some (attrs, skip)] means "every
   member except [skip] should carry [attrs]"; [None] means no member
   should carry the route. Emits exactly the per-member advertise /
   withdraw transitions the per-peer baseline would, collapsed into
   targeted events. *)
let route_update t g prefix entry =
  match (entry, Ptrie.find g.rib prefix) with
  | None, None -> ()
  | None, Some (_, skip_old) ->
    ignore (Ptrie.remove g.rib prefix);
    push g (Wd { prefix; targets = All_except skip_old })
  | Some (attrs, skip), None ->
    ignore (Ptrie.replace g.rib prefix (attrs, skip));
    push g (Adv { prefix; attrs; targets = All_except skip })
  | Some (attrs, skip), Some (attrs_old, skip_old) ->
    ignore (Ptrie.replace g.rib prefix (attrs, skip));
    let changed = not (t.equal attrs attrs_old) in
    if skip = skip_old then begin
      if changed then push g (Adv { prefix; attrs; targets = All_except skip })
    end
    else begin
      (* the new source had the route and must lose it *)
      if is_member g skip then push g (Wd { prefix; targets = Only skip });
      if changed then push g (Adv { prefix; attrs; targets = All_except skip })
      else if is_member g skip_old then
        (* unchanged for everyone who had it; only the old source,
           skipped until now, needs the advertisement *)
        push g (Adv { prefix; attrs; targets = Only skip_old })
    end

(* Catch-up for a member that just joined: the daemon re-runs its export
   per Loc-RIB best and feeds the accepted routes here in RIB order.
   Broadcast events already pending predate the member's join serial, so
   a targeted event here can never duplicate one of them. *)
let catch_up_entry g prefix attrs ~skip ~member =
  match Ptrie.find g.rib prefix with
  | Some (_, skip0) ->
    if skip0 <> member then
      push g (Adv { prefix; attrs; targets = Only member })
  | None ->
    ignore (Ptrie.replace g.rib prefix (attrs, skip));
    push g (Adv { prefix; attrs; targets = Only member })

let event_includes ev m =
  match (match ev with Adv a -> a.targets | Wd w -> w.targets) with
  | All_except s -> s <> m
  | Only k -> k = m

(* Drain the pending events into flush classes. Each class is a set of
   members whose event streams are identical, paired with those streams
   in enqueue order — the daemon encodes each class once and fans out.
   Classing is by (first applicable event, excluded-event indices), so
   the common case — every event broadcast, no split horizon inside the
   group — yields a single class of all members. *)
let take_classes g =
  match g.events with
  | [] -> []
  | evs ->
    g.events <- [];
    let arr = Array.of_list (List.rev evs) in
    let n = Array.length arr in
    let base = g.serial - n in
    let classes = Hashtbl.create 4 in
    let order = ref [] in
    List.iter
      (fun (m, js) ->
        let start = max 0 (js - base) in
        let excl = ref [] in
        for i = n - 1 downto start do
          if not (event_includes arr.(i) m) then excl := i :: !excl
        done;
        let cls = (start, !excl) in
        match Hashtbl.find_opt classes cls with
        | Some ms -> ms := m :: !ms
        | None ->
          Hashtbl.replace classes cls (ref [ m ]);
          order := cls :: !order)
      g.members;
    List.rev_map
      (fun ((start, excl) as cls) ->
        let excluded = Hashtbl.create (max 1 (List.length excl)) in
        List.iter (fun i -> Hashtbl.replace excluded i ()) excl;
        (* Splitting the chronological stream into a withdrawal list and
           an advertisement list loses inter-list ordering, and the
           daemon sends withdrawals first — so an advertisement
           superseded by a LATER withdrawal of the same prefix must be
           dropped here, or it would be delivered after that withdrawal
           and leave the receivers holding a ghost route. This mirrors
           the daemons' own pending queues, which purge queued
           advertisements when a withdrawal is queued; every other
           event (duplicate advertisements, a withdrawal followed by a
           fresher advertisement) is kept in enqueue order so grouped
           streams stay byte-identical to the per-peer baseline. *)
        let withdrawn = Hashtbl.create 8 in
        let wds = ref [] and advs = ref [] in
        for i = n - 1 downto start do
          if not (Hashtbl.mem excluded i) then begin
            match arr.(i) with
            | Adv a ->
              if not (Hashtbl.mem withdrawn a.prefix) then
                advs := (a.prefix, a.attrs) :: !advs
            | Wd w ->
              Hashtbl.replace withdrawn w.prefix ();
              wds := w.prefix :: !wds
          end
        done;
        let ms =
          match Hashtbl.find_opt classes cls with
          | Some r -> List.rev !r
          | None -> []
        in
        (ms, !wds, !advs))
      !order

let rib_items g = Ptrie.to_list g.rib

let rib_equal t items g2 =
  let items2 = rib_items g2 in
  List.length items = List.length items2
  && List.for_all2
       (fun (p1, (a1, s1)) (p2, (a2, s2)) ->
         p1 = p2 && s1 = s2 && t.equal a1 a2)
       items items2

(* Re-partition after the export-relevant key of some members changed
   (an xprog was attached/detached, toggling chain signatures or group
   invariance). Must run with all queues drained — moved members carry
   their shared RIB state but not pending events.

   Members of one group wanting one new key move as a cluster: they
   merge into an existing group under that key only when its RIB equals
   theirs (same routes already sent), otherwise they seed a fresh group
   from a copy of their old RIB — no events are emitted, matching the
   baseline, which sends nothing on attach/detach either. *)
let rekey t ~desired =
  let moving = ref [] in
  iter_groups t (fun g ->
      let clusters = Hashtbl.create 2 in
      let corder = ref [] in
      List.iter
        (fun (m, _) ->
          let want = desired m in
          if want <> base_key g.key then begin
            match Hashtbl.find_opt clusters want with
            | Some ms -> ms := m :: !ms
            | None ->
              Hashtbl.replace clusters want (ref [ m ]);
              corder := want :: !corder
          end)
        g.members;
      List.iter
        (fun want ->
          let ms = List.rev !(Hashtbl.find clusters want) in
          moving := (g, want, ms) :: !moving)
        (List.rev !corder));
  List.iter
    (fun (g, want, ms) ->
      if g.events <> [] then
        invalid_arg "Update_group.rekey: pending events (flush first)";
      let items = rib_items g in
      List.iter (fun m -> detach_member t m) ms;
      if Hashtbl.mem t.groups g.key then begin
        Telemetry.Counter.inc t.c_splits;
        record_group_event t Obs.Recorder.Group_split
          [
            ("key", g.key);
            ("moved", String.concat "," (List.map string_of_int ms));
          ]
      end;
      let candidates =
        Hashtbl.fold
          (fun _ g2 acc -> if base_key g2.key = want then g2 :: acc else acc)
          t.groups []
        |> List.sort (fun a b -> compare a.id b.id)
      in
      let target =
        match List.find_opt (rib_equal t items) candidates with
        | Some g2 ->
          if g2.events <> [] then
            invalid_arg "Update_group.rekey: pending events (flush first)";
          Telemetry.Counter.inc t.c_merges;
          record_group_event t Obs.Recorder.Group_merge
            [
              ("key", g2.key);
              ("peers", String.concat "," (List.map string_of_int ms));
            ];
          g2
        | None ->
          let key =
            if Hashtbl.mem t.groups want then
              Printf.sprintf "%s#%d" want t.next_id
            else want
          in
          let g2 = new_group t ~key in
          List.iter (fun (p, v) -> ignore (Ptrie.replace g2.rib p v)) items;
          g2
      in
      record_group_event t Obs.Recorder.Group_rekey
        [
          ("from", g.key);
          ("to", target.key);
          ("peers", String.concat "," (List.map string_of_int ms));
        ];
      List.iter
        (fun m ->
          target.members <- insert_member target.members m target.serial;
          Hashtbl.replace t.by_peer m target)
        ms)
    (List.rev !moving)
