(** The Loc-RIB: per prefix, the candidate routes contributed by each
    peer and the current best under the decision process. Updates are
    incremental: a daemon feeds the post-import-filter route (or a
    withdrawal) and learns whether the best changed — which drives
    re-advertisement towards the Adj-RIB-Out side. *)

type 'r t

type 'r change =
  | Unchanged
  | New_best of 'r  (** best route (re)selected for the prefix *)
  | Withdrawn  (** no candidate left for the prefix *)

val create : 'r Decision.view -> 'r t

val set_compare : 'r t -> ('r -> 'r -> int) option -> unit
(** Override the route order — the hook behind the xBGP BGP_DECISION
    insertion point. [None] restores the RFC 4271 decision process.
    Affects subsequent updates only. *)

val invalidate_best : 'r t -> unit
(** Signal that the installed compare closure's behaviour may have
    changed behind the RIB's back (e.g. a BGP_DECISION chain was
    attached or detached inside it). The incumbent fast path skips the
    full re-selection fold while the route order is stable; after this
    call each prefix re-selects in full on its next update. *)

val update : 'r t -> peer:int -> Bgp.Prefix.t -> 'r option -> 'r change
(** Replace ([Some r]) or withdraw ([None]) the candidate contributed by
    [peer] for a prefix. *)

val best : 'r t -> Bgp.Prefix.t -> 'r option
val best_with_peer : 'r t -> Bgp.Prefix.t -> (int * 'r) option
val candidates : 'r t -> Bgp.Prefix.t -> (int * 'r) list

val count : 'r t -> int
(** Number of prefixes that currently have a best route. O(1). *)

val iter_best : 'r t -> (Bgp.Prefix.t -> 'r -> unit) -> unit
val fold_best : 'r t -> (Bgp.Prefix.t -> 'r -> 'b -> 'b) -> 'b -> 'b
