(* The BGP decision process (RFC 4271 §9.1.2.2 tie-breaking), written
   against an abstract *view* of a route so that both daemons can reuse it
   over their very different internal route representations — the reuse
   boundary mirrors what the protocol specification fixes, while each
   daemon keeps its own storage format (the asymmetry the paper leans on).

   Deviation noted in DESIGN.md: MED comparison is "always-compare-MED
   deterministic" only between routes from the same neighbouring AS, which
   matches the RFC; we apply it pairwise, so route selection is a total
   order (no MED-induced intransitivity). *)

type 'r view = {
  local_pref : 'r -> int;
  as_path_len : 'r -> int;
  origin : 'r -> int;  (** 0 = IGP, 1 = EGP, 2 = incomplete; lower wins *)
  med : 'r -> int;
  neighbor_as : 'r -> int;  (** leftmost AS of the path; 0 if local *)
  is_ebgp : 'r -> bool;
  igp_cost : 'r -> int;  (** IGP metric to NEXT_HOP; lower wins *)
  originator_id : 'r -> int;  (** ORIGINATOR_ID or peer router id *)
  cluster_list_len : 'r -> int;  (** RFC 4456 tie-break *)
  peer_addr : 'r -> int;
}

(* Each step returns the comparison for "a better than b => negative". *)
let steps =
  [
    (fun v a b -> Int.compare (v.local_pref b) (v.local_pref a));
    (fun v a b -> Int.compare (v.as_path_len a) (v.as_path_len b));
    (fun v a b -> Int.compare (v.origin a) (v.origin b));
    (fun v a b ->
      if v.neighbor_as a = v.neighbor_as b then
        Int.compare (v.med a) (v.med b)
      else 0);
    (fun v a b -> Bool.compare (v.is_ebgp b) (v.is_ebgp a));
    (fun v a b -> Int.compare (v.igp_cost a) (v.igp_cost b));
    (fun v a b -> Int.compare (v.originator_id a) (v.originator_id b));
    (fun v a b -> Int.compare (v.cluster_list_len a) (v.cluster_list_len b));
    (fun v a b -> Int.compare (v.peer_addr a) (v.peer_addr b));
  ]

(** Total order on routes; negative means [a] is preferred. *)
let compare view a b =
  let rec go = function
    | [] -> 0
    | step :: rest -> (
      match step view a b with 0 -> go rest | c -> c)
  in
  go steps

(** Best route of a candidate list, [None] on empty input. *)
let best view = function
  | [] -> None
  | r :: rest ->
    Some
      (List.fold_left
         (fun acc r -> if compare view r acc < 0 then r else acc)
         r rest)

(** Index (1-based) of the first tie-break step that separates [a] and [b];
    0 when they are fully tied. Used by tests and debugging. *)
let deciding_step view a b =
  let rec go i = function
    | [] -> 0
    | step :: rest -> if step view a b <> 0 then i else go (i + 1) rest
  in
  go 1 steps

(* Operator-facing names, aligned with [steps] — provenance records and
   [show provenance] explain a win as "step 2 (as_path_len)". *)
let step_name = function
  | 0 -> "tied"
  | 1 -> "local_pref"
  | 2 -> "as_path_len"
  | 3 -> "origin"
  | 4 -> "med"
  | 5 -> "ebgp_over_ibgp"
  | 6 -> "igp_cost"
  | 7 -> "originator_id"
  | 8 -> "cluster_list_len"
  | 9 -> "peer_addr"
  | n -> Printf.sprintf "step_%d" n
