(** Adj-RIB-In / Adj-RIB-Out: one prefix-keyed store per peer (RFC 4271
    §3.2). Daemons keep one [t] for inbound state (routes as learned,
    pre-decision) and one for outbound state (what was advertised to each
    peer, enabling implicit-withdraw suppression). *)

type 'r t

val create : unit -> 'r t

val set : 'r t -> peer:int -> Bgp.Prefix.t -> 'r -> 'r option
(** Store (or replace) a route; returns the previous one. *)

val clear : 'r t -> peer:int -> Bgp.Prefix.t -> 'r option
(** Remove a route; returns the removed one. *)

val find : 'r t -> peer:int -> Bgp.Prefix.t -> 'r option

val drop_peer : 'r t -> int -> unit
(** Drop a peer's whole table (session reset). *)

val iter_peer : 'r t -> peer:int -> (Bgp.Prefix.t -> 'r -> unit) -> unit
val count_peer : 'r t -> peer:int -> int
val peers : 'r t -> int list
val total : 'r t -> int
(** Live bindings across every peer table. O(1) — maintained as a
    running counter rather than folded over the peer tables. *)
