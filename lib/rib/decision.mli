(** The BGP decision process (RFC 4271 §9.1.2.2 tie-breaking), written
    against an abstract {e view} of a route so both daemons reuse it over
    their different internal representations.

    MED is compared only between routes from the same neighbouring AS
    (per the RFC); because the steps are applied pairwise the resulting
    relation is a total preorder — no MED-induced intransitivity. *)

type 'r view = {
  local_pref : 'r -> int;  (** higher wins *)
  as_path_len : 'r -> int;  (** shorter wins *)
  origin : 'r -> int;  (** 0 = IGP, 1 = EGP, 2 = incomplete; lower wins *)
  med : 'r -> int;  (** lower wins, same neighbour AS only *)
  neighbor_as : 'r -> int;  (** leftmost AS of the path; 0 if local *)
  is_ebgp : 'r -> bool;  (** eBGP-learned beats iBGP-learned *)
  igp_cost : 'r -> int;  (** IGP metric to NEXT_HOP; lower wins *)
  originator_id : 'r -> int;  (** ORIGINATOR_ID or peer router id *)
  cluster_list_len : 'r -> int;  (** RFC 4456 tie-break *)
  peer_addr : 'r -> int;  (** final tie-break *)
}

val compare : 'r view -> 'r -> 'r -> int
(** Total order; negative means the first route is preferred. *)

val best : 'r view -> 'r list -> 'r option
(** Best route of a candidate list; [None] on empty input. *)

val deciding_step : 'r view -> 'r -> 'r -> int
(** 1-based index of the first tie-break step separating the two routes;
    0 when fully tied. For tests and debugging. *)

val step_name : int -> string
(** Operator-facing name of a {!deciding_step} index ([0] = ["tied"],
    [1] = ["local_pref"], ... [9] = ["peer_addr"]) — provenance records
    and [show provenance] render wins with it. *)
