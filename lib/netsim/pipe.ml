(* A reliable, in-order, full-duplex byte pipe between two routers —
   the simulated stand-in for the TCP sessions of the paper's testbed
   (links L1/L2 in Fig. 3).

   Each direction delivers byte chunks to the remote receiver callback
   after [latency] microseconds; the scheduler's FIFO tie-break keeps
   chunks in order. Receivers deframe the stream themselves (BGP messages
   carry their own length), so a pipe knows nothing about BGP. *)

type port = {
  sched : Sched.t;
  latency : int;
  mutable receiver : (bytes -> unit) option;
  mutable peer : port option;
  mutable up : bool;
  mutable tx_bytes : int;
  mutable rx_backlog : bytes list;  (* chunks arriving before a receiver *)
  c_tx : Telemetry.Counter.t;
  g_inflight : Telemetry.Gauge.t;
      (* chunks sent but not yet delivered in this direction; its
         high-water mark is the link's peak queue depth *)
}

(* unmonitored pipes share one disabled registry (nobody reads it) *)
let null_tele = lazy (Telemetry.create ~enabled:false ())

let make_port sched latency tele ~pipe ~end_ =
  let labels = [ ("pipe", pipe); ("end", end_) ] in
  {
    sched;
    latency;
    receiver = None;
    peer = None;
    up = true;
    tx_bytes = 0;
    rx_backlog = [];
    c_tx =
      Telemetry.counter tele ~help:"bytes sent into the pipe"
        ~name:"net_tx_bytes_total" ~labels ();
    g_inflight =
      Telemetry.gauge tele
        ~help:"chunks sent but not yet delivered (max = peak queue depth)"
        ~name:"net_in_flight_chunks" ~labels ();
  }

(** Create a pipe; returns its two ports. [latency] in µs (default 100).
    [telemetry]/[name] label the pipe's tx-bytes counters and in-flight
    gauges ([net_*], labels [pipe]/[end]). *)
let create ?telemetry ?(name = "pipe") ?(latency = 100) sched =
  let tele =
    match telemetry with Some t -> t | None -> Lazy.force null_tele
  in
  let a = make_port sched latency tele ~pipe:name ~end_:"a"
  and b = make_port sched latency tele ~pipe:name ~end_:"b" in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)

let deliver port chunk =
  match port.receiver with
  | Some f -> f chunk
  | None -> port.rx_backlog <- port.rx_backlog @ [ chunk ]

(** Install the receive callback; any chunks that arrived early are
    flushed to it immediately. *)
let set_receiver port f =
  port.receiver <- Some f;
  let backlog = port.rx_backlog in
  port.rx_backlog <- [];
  List.iter f backlog

(** Send a chunk to the remote side. Silently dropped when the pipe is
    down (the session layer notices via its hold timer). *)
let send port chunk =
  match port.peer with
  | None -> invalid_arg "Pipe.send: unconnected port"
  | Some peer ->
    if port.up && peer.up then begin
      port.tx_bytes <- port.tx_bytes + Bytes.length chunk;
      Telemetry.Counter.add port.c_tx (Bytes.length chunk);
      Telemetry.Gauge.add port.g_inflight 1;
      Sched.after port.sched port.latency (fun () ->
          Telemetry.Gauge.add port.g_inflight (-1);
          deliver peer chunk)
    end

(** Fan one chunk out to several ports. The single buffer is shared by
    every delivery — each port's byte accounting counts the full length,
    but nothing is copied per port (delivery already passes chunks by
    reference; this entry point makes the sharing contract explicit for
    the update-group fast path). Receivers must treat delivered chunks
    as immutable. *)
let send_shared ports chunk = List.iter (fun port -> send port chunk) ports

(** Take the link down/up (failure injection for §3.1 / §3.3). *)
let set_up port up =
  port.up <- up;
  match port.peer with Some p -> p.up <- up | None -> ()

let is_up port = port.up
let bytes_sent port = port.tx_bytes
