(** A reliable, in-order, full-duplex byte pipe between two routers — the
    simulated stand-in for the TCP sessions of the paper's testbed
    (links L1/L2 of Fig. 3).

    Each direction delivers byte chunks to the remote receiver after a
    latency; the scheduler's FIFO tie-break keeps them in order.
    Receivers deframe the stream themselves — a pipe knows nothing about
    BGP. *)

type port

val create :
  ?telemetry:Telemetry.t -> ?name:string -> ?latency:int -> Sched.t ->
  port * port
(** Create a pipe; [latency] in microseconds (default 100). [telemetry]
    and [name] label the pipe's tx-bytes counters and in-flight (queue
    depth) gauges ([net_tx_bytes_total] / [net_in_flight_chunks], labels
    [pipe]/[end]); without them the pipe records into a shared disabled
    registry. *)

val set_receiver : port -> (bytes -> unit) -> unit
(** Install the receive callback; chunks that arrived early are flushed
    to it immediately. *)

val send : port -> bytes -> unit
(** Send to the remote side; silently dropped while the pipe is down (the
    session layer notices via its hold timer).
    @raise Invalid_argument on an unconnected port. *)

val send_shared : port list -> bytes -> unit
(** Fan one chunk out to several ports, sharing the single buffer across
    every delivery (no per-port copy; per-port byte accounting still
    counts the full length). Receivers must treat delivered chunks as
    immutable.
    @raise Invalid_argument if any port is unconnected. *)

val set_up : port -> bool -> unit
(** Fail / repair the link (both directions). *)

val is_up : port -> bool
val bytes_sent : port -> int
