(* The differential oracle.

   One case, three kinds of checks depending on its scenario:

   - host differential: the same route table and the same extension
     manifest through both the FRR-like and the BIRD-like testbed; the
     xBGP-visible state (DUT Loc-RIB and downstream Loc-RIB, rendered in
     the neutral codec form and canonically sorted) must be identical.
   - hostile peer: the same mutated wire frames against an established
     session on each host; the surviving Loc-RIB (normalized to the
     attributes both hosts represent) and the session fate must agree.
   - VM safety: every generated program either fails the verifier with a
     clean error list, or executes to an identical outcome on every
     execution engine (interpreter, closure-threaded, block-compiled) —
     a value or a contained fault, never an escaped exception — with an
     identical final register file and an identical host-visible helper
     trace, and survives a full VMM round trip per engine.

   A [Crash] finding means an exception escaped a layer that promises
   not to raise; a [Divergence] finding means the two hosts (or the
   engines) disagreed about xBGP-visible state. *)

type kind = Divergence | Crash

type finding = { kind : kind; detail : string }

let kind_name = function Divergence -> "divergence" | Crash -> "crash"

let pp_finding ppf f = Fmt.pf ppf "[%s] %s" (kind_name f.kind) f.detail

let divergence fmt = Fmt.kstr (fun s -> { kind = Divergence; detail = s }) fmt
let crash fmt = Fmt.kstr (fun s -> { kind = Crash; detail = s }) fmt

(* --- snapshot normalization --- *)

(* Drop attributes outside the shared native vocabulary (the FRR-like
   parser discards Unknown attributes by design) and sort the rest into
   the canonical wire order, so list-construction order cannot fake a
   divergence. *)
let normalize snap =
  List.map
    (fun (p, attrs) ->
      let attrs =
        List.filter
          (fun (a : Bgp.Attr.t) ->
            match a.value with Bgp.Attr.Unknown _ -> false | _ -> true)
          attrs
      in
      (p, Bgp.Attr.sort_canonical attrs))
    snap

let pp_route ppf (p, attrs) =
  Fmt.pf ppf "%a [%a]" Bgp.Prefix.pp p
    (Fmt.list ~sep:(Fmt.any "; ") Bgp.Attr.pp)
    attrs

(* First difference between two normalized snapshots, if any. *)
let diff_snapshots ~what a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> None
    | ra :: _, [] -> Some (Fmt.str "%s: %a only on frr" what pp_route ra)
    | [], rb :: _ -> Some (Fmt.str "%s: %a only on bird" what pp_route rb)
    | ((pa, aa) as ra) :: ta, ((pb, ab) as rb) :: tb ->
      let c = Bgp.Prefix.compare pa pb in
      if c < 0 then Some (Fmt.str "%s: %a only on frr" what pp_route ra)
      else if c > 0 then Some (Fmt.str "%s: %a only on bird" what pp_route rb)
      else if
        List.length aa <> List.length ab
        || not (List.for_all2 Bgp.Attr.equal aa ab)
      then
        Some
          (Fmt.str "%s: %a differs: frr=%a bird=%a" what Bgp.Prefix.pp pa
             pp_route ra pp_route rb)
      else go ta tb
  in
  go a b

(* --- host differential over the three-router testbed --- *)

type host_state = {
  dut : (Bgp.Prefix.t * Bgp.Attr.t list) list;
  down : (Bgp.Prefix.t * Bgp.Attr.t list) list;
  vmm_fault : string option;
  tail : string list;  (** DUT flight-recorder tail, report context *)
}

(* Append the legs' flight-recorder tails to the last finding, so a
   divergence report shows what the DUTs were doing right before the
   states were snapshotted — without changing the finding count any
   caller asserts on. *)
let with_tails tails findings =
  let text =
    String.concat "\n"
      (List.concat_map
         (fun (who, lines) ->
           if lines = [] then []
           else Printf.sprintf "  %s flight-recorder tail:" who :: lines)
         tails)
  in
  if text = "" then findings
  else
    match List.rev findings with
    | [] -> []
    | last :: rest ->
      List.rev ({ last with detail = last.detail ^ "\n" ^ text } :: rest)

let manifest_exn name =
  match Xprogs.Registry.find_manifest name with
  | Some m -> m
  | None -> invalid_arg ("Oracle: unknown manifest " ^ name)

let mode_for host (c : Gen.case) =
  let module T = Scenario.Testbed in
  match c.scenario with
  | Gen.Plain_ebgp -> T.mode ~host ~ibgp:false ()
  | Gen.Rr_ibgp ->
    T.mode ~host ~ibgp:true ~manifest:(manifest_exn "route_reflector") ()
  | Gen.Ov_ebgp ->
    T.mode ~host ~ibgp:false
      ~manifest:(manifest_exn "origin_validation")
      ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table c.roas) ]
      ()
  | Gen.Med_ebgp ->
    T.mode ~host ~ibgp:false ~manifest:(manifest_exn "med_compare") ()
  | Gen.Strip_ebgp ->
    T.mode ~host ~ibgp:false ~manifest:(manifest_exn "community_strip") ()
  | Gen.Hostile_peer | Gen.Vm_soup | Gen.Vm_guided ->
    invalid_arg "Oracle.mode_for: not a testbed scenario"

let settle_us = 30_000_000 (* 30 simulated seconds after the feed *)

let run_testbed host (c : Gen.case) : host_state =
  let module T = Scenario.Testbed in
  let tb = T.create (mode_for host c) in
  let rc = Obs.Recorder.create ~capacity:4096 ~name:"dut" () in
  Obs.Recorder.set_clock rc (fun () -> Netsim.Sched.now tb.sched);
  Scenario.Daemon.set_recorder tb.dut (Some rc);
  T.establish tb;
  T.feed tb c.routes;
  ignore (Netsim.Sched.run tb.sched ~until:(Netsim.Sched.now tb.sched + settle_us));
  {
    dut = normalize (Scenario.Daemon.loc_snapshot tb.dut);
    down = normalize (Frrouting.Bgpd.loc_snapshot tb.downstream);
    (* the structured record carries engine/slot/disassembly — worth the
       extra words in a divergence report *)
    vmm_fault =
      Option.bind tb.dut_vmm (fun vmm ->
          Option.map Xbgp.Vmm.fault_detail (Xbgp.Vmm.last_fault_record vmm));
    tail = Obs.Recorder.tail_lines ~n:12 ~prefix:"    " rc;
  }

(* [perturb] artificially corrupts the BIRD-side view — the knob the
   acceptance test and --force-divergence use to prove the oracle,
   shrinker and replay pipeline actually fire. *)
let perturb_state st =
  match st.dut with [] -> st | _ :: rest -> { st with dut = rest }

let run_differential ~perturb (c : Gen.case) =
  let guarded host f =
    match f () with
    | st -> Ok st
    | exception e ->
      Error
        (crash "%s testbed raised %s on %a" host (Printexc.to_string e)
           Gen.pp_case c)
  in
  match
    ( guarded "frr" (fun () -> run_testbed `Frr c),
      guarded "bird" (fun () -> run_testbed `Bird c) )
  with
  | Error f, _ | _, Error f -> [ f ]
  | Ok frr, Ok bird ->
    let bird = if perturb then perturb_state bird else bird in
    let faults =
      List.filter_map
        (fun (host, st) ->
          Option.map (fun e -> crash "%s vmm fault: %s" host e) st.vmm_fault)
        [ ("frr", frr); ("bird", bird) ]
    in
    let diffs =
      List.filter_map
        (fun x -> x)
        [
          diff_snapshots ~what:"dut loc-rib" frr.dut bird.dut;
          diff_snapshots ~what:"downstream loc-rib" frr.down bird.down;
        ]
      |> List.map (fun d -> divergence "%s" d)
    in
    with_tails
      [ ("frr", frr.tail); ("bird", bird.tail) ]
      (faults @ diffs)

(* --- hostile peer --- *)

(* A scripted "attacker" drives one side of a pipe by hand: it completes
   the OPEN/KEEPALIVE handshake like a well-behaved peer, then injects
   the case's raw frames verbatim. The DUT's session layer is shared
   code, so framing-level behavior is identical by construction; what
   this mode exercises is each daemon's import path on decodable-but-
   odd UPDATEs, and the no-exceptions guarantee. *)

type hostile_state = {
  rib : (Bgp.Prefix.t * Bgp.Attr.t list) list;
  session_up : bool;
}

let attacker_as = 65009
let attacker_addr = Bgp.Prefix.addr_of_quad (10, 9, 0, 2)
let dut_addr = Bgp.Prefix.addr_of_quad (10, 9, 0, 1)

let run_hostile_host host (c : Gen.case) : hostile_state =
  Frrouting.Attr_intern.reset_intern_table ();
  let sched = Netsim.Sched.create () in
  let p_atk, p_dut = Netsim.Pipe.create sched in
  let dut =
    match host with
    | `Frr ->
      Scenario.Daemon.Frr
        (Frrouting.Bgpd.create ~sched
           (Frrouting.Bgpd.config ~name:"dut" ~router_id:dut_addr
              ~local_as:65000 ~local_addr:dut_addr ())
           [
             {
               Frrouting.Bgpd.pname = "attacker";
               remote_as = attacker_as;
               remote_addr = attacker_addr;
               rr_client = false;
               port = p_dut;
             };
           ])
    | `Bird ->
      Scenario.Daemon.Bird
        (Bird.Bgpd.create ~sched
           (Bird.Bgpd.config ~name:"dut" ~router_id:dut_addr ~local_as:65000
              ~local_addr:dut_addr ())
           [
             {
               Bird.Bgpd.pname = "attacker";
               remote_as = attacker_as;
               remote_addr = attacker_addr;
               rr_client = false;
               port = p_dut;
             };
           ])
  in
  (* the attacker half: answer the DUT's OPEN, then stay silent except
     for the injected frames *)
  let pending = ref Bytes.empty in
  let answered = ref false in
  Netsim.Pipe.set_receiver p_atk (fun chunk ->
      pending :=
        (if Bytes.length !pending = 0 then chunk
         else Bytes.cat !pending chunk);
      match Bgp.Message.deframe !pending with
      | frames, rest ->
        pending := rest;
        List.iter
          (fun raw ->
            match Bgp.Message.decode raw with
            | Bgp.Message.Open _ when not !answered ->
              answered := true;
              Netsim.Pipe.send p_atk
                (Bgp.Message.encode
                   (Bgp.Message.Open
                      {
                        version = 4;
                        my_as = attacker_as;
                        hold_time = 90;
                        bgp_id = attacker_addr;
                      }));
              Netsim.Pipe.send p_atk (Bgp.Message.encode Bgp.Message.Keepalive)
            | _ -> ()
            | exception Bgp.Message.Parse_error _ -> ())
          frames
      | exception Bgp.Message.Parse_error _ -> pending := Bytes.empty);
  Scenario.Daemon.start dut;
  let up () = Scenario.Daemon.peer_established dut 0 in
  if not (Netsim.Sched.run_until sched up) then
    failwith "Oracle.run_hostile: session did not establish";
  (* inject the frames 1 ms apart, then let the dust settle *)
  List.iteri
    (fun i frame ->
      Netsim.Sched.after sched (1_000 * (i + 1)) (fun () ->
          Netsim.Pipe.send p_atk frame))
    c.frames;
  ignore (Netsim.Sched.run sched ~until:(Netsim.Sched.now sched + 10_000_000));
  {
    rib = normalize (Scenario.Daemon.loc_snapshot dut);
    session_up = Scenario.Daemon.peer_established dut 0;
  }

let run_hostile ~perturb (c : Gen.case) =
  let guarded host f =
    match f () with
    | st -> Ok st
    | exception e ->
      Error
        (crash "%s hostile rig raised %s on %a" host (Printexc.to_string e)
           Gen.pp_case c)
  in
  match
    ( guarded "frr" (fun () -> run_hostile_host `Frr c),
      guarded "bird" (fun () -> run_hostile_host `Bird c) )
  with
  | Error f, _ | _, Error f -> [ f ]
  | Ok frr, Ok bird ->
    let bird =
      if perturb then { bird with rib = (match bird.rib with [] -> [] | _ :: t -> t) }
      else bird
    in
    let session =
      if frr.session_up <> bird.session_up then
        [
          divergence "session fate differs: frr %s, bird %s"
            (if frr.session_up then "up" else "closed")
            (if bird.session_up then "up" else "closed");
        ]
      else []
    in
    let rib =
      match diff_snapshots ~what:"hostile loc-rib" frr.rib bird.rib with
      | Some d -> [ divergence "%s" d ]
      | None -> []
    in
    session @ rib

(* --- VM / verifier safety --- *)

type vm_result = Value of int64 | Fault of string | Escaped of string

type vm_outcome = {
  result : vm_result;
  regs : int64 array;  (** r0..r10 after the run (or at the fault) *)
  calls : (int * int64 array) list;
      (** host-visible helper trace, oldest first: (id, argument
          registers r1..r5 at the call) *)
}

(* Recording helpers for every id the soup generator emits (0..24): each
   call appends its id and a *copy* of the argument registers to the
   trace — the block engine reuses one argument buffer per call site, so
   aliasing it would record lies — and returns a deterministic mix of id
   and arguments, so helper results feed back into the program. *)
let recording_helper_ids = List.init 25 Fun.id

let recording_helpers trace =
  List.map
    (fun id ->
      ( id,
        fun _vm (a : int64 array) ->
          let args = Array.copy a in
          trace := (id, args) :: !trace;
          let open Int64 in
          Array.fold_left
            (fun acc v -> add (mul acc 31L) v)
            (mul (of_int (id + 1)) 0x9E3779B97F4A7C15L)
            args ))
    recording_helper_ids

let run_engine engine prog : vm_outcome =
  let trace = ref [] in
  let vm =
    Ebpf.Vm.create ~budget:20_000 ~engine ~helpers:(recording_helpers trace)
      prog
  in
  let result =
    match Ebpf.Vm.run vm with
    | v -> Value v
    | exception Ebpf.Vm.Error e -> Fault e
    | exception Ebpf.Memory.Fault e -> Fault e
    | exception e -> Escaped (Printexc.to_string e)
  in
  let regs =
    Array.init 11 (fun i -> Ebpf.Vm.reg vm (Ebpf.Insn.reg_of_index i))
  in
  { result; regs; calls = List.rev !trace }

let engine_name = Ebpf.Vm.engine_name

(* Canonical textual fingerprint of [Vmm.map_state] — the unit the
   map-state oracle compares across engines, fan-out legs and chaos
   legs. Hex-rendered so a divergence report is printable byte-for-byte. *)
let render_map_state ms =
  let hex s =
    String.to_seq s
    |> Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c))
    |> List.of_seq |> String.concat ""
  in
  ms
  |> List.map (fun (prog, maps) ->
         Printf.sprintf "%s{%s}" prog
           (String.concat ";"
              (List.map
                 (fun (m, entries) ->
                   Printf.sprintf "%s:[%s]" m
                     (String.concat ","
                        (List.map
                           (fun (k, v) -> hex k ^ "=" ^ hex v)
                           entries)))
                 maps)))
  |> String.concat "|"

(* Engine-blind provenance fingerprint of the dispatch the VMM just
   traced. [Obs.Provenance.step] embeds the engine name (truthful
   display), so the cross-engine oracle renders every field *but* that
   one: program, bytecode, dynamic verdict, attribute mutability and
   writable maps must all agree between the generic loop and the fused
   chain. *)
let render_provenance = function
  | None -> "-"
  | Some steps ->
    String.concat ";"
      (List.map
         (fun (s : Obs.Provenance.step) ->
           Printf.sprintf "%s/%s:%s%s[%s]" s.program s.bytecode s.outcome
             (if s.attrs_mutated then "!" else "")
             (String.concat "," s.maps_written))
         steps)

(* Full VMM round trip on one engine: register the program
   (re-verifying it, now including the static map-access checks against
   the declared map), attach it to the inbound filter and run it the
   way a daemon would. The VMM contract is that nothing escapes [run] —
   faults turn into the native default. Returns the chain result, the
   fault/fallback counters, the final map-state fingerprint and the
   dispatch's provenance fingerprint, all of which every engine must
   agree on. *)
let vmm_round_trip engine prog :
    (int64 * int * int * string * string, string) result =
  match
    let xp =
      Xbgp.Xprog.v ~name:"fuzzcase"
        ~maps:
          [ Xbgp.Xprog.map ~name:"m0" ~key_size:4 ~value_size:8 ~max_entries:8 () ]
        [ ("main", prog) ]
    in
    let vmm = Xbgp.Vmm.create ~budget:20_000 ~engine ~host:"fuzz" () in
    match Xbgp.Vmm.register vmm xp with
    | Ok () -> (
      match
        Xbgp.Vmm.attach vmm ~program:"fuzzcase" ~bytecode:"main"
          ~point:Xbgp.Api.Bgp_inbound_filter ~order:0
      with
      | Ok () ->
        let prefix_arg = Bytes.make 5 '\x00' in
        let v =
          Xbgp.Vmm.run vmm Xbgp.Api.Bgp_inbound_filter
            ~ops:Xbgp.Host_intf.null_ops
            ~args:
              (Xbgp.Host_intf.Args.of_list
                 [ (Xbgp.Api.arg_prefix, prefix_arg) ])
            ~default:(fun () -> 0L)
        in
        let prov =
          render_provenance
            (Xbgp.Vmm.last_trace vmm Xbgp.Api.Bgp_inbound_filter)
        in
        let st = Xbgp.Vmm.stats vmm in
        ( v,
          st.faults,
          st.native_fallbacks,
          render_map_state (Xbgp.Vmm.map_state vmm),
          prov )
      | Error _ -> (0L, 0, 0, "", ""))
    | Error _ -> (0L, 0, 0, "", "")
  with
  | r -> Ok r
  | exception e -> Error (Printexc.to_string e)

let pp_regs ppf regs =
  Fmt.pf ppf "%a"
    Fmt.(array ~sep:(any " ") (fmt "%Lx"))
    regs

let first_trace_diff a b =
  let entry ppf (id, args) = Fmt.pf ppf "h%d(%a)" id pp_regs args in
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | x :: _, [] -> Some (i, Fmt.str "%a vs end-of-trace" entry x)
    | [], y :: _ -> Some (i, Fmt.str "end-of-trace vs %a" entry y)
    | ((ia, aa) as x) :: ta, ((ib, ab) as y) :: tb ->
      if ia = ib && aa = ab then go (i + 1) ta tb
      else Some (i, Fmt.str "%a vs %a" entry x entry y)
  in
  go 0 a b

(* Compare one engine's outcome against the interpreter baseline.
   Outcomes must agree in kind (value vs fault); on success the value,
   the full register file and the helper trace must be identical; on a
   fault the traces must still be identical (the fault messages are not
   compared — the engines word them identically today, but the
   equivalence contract is the fault itself, not its rendering). *)
let compare_outcomes ~pi ~base:(bn, (b : vm_outcome)) (en, (e : vm_outcome)) =
  let trace_diff () =
    match first_trace_diff b.calls e.calls with
    | None -> []
    | Some (i, d) ->
      [
        divergence "engine divergence on prog %d: helper trace differs at call %d: %s=%s"
          pi i (Fmt.str "%s vs %s" bn en) d;
      ]
  in
  match (b.result, e.result) with
  | Escaped _, _ | _, Escaped _ -> [] (* reported separately as crashes *)
  | Value vb, Value ve ->
    let value =
      if Int64.equal vb ve then []
      else
        [
          divergence "engine divergence on prog %d: %s=%Ld %s=%Ld" pi bn vb en
            ve;
        ]
    in
    let regs =
      if b.regs = e.regs then []
      else
        [
          divergence
            "engine divergence on prog %d: registers differ: %s=[%a] %s=[%a]"
            pi bn pp_regs b.regs en pp_regs e.regs;
        ]
    in
    value @ regs @ trace_diff ()
  | Value v, Fault f | Fault f, Value v ->
    [
      divergence
        "engine divergence on prog %d (%s vs %s): one returned %Ld, the \
         other faulted (%s)"
        pi bn en v f;
    ]
  | Fault _, Fault _ -> trace_diff ()

let check_prog ~perturb pi prog =
  match Ebpf.Verifier.check prog with
  | exception e ->
    [ crash "verifier raised %s on prog %d" (Printexc.to_string e) pi ]
  | Error _ -> [] (* clean rejection is the success case *)
  | Ok () ->
    let outs =
      List.map (fun e -> (e, run_engine e prog)) Ebpf.Vm.all_engines
    in
    (* the perturb knob corrupts the newest engine's view, proving the
       N-way oracle and the shrink/replay pipeline fire end to end *)
    let outs =
      if not perturb then outs
      else
        List.map
          (fun (e, o) ->
            match (e, o.result) with
            | Ebpf.Vm.Chain, Value v ->
              (e, { o with result = Value (Int64.add v 1L) })
            | _ -> (e, o))
          outs
    in
    let escaped =
      List.filter_map
        (fun (e, o) ->
          match o.result with
          | Escaped msg ->
            Some
              (crash "%s engine let %s escape on prog %d" (engine_name e) msg
                 pi)
          | _ -> None)
        outs
    in
    let base, rest =
      match outs with
      | (be, bo) :: rest -> ((engine_name be, bo), rest)
      | [] -> assert false
    in
    let diverged =
      List.concat_map
        (fun (e, o) -> compare_outcomes ~pi ~base (engine_name e, o))
        rest
    in
    (* every engine must also survive — and agree across — a full VMM
       round trip (real helpers, heap and scratch wired in) *)
    let vmm_runs =
      List.map (fun e -> (e, vmm_round_trip e prog)) Ebpf.Vm.all_engines
    in
    let vmm_escaped =
      List.filter_map
        (fun (e, r) ->
          match r with
          | Error msg ->
            Some
              (crash "vmm (%s engine) let %s escape on prog %d"
                 (engine_name e) msg pi)
          | Ok _ -> None)
        vmm_runs
    in
    let vmm_diverged =
      match vmm_runs with
      | (be, Ok bres) :: rest ->
        List.filter_map
          (fun (e, r) ->
            match r with
            | Ok res when res <> bres ->
              let render (v, f, nf, ms, prov) =
                Fmt.str "r0=%Ld faults=%d fallbacks=%d maps=%s prov=%s" v f nf
                  ms prov
              in
              Some
                (divergence
                   "vmm divergence on prog %d: %s=(%s) %s=(%s)" pi
                   (engine_name be) (render bres) (engine_name e) (render res))
            | _ -> None)
          rest
      | _ -> []
    in
    escaped @ diverged @ vmm_escaped @ vmm_diverged

let run_vm ~perturb (c : Gen.case) =
  List.concat (List.mapi (fun i p -> check_prog ~perturb i p) c.progs)

(* --- entry point --- *)

let run ?(perturb = false) (c : Gen.case) : finding list =
  match c.scenario with
  | Gen.Plain_ebgp | Gen.Rr_ibgp | Gen.Ov_ebgp | Gen.Med_ebgp | Gen.Strip_ebgp
    ->
    run_differential ~perturb c
  | Gen.Hostile_peer -> run_hostile ~perturb c
  | Gen.Vm_soup | Gen.Vm_guided -> run_vm ~perturb c
