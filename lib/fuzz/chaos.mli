(** The config-space chaos campaign: run each {!Config_gen} case — same
    topology, route feed and fault schedule — once per knob-grid leg,
    and demand per-phase convergence, route-for-route equivalence across
    the grid, and telemetry invariants (monotone counters, no leaked
    in-flight pipe bytes, update groups re-merged after churn). *)

type cls = Convergence | Equivalence | Telemetry_oracle | Crash
(** Divergence classes; shrinking preserves the class, not just "some
    finding". *)

type finding = { cls : cls; detail : string }

val cls_name : cls -> string
val cls_of_name : string -> cls option
val pp_finding : Format.formatter -> finding -> unit
val classes_of : finding list -> cls list
(** Distinct classes present, sorted. *)

type phase = {
  label : string;
  dur_us : int;  (** simulated time from phase start to quiescence *)
  locs : (string * (Bgp.Prefix.t * Bgp.Attr.t list) list) list;
  ribs : (Bgp.Prefix.t * Bgp.Attr.t list) list array;
  reach : bool list;
  maps : string;
      (** star: DUT VMM map-state fingerprint ([Oracle.render_map_state]);
          compared leg-against-leg like the routing snapshots *)
}

type leg = {
  knobs : Config_gen.knobs;
  phases : phase list;  (** oldest first *)
  leg_findings : finding list;
  tail : string list;
      (** flight-recorder tail of the leg — attached to failing reports
          as context, never compared between legs *)
}

val phase_budget_us : int
(** Simulated-time convergence budget per phase (60 s). *)

val run_leg : ?shards:int -> Config_gen.case -> Config_gen.knobs -> leg
(** Run one case under one knob leg. [shards] (default 1) runs a star
    case's DUT with that many worker domains — the chaos smoke leg for
    the sharded daemon; fabric cases ignore it. Does not restore the
    global conversion-cache toggles; prefer {!run_case}. *)

val run_case :
  ?perturb:bool ->
  ?shards:int ->
  Config_gen.case ->
  finding list * (string * int) list
(** Run every leg of the case's grid and compare legs 1.. against leg 0.
    Returns all findings plus leg 0's per-phase [(label, simulated us)]
    convergence samples. [perturb] corrupts leg 0's final snapshot — the
    self-test knob proving the oracle and shrink/replay pipeline fire. *)

val shrink_case :
  ?shards:int ->
  perturb:bool ->
  Config_gen.case ->
  classes:cls list ->
  Config_gen.case * int list * int list
(** Jointly ddmin the fault schedule and route table
    ({!Shrink.minimize_multi}) while at least one finding of a class in
    [classes] survives. Returns (minimized case, kept fault indices,
    kept route indices). *)

type failure = {
  case : Config_gen.case;  (** minimized *)
  findings : finding list;  (** findings of the minimized case *)
  classes : cls list;  (** divergence classes of the ORIGINAL case *)
  repro : Replay.Chaos.t;
  repro_path : string option;  (** written when the campaign got [out] *)
}

type summary = {
  cases : int;
  topologies : (string * int) list;  (** histogram, generation order *)
  failures : failure list;
  convergence : (string * int) list;
      (** every case's leg-0 [(phase label, simulated us)] samples — the
          raw material for [bench chaos]'s distributions *)
}

val campaign :
  ?out:string ->
  ?perturb:bool ->
  ?shards:int ->
  ?log:(string -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  summary
(** Run cases [0..cases-1] of [seed]; each failing case is shrunk
    (class-preserving) and, when [out] is given, saved as a
    [Replay.Chaos] reproducer under it. [shards] (default 1) runs every
    star DUT sharded across that many domains — the whole grid must
    still agree leg-for-leg. *)

val replay :
  Replay.Chaos.t ->
  (Config_gen.case * finding list * bool, string) result
(** Regenerate, restrict and re-run a recorded case. The [bool] is
    "reproduced": some finding matches a recorded class (or no classes
    were recorded and any verdict counts). *)

val pp_summary : Format.formatter -> summary -> unit
