(** Seeded generation of chaos-campaign configuration points: random
    points in the shipped configuration matrix (host x engine x caches x
    batching x update groups x telemetry x extension chain x topology)
    plus a seeded fault schedule to run against each point.

    Like {!Gen}, a case is a pure function of (master seed, case index):
    the campaign loop, the shrinker and the replay machinery all
    regenerate the same case from those two integers and restrict it to
    kept fault / route indices. *)

type knobs = {
  host : Scenario.Testbed.host;
  engine : Ebpf.Vm.engine;
  caches : bool;  (** both hosts' attribute conversion caches *)
  batch_updates : bool;
  update_groups : bool;
  telemetry : bool;  (** histograms and spans (counters always count) *)
  span_sampling : int;  (** 1-in-N span sampling, 1 = everything *)
}

type topology =
  | Star of { npeers : int }  (** DUT hub + scripted sinks, hold 3 s *)
  | Fabric of { fconfig : Scenario.Fabric.config; with_transit : bool }
      (** the Fig. 5 data-center fabric, hold 9 s *)

type feed =
  | Dut_originate  (** the DUT originates the table (export-side chaos) *)
  | Sink_announce  (** sink 0 announces it (full pipeline chaos) *)

type fault =
  | Flap of int  (** star: sink link down past the hold timer, restore *)
  | Mid_transfer_fail of int
      (** star: inject fresh routes, fail the link with frames in
          flight, restore after the hold timer *)
  | Roa_swap  (** swap the ROA table (set_xtra + rerun_init), re-feed *)
  | Detach_attach of string
      (** hot-detach one chain program, push a route through the
          shortened chain, re-attach per its manifest *)
  | Fabric_fail of int  (** fabric: fail link [i], settle, repair *)
  | Fabric_double_fail of int * int  (** fabric: two overlapping fails *)

type case = {
  seed : int;
  index : int;
  grid : knobs list;  (** equivalence legs; leg 0 is the case's point *)
  topology : topology;
  feed : feed;
  chain : string list;  (** registry manifest names, load order *)
  limit : int option;  (** prefix_limit threshold, when in the chain *)
  rate : int option;  (** rate_limit window, when in the chain *)
  faults : fault list;
  routes : Dataset.Ris_gen.route list;
  roas : Rpki.Roa.t list;  (** initial ROA table *)
  roas2 : Rpki.Roa.t list;  (** the table Roa_swap installs *)
}

val case : seed:int -> index:int -> case
(** Deterministic: the same (seed, index) always yields the same case —
    knobs, grid, chain, fault schedule, routes and ROA tables. The
    map-carrying chain programs (flap_damping, rate_limit) are drawn
    from an independently seeded stream appended after every other
    field, so cases generated before they existed are unchanged in
    every other respect. *)

val restrict : ?faults:int list -> ?routes:int list -> case -> case
(** Keep only the listed fault / route indices (shrinking, replay); an
    absent argument keeps that list whole. *)

val host_name : Scenario.Testbed.host -> string
val feed_name : feed -> string
val fault_name : fault -> string
val topology_name : topology -> string
val pp_knobs : Format.formatter -> knobs -> unit
val pp_case : Format.formatter -> case -> unit
