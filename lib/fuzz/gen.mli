(** Seeded case generation for the differential fuzzer.

    A case is a pure function of [(seed, index)]: the campaign, the
    shrinker and the replay machinery all regenerate identical inputs
    from those two integers, then {!restrict} them to a subset. Routes
    destined for the host differential carry only attributes both hosts
    represent natively (Unknown attributes are a by-design host
    asymmetry, not a bug — see the GeoLoc use case). *)

type scenario =
  | Plain_ebgp  (** no extension bytecode, eBGP testbed *)
  | Rr_ibgp  (** route_reflector bytecode on an iBGP testbed *)
  | Ov_ebgp  (** origin_validation bytecode + generated ROA table *)
  | Med_ebgp  (** med_compare bytecode at the decision point *)
  | Strip_ebgp  (** community_strip bytecode at the export point *)
  | Hostile_peer  (** mutated wire frames against an established session *)
  | Vm_soup  (** arbitrary instruction soup through verifier + VM *)
  | Vm_guided  (** verifier-accepted programs, engine differential *)

val all_scenarios : scenario list
val scenario_name : scenario -> string
val scenario_of_name : string -> scenario option

type case = {
  seed : int;
  index : int;
  scenario : scenario;
  routes : Dataset.Ris_gen.route list;
  roas : Rpki.Roa.t list;
  frames : bytes list;
  progs : Ebpf.Insn.t list list;
}

val case : seed:int -> index:int -> case
(** Deterministically generate the case for one campaign slot. *)

val restrict :
  ?routes:int list -> ?frames:int list -> ?progs:int list -> case -> case
(** Keep only the listed 0-based indices of each input list (an absent
    argument keeps the list whole) — the shrinker's and replayer's view
    of a reproducer. *)

val pp_case : Format.formatter -> case -> unit
