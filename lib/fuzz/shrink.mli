(** Greedy delta-debugging minimizer over kept-index lists. *)

val minimize : still_fails:(int list -> bool) -> int list -> int list
(** Smallest index subset (under greedy ddmin) for which [still_fails]
    holds; [still_fails] must already hold for the input list and must
    be deterministic. *)

val indices : 'a list -> int list
(** [0; 1; ...; length-1]. *)

val minimize_multi :
  still_fails:(int list array -> bool) -> int list array -> int list array
(** Coordinate-descent {!minimize} over several index lists at once —
    dimension [d] is minimized with the other dimensions pinned to
    their current kept sets, repeating until a (bounded) fixpoint. The
    chaos shrinker uses it to minimize a fault schedule and a route
    table together. [still_fails] must hold for the input array. *)
