(** Greedy delta-debugging minimizer over kept-index lists. *)

val minimize : still_fails:(int list -> bool) -> int list -> int list
(** Smallest index subset (under greedy ddmin) for which [still_fails]
    holds; [still_fails] must already hold for the input list and must
    be deterministic. *)

val indices : 'a list -> int list
(** [0; 1; ...; length-1]. *)
