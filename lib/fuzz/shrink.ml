(* Greedy delta-debugging over index lists.

   The shrinker never mutates case data directly: it minimizes the list
   of *kept indices* into the deterministically regenerated input lists,
   so a shrunk case is exactly "the same case, restricted" — which is
   also what the replay file stores. *)

let remove_slice l start len =
  List.filteri (fun i _ -> i < start || i >= start + len) l

(* ddmin-style: try dropping chunk-sized slices, restarting greedily on
   success and halving the chunk when no slice can go; [still_fails]
   must be a pure predicate (it re-runs the oracle on the restriction). *)
let minimize ~still_fails idxs =
  let rec go idxs chunk =
    if chunk < 1 || idxs = [] then idxs
    else begin
      let n = List.length idxs in
      let rec slices start =
        if start >= n then None
        else
          let cand = remove_slice idxs start chunk in
          if List.length cand < n && still_fails cand then Some cand
          else slices (start + chunk)
      in
      match slices 0 with
      | Some cand -> go cand (min chunk (max 1 (List.length cand / 2)))
      | None -> go idxs (chunk / 2)
    end
  in
  go idxs (max 1 (List.length idxs / 2))

let indices l = List.init (List.length l) (fun i -> i)
