(* Greedy delta-debugging over index lists.

   The shrinker never mutates case data directly: it minimizes the list
   of *kept indices* into the deterministically regenerated input lists,
   so a shrunk case is exactly "the same case, restricted" — which is
   also what the replay file stores. *)

let remove_slice l start len =
  List.filteri (fun i _ -> i < start || i >= start + len) l

(* ddmin-style: try dropping chunk-sized slices, restarting greedily on
   success and halving the chunk when no slice can go; [still_fails]
   must be a pure predicate (it re-runs the oracle on the restriction). *)
let minimize ~still_fails idxs =
  let rec go idxs chunk =
    if chunk < 1 || idxs = [] then idxs
    else begin
      let n = List.length idxs in
      let rec slices start =
        if start >= n then None
        else
          let cand = remove_slice idxs start chunk in
          if List.length cand < n && still_fails cand then Some cand
          else slices (start + chunk)
      in
      match slices 0 with
      | Some cand -> go cand (min chunk (max 1 (List.length cand / 2)))
      | None -> go idxs (chunk / 2)
    end
  in
  go idxs (max 1 (List.length idxs / 2))

let indices l = List.init (List.length l) (fun i -> i)

(* Coordinate-descent ddmin over several index lists at once (the chaos
   shrinker minimizes a fault schedule AND a route table): each pass
   minimizes one dimension with the others pinned to their current kept
   sets, and passes repeat until a fixpoint (bounded, since every pass
   either shrinks something or stops). *)
let minimize_multi ~still_fails dims =
  let cur = Array.copy dims in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 4 do
    changed := false;
    incr passes;
    Array.iteri
      (fun d idxs ->
        let kept =
          minimize
            ~still_fails:(fun cand ->
              let trial = Array.copy cur in
              trial.(d) <- cand;
              still_fails trial)
            idxs
        in
        if List.length kept < List.length idxs then changed := true;
        cur.(d) <- kept)
      cur
  done;
  cur
