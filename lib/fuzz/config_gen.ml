(* Seeded generation of chaos-campaign configuration points.

   A chaos case is a random point in the configuration matrix the
   daemons actually ship: host implementation x eBPF execution engine x
   conversion caches x batched updates x update groups x telemetry /
   span sampling x extension chain x topology — plus a seeded fault
   schedule to run against it. Like {!Gen}, everything is a pure
   function of (master seed, case index), so the shrinker and the
   replay file only ever need to record those two integers plus kept
   indices.

   The knob *grid* is part of the case: leg 0 is the generated point,
   and the remaining legs are systematic mutations (the other host, the
   next engine with every boolean knob flipped) — the oracle demands
   route-for-route equivalence across all legs of the same case, which
   is the configuration-space analogue of the FRR-vs-BIRD differential. *)

module Prng = Dataset.Prng

type knobs = {
  host : Scenario.Testbed.host;
  engine : Ebpf.Vm.engine;
  caches : bool;  (** both hosts' attribute conversion caches *)
  batch_updates : bool;
  update_groups : bool;
  telemetry : bool;  (** histograms and spans (counters always count) *)
  span_sampling : int;  (** 1-in-N span sampling, 1 = everything *)
}

type topology =
  | Star of { npeers : int }  (** DUT hub + scripted sinks, hold 3 s *)
  | Fabric of { fconfig : Scenario.Fabric.config; with_transit : bool }
      (** the Fig. 5 data-center fabric, hold 9 s *)

type feed =
  | Dut_originate  (** the DUT originates the table (export-side chaos) *)
  | Sink_announce  (** sink 0 announces it (full pipeline chaos) *)

type fault =
  | Flap of int  (** star: sink link down past the hold timer, restore *)
  | Mid_transfer_fail of int
      (** star: inject fresh routes, fail the link with frames in
          flight, restore after the hold timer *)
  | Roa_swap  (** swap the ROA table (set_xtra + rerun_init), re-feed *)
  | Detach_attach of string
      (** hot-detach one chain program, push a route through the
          shortened chain, re-attach per its manifest *)
  | Fabric_fail of int  (** fabric: fail link [i], settle, repair *)
  | Fabric_double_fail of int * int  (** fabric: two overlapping fails *)

type case = {
  seed : int;
  index : int;
  grid : knobs list;  (** equivalence legs; leg 0 is the case's point *)
  topology : topology;
  feed : feed;
  chain : string list;  (** registry manifest names, load order *)
  limit : int option;  (** prefix_limit threshold, when in the chain *)
  rate : int option;  (** rate_limit window, when in the chain *)
  faults : fault list;
  routes : Dataset.Ris_gen.route list;
  roas : Rpki.Roa.t list;  (** initial ROA table *)
  roas2 : Rpki.Roa.t list;  (** the table Roa_swap installs *)
}

(* --- names --- *)

let host_name = function `Frr -> "frr" | `Bird -> "bird"

let feed_name = function
  | Dut_originate -> "dut"
  | Sink_announce -> "sink"

let fault_name = function
  | Flap j -> Printf.sprintf "flap:%d" j
  | Mid_transfer_fail j -> Printf.sprintf "midfail:%d" j
  | Roa_swap -> "roa_swap"
  | Detach_attach p -> "rechain:" ^ p
  | Fabric_fail i -> Printf.sprintf "linkfail:%d" i
  | Fabric_double_fail (i, j) -> Printf.sprintf "doublefail:%d+%d" i j

let topology_name = function
  | Star _ -> "star"
  | Fabric { fconfig = `Plain; _ } -> "fabric_plain"
  | Fabric { fconfig = `Same_as; _ } -> "fabric_same_as"
  | Fabric { fconfig = `Xbgp; _ } -> "fabric_xbgp"

let pp_knobs ppf k =
  Fmt.pf ppf "%s/%s caches%c batch%c groups%c tel%c s%d" (host_name k.host)
    (Ebpf.Vm.engine_name k.engine)
    (if k.caches then '+' else '-')
    (if k.batch_updates then '+' else '-')
    (if k.update_groups then '+' else '-')
    (if k.telemetry then '+' else '-')
    k.span_sampling

let pp_case ppf c =
  Fmt.pf ppf "chaos %d/%d %s feed=%s chain=[%s] faults=[%s] (%d legs, %d routes)"
    c.seed c.index (topology_name c.topology) (feed_name c.feed)
    (String.concat "," c.chain)
    (String.concat "," (List.map fault_name c.faults))
    (List.length c.grid) (List.length c.routes)

(* --- knob grid --- *)

let hosts = [| `Frr; `Bird |]
let engines = Array.of_list Ebpf.Vm.all_engines
let other_host = function `Frr -> `Bird | `Bird -> `Frr

let next_engine e =
  let n = Array.length engines in
  let rec idx i = if engines.(i) = e || i = n - 1 then i else idx (i + 1) in
  engines.((idx 0 + 1) mod n)

let gen_knobs rng =
  {
    host = Prng.choose rng hosts;
    engine = Prng.choose rng engines;
    caches = Prng.bool rng;
    batch_updates = Prng.bool rng;
    update_groups = Prng.bool rng;
    telemetry = Prng.bool rng;
    span_sampling = Prng.choose rng [| 1; 1; 4; 16 |];
  }

(* Leg 1 crosses the host (the classic differential); leg 2 moves to the
   next engine and flips every boolean knob at once (any pairwise
   divergence still isolates to one leg pair, since legs are compared
   against leg 0); an occasional leg 3 crosses host *and* knobs. *)
let grid_of rng base =
  let cross = { base with host = other_host base.host } in
  let alt =
    {
      base with
      engine = next_engine base.engine;
      caches = not base.caches;
      batch_updates = not base.batch_updates;
      update_groups = not base.update_groups;
      telemetry = not base.telemetry;
      span_sampling = (if base.span_sampling = 1 then 8 else 1);
    }
  in
  let legs = [ base; cross; alt ] in
  if Prng.int rng 3 = 0 then legs @ [ { alt with host = cross.host } ]
  else legs

(* --- chains --- *)

(* At most one outbound program per chain (two order-0 outbound
   attachments would tie, and execution order among ties is load-order
   trivia, not configuration space worth fuzzing); geoloc is excluded —
   its unknown-attribute host asymmetry is the documented use case, not
   a bug the oracle should drown in. *)
let gen_chain rng ~feed =
  let inbound =
    match feed with
    | Dut_originate -> [] (* locally originated routes skip the import path *)
    | Sink_announce ->
      (if Prng.int rng 2 = 0 then [ "origin_validation" ] else [])
      @ if Prng.int rng 3 = 0 then [ "prefix_limit" ] else []
  in
  let decision = if Prng.int rng 2 = 0 then [ "med_compare" ] else [] in
  let outbound =
    match Prng.int rng 3 with
    | 0 -> [ "community_strip" ]
    | 1 -> [ "igp_filter" ]
    | _ -> []
  in
  inbound @ decision @ outbound

(* --- fault schedules --- *)

(* Sink 0 is the feeder in Sink_announce cases; its link never flaps
   (a scripted sink does not re-announce after a reset, so flapping the
   feeder would just empty the table — the interesting churn is on the
   receiving spokes). *)
let gen_star_fault rng ~npeers ~feed ~chain =
  let target () =
    match feed with
    | Sink_announce -> 1 + Prng.int rng (npeers - 1)
    | Dut_originate -> Prng.int rng npeers
  in
  let candidates =
    [ `Flap; `Mid ]
    @ (if List.mem "origin_validation" chain then [ `Roa ] else [])
    @ if chain <> [] then [ `Detach ] else []
  in
  match Prng.choose rng (Array.of_list candidates) with
  | `Flap -> Flap (target ())
  | `Mid -> Mid_transfer_fail (target ())
  | `Roa -> Roa_swap
  | `Detach ->
    Detach_attach (Prng.choose rng (Array.of_list chain))

let gen_fabric_fault rng ~nlinks =
  if Prng.int rng 3 = 0 then begin
    let i = Prng.int rng nlinks in
    let j = (i + 1 + Prng.int rng (nlinks - 1)) mod nlinks in
    Fabric_double_fail (i, j)
  end
  else Fabric_fail (Prng.int rng nlinks)

(* --- putting a case together --- *)

let case ~seed ~index : case =
  let rng = Prng.create (seed + (index * 0x9E3779B1) + 0xc4a05) in
  let base = gen_knobs rng in
  let grid = grid_of rng base in
  if Prng.int rng 5 = 0 then begin
    (* a Fig. 5 fabric case: loopback-fed, link-level fault schedule *)
    let fconfig = Prng.choose rng [| `Plain; `Plain; `Same_as; `Xbgp; `Xbgp |] in
    let with_transit = Prng.int rng 4 = 0 in
    let nlinks =
      List.length (Dataset.Clos.fig5 ~with_transit ()).Dataset.Clos.links
    in
    let faults =
      List.init (1 + Prng.int rng 2) (fun _ -> gen_fabric_fault rng ~nlinks)
    in
    {
      seed;
      index;
      grid;
      topology = Fabric { fconfig; with_transit };
      feed = Dut_originate;
      chain = [];
      limit = None;
      rate = None;
      faults;
      routes = [];
      roas = [];
      roas2 = [];
    }
  end
  else begin
    let npeers = 2 + Prng.int rng 4 in
    let feed = if Prng.int rng 3 = 0 then Dut_originate else Sink_announce in
    let chain = gen_chain rng ~feed in
    let count = 6 + Prng.int rng 18 in
    let routes =
      Dataset.Ris_gen.generate
        {
          Dataset.Ris_gen.default_config with
          seed = (seed * 7919) + index + 17;
          count;
          disjoint = List.mem "origin_validation" chain;
        }
    in
    let limit =
      if not (List.mem "prefix_limit" chain) then None
      else if Prng.int rng 3 = 0 then
        Some (max 1 ((count / 2) + Prng.int rng (count / 2 + 1)))
      else Some (count + 8)
    in
    let roas, roas2 =
      if List.mem "origin_validation" chain then
        ( Dataset.Ris_gen.roas_for
            ~seed:(Prng.int rng 1_000_000)
            ~valid_pct:60 ~invalid_pct:20 routes,
          Dataset.Ris_gen.roas_for
            ~seed:(Prng.int rng 1_000_000)
            ~valid_pct:40 ~invalid_pct:40 routes )
      else ([], [])
    in
    let faults =
      List.init (Prng.int rng 4) (fun _ ->
          gen_star_fault rng ~npeers ~feed ~chain)
    in
    (* Map-carrying chain programs ride along on sink-fed cases,
       appended AFTER everything above has been drawn and from an
       independently seeded stream, so every existing (seed, index)
       case — and every pinned reproducer — keeps the exact same knobs,
       chain, faults and routes. The trade-off: Detach_attach faults
       generated above never target these two programs. *)
    let chain, rate =
      match feed with
      | Dut_originate -> (chain, None)
      | Sink_announce ->
        let mrng =
          Prng.create ((seed * 31) lxor (index * 0x85EBCA6B) lxor 0x6d6170)
        in
        let damp = Prng.int mrng 3 = 0 in
        let rate =
          if Prng.int mrng 3 = 0 then Some (Prng.int mrng 3) else None
        in
        ( chain
          @ (if damp then [ "flap_damping" ] else [])
          @ (if rate <> None then [ "rate_limit" ] else []),
          rate )
    in
    {
      seed;
      index;
      grid;
      topology = Star { npeers };
      feed;
      chain;
      limit;
      rate;
      faults;
      routes;
      roas;
      roas2;
    }
  end

(* --- restriction (shrinking / replay) --- *)

let keep indices l =
  match indices with
  | None -> l
  | Some idxs -> List.filteri (fun i _ -> List.mem i idxs) l

let restrict ?faults ?routes c =
  { c with faults = keep faults c.faults; routes = keep routes c.routes }
