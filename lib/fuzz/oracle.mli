(** The differential oracle: runs one generated case and reports every
    way the two hosts (or the eBPF execution engines — interpreter,
    closure-threaded, block-compiled) disagreed about xBGP-visible
    state, plus every exception that escaped a layer that promises not
    to raise.

    For VM scenarios the engine comparison is N-way against the
    interpreter baseline: return value, final register file and the
    helper-call trace on success; fault-vs-value and the trace on
    faults; plus a full VMM round trip per engine whose result,
    fault/fallback counters and final map state must agree.

    An empty finding list is the verdict "equivalent and crash-free". *)

type kind =
  | Divergence  (** the hosts / engines disagreed on visible state *)
  | Crash  (** an exception escaped the VM, VMM, verifier or a daemon *)

type finding = { kind : kind; detail : string }

val kind_name : kind -> string
val pp_finding : Format.formatter -> finding -> unit

val run : ?perturb:bool -> Gen.case -> finding list
(** Execute the case's scenario. [perturb] artificially corrupts the
    BIRD-side snapshot (or, for VM scenarios, the block-compiled
    engine's result) — the knob used to prove the oracle/shrink/replay
    pipeline fires end to end. *)

val normalize :
  (Bgp.Prefix.t * Bgp.Attr.t list) list ->
  (Bgp.Prefix.t * Bgp.Attr.t list) list
(** Drop Unknown attributes and sort each attribute list canonically —
    the neutral form compared across hosts (exposed for tests). *)

val render_map_state :
  (string * (string * (string * string) list) list) list -> string
(** Canonical textual fingerprint of [Vmm.map_state]: keys and values
    hex-encoded, entries in the map's canonical (sorted) dump order —
    the unit of comparison for the map-state oracle, shared with the
    fan-out and chaos harnesses. *)
