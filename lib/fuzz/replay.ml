(* The reproducer file format.

   A divergence is only useful if it can be handed around, so every
   finding is written as a small line-oriented text file that pins the
   master seed, the case index and the surviving input indices after
   shrinking. Replaying regenerates the case from (seed, index) — the
   generator is pure — restricts it, and re-runs the oracle.

     # xbgp_fuzz reproducer v1
     seed 42
     case 17
     scenario ov_ebgp
     perturb false
     routes 0 3 9
     note dut loc-rib: 10.1.2.0/24 differs ...

   An absent `routes`/`frames`/`progs` line keeps that input whole. *)

type t = {
  seed : int;
  case_index : int;
  scenario : string;
  perturb : bool;
  routes : int list option;
  frames : int list option;
  progs : int list option;
  note : string;
}

let magic = "# xbgp_fuzz reproducer v1"

let to_string r =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "seed %d" r.seed;
  line "case %d" r.case_index;
  line "scenario %s" r.scenario;
  line "perturb %b" r.perturb;
  let idx_line name = function
    | None -> ()
    | Some idxs ->
      line "%s %s" name (String.concat " " (List.map string_of_int idxs))
  in
  idx_line "routes" r.routes;
  idx_line "frames" r.frames;
  idx_line "progs" r.progs;
  if r.note <> "" then
    line "note %s" (String.map (fun c -> if c = '\n' then ' ' else c) r.note);
  Buffer.contents b

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | m :: rest when m = magic -> (
    let seed = ref None
    and case_index = ref None
    and scenario = ref None
    and perturb = ref false
    and routes = ref None
    and frames = ref None
    and progs = ref None
    and note = ref "" in
    let parse_idxs v =
      String.split_on_char ' ' v
      |> List.filter (fun x -> x <> "")
      |> List.map int_of_string
    in
    try
      List.iter
        (fun l ->
          let key, v =
            (* a fully-shrunk index list serializes as a bare key *)
            match String.index_opt l ' ' with
            | None -> (l, "")
            | Some i ->
              (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
          in
          match key with
          | "seed" -> seed := Some (int_of_string v)
          | "case" -> case_index := Some (int_of_string v)
          | "scenario" -> scenario := Some v
          | "perturb" -> perturb := bool_of_string v
          | "routes" -> routes := Some (parse_idxs v)
          | "frames" -> frames := Some (parse_idxs v)
          | "progs" -> progs := Some (parse_idxs v)
          | "note" -> note := v
          | _ -> failwith ("unknown key: " ^ key))
        rest;
      match (!seed, !case_index, !scenario) with
      | Some seed, Some case_index, Some scenario ->
        if Gen.scenario_of_name scenario = None then
          Error ("unknown scenario: " ^ scenario)
        else
          Ok
            {
              seed;
              case_index;
              scenario;
              perturb = !perturb;
              routes = !routes;
              frames = !frames;
              progs = !progs;
              note = !note;
            }
      | _ -> Error "missing seed, case or scenario line"
    with
    | Failure e -> Error e
    | Invalid_argument e -> Error e)
  | _ -> Error "not an xbgp_fuzz reproducer (bad magic line)"

(* --- case regeneration --- *)

let case_of r =
  let c = Gen.case ~seed:r.seed ~index:r.case_index in
  let got = Gen.scenario_name c.scenario in
  if got <> r.scenario then
    Error
      (Printf.sprintf
         "reproducer names scenario %s but (seed %d, case %d) generates %s — \
          generator version mismatch?"
         r.scenario r.seed r.case_index got)
  else Ok (Gen.restrict ?routes:r.routes ?frames:r.frames ?progs:r.progs c)

(* --- files --- *)

let save ~dir r =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "repro-s%d-c%d.txt" r.seed r.case_index)
  in
  let oc = open_out path in
  output_string oc (to_string r);
  close_out oc;
  path

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e

(* --- chaos reproducers --- *)

(* The chaos campaign's counterpart: same philosophy (regenerate from
   (seed, index), restrict to kept indices), different generator and an
   extra `classes` line pinning the divergence classes the shrinker
   preserved, so replay can tell "reproduced" from "found something
   unrelated".

     # xbgp_fuzz chaos reproducer v1
     seed 42
     case 17
     perturb false
     faults 0 2
     routes 1 4 5
     classes equivalence telemetry
     note frr/int ... vs bird/int ...: phase flap:1: dut loc-rib ... *)

module Chaos = struct
  type t = {
    seed : int;
    case_index : int;
    perturb : bool;
    faults : int list option;
    routes : int list option;
    classes : string list;
    note : string;
  }

  let magic = "# xbgp_fuzz chaos reproducer v1"

  let is_chaos s =
    match String.index_opt s '\n' with
    | Some i -> String.trim (String.sub s 0 i) = magic
    | None -> String.trim s = magic

  let to_string r =
    let b = Buffer.create 256 in
    let line fmt =
      Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
    in
    line "%s" magic;
    line "seed %d" r.seed;
    line "case %d" r.case_index;
    line "perturb %b" r.perturb;
    let idx_line name = function
      | None -> ()
      | Some idxs ->
        line "%s %s" name (String.concat " " (List.map string_of_int idxs))
    in
    idx_line "faults" r.faults;
    idx_line "routes" r.routes;
    if r.classes <> [] then line "classes %s" (String.concat " " r.classes);
    if r.note <> "" then
      line "note %s"
        (String.map (fun c -> if c = '\n' then ' ' else c) r.note);
    Buffer.contents b

  let of_string s =
    let lines =
      String.split_on_char '\n' s
      |> List.map String.trim
      |> List.filter (fun l -> l <> "")
    in
    match lines with
    | m :: rest when m = magic -> (
      let seed = ref None
      and case_index = ref None
      and perturb = ref false
      and faults = ref None
      and routes = ref None
      and classes = ref []
      and note = ref "" in
      let parse_idxs v =
        String.split_on_char ' ' v
        |> List.filter (fun x -> x <> "")
        |> List.map int_of_string
      in
      try
        List.iter
          (fun l ->
            let key, v =
              (* a fully-shrunk index list serializes as a bare key *)
              match String.index_opt l ' ' with
              | None -> (l, "")
              | Some i ->
                ( String.sub l 0 i,
                  String.sub l (i + 1) (String.length l - i - 1) )
            in
            match key with
            | "seed" -> seed := Some (int_of_string v)
            | "case" -> case_index := Some (int_of_string v)
            | "perturb" -> perturb := bool_of_string v
            | "faults" -> faults := Some (parse_idxs v)
            | "routes" -> routes := Some (parse_idxs v)
            | "classes" ->
              classes :=
                String.split_on_char ' ' v |> List.filter (fun x -> x <> "")
            | "note" -> note := v
            | _ -> failwith ("unknown key: " ^ key))
          rest;
        match (!seed, !case_index) with
        | Some seed, Some case_index ->
          Ok
            {
              seed;
              case_index;
              perturb = !perturb;
              faults = !faults;
              routes = !routes;
              classes = !classes;
              note = !note;
            }
        | _ -> Error "missing seed or case line"
      with
      | Failure e -> Error e
      | Invalid_argument e -> Error e)
    | _ -> Error "not an xbgp_fuzz chaos reproducer (bad magic line)"

  let case_of r =
    let c = Config_gen.case ~seed:r.seed ~index:r.case_index in
    Ok (Config_gen.restrict ?faults:r.faults ?routes:r.routes c)

  let save ~dir r =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path =
      Filename.concat dir
        (Printf.sprintf "chaos-s%d-c%d.txt" r.seed r.case_index)
    in
    let oc = open_out path in
    output_string oc (to_string r);
    close_out oc;
    path

  let load path =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> of_string s
    | exception Sys_error e -> Error e
end
