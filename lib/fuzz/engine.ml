(* The campaign loop: generate -> oracle -> (on findings) shrink ->
   write reproducer. Deterministic end to end: the same (seed, cases)
   pair replays the same campaign, and every reproducer regenerates its
   minimized case from the numbers it records. *)

type failure = {
  case : Gen.case;  (** minimized *)
  findings : Oracle.finding list;  (** findings of the minimized case *)
  repro : Replay.t;
  repro_path : string option;  (** written when the campaign has an out dir *)
}

type summary = {
  cases : int;
  scenarios : (string * int) list;  (** histogram, generation order *)
  results : failure list;  (** failing cases only *)
}

let divergences s =
  List.length
    (List.concat_map
       (fun r ->
         List.filter (fun (f : Oracle.finding) -> f.kind = Oracle.Divergence)
           r.findings)
       s.results)

let crashes s =
  List.length
    (List.concat_map
       (fun r ->
         List.filter (fun (f : Oracle.finding) -> f.kind = Oracle.Crash)
           r.findings)
       s.results)

(* --- shrinking one failing case --- *)

(* Minimize whichever input list the scenario actually consumes; the
   predicate re-runs the oracle on the restriction, so shrinking also
   revalidates determinism along the way. *)
let shrink_case ~perturb (c : Gen.case) =
  let fails c' = Oracle.run ~perturb c' <> [] in
  let min_list get restrict_by =
    let kept =
      Shrink.minimize
        ~still_fails:(fun idxs -> fails (restrict_by idxs))
        (Shrink.indices (get c))
    in
    (restrict_by kept, kept)
  in
  match c.scenario with
  | Gen.Plain_ebgp | Gen.Rr_ibgp | Gen.Ov_ebgp | Gen.Med_ebgp | Gen.Strip_ebgp
    ->
    let c', kept =
      min_list
        (fun (c : Gen.case) -> c.routes)
        (fun idxs -> Gen.restrict ~routes:idxs c)
    in
    (c', Some kept, None, None)
  | Gen.Hostile_peer ->
    let c', kept =
      min_list
        (fun (c : Gen.case) -> c.frames)
        (fun idxs -> Gen.restrict ~frames:idxs c)
    in
    (c', None, Some kept, None)
  | Gen.Vm_soup | Gen.Vm_guided ->
    let c', kept =
      min_list
        (fun (c : Gen.case) -> c.progs)
        (fun idxs -> Gen.restrict ~progs:idxs c)
    in
    (c', None, None, Some kept)

let result_of ~perturb ~out (c : Gen.case) =
  let minimized, routes, frames, progs = shrink_case ~perturb c in
  let findings = Oracle.run ~perturb minimized in
  (* shrinking preserves failure, but re-run for the authoritative list *)
  let findings = if findings = [] then Oracle.run ~perturb c else findings in
  let note =
    match findings with [] -> "" | f :: _ -> Fmt.str "%a" Oracle.pp_finding f
  in
  let repro =
    {
      Replay.seed = c.seed;
      case_index = c.index;
      scenario = Gen.scenario_name c.scenario;
      perturb;
      routes;
      frames;
      progs;
      note;
    }
  in
  let repro_path = Option.map (fun dir -> Replay.save ~dir repro) out in
  { case = minimized; findings; repro; repro_path }

(* --- the campaign --- *)

let campaign ?out ?(perturb = false) ?(log = fun _ -> ()) ~seed ~cases () =
  let histogram = Hashtbl.create 8 in
  let order = ref [] in
  let bump name =
    if not (Hashtbl.mem histogram name) then order := name :: !order;
    Hashtbl.replace histogram name
      (1 + Option.value ~default:0 (Hashtbl.find_opt histogram name))
  in
  let results = ref [] in
  for index = 0 to cases - 1 do
    let c = Gen.case ~seed ~index in
    bump (Gen.scenario_name c.scenario);
    (match Oracle.run ~perturb c with
    | [] -> ()
    | first :: _ ->
      log (Fmt.str "FAIL %a: %a" Gen.pp_case c Oracle.pp_finding first);
      let r = result_of ~perturb ~out c in
      (match r.repro_path with
      | Some p -> log (Fmt.str "  reproducer: %s" p)
      | None -> ());
      results := r :: !results);
    if (index + 1) mod 100 = 0 then
      log (Fmt.str "%d/%d cases, %d failing" (index + 1) cases
             (List.length !results))
  done;
  {
    cases;
    scenarios =
      List.rev_map (fun n -> (n, Hashtbl.find histogram n)) !order;
    results = List.rev !results;
  }

(* --- replay --- *)

let replay (r : Replay.t) =
  match Replay.case_of r with
  | Error e -> Error e
  | Ok c -> Ok (c, Oracle.run ~perturb:r.perturb c)

let pp_summary ppf s =
  Fmt.pf ppf "%d cases (%a): %d divergences, %d crashes, %d failing cases"
    s.cases
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (n, c) -> Fmt.pf ppf "%s %d" n c))
    s.scenarios (divergences s) (crashes s) (List.length s.results)
