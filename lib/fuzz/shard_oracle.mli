(** The sharding oracle: the multicore daemon ([shards = N]) must be
    observationally identical — route for route, frame for frame, byte
    for byte — to the deterministic single-domain daemon. Each case runs
    the SAME star scenario under [shards = 1] and [shards = N] (N drawn
    from 2/3/8) and compares the DUT Loc-RIB, every spoke's raw UPDATE
    frame stream and derived adj-RIB-in, the rendered provenance
    snapshot and the merged map-state fingerprint. *)

type churn =
  | No_churn
  | Bounce
  | Sink_feed
  | Wd_race
      (** a withdrawal and a re-advertisement of the same prefixes from
          another peer land in one unsettled window — the commit-order
          trap a racy shard merge would lose *)

val churn_name : churn -> string

type case = {
  seed : int;
  index : int;
  host : Scenario.Testbed.host;
  shards : int;  (** the sharded leg's domain count (2, 3 or 8) *)
  npeers : int;
  extension : string option;  (** registry manifest name *)
  churn : churn;
  routes : Dataset.Ris_gen.route list;
}

val case : seed:int -> index:int -> case
val pp_case : Format.formatter -> case -> unit

val run_case : ?perturb:bool -> case -> string list
(** Run both legs and diff; [[]] means equivalent. [perturb] corrupts
    the sharded leg's observation — the self-test knob proving the
    oracle fires. Worker domains are joined before returning. *)

type summary = {
  cases : int;
  failures : (case * string list) list;  (** failing cases only *)
}

val pp_summary : Format.formatter -> summary -> unit

val campaign :
  ?perturb:bool ->
  ?log:(string -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  summary
