(* The multi-peer fan-out oracle.

   The update-group export engine claims the grouped path is externally
   indistinguishable from per-peer export. This oracle executes the SAME
   deterministic star-topology scenario twice — update groups on, update
   groups off — and requires, for every spoke peer, a byte-identical
   UPDATE frame stream (content AND framing AND order), an identical
   derived adj-RIB-in, and an identical DUT Loc-RIB. Cases sweep both
   hosts, peer counts, outbound extensions (none, a group-invariant one,
   a peer-dependent one that forces the solo fallback) and churn
   (session bounce, a spoke originating routes back into its own group's
   hub — the split-horizon source-member case — and mid-run detach of
   the outbound chain, which forces a live regroup). *)

type churn =
  | No_churn
  | Bounce  (** one spoke's link fails, hold timers expire, it rejoins *)
  | Sink_feed  (** one spoke originates routes into the hub, then withdraws *)
  | Rechain  (** the outbound chain is detached mid-run (regroup) *)

let churn_name = function
  | No_churn -> "none"
  | Bounce -> "bounce"
  | Sink_feed -> "sink_feed"
  | Rechain -> "rechain"

type case = {
  seed : int;
  index : int;
  host : Scenario.Testbed.host;
  npeers : int;
  extension : string option;  (** registry manifest name *)
  churn : churn;
  routes : Dataset.Ris_gen.route list;
}

let host_name = function `Frr -> "frr" | `Bird -> "bird"

let pp_case ppf (c : case) =
  Format.fprintf ppf "fanout case %d.%d: host=%s peers=%d ext=%s churn=%s (%d routes)"
    c.seed c.index (host_name c.host) c.npeers
    (Option.value ~default:"none" c.extension)
    (churn_name c.churn) (List.length c.routes)

let case ~seed ~index : case =
  let rand = Random.State.make [| seed; index; 0xfa11 |] in
  let host = if Random.State.bool rand then `Frr else `Bird in
  let npeers = 2 + Random.State.int rand 5 in
  let extension =
    match Random.State.int rand 4 with
    | 0 | 1 -> None
    | 2 -> Some "community_strip"  (* group-invariant outbound chain *)
    | _ -> Some "igp_filter"  (* peer-dependent: forces solo groups *)
  in
  let churn =
    match Random.State.int rand 4 with
    | 0 -> No_churn
    | 1 -> Bounce
    | 2 -> Sink_feed
    | _ -> if extension = None then Bounce else Rechain
  in
  let routes =
    Dataset.Ris_gen.generate
      {
        Dataset.Ris_gen.default_config with
        seed = (seed * 7919) + index;
        count = 12 + Random.State.int rand 36;
      }
  in
  (* Map-carrying chains ride along on a third of the extension-free
     cases: flap damping attaches inbound on the hub, so both export
     legs see the same stream and must end with byte-identical map
     state. Drawn from an independent RNG stream so every other field
     of every existing seeded case stays bit-identical. *)
  let extension =
    let mrand = Random.State.make [| seed; index; 0x6d6170 |] in
    if extension = None && Random.State.int mrand 3 = 0 then
      Some "flap_damping"
    else extension
  in
  { seed; index; host; npeers; extension; churn; routes }

(* what the spokes and the hub look like after the scenario settles *)
type obs = {
  frames : string list array;  (** per sink, raw UPDATE frames in order *)
  ribs : (Bgp.Prefix.t * Bgp.Attr.t list) list array;
  loc : (Bgp.Prefix.t * Bgp.Attr.t list) list;
  groups : int;
  maps : string;  (** DUT VMM map-state fingerprint ([Oracle.render_map_state]) *)
  tail : string list;  (** DUT flight-recorder tail, divergence-report context *)
}

let extra_prefix k = Bgp.Prefix.v (Bgp.Prefix.addr_of_quad (199, 51, k, 0)) 24

let feed_prefix k = Bgp.Prefix.v (Bgp.Prefix.addr_of_quad (198, 18, k, 0)) 24

let run_leg (c : case) ~grouped ~shards : obs =
  let manifest = Option.bind c.extension Xprogs.Registry.find_manifest in
  let star =
    Scenario.Star.create ~host:c.host ?manifest ~update_groups:grouped
      ~shards ~hold_time:3 ~npeers:c.npeers ()
  in
  let rc = Obs.Recorder.create ~capacity:4096 ~name:"dut" () in
  Scenario.Star.attach_recorder star rc;
  Scenario.Star.establish star;
  List.iter
    (fun (r : Dataset.Ris_gen.route) ->
      Scenario.Star.originate star r.prefix r.attrs)
    c.routes;
  Scenario.Star.settle star;
  let j = c.index mod c.npeers in
  (match c.churn with
  | No_churn -> ()
  | Bounce ->
    Scenario.Star.set_link_up star j false;
    (* hold_time is 3 s: both ends notice the dead link and close *)
    Scenario.Star.run_for star 4_000_000;
    Scenario.Star.set_link_up star j true;
    Scenario.Star.restart star;
    if
      not
        (Scenario.Star.run_until star (fun () ->
             Scenario.Star.all_established star))
    then failwith "fanout: bounce did not re-establish";
    Scenario.Star.settle star
  | Sink_feed ->
    (* spoke j becomes a source member of its own update group: its
       routes must fan out to every spoke EXCEPT itself *)
    let attrs =
      Bgp.Attr.
        [
          v (Origin Igp);
          v (As_path [ Seq [ 65101 + j ] ]);
          v (Next_hop (Scenario.Star.sink_address star j));
        ]
    in
    let fed = List.init 4 feed_prefix in
    Scenario.Star.sink_announce star j ~attrs fed;
    Scenario.Star.settle star;
    Scenario.Star.sink_withdraw star j [ feed_prefix 0; feed_prefix 2 ];
    Scenario.Star.settle star
  | Rechain -> (
    match (Scenario.Star.dut_vmm star, c.extension) with
    | Some vmm, Some prog ->
      (* generation bump: the hub must regroup (split or re-merge) and
         keep the streams seamless *)
      Xbgp.Vmm.detach vmm ~program:prog ~point:Xbgp.Api.Bgp_outbound_filter;
      Scenario.Star.settle star
    | _ -> ()));
  (* a post-churn incremental change rides through the final grouping *)
  Scenario.Star.originate star (extra_prefix 0)
    Bgp.Attr.
      [ v (Origin Igp); v (As_path [ Seq [ 64999 ] ]); v (Next_hop 0x0A000001) ];
  Scenario.Star.withdraw_local star
    (match c.routes with r :: _ -> r.prefix | [] -> extra_prefix 1);
  Scenario.Star.settle star;
  let obs =
    {
      frames =
        Array.init c.npeers (fun i ->
            List.map Bytes.to_string (Scenario.Star.sink_frames star i));
      ribs = Array.init c.npeers (Scenario.Star.sink_rib star);
      loc = Scenario.Daemon.loc_snapshot (Scenario.Star.dut star);
      groups = Scenario.Daemon.group_count (Scenario.Star.dut star);
      maps =
        (match Scenario.Star.dut_vmm star with
        | Some vmm -> Oracle.render_map_state (Xbgp.Vmm.map_state vmm)
        | None -> "");
      tail = Obs.Recorder.tail_lines ~n:12 ~prefix:"    " rc;
    }
  in
  Scenario.Star.shutdown star;
  obs

let first_mismatch a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | x :: a, y :: b when x = y -> go (i + 1) a b
    | _ -> Some i
  in
  go 0 a b

let diff (c : case) (g : obs) (b : obs) : string list =
  let fs = ref [] in
  let add fmt = Format.kasprintf (fun s -> fs := s :: !fs) fmt in
  for i = 0 to c.npeers - 1 do
    if g.frames.(i) <> b.frames.(i) then
      add
        "sink %d: frame stream diverges at frame %s (grouped %d frames, \
         per-peer %d)"
        i
        (match first_mismatch g.frames.(i) b.frames.(i) with
        | Some k -> string_of_int k
        | None -> "?")
        (List.length g.frames.(i))
        (List.length b.frames.(i));
    if g.ribs.(i) <> b.ribs.(i) then
      add "sink %d: derived adj-RIB-in differs (grouped %d routes, per-peer %d)"
        i
        (List.length g.ribs.(i))
        (List.length b.ribs.(i))
  done;
  if g.loc <> b.loc then
    add "DUT Loc-RIB differs between export modes (%d vs %d routes)"
      (List.length g.loc) (List.length b.loc);
  if g.maps <> b.maps then
    add "DUT map state differs between export modes (grouped=%s per-peer=%s)"
      g.maps b.maps;
  List.rev !fs

let run_case ?(perturb = false) ?(shards = 1) (c : case) : string list =
  let grouped = run_leg c ~grouped:true ~shards in
  let baseline = run_leg c ~grouped:false ~shards in
  let grouped =
    if perturb && Array.length grouped.frames > 0 then (
      (* self-test: corrupt one grouped frame AND the map fingerprint so
         both the stream oracle and the map-state oracle provably fire *)
      let frames = Array.copy grouped.frames in
      frames.(0) <- frames.(0) @ [ "CORRUPT" ];
      { grouped with frames; maps = grouped.maps ^ "|corrupt" })
    else grouped
  in
  match diff c grouped baseline with
  | [] -> []
  | fs ->
    (* context for the report: what each leg's DUT was doing last *)
    let tail who lines =
      if lines = [] then [] else ("  " ^ who ^ " flight-recorder tail:") :: lines
    in
    fs @ tail "grouped leg" grouped.tail @ tail "per-peer leg" baseline.tail

type summary = {
  cases : int;
  failures : (case * string list) list;  (** failing cases only *)
}

let pp_summary ppf s =
  Format.fprintf ppf
    "fanout oracle: %d cases, %d divergent (grouped vs per-peer export)"
    s.cases
    (List.length s.failures)

let campaign ?(perturb = false) ?(shards = 1) ?(log = fun _ -> ()) ~seed
    ~cases () : summary =
  let failures = ref [] in
  for index = 0 to cases - 1 do
    let c = case ~seed ~index in
    log (Format.asprintf "%a" pp_case c);
    match run_case ~perturb ~shards c with
    | [] -> ()
    | fs -> failures := (c, fs) :: !failures
  done;
  { cases; failures = List.rev !failures }
