(** The multi-peer fan-out oracle ([xbgp-fuzz --fanout]).

    Executes the same deterministic star-topology scenario twice —
    update groups on, update groups off — and requires, for every spoke
    peer, a byte-identical UPDATE frame stream, an identical derived
    adj-RIB-in, an identical DUT Loc-RIB and an identical DUT VMM
    map-state fingerprint. Cases sweep both hosts, peer counts,
    extensions (none / group-invariant / peer-dependent forcing the
    solo fallback / the map-carrying flap-damping chain) and churn
    (session bounce, split-horizon feeding from a spoke, mid-run chain
    detach forcing a live regroup). *)

type churn = No_churn | Bounce | Sink_feed | Rechain

val churn_name : churn -> string

type case = {
  seed : int;
  index : int;
  host : Scenario.Testbed.host;
  npeers : int;
  extension : string option;  (** registry manifest name *)
  churn : churn;
  routes : Dataset.Ris_gen.route list;
}

val case : seed:int -> index:int -> case
(** Deterministically generate the case for one campaign slot. *)

val pp_case : Format.formatter -> case -> unit

type obs = {
  frames : string list array;  (** per sink, raw UPDATE frames in order *)
  ribs : (Bgp.Prefix.t * Bgp.Attr.t list) list array;
  loc : (Bgp.Prefix.t * Bgp.Attr.t list) list;
  groups : int;
  maps : string;  (** DUT VMM map-state fingerprint ([Oracle.render_map_state]) *)
  tail : string list;
      (** DUT flight-recorder tail — attached to divergence reports as
          context, never compared between legs *)
}

val run_leg : case -> grouped:bool -> shards:int -> obs
(** Execute one export mode of the case and snapshot everything the
    oracle compares (exposed for tests); [shards > 1] runs the DUT
    sharded (worker domains are joined before returning). *)

val run_case : ?perturb:bool -> ?shards:int -> case -> string list
(** Run both export modes and compare; returns divergence descriptions
    (empty = equivalent). [perturb] corrupts one grouped-side frame and
    the map fingerprint so the oracle provably fires (self-test mode). *)

type summary = {
  cases : int;
  failures : (case * string list) list;  (** failing cases only *)
}

val pp_summary : Format.formatter -> summary -> unit

val campaign :
  ?perturb:bool ->
  ?shards:int ->
  ?log:(string -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  summary
(** [shards] (default 1) runs every DUT sharded across that many worker
    domains — both export modes must still agree byte-for-byte. *)
