(** Seed-pinned reproducer files: every finding is saved as a small text
    file from which the exact minimized case can be regenerated and
    re-run deterministically. *)

type t = {
  seed : int;
  case_index : int;
  scenario : string;  (** recorded for sanity-checking the generator *)
  perturb : bool;
  routes : int list option;  (** kept indices; [None] keeps all *)
  frames : int list option;
  progs : int list option;
  note : string;  (** first finding, for humans *)
}

val to_string : t -> string
val of_string : string -> (t, string) result

val case_of : t -> (Gen.case, string) result
(** Regenerate the (restricted) case this reproducer pins; fails if the
    generator no longer produces the recorded scenario for that seed and
    index. *)

val save : dir:string -> t -> string
(** Write [repro-s<seed>-c<index>.txt] under [dir] (created if needed);
    returns the path. *)

val load : string -> (t, string) result
