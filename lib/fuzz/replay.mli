(** Seed-pinned reproducer files: every finding is saved as a small text
    file from which the exact minimized case can be regenerated and
    re-run deterministically. *)

type t = {
  seed : int;
  case_index : int;
  scenario : string;  (** recorded for sanity-checking the generator *)
  perturb : bool;
  routes : int list option;  (** kept indices; [None] keeps all *)
  frames : int list option;
  progs : int list option;
  note : string;  (** first finding, for humans *)
}

val to_string : t -> string
val of_string : string -> (t, string) result

val case_of : t -> (Gen.case, string) result
(** Regenerate the (restricted) case this reproducer pins; fails if the
    generator no longer produces the recorded scenario for that seed and
    index. *)

val save : dir:string -> t -> string
(** Write [repro-s<seed>-c<index>.txt] under [dir] (created if needed);
    returns the path. *)

val load : string -> (t, string) result

(** Reproducers for the chaos campaign ({!Chaos.t} pins a
    {!Config_gen.case}): same regenerate-and-restrict scheme, plus the
    divergence classes the shrinker preserved so replay can distinguish
    "reproduced" from "found something unrelated". *)
module Chaos : sig
  type t = {
    seed : int;
    case_index : int;
    perturb : bool;
    faults : int list option;  (** kept fault indices; [None] keeps all *)
    routes : int list option;
    classes : string list;  (** {!Chaos.cls_name}s of the original case *)
    note : string;  (** first finding, for humans *)
  }

  val is_chaos : string -> bool
  (** Does this file content carry the chaos magic line? (Used by the
      CLI to route [--replay] to the right campaign.) *)

  val to_string : t -> string
  val of_string : string -> (t, string) result

  val case_of : t -> (Config_gen.case, string) result
  (** Regenerate the (restricted) chaos case this reproducer pins. *)

  val save : dir:string -> t -> string
  (** Write [chaos-s<seed>-c<index>.txt] under [dir]; returns the path. *)

  val load : string -> (t, string) result
end
