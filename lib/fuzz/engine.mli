(** The fuzzing campaign: generate cases, run the {!Oracle}, shrink any
    failure with {!Shrink} and pin it as a {!Replay} reproducer. *)

type failure = {
  case : Gen.case;  (** the minimized failing case *)
  findings : Oracle.finding list;
  repro : Replay.t;
  repro_path : string option;
}

type summary = {
  cases : int;
  scenarios : (string * int) list;  (** per-scenario case counts *)
  results : failure list;  (** failing cases only; empty = clean run *)
}

val divergences : summary -> int
val crashes : summary -> int
val pp_summary : Format.formatter -> summary -> unit

val campaign :
  ?out:string ->
  ?perturb:bool ->
  ?log:(string -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  summary
(** Run [cases] consecutive case indices under [seed]. [out] is the
    directory reproducers are written to (omit to skip writing);
    [perturb] forces an artificial BIRD-side divergence to exercise the
    pipeline; [log] receives human-readable progress lines. *)

val shrink_case :
  perturb:bool ->
  Gen.case ->
  Gen.case * int list option * int list option * int list option
(** Minimize a failing case; returns the restricted case plus the kept
    route / frame / program indices (for the reproducer). *)

val replay : Replay.t -> (Gen.case * Oracle.finding list, string) Stdlib.result
(** Regenerate a reproducer's case and re-run the oracle on it. *)
