(* Seeded case generation for the differential fuzzer.

   Every case is a pure function of (master seed, case index): the
   campaign loop, the shrinker and the replay machinery all regenerate
   the same case from those two integers and then restrict it to a
   subset of its routes / frames / programs. Nothing here draws from
   global randomness.

   Well-formedness discipline: routes destined for the FRR-vs-BIRD
   differential carry only attributes both hosts represent natively.
   Unknown attributes are deliberately excluded — the FRR-like parser
   drops them while the BIRD-like host keeps them (that asymmetry is
   the GeoLoc use case, not a bug), so they would drown the oracle in
   by-design divergences. Hostile-peer frames have no such restriction;
   the oracle normalizes them away instead. *)

module Prng = Dataset.Prng

type scenario =
  | Plain_ebgp  (** no extension bytecode, eBGP testbed *)
  | Rr_ibgp  (** route_reflector bytecode on an iBGP testbed *)
  | Ov_ebgp  (** origin_validation bytecode + generated ROA table *)
  | Med_ebgp  (** med_compare bytecode at the decision point *)
  | Strip_ebgp  (** community_strip bytecode at the export point *)
  | Hostile_peer  (** mutated wire frames against an established session *)
  | Vm_soup  (** arbitrary instruction soup through verifier + VM *)
  | Vm_guided  (** verifier-accepted programs, engine differential *)

let all_scenarios =
  [
    Plain_ebgp;
    Rr_ibgp;
    Ov_ebgp;
    Med_ebgp;
    Strip_ebgp;
    Hostile_peer;
    Vm_soup;
    Vm_guided;
  ]

let scenario_name = function
  | Plain_ebgp -> "plain_ebgp"
  | Rr_ibgp -> "rr_ibgp"
  | Ov_ebgp -> "ov_ebgp"
  | Med_ebgp -> "med_ebgp"
  | Strip_ebgp -> "strip_ebgp"
  | Hostile_peer -> "hostile_peer"
  | Vm_soup -> "vm_soup"
  | Vm_guided -> "vm_guided"

let scenario_of_name s =
  List.find_opt (fun sc -> scenario_name sc = s) all_scenarios

type case = {
  seed : int;
  index : int;
  scenario : scenario;
  routes : Dataset.Ris_gen.route list;
  roas : Rpki.Roa.t list;
  frames : bytes list;
  progs : Ebpf.Insn.t list list;
}

(* --- per-case PRNG --- *)

(* Splitmix streams from nearby seeds are independent; a large odd
   multiplier keeps (seed, index) pairs from colliding. *)
let case_prng ~seed ~index = Prng.create (seed + (index * 0x9E3779B1))

(* --- routes --- *)

let local_as = 65000 (* the testbed DUT's AS; see Scenario.Testbed *)

let gen_asn rng =
  (* mostly 16-bit, occasionally 32-bit (RFC 6793); never the testbed's
     own ASNs, which would trip loop detection asymmetrically *)
  let a =
    if Prng.int rng 8 = 0 then 70_000 + Prng.int rng 1_000_000
    else 1 + Prng.int rng 64_000
  in
  if a >= local_as - 10 && a <= local_as + 10 then a + 100 else a

let gen_as_path rng =
  let nseg = 1 + Prng.int rng 2 in
  List.init nseg (fun _ ->
      let n = 1 + Prng.int rng 4 in
      let asns = List.init n (fun _ -> gen_asn rng) in
      if Prng.int rng 8 = 0 then Bgp.Attr.Set asns else Bgp.Attr.Seq asns)

let gen_community rng =
  (* bias towards the DUT's own tag space so community_strip has work,
     but stay clear of 65535:* (the origin-validation result space) *)
  let high =
    match Prng.int rng 3 with
    | 0 -> local_as
    | _ -> 1 + Prng.int rng 65_000
  in
  (high lsl 16) lor Prng.int rng 65_536

let gen_addr rng =
  Int64.to_int (Prng.next_int64 rng) land 0xFFFFFFFF

let gen_attrs rng ~ibgp =
  let open Bgp.Attr in
  let origin = Prng.choose rng [| Igp; Egp; Incomplete |] in
  let base =
    [ v (Origin origin); v (As_path (gen_as_path rng));
      v (Next_hop (gen_addr rng)) ]
  in
  let opt p value = if Prng.int rng p = 0 then [ v value ] else [] in
  base
  @ opt 3 (Med (Prng.int rng 1000))
  @ (if ibgp then opt 3 (Local_pref (Prng.int rng 300)) else [])
  @ (if Prng.int rng 4 = 0 then
       [ v (Communities (List.init (1 + Prng.int rng 3) (fun _ -> gen_community rng))) ]
     else [])
  @ opt 8 Atomic_aggregate
  @ opt 8 (Aggregator (gen_asn rng, gen_addr rng))

let gen_prefix rng =
  let len = 8 + Prng.int rng 21 in
  Bgp.Prefix.v (gen_addr rng) len

(* Distinct prefixes; with [disjoint] no prefix covers another (the
   origin-validation stores use exact-match semantics in tests). *)
let gen_routes rng ~ibgp ~disjoint =
  let count = 1 + Prng.int rng 40 in
  let taken = ref [] in
  let ok p =
    if disjoint then
      not
        (List.exists
           (fun q -> Bgp.Prefix.subset p q || Bgp.Prefix.subset q p)
           !taken)
    else not (List.exists (Bgp.Prefix.equal p) !taken)
  in
  let rec fresh tries =
    let p = gen_prefix rng in
    if ok p then p
    else if tries > 50 then p (* give up; duplicates only shrink the table *)
    else fresh (tries + 1)
  in
  List.init count (fun _ ->
      let p = fresh 0 in
      taken := p :: !taken;
      { Dataset.Ris_gen.prefix = p; attrs = gen_attrs rng ~ibgp })
  |> List.filter
       (fun (r : Dataset.Ris_gen.route) ->
         (* drop the rare give-up duplicates so origination is unambiguous *)
         List.length (List.filter (Bgp.Prefix.equal r.prefix) !taken) = 1)

(* --- hostile wire frames --- *)

let gen_update_frame rng =
  let nroutes = 1 + Prng.int rng 3 in
  let routes = gen_routes rng ~ibgp:false ~disjoint:false in
  let routes =
    List.filteri (fun i _ -> i < nroutes) routes
  in
  let nlri = List.map (fun (r : Dataset.Ris_gen.route) -> r.prefix) routes in
  let attrs =
    match routes with
    | r :: _ -> r.attrs
    | [] -> []
  in
  let withdrawn = if Prng.int rng 5 = 0 then [ gen_prefix rng ] else [] in
  Bgp.Message.encode (Bgp.Message.Update { withdrawn; attrs; nlri })

(* A frame with a valid header but an arbitrary body. *)
let gen_garbage_frame rng =
  let body_len = Prng.int rng 64 in
  let len = Bgp.Message.header_size + body_len in
  let b = Bytes.create len in
  Bytes.fill b 0 16 '\xff';
  Bytes.set_uint16_be b 16 len;
  Bytes.set_uint8 b 18 (1 + Prng.int rng 5) (* types 1..4 valid, 5 not *);
  for i = Bgp.Message.header_size to len - 1 do
    Bytes.set_uint8 b i (Prng.int rng 256)
  done;
  b

let mutate_frame rng frame =
  let len = Bytes.length frame in
  match Prng.int rng 4 with
  | 0 -> frame (* pass through unmodified *)
  | 1 ->
    (* flip one byte past the marker: corrupts length, type or body *)
    let b = Bytes.copy frame in
    let pos = 16 + Prng.int rng (max 1 (len - 16)) in
    Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor (1 lsl Prng.int rng 8));
    b
  | 2 ->
    (* truncate the body and patch the length so the frame deframes *)
    if len <= Bgp.Message.header_size then frame
    else begin
      let keep =
        Bgp.Message.header_size
        + Prng.int rng (len - Bgp.Message.header_size)
      in
      let b = Bytes.sub frame 0 keep in
      Bytes.set_uint16_be b 16 keep;
      b
    end
  | _ ->
    (* corrupt a byte inside the UPDATE body only (header stays valid) *)
    if len <= Bgp.Message.header_size then frame
    else begin
      let b = Bytes.copy frame in
      let pos =
        Bgp.Message.header_size
        + Prng.int rng (len - Bgp.Message.header_size)
      in
      Bytes.set_uint8 b pos (Prng.int rng 256);
      b
    end

let gen_frames rng =
  let n = 1 + Prng.int rng 8 in
  List.init n (fun _ ->
      if Prng.int rng 6 = 0 then gen_garbage_frame rng
      else mutate_frame rng (gen_update_frame rng))

(* --- eBPF programs --- *)

let all_regs =
  Ebpf.Insn.[| R0; R1; R2; R3; R4; R5; R6; R7; R8; R9; R10 |]

let scratch_regs = Ebpf.Insn.[| R0; R1; R2; R3; R4; R5 |]
let sizes = Ebpf.Insn.[| W8; W16; W32; W64 |]

let alu_ops =
  Ebpf.Insn.
    [| Add; Sub; Mul; Div; Or; And; Lsh; Rsh; Neg; Mod; Xor; Mov; Arsh |]

let conds =
  Ebpf.Insn.[| Eq; Gt; Ge; Set; Ne; Sgt; Sge; Lt; Le; Slt; Sle |]

let gen_soup_insn rng =
  let open Ebpf.Insn in
  let reg () = Prng.choose rng all_regs in
  let width () = if Prng.bool rng then W64bit else W32bit in
  let src () =
    if Prng.bool rng then Imm (Int32.of_int (Prng.int rng 1024 - 512))
    else Reg (reg ())
  in
  match Prng.int rng 10 with
  | 0 | 1 -> Alu (width (), Prng.choose rng alu_ops, reg (), src ())
  | 2 -> Lddw (reg (), Prng.next_int64 rng)
  | 3 -> Ldx (Prng.choose rng sizes, reg (), reg (), Prng.int rng 1100 - 550)
  | 4 ->
    St
      ( Prng.choose rng sizes,
        reg (),
        Prng.int rng 1100 - 550,
        Int32.of_int (Prng.int rng 256) )
  | 5 -> Stx (Prng.choose rng sizes, reg (), Prng.int rng 1100 - 550, reg ())
  | 6 -> Ja (Prng.int rng 16 - 5)
  | 7 -> Jcond (width (), Prng.choose rng conds, reg (), src (), Prng.int rng 16 - 5)
  | 8 -> Call (Prng.int rng 25)
  | _ -> if Prng.int rng 3 = 0 then Exit else Endian ((if Prng.bool rng then Le else Be), reg (), Prng.choose rng [| 16; 32; 64 |])

let gen_soup_prog rng =
  let n = 1 + Prng.int rng 30 in
  List.init n (fun _ -> gen_soup_insn rng) @ [ Ebpf.Insn.Exit ]

(* Verifier-clean programs: straight-line ALU and stack traffic with
   forward conditional jumps only (both branches stay reachable, so the
   dead-code check holds); no Lddw, so slot numbering equals instruction
   numbering and jump offsets are easy to keep in bounds. *)
let gen_guided_prog rng =
  let open Ebpf.Insn in
  let n = 4 + Prng.int rng 20 in
  let reg () = Prng.choose rng scratch_regs in
  let body =
    List.init n (fun i ->
        let remaining = n - i - 1 in
        match Prng.int rng 6 with
        | 0 | 1 ->
          let w = if Prng.bool rng then W64bit else W32bit in
          let op =
            Prng.choose rng
              [| Add; Sub; Mul; Or; And; Xor; Mov; Arsh; Neg; Div; Mod |]
          in
          let src =
            if Prng.bool rng then
              let imm =
                match op with
                | Div | Mod -> 1 + Prng.int rng 1000 (* nonzero immediates *)
                | _ -> Prng.int rng 2048 - 1024
              in
              Imm (Int32.of_int imm)
            else Reg (reg ())
          in
          Alu (w, op, reg (), src)
        | 2 ->
          let w = if Prng.bool rng then W64bit else W32bit in
          let shift =
            Imm (Int32.of_int (Prng.int rng (match w with W32bit -> 32 | W64bit -> 64)))
          in
          Alu (w, Prng.choose rng [| Lsh; Rsh |], reg (), shift)
        | 3 ->
          let sz = Prng.choose rng sizes in
          let off = -8 * (1 + Prng.int rng 63) in
          Stx (sz, R10, off, reg ())
        | 4 ->
          let sz = Prng.choose rng sizes in
          let off = -8 * (1 + Prng.int rng 63) in
          Ldx (sz, reg (), R10, off)
        | _ ->
          if remaining > 0 then
            Jcond
              ( (if Prng.bool rng then W64bit else W32bit),
                Prng.choose rng conds,
                reg (),
                (if Prng.bool rng then Imm (Int32.of_int (Prng.int rng 256))
                 else Reg (reg ())),
                Prng.int rng remaining )
          else Alu (W64bit, Mov, reg (), Imm 0l)
    )
  in
  (Alu (W64bit, Mov, R0, Imm 0l) :: body) @ [ Exit ]

let gen_progs rng ~guided =
  let n = 1 + Prng.int rng 3 in
  List.init n (fun _ ->
      if guided then gen_guided_prog rng else gen_soup_prog rng)

(* --- putting a case together --- *)

let pick_scenario rng =
  (* weights: differential modes dominate, VM modes ride along *)
  let table =
    [|
      Plain_ebgp; Plain_ebgp; Plain_ebgp;
      Rr_ibgp; Rr_ibgp;
      Ov_ebgp; Ov_ebgp;
      Med_ebgp;
      Strip_ebgp; Strip_ebgp;
      Hostile_peer; Hostile_peer;
      Vm_soup; Vm_soup;
      Vm_guided;
    |]
  in
  Prng.choose rng table

let case ~seed ~index =
  let rng = case_prng ~seed ~index in
  let scenario = pick_scenario rng in
  let empty =
    { seed; index; scenario; routes = []; roas = []; frames = []; progs = [] }
  in
  match scenario with
  | Plain_ebgp | Med_ebgp | Strip_ebgp ->
    { empty with routes = gen_routes rng ~ibgp:false ~disjoint:false }
  | Rr_ibgp -> { empty with routes = gen_routes rng ~ibgp:true ~disjoint:false }
  | Ov_ebgp ->
    let routes = gen_routes rng ~ibgp:false ~disjoint:true in
    let roas =
      Dataset.Ris_gen.roas_for
        ~seed:(Prng.int rng 1_000_000)
        ~valid_pct:60 ~invalid_pct:20 routes
    in
    { empty with routes; roas }
  | Hostile_peer -> { empty with frames = gen_frames rng }
  | Vm_soup -> { empty with progs = gen_progs rng ~guided:false }
  | Vm_guided -> { empty with progs = gen_progs rng ~guided:true }

(* --- restriction (shrinking / replay) --- *)

let keep indices l =
  match indices with
  | None -> l
  | Some idxs -> List.filteri (fun i _ -> List.mem i idxs) l

let restrict ?routes ?frames ?progs c =
  {
    c with
    routes = keep routes c.routes;
    frames = keep frames c.frames;
    progs = keep progs c.progs;
  }

let pp_case ppf c =
  Fmt.pf ppf "case %d/%d %s (%d routes, %d roas, %d frames, %d progs)" c.seed
    c.index (scenario_name c.scenario) (List.length c.routes)
    (List.length c.roas) (List.length c.frames) (List.length c.progs)
