(* The sharding oracle.

   The sharded daemon claims the multicore pipeline is invisible: with
   [shards = N] the import-filter dispatch fans out to per-shard worker
   domains and UPDATE encoding is offloaded to a domain pool, but every
   state commit happens on the coordinating domain in submission order —
   so the observable routing state must be identical, route for route,
   to the deterministic single-domain daemon. This oracle executes the
   SAME star-topology scenario twice — [shards = 1] and [shards = N for
   N in {2, 3, 8}] — and requires an identical DUT Loc-RIB, for every
   spoke a byte-identical UPDATE frame stream (content AND framing AND
   order) and derived adj-RIB-in, a byte-identical provenance snapshot,
   and an identical merged map-state fingerprint.

   Cases sweep both hosts, the shard counts, peer counts, extensions
   (none — the sharded native lane; a map-carrying inbound chain; an
   inbound chain the safety analysis REJECTS, forcing the serial
   fallback, which must be just as invisible; a grouped outbound chain
   riding the encode offload) and churn, including a withdrawal racing
   the re-advertisement of the same prefixes through another peer in
   one unsettled window — the commit-order trap a racy shard merge
   would lose. *)

type churn =
  | No_churn
  | Bounce  (** one spoke's link fails, hold timers expire, it rejoins *)
  | Sink_feed  (** one spoke originates routes into the hub, then withdraws *)
  | Wd_race
      (** a withdrawal and a re-advertisement of the same prefixes from
          another peer land in one unsettled window *)

let churn_name = function
  | No_churn -> "none"
  | Bounce -> "bounce"
  | Sink_feed -> "sink_feed"
  | Wd_race -> "wd_race"

type case = {
  seed : int;
  index : int;
  host : Scenario.Testbed.host;
  shards : int;  (** the sharded leg's domain count (2, 3 or 8) *)
  npeers : int;
  extension : string option;  (** registry manifest name *)
  churn : churn;
  routes : Dataset.Ris_gen.route list;
}

let host_name = function `Frr -> "frr" | `Bird -> "bird"

let pp_case ppf (c : case) =
  Format.fprintf ppf
    "shard case %d.%d: host=%s shards=%d peers=%d ext=%s churn=%s (%d routes)"
    c.seed c.index (host_name c.host) c.shards c.npeers
    (Option.value ~default:"none" c.extension)
    (churn_name c.churn) (List.length c.routes)

let case ~seed ~index : case =
  let rand = Random.State.make [| seed; index; 0x5a4d |] in
  let host = if Random.State.bool rand then `Frr else `Bird in
  let shards = [| 2; 3; 8 |].(Random.State.int rand 3) in
  let npeers = 2 + Random.State.int rand 4 in
  let extension =
    match Random.State.int rand 5 with
    | 0 -> None  (* the sharded native import lane *)
    | 1 -> Some "flap_damping"  (* map-carrying inbound chain *)
    | 2 -> Some "prefix_limit"
      (* shard-unsafe inbound chain (rejected by the safety analysis):
         must fall back to the serial lane and stay invisible *)
    | 3 -> Some "community_strip"  (* outbound chain, encode offload *)
    | _ -> Some "igp_filter"
  in
  let churn =
    match Random.State.int rand 4 with
    | 0 -> No_churn
    | 1 -> Bounce
    | 2 -> Sink_feed
    | _ -> Wd_race
  in
  let routes =
    Dataset.Ris_gen.generate
      {
        Dataset.Ris_gen.default_config with
        seed = (seed * 6007) + index;
        count = 16 + Random.State.int rand 48;
      }
  in
  { seed; index; host; shards; npeers; extension; churn; routes }

(* what both legs look like after the identical scenario settles *)
type obs = {
  frames : string list array;  (** per sink, raw UPDATE frames in order *)
  ribs : (Bgp.Prefix.t * Bgp.Attr.t list) list array;
  loc : (Bgp.Prefix.t * Bgp.Attr.t list) list;
  prov : string list;  (** rendered provenance snapshot, sorted by prefix *)
  maps : string;  (** merged map-state fingerprint, all VM shards *)
  info : Shard.Info.t;
  tail : string list;  (** DUT flight-recorder tail, report context *)
}

let extra_prefix k = Bgp.Prefix.v (Bgp.Prefix.addr_of_quad (199, 52, k, 0)) 24
let feed_prefix k = Bgp.Prefix.v (Bgp.Prefix.addr_of_quad (198, 19, k, 0)) 24

(* Wd_race prefixes: a /24 run long enough that every shard count in the
   sweep owns at least one of them, so the race always crosses a shard
   boundary. *)
let race_prefixes = List.init 8 feed_prefix

let sink_attrs star j =
  Bgp.Attr.
    [
      v (Origin Igp);
      v (As_path [ Seq [ 65101 + j ] ]);
      v (Next_hop (Scenario.Star.sink_address star j));
    ]

let run_leg (c : case) ~shards : obs =
  let manifest = Option.bind c.extension Xprogs.Registry.find_manifest in
  let xtras =
    if c.extension = Some "prefix_limit" then
      [ ("max_prefix", Xprogs.Util.encode_u32 1024) ]
    else []
  in
  let star =
    Scenario.Star.create ~host:c.host ?manifest ~shards ~hold_time:3 ~xtras
      ~npeers:c.npeers ()
  in
  let rc = Obs.Recorder.create ~capacity:4096 ~name:"dut" () in
  Scenario.Star.attach_recorder star rc;
  Scenario.Star.establish star;
  List.iter
    (fun (r : Dataset.Ris_gen.route) ->
      Scenario.Star.originate star r.prefix r.attrs)
    c.routes;
  Scenario.Star.settle star;
  let j = c.index mod c.npeers in
  (match c.churn with
  | No_churn -> ()
  | Bounce ->
    Scenario.Star.set_link_up star j false;
    Scenario.Star.run_for star 4_000_000;
    Scenario.Star.set_link_up star j true;
    Scenario.Star.restart star;
    if
      not
        (Scenario.Star.run_until star (fun () ->
             Scenario.Star.all_established star))
    then failwith "shard_oracle: bounce did not re-establish";
    Scenario.Star.settle star
  | Sink_feed ->
    let fed = List.init 4 feed_prefix in
    Scenario.Star.sink_announce star j ~attrs:(sink_attrs star j) fed;
    Scenario.Star.settle star;
    Scenario.Star.sink_withdraw star j [ feed_prefix 0; feed_prefix 2 ];
    Scenario.Star.settle star
  | Wd_race ->
    (* sink j advertises a block spanning every shard; once settled, its
       withdrawal and sink (j+1)'s re-advertisement of the SAME prefixes
       land in one unsettled window. The sharded daemon must serialize
       the two batches exactly as the sequential one does. *)
    let k = (j + 1) mod c.npeers in
    Scenario.Star.sink_announce star j ~attrs:(sink_attrs star j)
      race_prefixes;
    Scenario.Star.settle star;
    Scenario.Star.sink_withdraw star j race_prefixes;
    Scenario.Star.sink_announce star k ~attrs:(sink_attrs star k)
      race_prefixes;
    Scenario.Star.settle star);
  (* a post-churn incremental change rides through the final state *)
  Scenario.Star.originate star (extra_prefix 0)
    Bgp.Attr.
      [ v (Origin Igp); v (As_path [ Seq [ 64998 ] ]); v (Next_hop 0x0A000001) ];
  Scenario.Star.withdraw_local star
    (match c.routes with r :: _ -> r.prefix | [] -> extra_prefix 1);
  Scenario.Star.settle star;
  let dut = Scenario.Star.dut star in
  let obs =
    {
      frames =
        Array.init c.npeers (fun i ->
            List.map Bytes.to_string (Scenario.Star.sink_frames star i));
      ribs = Array.init c.npeers (Scenario.Star.sink_rib star);
      loc = Scenario.Daemon.loc_snapshot dut;
      prov =
        List.map
          (fun (p, pr) ->
            Bgp.Prefix.to_string p ^ " " ^ Obs.Provenance.to_text pr)
          (Scenario.Daemon.provenance_snapshot dut);
      maps =
        (match Scenario.Star.dut_vmm star with
        | Some vmm -> Oracle.render_map_state (Xbgp.Vmm.map_state vmm)
        | None -> "");
      info = Scenario.Daemon.shard_info dut;
      tail = Obs.Recorder.tail_lines ~n:12 ~prefix:"    " rc;
    }
  in
  Scenario.Star.shutdown star;
  obs

let first_mismatch a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | x :: a, y :: b when x = y -> go (i + 1) a b
    | _ -> Some i
  in
  go 0 a b

let diff (c : case) (sh : obs) (sq : obs) : string list =
  let fs = ref [] in
  let add fmt = Format.kasprintf (fun s -> fs := s :: !fs) fmt in
  if sh.loc <> sq.loc then
    add "DUT Loc-RIB differs between shards=%d and shards=1 (%d vs %d routes)"
      c.shards (List.length sh.loc) (List.length sq.loc);
  for i = 0 to c.npeers - 1 do
    if sh.frames.(i) <> sq.frames.(i) then
      add
        "sink %d: frame stream diverges at frame %s (sharded %d frames, \
         sequential %d)"
        i
        (match first_mismatch sh.frames.(i) sq.frames.(i) with
        | Some k -> string_of_int k
        | None -> "?")
        (List.length sh.frames.(i))
        (List.length sq.frames.(i));
    if sh.ribs.(i) <> sq.ribs.(i) then
      add
        "sink %d: derived adj-RIB-in differs (sharded %d routes, sequential \
         %d)"
        i
        (List.length sh.ribs.(i))
        (List.length sq.ribs.(i))
  done;
  if sh.prov <> sq.prov then
    add "provenance snapshot diverges at entry %s (%d vs %d records)"
      (match first_mismatch sh.prov sq.prov with
      | Some k -> string_of_int k
      | None -> "?")
      (List.length sh.prov) (List.length sq.prov);
  if sh.maps <> sq.maps then
    add "merged map state differs (sharded=%s sequential=%s)" sh.maps sq.maps;
  (* internal sanity on the sharded leg itself: the slices partition the
     Loc-RIB, and the shard count is what the case asked for *)
  let counted = Array.fold_left ( + ) 0 sh.info.Shard.Info.counts in
  if counted <> List.length sh.loc then
    add "shard slice counts sum to %d but the Loc-RIB holds %d routes" counted
      (List.length sh.loc);
  if sh.info.Shard.Info.shards <> c.shards then
    add "sharded leg reports %d shards, case asked for %d"
      sh.info.Shard.Info.shards c.shards;
  List.rev !fs

let run_case ?(perturb = false) (c : case) : string list =
  let sharded = run_leg c ~shards:c.shards in
  let sequential = run_leg c ~shards:1 in
  let sharded =
    if perturb && Array.length sharded.frames > 0 then (
      (* self-test: corrupt one sharded frame AND the map fingerprint so
         both the stream oracle and the map-state oracle provably fire *)
      let frames = Array.copy sharded.frames in
      frames.(0) <- frames.(0) @ [ "CORRUPT" ];
      { sharded with frames; maps = sharded.maps ^ "|corrupt" })
    else sharded
  in
  match diff c sharded sequential with
  | [] -> []
  | fs ->
    let tail who lines =
      if lines = [] then [] else ("  " ^ who ^ " flight-recorder tail:") :: lines
    in
    fs
    @ tail "sharded leg" sharded.tail
    @ tail "sequential leg" sequential.tail

type summary = {
  cases : int;
  failures : (case * string list) list;  (** failing cases only *)
}

let pp_summary ppf s =
  Format.fprintf ppf
    "shard oracle: %d cases, %d divergent (sharded vs sequential)" s.cases
    (List.length s.failures)

let campaign ?(perturb = false) ?(log = fun _ -> ()) ~seed ~cases () : summary =
  let failures = ref [] in
  for index = 0 to cases - 1 do
    let c = case ~seed ~index in
    log (Format.asprintf "%a" pp_case c);
    match run_case ~perturb c with
    | [] -> ()
    | fs -> failures := (c, fs) :: !failures
  done;
  { cases; failures = List.rev !failures }
