(* The config-space chaos oracle.

   One case = one configuration point plus a fault schedule
   ({!Config_gen}). The runner executes the SAME scenario — same
   topology, same route feed, same faults in the same order, each event
   settled to quiescence — once per knob grid leg, and demands:

   (a) convergence: every phase (establish, feed, each fault, the
       aftershock) reaches quiescence inside a simulated-time budget,
       and every session is re-established once its faults heal;
   (b) equivalence: the xBGP-visible routing state after every phase —
       DUT Loc-RIB, per-sink derived adj-RIB-ins, per-router fabric
       Loc-RIBs and ToR reachability, all in the normalized neutral
       form — is identical on every leg of the grid. Settling between
       fault events makes the event history knob-independent, so any
       difference is a real configuration-dependence bug;
   (c) telemetry invariants: registry counters are monotone across
       phase snapshots, no pipe leaks in-flight chunks at quiescence,
       and update groups re-merge after churn (1 group for a
       group-invariant outbound chain, one solo group per peer for a
       peer-dependent one, 0 with grouping off).

   Faults restore what they break before the next phase begins, so the
   final state is a function of the configuration alone — which is what
   makes (b) a meaningful oracle. *)

module Cg = Config_gen

type cls = Convergence | Equivalence | Telemetry_oracle | Crash

type finding = { cls : cls; detail : string }

let cls_name = function
  | Convergence -> "convergence"
  | Equivalence -> "equivalence"
  | Telemetry_oracle -> "telemetry"
  | Crash -> "crash"

let all_classes = [ Convergence; Equivalence; Telemetry_oracle; Crash ]
let cls_of_name n = List.find_opt (fun c -> cls_name c = n) all_classes
let pp_finding ppf f = Fmt.pf ppf "[%s] %s" (cls_name f.cls) f.detail
let finding cls fmt = Fmt.kstr (fun s -> { cls; detail = s }) fmt

let classes_of findings =
  List.sort_uniq compare (List.map (fun f -> f.cls) findings)

(* --- per-phase observations --- *)

type phase = {
  label : string;
  dur_us : int;  (** simulated time from phase start to quiescence *)
  locs : (string * (Bgp.Prefix.t * Bgp.Attr.t list) list) list;
      (** per-daemon normalized Loc-RIB snapshots *)
  ribs : (Bgp.Prefix.t * Bgp.Attr.t list) list array;
      (** star: per-sink derived adj-RIB-ins, normalized *)
  reach : bool list;  (** fabric: ToR-pair reachability flags *)
  maps : string;
      (** star: DUT VMM map-state fingerprint ([Oracle.render_map_state]) *)
}

type leg = {
  knobs : Cg.knobs;
  phases : phase list;  (** oldest first *)
  leg_findings : finding list;
  tail : string list;  (** flight-recorder tail, divergence-report context *)
}

let phase_budget_us = 60_000_000

let set_caches b =
  Frrouting.Attr_intern.set_conversion_cache b;
  Bird.Eattr.set_conversion_cache b

(* --- telemetry invariants --- *)

let pp_labels ppf l =
  Fmt.pf ppf "{%s}"
    (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l))

let check_monotone ~leg ~label prev cur =
  List.filter_map
    (fun (n, l, v) ->
      match
        List.find_opt (fun (n', l', _) -> n' = n && l' = l) cur
      with
      | Some (_, _, v') when v' < v ->
        Some
          (finding Telemetry_oracle
             "[%a] counter %s%a went backwards (%d -> %d) across phase %s"
             Cg.pp_knobs leg n pp_labels l v v' label)
      | Some _ -> None
      | None ->
        Some
          (finding Telemetry_oracle
             "[%a] counter %s%a disappeared across phase %s" Cg.pp_knobs leg n
             pp_labels l label))
    prev

let check_inflight ~leg telemetry =
  List.filter_map
    (fun (n, l, v) ->
      if n = "net_in_flight_chunks" && v <> 0 then
        Some
          (finding Telemetry_oracle
             "[%a] gauge %s%a = %d at quiescence (leaked in-flight bytes)"
             Cg.pp_knobs leg n pp_labels l v)
      else None)
    (Telemetry.gauges telemetry)

(* --- shared leg scaffolding --- *)

type 'a rig = {
  now : unit -> int;
  settle : unit -> unit;
  snapshot : string -> phase;  (** label -> settled observation *)
}

let run_phases ~(knobs : Cg.knobs) ~telemetry ~(rig : _ rig) steps =
  let findings = ref [] and phases = ref [] in
  let counters_prev = ref (Telemetry.counters telemetry) in
  let note f = findings := f :: !findings in
  (try
     List.iter
       (fun (label, f) ->
         let t0 = rig.now () in
         f ();
         rig.settle ();
         let dur = rig.now () - t0 in
         if dur > phase_budget_us then
           note
             (finding Convergence
                "[%a] phase %s took %d us simulated (budget %d)" Cg.pp_knobs
                knobs label dur phase_budget_us);
         let cur = Telemetry.counters telemetry in
         List.iter note (check_monotone ~leg:knobs ~label !counters_prev cur);
         counters_prev := cur;
         phases := { (rig.snapshot label) with dur_us = dur } :: !phases)
       steps
   with
  | Failure msg ->
    note (finding Convergence "[%a] %s" Cg.pp_knobs knobs msg)
  | e ->
    note
      (finding Crash "[%a] leg raised %s" Cg.pp_knobs knobs
         (Printexc.to_string e)));
  (List.rev !phases, !findings, note)

(* --- the star leg --- *)

let extra_prefix n =
  Bgp.Prefix.v (Bgp.Prefix.addr_of_quad (198, 51, (100 + n) land 0xff, 0)) 24

let dut_extra_attrs =
  Bgp.Attr.
    [ v (Origin Igp); v (As_path [ Seq [ 64999 ] ]); v (Next_hop 0x0A000001) ]

let build_chain_vmm ~(knobs : Cg.knobs) ~telemetry ~shards chain =
  match chain with
  | [] -> None
  | chain ->
    let vmm =
      Xbgp.Vmm.create ~engine:knobs.engine ~telemetry ~host:"dut" ()
    in
    (if shards > 1 then
       (* before the manifests load: a VMM refuses to re-partition once
          programs are attached *)
       match Xbgp.Vmm.set_shards vmm shards with
       | Ok () -> ()
       | Error e -> invalid_arg ("Chaos: " ^ e));
    List.iter
      (fun name ->
        match Xprogs.Registry.find_manifest name with
        | None -> invalid_arg ("Chaos: unknown manifest " ^ name)
        | Some m -> (
          match Xbgp.Manifest.load vmm ~registry:Xprogs.Registry.find m with
          | Ok () -> ()
          | Error e -> invalid_arg ("Chaos: manifest " ^ name ^ ": " ^ e)))
      chain;
    Some vmm

let star_xtras (c : Cg.case) =
  (if List.mem "origin_validation" c.chain then
     [ ("roa_table", Xprogs.Util.encode_roa_table c.roas) ]
   else [])
  @ (match c.limit with
    | Some n when List.mem "prefix_limit" c.chain ->
      [ ("max_prefix", Xprogs.Util.encode_u32 n) ]
    | _ -> [])
  @
  match c.rate with
  | Some n when List.mem "rate_limit" c.chain ->
    [ ("rate_limit", Xprogs.Util.encode_u32 n) ]
  | _ -> []

let run_star_leg (c : Cg.case) (knobs : Cg.knobs) ~npeers ~shards : leg =
  set_caches knobs.caches;
  let telemetry = Telemetry.create ~enabled:knobs.telemetry () in
  Telemetry.set_span_sampling telemetry knobs.span_sampling;
  let vmm = build_chain_vmm ~knobs ~telemetry ~shards c.chain in
  let star =
    Scenario.Star.create ~host:knobs.host ?vmm ~telemetry
      ~update_groups:knobs.update_groups ~batch_updates:knobs.batch_updates
      ~shards ~hold_time:3 ~xtras:(star_xtras c) ~npeers ()
  in
  let rc = Obs.Recorder.create ~capacity:4096 ~name:"dut" () in
  Scenario.Star.attach_recorder star rc;
  let dut = Scenario.Star.dut star in
  let sched = Scenario.Star.sched star in
  let extra_count = ref 0 in
  let inject_extra () =
    let p = extra_prefix !extra_count in
    incr extra_count;
    match c.feed with
    | Cg.Dut_originate -> Scenario.Star.originate star p dut_extra_attrs
    | Cg.Sink_announce ->
      Scenario.Star.sink_announce star 0
        ~attrs:
          Bgp.Attr.
            [
              v (Origin Igp);
              v (As_path [ Seq [ 65101 ] ]);
              v (Next_hop (Scenario.Star.sink_address star 0));
            ]
        [ p ]
  in
  let feed_all () =
    List.iter
      (fun (r : Dataset.Ris_gen.route) ->
        match c.feed with
        | Cg.Dut_originate -> Scenario.Star.originate star r.prefix r.attrs
        | Cg.Sink_announce ->
          Scenario.Star.sink_announce star 0 ~attrs:r.attrs [ r.prefix ])
      c.routes
  in
  let bounce j ~mid_transfer =
    if mid_transfer then begin
      inject_extra ();
      inject_extra ();
      (* frames are now in flight towards the sinks (pipe latency is
         ~100 us); the failure catches the transfer mid-stream *)
      Scenario.Star.run_for star 150
    end;
    Scenario.Star.set_link_up star j false;
    (* hold_time is 3 s: both ends notice the dead link and close *)
    Scenario.Star.run_for star 4_000_000;
    Scenario.Star.set_link_up star j true;
    Scenario.Star.restart star;
    if
      not
        (Scenario.Star.run_until star (fun () ->
             Scenario.Star.all_established star))
    then failwith (Printf.sprintf "sink %d did not re-establish" j)
  in
  let apply_fault = function
    | Cg.Flap j -> bounce j ~mid_transfer:false
    | Cg.Mid_transfer_fail j -> bounce j ~mid_transfer:true
    | Cg.Roa_swap -> (
      Scenario.Daemon.set_xtra dut "roa_table"
        (Xprogs.Util.encode_roa_table c.roas2);
      Scenario.Daemon.rerun_init dut;
      (* re-announce so the import path revalidates under the new table *)
      match c.feed with
      | Cg.Sink_announce ->
        List.iter
          (fun (r : Dataset.Ris_gen.route) ->
            Scenario.Star.sink_announce star 0 ~attrs:r.attrs [ r.prefix ])
          c.routes
      | Cg.Dut_originate -> ())
    | Cg.Detach_attach name -> (
      match vmm with
      | None -> ()
      | Some vmm ->
        let m =
          match Xprogs.Registry.find_manifest name with
          | Some m -> m
          | None -> invalid_arg ("Chaos: unknown manifest " ^ name)
        in
        let points =
          List.sort_uniq compare
            (List.map
               (fun (a : Xbgp.Manifest.attachment) -> a.point)
               m.attachments)
        in
        List.iter
          (fun p -> Xbgp.Vmm.detach vmm ~program:name ~point:p)
          points;
        (* force every adj-RIB-out through the shortened chain so the
           final state does not depend on WHEN each group re-evaluates *)
        Scenario.Daemon.refresh_exports dut;
        Scenario.Star.settle star;
        inject_extra () (* a live change rides the shortened chain *);
        Scenario.Star.settle star;
        List.iter
          (fun (a : Xbgp.Manifest.attachment) ->
            match
              Xbgp.Vmm.attach vmm ~program:a.program ~bytecode:a.bytecode
                ~point:a.point ~order:a.order
            with
            | Ok () -> ()
            | Error e -> failwith ("re-attach " ^ name ^ ": " ^ e))
          m.attachments;
        Scenario.Daemon.refresh_exports dut)
    | Cg.Fabric_fail _ | Cg.Fabric_double_fail _ ->
      invalid_arg "Chaos: fabric fault in a star case"
  in
  let rig =
    {
      now = (fun () -> Netsim.Sched.now sched);
      settle = (fun () -> Scenario.Star.settle star);
      snapshot =
        (fun label ->
          {
            label;
            dur_us = 0;
            locs =
              [
                ( "dut",
                  Oracle.normalize (Scenario.Daemon.loc_snapshot dut) );
              ];
            ribs =
              Array.init npeers (fun i ->
                  Oracle.normalize (Scenario.Star.sink_rib star i));
            reach = [];
            maps =
              (match vmm with
              | Some vmm -> Oracle.render_map_state (Xbgp.Vmm.map_state vmm)
              | None -> "");
          });
    }
  in
  let steps =
    [ ("establish", fun () -> Scenario.Star.establish star);
      ("feed", feed_all) ]
    @ List.map
        (fun fault -> (Cg.fault_name fault, fun () -> apply_fault fault))
        c.faults
    @ [
        ( "aftershock",
          fun () ->
            inject_extra ();
            match c.routes with
            | r :: _ -> (
              match c.feed with
              | Cg.Dut_originate -> Scenario.Star.withdraw_local star r.prefix
              | Cg.Sink_announce ->
                Scenario.Star.sink_withdraw star 0 [ r.prefix ])
            | [] -> () );
      ]
  in
  let phases, findings, note = run_phases ~knobs ~telemetry ~rig steps in
  (* final-state oracles, only meaningful when every phase completed *)
  if List.length phases = List.length steps then begin
    if not (Scenario.Star.all_established star) then
      note
        (finding Convergence "[%a] sessions down after the last phase"
           Cg.pp_knobs knobs);
    let expected_groups =
      if not knobs.update_groups then 0
      else if List.mem "igp_filter" c.chain then npeers
      else 1
    in
    let got = Scenario.Daemon.group_count dut in
    if got <> expected_groups then
      note
        (finding Telemetry_oracle
           "[%a] update groups did not re-merge: %d active, expected %d \
            (chain=[%s])"
           Cg.pp_knobs knobs got expected_groups
           (String.concat "," c.chain));
    List.iter note (check_inflight ~leg:knobs telemetry)
  end;
  Scenario.Star.shutdown star;
  {
    knobs;
    phases;
    leg_findings = findings;
    tail = Obs.Recorder.tail_lines ~n:12 ~prefix:"    " rc;
  }

(* --- the fabric leg --- *)

let tor_pairs =
  let tors = [ "T20"; "T21"; "T22"; "T23" ] in
  List.concat_map
    (fun a -> List.filter_map (fun b -> if a = b then None else Some (a, b)) tors)
    tors

let run_fabric_leg (c : Cg.case) (knobs : Cg.knobs) ~fconfig ~with_transit :
    leg =
  set_caches knobs.caches;
  let telemetry = Telemetry.create ~enabled:knobs.telemetry () in
  Telemetry.set_span_sampling telemetry knobs.span_sampling;
  let fab =
    Scenario.Fabric.build ~host:knobs.host ~with_transit ~engine:knobs.engine
      ~telemetry ~batch_updates:knobs.batch_updates
      ~update_groups:knobs.update_groups fconfig
  in
  let rc = Obs.Recorder.create ~capacity:4096 ~name:"fabric" () in
  Scenario.Fabric.attach_recorder fab rc;
  let sched = fab.Scenario.Fabric.sched in
  let links = Array.of_list fab.Scenario.Fabric.clos.Dataset.Clos.links in
  let link i = links.(i mod Array.length links) in
  let run_us us =
    ignore (Netsim.Sched.run ~until:(Netsim.Sched.now sched + us) sched)
  in
  let activity () =
    List.fold_left
      (fun acc (_, d) ->
        let s = Scenario.Daemon.stats d in
        acc + s.Telemetry.updates_rx + s.Telemetry.updates_tx)
      0 fab.Scenario.Fabric.daemons
  in
  (* Quiescence in 500 ms slices, demanding two consecutive quiet
     slices. A freshly failed link is silent until the hold timers
     expire — and the two ends' timers fire up to hold_time (9 s) plus
     one keepalive interval (3 s) after the failure, depending on
     keepalive phase — so fault phases pre-roll past the worst-case
     expiry before watching for the update churn to stop. (The first
     campaign surfaced exactly this: an 11 s pre-roll left a window in
     which a quiet slice could precede a late hold expiry, freezing a
     mid-path-hunt snapshot on timing-shifted legs.) *)
  let pre_roll = ref 0 in
  let quiesce () =
    run_us !pre_roll;
    pre_roll := 0;
    let rec go n quiet last =
      if n > 0 && quiet < 2 then begin
        run_us 500_000;
        let cur = activity () in
        go (n - 1) (if cur = last then quiet + 1 else 0) cur
      end
    in
    go 200 0 (activity ())
  in
  let fail_idx i =
    let a, b = link i in
    Scenario.Fabric.fail_link fab a b
  in
  let repair_idx i =
    let a, b = link i in
    Scenario.Fabric.repair_link fab a b
  in
  (* hold_time (9 s) + keepalive interval (3 s) + margin — covers the
     worst-case hold expiry after a failure AND the worst-case connect
     retry after a repair (a handshake wedged by a multi-link repair
     re-opens one hold interval after its OPEN was lost) *)
  let hold_roll = 13_000_000 in
  let steps =
    [ ("start", fun () -> Scenario.Fabric.start fab) ]
    @ List.concat_map
        (fun fault ->
          match fault with
          | Cg.Fabric_fail i ->
            let name = Cg.fault_name fault in
            [
              ( name,
                fun () ->
                  fail_idx i;
                  pre_roll := hold_roll );
              ( "repair:" ^ name,
                fun () ->
                  repair_idx i;
                  pre_roll := hold_roll );
            ]
          | Cg.Fabric_double_fail (i, j) ->
            let name = Cg.fault_name fault in
            [
              ( name,
                fun () ->
                  fail_idx i;
                  fail_idx j;
                  pre_roll := hold_roll );
              ( "repair:" ^ name,
                fun () ->
                  repair_idx i;
                  repair_idx j;
                  pre_roll := hold_roll );
            ]
          | _ -> invalid_arg "Chaos: star fault in a fabric case")
        c.faults
  in
  let rig =
    {
      now = (fun () -> Netsim.Sched.now sched);
      settle = quiesce;
      snapshot =
        (fun label ->
          {
            label;
            dur_us = 0;
            locs =
              List.map
                (fun (name, d) ->
                  (name, Oracle.normalize (Scenario.Daemon.loc_snapshot d)))
                fab.Scenario.Fabric.daemons;
            ribs = [||];
            reach =
              List.map
                (fun (a, b) -> Scenario.Fabric.reaches fab a b)
                tor_pairs;
            maps = "";
          });
    }
  in
  let phases, findings, note = run_phases ~knobs ~telemetry ~rig steps in
  if List.length phases = List.length steps then begin
    let unreachable =
      List.filter (fun (a, b) -> not (Scenario.Fabric.reaches fab a b)) tor_pairs
    in
    if unreachable <> [] then
      note
        (finding Convergence
           "[%a] fabric did not reconverge after repairs: %s" Cg.pp_knobs
           knobs
           (String.concat ", "
              (List.map (fun (a, b) -> a ^ "->" ^ b) unreachable)));
    List.iter note (check_inflight ~leg:knobs telemetry)
  end;
  {
    knobs;
    phases;
    leg_findings = findings;
    tail = Obs.Recorder.tail_lines ~n:12 ~prefix:"    " rc;
  }

(* [shards] sharding applies to the star DUT only; a fabric case runs a
   dozen routers and sharding each of them buys nothing the star legs do
   not already prove. *)
let run_leg ?(shards = 1) (c : Cg.case) (knobs : Cg.knobs) : leg =
  match c.topology with
  | Cg.Star { npeers } -> run_star_leg c knobs ~npeers ~shards
  | Cg.Fabric { fconfig; with_transit } ->
    run_fabric_leg c knobs ~fconfig ~with_transit

(* --- grid equivalence --- *)

let pp_route ppf (p, attrs) =
  Fmt.pf ppf "%a [%a]" Bgp.Prefix.pp p
    (Fmt.list ~sep:(Fmt.any "; ") Bgp.Attr.pp)
    attrs

(* First difference between two normalized snapshots (same shape as the
   host differential's, with leg names instead of host names). *)
let diff_snap ~what ~l0 ~l1 a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> None
    | ra :: _, [] -> Some (Fmt.str "%s: %a only on %s" what pp_route ra l0)
    | [], rb :: _ -> Some (Fmt.str "%s: %a only on %s" what pp_route rb l1)
    | ((pa, aa) as ra) :: ta, ((pb, ab) as rb) :: tb ->
      let cmp = Bgp.Prefix.compare pa pb in
      if cmp < 0 then Some (Fmt.str "%s: %a only on %s" what pp_route ra l0)
      else if cmp > 0 then
        Some (Fmt.str "%s: %a only on %s" what pp_route rb l1)
      else if
        List.length aa <> List.length ab
        || not (List.for_all2 Bgp.Attr.equal aa ab)
      then
        Some
          (Fmt.str "%s: %a differs: %s=%a %s=%a" what Bgp.Prefix.pp pa l0
             pp_route ra l1 pp_route rb)
      else go ta tb
  in
  go a b

let diff_phase ~l0 ~l1 (p0 : phase) (p1 : phase) : string list =
  let locs =
    List.filter_map
      (fun (name, snap0) ->
        match List.assoc_opt name p1.locs with
        | None -> Some (Fmt.str "%s loc-rib missing on %s" name l1)
        | Some snap1 ->
          diff_snap ~what:(name ^ " loc-rib") ~l0 ~l1 snap0 snap1)
      p0.locs
  in
  let ribs = ref [] in
  if Array.length p0.ribs = Array.length p1.ribs then
    Array.iteri
      (fun i snap0 ->
        match
          diff_snap
            ~what:(Fmt.str "sink %d adj-rib-in" i)
            ~l0 ~l1 snap0 p1.ribs.(i)
        with
        | Some d -> ribs := d :: !ribs
        | None -> ())
      p0.ribs
  else ribs := [ Fmt.str "sink count differs (%d vs %d)" (Array.length p0.ribs) (Array.length p1.ribs) ];
  let reach =
    if p0.reach <> p1.reach then
      [
        Fmt.str "ToR reachability differs: %s=[%s] %s=[%s]" l0
          (String.concat ""
             (List.map (fun r -> if r then "1" else "0") p0.reach))
          l1
          (String.concat ""
             (List.map (fun r -> if r then "1" else "0") p1.reach));
      ]
    else []
  in
  let maps =
    if p0.maps <> p1.maps then
      [ Fmt.str "map state differs: %s=[%s] %s=[%s]" l0 p0.maps l1 p1.maps ]
    else []
  in
  List.map
    (fun d -> Fmt.str "phase %s: %s" p0.label d)
    (locs @ List.rev !ribs @ reach @ maps)

let compare_legs (base : leg) (other : leg) : finding list =
  let l0 = Fmt.str "%a" Cg.pp_knobs base.knobs in
  let l1 = Fmt.str "%a" Cg.pp_knobs other.knobs in
  let rec go p0s p1s acc =
    match (p0s, p1s) with
    | [], [] -> acc
    | _ :: _, [] | [], _ :: _ ->
      (* a leg that aborted early already carries its own finding *)
      acc
    | p0 :: t0, p1 :: t1 ->
      let diffs =
        List.map
          (fun d -> finding Equivalence "%s vs %s: %s" l0 l1 d)
          (diff_phase ~l0 ~l1 p0 p1)
      in
      go t0 t1 (acc @ diffs)
  in
  go base.phases other.phases []

(* [perturb] corrupts the base leg's final snapshot — the knob the
   self-tests use to prove the oracle, shrinker and replay pipeline fire
   end to end. A map-carrying case gets its map fingerprint corrupted
   (dropping the leading entry, the moral equivalent of losing one map
   write), proving the map-state oracle specifically; every case also
   loses the head route of its first Loc-RIB snapshot. *)
let perturb_leg (l : leg) : leg =
  match List.rev l.phases with
  | [] -> l
  | last :: rest ->
    let locs =
      match last.locs with
      | (name, _ :: routes) :: others -> (name, routes) :: others
      | locs -> locs
    in
    let maps =
      if last.maps = "" then last.maps
      else
        match String.index_opt last.maps ',' with
        | Some i ->
          (* drop the first map entry, keep the rest well-formed *)
          String.sub last.maps (i + 1)
            (String.length last.maps - i - 1)
        | None -> last.maps ^ "|perturbed"
    in
    { l with phases = List.rev ({ last with locs; maps } :: rest) }

let run_case ?(perturb = false) ?(shards = 1) (c : Cg.case) :
    finding list * (string * int) list =
  let legs = List.map (fun k -> run_leg ~shards c k) c.grid in
  set_caches true (* restore the process-wide default *);
  let legs =
    match legs with
    | base :: rest when perturb -> perturb_leg base :: rest
    | legs -> legs
  in
  let leg_findings = List.concat_map (fun l -> l.leg_findings) legs in
  let equiv =
    match legs with
    | base :: rest -> List.concat_map (compare_legs base) rest
    | [] -> []
  in
  let durations =
    match legs with
    | base :: _ -> List.map (fun p -> (p.label, p.dur_us)) base.phases
    | [] -> []
  in
  (* Failing report? Append leg 0's flight-recorder tail to the last
     finding as context — extending a detail keeps the finding count and
     class set exactly what shrinking and the self-tests assert on. *)
  let findings =
    match (List.rev (leg_findings @ equiv), legs) with
    | last :: rest, base :: _ when base.tail <> [] ->
      let text =
        String.concat "\n"
          (Fmt.str "  [%a] flight-recorder tail:" Cg.pp_knobs base.knobs
          :: base.tail)
      in
      List.rev ({ last with detail = last.detail ^ "\n" ^ text } :: rest)
    | rev, _ -> List.rev rev
  in
  (findings, durations)

(* --- shrinking --- *)

(* Minimize the fault schedule and the route table together; the
   predicate preserves the original divergence CLASS, not just "any
   finding" — a convergence timeout must not shrink into an unrelated
   telemetry violation. *)
let shrink_case ?(shards = 1) ~perturb (c : Cg.case) ~classes =
  let still_fails dims =
    match dims with
    | [| faults; routes |] ->
      let c' = Cg.restrict ~faults ~routes c in
      let findings, _ = run_case ~perturb ~shards c' in
      List.exists (fun f -> List.mem f.cls classes) findings
    | _ -> assert false
  in
  let kept =
    Shrink.minimize_multi ~still_fails
      [| Shrink.indices c.faults; Shrink.indices c.routes |]
  in
  match kept with
  | [| faults; routes |] ->
    (Cg.restrict ~faults ~routes c, faults, routes)
  | _ -> assert false

(* --- the campaign --- *)

type failure = {
  case : Cg.case;  (** minimized *)
  findings : finding list;  (** findings of the minimized case *)
  classes : cls list;  (** divergence classes of the ORIGINAL case *)
  repro : Replay.Chaos.t;
  repro_path : string option;
}

type summary = {
  cases : int;
  topologies : (string * int) list;  (** histogram, generation order *)
  failures : failure list;
  convergence : (string * int) list;
      (** (phase label, simulated us) pairs from every case's leg 0 —
          the raw material for the bench's convergence distributions *)
}

let result_of ~perturb ~shards ~out (c : Cg.case) ~classes =
  let minimized, faults, routes = shrink_case ~shards ~perturb c ~classes in
  let findings, _ = run_case ~perturb ~shards minimized in
  let findings =
    if findings = [] then fst (run_case ~perturb ~shards c) else findings
  in
  let note =
    match findings with [] -> "" | f :: _ -> Fmt.str "%a" pp_finding f
  in
  let repro =
    {
      Replay.Chaos.seed = c.seed;
      case_index = c.index;
      perturb;
      faults = Some faults;
      routes = Some routes;
      classes = List.map cls_name classes;
      note;
    }
  in
  let repro_path = Option.map (fun dir -> Replay.Chaos.save ~dir repro) out in
  { case = minimized; findings; classes; repro; repro_path }

let campaign ?out ?(perturb = false) ?(shards = 1) ?(log = fun _ -> ())
    ~seed ~cases () : summary =
  let histogram = Hashtbl.create 8 in
  let order = ref [] in
  let bump name =
    if not (Hashtbl.mem histogram name) then order := name :: !order;
    Hashtbl.replace histogram name
      (1 + Option.value ~default:0 (Hashtbl.find_opt histogram name))
  in
  let failures = ref [] and convergence = ref [] in
  for index = 0 to cases - 1 do
    let c = Cg.case ~seed ~index in
    bump (Cg.topology_name c.topology);
    let findings, durations = run_case ~perturb ~shards c in
    convergence := List.rev_append durations !convergence;
    (match findings with
    | [] -> ()
    | first :: _ ->
      log (Fmt.str "FAIL %a: %a" Cg.pp_case c pp_finding first);
      let r = result_of ~perturb ~shards ~out c ~classes:(classes_of findings) in
      (match r.repro_path with
      | Some p -> log (Fmt.str "  reproducer: %s" p)
      | None -> ());
      failures := r :: !failures);
    if (index + 1) mod 25 = 0 then
      log
        (Fmt.str "%d/%d chaos cases, %d failing" (index + 1) cases
           (List.length !failures))
  done;
  {
    cases;
    topologies = List.rev_map (fun n -> (n, Hashtbl.find histogram n)) !order;
    failures = List.rev !failures;
    convergence = List.rev !convergence;
  }

(* --- replay --- *)

let replay (r : Replay.Chaos.t) =
  match Replay.Chaos.case_of r with
  | Error e -> Error e
  | Ok c ->
    let findings, _ = run_case ~perturb:r.perturb c in
    let recorded =
      List.filter_map cls_of_name r.classes |> List.sort_uniq compare
    in
    let reproduced =
      recorded = []
      || List.exists (fun f -> List.mem f.cls recorded) findings
    in
    Ok (c, findings, reproduced)

let pp_summary ppf s =
  Fmt.pf ppf "%d chaos cases (%a): %d failing"
    s.cases
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (n, c) -> Fmt.pf ppf "%s %d" n c))
    s.topologies
    (List.length s.failures)
