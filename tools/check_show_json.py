#!/usr/bin/env python3
"""Shape checker for `xbgp-sim show <query> --json` documents.

Reads one JSON document from stdin (or a file argument), infers which
of the seven query shapes it is from its top-level keys, and validates
the document structurally: required keys, value types, and the nested
event/provenance/map record layouts. No external dependencies — CI
pipes every `show --json` output through this to keep the machine
surface stable across PRs.

Usage:
    xbgp-sim show rib --json | tools/check_show_json.py
    tools/check_show_json.py --expect provenance out.json
Exit 0 when the document matches; 1 with a diagnostic when it does not.
"""

import json
import sys


class Bad(Exception):
    pass


def fail(path, msg):
    raise Bad(f"{path}: {msg}")


def need(obj, path, key, typ):
    if not isinstance(obj, dict):
        fail(path, f"expected an object, got {type(obj).__name__}")
    if key not in obj:
        fail(path, f"missing key {key!r}")
    v = obj[key]
    # bool is an int subclass in Python; keep them distinct
    if typ is int and isinstance(v, bool):
        fail(f"{path}.{key}", "expected an integer, got a boolean")
    if not isinstance(v, typ):
        fail(f"{path}.{key}", f"expected {typ.__name__}, got {type(v).__name__}")
    return v


def exact_keys(obj, path, keys):
    extra = set(obj) - set(keys)
    if extra:
        fail(path, f"unexpected key(s) {sorted(extra)}")


def check_step(s, path):
    need(s, path, "program", str)
    need(s, path, "bytecode", str)
    need(s, path, "engine", str)
    need(s, path, "outcome", str)
    need(s, path, "attrs_mutated", bool)
    for i, m in enumerate(need(s, path, "maps_written", list)):
        if not isinstance(m, str):
            fail(f"{path}.maps_written[{i}]", "expected a string")
    exact_keys(s, path, ["program", "bytecode", "engine", "outcome",
                         "attrs_mutated", "maps_written"])


def check_decision(d, path):
    if d is None:
        return
    kind = need(d, path, "kind", str)
    if kind == "only_candidate":
        exact_keys(d, path, ["kind"])
    elif kind == "best":
        need(d, path, "runner_up", str)
        need(d, path, "step", int)
        need(d, path, "step_name", str)
        exact_keys(d, path, ["kind", "runner_up", "step", "step_name"])
    elif kind == "shadowed":
        need(d, path, "best", str)
        need(d, path, "step", int)
        need(d, path, "step_name", str)
        exact_keys(d, path, ["kind", "best", "step", "step_name"])
    elif kind == "xprog_decided":
        need(d, path, "runner_up", str)
        exact_keys(d, path, ["kind", "runner_up"])
    else:
        fail(f"{path}.kind", f"unknown decision kind {kind!r}")


def check_provenance_record(p, path):
    need(p, path, "prefix", str)
    if need(p, path, "status", str) not in (
            "installed", "candidate", "rejected", "withdrawn"):
        fail(f"{path}.status", f"unknown status {p['status']!r}")
    need(p, path, "ingress", str)
    for i, s in enumerate(need(p, path, "chain", list)):
        check_step(s, f"{path}.chain[{i}]")
    need(p, path, "import", str)
    check_decision(p.get("decision"), f"{path}.decision")
    exact_keys(p, path, ["prefix", "status", "ingress", "chain",
                         "import", "decision"])


def check_rib(doc):
    need(doc, "$", "daemon", str)
    count = need(doc, "$", "count", int)
    routes = need(doc, "$", "routes", list)
    if count != len(routes):
        fail("$.count", f"count={count} but {len(routes)} route(s)")
    for i, r in enumerate(routes):
        path = f"$.routes[{i}]"
        need(r, path, "prefix", str)
        for j, a in enumerate(need(r, path, "attrs", list)):
            if not isinstance(a, str):
                fail(f"{path}.attrs[{j}]", "expected a string")
        exact_keys(r, path, ["prefix", "attrs"])
    exact_keys(doc, "$", ["daemon", "count", "routes"])


def check_provenance(doc):
    need(doc, "$", "daemon", str)
    if doc.get("provenance") is not None:
        check_provenance_record(doc["provenance"], "$.provenance")
    exact_keys(doc, "$", ["daemon", "provenance"])


def check_update_groups(doc):
    need(doc, "$", "daemon", str)
    count = need(doc, "$", "count", int)
    groups = need(doc, "$", "groups", list)
    if count != len(groups):
        fail("$.count", f"count={count} but {len(groups)} group(s)")
    for i, g in enumerate(groups):
        path = f"$.groups[{i}]"
        need(g, path, "key", str)
        for j, m in enumerate(need(g, path, "members", list)):
            if isinstance(m, bool) or not isinstance(m, int):
                fail(f"{path}.members[{j}]", "expected an integer")
        exact_keys(g, path, ["key", "members"])
    exact_keys(doc, "$", ["daemon", "count", "groups"])


def check_maps(doc):
    need(doc, "$", "daemon", str)
    for i, prog in enumerate(need(doc, "$", "programs", list)):
        ppath = f"$.programs[{i}]"
        need(prog, ppath, "program", str)
        for j, m in enumerate(need(prog, ppath, "maps", list)):
            mpath = f"{ppath}.maps[{j}]"
            need(m, mpath, "map", str)
            for k, e in enumerate(need(m, mpath, "entries", list)):
                epath = f"{mpath}.entries[{k}]"
                need(e, epath, "key", str)
                need(e, epath, "value", str)
                exact_keys(e, epath, ["key", "value"])
            exact_keys(m, mpath, ["map", "entries"])
        exact_keys(prog, ppath, ["program", "maps"])
    exact_keys(doc, "$", ["daemon", "programs"])


RECORDER_KINDS = {
    "session", "route_add", "route_replace", "route_withdraw",
    "group_split", "group_merge", "group_rekey", "xprog_fault",
    "native_fallback", "map_evict", "note",
}


def check_recorder(doc):
    need(doc, "$", "daemon", str)
    rec = doc.get("recorder")
    if rec is not None:
        need(rec, "$.recorder", "next_seq", int)
        need(rec, "$.recorder", "dropped", int)
        prev_seq = -1
        for i, ev in enumerate(need(rec, "$.recorder", "events", list)):
            path = f"$.recorder.events[{i}]"
            seq = need(ev, path, "seq", int)
            if seq <= prev_seq:
                fail(f"{path}.seq", f"not increasing ({seq} after {prev_seq})")
            if seq >= rec["next_seq"]:
                fail(f"{path}.seq", f"{seq} >= next_seq {rec['next_seq']}")
            prev_seq = seq
            need(ev, path, "ts_us", int)
            kind = need(ev, path, "kind", str)
            if kind not in RECORDER_KINDS:
                fail(f"{path}.kind", f"unknown event kind {kind!r}")
            fields = need(ev, path, "fields", dict)
            for k, v in fields.items():
                if not isinstance(v, str):
                    fail(f"{path}.fields[{k!r}]", "expected a string value")
            exact_keys(ev, path, ["seq", "ts_us", "kind", "fields"])
        exact_keys(rec, "$.recorder", ["next_seq", "dropped", "events"])
    exact_keys(doc, "$", ["daemon", "recorder"])


def check_bmp(doc):
    need(doc, "$", "daemon", str)
    bmp = doc.get("bmp")
    if bmp is not None:
        messages = need(bmp, "$.bmp", "messages", int)
        need(bmp, "$.bmp", "errors", int)
        counts = need(bmp, "$.bmp", "counts", dict)
        for k, v in counts.items():
            if isinstance(v, bool) or not isinstance(v, int):
                fail(f"$.bmp.counts[{k!r}]", "expected an integer")
        if sum(counts.values()) != messages:
            fail("$.bmp.counts",
                 f"counts sum to {sum(counts.values())}, messages={messages}")
        exact_keys(bmp, "$.bmp", ["messages", "errors", "counts"])
    exact_keys(doc, "$", ["daemon", "bmp"])


def check_shards(doc):
    need(doc, "$", "daemon", str)
    shards = need(doc, "$", "shards", int)
    if shards < 1:
        fail("$.shards", f"expected >= 1, got {shards}")
    need(doc, "$", "barriers", int)
    need(doc, "$", "par_batches", int)
    need(doc, "$", "seq_batches", int)
    slices = need(doc, "$", "slices", list)
    if len(slices) != shards:
        fail("$.slices", f"shards={shards} but {len(slices)} slice(s)")
    for i, s in enumerate(slices):
        path = f"$.slices[{i}]"
        if need(s, path, "shard", int) != i:
            fail(f"{path}.shard", f"expected {i}, got {s['shard']}")
        need(s, path, "routes", int)
        need(s, path, "vm_runs", int)
        # worker-queue counters only exist on a sharded daemon (the
        # single-domain daemon has no worker pool)
        if "jobs_submitted" in s:
            submitted = need(s, path, "jobs_submitted", int)
            completed = need(s, path, "jobs_completed", int)
            if completed > submitted:
                fail(f"{path}.jobs_completed",
                     f"{completed} completed > {submitted} submitted")
            need(s, path, "queue_depth", int)
            need(s, path, "queue_hwm", int)
            exact_keys(s, path, ["shard", "routes", "vm_runs",
                                 "jobs_submitted", "jobs_completed",
                                 "queue_depth", "queue_hwm"])
        else:
            exact_keys(s, path, ["shard", "routes", "vm_runs"])
    exact_keys(doc, "$", ["daemon", "shards", "barriers", "par_batches",
                          "seq_batches", "slices"])


CHECKERS = {
    "rib": check_rib,
    "provenance": check_provenance,
    "update-groups": check_update_groups,
    "maps": check_maps,
    "shards": check_shards,
    "recorder": check_recorder,
    "bmp": check_bmp,
}

# distinguishing top-level key -> shape (all seven carry "daemon")
SHAPE_OF_KEY = {
    "routes": "rib",
    "provenance": "provenance",
    "groups": "update-groups",
    "programs": "maps",
    "slices": "shards",
    "recorder": "recorder",
    "bmp": "bmp",
}


def infer_shape(doc):
    shapes = sorted({SHAPE_OF_KEY[k] for k in doc if k in SHAPE_OF_KEY})
    if len(shapes) != 1:
        raise Bad(f"$: cannot infer shape from keys {sorted(doc)}")
    return shapes[0]


def main(argv):
    expect = None
    args = argv[1:]
    if args and args[0] == "--expect":
        if len(args) < 2 or args[1] not in CHECKERS:
            print(f"check_show_json: --expect needs one of "
                  f"{sorted(CHECKERS)}", file=sys.stderr)
            return 2
        expect = args[1]
        args = args[2:]
    try:
        text = open(args[0], encoding="utf-8").read() if args \
            else sys.stdin.read()
    except OSError as e:
        print(f"check_show_json: {e}", file=sys.stderr)
        return 2
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        print(f"check_show_json: not valid JSON: {e}", file=sys.stderr)
        return 1
    try:
        if not isinstance(doc, dict):
            raise Bad("$: expected a JSON object")
        shape = expect or infer_shape(doc)
        if expect and infer_shape(doc) != expect:
            raise Bad(f"$: document is {infer_shape(doc)!r}, "
                      f"expected {expect!r}")
        CHECKERS[shape](doc)
    except Bad as e:
        print(f"check_show_json: {e}", file=sys.stderr)
        return 1
    print(f"ok: {shape}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
