#!/usr/bin/env python3
"""Bench regression guard over a BENCH_pr*.json artifact.

Two modes, auto-detected from the file name (or forced with --mode):

dispatch (BENCH_pr9.json) — the whole-chain fused engine's acceptance
figure is the paired ext/native ratio (1.0 = native parity) per host x
grid; fails when any median ratio exceeds --threshold, i.e. when an
extension-attached dispatch chain costs more than THRESHOLD x the
native re-implementation of the same function.

shard (BENCH_pr10.json) — the multicore import pipeline's acceptance
figure is the 4-domain speedup over the single-domain baseline per
host x peer-count leg; fails when any 4-shard leg comes in under
--min-speedup x. Enforced ONLY when the artifact was produced on a
machine with at least --min-cores cores (the bench records
Domain.recommended_domain_count as "shard.cores"): on a starved
runner the domains time-slice one core and a speedup figure is noise,
so the guard reports and passes. It still fails anywhere if a sharded
leg never engaged the parallel lane (par_batches = 0) — that is a
wiring bug, not a scaling result.

Usage: check_bench_guard.py [--mode dispatch|shard] [--threshold 1.3]
       [--min-speedup 2.0] [--min-cores 4] [BENCH_pr9.json]
"""

import argparse
import json
import sys

SUFFIX = ".chain_native_ratio.median"
EXPECTED = 4  # 2 hosts (frr, bird) x 2 grids (rr, ov)

SHARD_SUFFIX = ".s4.speedup"
SHARD_EXPECTED = 4  # 2 hosts (frr, bird) x 2 peer counts


def check_dispatch(bench, args):
    ratios = {k: v for k, v in bench.items() if k.endswith(SUFFIX)}
    if len(ratios) < EXPECTED:
        print(
            f"guard: expected >= {EXPECTED} chain/native ratios in "
            f"{args.path}, found {len(ratios)} — was the dispatch bench "
            "run with --json?",
            file=sys.stderr,
        )
        return 1

    bad = []
    for key in sorted(ratios):
        ratio = ratios[key]
        verdict = "ok" if ratio <= args.threshold else "FAIL"
        print(f"  {key[: -len(SUFFIX)]}: {ratio:.3f} [{verdict}]")
        if ratio > args.threshold:
            bad.append((key, ratio))

    if bad:
        for key, ratio in bad:
            print(
                f"guard: {key} = {ratio:.3f} exceeds the "
                f"{args.threshold:.2f}x fused-vs-native budget",
                file=sys.stderr,
            )
        return 1
    print(f"guard: all chain/native medians within {args.threshold:.2f}x")
    return 0


def check_shard(bench, args):
    cores = int(bench.get("shard.cores", 0))
    speedups = {k: v for k, v in bench.items() if k.endswith(SHARD_SUFFIX)}
    if len(speedups) < SHARD_EXPECTED:
        print(
            f"guard: expected >= {SHARD_EXPECTED} 4-shard speedups in "
            f"{args.path}, found {len(speedups)} — was the shard bench "
            "run with --json?",
            file=sys.stderr,
        )
        return 1

    # Every sharded leg must have taken the parallel lane — a zero
    # par_batches count means the fan-out never ran and the "speedup"
    # measured the serial fallback. This holds regardless of cores.
    wiring = []
    for key in sorted(bench):
        if ".s1." in key or not key.endswith(".par_batches"):
            continue
        if bench[key] == 0:
            wiring.append(key)
    if wiring:
        for key in wiring:
            print(
                f"guard: {key} = 0 — the sharded leg never engaged the "
                "parallel import lane",
                file=sys.stderr,
            )
        return 1

    enforce = cores >= args.min_cores
    bad = []
    for key in sorted(speedups):
        speedup = speedups[key]
        verdict = (
            "ok"
            if speedup >= args.min_speedup
            else ("FAIL" if enforce else "low, not enforced")
        )
        print(f"  {key[: -len(SHARD_SUFFIX)]}: s4 {speedup:.2f}x [{verdict}]")
        if enforce and speedup < args.min_speedup:
            bad.append((key, speedup))

    if not enforce:
        print(
            f"guard: artifact recorded {cores} core(s) < {args.min_cores} — "
            f"parallel lane wiring verified, {args.min_speedup:.1f}x scaling "
            "floor not enforced on a starved runner"
        )
        return 0
    if bad:
        for key, speedup in bad:
            print(
                f"guard: {key} = {speedup:.2f}x under the "
                f"{args.min_speedup:.1f}x 4-domain scaling floor "
                f"({cores} cores)",
                file=sys.stderr,
            )
        return 1
    print(
        f"guard: all 4-domain legs at or above {args.min_speedup:.1f}x "
        f"({cores} cores)"
    )
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("path", nargs="?", default="BENCH_pr9.json")
    ap.add_argument("--mode", choices=["dispatch", "shard"])
    ap.add_argument("--threshold", type=float, default=1.3)
    ap.add_argument("--min-speedup", type=float, default=2.0)
    ap.add_argument("--min-cores", type=int, default=4)
    args = ap.parse_args()

    mode = args.mode or ("shard" if "pr10" in args.path else "dispatch")

    with open(args.path) as f:
        bench = json.load(f)

    if mode == "shard":
        return check_shard(bench, args)
    return check_dispatch(bench, args)


if __name__ == "__main__":
    sys.exit(main())
