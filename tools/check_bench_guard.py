#!/usr/bin/env python3
"""Fused-dispatch regression guard over a BENCH_pr9.json artifact.

The whole-chain fused engine's acceptance figure is the paired
ext/native ratio (1.0 = native parity) per host x grid; this guard
fails the build when any median ratio exceeds the threshold, i.e. when
an extension-attached dispatch chain costs more than THRESHOLD x the
native re-implementation of the same function.

Usage: check_bench_guard.py [--threshold 1.3] [BENCH_pr9.json]
"""

import argparse
import json
import sys

SUFFIX = ".chain_native_ratio.median"
EXPECTED = 4  # 2 hosts (frr, bird) x 2 grids (rr, ov)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("path", nargs="?", default="BENCH_pr9.json")
    ap.add_argument("--threshold", type=float, default=1.3)
    args = ap.parse_args()

    with open(args.path) as f:
        bench = json.load(f)

    ratios = {k: v for k, v in bench.items() if k.endswith(SUFFIX)}
    if len(ratios) < EXPECTED:
        print(
            f"guard: expected >= {EXPECTED} chain/native ratios in "
            f"{args.path}, found {len(ratios)} — was the dispatch bench "
            "run with --json?",
            file=sys.stderr,
        )
        return 1

    bad = []
    for key in sorted(ratios):
        ratio = ratios[key]
        verdict = "ok" if ratio <= args.threshold else "FAIL"
        print(f"  {key[: -len(SUFFIX)]}: {ratio:.3f} [{verdict}]")
        if ratio > args.threshold:
            bad.append((key, ratio))

    if bad:
        for key, ratio in bad:
            print(
                f"guard: {key} = {ratio:.3f} exceeds the "
                f"{args.threshold:.2f}x fused-vs-native budget",
                file=sys.stderr,
            )
        return 1
    print(f"guard: all chain/native medians within {args.threshold:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
