lib/core/xprog.mli: Ebpf
