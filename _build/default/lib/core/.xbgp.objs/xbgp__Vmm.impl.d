lib/core/vmm.ml: Api Array Bytes Ebpf Fmt Hashtbl Host_intf Int Int32 Int64 Lazy List Logs Option Printf Xprog
