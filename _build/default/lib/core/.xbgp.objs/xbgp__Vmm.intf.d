lib/core/vmm.mli: Api Ebpf Host_intf Xprog
