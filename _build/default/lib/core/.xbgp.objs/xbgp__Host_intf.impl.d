lib/core/host_intf.ml: Api Bytes Int32
