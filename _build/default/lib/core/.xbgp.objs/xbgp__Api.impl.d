lib/core/api.ml: Fmt List Printf
