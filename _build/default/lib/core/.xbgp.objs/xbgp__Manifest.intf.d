lib/core/manifest.mli: Api Vmm Xprog
