lib/core/manifest.ml: Api Buffer List Printf Result String Vmm
