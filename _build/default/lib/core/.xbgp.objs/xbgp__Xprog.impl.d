lib/core/xprog.ml: Ebpf List
