(** §2 / Fig. 2: the GeoLoc attribute (code 42) — receive recovers it from the raw UPDATE, import stamps coordinates and filters by squared distance, export strips it at the AS boundary, encode writes it into iBGP updates.

    See the .ml for the annotated bytecode. *)

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
