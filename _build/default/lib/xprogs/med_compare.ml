(* "Always-compare-MED" as extension code, exercising the BGP_DECISION
   insertion point (circle 3 of Fig. 2).

   RFC 4271 only compares MULTI_EXIT_DISC between routes from the same
   neighbouring AS; many operators want the vendor knob that compares it
   globally. With xBGP that knob is forty instructions: look at both
   candidate summaries, and when their MEDs differ pick the lower one —
   before the native tie-breaking runs. Equal MEDs are declared a tie,
   which hands the decision back to the host's RFC 4271 process. *)

open Ebpf.Asm
open Ebpf.Insn

let compare_med =
  assemble
    [
      movi R1 Xbgp.Api.arg_candidate_a;
      call Xbgp.Api.h_get_arg;
      jeqi R0 0 "tie";
      mov R6 R0;
      movi R1 Xbgp.Api.arg_candidate_b;
      call Xbgp.Api.h_get_arg;
      jeqi R0 0 "tie";
      mov R7 R0;
      (* blob header is 4 bytes; med at cd_med *)
      ldxw R1 R6 (4 + Xbgp.Api.cd_med);
      ldxw R2 R7 (4 + Xbgp.Api.cd_med);
      jlt R1 R2 "first";
      jgt R1 R2 "second";
      label "tie";
      movi R0 0;
      exit_;
      label "first";
      movi R0 1;
      exit_;
      label "second";
      movi R0 2;
      exit_;
    ]

let program =
  Xbgp.Xprog.v ~name:"med_compare"
    ~allowed_helpers:Xbgp.Api.[ h_get_arg ]
    [ ("compare", compare_med) ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "med_compare" ]
    ~attachments:
      [
        {
          program = "med_compare";
          bytecode = "compare";
          point = Xbgp.Api.Bgp_decision;
          order = 0;
        };
      ]
