(* §3.1 / Listing 1: an export filter that rejects BGP routes whose
   next hop has a too-large IGP metric.

   Faithful transcription of the paper's C source:

     uint64_t export_igp(args) {
       nexthop = get_nexthop(NULL);
       peer    = get_peer_info();
       if (peer->peer_type != EBGP_SESSION) next();  // no iBGP filtering
       if (nexthop->igp_metric <= MAX_METRIC) next();// accepted here;
                                                     // next filter decides
       return FILTER_REJECT;
     }

   MAX_METRIC comes from the router configuration through
   get_xtra("igp_max_metric") (big-endian u32); when the extra is absent
   the filter defers. Attached to BGP_OUTBOUND_FILTER. *)

open Ebpf.Asm
open Ebpf.Insn

let key = "igp_max_metric"
let key_at = -16 (* stack slot for the cstring *)

let store_cstring_items = Util.store_cstring ~at:key_at key

let export_igp =
  assemble
    (List.concat
       [
         [
           call Xbgp.Api.h_get_nexthop;
           jeqi R0 0 "next";
           mov R6 R0;
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "next";
           ldxw R1 R0 Xbgp.Api.pi_peer_type;
           jnei R1 Xbgp.Api.ebgp_session "next";
         ];
         store_cstring_items;
         [
           mov R1 R10;
           addi R1 key_at;
           call Xbgp.Api.h_get_xtra;
           jeqi R0 0 "next";
           ldxw R7 R0 Xbgp.Api.blob_header_size;
           be32 R7;
           (* r7 = MAX_METRIC *)
           ldxw R2 R6 Xbgp.Api.nh_igp_metric;
           jle R2 R7 "next";
           movi R0 1;
           (* FILTER_REJECT *)
           exit_;
           label "next";
         ];
         Util.tail_next;
       ])

(** The deployable program: one bytecode for the outbound filter. *)
let program =
  Xbgp.Xprog.v ~name:"igp_filter"
    ~allowed_helpers:
      Xbgp.Api.
        [ h_next; h_get_nexthop; h_get_peer_info; h_get_xtra ]
    [ ("export_igp", export_igp) ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "igp_filter" ]
    ~attachments:
      [
        {
          program = "igp_filter";
          bytecode = "export_igp";
          point = Xbgp.Api.Bgp_outbound_filter;
          order = 0;
        };
      ]
