lib/xprogs/util.ml: Asm Bgp Bytes Char Ebpf Float Insn Int32 List Rpki String Xbgp
