lib/xprogs/origin_validation.mli: Xbgp
