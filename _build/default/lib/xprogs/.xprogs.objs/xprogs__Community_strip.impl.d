lib/xprogs/community_strip.ml: Bgp Ebpf List Util Xbgp
