lib/xprogs/med_compare.ml: Ebpf Xbgp
