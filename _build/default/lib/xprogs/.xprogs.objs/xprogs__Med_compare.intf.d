lib/xprogs/med_compare.mli: Xbgp
