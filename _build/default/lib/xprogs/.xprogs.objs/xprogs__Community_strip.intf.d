lib/xprogs/community_strip.mli: Xbgp
