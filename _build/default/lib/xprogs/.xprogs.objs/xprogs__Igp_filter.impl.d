lib/xprogs/igp_filter.ml: Ebpf List Util Xbgp
