lib/xprogs/valley_free.mli: Xbgp
