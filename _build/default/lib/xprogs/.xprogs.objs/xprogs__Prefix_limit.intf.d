lib/xprogs/prefix_limit.mli: Xbgp
