lib/xprogs/igp_filter.mli: Xbgp
