lib/xprogs/registry.ml: Community_strip Geoloc Igp_filter List Med_compare Origin_validation Prefix_limit Route_reflector Valley_free Xbgp
