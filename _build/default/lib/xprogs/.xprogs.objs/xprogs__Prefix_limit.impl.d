lib/xprogs/prefix_limit.ml: Ebpf List Util Xbgp
