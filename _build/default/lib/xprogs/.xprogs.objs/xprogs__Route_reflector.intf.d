lib/xprogs/route_reflector.mli: Xbgp
