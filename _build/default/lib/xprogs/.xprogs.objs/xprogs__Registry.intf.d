lib/xprogs/registry.mli: Ebpf Xbgp
