lib/xprogs/valley_free.ml: Bgp Ebpf List Util Xbgp
