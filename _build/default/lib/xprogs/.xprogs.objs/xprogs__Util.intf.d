lib/xprogs/util.mli: Ebpf Rpki
