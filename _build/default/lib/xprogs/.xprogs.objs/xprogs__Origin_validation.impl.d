lib/xprogs/origin_validation.ml: Bgp Ebpf List Util Xbgp
