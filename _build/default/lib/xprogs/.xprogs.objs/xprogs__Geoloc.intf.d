lib/xprogs/geoloc.mli: Xbgp
