lib/xprogs/route_reflector.ml: Bgp Ebpf List Util Xbgp
