lib/xprogs/geoloc.ml: Bgp Ebpf List Util Xbgp
