(** §3.3: valley-free Clos routing with distinct ASNs — init loads the (child, parent) session pairs and the fabric-internal origins; import rejects upward-moving routes whose AS path contains a downward hop, exempting fabric-internal destinations.

    See the .ml for the annotated bytecode. *)

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
