(** §3.1 / Listing 1: reject routes whose BGP next hop has a too-large IGP metric. One bytecode for BGP_OUTBOUND_FILTER; reads get_xtra("igp_max_metric").

    See the .ml for the annotated bytecode. *)

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
