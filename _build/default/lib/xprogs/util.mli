(** Shared idioms for writing xBGP extension bytecode, plus the host-side
    encoders for the configuration blobs the bytecodes read through
    [get_xtra].

    Conventions used by every program in this library: r6..r9 hold values
    that survive helper calls; stack slots hold map keys and cstring
    keys; attribute payloads are network byte order (pass 32-bit loads
    through [be32] to obtain native values). *)

val store_cstring : at:int -> string -> Ebpf.Asm.item list
(** Emit stores writing the NUL-terminated string at [r10 + at]
    (negative [at]). @raise Invalid_argument if it would run past the
    stack top. *)

val tail_next : Ebpf.Asm.item list
(** [next(); r0 <- 0; exit] — the canonical tail of a bytecode that
    defers to the rest of the chain. *)

(** {1 Configuration blob encoders} *)

val encode_roa_table : Rpki.Roa.t list -> bytes
(** Origin-validation ROA table: 12-byte entries
    [addr u32 BE][len u8][pad3][asn u32 BE]. *)

val encode_as_pairs : (int * int) list -> bytes
(** Valley-free manifest: 8-byte entries [child u32 BE][parent u32 BE]. *)

val encode_asn_list : int list -> bytes
(** Fabric-internal origin ASNs: 4-byte big-endian entries. *)

val encode_coords : lat:int -> lon:int -> bytes
(** GeoLoc coordinates: [lat u32 BE][lon u32 BE], fixed-point. *)

val coord_of_degrees : float -> int
(** Unsigned fixed point: (degrees + 500) * 1000. *)

val encode_u32 : int -> bytes
(** A bare big-endian u32 (thresholds etc.). *)
