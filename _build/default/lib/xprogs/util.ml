(* Shared idioms for writing xBGP extension bytecode with the [Ebpf.Asm]
   eDSL, plus the host-side encoders for the configuration blobs the
   bytecodes read through [get_xtra].

   Conventions used by every program in this library (they mirror real
   eBPF practice even though our interpreter is more forgiving):
   - r6..r9 hold values that must survive helper calls;
   - stack slots addressed off r10 hold map keys and cstring keys;
   - attribute payloads are network byte order: a 32-bit field loaded
     with ldxw must be passed through be32 to obtain the native value
     (and vice versa before stxw). *)

open Ebpf

(** Store the NUL-terminated string [s] at [r10 + at] (negative [at]).
    The caller must reserve [String.length s + 1] bytes of stack. *)
let store_cstring ~at s =
  if at + String.length s + 1 > 0 then
    invalid_arg "store_cstring: runs past the top of the stack";
  List.init
    (String.length s + 1)
    (fun i ->
      let c = if i < String.length s then Char.code s.[i] else 0 in
      Asm.stb Insn.R10 (at + i) c)

(** [next(); r0 <- 0; exit] — the canonical tail of a bytecode that defers
    to the rest of the chain. (next() does not return; the trailing exit
    keeps the verifier's no-fall-off rule satisfied.) *)
let tail_next =
  [ Asm.call Xbgp.Api.h_next; Asm.movi Insn.R0 0; Asm.exit_ ]

(* --- host-side blob encoders (layouts consumed by the bytecodes) --- *)

(** ROA table blob for the origin-validation program: a sequence of
    12-byte entries [addr u32 BE][len u8][pad3][asn u32 BE]. *)
let encode_roa_table (roas : Rpki.Roa.t list) : bytes =
  let b = Bytes.make (12 * List.length roas) '\000' in
  List.iteri
    (fun i (r : Rpki.Roa.t) ->
      let off = 12 * i in
      Bytes.set_int32_be b off (Int32.of_int (Bgp.Prefix.addr r.prefix));
      Bytes.set_uint8 b (off + 4) (Bgp.Prefix.len r.prefix);
      Bytes.set_int32_be b (off + 8) (Int32.of_int r.asn))
    roas;
  b

(** Valley-free manifest blob: 8-byte entries [child_as u32 BE]
    [parent_as u32 BE], one per (level i+1, level i) eBGP session. *)
let encode_as_pairs (pairs : (int * int) list) : bytes =
  let b = Bytes.create (8 * List.length pairs) in
  List.iteri
    (fun i (child, parent) ->
      Bytes.set_int32_be b (8 * i) (Int32.of_int child);
      Bytes.set_int32_be b ((8 * i) + 4) (Int32.of_int parent))
    pairs;
  b

(** GeoLoc coordinates blob: [lat u32 BE][lon u32 BE]. Coordinates are
    unsigned fixed-point: (degrees + 500) * 1000, which keeps squared
    distances well inside 64 bits. *)
let encode_coords ~lat ~lon : bytes =
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 (Int32.of_int lat);
  Bytes.set_int32_be b 4 (Int32.of_int lon);
  b

let coord_of_degrees d = int_of_float (Float.round ((d +. 500.) *. 1000.))

(** Internal-origin ASN list blob: 4-byte big-endian entries. *)
let encode_asn_list (asns : int list) : bytes =
  let b = Bytes.create (4 * List.length asns) in
  List.iteri
    (fun i asn -> Bytes.set_int32_be b (4 * i) (Int32.of_int asn))
    asns;
  b

(** A bare big-endian u32 blob (thresholds etc.). *)
let encode_u32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int v);
  b
