(* Strip internal BGP communities at the AS boundary — the classic
   "scrub your communities on export" policy (cf. the paper's §3.1
   discussion of community-based filtering and its operational pitfalls).

   On eBGP sessions, the [export] bytecode rewrites the COMMUNITY
   attribute, dropping every value whose high 16 bits equal the local AS
   number (the operator's own tagging space). Everything else — and every
   iBGP session — passes through untouched via next(). *)

open Ebpf.Asm
open Ebpf.Insn

let export =
  assemble
    (List.concat
       [
         [
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "defer";
           ldxw R1 R0 Xbgp.Api.pi_peer_type;
           jnei R1 Xbgp.Api.ebgp_session "defer";
           ldxw R9 R0 Xbgp.Api.pi_local_as;
           (* r9 = our AS (the tag space to strip) *)
           movi R1 Bgp.Attr.code_communities;
           call Xbgp.Api.h_get_attr;
           jeqi R0 0 "defer";
           mov R6 R0;
           ldxh R7 R6 2;
           be16 R7;
           (* r7 = payload length *)
           mov R1 R7;
           call Xbgp.Api.h_memalloc;
           jeqi R0 0 "defer";
           mov R8 R0;
           (* r8 = output buffer *)
           movi R3 0;
           (* input offset *)
           movi R4 0;
           (* output offset *)
           label "scan";
           jge R3 R7 "done";
           mov R2 R6;
           add R2 R3;
           ldxw R1 R2 4;
           be32 R1;
           (* r1 = community value *)
           mov R2 R1;
           rshi R2 16;
           jeq R2 R9 "skip";
           (* keep: write BE back into the output *)
           be32 R1;
           mov R2 R8;
           add R2 R4;
           stxw R2 0 R1;
           addi R4 4;
           label "skip";
           addi R3 4;
           ja "scan";
           label "done";
           jeq R4 R7 "defer";
           (* nothing stripped *)
           jnei R4 0 "rewrite";
           (* all stripped: drop the attribute entirely *)
           movi R1 Bgp.Attr.code_communities;
           call Xbgp.Api.h_remove_attr;
           ja "defer";
           label "rewrite";
           movi R1 Bgp.Attr.code_communities;
           movi R2 (Bgp.Attr.flag_optional lor Bgp.Attr.flag_transitive);
           mov R3 R4;
           mov R4 R8;
           call Xbgp.Api.h_add_attr;
           label "defer";
         ];
         Util.tail_next;
       ])

let program =
  Xbgp.Xprog.v ~name:"community_strip"
    ~allowed_helpers:
      Xbgp.Api.
        [
          h_next;
          h_get_peer_info;
          h_get_attr;
          h_add_attr;
          h_remove_attr;
          h_memalloc;
        ]
    [ ("export", export) ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "community_strip" ]
    ~attachments:
      [
        {
          program = "community_strip";
          bytecode = "export";
          point = Xbgp.Api.Bgp_outbound_filter;
          order = 0;
        };
      ]
