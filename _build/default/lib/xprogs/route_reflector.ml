(* §3.2: BGP route reflection (RFC 4456) reimplemented entirely as
   extension code — support for the ORIGINATOR_ID and CLUSTER_LIST
   attributes plus the reflection decision itself.

   Two bytecodes:
   - [import]  (BGP_INBOUND_FILTER): the RFC 4456 loop checks — reject a
     route whose ORIGINATOR_ID is our router id or whose CLUSTER_LIST
     already contains our cluster id; otherwise defer.
   - [export]  (BGP_OUTBOUND_FILTER): for iBGP-learned routes going to
     iBGP peers, apply the reflection rule (client routes to everyone,
     non-client routes to clients only), stamp ORIGINATOR_ID if missing
     and prepend our cluster id to CLUSTER_LIST, then ACCEPT — overriding
     the host's native split-horizon reject. Everything else defers to
     native policy.

   The host is configured as a plain iBGP router (native_rr = false); the
   same bytecode must behave identically on the FRR-like and BIRD-like
   daemons, and the downstream router must see byte-identical reflection
   attributes compared to native mode. *)

open Ebpf.Asm
open Ebpf.Insn

let code_originator = Bgp.Attr.code_originator_id
let code_cluster = Bgp.Attr.code_cluster_list

let import =
  assemble
    (List.concat
       [
         [
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "next";
           ldxw R1 R0 Xbgp.Api.pi_peer_type;
           jnei R1 Xbgp.Api.ibgp_session "next";
           ldxw R6 R0 Xbgp.Api.pi_local_router_id;
           ldxw R7 R0 Xbgp.Api.pi_cluster_id;
           (* ORIGINATOR_ID loop check *)
           movi R1 code_originator;
           call Xbgp.Api.h_get_attr;
           jeqi R0 0 "no_originator";
           ldxw R1 R0 4;
           be32 R1;
           jeq R1 R6 "reject";
           label "no_originator";
           (* CLUSTER_LIST loop check *)
           movi R1 code_cluster;
           call Xbgp.Api.h_get_attr;
           jeqi R0 0 "next";
           ldxh R2 R0 2;
           be16 R2;
           (* r2 = payload byte length *)
           movi R3 0;
           label "loop";
           jge R3 R2 "next";
           mov R4 R0;
           add R4 R3;
           ldxw R5 R4 4;
           be32 R5;
           jeq R5 R7 "reject";
           addi R3 4;
           ja "loop";
           label "reject";
           movi R0 1;
           exit_;
           label "next";
         ];
         Util.tail_next;
       ])

let export =
  assemble
    (List.concat
       [
         [
           (* where does the route come from? *)
           movi R1 Xbgp.Api.arg_source;
           call Xbgp.Api.h_get_arg;
           jeqi R0 0 "next";
           mov R6 R0;
           (* blob header is 4 bytes *)
           ldxw R1 R6 (4 + Xbgp.Api.src_is_local);
           jnei R1 0 "next";
           ldxw R1 R6 (4 + Xbgp.Api.src_peer_type);
           jnei R1 Xbgp.Api.ibgp_session "next";
           (* target peer *)
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "next";
           mov R7 R0;
           ldxw R1 R7 Xbgp.Api.pi_peer_type;
           jnei R1 Xbgp.Api.ibgp_session "next";
           (* reflection rule: need source or target to be a client *)
           ldxw R1 R6 (4 + Xbgp.Api.src_rr_client);
           ldxw R2 R7 Xbgp.Api.pi_rr_client;
           or_ R1 R2;
           jeqi R1 0 "reject";
           (* ensure ORIGINATOR_ID *)
           movi R1 code_originator;
           call Xbgp.Api.h_get_attr;
           jnei R0 0 "have_originator";
           ldxw R1 R6 (4 + Xbgp.Api.src_router_id);
           be32 R1;
           stxw R10 (-8) R1;
           movi R1 code_originator;
           movi R2 Bgp.Attr.flag_optional;
           movi R3 4;
           mov R4 R10;
           addi R4 (-8);
           call Xbgp.Api.h_add_attr;
           label "have_originator";
           (* prepend our cluster id to CLUSTER_LIST *)
           movi R1 code_cluster;
           call Xbgp.Api.h_get_attr;
           mov R8 R0;
           movi R9 0;
           jeqi R8 0 "no_old_list";
           ldxh R9 R8 2;
           be16 R9;
           label "no_old_list";
           mov R1 R9;
           addi R1 4;
           call Xbgp.Api.h_memalloc;
           jeqi R0 0 "reject";
           mov R6 R0;
           (* r6 now = new payload buffer *)
           ldxw R1 R7 Xbgp.Api.pi_cluster_id;
           be32 R1;
           stxw R6 0 R1;
           movi R3 0;
           label "copy";
           jge R3 R9 "copy_done";
           mov R4 R8;
           add R4 R3;
           ldxb R2 R4 4;
           mov R5 R6;
           add R5 R3;
           stxb R5 4 R2;
           addi R3 1;
           ja "copy";
           label "copy_done";
           movi R1 code_cluster;
           movi R2 Bgp.Attr.flag_optional;
           mov R3 R9;
           addi R3 4;
           mov R4 R6;
           call Xbgp.Api.h_add_attr;
           movi R0 0;
           (* FILTER_ACCEPT: reflect *)
           exit_;
           label "reject";
           movi R0 1;
           exit_;
           label "next";
         ];
         Util.tail_next;
       ])

let program =
  Xbgp.Xprog.v ~name:"route_reflector"
    ~allowed_helpers:
      Xbgp.Api.
        [
          h_next;
          h_get_arg;
          h_get_peer_info;
          h_get_attr;
          h_add_attr;
          h_memalloc;
        ]
    [ ("import", import); ("export", export) ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "route_reflector" ]
    ~attachments:
      [
        {
          program = "route_reflector";
          bytecode = "import";
          point = Xbgp.Api.Bgp_inbound_filter;
          order = 0;
        };
        {
          program = "route_reflector";
          bytecode = "export";
          point = Xbgp.Api.Bgp_outbound_filter;
          order = 0;
        };
      ]
