(** Scrub internal communities at the AS boundary: on eBGP export, drop every community whose high 16 bits equal the local AS.

    See the .ml for the annotated bytecode. *)

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
