(** Always-compare-MED at the BGP_DECISION insertion point (circle 3): pick the candidate with the lower MED, ties fall back to the native RFC 4271 decision process.

    See the .ml for the annotated bytecode. *)

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
