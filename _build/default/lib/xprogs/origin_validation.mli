(** §3.4: RPKI origin validation — init loads the ROA file into an xBGP hash map; import derives the origin AS from the AS_PATH payload, looks it up, and tags the route (communities 65535:1/2/3) without discarding it.

    See the .ml for the annotated bytecode. *)

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
