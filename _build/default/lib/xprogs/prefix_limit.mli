(** A stateful per-peer max-prefix limit: a map counts routes accepted per peer address; beyond get_xtra("max_prefix") routes are rejected.

    See the .ml for the annotated bytecode. *)

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
