(* §2 / Fig. 2: the GeoLoc attribute — a new optional-transitive BGP
   attribute (code 42, 8-byte payload [lat u32 BE][lon u32 BE]) recording
   where a route entered the network, with a filter that drops routes
   learned too far away.

   Exactly the paper's four bytecodes:

   1. [receive]  at BGP_RECEIVE_MESSAGE: the native parser drops unknown
      attributes, so this bytecode re-scans the raw UPDATE (get_arg) for
      attribute 42 and re-attaches it (add_attr).
   2. [import]   at BGP_INBOUND_FILTER: on eBGP sessions where the route
      has no GeoLoc yet, stamp the router's own coordinates
      (get_xtra("coords")); when a GeoLoc is present and the router
      configures "geo_max_dist2", reject routes whose squared coordinate
      distance exceeds it.
   3. [export]   at BGP_OUTBOUND_FILTER: strip GeoLoc before it leaves
      the AS (eBGP peers), defer otherwise.
   4. [encode]   at BGP_ENCODE_MESSAGE: the native encoder only emits
      known attributes, so write the GeoLoc attribute bytes into iBGP
      updates with write_buf.

   Coordinates use the unsigned fixed-point encoding of
   [Util.coord_of_degrees]; distances are compared squared, in 64-bit
   arithmetic (wrap-around makes the squared difference correct even for
   "negative" diffs). *)

open Ebpf.Asm
open Ebpf.Insn

let attr_code = 42
let attr_flags = Bgp.Attr.flag_optional lor Bgp.Attr.flag_transitive

let receive =
  assemble
    (List.concat
       [
         [
           movi R1 Xbgp.Api.arg_update_payload;
           call Xbgp.Api.h_get_arg;
           jeqi R0 0 "done";
           mov R6 R0;
           ldxw R9 R6 0;
           (* blob length = body length *)
           add R9 R6;
           addi R9 4;
           (* r9 = end of body *)
           addi R6 4;
           (* r6 = body start *)
           (* skip withdrawn routes *)
           ldxh R1 R6 0;
           be16 R1;
           add R6 R1;
           addi R6 2;
           (* attribute section *)
           ldxh R7 R6 0;
           be16 R7;
           addi R6 2;
           add R7 R6;
           (* r7 = end of attributes *)
           jgt R7 R9 "done";
           (* corrupt: attributes past body *)
           label "scan";
           mov R1 R6;
           addi R1 3;
           jgt R1 R7 "done";
           ldxb R2 R6 0;
           (* flags *)
           ldxb R3 R6 1;
           (* code *)
           mov R5 R2;
           andi R5 0x10;
           jeqi R5 0 "std_len";
           ldxh R4 R6 2;
           be16 R4;
           movi R5 4;
           ja "have_len";
           label "std_len";
           ldxb R4 R6 2;
           movi R5 3;
           label "have_len";
           (* r4 = attr length, r5 = header size *)
           jnei R3 attr_code "skip";
           mov R8 R6;
           add R8 R5;
           (* r8 = attribute data *)
           movi R1 attr_code;
           (* r2 already = flags *)
           mov R3 R4;
           mov R4 R8;
           call Xbgp.Api.h_add_attr;
           ja "done";
           label "skip";
           add R6 R5;
           add R6 R4;
           ja "scan";
           label "done";
         ];
         Util.tail_next;
       ])

let coords_at = -16
let maxdist_at = -32

let import =
  assemble
    (List.concat
       [
         [
           movi R1 attr_code;
           call Xbgp.Api.h_get_attr;
           jnei R0 0 "have_attr";
           (* no GeoLoc: stamp our coordinates on eBGP sessions *)
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "defer";
           ldxw R1 R0 Xbgp.Api.pi_peer_type;
           jnei R1 Xbgp.Api.ebgp_session "defer";
         ];
         Util.store_cstring ~at:coords_at "coords";
         [
           mov R1 R10;
           addi R1 coords_at;
           call Xbgp.Api.h_get_xtra;
           jeqi R0 0 "defer";
           mov R4 R0;
           addi R4 4;
           (* payload of the blob *)
           movi R1 attr_code;
           movi R2 attr_flags;
           movi R3 8;
           call Xbgp.Api.h_add_attr;
           ja "defer";
           label "have_attr";
           mov R6 R0;
           (* r6 = GeoLoc TLV *)
         ];
         Util.store_cstring ~at:maxdist_at "geo_max_dist2";
         [
           mov R1 R10;
           addi R1 maxdist_at;
           call Xbgp.Api.h_get_xtra;
           jeqi R0 0 "defer";
           ldxw R7 R0 4;
           be32 R7;
           (* r7 = max squared distance *)
         ];
         Util.store_cstring ~at:coords_at "coords";
         [
           mov R1 R10;
           addi R1 coords_at;
           call Xbgp.Api.h_get_xtra;
           jeqi R0 0 "defer";
           mov R8 R0;
           (* route lat - our lat *)
           ldxw R1 R6 4;
           be32 R1;
           ldxw R2 R8 4;
           be32 R2;
           sub R1 R2;
           mov R3 R1;
           mul R3 R3;
           (* route lon - our lon *)
           ldxw R1 R6 8;
           be32 R1;
           ldxw R2 R8 8;
           be32 R2;
           sub R1 R2;
           mul R1 R1;
           add R3 R1;
           jgt R3 R7 "reject";
           ja "defer";
           label "reject";
           movi R0 1;
           exit_;
           label "defer";
         ];
         Util.tail_next;
       ])

let export =
  assemble
    (List.concat
       [
         [
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "defer";
           ldxw R1 R0 Xbgp.Api.pi_peer_type;
           jnei R1 Xbgp.Api.ebgp_session "defer";
           movi R1 attr_code;
           call Xbgp.Api.h_remove_attr;
           label "defer";
         ];
         Util.tail_next;
       ])

let encode =
  assemble
    (List.concat
       [
         [
           call Xbgp.Api.h_get_peer_info;
           jeqi R0 0 "done";
           ldxw R1 R0 Xbgp.Api.pi_peer_type;
           jnei R1 Xbgp.Api.ibgp_session "done";
           movi R1 attr_code;
           call Xbgp.Api.h_get_attr;
           jeqi R0 0 "done";
           mov R6 R0;
           ldxh R7 R6 2;
           be16 R7;
           (* r7 = payload length *)
           mov R1 R7;
           addi R1 3;
           call Xbgp.Api.h_memalloc;
           jeqi R0 0 "done";
           mov R8 R0;
           ldxb R1 R6 0;
           andi R1 0xEF;
           (* no extended-length bit in the 1-byte form *)
           stxb R8 0 R1;
           ldxb R1 R6 1;
           stxb R8 1 R1;
           mov R1 R7;
           stxb R8 2 R1;
           movi R3 0;
           label "copy";
           jge R3 R7 "copy_done";
           mov R2 R6;
           add R2 R3;
           ldxb R1 R2 4;
           mov R2 R8;
           add R2 R3;
           stxb R2 3 R1;
           addi R3 1;
           ja "copy";
           label "copy_done";
           mov R1 R8;
           mov R2 R7;
           addi R2 3;
           call Xbgp.Api.h_write_buf;
           label "done";
         ];
         Util.tail_next;
       ])

let program =
  Xbgp.Xprog.v ~name:"geoloc"
    ~allowed_helpers:
      Xbgp.Api.
        [
          h_next;
          h_get_arg;
          h_get_peer_info;
          h_get_attr;
          h_add_attr;
          h_remove_attr;
          h_get_xtra;
          h_write_buf;
          h_memalloc;
        ]
    [
      ("receive", receive);
      ("import", import);
      ("export", export);
      ("encode", encode);
    ]

let manifest =
  Xbgp.Manifest.v ~programs:[ "geoloc" ]
    ~attachments:
      [
        {
          program = "geoloc";
          bytecode = "receive";
          point = Xbgp.Api.Bgp_receive_message;
          order = 0;
        };
        {
          program = "geoloc";
          bytecode = "import";
          point = Xbgp.Api.Bgp_inbound_filter;
          order = 0;
        };
        {
          program = "geoloc";
          bytecode = "export";
          point = Xbgp.Api.Bgp_outbound_filter;
          order = 0;
        };
        {
          program = "geoloc";
          bytecode = "encode";
          point = Xbgp.Api.Bgp_encode_message;
          order = 0;
        };
      ]
