(** §3.2: RFC 4456 route reflection entirely as extension code — loop checks at BGP_INBOUND_FILTER, the reflection decision and ORIGINATOR_ID/CLUSTER_LIST stamping at BGP_OUTBOUND_FILTER.

    See the .ml for the annotated bytecode. *)

val program : Xbgp.Xprog.t
(** The deployable program (verified at registration). *)

val manifest : Xbgp.Manifest.t
(** The standard attachment manifest for this program. *)
