(** Discrete-event scheduler — the clock of the simulated testbed.

    Time is in integer microseconds. Events with equal timestamps fire in
    scheduling order, so runs are fully deterministic. *)

type t

val create : unit -> t

val now : t -> int
(** Current simulated time in microseconds. *)

val after : t -> int -> (unit -> unit) -> unit
(** Schedule an action [delay] microseconds from now.
    @raise Invalid_argument on a negative delay. *)

val step : t -> bool
(** Run a single event; false when the queue is empty. *)

val run : ?until:int -> t -> int
(** Run until the queue drains or [until] (simulated µs) is reached;
    returns the number of events executed. When stopped by the limit the
    clock is advanced to it. *)

val run_until : t -> (unit -> bool) -> bool
(** Run until the predicate holds (checked after each event) or the queue
    drains; true iff the predicate was met. *)

val pending : t -> int
