lib/netsim/sched.mli:
