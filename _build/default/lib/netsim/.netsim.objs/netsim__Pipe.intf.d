lib/netsim/pipe.mli: Sched
