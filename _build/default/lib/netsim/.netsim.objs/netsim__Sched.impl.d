lib/netsim/sched.ml: Array
