lib/netsim/pipe.ml: Bytes List Sched
