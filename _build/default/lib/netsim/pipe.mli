(** A reliable, in-order, full-duplex byte pipe between two routers — the
    simulated stand-in for the TCP sessions of the paper's testbed
    (links L1/L2 of Fig. 3).

    Each direction delivers byte chunks to the remote receiver after a
    latency; the scheduler's FIFO tie-break keeps them in order.
    Receivers deframe the stream themselves — a pipe knows nothing about
    BGP. *)

type port

val create : ?latency:int -> Sched.t -> port * port
(** Create a pipe; [latency] in microseconds (default 100). *)

val set_receiver : port -> (bytes -> unit) -> unit
(** Install the receive callback; chunks that arrived early are flushed
    to it immediately. *)

val send : port -> bytes -> unit
(** Send to the remote side; silently dropped while the pipe is down (the
    session layer notices via its hold timer).
    @raise Invalid_argument on an unconnected port. *)

val set_up : port -> bool -> unit
(** Fail / repair the link (both directions). *)

val is_up : port -> bool
val bytes_sent : port -> int
