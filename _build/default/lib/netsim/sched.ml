(* Discrete-event scheduler: the clock of the simulated testbed (Fig. 3 of
   the paper is three routers in VMs; here they are three daemon instances
   driven by one deterministic event loop).

   Time is in integer microseconds. Events with equal timestamps fire in
   scheduling order (a monotonic sequence number breaks ties), so runs are
   fully deterministic. *)

type event = { time : int; seq : int; action : unit -> unit }

let dummy = { time = 0; seq = 0; action = ignore }

type t = {
  mutable now : int;
  mutable next_seq : int;
  mutable queue : event array;  (* binary min-heap on (time, seq) *)
  mutable len : int;
}

let create () = { now = 0; next_seq = 0; queue = Array.make 256 dummy; len = 0 }

let now t = t.now

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.queue.(i) in
  t.queue.(i) <- t.queue.(j);
  t.queue.(j) <- tmp

let push t e =
  if t.len = Array.length t.queue then begin
    let q = Array.make (2 * t.len) dummy in
    Array.blit t.queue 0 q 0 t.len;
    t.queue <- q
  end;
  t.queue.(t.len) <- e;
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if lt t.queue.(!i) t.queue.(p) then begin
      swap t !i p;
      i := p
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.queue.(0) in
    t.len <- t.len - 1;
    t.queue.(0) <- t.queue.(t.len);
    t.queue.(t.len) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let sm = ref !i in
      if l < t.len && lt t.queue.(l) t.queue.(!sm) then sm := l;
      if r < t.len && lt t.queue.(r) t.queue.(!sm) then sm := r;
      if !sm <> !i then begin
        swap t !i !sm;
        i := !sm
      end
      else continue := false
    done;
    Some top
  end

let peek t = if t.len = 0 then None else Some t.queue.(0)

(** Schedule [action] to run [delay] microseconds from now. *)
let after t delay action =
  if delay < 0 then invalid_arg "Sched.after: negative delay";
  let e = { time = t.now + delay; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  push t e

(** Run a single event; false when the queue is empty. *)
let step t =
  match pop t with
  | None -> false
  | Some e ->
    t.now <- e.time;
    e.action ();
    true

(** Run until the queue drains or [until] (simulated µs) is reached.
    Returns the number of events executed. *)
let run ?until t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    match (until, peek t) with
    | _, None -> continue := false
    | Some limit, Some e when e.time > limit ->
      t.now <- limit;
      continue := false
    | _ -> if step t then incr executed else continue := false
  done;
  !executed

(** Run until [pred ()] holds (checked after each event) or the queue
    drains; true if the predicate was met. *)
let run_until t pred =
  let rec go () =
    if pred () then true else if step t then go () else pred ()
  in
  go ()

let pending t = t.len
