(* A link-state IGP topology: weighted undirected graph over router ids.
   This is the substrate behind §3.1 of the paper (export filters keyed on
   the IGP metric of the BGP next hop): the operator configures link
   metrics, SPF computes per-destination costs, and the BGP daemon exposes
   the cost towards each BGP next hop through the xBGP [get_nexthop]
   helper. *)

type t = {
  adj : (int, (int * int) list) Hashtbl.t;  (** node -> (neighbor, metric) *)
}

let create () = { adj = Hashtbl.create 16 }

let neighbors t n = Option.value ~default:[] (Hashtbl.find_opt t.adj n)

let add_node t n =
  if not (Hashtbl.mem t.adj n) then Hashtbl.replace t.adj n []

(** Add (or update) the undirected link [a]--[b] with [metric].
    @raise Invalid_argument on non-positive metric or a self-loop. *)
let add_link t a b metric =
  if metric <= 0 then invalid_arg "Topology.add_link: metric must be > 0";
  if a = b then invalid_arg "Topology.add_link: self loop";
  let set x y =
    let l = List.remove_assoc y (neighbors t x) in
    Hashtbl.replace t.adj x ((y, metric) :: l)
  in
  set a b;
  set b a

(** Remove the link [a]--[b] (no-op when absent) — used by the failure
    scenarios of §3.1 and §3.3. *)
let remove_link t a b =
  let unset x y =
    match Hashtbl.find_opt t.adj x with
    | Some l -> Hashtbl.replace t.adj x (List.remove_assoc y l)
    | None -> ()
  in
  unset a b;
  unset b a

let has_link t a b = List.mem_assoc b (neighbors t a)

let nodes t = Hashtbl.fold (fun n _ acc -> n :: acc) t.adj []

let link_count t =
  Hashtbl.fold (fun _ l acc -> acc + List.length l) t.adj 0 / 2
