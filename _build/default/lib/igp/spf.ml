(* Dijkstra shortest-path-first over an IGP topology.

   A simple pairing of a leftist-ish binary heap with the distance map;
   topologies in this repository are small (tens of routers), but the
   implementation is the standard O((V+E) log V) one so it also holds up
   in the property tests against a Floyd–Warshall reference. *)

module Heap = struct
  (* binary min-heap of (priority, value) *)
  type t = {
    mutable data : (int * int) array;
    mutable len : int;
  }

  let create () = { data = Array.make 64 (0, 0); len = 0 }
  let is_empty h = h.len = 0

  let grow h =
    if h.len = Array.length h.data then begin
      let data = Array.make (2 * h.len) (0, 0) in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end

  let push h prio v =
    grow h;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.data.(!i) <- (prio, v);
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if fst h.data.(parent) > fst h.data.(!i) then begin
        let tmp = h.data.(parent) in
        h.data.(parent) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.len = 0 then invalid_arg "Heap.pop: empty";
    let top = h.data.(0) in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then
        smallest := l;
      if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then
        smallest := r;
      if !smallest <> !i then begin
        let tmp = h.data.(!smallest) in
        h.data.(!smallest) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
end

type result = {
  dist : (int, int) Hashtbl.t;  (** destination -> metric *)
  first_hop : (int, int) Hashtbl.t;  (** destination -> first hop from src *)
}

(** Single-source shortest paths from [src]. Unreachable nodes are absent
    from the result tables. *)
let run topo ~src =
  let dist = Hashtbl.create 32 in
  let first_hop = Hashtbl.create 32 in
  let heap = Heap.create () in
  Hashtbl.replace dist src 0;
  Heap.push heap 0 src;
  while not (Heap.is_empty heap) do
    let d, n = Heap.pop heap in
    if d <= Option.value ~default:max_int (Hashtbl.find_opt dist n) then
      List.iter
        (fun (m, w) ->
          let nd = d + w in
          let cur = Option.value ~default:max_int (Hashtbl.find_opt dist m) in
          if nd < cur then begin
            Hashtbl.replace dist m nd;
            (* first hop: inherit, except for src's direct neighbours *)
            (if n = src then Hashtbl.replace first_hop m m
             else
               match Hashtbl.find_opt first_hop n with
               | Some h -> Hashtbl.replace first_hop m h
               | None -> ());
            Heap.push heap nd m
          end)
        (Topology.neighbors topo n)
  done;
  { dist; first_hop }

(** Metric from [src] to [dst], or [None] if unreachable. *)
let cost topo ~src ~dst = Hashtbl.find_opt (run topo ~src).dist dst

(** All-pairs distances by repeated Dijkstra; used by tests. *)
let all_pairs topo =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun src ->
      let r = run topo ~src in
      Hashtbl.iter (fun dst d -> Hashtbl.replace tbl (src, dst) d) r.dist)
    (Topology.nodes topo);
  tbl
