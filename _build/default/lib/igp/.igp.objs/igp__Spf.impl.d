lib/igp/spf.ml: Array Hashtbl List Option Topology
