lib/igp/spf.mli: Hashtbl Topology
