lib/igp/topology.mli:
