lib/igp/topology.ml: Hashtbl List Option
