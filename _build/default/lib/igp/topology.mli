(** A link-state IGP topology: weighted undirected graph over router ids
    — the substrate behind §3.1 of the paper (export filters keyed on the
    IGP metric of the BGP next hop). *)

type t

val create : unit -> t
val add_node : t -> int -> unit

val add_link : t -> int -> int -> int -> unit
(** Add (or update) an undirected link with a metric.
    @raise Invalid_argument on a non-positive metric or a self-loop. *)

val remove_link : t -> int -> int -> unit
(** No-op when absent — used by the failure scenarios. *)

val has_link : t -> int -> int -> bool
val neighbors : t -> int -> (int * int) list
val nodes : t -> int list
val link_count : t -> int
