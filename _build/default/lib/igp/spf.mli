(** Dijkstra shortest-path-first over an IGP topology; property-tested
    against a Floyd–Warshall reference. *)

type result = {
  dist : (int, int) Hashtbl.t;  (** destination -> metric *)
  first_hop : (int, int) Hashtbl.t;  (** destination -> first hop *)
}

val run : Topology.t -> src:int -> result
(** Single-source shortest paths; unreachable nodes are absent. *)

val cost : Topology.t -> src:int -> dst:int -> int option
(** Metric between two nodes, or [None] if unreachable. *)

val all_pairs : Topology.t -> (int * int, int) Hashtbl.t
