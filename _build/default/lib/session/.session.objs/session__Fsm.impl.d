lib/session/fsm.ml: Bgp Bytes Fmt List Logs Netsim Printf
