lib/session/fsm.mli: Bgp Netsim
