lib/scenario/testbed.mli: Daemon Dataset Ebpf Frrouting Netsim Rpki Xbgp
