lib/scenario/testbed.ml: Bgp Bird Daemon Dataset Ebpf Frrouting List Netsim Option Rpki Xbgp Xprogs
