lib/scenario/daemon.ml: Bgp Bird Frrouting List Option
