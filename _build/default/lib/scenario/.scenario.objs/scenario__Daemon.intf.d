lib/scenario/daemon.mli: Bgp Bird Frrouting
