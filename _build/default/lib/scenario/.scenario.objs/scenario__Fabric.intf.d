lib/scenario/fabric.mli: Daemon Dataset Netsim Testbed
