lib/scenario/fabric.ml: Bgp Bird Daemon Dataset Frrouting List Netsim Printf Testbed Xprogs
