(* Route Origin Authorizations and RFC 6483 origin validation semantics.

   A ROA asserts that [asn] may originate [prefix] up to [max_len]. A
   route (p, origin) is:
   - [Valid]    if some ROA covers p with matching origin and
                [len p <= max_len];
   - [Invalid]  if ROAs cover p but none matches;
   - [Not_found] if no ROA covers p.

   The two store implementations ([Store_trie], [Store_hash]) expose the
   same interface; §3.4 of the paper hinges on their different lookup
   costs (FRRouting walks a trie per check, BIRD and the xBGP extension
   use a hash table). *)

type t = { prefix : Bgp.Prefix.t; max_len : int; asn : int }

type validation = Valid | Invalid | Not_found

let pp_validation ppf v =
  Fmt.string ppf
    (match v with
    | Valid -> "valid"
    | Invalid -> "invalid"
    | Not_found -> "not-found")

let v prefix ~max_len ~asn =
  if max_len < Bgp.Prefix.len prefix || max_len > 32 then
    invalid_arg "Roa.v: max_len out of range";
  { prefix; max_len; asn }

let pp ppf r =
  Fmt.pf ppf "%a-%d AS%d" Bgp.Prefix.pp r.prefix r.max_len r.asn

(** [covers roa p] — the ROA's prefix covers route prefix [p]. *)
let covers roa p = Bgp.Prefix.subset p roa.prefix

(** [authorizes roa p origin] — covering, origin matches, length allowed. *)
let authorizes roa p origin =
  covers roa p && roa.asn = origin && Bgp.Prefix.len p <= roa.max_len

(** Reference validation over a plain list; the stores must agree with
    this (property-tested). *)
let validate_list roas p origin =
  let covering = List.filter (fun r -> covers r p) roas in
  if covering = [] then Not_found
  else if List.exists (fun r -> authorizes r p origin) covering then Valid
  else Invalid

(* --- text format: "a.b.c.d/len max_len asn" per line, '#' comments --- *)

let to_line r =
  Printf.sprintf "%s %d %d" (Bgp.Prefix.to_string r.prefix) r.max_len r.asn

(** Parse the ROA text format. @raise Invalid_argument on bad lines. *)
let parse_lines s =
  String.split_on_char '\n' s
  |> List.filteri (fun _ line ->
         let line = String.trim line in
         line <> "" && line.[0] <> '#')
  |> List.map (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | [ p; ml; asn ] -> (
           match (int_of_string_opt ml, int_of_string_opt asn) with
           | Some max_len, Some asn ->
             v (Bgp.Prefix.of_string p) ~max_len ~asn
           | _ -> invalid_arg ("Roa.parse_lines: " ^ line))
         | _ -> invalid_arg ("Roa.parse_lines: " ^ line))
