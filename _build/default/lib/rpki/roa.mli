(** Route Origin Authorizations and RFC 6483 origin validation.

    A ROA asserts that [asn] may originate [prefix] up to [max_len].
    A route [(p, origin)] is {!Valid} if some ROA covers [p] with a
    matching origin and allowed length, {!Invalid} if ROAs cover [p] but
    none matches, {!Not_found} if no ROA covers [p]. *)

type t = private { prefix : Bgp.Prefix.t; max_len : int; asn : int }

type validation = Valid | Invalid | Not_found

val pp_validation : Format.formatter -> validation -> unit

val v : Bgp.Prefix.t -> max_len:int -> asn:int -> t
(** @raise Invalid_argument when [max_len] is below the prefix length or
    above 32. *)

val pp : Format.formatter -> t -> unit

val covers : t -> Bgp.Prefix.t -> bool
val authorizes : t -> Bgp.Prefix.t -> int -> bool

val validate_list : t list -> Bgp.Prefix.t -> int -> validation
(** Reference semantics over a plain list; the stores are property-tested
    against it. *)

(** {1 Text format}: ["a.b.c.d/len max_len asn"] per line, ['#']
    comments — the "file" of ROAs the paper's DUT loads (§3.4). *)

val to_line : t -> string

val parse_lines : string -> t list
(** @raise Invalid_argument on malformed lines. *)
