(** BIRD-style ROA store: open-addressed hash tables keyed by the masked
    address, one per ROA prefix length. A validation is a handful of
    independent, allocation-free O(1) probes — the structure the paper
    credits for BIRD's fast native validation, and the one the xBGP
    origin-validation extension copies (§3.4). *)

type t

val create : unit -> t
val add : t -> Roa.t -> unit
val of_list : Roa.t list -> t
val count : t -> int
val validate : t -> Bgp.Prefix.t -> int -> Roa.validation
