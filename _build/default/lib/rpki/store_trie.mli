(** FRRouting-style ROA store: a binary trie keyed by the ROA prefix.

    Like rtrlib's [pfx_table_validate_r] (which FRRouting calls per
    check), each validation walks the covering path and first {e
    collects} every covering record into a fresh list before scanning it
    — the per-check trie browse §3.4 of the paper identifies as the
    reason FRRouting's native origin validation loses to the hash-based
    xBGP extension. *)

type t

val create : unit -> t
val add : t -> Roa.t -> unit
val of_list : Roa.t list -> t
val count : t -> int
val validate : t -> Bgp.Prefix.t -> int -> Roa.validation
