(* BIRD-style ROA store: open-addressed hash tables keyed by the masked
   address, one per ROA prefix length (BIRD's fib keeps nets hashed per
   length as well). A validation probes one table per *present* covering
   length — a handful of independent O(1), allocation-free probes. This
   is the structure the paper credits for BIRD's fast native validation,
   and the one the xBGP origin-validation extension copies (§3.4). *)

type table = {
  mutable keys : int array;  (** -1 = empty slot *)
  mutable values : Roa.t list array;
  mutable used : int;
}

let table_create () = { keys = Array.make 16 (-1); values = Array.make 16 []; used = 0 }

(* the low bits of a masked address are zero: mix before indexing *)
let hash_addr addr mask =
  let h = addr lxor (addr lsr 16) in
  let h = h * 0x45d9f3b land max_int in
  let h = h lxor (h lsr 16) in
  h land mask

let rec table_add tbl key roa =
  let cap = Array.length tbl.keys in
  if 2 * (tbl.used + 1) > cap then begin
    (* grow and rehash *)
    let old_keys = tbl.keys and old_values = tbl.values in
    tbl.keys <- Array.make (2 * cap) (-1);
    tbl.values <- Array.make (2 * cap) [];
    tbl.used <- 0;
    Array.iteri
      (fun i k ->
        if k >= 0 then
          List.iter (fun r -> table_add tbl k r) (List.rev old_values.(i)))
      old_keys
  end;
  let mask = Array.length tbl.keys - 1 in
  let rec probe i =
    if tbl.keys.(i) = -1 then begin
      tbl.keys.(i) <- key;
      tbl.values.(i) <- [ roa ];
      tbl.used <- tbl.used + 1
    end
    else if tbl.keys.(i) = key then tbl.values.(i) <- roa :: tbl.values.(i)
    else probe ((i + 1) land mask)
  in
  probe (hash_addr key mask)

(* allocation-free lookup: [] when absent *)
let table_find tbl key =
  let mask = Array.length tbl.keys - 1 in
  let rec probe i =
    if tbl.keys.(i) = -1 then []
    else if tbl.keys.(i) = key then tbl.values.(i)
    else probe ((i + 1) land mask)
  in
  probe (hash_addr key mask)

type t = {
  by_len : table option array;  (** index = ROA prefix length *)
  mutable count : int;
}

let create () = { by_len = Array.make 33 None; count = 0 }

let add t (roa : Roa.t) =
  let len = Bgp.Prefix.len roa.prefix in
  let tbl =
    match t.by_len.(len) with
    | Some tbl -> tbl
    | None ->
      let tbl = table_create () in
      t.by_len.(len) <- Some tbl;
      tbl
  in
  table_add tbl (Bgp.Prefix.addr roa.prefix) roa;
  t.count <- t.count + 1

let of_list roas =
  let t = create () in
  List.iter (add t) roas;
  t

let count t = t.count

let validate t p origin =
  let covering = ref false in
  let valid = ref false in
  let addr = Bgp.Prefix.addr p in
  for len = Bgp.Prefix.len p downto 0 do
    match t.by_len.(len) with
    | None -> ()
    | Some tbl ->
      let masked = Bgp.Prefix.addr (Bgp.Prefix.v addr len) in
      List.iter
        (fun roa ->
          if Roa.covers roa p then begin
            covering := true;
            if Roa.authorizes roa p origin then valid := true
          end)
        (table_find tbl masked)
  done;
  if !valid then Roa.Valid else if !covering then Roa.Invalid else Roa.Not_found
