(* FRRouting-style ROA store: a binary trie keyed by the ROA prefix, with
   each validation walking the covering path from the root. This is the
   per-check trie browse that §3.4 of the paper identifies as the reason
   FRRouting's native origin validation loses to the hash-based xBGP
   extension. *)

type t = { trie : Roa.t list Rib.Ptrie.t; mutable count : int }

let create () = { trie = Rib.Ptrie.create (); count = 0 }

let add t (roa : Roa.t) =
  Rib.Ptrie.update t.trie roa.prefix (function
    | None -> Some [ roa ]
    | Some l -> Some (roa :: l));
  t.count <- t.count + 1

let of_list roas =
  let t = create () in
  List.iter (add t) roas;
  t

let count t = t.count

(* Like rtrlib's pfx_table_validate_r (which FRRouting calls per check):
   the walk first *collects* every covering ROA record into a freshly
   allocated result list, then scans it for an authorization — the
   browse-then-scan behaviour §3.4 observes. *)
let validate t p origin =
  let found = ref [] in
  Rib.Ptrie.covering t.trie p (fun _ roas ->
      List.iter
        (fun roa -> if Roa.covers roa p then found := roa :: !found)
        roas);
  match !found with
  | [] -> Roa.Not_found
  | covering ->
    if List.exists (fun roa -> Roa.authorizes roa p origin) covering then
      Roa.Valid
    else Roa.Invalid
