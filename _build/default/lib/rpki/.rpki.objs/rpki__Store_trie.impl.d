lib/rpki/store_trie.ml: List Rib Roa
