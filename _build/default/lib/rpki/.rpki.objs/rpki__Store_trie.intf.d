lib/rpki/store_trie.mli: Bgp Roa
