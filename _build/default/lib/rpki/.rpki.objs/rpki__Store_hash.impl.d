lib/rpki/store_hash.ml: Array Bgp List Roa
