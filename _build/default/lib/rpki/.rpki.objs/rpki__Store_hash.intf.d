lib/rpki/store_hash.mli: Bgp Roa
