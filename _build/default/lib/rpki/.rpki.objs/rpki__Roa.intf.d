lib/rpki/roa.mli: Bgp Format
