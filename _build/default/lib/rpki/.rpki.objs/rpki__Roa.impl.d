lib/rpki/roa.ml: Bgp Fmt List Printf String
