(** Textual disassembly of eBPF programs, one instruction per line with
    its slot index. *)

val pp_program : Format.formatter -> Insn.t list -> unit
val program_to_string : Insn.t list -> string

val of_bytes : bytes -> string
(** Disassemble wire-form bytecode. @raise Insn.Decode_error *)
