(* eBPF instruction set: decoded representation and the standard 8-byte wire
   encoding (LDDW occupies two consecutive slots).

   The encoding follows the classic eBPF layout:
     byte 0      : opcode
     byte 1      : dst register (low nibble) | src register (high nibble)
     bytes 2-3   : signed 16-bit offset (little endian)
     bytes 4-7   : signed 32-bit immediate (little endian)
*)

type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10

let reg_index = function
  | R0 -> 0 | R1 -> 1 | R2 -> 2 | R3 -> 3 | R4 -> 4 | R5 -> 5
  | R6 -> 6 | R7 -> 7 | R8 -> 8 | R9 -> 9 | R10 -> 10

let reg_of_index = function
  | 0 -> R0 | 1 -> R1 | 2 -> R2 | 3 -> R3 | 4 -> R4 | 5 -> R5
  | 6 -> R6 | 7 -> R7 | 8 -> R8 | 9 -> R9 | 10 -> R10
  | n -> invalid_arg (Printf.sprintf "Insn.reg_of_index: %d" n)

let pp_reg ppf r = Fmt.pf ppf "r%d" (reg_index r)

(** Memory access width. *)
type size = W8 | W16 | W32 | W64

let size_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

(** ALU operations shared by the 32 and 64-bit classes. *)
type alu_op =
  | Add | Sub | Mul | Div | Or | And | Lsh | Rsh | Neg | Mod | Xor
  | Mov | Arsh

(** Conditional-jump predicates shared by JMP and JMP32 classes. *)
type cond = Eq | Gt | Ge | Set | Ne | Sgt | Sge | Lt | Le | Slt | Sle

(** Operand width of an ALU or conditional-jump instruction. *)
type width = W32bit | W64bit

(** Second operand: immediate or register. *)
type src = Imm of int32 | Reg of reg

type endianness = Le | Be

type t =
  | Alu of width * alu_op * reg * src
      (** [dst <- dst op src]; 32-bit form zero-extends the result. *)
  | Endian of endianness * reg * int
      (** Byte-swap to little/big endian; int is 16, 32 or 64. *)
  | Lddw of reg * int64  (** Load a 64-bit immediate (two slots). *)
  | Ldx of size * reg * reg * int  (** [dst <- mem[src + off]]. *)
  | St of size * reg * int * int32  (** [mem[dst + off] <- imm]. *)
  | Stx of size * reg * int * reg  (** [mem[dst + off] <- src]. *)
  | Ja of int  (** Unconditional relative jump. *)
  | Jcond of width * cond * reg * src * int
      (** Conditional relative jump; 32-bit form compares low words. *)
  | Call of int  (** Call helper function by id. *)
  | Exit

(* --- opcode field constants --- *)

let class_ld = 0x00
and class_ldx = 0x01
and class_st = 0x02
and class_stx = 0x03
and class_alu = 0x04
and class_jmp = 0x05
and class_jmp32 = 0x06
and class_alu64 = 0x07

let src_k = 0x00
and src_x = 0x08

let alu_code = function
  | Add -> 0x0 | Sub -> 0x1 | Mul -> 0x2 | Div -> 0x3 | Or -> 0x4
  | And -> 0x5 | Lsh -> 0x6 | Rsh -> 0x7 | Neg -> 0x8 | Mod -> 0x9
  | Xor -> 0xa | Mov -> 0xb | Arsh -> 0xc

let alu_of_code = function
  | 0x0 -> Some Add | 0x1 -> Some Sub | 0x2 -> Some Mul | 0x3 -> Some Div
  | 0x4 -> Some Or | 0x5 -> Some And | 0x6 -> Some Lsh | 0x7 -> Some Rsh
  | 0x8 -> Some Neg | 0x9 -> Some Mod | 0xa -> Some Xor | 0xb -> Some Mov
  | 0xc -> Some Arsh
  | _ -> None

let cond_code = function
  | Eq -> 0x1 | Gt -> 0x2 | Ge -> 0x3 | Set -> 0x4 | Ne -> 0x5
  | Sgt -> 0x6 | Sge -> 0x7 | Lt -> 0xa | Le -> 0xb | Slt -> 0xc
  | Sle -> 0xd

let cond_of_code = function
  | 0x1 -> Some Eq | 0x2 -> Some Gt | 0x3 -> Some Ge | 0x4 -> Some Set
  | 0x5 -> Some Ne | 0x6 -> Some Sgt | 0x7 -> Some Sge | 0xa -> Some Lt
  | 0xb -> Some Le | 0xc -> Some Slt | 0xd -> Some Sle
  | _ -> None

let size_code = function W32 -> 0x00 | W16 -> 0x08 | W8 -> 0x10 | W64 -> 0x18

let size_of_code = function
  | 0x00 -> Some W32 | 0x08 -> Some W16 | 0x10 -> Some W8 | 0x18 -> Some W64
  | _ -> None

let mode_imm = 0x00
and mode_mem = 0x60

(** Number of 8-byte slots the instruction occupies (2 for LDDW). *)
let slots = function Lddw _ -> 2 | _ -> 1

(* --- encoding --- *)

type raw = { opcode : int; dst : int; src : int; off : int; imm : int32 }

let raw_zero = { opcode = 0; dst = 0; src = 0; off = 0; imm = 0l }

let to_raw = function
  | Alu (w, op, dst, src) ->
    let cls = match w with W64bit -> class_alu64 | W32bit -> class_alu in
    let sbit, sreg, imm =
      match src with
      | Imm i -> (src_k, 0, i)
      | Reg r -> (src_x, reg_index r, 0l)
    in
    [ { opcode = (alu_code op lsl 4) lor sbit lor cls;
        dst = reg_index dst; src = sreg; off = 0; imm } ]
  | Endian (e, dst, bits) ->
    let sbit = match e with Le -> src_k | Be -> src_x in
    [ { opcode = (0xd lsl 4) lor sbit lor class_alu;
        dst = reg_index dst; src = 0; off = 0; imm = Int32.of_int bits } ]
  | Lddw (dst, v) ->
    let lo = Int64.to_int32 v in
    let hi = Int64.to_int32 (Int64.shift_right_logical v 32) in
    [ { opcode = size_code W64 lor mode_imm lor class_ld;
        dst = reg_index dst; src = 0; off = 0; imm = lo };
      { raw_zero with imm = hi } ]
  | Ldx (sz, dst, src, off) ->
    [ { opcode = size_code sz lor mode_mem lor class_ldx;
        dst = reg_index dst; src = reg_index src; off; imm = 0l } ]
  | St (sz, dst, off, imm) ->
    [ { opcode = size_code sz lor mode_mem lor class_st;
        dst = reg_index dst; src = 0; off; imm } ]
  | Stx (sz, dst, off, src) ->
    [ { opcode = size_code sz lor mode_mem lor class_stx;
        dst = reg_index dst; src = reg_index src; off; imm = 0l } ]
  | Ja off ->
    [ { raw_zero with opcode = (0x0 lsl 4) lor class_jmp; off } ]
  | Jcond (w, c, dst, src, off) ->
    let cls = match w with W64bit -> class_jmp | W32bit -> class_jmp32 in
    let sbit, sreg, imm =
      match src with
      | Imm i -> (src_k, 0, i)
      | Reg r -> (src_x, reg_index r, 0l)
    in
    [ { opcode = (cond_code c lsl 4) lor sbit lor cls;
        dst = reg_index dst; src = sreg; off; imm } ]
  | Call id ->
    [ { raw_zero with
        opcode = (0x8 lsl 4) lor class_jmp; imm = Int32.of_int id } ]
  | Exit -> [ { raw_zero with opcode = (0x9 lsl 4) lor class_jmp } ]

let write_raw buf pos { opcode; dst; src; off; imm } =
  Bytes.set_uint8 buf pos opcode;
  Bytes.set_uint8 buf (pos + 1) ((src lsl 4) lor dst);
  Bytes.set_int16_le buf (pos + 2) off;
  Bytes.set_int32_le buf (pos + 4) imm

(** Serialize a program to its 8-byte-per-slot wire form. *)
let encode (prog : t list) : bytes =
  let n = List.fold_left (fun acc i -> acc + slots i) 0 prog in
  let buf = Bytes.create (n * 8) in
  let pos = ref 0 in
  List.iter
    (fun insn ->
      List.iter
        (fun r ->
          write_raw buf !pos r;
          pos := !pos + 8)
        (to_raw insn))
    prog;
  buf

exception Decode_error of string

let decode_error fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

let read_raw buf pos =
  let opcode = Bytes.get_uint8 buf pos in
  let regs = Bytes.get_uint8 buf (pos + 1) in
  let off = Bytes.get_int16_le buf (pos + 2) in
  let imm = Bytes.get_int32_le buf (pos + 4) in
  { opcode; dst = regs land 0xf; src = regs lsr 4; off; imm }

let reg_checked idx =
  if idx > 10 then decode_error "invalid register r%d" idx
  else reg_of_index idx

(** Decode a wire-form program back to instructions.
    @raise Decode_error on malformed input. *)
let decode (buf : bytes) : t list =
  if Bytes.length buf mod 8 <> 0 then
    decode_error "program length %d not a multiple of 8" (Bytes.length buf);
  let nslots = Bytes.length buf / 8 in
  let rec loop i acc =
    if i >= nslots then List.rev acc
    else
      let r = read_raw buf (i * 8) in
      let cls = r.opcode land 0x07 in
      let insn, consumed =
        if cls = class_alu || cls = class_alu64 then begin
          let w = if cls = class_alu64 then W64bit else W32bit in
          let opc = r.opcode lsr 4 in
          if opc = 0xd then begin
            let bits = Int32.to_int r.imm in
            if bits <> 16 && bits <> 32 && bits <> 64 then
              decode_error "endian width %d" bits;
            let e = if r.opcode land src_x <> 0 then Be else Le in
            (Endian (e, reg_checked r.dst, bits), 1)
          end
          else
            match alu_of_code opc with
            | None -> decode_error "alu opcode 0x%x" r.opcode
            | Some op ->
              let src =
                if r.opcode land src_x <> 0 then Reg (reg_checked r.src)
                else Imm r.imm
              in
              (Alu (w, op, reg_checked r.dst, src), 1)
        end
        else if cls = class_jmp || cls = class_jmp32 then begin
          let opc = r.opcode lsr 4 in
          match opc with
          | 0x0 when cls = class_jmp -> (Ja r.off, 1)
          | 0x8 when cls = class_jmp -> (Call (Int32.to_int r.imm), 1)
          | 0x9 when cls = class_jmp -> (Exit, 1)
          | _ -> (
            match cond_of_code opc with
            | None -> decode_error "jmp opcode 0x%x" r.opcode
            | Some c ->
              let w = if cls = class_jmp then W64bit else W32bit in
              let src =
                if r.opcode land src_x <> 0 then Reg (reg_checked r.src)
                else Imm r.imm
              in
              (Jcond (w, c, reg_checked r.dst, src, r.off), 1))
        end
        else if cls = class_ld then begin
          if r.opcode <> (size_code W64 lor mode_imm lor class_ld) then
            decode_error "ld opcode 0x%x" r.opcode;
          if i + 1 >= nslots then decode_error "truncated lddw";
          let r2 = read_raw buf ((i + 1) * 8) in
          if r2.opcode <> 0 then decode_error "bad lddw second slot";
          let lo = Int64.logand (Int64.of_int32 r.imm) 0xFFFFFFFFL in
          let hi = Int64.shift_left (Int64.of_int32 r2.imm) 32 in
          (Lddw (reg_checked r.dst, Int64.logor hi lo), 2)
        end
        else if cls = class_ldx || cls = class_st || cls = class_stx then begin
          if r.opcode land 0xe0 <> mode_mem then
            decode_error "mode 0x%x not BPF_MEM" (r.opcode land 0xe0);
          match size_of_code (r.opcode land 0x18) with
          | None -> decode_error "size bits in 0x%x" r.opcode
          | Some sz ->
            if cls = class_ldx then
              (Ldx (sz, reg_checked r.dst, reg_checked r.src, r.off), 1)
            else if cls = class_st then
              (St (sz, reg_checked r.dst, r.off, r.imm), 1)
            else (Stx (sz, reg_checked r.dst, r.off, reg_checked r.src), 1)
        end
        else decode_error "instruction class %d" cls
      in
      loop (i + consumed) (insn :: acc)
  in
  loop 0 []

(* --- pretty-printing (disassembly) --- *)

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Or -> "or"
  | And -> "and" | Lsh -> "lsh" | Rsh -> "rsh" | Neg -> "neg" | Mod -> "mod"
  | Xor -> "xor" | Mov -> "mov" | Arsh -> "arsh"

let cond_name = function
  | Eq -> "jeq" | Gt -> "jgt" | Ge -> "jge" | Set -> "jset" | Ne -> "jne"
  | Sgt -> "jsgt" | Sge -> "jsge" | Lt -> "jlt" | Le -> "jle" | Slt -> "jslt"
  | Sle -> "jsle"

let size_name = function W8 -> "b" | W16 -> "h" | W32 -> "w" | W64 -> "dw"

let pp_src ppf = function
  | Imm i -> Fmt.pf ppf "%ld" i
  | Reg r -> pp_reg ppf r

let pp ppf = function
  | Alu (w, op, dst, src) ->
    let suffix = match w with W64bit -> "" | W32bit -> "32" in
    if op = Neg then Fmt.pf ppf "neg%s %a" suffix pp_reg dst
    else Fmt.pf ppf "%s%s %a, %a" (alu_name op) suffix pp_reg dst pp_src src
  | Endian (Le, dst, bits) -> Fmt.pf ppf "le%d %a" bits pp_reg dst
  | Endian (Be, dst, bits) -> Fmt.pf ppf "be%d %a" bits pp_reg dst
  | Lddw (dst, v) -> Fmt.pf ppf "lddw %a, 0x%Lx" pp_reg dst v
  | Ldx (sz, dst, src, off) ->
    Fmt.pf ppf "ldx%s %a, [%a%+d]" (size_name sz) pp_reg dst pp_reg src off
  | St (sz, dst, off, imm) ->
    Fmt.pf ppf "st%s [%a%+d], %ld" (size_name sz) pp_reg dst off imm
  | Stx (sz, dst, off, src) ->
    Fmt.pf ppf "stx%s [%a%+d], %a" (size_name sz) pp_reg dst off pp_reg src
  | Ja off -> Fmt.pf ppf "ja %+d" off
  | Jcond (w, c, dst, src, off) ->
    let suffix = match w with W64bit -> "" | W32bit -> "32" in
    Fmt.pf ppf "%s%s %a, %a, %+d" (cond_name c) suffix pp_reg dst pp_src src
      off
  | Call id -> Fmt.pf ppf "call %d" id
  | Exit -> Fmt.pf ppf "exit"

let to_string i = Fmt.str "%a" pp i
