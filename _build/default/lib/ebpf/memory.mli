(** Bounds-checked VM memory.

    The VM sees a flat 64-bit address space populated by disjoint
    {e regions} (stack, program arguments, per-extension heap, shared
    memory...). Every load and store resolves its address against the
    region table; anything outside a region — or a write to a read-only
    region — raises {!Fault}. This is the isolation property §2.1 of the
    xBGP paper relies on: extension code can only touch memory explicitly
    granted by the host.

    Multi-byte accesses are little-endian, as on mainstream eBPF
    targets. *)

exception Fault of string

type region
(** A mapped range of VM addresses backed by a host [bytes] buffer. *)

type t

val create : unit -> t

val add_region :
  t -> name:string -> base:int64 -> writable:bool -> bytes -> region
(** Map [bytes] at VM address [base].
    @raise Invalid_argument if the range overlaps an existing region. *)

val remove_region : t -> region -> unit

val region_addr : region -> int64
val region_length : region -> int
val region_bytes : region -> bytes

val load : t -> Insn.size -> int64 -> int64
(** Bounds-checked little-endian load; sub-64-bit widths zero-extend.
    @raise Fault on an unmapped access. *)

val store : t -> Insn.size -> int64 -> int64 -> unit
(** Bounds-checked store. @raise Fault on unmapped or read-only memory. *)

val read_bytes : t -> int64 -> int -> bytes
(** Copy a range out of VM memory. The range must lie within a single
    region. @raise Fault otherwise. *)

val write_bytes : t -> int64 -> bytes -> unit
(** Copy a host buffer into VM memory. @raise Fault as {!store}. *)

val read_cstring : t -> ?max:int -> int64 -> string
(** Read a NUL-terminated string of at most [max] (default 4096) bytes.
    @raise Fault when unterminated or unmapped. *)
