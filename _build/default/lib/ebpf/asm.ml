(* A small assembler for eBPF programs.

   Programs are written as a list of [item]s: instructions plus symbolic
   labels; [assemble] resolves labels to slot-relative jump offsets (in
   8-byte slots, so LDDW counts for two). The combinators below keep the
   extension sources in [lib/xprogs] close to classic eBPF assembly. *)

exception Asm_error of string

let asm_error fmt = Printf.ksprintf (fun s -> raise (Asm_error s)) fmt

type item =
  | Label of string
  | Plain of Insn.t
  | Ja_to of string
  | Jcond_to of Insn.width * Insn.cond * Insn.reg * Insn.src * string

let item_slots = function
  | Label _ -> 0
  | Plain i -> Insn.slots i
  | Ja_to _ | Jcond_to _ -> 1

(** Resolve labels and produce the final instruction list.
    @raise Asm_error on unknown/duplicate labels or offsets out of range. *)
let assemble (items : item list) : Insn.t list =
  let labels = Hashtbl.create 17 in
  let _ =
    List.fold_left
      (fun slot item ->
        (match item with
        | Label l ->
          if Hashtbl.mem labels l then asm_error "duplicate label %S" l;
          Hashtbl.add labels l slot
        | _ -> ());
        slot + item_slots item)
      0 items
  in
  let target slot l =
    match Hashtbl.find_opt labels l with
    | None -> asm_error "unknown label %S" l
    | Some t ->
      let off = t - (slot + 1) in
      if off < -32768 || off > 32767 then
        asm_error "jump to %S out of 16-bit range (%d)" l off;
      off
  in
  let _, rev =
    List.fold_left
      (fun (slot, acc) item ->
        match item with
        | Label _ -> (slot, acc)
        | Plain i -> (slot + Insn.slots i, i :: acc)
        | Ja_to l -> (slot + 1, Insn.Ja (target slot l) :: acc)
        | Jcond_to (w, c, r, s, l) ->
          (slot + 1, Insn.Jcond (w, c, r, s, target slot l) :: acc))
      (0, []) items
  in
  List.rev rev

(* --- combinators --- *)

let label s = Label s

let imm32_exn name v =
  if v < -0x8000_0000 || v > 0x7FFF_FFFF then
    asm_error "%s: immediate %d does not fit in 32 bits" name v;
  Int32.of_int v

open Insn

(* 64-bit ALU, immediate and register forms *)
let movi dst v = Plain (Alu (W64bit, Mov, dst, Imm (imm32_exn "movi" v)))
let mov dst src = Plain (Alu (W64bit, Mov, dst, Reg src))
let addi dst v = Plain (Alu (W64bit, Add, dst, Imm (imm32_exn "addi" v)))
let add dst src = Plain (Alu (W64bit, Add, dst, Reg src))
let subi dst v = Plain (Alu (W64bit, Sub, dst, Imm (imm32_exn "subi" v)))
let sub dst src = Plain (Alu (W64bit, Sub, dst, Reg src))
let muli dst v = Plain (Alu (W64bit, Mul, dst, Imm (imm32_exn "muli" v)))
let mul dst src = Plain (Alu (W64bit, Mul, dst, Reg src))
let divi dst v = Plain (Alu (W64bit, Div, dst, Imm (imm32_exn "divi" v)))
let div dst src = Plain (Alu (W64bit, Div, dst, Reg src))
let modi dst v = Plain (Alu (W64bit, Mod, dst, Imm (imm32_exn "modi" v)))
let mod_ dst src = Plain (Alu (W64bit, Mod, dst, Reg src))
let andi dst v = Plain (Alu (W64bit, And, dst, Imm (imm32_exn "andi" v)))
let and_ dst src = Plain (Alu (W64bit, And, dst, Reg src))
let ori dst v = Plain (Alu (W64bit, Or, dst, Imm (imm32_exn "ori" v)))
let or_ dst src = Plain (Alu (W64bit, Or, dst, Reg src))
let xori dst v = Plain (Alu (W64bit, Xor, dst, Imm (imm32_exn "xori" v)))
let xor dst src = Plain (Alu (W64bit, Xor, dst, Reg src))
let lshi dst v = Plain (Alu (W64bit, Lsh, dst, Imm (imm32_exn "lshi" v)))
let lsh dst src = Plain (Alu (W64bit, Lsh, dst, Reg src))
let rshi dst v = Plain (Alu (W64bit, Rsh, dst, Imm (imm32_exn "rshi" v)))
let rsh dst src = Plain (Alu (W64bit, Rsh, dst, Reg src))
let arshi dst v = Plain (Alu (W64bit, Arsh, dst, Imm (imm32_exn "arshi" v)))
let arsh dst src = Plain (Alu (W64bit, Arsh, dst, Reg src))
let neg dst = Plain (Alu (W64bit, Neg, dst, Imm 0l))

(* 32-bit ALU (zero-extending) *)
let movi32 dst v = Plain (Alu (W32bit, Mov, dst, Imm (imm32_exn "movi32" v)))
let mov32 dst src = Plain (Alu (W32bit, Mov, dst, Reg src))
let addi32 dst v = Plain (Alu (W32bit, Add, dst, Imm (imm32_exn "addi32" v)))
let add32 dst src = Plain (Alu (W32bit, Add, dst, Reg src))

let lddw dst v = Plain (Lddw (dst, v))

(* byte swaps *)
let be16 r = Plain (Endian (Be, r, 16))
let be32 r = Plain (Endian (Be, r, 32))
let be64 r = Plain (Endian (Be, r, 64))
let le16 r = Plain (Endian (Le, r, 16))
let le32 r = Plain (Endian (Le, r, 32))
let le64 r = Plain (Endian (Le, r, 64))

(* memory *)
let ldxb dst src off = Plain (Ldx (W8, dst, src, off))
let ldxh dst src off = Plain (Ldx (W16, dst, src, off))
let ldxw dst src off = Plain (Ldx (W32, dst, src, off))
let ldxdw dst src off = Plain (Ldx (W64, dst, src, off))
let stxb dst off src = Plain (Stx (W8, dst, off, src))
let stxh dst off src = Plain (Stx (W16, dst, off, src))
let stxw dst off src = Plain (Stx (W32, dst, off, src))
let stxdw dst off src = Plain (Stx (W64, dst, off, src))
let stb dst off v = Plain (St (W8, dst, off, imm32_exn "stb" v))
let sth dst off v = Plain (St (W16, dst, off, imm32_exn "sth" v))
let stw dst off v = Plain (St (W32, dst, off, imm32_exn "stw" v))
let stdw dst off v = Plain (St (W64, dst, off, imm32_exn "stdw" v))

(* control flow *)
let ja l = Ja_to l
let jeq r s l = Jcond_to (W64bit, Eq, r, Reg s, l)
let jeqi r v l = Jcond_to (W64bit, Eq, r, Imm (imm32_exn "jeqi" v), l)
let jne r s l = Jcond_to (W64bit, Ne, r, Reg s, l)
let jnei r v l = Jcond_to (W64bit, Ne, r, Imm (imm32_exn "jnei" v), l)
let jgt r s l = Jcond_to (W64bit, Gt, r, Reg s, l)
let jgti r v l = Jcond_to (W64bit, Gt, r, Imm (imm32_exn "jgti" v), l)
let jge r s l = Jcond_to (W64bit, Ge, r, Reg s, l)
let jgei r v l = Jcond_to (W64bit, Ge, r, Imm (imm32_exn "jgei" v), l)
let jlt r s l = Jcond_to (W64bit, Lt, r, Reg s, l)
let jlti r v l = Jcond_to (W64bit, Lt, r, Imm (imm32_exn "jlti" v), l)
let jle r s l = Jcond_to (W64bit, Le, r, Reg s, l)
let jlei r v l = Jcond_to (W64bit, Le, r, Imm (imm32_exn "jlei" v), l)
let jsgt r s l = Jcond_to (W64bit, Sgt, r, Reg s, l)
let jsgti r v l = Jcond_to (W64bit, Sgt, r, Imm (imm32_exn "jsgti" v), l)
let jslt r s l = Jcond_to (W64bit, Slt, r, Reg s, l)
let jslti r v l = Jcond_to (W64bit, Slt, r, Imm (imm32_exn "jslti" v), l)
let jset r s l = Jcond_to (W64bit, Set, r, Reg s, l)
let jseti r v l = Jcond_to (W64bit, Set, r, Imm (imm32_exn "jseti" v), l)
let call id = Plain (Call id)
let exit_ = Plain Exit
