(* Bounds-checked VM memory.

   The VM sees a flat 64-bit address space populated by disjoint *regions*
   (stack, program arguments, per-extension heap, shared memory...). Every
   load and store resolves its address against the region table; anything
   outside a region — or a write to a read-only region — faults. This is the
   isolation property §2.1 of the paper relies on: extension code can only
   touch memory explicitly granted by the host.

   Multi-byte accesses are little-endian, as on mainstream eBPF targets. *)

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

type region = {
  name : string;
  base : int64;
  data : bytes;
  writable : bool;
}

type t = { mutable regions : region list }

let create () = { regions = [] }

let overlaps a b =
  let a_end = Int64.add a.base (Int64.of_int (Bytes.length a.data)) in
  let b_end = Int64.add b.base (Int64.of_int (Bytes.length b.data)) in
  a.base < b_end && b.base < a_end

(** Register a region. Raises [Invalid_argument] on overlap with an
    existing region. *)
let add_region t ~name ~base ~writable data =
  let r = { name; base; data; writable } in
  if Bytes.length data > 0 then
    List.iter
      (fun r' ->
        if Bytes.length r'.data > 0 && overlaps r r' then
          invalid_arg
            (Printf.sprintf "Memory.add_region: %s overlaps %s" name r'.name))
      t.regions;
  t.regions <- r :: t.regions;
  r

let remove_region t r = t.regions <- List.filter (fun r' -> r' != r) t.regions

let region_addr r = r.base
let region_length r = Bytes.length r.data
let region_bytes r = r.data

let find t addr len =
  let rec go = function
    | [] -> None
    | r :: rest ->
      let off = Int64.sub addr r.base in
      if
        off >= 0L
        && Int64.add off (Int64.of_int len)
           <= Int64.of_int (Bytes.length r.data)
      then Some (r, Int64.to_int off)
      else go rest
  in
  go t.regions

(** [check t addr len] is the region containing [addr, addr+len), or faults. *)
let check t addr len =
  match find t addr len with
  | Some x -> x
  | None -> fault "access to 0x%Lx (+%d) outside any region" addr len

let load t size addr =
  let nbytes = Insn.size_bytes size in
  let r, off = check t addr nbytes in
  match size with
  | Insn.W8 -> Int64.of_int (Bytes.get_uint8 r.data off)
  | Insn.W16 -> Int64.of_int (Bytes.get_uint16_le r.data off)
  | Insn.W32 ->
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le r.data off)) 0xFFFFFFFFL
  | Insn.W64 -> Bytes.get_int64_le r.data off

let store t size addr v =
  let nbytes = Insn.size_bytes size in
  let r, off = check t addr nbytes in
  if not r.writable then fault "write to read-only region %s" r.name;
  match size with
  | Insn.W8 -> Bytes.set_uint8 r.data off (Int64.to_int v land 0xff)
  | Insn.W16 -> Bytes.set_uint16_le r.data off (Int64.to_int v land 0xffff)
  | Insn.W32 -> Bytes.set_int32_le r.data off (Int64.to_int32 v)
  | Insn.W64 -> Bytes.set_int64_le r.data off v

(** Copy [len] bytes out of VM memory into a fresh buffer. Faults if the
    range is not fully contained in one region. *)
let read_bytes t addr len =
  if len < 0 then fault "negative read length %d" len;
  let r, off = check t addr len in
  Bytes.sub r.data off len

(** Copy a host buffer into VM memory at [addr]. *)
let write_bytes t addr src =
  let len = Bytes.length src in
  let r, off = check t addr len in
  if not r.writable then fault "write to read-only region %s" r.name;
  Bytes.blit src 0 r.data off len

(** Read a NUL-terminated string of at most [max] bytes starting at [addr]. *)
let read_cstring t ?(max = 4096) addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then fault "unterminated string at 0x%Lx" addr
    else
      let c = load t Insn.W8 (Int64.add addr (Int64.of_int i)) in
      if c = 0L then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr (Int64.to_int c land 0xff));
        go (i + 1)
      end
  in
  go 0
