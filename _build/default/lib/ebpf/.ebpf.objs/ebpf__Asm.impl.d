lib/ebpf/asm.ml: Hashtbl Insn Int32 List Printf
