lib/ebpf/insn.ml: Bytes Fmt Int32 Int64 List Printf
