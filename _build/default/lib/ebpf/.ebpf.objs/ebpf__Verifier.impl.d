lib/ebpf/verifier.ml: Array Fmt Insn List Printf
