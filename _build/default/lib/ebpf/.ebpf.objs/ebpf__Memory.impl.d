lib/ebpf/memory.ml: Buffer Bytes Char Insn Int64 List Printf
