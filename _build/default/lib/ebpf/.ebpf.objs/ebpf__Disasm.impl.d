lib/ebpf/disasm.ml: Fmt Insn List
