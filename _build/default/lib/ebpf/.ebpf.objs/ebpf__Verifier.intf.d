lib/ebpf/verifier.mli: Format Insn
