lib/ebpf/memory.mli: Insn
