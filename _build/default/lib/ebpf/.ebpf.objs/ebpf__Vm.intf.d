lib/ebpf/vm.mli: Insn Memory
