lib/ebpf/insn.mli: Format
