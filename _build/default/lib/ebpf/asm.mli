(** A small assembler for eBPF programs.

    Programs are written as a list of {!item}s — instructions plus
    symbolic labels; {!assemble} resolves labels to slot-relative jump
    offsets. The combinators below keep extension sources close to
    classic eBPF assembly:

    {[
      assemble
        [
          movi R0 0;
          label "top";
          addi R0 1;
          jnei R0 10 "top";
          exit_;
        ]
    ]} *)

exception Asm_error of string

type item

val assemble : item list -> Insn.t list
(** Resolve labels and produce the final instruction list.
    @raise Asm_error on unknown/duplicate labels, offsets out of the
    16-bit range, or immediates that do not fit in 32 bits. *)

val label : string -> item

(** {1 64-bit ALU} — immediate ([*i]) and register forms *)

val movi : Insn.reg -> int -> item
val mov : Insn.reg -> Insn.reg -> item
val addi : Insn.reg -> int -> item
val add : Insn.reg -> Insn.reg -> item
val subi : Insn.reg -> int -> item
val sub : Insn.reg -> Insn.reg -> item
val muli : Insn.reg -> int -> item
val mul : Insn.reg -> Insn.reg -> item
val divi : Insn.reg -> int -> item
val div : Insn.reg -> Insn.reg -> item
val modi : Insn.reg -> int -> item
val mod_ : Insn.reg -> Insn.reg -> item
val andi : Insn.reg -> int -> item
val and_ : Insn.reg -> Insn.reg -> item
val ori : Insn.reg -> int -> item
val or_ : Insn.reg -> Insn.reg -> item
val xori : Insn.reg -> int -> item
val xor : Insn.reg -> Insn.reg -> item
val lshi : Insn.reg -> int -> item
val lsh : Insn.reg -> Insn.reg -> item
val rshi : Insn.reg -> int -> item
val rsh : Insn.reg -> Insn.reg -> item
val arshi : Insn.reg -> int -> item
val arsh : Insn.reg -> Insn.reg -> item
val neg : Insn.reg -> item

(** {1 32-bit ALU} (zero-extending) *)

val movi32 : Insn.reg -> int -> item
val mov32 : Insn.reg -> Insn.reg -> item
val addi32 : Insn.reg -> int -> item
val add32 : Insn.reg -> Insn.reg -> item

val lddw : Insn.reg -> int64 -> item
(** Load a full 64-bit immediate (occupies two slots). *)

(** {1 Byte swaps} *)

val be16 : Insn.reg -> item
val be32 : Insn.reg -> item
val be64 : Insn.reg -> item
val le16 : Insn.reg -> item
val le32 : Insn.reg -> item
val le64 : Insn.reg -> item

(** {1 Memory} — [ldx<sz> dst src off] loads [mem[src+off]];
    [stx<sz> dst off src] stores [src]; [st<sz> dst off imm] stores an
    immediate. *)

val ldxb : Insn.reg -> Insn.reg -> int -> item
val ldxh : Insn.reg -> Insn.reg -> int -> item
val ldxw : Insn.reg -> Insn.reg -> int -> item
val ldxdw : Insn.reg -> Insn.reg -> int -> item
val stxb : Insn.reg -> int -> Insn.reg -> item
val stxh : Insn.reg -> int -> Insn.reg -> item
val stxw : Insn.reg -> int -> Insn.reg -> item
val stxdw : Insn.reg -> int -> Insn.reg -> item
val stb : Insn.reg -> int -> int -> item
val sth : Insn.reg -> int -> int -> item
val stw : Insn.reg -> int -> int -> item
val stdw : Insn.reg -> int -> int -> item

(** {1 Control flow} — jump targets are label names; [j..i] forms compare
    against an immediate. Comparisons follow {!Insn.cond} signedness. *)

val ja : string -> item
val jeq : Insn.reg -> Insn.reg -> string -> item
val jeqi : Insn.reg -> int -> string -> item
val jne : Insn.reg -> Insn.reg -> string -> item
val jnei : Insn.reg -> int -> string -> item
val jgt : Insn.reg -> Insn.reg -> string -> item
val jgti : Insn.reg -> int -> string -> item
val jge : Insn.reg -> Insn.reg -> string -> item
val jgei : Insn.reg -> int -> string -> item
val jlt : Insn.reg -> Insn.reg -> string -> item
val jlti : Insn.reg -> int -> string -> item
val jle : Insn.reg -> Insn.reg -> string -> item
val jlei : Insn.reg -> int -> string -> item
val jsgt : Insn.reg -> Insn.reg -> string -> item
val jsgti : Insn.reg -> int -> string -> item
val jslt : Insn.reg -> Insn.reg -> string -> item
val jslti : Insn.reg -> int -> string -> item
val jset : Insn.reg -> Insn.reg -> string -> item
val jseti : Insn.reg -> int -> string -> item
val call : int -> item
val exit_ : item
