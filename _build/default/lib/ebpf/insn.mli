(** eBPF instruction set: decoded representation and the standard 8-byte
    wire encoding.

    The classic eBPF layout is used: opcode byte, dst/src register
    nibbles, a signed 16-bit offset and a signed 32-bit immediate, all
    little-endian. [Lddw] occupies two consecutive 8-byte slots, and jump
    offsets are expressed in slots — exactly as in the kernel format, so
    bytecode produced here is byte-compatible with other eBPF tooling. *)

(** The eleven registers. [R0] carries results, [R1]–[R5] helper
    arguments, [R6]–[R9] are callee-preserved by convention, [R10] is the
    read-only frame pointer. *)
type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10

val reg_index : reg -> int

val reg_of_index : int -> reg
(** @raise Invalid_argument when outside [0, 10]. *)

val pp_reg : Format.formatter -> reg -> unit

(** Memory access width. *)
type size = W8 | W16 | W32 | W64

val size_bytes : size -> int

(** ALU operations shared by the 32 and 64-bit classes. *)
type alu_op =
  | Add | Sub | Mul | Div | Or | And | Lsh | Rsh | Neg | Mod | Xor
  | Mov | Arsh

(** Conditional-jump predicates shared by the JMP and JMP32 classes;
    [Gt]/[Ge]/[Lt]/[Le] are unsigned, the [S]-prefixed forms signed. *)
type cond = Eq | Gt | Ge | Set | Ne | Sgt | Sge | Lt | Le | Slt | Sle

(** Operand width of an ALU or conditional-jump instruction. *)
type width = W32bit | W64bit

(** Second operand: immediate or register. *)
type src = Imm of int32 | Reg of reg

type endianness = Le | Be

type t =
  | Alu of width * alu_op * reg * src
      (** [dst <- dst op src]; the 32-bit form zero-extends the result. *)
  | Endian of endianness * reg * int
      (** Byte-swap to little/big endian; the int is 16, 32 or 64. *)
  | Lddw of reg * int64  (** Load a 64-bit immediate (two slots). *)
  | Ldx of size * reg * reg * int  (** [dst <- mem\[src + off\]]. *)
  | St of size * reg * int * int32  (** [mem\[dst + off\] <- imm]. *)
  | Stx of size * reg * int * reg  (** [mem\[dst + off\] <- src]. *)
  | Ja of int  (** Unconditional jump, slot-relative. *)
  | Jcond of width * cond * reg * src * int
      (** Conditional jump; the 32-bit form compares low words. *)
  | Call of int  (** Call a helper function by id. *)
  | Exit

val slots : t -> int
(** Number of 8-byte slots the instruction occupies (2 for [Lddw]). *)

val encode : t list -> bytes
(** Serialize a program to its wire form, 8 bytes per slot. *)

exception Decode_error of string

val decode : bytes -> t list
(** Decode a wire-form program. @raise Decode_error on malformed input. *)

val pp : Format.formatter -> t -> unit
(** Disassembly of one instruction, e.g. ["ldxw r0, \[r1+4\]"]. *)

val to_string : t -> string
