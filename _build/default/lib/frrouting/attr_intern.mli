(** FRRouting-style attribute storage: a fixed host-byte-order record
    with one field per known attribute, deduplicated ("interned") through
    a hash table so identical attribute sets share one allocation.

    Nothing here is close to the wire format: every crossing of the xBGP
    boundary converts between this record and the neutral
    network-byte-order TLV — the conversion work that made the FRRouting
    adapter the larger of the two in the paper (§2.1).

    The [extra] field carries attributes "not defined by any standard" —
    the attribute API the paper's authors had to add to FRRouting. The
    native UPDATE parser still drops unknown attributes and the native
    encoder only emits known ones; recovering and re-emitting them is
    what the GeoLoc extension's receive/encode bytecodes are for. *)

type t = {
  origin : int;
  as_path : Bgp.Attr.segment list;
  as_path_len : int;  (** cached at intern time, like FRR *)
  next_hop : int;
  med : int option;
  local_pref : int option;
  atomic : bool;
  aggregator : (int * int) option;
  communities : int list;
  originator_id : int option;
  cluster_list : int list;
  extra : (int * int * string) list;
      (** (code, flags, payload) of non-standard attributes, sorted *)
}

val empty : t

val intern : t -> t
(** Canonicalize through the intern table (recomputes the cached path
    length). *)

val intern_table_size : unit -> int
val reset_intern_table : unit -> unit

val hash : t -> int
(** Full-structure hash (the stdlib polymorphic hash only explores a
    bounded number of nodes and collides badly on attribute records). *)

(** Hash tables keyed by {e interned} records (physical equality). *)
module Interned_tbl : Hashtbl.S with type key = t

val of_attrs : Bgp.Attr.t list -> t
(** Build (and intern) from parsed attributes; unknown attributes are
    dropped, as FRRouting's parser does. *)

val to_attrs : t -> Bgp.Attr.t list
(** The known attributes in canonical code order, for the native encoder;
    [extra] is deliberately not included. *)

(** {1 The xBGP adapter} — neutral TLV <-> interned record *)

val get_tlv : t -> int -> bytes option
(** Fetch one attribute as a neutral TLV (builds the wire form from the
    host representation — the FRR-side conversion cost). *)

val set_tlv : t -> bytes -> t
(** Install/replace an attribute from its TLV; parses, updates the record
    and re-interns. @raise Bgp.Attr.Parse_error *)

val remove : t -> int -> t
val has_extra : t -> int -> bool

(** {1 Policy / decision accessors} *)

val local_pref_or_default : t -> int
val med_or_default : t -> int
val neighbor_as : t -> int
val origin_as : t -> int option
val contains_as : t -> int -> bool
val prepend_as : t -> int -> t
