lib/frrouting/attr_intern.ml: Bgp Bytes Hashtbl List Option
