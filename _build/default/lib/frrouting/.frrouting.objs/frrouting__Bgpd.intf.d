lib/frrouting/bgpd.mli: Attr_intern Bgp Netsim Rpki Session Xbgp
