lib/frrouting/bgpd.ml: Array Attr_intern Bgp Buffer Bytes Hashtbl Int32 Lazy List Netsim Option Rib Rpki Session Xbgp
