lib/frrouting/attr_intern.mli: Bgp Hashtbl
