lib/bird/eattr.ml: Bgp Buffer Bytes Char Int32 List String
