lib/bird/eattr.mli: Bgp
