lib/bird/bgpd.mli: Bgp Eattr Netsim Rpki Session Xbgp
