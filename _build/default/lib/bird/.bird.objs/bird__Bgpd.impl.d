lib/bird/bgpd.ml: Array Bgp Buffer Bytes Eattr Hashtbl Int32 Lazy List Netsim Option Rib Rpki Session String Xbgp
