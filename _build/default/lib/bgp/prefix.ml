(* IPv4 prefixes.

   Addresses are stored as plain OCaml [int]s in the range [0, 2^32), which
   keeps arithmetic allocation-free. Prefixes are always normalized: bits
   beyond the mask length are zero, so structural equality coincides with
   semantic equality. *)

type t = { addr : int; len : int }

let mask_of_len len = if len = 0 then 0 else 0xFFFFFFFF lxor ((1 lsl (32 - len)) - 1)

(** [v addr len] is the prefix [addr/len], with host bits cleared.
    @raise Invalid_argument if [len] is outside [0, 32]. *)
let v addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.v: length out of range";
  { addr = addr land mask_of_len len; len }

let addr t = t.addr
let len t = t.len
let default = v 0 0

let addr_of_quad (a, b, c, d) =
  ((a land 0xff) lsl 24) lor ((b land 0xff) lsl 16) lor ((c land 0xff) lsl 8)
  lor (d land 0xff)

let quad_of_addr a =
  ((a lsr 24) land 0xff, (a lsr 16) land 0xff, (a lsr 8) land 0xff, a land 0xff)

let pp_addr ppf a =
  let x, y, z, w = quad_of_addr a in
  Fmt.pf ppf "%d.%d.%d.%d" x y z w

let pp ppf t = Fmt.pf ppf "%a/%d" pp_addr t.addr t.len
let to_string t = Fmt.str "%a" pp t

(** Parse ["a.b.c.d/len"]; @raise Invalid_argument on malformed input. *)
let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Prefix.of_string: %S" s) in
  match String.split_on_char '/' s with
  | [ addr_s; len_s ] -> (
    let quads = String.split_on_char '.' addr_s in
    match (quads, int_of_string_opt len_s) with
    | [ a; b; c; d ], Some len -> (
      let p v =
        match int_of_string_opt v with
        | Some x when x >= 0 && x <= 255 -> x
        | _ -> fail ()
      in
      try v (addr_of_quad (p a, p b, p c, p d)) len
      with Invalid_argument _ -> fail ())
    | _ -> fail ())
  | _ -> fail ()

let equal a b = a.addr = b.addr && a.len = b.len

(* Order: by address, then more-specific (longer) first on ties. *)
let compare a b =
  match Int.compare a.addr b.addr with
  | 0 -> Int.compare b.len a.len
  | c -> c

(** [mem a t] is true when address [a] belongs to prefix [t]. *)
let mem a t = a land mask_of_len t.len = t.addr

(** [subset sub sup]: every address of [sub] is in [sup]. *)
let subset sub sup = sub.len >= sup.len && mem sub.addr sup

(** Value of bit [i] (0 = most significant) of the prefix address. *)
let bit t i = (t.addr lsr (31 - i)) land 1

(* --- NLRI wire form (RFC 4271 §4.3): length octet + ceil(len/8) bytes --- *)

let wire_size t = 1 + ((t.len + 7) / 8)

let encode_into buf pos t =
  Bytes.set_uint8 buf pos t.len;
  let nbytes = (t.len + 7) / 8 in
  for i = 0 to nbytes - 1 do
    Bytes.set_uint8 buf (pos + 1 + i) ((t.addr lsr (24 - (8 * i))) land 0xff)
  done;
  pos + 1 + nbytes

exception Parse_error of string

(** Decode one NLRI entry at [pos]; returns the prefix and next position.
    @raise Parse_error on truncation or a length octet > 32. *)
let decode_from buf pos limit =
  if pos >= limit then raise (Parse_error "NLRI: truncated length octet");
  let len = Bytes.get_uint8 buf pos in
  if len > 32 then raise (Parse_error (Printf.sprintf "NLRI: length %d" len));
  let nbytes = (len + 7) / 8 in
  if pos + 1 + nbytes > limit then raise (Parse_error "NLRI: truncated body");
  let addr = ref 0 in
  for i = 0 to nbytes - 1 do
    addr := !addr lor (Bytes.get_uint8 buf (pos + 1 + i) lsl (24 - (8 * i)))
  done;
  (v !addr len, pos + 1 + nbytes)

let hash t = (t.addr * 31) + t.len
