(** IPv4 prefixes.

    Addresses are plain [int]s in the range [0, 2{^32}), which keeps
    arithmetic allocation-free. Prefixes are always normalized — bits
    beyond the mask length are zero — so structural equality coincides
    with semantic equality. *)

type t

val v : int -> int -> t
(** [v addr len] is the prefix [addr/len], with host bits cleared.
    @raise Invalid_argument if [len] is outside [0, 32]. *)

val addr : t -> int
val len : t -> int

val default : t
(** [0.0.0.0/0]. *)

val addr_of_quad : int * int * int * int -> int
(** [addr_of_quad (a, b, c, d)] is the address [a.b.c.d]. *)

val quad_of_addr : int -> int * int * int * int

val pp_addr : Format.formatter -> int -> unit
(** Dotted-quad rendering of an address. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Parse ["a.b.c.d/len"]. @raise Invalid_argument on malformed input. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Order by address, then more-specific (longer) first on ties. *)

val mem : int -> t -> bool
(** [mem a t]: address [a] belongs to prefix [t]. *)

val subset : t -> t -> bool
(** [subset sub sup]: every address of [sub] is in [sup]. *)

val bit : t -> int -> int
(** Value of bit [i] (0 = most significant) of the prefix address. *)

val hash : t -> int

(** {1 NLRI wire form} (RFC 4271 §4.3): a length octet followed by
    [ceil(len/8)] address bytes. *)

val wire_size : t -> int

val encode_into : bytes -> int -> t -> int
(** Write at the given offset; returns the next offset. *)

exception Parse_error of string

val decode_from : bytes -> int -> int -> t * int
(** [decode_from buf pos limit] decodes one NLRI entry; returns the prefix
    and the next position. @raise Parse_error on truncation or a length
    octet above 32. *)
