lib/bgp/attr.ml: Buffer Bytes Fmt Int32 List Prefix Printf
