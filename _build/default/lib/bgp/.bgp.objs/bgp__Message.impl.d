lib/bgp/message.ml: Attr Buffer Bytes Fmt Int32 List Prefix Printf
