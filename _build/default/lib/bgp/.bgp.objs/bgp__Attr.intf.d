lib/bgp/attr.mli: Buffer Format
