lib/bgp/prefix.ml: Bytes Fmt Int Printf String
