lib/bgp/prefix.mli: Format
