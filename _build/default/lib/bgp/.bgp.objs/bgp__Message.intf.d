lib/bgp/message.mli: Attr Format Prefix
