(** Fig. 1 of the paper: delay between the first IETF draft and RFC
    publication for 40 BGP-related RFCs. Values approximate the IETF
    datatracker document histories; the distribution matches the paper's
    headline statistics (median 3.5 years, maximum about a decade). *)

type entry = { rfc : int; title : string; delay_years : float }

val entries : entry list
(** Exactly 40 entries. *)

val delays : unit -> float list

val cdf : unit -> (float * float) list
(** (delay, cumulative fraction) points, sorted by delay. *)

val median : unit -> float
val max_delay : unit -> float
