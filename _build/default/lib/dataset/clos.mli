(** The data-center fabric of Fig. 5: two spines, four leaves, four
    top-of-rack routers, plus an optional transit provider above the
    spines. This module only *describes* the fabric; {!Scenario.Fabric}
    instantiates live daemons from it. *)

type router = {
  rname : string;
  level : int;  (** 0 = spine, 1 = leaf, 2 = ToR, -1 = transit *)
  asn : int;
  router_id : int;
  addr : int;
  loopback : Bgp.Prefix.t;  (** the prefix this router originates *)
}

type link = string * string

type t = {
  routers : router list;
  links : link list;
  vf_pairs : (int * int) list;  (** (child AS, parent AS) per session *)
  internal_asns : int list;  (** fabric ASNs (valley exemption) *)
}

val router : t -> string -> router
(** @raise Not_found for an unknown name. *)

val fig5 : ?with_transit:bool -> ?same_spine_as:bool -> unit -> t
(** [with_transit] adds router EXT above both spines; [same_spine_as]
    applies the §3.3 duplicate-ASN configuration trick (S1/S2 share an
    AS, leaf pairs share ASes). *)

val originated_prefix : router -> Bgp.Prefix.t
