(* Deterministic PRNG (splitmix64): every workload in the benchmarks and
   tests is reproducible from its seed, independent of OCaml's stdlib
   Random state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next_int64 t) (Int64.of_int bound))

(** Uniform float in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Pick uniformly from a non-empty array. *)
let choose t arr = arr.(int t (Array.length arr))
