(** Synthetic RIPE-RIS-like routing table generator.

    The paper feeds its DUT a June-2020 RIS snapshot (724k IPv4 routes);
    this generator produces a table with the same statistical shape —
    RIS-like prefix-length histogram (55% /24), 2–8-hop AS paths,
    occasional MED, small community sets — seeded and deterministic. The
    benchmark measures *relative* extension-vs-native slowdown over an
    identical stream, so the shape, not the provenance, matters (see the
    substitution table in DESIGN.md). *)

type route = { prefix : Bgp.Prefix.t; attrs : Bgp.Attr.t list }

type config = {
  seed : int;
  count : int;
  as_pool : int;  (** size of the AS-number pool *)
  next_hops : int array;  (** candidate NEXT_HOP addresses *)
  disjoint : bool;
      (** forbid covering prefixes (exact-match ROA semantics in tests) *)
}

val default_config : config
(** seed 42, 10k routes, 2k ASNs, one next hop, overlaps allowed. *)

val generate : config -> route list
(** Distinct prefixes; with [disjoint] no prefix covers another. *)

val origin_as : route -> int option

val roas_for :
  seed:int -> valid_pct:int -> invalid_pct:int -> route list -> Rpki.Roa.t list
(** A ROA list over the table: [valid_pct]% of routes get a matching ROA,
    [invalid_pct]% a wrong-origin ROA, the rest none — the paper's "75%
    of the injected prefixes as valid" setup (§3.4). *)
