(* Synthetic RIPE-RIS-like routing table generator.

   The paper feeds its DUT "IPv4 BGP routes from a recent RIPE RIS
   snapshot of June 2020" (724k prefixes). We cannot ship that snapshot,
   so this module generates a table with the same statistical shape:
   - prefix lengths concentrated at /24 (~55%), then /22-/23, /16-/21,
     a few short prefixes — the well-known RIS length histogram;
   - AS-path lengths mostly 3-6 hops, drawn from a fixed AS pool;
   - occasional MED and a small community set.

   The benchmark measures the *relative* slowdown of extension versus
   native code over an identical stream, so only the shape matters (see
   DESIGN.md substitution table). Everything is seeded and deterministic. *)

type route = { prefix : Bgp.Prefix.t; attrs : Bgp.Attr.t list }

(* cumulative prefix-length distribution (RIS-like) *)
let length_dist =
  [|
    (8, 0.004); (12, 0.01); (14, 0.02); (16, 0.06); (18, 0.09); (19, 0.13);
    (20, 0.19); (21, 0.25); (22, 0.35); (23, 0.44); (24, 1.0);
  |]

let pick_length rng =
  let x = Prng.float rng in
  let rec go i =
    if i >= Array.length length_dist - 1 then fst length_dist.(i)
    else if x <= snd length_dist.(i) then fst length_dist.(i)
    else go (i + 1)
  in
  go 0

let pick_path_len rng =
  (* roughly the RIS AS-path length histogram (mean ~4.2) *)
  let x = Prng.float rng in
  if x < 0.05 then 2
  else if x < 0.25 then 3
  else if x < 0.60 then 4
  else if x < 0.82 then 5
  else if x < 0.93 then 6
  else if x < 0.98 then 7
  else 8

type config = {
  seed : int;
  count : int;
  as_pool : int;  (** size of the AS-number pool *)
  next_hops : int array;  (** candidate NEXT_HOP addresses *)
  disjoint : bool;
      (** forbid covering prefixes (exact-match ROA semantics in tests) *)
}

let default_config =
  {
    seed = 42;
    count = 10_000;
    as_pool = 2_000;
    next_hops = [| Bgp.Prefix.addr_of_quad (10, 0, 0, 1) |];
    disjoint = false;
  }

(** Generate the table. Prefixes are distinct; with [disjoint] no
    generated prefix covers another. *)
let generate (cfg : config) : route list =
  let rng = Prng.create cfg.seed in
  let seen : (Bgp.Prefix.t, unit) Hashtbl.t = Hashtbl.create cfg.count in
  let cover_trie : unit Rib.Ptrie.t = Rib.Ptrie.create () in
  let asn rng = 1000 + Prng.int rng cfg.as_pool in
  let rec fresh_prefix () =
    let len = pick_length rng in
    (* public-ish space: avoid 0/8 and 10/8 *)
    let hi = 11 + Prng.int rng 200 in
    let addr =
      (hi lsl 24)
      lor (Prng.int rng (1 lsl 16) lsl 8)
      lor Prng.int rng 256
    in
    let p = Bgp.Prefix.v addr len in
    let clash =
      Hashtbl.mem seen p
      || (cfg.disjoint && Rib.Ptrie.overlaps cover_trie p)
    in
    if clash then fresh_prefix ()
    else begin
      Hashtbl.replace seen p ();
      if cfg.disjoint then ignore (Rib.Ptrie.replace cover_trie p ());
      p
    end
  in
  List.init cfg.count (fun _ ->
      let prefix = fresh_prefix () in
      let plen = pick_path_len rng in
      let first = asn rng in
      let path = first :: List.init (plen - 1) (fun _ -> asn rng) in
      let attrs =
        List.concat
          [
            [
              Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
              Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq path ]);
              Bgp.Attr.v (Bgp.Attr.Next_hop (Prng.choose rng cfg.next_hops));
            ];
            (if Prng.int rng 100 < 30 then
               [ Bgp.Attr.v (Bgp.Attr.Med (Prng.int rng 200)) ]
             else []);
            (match Prng.int rng 4 with
            | 0 -> []
            | n ->
              [
                Bgp.Attr.v
                  (Bgp.Attr.Communities
                     (List.init n (fun _ ->
                          (first lsl 16) lor Prng.int rng 1000)));
              ]);
          ]
      in
      { prefix; attrs })

(** Origin AS of a generated route (rightmost ASN). *)
let origin_as (r : route) =
  List.find_map
    (fun (a : Bgp.Attr.t) ->
      match a.value with
      | Bgp.Attr.As_path segs -> Bgp.Attr.as_path_origin segs
      | _ -> None)
    r.attrs

(** Build a ROA list over the table: [valid_pct]% of routes get a ROA
    matching their origin, [invalid_pct]% a ROA with a wrong origin, the
    rest none (not-found) — the paper's "75% of the injected prefixes as
    valid" setup. Deterministic per [seed]. *)
let roas_for ~seed ~valid_pct ~invalid_pct (routes : route list) :
    Rpki.Roa.t list =
  let rng = Prng.create seed in
  List.filter_map
    (fun r ->
      let origin = Option.value ~default:1 (origin_as r) in
      let x = Prng.int rng 100 in
      if x < valid_pct then
        Some
          (Rpki.Roa.v r.prefix ~max_len:(Bgp.Prefix.len r.prefix) ~asn:origin)
      else if x < valid_pct + invalid_pct then
        Some
          (Rpki.Roa.v r.prefix
             ~max_len:(Bgp.Prefix.len r.prefix)
             ~asn:(origin + 7))
      else None)
    routes
