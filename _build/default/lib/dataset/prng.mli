(** Deterministic PRNG (splitmix64): every workload in the benchmarks and
    tests is reproducible from its seed. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound). @raise Invalid_argument on bound <= 0. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val choose : t -> 'a array -> 'a
