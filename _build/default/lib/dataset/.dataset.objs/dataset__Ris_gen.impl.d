lib/dataset/ris_gen.ml: Array Bgp Hashtbl List Option Prng Rib Rpki
