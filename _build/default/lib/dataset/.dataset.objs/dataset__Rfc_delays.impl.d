lib/dataset/rfc_delays.ml: Array List
