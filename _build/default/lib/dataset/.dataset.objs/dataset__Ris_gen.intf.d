lib/dataset/ris_gen.mli: Bgp Rpki
