lib/dataset/clos.ml: Bgp List Printf
