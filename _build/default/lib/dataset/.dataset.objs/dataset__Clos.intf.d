lib/dataset/clos.mli: Bgp
