lib/dataset/prng.mli:
