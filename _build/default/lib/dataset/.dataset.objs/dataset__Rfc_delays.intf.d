lib/dataset/rfc_delays.mli:
