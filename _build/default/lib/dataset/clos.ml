(* The data-center fabric of Fig. 5: two spines (level 0), four leaves
   (level 1), four top-of-rack routers (level 2), plus an optional
   transit router above the spines for the external-prefix scenario.

   Every leaf connects to both spines; ToRs T20,T21 hang off leaves
   L10,L11 and T22,T23 off L12,L13. The module only *describes* the
   fabric (names, levels, ASNs, router ids, links, and the valley-free
   manifest blobs); the examples and benches instantiate daemons from
   the description. *)

type router = {
  rname : string;
  level : int;  (** 0 = spine, 1 = leaf, 2 = ToR, -1 = transit *)
  asn : int;
  router_id : int;
  addr : int;
  loopback : Bgp.Prefix.t;
      (** the prefix this router originates: a /32 loopback for fabric
          routers, the rack subnet for ToRs, a large external prefix for
          the transit router *)
}

type link = string * string

type t = {
  routers : router list;
  links : link list;
  vf_pairs : (int * int) list;  (** (child AS, parent AS) per session *)
  internal_asns : int list;  (** ToR ASNs: fabric-internal origins *)
}

let router t name = List.find (fun r -> r.rname = name) t.routers

let mk_router level i name =
  let asn =
    match level with
    | -1 -> 64900
    | 0 -> 65000 + i
    | 1 -> 65010 + i
    | _ -> 65020 + i
  in
  let addr = Bgp.Prefix.addr_of_quad (10, 0, level + 1, i + 1) in
  let loopback =
    match level with
    | -1 -> Bgp.Prefix.of_string "8.8.0.0/16"
    | 2 -> Bgp.Prefix.v (Bgp.Prefix.addr_of_quad (192, 168, 20 + i, 0)) 24
    | l -> Bgp.Prefix.v (Bgp.Prefix.addr_of_quad (172, 16, l + 1, i + 1)) 32
  in
  { rname = name; level; asn; router_id = addr; addr; loopback }

(** Build the Fig. 5 fabric. [with_transit] adds router EXT above both
    spines. [same_spine_as] gives S1 and S2 (and each leaf pair) one AS
    number — the configuration trick of §3.3 that xBGP replaces. *)
let fig5 ?(with_transit = false) ?(same_spine_as = false) () =
  let spines = List.init 2 (fun i -> mk_router 0 i (Printf.sprintf "S%d" (i + 1))) in
  let leaves =
    List.init 4 (fun i -> mk_router 1 i (Printf.sprintf "L1%d" i))
  in
  let tors = List.init 4 (fun i -> mk_router 2 i (Printf.sprintf "T2%d" i)) in
  let spines, leaves =
    if same_spine_as then
      ( List.map (fun r -> { r with asn = 65000 }) spines,
        List.map
          (fun r ->
            (* L10/L11 share one AS, L12/L13 another *)
            let base = if r.rname = "L10" || r.rname = "L11" then 65010 else 65012 in
            { r with asn = base })
          leaves )
    else (spines, leaves)
  in
  let transit = if with_transit then [ mk_router (-1) 0 "EXT" ] else [] in
  let routers = transit @ spines @ leaves @ tors in
  let links =
    List.concat
      [
        (if with_transit then [ ("EXT", "S1"); ("EXT", "S2") ] else []);
        (* every leaf to both spines *)
        List.concat_map
          (fun l -> [ (l.rname, "S1"); (l.rname, "S2") ])
          leaves;
        (* pods *)
        [
          ("T20", "L10"); ("T20", "L11"); ("T21", "L10"); ("T21", "L11");
          ("T22", "L12"); ("T22", "L13"); ("T23", "L12"); ("T23", "L13");
        ];
      ]
  in
  let find n = List.find (fun r -> r.rname = n) routers in
  (* (child, parent): the side with the larger level number is the child *)
  let vf_pairs =
    List.filter_map
      (fun (a, b) ->
        let ra = find a and rb = find b in
        if ra.level = rb.level then None
        else if ra.level > rb.level then Some (ra.asn, rb.asn)
        else Some (rb.asn, ra.asn))
      links
    |> List.sort_uniq compare
  in
  (* every fabric AS (not the transit provider) originates internal
     prefixes; valleys towards those are the price of staying connected
     under multiple failures *)
  let internal_asns =
    List.sort_uniq compare
      (List.map (fun r -> r.asn) (spines @ leaves @ tors))
  in
  { routers; links; vf_pairs; internal_asns }

(** The prefix a router originates (see [router.loopback]). *)
let originated_prefix (r : router) = r.loopback
