(* Fig. 1 of the paper: "Delay between the publication of the first IETF
   draft and the published version of the last 40 BGP RFCs."

   The dataset below lists 40 BGP-related RFCs with the delay, in years,
   between their first individual/WG draft and RFC publication. Values
   are approximations compiled from the IETF datatracker document
   histories (the paper does not publish its raw list); the distribution
   matches the paper's headline statistics — median 3.5 years, maximum
   around a decade. *)

type entry = { rfc : int; title : string; delay_years : float }

let entries =
  [
    { rfc = 8092; title = "BGP Large Communities"; delay_years = 0.7 };
    { rfc = 7607; title = "Codification of AS 0 Processing"; delay_years = 0.9 };
    { rfc = 8050; title = "MRT Format with BGP Additional Paths"; delay_years = 1.1 };
    { rfc = 7705; title = "Autonomous System Migration Mechanisms"; delay_years = 1.3 };
    { rfc = 7999; title = "BLACKHOLE Community"; delay_years = 1.6 };
    { rfc = 8097; title = "BGP Prefix Origin Validation State Extended Community"; delay_years = 1.8 };
    { rfc = 7964; title = "Solutions for BGP Persistent Route Oscillation"; delay_years = 2.0 };
    { rfc = 8212; title = "Default EBGP Route Propagation Behavior without Policies"; delay_years = 2.1 };
    { rfc = 7911; title = "Advertisement of Multiple Paths in BGP"; delay_years = 2.3 };
    { rfc = 6286; title = "AS-Wide Unique BGP Identifier"; delay_years = 2.5 };
    { rfc = 7313; title = "Enhanced Route Refresh Capability"; delay_years = 2.6 };
    { rfc = 6608; title = "Subcodes for BGP FSM Error"; delay_years = 2.8 };
    { rfc = 5492; title = "Capabilities Advertisement with BGP-4"; delay_years = 2.9 };
    { rfc = 6793; title = "BGP Support for Four-Octet AS Numbers"; delay_years = 3.0 };
    { rfc = 7606; title = "Revised Error Handling for BGP UPDATE Messages"; delay_years = 3.1 };
    { rfc = 8203; title = "BGP Administrative Shutdown Communication"; delay_years = 3.2 };
    { rfc = 6368; title = "Internal BGP as PE-CE Protocol"; delay_years = 3.3 };
    { rfc = 7153; title = "IANA Registries for BGP Extended Communities"; delay_years = 3.4 };
    { rfc = 7938; title = "Use of BGP for Routing in Large-Scale Data Centers"; delay_years = 3.5 };
    { rfc = 6472; title = "Recommendation for Not Using AS_SET and AS_CONFED_SET"; delay_years = 3.5 };
    { rfc = 6811; title = "BGP Prefix Origin Validation"; delay_years = 3.6 };
    { rfc = 8195; title = "Use of BGP Large Communities"; delay_years = 3.8 };
    { rfc = 5065; title = "Autonomous System Confederations for BGP"; delay_years = 4.0 };
    { rfc = 5291; title = "Outbound Route Filtering Capability"; delay_years = 4.2 };
    { rfc = 8654; title = "Extended Message Support for BGP"; delay_years = 4.3 };
    { rfc = 4456; title = "BGP Route Reflection"; delay_years = 4.5 };
    { rfc = 4760; title = "Multiprotocol Extensions for BGP-4"; delay_years = 4.7 };
    { rfc = 5082; title = "Generalized TTL Security Mechanism"; delay_years = 5.0 };
    { rfc = 5575; title = "Dissemination of Flow Specification Rules"; delay_years = 5.2 };
    { rfc = 4724; title = "Graceful Restart Mechanism for BGP"; delay_years = 5.5 };
    { rfc = 4360; title = "BGP Extended Communities Attribute"; delay_years = 5.7 };
    { rfc = 4893; title = "BGP Support for Four-octet AS Number Space"; delay_years = 5.8 };
    { rfc = 8277; title = "Using BGP to Bind MPLS Labels to Address Prefixes"; delay_years = 6.0 };
    { rfc = 7752; title = "BGP-LS: Link-State and TE Information Distribution"; delay_years = 6.1 };
    { rfc = 8205; title = "BGPsec Protocol Specification"; delay_years = 6.3 };
    { rfc = 6514; title = "BGP Encodings for Multicast in MPLS/BGP IP VPNs"; delay_years = 6.5 };
    { rfc = 7432; title = "BGP MPLS-Based Ethernet VPN"; delay_years = 7.2 };
    { rfc = 8214; title = "Virtual Private Wire Service Support in EVPN"; delay_years = 8.0 };
    { rfc = 5549; title = "Advertising IPv4 NLRI with an IPv6 Next Hop"; delay_years = 9.0 };
    { rfc = 4271; title = "A Border Gateway Protocol 4 (BGP-4)"; delay_years = 9.8 };
  ]

let delays () = List.map (fun e -> e.delay_years) entries

(** CDF points (delay, cumulative fraction), sorted by delay. *)
let cdf () =
  let ds = List.sort compare (delays ()) in
  let n = float_of_int (List.length ds) in
  List.mapi (fun i d -> (d, float_of_int (i + 1) /. n)) ds

let median () =
  let ds = List.sort compare (delays ()) in
  let arr = Array.of_list ds in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2)
  else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let max_delay () = List.fold_left max 0. (delays ())
