(* The Loc-RIB: per prefix, the candidate routes contributed by each peer
   and the current best as picked by the decision process. Updates are
   incremental — a daemon feeds the post-import-filter route (or a
   withdrawal) and learns whether the best route changed, which is what
   drives re-advertisement to the Adj-RIB-Out side. *)

type 'r entry = {
  mutable candidates : (int * 'r) list;  (** peer id, route *)
  mutable best : (int * 'r) option;
}

type 'r t = {
  trie : 'r entry Ptrie.t;
  view : 'r Decision.view;
  mutable best_count : int;  (** prefixes that currently have a best *)
  mutable compare : 'r -> 'r -> int;
      (** route order; defaults to [Decision.compare view] and may be
          overridden (the xBGP BGP_DECISION insertion point) *)
}

type 'r change =
  | Unchanged
  | New_best of 'r  (** best route (re)selected for the prefix *)
  | Withdrawn  (** no candidate left for the prefix *)

let create view =
  {
    trie = Ptrie.create ();
    view;
    best_count = 0;
    compare = Decision.compare view;
  }

(** Override the route order (pass [None] to restore the RFC 4271
    decision process). Affects subsequent updates only. *)
let set_compare t cmp =
  t.compare <-
    (match cmp with Some f -> f | None -> Decision.compare t.view)

let select t entry =
  match List.map snd entry.candidates with
  | [] -> None
  | r :: rest ->
    Some
      (List.fold_left
         (fun acc r -> if t.compare r acc < 0 then r else acc)
         r rest)

(** [update t ~peer p route] replaces ([Some r]) or withdraws ([None]) the
    candidate contributed by [peer] for prefix [p]. *)
let update t ~peer p route =
  let entry =
    match Ptrie.find t.trie p with
    | Some e -> e
    | None ->
      let e = { candidates = []; best = None } in
      ignore (Ptrie.replace t.trie p e);
      e
  in
  let without = List.remove_assoc peer entry.candidates in
  (match route with
  | Some r -> entry.candidates <- (peer, r) :: without
  | None -> entry.candidates <- without);
  let old_best = entry.best in
  let new_best =
    match select t entry with
    | None -> None
    | Some r ->
      (* recover the contributing peer for bookkeeping *)
      List.find_opt (fun (_, r') -> r' == r) entry.candidates
  in
  entry.best <- new_best;
  (match (old_best, new_best) with
  | None, Some _ -> t.best_count <- t.best_count + 1
  | Some _, None -> t.best_count <- t.best_count - 1
  | _ -> ());
  if entry.candidates = [] then ignore (Ptrie.remove t.trie p);
  match (old_best, new_best) with
  | None, None -> Unchanged
  | Some _, None -> Withdrawn
  | None, Some (_, r) -> New_best r
  | Some (op, or_), Some (np, nr) ->
    if op = np && or_ == nr then Unchanged else New_best nr

let best t p =
  match Ptrie.find t.trie p with
  | Some { best = Some (_, r); _ } -> Some r
  | _ -> None

let best_with_peer t p =
  match Ptrie.find t.trie p with Some { best; _ } -> best | _ -> None

let candidates t p =
  match Ptrie.find t.trie p with Some e -> e.candidates | None -> []

(** Number of prefixes that currently have a best route. O(1). *)
let count t = t.best_count

let iter_best t f =
  Ptrie.iter t.trie (fun p e ->
      match e.best with Some (_, r) -> f p r | None -> ())

let fold_best t f acc =
  Ptrie.fold t.trie
    (fun p e acc ->
      match e.best with Some (_, r) -> f p r acc | None -> acc)
    acc
