(** A binary (bit-wise) trie keyed by IPv4 prefix.

    The workhorse behind the Loc-RIB and Adj-RIBs — and, deliberately,
    the data structure the FRR-like daemon uses for its native ROA store
    (§3.4 of the paper observes FRRouting "browses a dedicated trie for
    validated ROAs each time a prefix needs to be checked").

    Nodes are mutable for cheap incremental RIB updates; depth is bounded
    by 32 so no path compression is needed. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val replace : 'a t -> Bgp.Prefix.t -> 'a -> 'a option
(** Insert or replace a binding; returns the previous value. *)

val find : 'a t -> Bgp.Prefix.t -> 'a option
val mem : 'a t -> Bgp.Prefix.t -> bool

val remove : 'a t -> Bgp.Prefix.t -> 'a option
(** Remove a binding; returns the removed value. *)

val update : 'a t -> Bgp.Prefix.t -> ('a option -> 'a option) -> unit
(** Functional update: [f None] inserts, returning [None] removes. *)

val longest_match : ?max_len:int -> 'a t -> int -> (Bgp.Prefix.t * 'a) option
(** Most specific binding covering an address, searched down to
    [max_len] (default 32). *)

val iter : 'a t -> (Bgp.Prefix.t -> 'a -> unit) -> unit
(** In-order: prefixes by address, shorter first on a shared path. *)

val fold : 'a t -> (Bgp.Prefix.t -> 'a -> 'b -> 'b) -> 'b -> 'b
val to_list : 'a t -> (Bgp.Prefix.t * 'a) list

val covering : 'a t -> Bgp.Prefix.t -> (Bgp.Prefix.t -> 'a -> unit) -> unit
(** Visit every binding whose prefix covers the argument, least specific
    first. *)

val overlaps : 'a t -> Bgp.Prefix.t -> bool
(** Some binding covers the argument or lies inside it. *)
