(* Adj-RIB-In / Adj-RIB-Out: one prefix-keyed store per peer (RFC 4271
   §3.2). The same container serves both directions; daemons keep one
   [t] for inbound state (exact routes as learned, pre-decision) and one
   for outbound state (what has been advertised to each peer, which lets
   them send implicit withdraws only when something actually changed). *)

type 'r t = { tables : (int, 'r Ptrie.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 8 }

let table t peer =
  match Hashtbl.find_opt t.tables peer with
  | Some tr -> tr
  | None ->
    let tr = Ptrie.create () in
    Hashtbl.replace t.tables peer tr;
    tr

(** Store (or replace) the route for [p] learned from / sent to [peer];
    returns the previous route if any. *)
let set t ~peer p r = Ptrie.replace (table t peer) p r

(** Remove the route for [p]; returns the removed route if any. *)
let clear t ~peer p = Ptrie.remove (table t peer) p

let find t ~peer p = Ptrie.find (table t peer) p

(** Drop the whole table of [peer] (session reset). *)
let drop_peer t peer = Hashtbl.remove t.tables peer

let iter_peer t ~peer f = Ptrie.iter (table t peer) f
let count_peer t ~peer = Ptrie.size (table t peer)

let peers t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables []

let total t = Hashtbl.fold (fun _ tr acc -> acc + Ptrie.size tr) t.tables 0
