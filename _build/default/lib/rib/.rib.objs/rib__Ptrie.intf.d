lib/rib/ptrie.mli: Bgp
