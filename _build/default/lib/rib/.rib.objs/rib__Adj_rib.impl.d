lib/rib/adj_rib.ml: Hashtbl Ptrie
