lib/rib/loc_rib.ml: Decision List Ptrie
