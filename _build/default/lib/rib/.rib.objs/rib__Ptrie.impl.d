lib/rib/ptrie.ml: Bgp List
