lib/rib/decision.mli:
