lib/rib/decision.ml: Bool Int List
