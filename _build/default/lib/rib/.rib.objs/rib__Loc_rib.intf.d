lib/rib/loc_rib.mli: Bgp Decision
