lib/rib/adj_rib.mli: Bgp
