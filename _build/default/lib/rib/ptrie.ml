(* A binary (bit-wise) trie keyed by IPv4 prefix.

   This is the workhorse behind the Loc-RIB and the Adj-RIBs, and it is
   also — deliberately — the data structure the FRR-like daemon uses for
   its native ROA store (§3.4 of the paper observes FRRouting "browses a
   dedicated trie for validated ROAs each time a prefix needs to be
   checked", which is why the hash-based extension beats it).

   Depth is bounded by 32, so no path compression is needed; nodes are
   mutable for cheap incremental RIB updates. *)

type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;  (** subtree where the next bit is 0 *)
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable size : int }

let make_node () = { value = None; zero = None; one = None }
let create () = { root = make_node (); size = 0 }
let size t = t.size
let is_empty t = t.size = 0

let child node bit = if bit = 0 then node.zero else node.one

let set_child node bit c =
  if bit = 0 then node.zero <- Some c else node.one <- Some c

(* Walk (and optionally build) the path for [p], calling [f] on the final
   node. *)
let locate ?(build = false) t p =
  let rec go node depth =
    if depth = Bgp.Prefix.len p then Some node
    else
      let bit = Bgp.Prefix.bit p depth in
      match child node bit with
      | Some c -> go c (depth + 1)
      | None ->
        if build then begin
          let c = make_node () in
          set_child node bit c;
          go c (depth + 1)
        end
        else None
  in
  go t.root 0

(** Insert or replace the binding of [p]; returns the previous value. *)
let replace t p v =
  match locate ~build:true t p with
  | None -> assert false
  | Some node ->
    let old = node.value in
    node.value <- Some v;
    if old = None then t.size <- t.size + 1;
    old

let find t p =
  match locate t p with Some { value; _ } -> value | None -> None

let mem t p = find t p <> None

(** Remove the binding of [p]; returns the removed value. Nodes are left in
    place (the trie only ever holds <= 2^25 nodes in our workloads and
    de-allocation buys nothing for RIB churn patterns). *)
let remove t p =
  match locate t p with
  | Some ({ value = Some v; _ } as node) ->
    node.value <- None;
    t.size <- t.size - 1;
    Some v
  | _ -> None

(** Update the binding of [p] through [f]; [f None] inserts, returning
    [None] from [f] removes. *)
let update t p f =
  match locate ~build:true t p with
  | None -> assert false
  | Some node -> (
    let old = node.value in
    match (old, f old) with
    | None, None -> ()
    | None, (Some _ as v) ->
      node.value <- v;
      t.size <- t.size + 1
    | Some _, (Some _ as v) -> node.value <- v
    | Some _, None ->
      node.value <- None;
      t.size <- t.size - 1)

(** Longest-prefix match: the most specific binding covering address
    [addr], searched down to [max_len] (default 32). *)
let longest_match ?(max_len = 32) t addr =
  let rec go node depth best =
    let best =
      match node.value with
      | Some v -> Some (Bgp.Prefix.v addr depth, v)
      | None -> best
    in
    if depth >= max_len then best
    else
      let bit = (addr lsr (31 - depth)) land 1 in
      match child node bit with
      | Some c -> go c (depth + 1) best
      | None -> best
  in
  (* re-derive the matched prefix from the depth at which a value was seen *)
  match go t.root 0 None with
  | Some (p, v) -> Some (Bgp.Prefix.v (Bgp.Prefix.addr p) (Bgp.Prefix.len p), v)
  | None -> None

(** In-order iteration: prefixes in (address, shorter-first) trie order. *)
let iter t f =
  let rec go node addr depth =
    (match node.value with
    | Some v -> f (Bgp.Prefix.v addr depth) v
    | None -> ());
    (match node.zero with Some c -> go c addr (depth + 1) | None -> ());
    match node.one with
    | Some c -> go c (addr lor (1 lsl (31 - depth))) (depth + 1)
    | None -> ()
  in
  go t.root 0 0

let fold t f acc =
  let acc = ref acc in
  iter t (fun p v -> acc := f p v !acc);
  !acc

let to_list t = List.rev (fold t (fun p v acc -> (p, v) :: acc) [])

(** [overlaps t p]: some binding covers [p] or lies inside [p] (i.e. the
    two prefixes share addresses). *)
let overlaps t p =
  let rec on_path node depth =
    node.value <> None
    ||
    if depth < Bgp.Prefix.len p then
      match child node (Bgp.Prefix.bit p depth) with
      | Some c -> on_path c (depth + 1)
      | None -> false
    else subtree node
  and subtree node =
    node.value <> None
    || (match node.zero with Some c -> subtree c | None -> false)
    || match node.one with Some c -> subtree c | None -> false
  in
  on_path t.root 0

(** All bindings on the path from the root to [p] (i.e. every prefix that
    covers [p]), least specific first. *)
let covering t p f =
  let rec go node depth =
    (match node.value with
    | Some v -> f (Bgp.Prefix.v (Bgp.Prefix.addr p) depth) v
    | None -> ());
    if depth < Bgp.Prefix.len p then
      match child node (Bgp.Prefix.bit p depth) with
      | Some c -> go c (depth + 1)
      | None -> ()
  in
  go t.root 0
