(* Scaling smoke test: the FRR origin-validation pipeline at 2k/4k/8k
   routes must scale roughly linearly. Guards against the quadratic
   regressions we hit during development (O(n) convergence predicates,
   degenerate hash grouping in the flush path).

     dune exec tools/scale/scale_test.exe
*)

let () =
  List.iter
    (fun n ->
      let routes =
        Dataset.Ris_gen.generate
          { Dataset.Ris_gen.default_config with count = n; disjoint = true; seed = 43 }
      in
      let roas = Dataset.Ris_gen.roas_for ~seed:7 ~valid_pct:75 ~invalid_pct:13 routes in
      let tb =
        Scenario.Testbed.create
          (Scenario.Testbed.mode ~host:`Frr ~ibgp:false ~native_ov_roas:roas ())
      in
      Scenario.Testbed.establish tb;
      let t0 = Unix.gettimeofday () in
      Scenario.Testbed.feed tb routes;
      ignore (Scenario.Testbed.run_until_downstream_has tb n);
      Printf.printf "FRR-OV n=%-6d %.3fs  intern_table=%d\n%!" n
        (Unix.gettimeofday () -. t0)
        (Frrouting.Attr_intern.intern_table_size ()))
    [ 2000; 4000; 8000 ]
