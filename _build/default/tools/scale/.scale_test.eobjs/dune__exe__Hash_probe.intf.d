tools/scale/hash_probe.mli:
