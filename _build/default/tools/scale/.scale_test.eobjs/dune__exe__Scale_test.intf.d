tools/scale/scale_test.mli:
