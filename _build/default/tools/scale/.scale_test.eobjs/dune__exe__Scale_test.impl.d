tools/scale/scale_test.ml: Dataset Frrouting List Printf Scenario Unix
