tools/scale/hash_probe.ml: Dataset Frrouting Hashtbl List Option Printf
