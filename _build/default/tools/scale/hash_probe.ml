(* Diagnostic: distribution of the stdlib polymorphic hash over interned
   attribute records. Motivated the full-structure Attr_intern.hash — the
   polymorphic hash's bounded traversal collapses 8000 records onto a
   few dozen buckets.

     dune exec tools/scale/hash_probe.exe
*)

let () =
  let routes =
    Dataset.Ris_gen.generate
      { Dataset.Ris_gen.default_config with count = 8000; disjoint = true; seed = 43 }
  in
  let attrs =
    List.map
      (fun (r : Dataset.Ris_gen.route) ->
        let a = Frrouting.Attr_intern.of_attrs r.attrs in
        Frrouting.Attr_intern.prepend_as a 65001)
      routes
  in
  let h = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let k = Hashtbl.hash a in
      Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
    attrs;
  Printf.printf "records=%d distinct_poly_hashes=%d max_bucket=%d\n"
    (List.length attrs) (Hashtbl.length h)
    (Hashtbl.fold (fun _ v m -> max v m) h 0)
