(* §3.1 / Listing 1: filtering routes based on IGP costs.

     dune exec examples/igp_cost_filter.exe

   The ISP of the paper: a worldwide backbone where the transatlantic
   links carry an IGP metric of 1000 to discourage their use. Frankfurt
   announces to a European peer only the routes whose BGP next hop is
   reachable at a reasonable IGP cost. When the two UK–Europe links fail,
   London is suddenly 2000+ IGP units away (via Amsterdam and New York),
   and the export filter — Listing 1, attached to BGP_OUTBOUND_FILTER —
   withdraws the London-learned routes from the peer, which plain
   BGP-community tagging cannot do. *)

let addr = Bgp.Prefix.addr_of_quad

(* IGP node ids *)
let london = 1
and amsterdam = 2
and frankfurt = 3
and newyork = 4

let build_igp () =
  let topo = Igp.Topology.create () in
  Igp.Topology.add_link topo london amsterdam 10;
  (* UK–Europe link 1 *)
  Igp.Topology.add_link topo london frankfurt 12;
  (* UK–Europe link 2 *)
  Igp.Topology.add_link topo amsterdam frankfurt 5;
  Igp.Topology.add_link topo london newyork 1000;
  (* transatlantic *)
  Igp.Topology.add_link topo amsterdam newyork 1000;
  (* transatlantic *)
  topo

let () =
  let topo = build_igp () in
  let london_addr = addr (10, 2, 0, 1) in
  let frankfurt_addr = addr (10, 2, 0, 3) in
  let peer_addr = addr (10, 2, 0, 9) in
  (* Frankfurt's IGP metric towards a BGP next hop *)
  let node_of_addr a = if a = london_addr then Some london else None in
  let igp_metric nh =
    match node_of_addr nh with
    | Some node ->
      Option.value ~default:Xbgp.Api.igp_unreachable
        (Igp.Spf.cost topo ~src:frankfurt ~dst:node)
    | None -> 0
  in
  let sched = Netsim.Sched.create () in
  let lf_a, lf_b = Netsim.Pipe.create sched in
  let fp_a, fp_b = Netsim.Pipe.create sched in
  let frr_peer pname remote_as remote_addr port =
    { Frrouting.Bgpd.pname; remote_as; remote_addr; rr_client = false; port }
  in
  (* London: originates the routes it learned locally (iBGP to Frankfurt) *)
  let london_d =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name:"london" ~router_id:london_addr
         ~local_as:65010 ~local_addr:london_addr ())
      [ frr_peer "frankfurt" 65010 frankfurt_addr lf_a ]
  in
  (* Frankfurt: runs the Listing 1 extension *)
  let vmm = Xprogs.Registry.vmm_of_manifest ~host:"frankfurt" Xprogs.Igp_filter.manifest in
  let frankfurt_d =
    Frrouting.Bgpd.create ~vmm ~sched
      (Frrouting.Bgpd.config ~name:"frankfurt" ~router_id:frankfurt_addr
         ~local_as:65010 ~local_addr:frankfurt_addr ~igp_metric
         ~xtras:[ ("igp_max_metric", Xprogs.Util.encode_u32 1000) ]
         ())
      [
        frr_peer "london" 65010 london_addr lf_b;
        frr_peer "peer" 64999 peer_addr fp_a;
      ]
  in
  (* the European eBGP peer *)
  let peer_d =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name:"peer" ~router_id:peer_addr
         ~local_as:64999 ~local_addr:peer_addr ())
      [ frr_peer "frankfurt" 65010 frankfurt_addr fp_b ]
  in
  List.iter Frrouting.Bgpd.start [ london_d; frankfurt_d; peer_d ];
  ignore (Netsim.Sched.run ~until:(10 * 1_000_000) sched);

  (* London-learned route (next hop London via iBGP) *)
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  Frrouting.Bgpd.originate london_d p
    [
      Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
      Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq [ 64700 ] ]);
      Bgp.Attr.v (Bgp.Attr.Next_hop london_addr);
    ];
  ignore (Netsim.Sched.run ~until:(20 * 1_000_000) sched);
  let show label =
    let cost = igp_metric london_addr in
    let exported = Frrouting.Bgpd.best_route peer_d p <> None in
    Fmt.pr "%-28s IGP cost Frankfurt->London = %-6d exported to peer: %b@."
      label
      (if cost = Xbgp.Api.igp_unreachable then -1 else cost)
      exported
  in
  show "all links up:";

  (* the two UK-Europe links fail *)
  Igp.Topology.remove_link topo london amsterdam;
  Igp.Topology.remove_link topo london frankfurt;
  Frrouting.Bgpd.refresh_exports frankfurt_d;
  ignore (Netsim.Sched.run ~until:(30 * 1_000_000) sched);
  show "after UK-Europe links fail:";

  (* links restored *)
  Igp.Topology.add_link topo london amsterdam 10;
  Igp.Topology.add_link topo london frankfurt 12;
  Frrouting.Bgpd.refresh_exports frankfurt_d;
  ignore (Netsim.Sched.run ~until:(40 * 1_000_000) sched);
  show "after repair:"
