(* A composed edge-router policy, loaded from a manifest file the way an
   operator would ship it:

     dune exec examples/edge_policy.exe

   manifests/edge_router.manifest stacks three xBGP programs on one
   router: per-peer prefix limits and origin validation on import (in
   that order), and community scrubbing on export. The example feeds a
   mix of routes through an edge router and shows each program acting. *)

let addr = Bgp.Prefix.addr_of_quad

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let () =
  (* 1. parse the manifest file and resolve it against the registry *)
  let manifest_path = "manifests/edge_router.manifest" in
  let manifest =
    match Xbgp.Manifest.parse (read_file manifest_path) with
    | Ok m -> m
    | Error e -> failwith (manifest_path ^ ": " ^ e)
  in
  Fmt.pr "loaded %s: programs [%s]@." manifest_path
    (String.concat "; " manifest.programs);

  (* 2. the edge router's configuration extras *)
  let routes =
    Dataset.Ris_gen.generate
      { Dataset.Ris_gen.default_config with count = 40; disjoint = true }
  in
  let roas =
    Dataset.Ris_gen.roas_for ~seed:7 ~valid_pct:75 ~invalid_pct:13 routes
  in
  let vmm = Xbgp.Vmm.create ~host:"edge" () in
  (match Xbgp.Manifest.load vmm ~registry:Xprogs.Registry.find manifest with
  | Ok () -> ()
  | Error e -> failwith e);

  (* 3. a three-router chain: feeder --eBGP-- edge --eBGP-- customer *)
  let sched = Netsim.Sched.create () in
  let f_addr = addr (10, 5, 0, 1)
  and e_addr = addr (10, 5, 0, 2)
  and c_addr = addr (10, 5, 0, 3) in
  let fe_a, fe_b = Netsim.Pipe.create sched in
  let ec_a, ec_b = Netsim.Pipe.create sched in
  let frr_peer pname remote_as remote_addr port =
    { Frrouting.Bgpd.pname; remote_as; remote_addr; rr_client = false; port }
  in
  let feeder =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name:"feeder" ~router_id:f_addr
         ~local_as:64601 ~local_addr:f_addr ())
      [ frr_peer "edge" 65000 e_addr fe_a ]
  in
  let edge =
    Frrouting.Bgpd.create ~vmm ~sched
      (Frrouting.Bgpd.config ~name:"edge" ~router_id:e_addr ~local_as:65000
         ~local_addr:e_addr
         ~xtras:
           [
             ("max_prefix", Xprogs.Util.encode_u32 25);
             ("roa_table", Xprogs.Util.encode_roa_table roas);
           ]
         ())
      [
        frr_peer "feeder" 64601 f_addr fe_b;
        frr_peer "customer" 64999 c_addr ec_a;
      ]
  in
  let customer =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name:"customer" ~router_id:c_addr
         ~local_as:64999 ~local_addr:c_addr ())
      [ frr_peer "edge" 65000 e_addr ec_b ]
  in
  List.iter Frrouting.Bgpd.start [ feeder; edge; customer ];
  ignore (Netsim.Sched.run ~until:(2 * 1_000_000) sched);

  (* 4. feed 40 routes, each additionally tagged with an internal
     community of the edge's AS (which must not leak to the customer) *)
  List.iter
    (fun (r : Dataset.Ris_gen.route) ->
      let internal_tag =
        Bgp.Attr.v (Bgp.Attr.Communities [ (65000 lsl 16) lor 666 ])
      in
      Frrouting.Bgpd.originate feeder r.prefix (internal_tag :: r.attrs))
    routes;
  ignore (Netsim.Sched.run ~until:(20 * 1_000_000) sched);

  (* 5. observe all three programs *)
  Fmt.pr "feeder announced %d routes@." (List.length routes);
  Fmt.pr "edge accepted    %d routes (prefix_limit capped at 25)@."
    (Frrouting.Bgpd.loc_count edge);
  Fmt.pr "customer holds   %d routes@." (Frrouting.Bgpd.loc_count customer);
  let leaked = ref 0 and validated = ref 0 in
  Frrouting.Bgpd.iter_loc customer (fun _ r ->
      List.iter
        (fun c ->
          if c lsr 16 = 65000 then incr leaked
          else if c lsr 16 = 65535 then incr validated)
        r.attrs.communities);
  Fmt.pr "internal 65000:* communities leaked to the customer: %d@." !leaked;
  Fmt.pr "origin-validation tags visible on the customer:      %d@."
    !validated;
  let stats = Xbgp.Vmm.stats vmm in
  Fmt.pr "vmm: %d runs, %d next() delegations, %d faults@." stats.runs
    stats.next_calls stats.faults
