examples/edge_policy.mli:
