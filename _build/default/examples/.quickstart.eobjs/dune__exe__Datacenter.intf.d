examples/datacenter.mli:
