examples/origin_validation.ml: Bgp Dataset Fmt List Option Rpki Scenario String Xprogs
