examples/quickstart.mli:
