examples/datacenter.ml: Fmt List Scenario String
