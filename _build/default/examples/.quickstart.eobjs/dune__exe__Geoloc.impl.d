examples/geoloc.ml: Bgp Bytes Fmt Frrouting List Netsim Xprogs
