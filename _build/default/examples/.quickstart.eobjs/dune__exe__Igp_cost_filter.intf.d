examples/igp_cost_filter.mli:
