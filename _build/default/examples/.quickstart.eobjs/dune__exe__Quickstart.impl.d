examples/quickstart.ml: Bgp Ebpf Fmt Frrouting Netsim Xbgp
