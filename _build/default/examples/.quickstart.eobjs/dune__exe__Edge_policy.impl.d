examples/edge_policy.ml: Bgp Dataset Fmt Frrouting List Netsim String Xbgp Xprogs
