examples/geoloc.mli:
