examples/origin_validation.mli:
