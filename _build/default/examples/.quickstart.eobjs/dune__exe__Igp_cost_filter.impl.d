examples/igp_cost_filter.ml: Bgp Fmt Frrouting Igp List Netsim Option Xbgp Xprogs
