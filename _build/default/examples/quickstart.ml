(* Quickstart: write an xBGP extension, verify it, load it into a running
   BGP daemon through a manifest, and watch it act on live routes.

     dune exec examples/quickstart.exe

   The extension is a tiny inbound filter that rejects any route whose
   AS path is longer than 4 hops — a classic operator policy that, before
   xBGP, required vendor CLI support. *)

open Ebpf.Asm
open Ebpf.Insn

(* 1. The extension bytecode: reject if as_path_len > 4, else defer to
   the host's native policy via next(). *)
let max_len_filter =
  assemble
    [
      movi R1 Bgp.Attr.code_as_path;
      call Xbgp.Api.h_get_attr;
      jeqi R0 0 "defer";
      (* TLV payload: segments of (type, count, count * 4-byte ASNs) *)
      mov R6 R0;
      ldxh R7 R6 2;
      be16 R7;
      (* r7 = payload length *)
      movi R3 0;
      (* offset *)
      movi R9 0;
      (* hop count *)
      label "seg";
      mov R4 R3;
      addi R4 2;
      jgt R4 R7 "done";
      mov R4 R6;
      add R4 R3;
      ldxb R5 R4 5;
      (* count *)
      add R9 R5;
      mov R2 R5;
      lshi R2 2;
      addi R2 2;
      add R3 R2;
      ja "seg";
      label "done";
      jgti R9 4 "reject";
      label "defer";
      call Xbgp.Api.h_next;
      movi R0 0;
      exit_;
      label "reject";
      movi R0 1;
      (* FILTER_REJECT *)
      exit_;
    ]

let program =
  Xbgp.Xprog.v ~name:"max_path_len"
    ~allowed_helpers:Xbgp.Api.[ h_next; h_get_attr ]
    [ ("import", max_len_filter) ]

let () =
  (* 2. Inspect what we wrote: disassemble and verify. *)
  print_endline "=== extension bytecode ===";
  print_string (Ebpf.Disasm.program_to_string max_len_filter);
  (match Ebpf.Verifier.check max_len_filter with
  | Ok () -> print_endline "verifier: OK"
  | Error es ->
    Fmt.pr "verifier rejected: %a@." (Fmt.list Ebpf.Verifier.pp_error) es;
    exit 1);

  (* 3. Build a VMM and load the program through a manifest, as a router
     configuration would. *)
  let manifest_text =
    "program max_path_len\n\
     attach max_path_len import BGP_INBOUND_FILTER 0\n"
  in
  let manifest =
    match Xbgp.Manifest.parse manifest_text with
    | Ok m -> m
    | Error e -> failwith e
  in
  let vmm = Xbgp.Vmm.create ~host:"dut" () in
  let registry name = if name = "max_path_len" then Some program else None in
  (match Xbgp.Manifest.load vmm ~registry manifest with
  | Ok () -> print_endline "manifest loaded"
  | Error e -> failwith e);

  (* 4. A live two-router setup: upstream feeds routes with paths of
     different lengths into a DUT running the extension. *)
  let sched = Netsim.Sched.create () in
  let a_addr = Bgp.Prefix.addr_of_quad (10, 0, 0, 1) in
  let b_addr = Bgp.Prefix.addr_of_quad (10, 0, 0, 2) in
  let pa, pb = Netsim.Pipe.create sched in
  let upstream =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name:"upstream" ~router_id:a_addr
         ~local_as:65001 ~local_addr:a_addr ())
      [ { pname = "dut"; remote_as = 65000; remote_addr = b_addr;
          rr_client = false; port = pa } ]
  in
  let dut =
    Frrouting.Bgpd.create ~vmm ~sched
      (Frrouting.Bgpd.config ~name:"dut" ~router_id:b_addr ~local_as:65000
         ~local_addr:b_addr ())
      [ { pname = "upstream"; remote_as = 65001; remote_addr = a_addr;
          rr_client = false; port = pb } ]
  in
  Frrouting.Bgpd.start upstream;
  Frrouting.Bgpd.start dut;
  ignore (Netsim.Sched.run ~until:(5 * 1_000_000) sched);

  let announce prefix path =
    Frrouting.Bgpd.originate upstream (Bgp.Prefix.of_string prefix)
      [
        Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
        Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq path ]);
        Bgp.Attr.v (Bgp.Attr.Next_hop a_addr);
      ]
  in
  announce "203.0.113.0/24" [ 4200; 4201 ];
  announce "198.51.100.0/24" [ 4300; 4301; 4302; 4303; 4304; 4305 ];
  ignore (Netsim.Sched.run ~until:(10 * 1_000_000) sched);

  (* 5. Observe: the short path passed, the long one was filtered. Note
     that the DUT's eBGP import sees the path with the upstream AS
     prepended (3 and 7 hops). *)
  let show prefix =
    let p = Bgp.Prefix.of_string prefix in
    match Frrouting.Bgpd.best_route dut p with
    | Some r ->
      Fmt.pr "%-18s accepted (path length %d)@." prefix r.attrs.as_path_len
    | None -> Fmt.pr "%-18s rejected by the extension@." prefix
  in
  print_endline "=== routing state on the DUT ===";
  show "203.0.113.0/24";
  show "198.51.100.0/24";
  let stats = Xbgp.Vmm.stats vmm in
  Fmt.pr "vmm: %d bytecode runs, %d next() calls, %d faults@." stats.runs
    stats.next_calls stats.faults
