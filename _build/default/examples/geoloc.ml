(* The GeoLoc use case of §2 / Fig. 2, end to end.

     dune exec examples/geoloc.exe

   Two border routers of AS 65000 — one in Brussels, one in Sydney — each
   learn routes from an external peer, stamp them with a GeoLoc attribute
   (code 42) recording where they entered the network, and propagate them
   over iBGP to a core router in Paris. The core filters away routes
   learned too far away ("filtering away routes that are more than x
   kilometers away").

   This exercises all four GeoLoc bytecodes: the border stamps at
   BGP_INBOUND_FILTER, emits the unknown attribute at BGP_ENCODE_MESSAGE
   (the native encoder cannot), the core recovers it at
   BGP_RECEIVE_MESSAGE (the native parser drops it) and filters at
   BGP_INBOUND_FILTER. *)

let addr = Bgp.Prefix.addr_of_quad

let coords_of ~lat ~lon =
  Xprogs.Util.encode_coords
    ~lat:(Xprogs.Util.coord_of_degrees lat)
    ~lon:(Xprogs.Util.coord_of_degrees lon)

(* squared "coordinate distance" budget: ~30 degrees in the fixed-point
   encoding (1 unit = 1/1000 degree) *)
let max_dist2 =
  let d = 30_000 in
  Xprogs.Util.encode_u32 (d * d)

let geoloc_vmm host = Xprogs.Registry.vmm_of_manifest ~host Xprogs.Geoloc.manifest

let () =
  let sched = Netsim.Sched.create () in
  let mk_addr i = addr (10, 1, 0, i) in
  let core_addr = mk_addr 1
  and brussels_addr = mk_addr 2
  and sydney_addr = mk_addr 3
  and feeder_b_addr = mk_addr 4
  and feeder_s_addr = mk_addr 5 in
  (* pipes: feeder_b -- brussels -- core -- sydney -- feeder_s *)
  let fb_a, fb_b = Netsim.Pipe.create sched in
  let bc_a, bc_b = Netsim.Pipe.create sched in
  let sc_a, sc_b = Netsim.Pipe.create sched in
  let fs_a, fs_b = Netsim.Pipe.create sched in
  let frr_peer ?(rr_client = false) pname remote_as remote_addr port =
    { Frrouting.Bgpd.pname; remote_as; remote_addr; rr_client; port }
  in
  let feeder name fa own pipe prefix =
    let d =
      Frrouting.Bgpd.create ~sched
        (Frrouting.Bgpd.config ~name ~router_id:own ~local_as:fa
           ~local_addr:own ())
        [ frr_peer "border" 65000 0 pipe ]
    in
    Frrouting.Bgpd.originate d
      (Bgp.Prefix.of_string prefix)
      [
        Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
        Bgp.Attr.v (Bgp.Attr.As_path []);
        Bgp.Attr.v (Bgp.Attr.Next_hop own);
      ];
    d
  in
  let feeder_b = feeder "feeder-brussels" 64501 feeder_b_addr fb_a "203.0.113.0/24" in
  let feeder_s = feeder "feeder-sydney" 64502 feeder_s_addr fs_a "198.51.100.0/24" in
  let border name own peer_feeder_as feeder_addr feeder_pipe core_pipe ~lat
      ~lon =
    Frrouting.Bgpd.create ~vmm:(geoloc_vmm name) ~sched
      (Frrouting.Bgpd.config ~name ~router_id:own ~local_as:65000
         ~local_addr:own
         ~xtras:[ ("coords", coords_of ~lat ~lon) ]
         ())
      [
        frr_peer "feeder" peer_feeder_as feeder_addr feeder_pipe;
        frr_peer "core" 65000 core_addr core_pipe;
      ]
  in
  let brussels =
    border "brussels" brussels_addr 64501 feeder_b_addr fb_b bc_a ~lat:50.85
      ~lon:4.35
  in
  let sydney =
    border "sydney" sydney_addr 64502 feeder_s_addr fs_b sc_a ~lat:(-33.87)
      ~lon:151.21
  in
  (* the Paris core: recovers GeoLoc from the wire and filters on it *)
  let core =
    Frrouting.Bgpd.create ~vmm:(geoloc_vmm "core") ~sched
      (Frrouting.Bgpd.config ~name:"core" ~router_id:core_addr
         ~local_as:65000 ~local_addr:core_addr
         ~xtras:
           [
             ("coords", coords_of ~lat:48.85 ~lon:2.35);
             ("geo_max_dist2", max_dist2);
           ]
         ())
      [
        frr_peer "brussels" 65000 brussels_addr bc_b;
        frr_peer "sydney" 65000 sydney_addr sc_b;
      ]
  in
  List.iter Frrouting.Bgpd.start [ feeder_b; feeder_s; brussels; sydney; core ];
  ignore (Netsim.Sched.run ~until:(20 * 1_000_000) sched);

  let decode_geoloc payload =
    let lat = Bgp.Attr.(get_u32 (Bytes.of_string payload) 0 8) in
    let lon = Bgp.Attr.(get_u32 (Bytes.of_string payload) 4 8) in
    ( (float_of_int lat /. 1000.) -. 500.,
      (float_of_int lon /. 1000.) -. 500. )
  in
  let show daemon name prefix =
    let p = Bgp.Prefix.of_string prefix in
    match Frrouting.Bgpd.best_route daemon p with
    | Some r -> (
      match
        List.find_opt (fun (c, _, _) -> c = 42) r.attrs.extra
      with
      | Some (_, _, payload) ->
        let lat, lon = decode_geoloc payload in
        Fmt.pr "%-10s %-18s GeoLoc = (%.2f, %.2f)@." name prefix lat lon
      | None -> Fmt.pr "%-10s %-18s no GeoLoc attribute@." name prefix)
    | None -> Fmt.pr "%-10s %-18s filtered (too far away)@." name prefix
  in
  print_endline "=== border routers stamp entry coordinates ===";
  show brussels "brussels" "203.0.113.0/24";
  show sydney "sydney" "198.51.100.0/24";
  print_endline "";
  print_endline
    "=== the Paris core recovers GeoLoc over iBGP and filters >30 degrees ===";
  show core "core" "203.0.113.0/24";
  show core "core" "198.51.100.0/24"
