(* §3.4: validating BGP prefix origins with an xBGP extension.

     dune exec examples/origin_validation.exe

   The Fig. 3 pipeline with eBGP sessions: the DUT "does not implement
   the RPKI-Rtr protocol but loads a file" of ROAs (75% of the injected
   prefixes valid). The extension validates the origin of each prefix —
   tagging it with a community — but does not discard the invalid ones,
   exactly as in the paper's experiment. *)

let () =
  let n = 2_000 in
  let routes =
    Dataset.Ris_gen.generate
      { Dataset.Ris_gen.default_config with count = n; disjoint = true }
  in
  let roas =
    Dataset.Ris_gen.roas_for ~seed:7 ~valid_pct:75 ~invalid_pct:13 routes
  in
  (* the "file" of ROAs the DUT loads *)
  let roa_file = String.concat "\n" (List.map Rpki.Roa.to_line roas) in
  let parsed = Rpki.Roa.parse_lines roa_file in
  Fmt.pr "loaded %d ROAs from the ROA file@." (List.length parsed);

  let tb =
    Scenario.Testbed.create
      (Scenario.Testbed.mode ~host:`Frr ~ibgp:false
         ~manifest:Xprogs.Origin_validation.manifest
         ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table parsed) ]
         ())
  in
  Scenario.Testbed.establish tb;
  Scenario.Testbed.feed tb routes;
  if not (Scenario.Testbed.run_until_downstream_has tb n) then
    failwith "pipeline did not converge";

  let valid = ref 0 and invalid = ref 0 and notfound = ref 0 in
  List.iter
    (fun (r : Dataset.Ris_gen.route) ->
      match
        Scenario.Daemon.best_communities
          (Scenario.Daemon.Frr tb.downstream) r.prefix
      with
      | Some cs when List.mem 0xFFFF0001 cs -> incr valid
      | Some cs when List.mem 0xFFFF0002 cs -> incr invalid
      | Some cs when List.mem 0xFFFF0003 cs -> incr notfound
      | _ -> ())
    routes;
  Fmt.pr "downstream received %d/%d routes (none discarded)@."
    (Scenario.Testbed.downstream_count tb)
    n;
  Fmt.pr "validation tags: valid=%d (%.1f%%) invalid=%d not-found=%d@."
    !valid
    (100. *. float_of_int !valid /. float_of_int n)
    !invalid !notfound;
  print_endline "";
  print_endline "sample of tagged routes on the downstream router:";
  List.iteri
    (fun i (r : Dataset.Ris_gen.route) ->
      if i < 5 then
        let tag =
          match
            Scenario.Daemon.best_communities
              (Scenario.Daemon.Frr tb.downstream) r.prefix
          with
          | Some cs when List.mem 0xFFFF0001 cs -> "valid"
          | Some cs when List.mem 0xFFFF0002 cs -> "invalid"
          | Some cs when List.mem 0xFFFF0003 cs -> "not-found"
          | _ -> "?"
        in
        Fmt.pr "  %-20s origin AS%-6d -> %s@."
          (Bgp.Prefix.to_string r.prefix)
          (Option.value ~default:0 (Dataset.Ris_gen.origin_as r))
          tag)
    routes
