(* §3.3 / Fig. 5: BGP in the data center, three ways.

     dune exec examples/datacenter.exe

   Runs the Fig. 5 Clos fabric (2 spines, 4 leaves, 4 ToRs, one transit
   provider) under three configurations and audits the outcome:

   - plain       distinct ASNs, no valley protection;
   - same-AS     the operational trick: S1/S2 (and leaf pairs) share an
                 AS so ordinary loop prevention blocks valleys — at the
                 price of partitioning under double failures;
   - xBGP        distinct ASNs plus the valley_free extension bytecode
                 loaded on every router. *)

let pp_path f r t =
  match Scenario.Fabric.path f r t with
  | Some p -> "[" ^ String.concat " " (List.map string_of_int p) ^ "]"
  | None -> "(unreachable)"

let () =
  print_endline "=== steady state: is the external prefix reached without a valley? ===";
  List.iter
    (fun (config, label) ->
      let f = Scenario.Fabric.build ~with_transit:true config in
      Scenario.Fabric.start f;
      Scenario.Fabric.settle f 30;
      Fmt.pr "%-8s S2 -> external: %-28s T20 -> T23 rack: %s@." label
        (pp_path f "S2" "EXT") (pp_path f "T20" "T23"))
    [ (`Plain, "plain"); (`Same_as, "same-AS"); (`Xbgp, "xBGP") ];
  print_endline "";
  print_endline
    "=== double failure (L10-S1 and L13-S2 down): can L10 still reach L13? ===";
  List.iter
    (fun (config, label) ->
      let f = Scenario.Fabric.build config in
      Scenario.Fabric.start f;
      Scenario.Fabric.settle f 30;
      Scenario.Fabric.fail_link f "L10" "S1";
      Scenario.Fabric.fail_link f "L13" "S2";
      Scenario.Fabric.settle f 60;
      Fmt.pr "%-8s L10 -> L13: %s@." label (pp_path f "L10" "L13"))
    [ (`Plain, "plain"); (`Same_as, "same-AS"); (`Xbgp, "xBGP") ];
  print_endline "";
  print_endline
    "The same-AS trick partitions the fabric; xBGP keeps the recovery path\n\
     (a valley towards a fabric-internal destination) while still blocking\n\
     valleys towards the transit provider's prefixes."
