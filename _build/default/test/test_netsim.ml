(* Discrete-event scheduler and pipe tests, plus the BGP session FSM over
   a simulated link. *)

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool

(* --- scheduler --- *)

let test_sched_ordering () =
  let s = Netsim.Sched.create () in
  let log = ref [] in
  Netsim.Sched.after s 30 (fun () -> log := 3 :: !log);
  Netsim.Sched.after s 10 (fun () -> log := 1 :: !log);
  Netsim.Sched.after s 20 (fun () -> log := 2 :: !log);
  ignore (Netsim.Sched.run s);
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check Alcotest.int "clock at last event" 30 (Netsim.Sched.now s)

let test_sched_fifo_ties () =
  let s = Netsim.Sched.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Netsim.Sched.after s 5 (fun () -> log := i :: !log)
  done;
  ignore (Netsim.Sched.run s);
  check
    Alcotest.(list int)
    "same-time events fire in scheduling order"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !log)

let test_sched_nested () =
  (* events scheduled during execution run in the same pass *)
  let s = Netsim.Sched.create () in
  let hits = ref 0 in
  Netsim.Sched.after s 1 (fun () ->
      incr hits;
      Netsim.Sched.after s 1 (fun () -> incr hits));
  ignore (Netsim.Sched.run s);
  check Alcotest.int "nested events" 2 !hits

let test_sched_run_until_limit () =
  let s = Netsim.Sched.create () in
  let hits = ref 0 in
  for _ = 1 to 5 do
    Netsim.Sched.after s 100 (fun () -> incr hits)
  done;
  Netsim.Sched.after s 1000 (fun () -> incr hits);
  ignore (Netsim.Sched.run ~until:500 s);
  check Alcotest.int "only events before the limit" 5 !hits;
  check Alcotest.int "clock at limit" 500 (Netsim.Sched.now s);
  check Alcotest.int "pending event kept" 1 (Netsim.Sched.pending s)

let test_sched_negative_delay () =
  let s = Netsim.Sched.create () in
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Sched.after: negative delay") (fun () ->
      Netsim.Sched.after s (-1) ignore)

let test_sched_many_events () =
  (* heap stress: 10k events in random-ish order drain monotonically *)
  let s = Netsim.Sched.create () in
  let last = ref (-1) in
  let ok = ref true in
  for i = 0 to 9_999 do
    let t = (i * 7919) mod 10_000 in
    Netsim.Sched.after s t (fun () ->
        if Netsim.Sched.now s < !last then ok := false;
        last := Netsim.Sched.now s)
  done;
  ignore (Netsim.Sched.run s);
  check_bool "monotonic time" true !ok

(* --- pipes --- *)

let test_pipe_delivery () =
  let s = Netsim.Sched.create () in
  let a, b = Netsim.Pipe.create ~latency:50 s in
  let got = ref [] in
  Netsim.Pipe.set_receiver b (fun c -> got := Bytes.to_string c :: !got);
  Netsim.Pipe.send a (Bytes.of_string "one");
  Netsim.Pipe.send a (Bytes.of_string "two");
  ignore (Netsim.Sched.run s);
  check Alcotest.(list string) "in order" [ "one"; "two" ] (List.rev !got);
  check Alcotest.int "latency applied" 50 (Netsim.Sched.now s);
  check Alcotest.int "tx bytes" 6 (Netsim.Pipe.bytes_sent a)

let test_pipe_backlog () =
  (* chunks arriving before a receiver is installed are not lost *)
  let s = Netsim.Sched.create () in
  let a, b = Netsim.Pipe.create s in
  Netsim.Pipe.send a (Bytes.of_string "early");
  ignore (Netsim.Sched.run s);
  let got = ref [] in
  Netsim.Pipe.set_receiver b (fun c -> got := Bytes.to_string c :: !got);
  check Alcotest.(list string) "backlog flushed" [ "early" ] !got

let test_pipe_failure () =
  let s = Netsim.Sched.create () in
  let a, b = Netsim.Pipe.create s in
  let got = ref 0 in
  Netsim.Pipe.set_receiver b (fun _ -> incr got);
  Netsim.Pipe.set_up a false;
  Netsim.Pipe.send a (Bytes.of_string "lost");
  ignore (Netsim.Sched.run s);
  check Alcotest.int "dropped while down" 0 !got;
  Netsim.Pipe.set_up a true;
  Netsim.Pipe.send a (Bytes.of_string "ok");
  ignore (Netsim.Sched.run s);
  check Alcotest.int "delivered after repair" 1 !got

(* --- BGP session FSM --- *)

let null_callbacks =
  {
    Session.Fsm.on_update = (fun _ ~raw:_ -> ());
    on_established = ignore;
    on_close = ignore;
  }

let make_session_pair ?(hold = 9) s =
  let a, b = Netsim.Pipe.create s in
  let mk port local_id peer_as =
    Session.Fsm.create s port
      { Session.Fsm.local_as = 65000; local_id; peer_as; hold_time = hold }
      null_callbacks
  in
  (mk a 1 65000, mk b 2 65000)

let test_session_establishment () =
  let s = Netsim.Sched.create () in
  let sa, sb = make_session_pair s in
  Session.Fsm.start sa;
  Session.Fsm.start sb;
  ignore (Netsim.Sched.run ~until:1_000_000 s);
  check_bool "a established" true (Session.Fsm.is_established sa);
  check_bool "b established" true (Session.Fsm.is_established sb);
  check Alcotest.int "peer id learned" 2 (Session.Fsm.peer_id sa)

let test_session_wrong_as () =
  let s = Netsim.Sched.create () in
  let a, b = Netsim.Pipe.create s in
  let mk port local_id peer_as =
    Session.Fsm.create s port
      { Session.Fsm.local_as = 65000; local_id; peer_as; hold_time = 9 }
      null_callbacks
  in
  let sa = mk a 1 65099 (* expects the wrong AS *) in
  let sb = mk b 2 65000 in
  Session.Fsm.start sa;
  Session.Fsm.start sb;
  ignore (Netsim.Sched.run ~until:1_000_000 s);
  check_bool "a refused" false (Session.Fsm.is_established sa)

let test_session_hold_timer () =
  let s = Netsim.Sched.create () in
  let closed = ref false in
  let a, b = Netsim.Pipe.create s in
  let sa =
    Session.Fsm.create s a
      { Session.Fsm.local_as = 65000; local_id = 1; peer_as = 65000; hold_time = 9 }
      { null_callbacks with on_close = (fun _ -> closed := true) }
  in
  let sb =
    Session.Fsm.create s b
      { Session.Fsm.local_as = 65000; local_id = 2; peer_as = 65000; hold_time = 9 }
      null_callbacks
  in
  Session.Fsm.start sa;
  Session.Fsm.start sb;
  ignore (Netsim.Sched.run ~until:1_000_000 s);
  check_bool "established" true (Session.Fsm.is_established sa);
  (* silence the peer: the hold timer must fire within ~hold seconds *)
  Netsim.Pipe.set_up a false;
  ignore (Netsim.Sched.run ~until:((1 + 30) * 1_000_000) s);
  check_bool "session closed by hold timer" true !closed;
  check_bool "back to idle" false (Session.Fsm.is_established sa)

let test_session_update_exchange () =
  let s = Netsim.Sched.create () in
  let received = ref [] in
  let a, b = Netsim.Pipe.create s in
  let sa =
    Session.Fsm.create s a
      { Session.Fsm.local_as = 65000; local_id = 1; peer_as = 65000; hold_time = 30 }
      null_callbacks
  in
  let sb =
    Session.Fsm.create s b
      { Session.Fsm.local_as = 65000; local_id = 2; peer_as = 65000; hold_time = 30 }
      {
        null_callbacks with
        on_update =
          (fun u ~raw:_ ->
            received := List.map Bgp.Prefix.to_string u.nlri @ !received);
      }
  in
  Session.Fsm.start sa;
  Session.Fsm.start sb;
  ignore (Netsim.Sched.run ~until:1_000_000 s);
  Session.Fsm.send_update sa
    {
      Bgp.Message.update_empty with
      attrs =
        [
          Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
          Bgp.Attr.v (Bgp.Attr.As_path []);
          Bgp.Attr.v (Bgp.Attr.Next_hop 1);
        ];
      nlri = [ Bgp.Prefix.of_string "10.0.0.0/8" ];
    };
  ignore (Netsim.Sched.run ~until:2_000_000 s);
  check Alcotest.(list string) "update delivered" [ "10.0.0.0/8" ] !received

let () =
  Alcotest.run "netsim"
    [
      ( "sched",
        [
          Alcotest.test_case "ordering" `Quick test_sched_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_sched_fifo_ties;
          Alcotest.test_case "nested" `Quick test_sched_nested;
          Alcotest.test_case "run until" `Quick test_sched_run_until_limit;
          Alcotest.test_case "heap stress" `Quick test_sched_many_events;
          Alcotest.test_case "negative delay" `Quick
            test_sched_negative_delay;
        ] );
      ( "pipe",
        [
          Alcotest.test_case "delivery" `Quick test_pipe_delivery;
          Alcotest.test_case "backlog" `Quick test_pipe_backlog;
          Alcotest.test_case "failure" `Quick test_pipe_failure;
        ] );
      ( "session",
        [
          Alcotest.test_case "establishment" `Quick test_session_establishment;
          Alcotest.test_case "wrong AS refused" `Quick test_session_wrong_as;
          Alcotest.test_case "hold timer" `Quick test_session_hold_timer;
          Alcotest.test_case "update exchange" `Quick
            test_session_update_exchange;
        ] );
    ]
