(* Dataset tests: deterministic PRNG, the synthetic RIS generator's
   statistical shape, the ROA split, the Fig. 1 dataset, and the Fig. 5
   Clos description. *)

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool

(* --- PRNG --- *)

let test_prng_determinism () =
  let a = Dataset.Prng.create 7 and b = Dataset.Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Dataset.Prng.next_int64 a)
      (Dataset.Prng.next_int64 b)
  done

let test_prng_ranges () =
  let rng = Dataset.Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Dataset.Prng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10);
    let f = Dataset.Prng.float rng in
    check_bool "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_prng_rough_uniformity () =
  let rng = Dataset.Prng.create 99 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Dataset.Prng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i n ->
      check_bool
        (Printf.sprintf "bucket %d roughly uniform (%d)" i n)
        true
        (n > 700 && n < 1300))
    buckets

(* --- RIS generator --- *)

let cfg n = { Dataset.Ris_gen.default_config with count = n }

let test_ris_deterministic () =
  let a = Dataset.Ris_gen.generate (cfg 500) in
  let b = Dataset.Ris_gen.generate (cfg 500) in
  check_bool "same seed, same table" true (a = b);
  let c =
    Dataset.Ris_gen.generate { (cfg 500) with seed = 43 }
  in
  check_bool "different seed differs" true (a <> c)

let test_ris_distinct_prefixes () =
  let routes = Dataset.Ris_gen.generate (cfg 2000) in
  check Alcotest.int "count" 2000 (List.length routes);
  let seen = Hashtbl.create 2048 in
  List.iter
    (fun (r : Dataset.Ris_gen.route) ->
      check_bool "distinct" false (Hashtbl.mem seen r.prefix);
      Hashtbl.replace seen r.prefix ())
    routes

let test_ris_disjoint () =
  let routes =
    Dataset.Ris_gen.generate { (cfg 1000) with disjoint = true }
  in
  let trie = Rib.Ptrie.create () in
  List.iter
    (fun (r : Dataset.Ris_gen.route) ->
      check_bool "no overlap" false (Rib.Ptrie.overlaps trie r.prefix);
      ignore (Rib.Ptrie.replace trie r.prefix ()))
    routes

let test_ris_shape () =
  let routes = Dataset.Ris_gen.generate (cfg 5000) in
  let len24 =
    List.length
      (List.filter
         (fun (r : Dataset.Ris_gen.route) -> Bgp.Prefix.len r.prefix = 24)
         routes)
  in
  (* /24 should be the dominant length, around 55% *)
  check_bool "many /24s" true (len24 > 2300 && len24 < 3300);
  (* every route has the mandatory attributes *)
  List.iter
    (fun (r : Dataset.Ris_gen.route) ->
      let has f = List.exists f r.attrs in
      check_bool "origin" true
        (has (fun (a : Bgp.Attr.t) ->
             match a.value with Bgp.Attr.Origin _ -> true | _ -> false));
      check_bool "as-path" true
        (has (fun a ->
             match a.value with Bgp.Attr.As_path _ -> true | _ -> false));
      check_bool "next-hop" true
        (has (fun a ->
             match a.value with Bgp.Attr.Next_hop _ -> true | _ -> false)))
    routes;
  (* mean path length in the realistic band *)
  let total_len =
    List.fold_left
      (fun acc (r : Dataset.Ris_gen.route) ->
        acc
        + List.fold_left
            (fun acc (a : Bgp.Attr.t) ->
              match a.value with
              | Bgp.Attr.As_path segs -> acc + Bgp.Attr.as_path_length segs
              | _ -> acc)
            0 r.attrs)
      0 routes
  in
  let mean = float_of_int total_len /. 5000. in
  check_bool "mean path length 3.5..5.5" true (mean > 3.5 && mean < 5.5)

let test_roa_split () =
  let routes =
    Dataset.Ris_gen.generate { (cfg 4000) with disjoint = true }
  in
  let roas =
    Dataset.Ris_gen.roas_for ~seed:5 ~valid_pct:75 ~invalid_pct:13 routes
  in
  let n = List.length roas in
  (* 88% of routes should have a ROA *)
  check_bool "roa count near 88%" true (n > 3300 && n < 3750);
  (* validation split approximates 75 / 13 / 12 *)
  let store = Rpki.Store_hash.of_list roas in
  let count v =
    List.length
      (List.filter
         (fun (r : Dataset.Ris_gen.route) ->
           Rpki.Store_hash.validate store r.prefix
             (Option.value ~default:1 (Dataset.Ris_gen.origin_as r))
           = v)
         routes)
  in
  let valid = count Rpki.Roa.Valid in
  let invalid = count Rpki.Roa.Invalid in
  let notfound = count Rpki.Roa.Not_found in
  check_bool "valid ~75%" true (valid > 2800 && valid < 3200);
  check_bool "invalid ~13%" true (invalid > 350 && invalid < 700);
  check_bool "notfound ~12%" true (notfound > 300 && notfound < 650);
  check Alcotest.int "partition" 4000 (valid + invalid + notfound)

(* --- Fig. 1 dataset --- *)

let test_rfc_delays () =
  check Alcotest.int "forty RFCs" 40 (List.length Dataset.Rfc_delays.entries);
  let m = Dataset.Rfc_delays.median () in
  check_bool "median = 3.5 (paper)" true (m > 3.4 && m < 3.6);
  check_bool "max ~ a decade (paper)" true
    (Dataset.Rfc_delays.max_delay () > 9.);
  let cdf = Dataset.Rfc_delays.cdf () in
  check Alcotest.int "cdf points" 40 (List.length cdf);
  (* the cdf is monotone and ends at 1 *)
  let rec mono = function
    | (d1, f1) :: ((d2, f2) :: _ as rest) ->
      d1 <= d2 && f1 <= f2 && mono rest
    | _ -> true
  in
  check_bool "monotone" true (mono cdf);
  check_bool "ends at 1.0" true (snd (List.nth cdf 39) = 1.0)

(* --- Clos description --- *)

let test_clos_structure () =
  let c = Dataset.Clos.fig5 ~with_transit:true () in
  check Alcotest.int "11 routers" 11 (List.length c.routers);
  (* 2 transit links + 4 leaves x 2 spines + 8 pod links *)
  check Alcotest.int "18 links" 18 (List.length c.links);
  (* distinct ASNs in the default configuration *)
  let asns = List.map (fun (r : Dataset.Clos.router) -> r.asn) c.routers in
  check Alcotest.int "distinct asns" 11
    (List.length (List.sort_uniq compare asns));
  (* every adjacent-level link contributes a (child, parent) pair *)
  check Alcotest.int "pairs" 18 (List.length c.vf_pairs);
  List.iter
    (fun (child, parent) ->
      let level asn =
        (List.find (fun (r : Dataset.Clos.router) -> r.asn = asn) c.routers)
          .level
      in
      check_bool "child strictly below parent" true
        (level child > level parent))
    c.vf_pairs;
  (* internal = everything but the transit AS *)
  check Alcotest.int "internal asns" 10 (List.length c.internal_asns);
  check_bool "transit not internal" false
    (List.mem 64900 c.internal_asns)

let test_clos_same_as () =
  let c = Dataset.Clos.fig5 ~same_spine_as:true () in
  let asn name = (Dataset.Clos.router c name).asn in
  check Alcotest.int "spines share" (asn "S1") (asn "S2");
  check Alcotest.int "leaf pair 1 shares" (asn "L10") (asn "L11");
  check Alcotest.int "leaf pair 2 shares" (asn "L12") (asn "L13");
  check_bool "pairs differ" true (asn "L10" <> asn "L12")

let test_clos_loopbacks_unique () =
  let c = Dataset.Clos.fig5 ~with_transit:true () in
  let loopbacks =
    List.map (fun (r : Dataset.Clos.router) -> r.loopback) c.routers
  in
  check Alcotest.int "unique prefixes" 11
    (List.length (List.sort_uniq compare loopbacks))

let () =
  Alcotest.run "dataset"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "uniformity" `Quick test_prng_rough_uniformity;
        ] );
      ( "ris",
        [
          Alcotest.test_case "deterministic" `Quick test_ris_deterministic;
          Alcotest.test_case "distinct prefixes" `Quick
            test_ris_distinct_prefixes;
          Alcotest.test_case "disjoint option" `Quick test_ris_disjoint;
          Alcotest.test_case "statistical shape" `Quick test_ris_shape;
          Alcotest.test_case "ROA split" `Quick test_roa_split;
        ] );
      ( "fig1",
        [ Alcotest.test_case "RFC delay dataset" `Quick test_rfc_delays ] );
      ( "clos",
        [
          Alcotest.test_case "structure" `Quick test_clos_structure;
          Alcotest.test_case "same-AS mode" `Quick test_clos_same_as;
          Alcotest.test_case "unique loopbacks" `Quick
            test_clos_loopbacks_unique;
        ] );
    ]
