test/test_xbgp.mli:
