test/test_xprogs.ml: Alcotest Bgp Buffer Bytes Int32 List Option Printf QCheck2 QCheck_alcotest Rpki String Xbgp Xprogs
