test/test_hosts.ml: Alcotest Array Bgp Bird Bytes Frrouting Hashtbl List Netsim QCheck2 QCheck_alcotest
