test/test_igp.ml: Alcotest Array Hashtbl Igp List QCheck2 QCheck_alcotest
