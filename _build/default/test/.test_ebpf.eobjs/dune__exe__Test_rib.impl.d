test/test_rib.ml: Alcotest Bgp Hashtbl Int List QCheck2 QCheck_alcotest Rib
