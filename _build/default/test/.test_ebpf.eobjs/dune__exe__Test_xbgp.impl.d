test/test_xbgp.ml: Alcotest Bytes Ebpf Int64 List Printf Xbgp
