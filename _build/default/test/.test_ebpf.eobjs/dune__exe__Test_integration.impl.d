test/test_integration.ml: Alcotest Bgp Bird Bytes Dataset Ebpf Frrouting List Netsim Option Scenario Xbgp Xprogs
