test/test_netsim.ml: Alcotest Bgp Bytes List Netsim Session
