test/test_rpki.ml: Alcotest Bgp List Printf QCheck2 QCheck_alcotest Rpki String
