test/test_xprogs.mli:
