test/test_ebpf.ml: Alcotest Array Asm Bytes Char Disasm Ebpf Fmt Gen Insn Int32 Int64 List Memory Printf QCheck2 QCheck_alcotest String Test Verifier Vm Xbgp Xprogs
