test/test_hosts.mli:
