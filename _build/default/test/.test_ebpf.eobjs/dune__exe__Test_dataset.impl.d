test/test_dataset.ml: Alcotest Array Bgp Dataset Hashtbl List Option Printf Rib Rpki
