test/test_bgp.ml: Alcotest Attr Bgp Buffer Bytes List Message Prefix QCheck2 QCheck_alcotest
