(* xbgp-fuzz: the differential fuzzing driver.

   Campaign mode (default) generates seed-pinned cases and runs the
   differential oracle on each: identical inputs and identical extension
   bytecode through both the FRR-like and BIRD-like hosts, plus VM /
   verifier crash-safety scenarios in which every verifier-accepted
   program must behave identically — result, final registers, helper
   trace, VMM round trip — on all three eBPF engines (interpreter,
   closure-threaded, block-compiled). Every failing case is shrunk to a
   minimized, seed-pinned reproducer file.

   Replay mode (--replay FILE) regenerates a reproducer's case and
   re-runs the oracle on it.

   Fan-out mode (--fanout) runs the multi-peer update-group oracle
   instead: every case executes one star-topology scenario under both
   export modes (update groups on / off) and requires byte-identical
   per-peer UPDATE streams, adj-RIB-ins and Loc-RIBs on both hosts,
   across session churn and live regrouping.

   Exit status: 0 clean, 1 findings, 124 internal error. *)

let setup_logs ~quiet verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  (* vm_soup programs fault by design, and each fault is a host
     notification at Warning — keep those out of --quiet runs *)
  Logs.set_level
    (Some
       (if verbose then Logs.Debug
        else if quiet then Logs.Error
        else Logs.Warning))

let run_campaign ~cases ~seed ~out ~force_divergence ~quiet =
  let log s = if not quiet then print_endline s in
  let summary =
    Fuzz.Engine.campaign ?out ~perturb:force_divergence ~log ~seed ~cases ()
  in
  Fmt.pr "%a@." Fuzz.Engine.pp_summary summary;
  List.iter
    (fun (f : Fuzz.Engine.failure) ->
      Fmt.pr "@.FAILING %a@." Fuzz.Gen.pp_case f.case;
      List.iter (fun fi -> Fmt.pr "  %a@." Fuzz.Oracle.pp_finding fi) f.findings;
      Option.iter (Fmt.pr "  reproducer: %s@.") f.repro_path)
    summary.results;
  if summary.results = [] then 0 else 1

let run_fanout ~cases ~seed ~shards ~force_divergence ~quiet =
  let log s = if not quiet then print_endline s in
  let summary =
    Fuzz.Fanout.campaign ~perturb:force_divergence ~shards ~log ~seed ~cases ()
  in
  Fmt.pr "%a@." Fuzz.Fanout.pp_summary summary;
  List.iter
    (fun (c, findings) ->
      Fmt.pr "@.FAILING %a@." Fuzz.Fanout.pp_case c;
      List.iter (Fmt.pr "  %s@.") findings)
    summary.failures;
  if summary.failures = [] then 0 else 1

let run_chaos ~cases ~seed ~out ~shards ~force_divergence ~quiet =
  let log s = if not quiet then print_endline s in
  let summary =
    Fuzz.Chaos.campaign ?out ~perturb:force_divergence ~shards ~log ~seed
      ~cases ()
  in
  Fmt.pr "%a@." Fuzz.Chaos.pp_summary summary;
  List.iter
    (fun (f : Fuzz.Chaos.failure) ->
      Fmt.pr "@.FAILING %a@." Fuzz.Config_gen.pp_case f.case;
      List.iter (fun fi -> Fmt.pr "  %a@." Fuzz.Chaos.pp_finding fi) f.findings;
      Option.iter (Fmt.pr "  reproducer: %s@.") f.repro_path)
    summary.failures;
  if summary.failures = [] then 0 else 1

let run_chaos_replay path content =
  match Fuzz.Replay.Chaos.of_string content with
  | Error e ->
    Fmt.epr "xbgp-fuzz: cannot load %s: %s@." path e;
    124
  | Ok repro -> (
    match Fuzz.Chaos.replay repro with
    | Error e ->
      Fmt.epr "xbgp-fuzz: cannot replay %s: %s@." path e;
      124
    | Ok (case, findings, reproduced) ->
      Fmt.pr "replaying %a@." Fuzz.Config_gen.pp_case case;
      if repro.note <> "" then Fmt.pr "recorded: %s@." repro.note;
      (match findings with
      | [] ->
        Fmt.pr "no findings — the reproducer no longer fails@.";
        0
      | fs ->
        List.iter (fun f -> Fmt.pr "%a@." Fuzz.Chaos.pp_finding f) fs;
        if not reproduced then
          Fmt.pr
            "note: findings do not match the recorded divergence classes \
             (%s)@."
            (String.concat " " repro.classes);
        1))

let run_replay path =
  (* both reproducer formats are self-describing; route on the magic *)
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e ->
    Fmt.epr "xbgp-fuzz: cannot read %s: %s@." path e;
    124
  | content when Fuzz.Replay.Chaos.is_chaos content ->
    run_chaos_replay path content
  | _ -> (
  match Fuzz.Replay.load path with
  | Error e ->
    Fmt.epr "xbgp-fuzz: cannot load %s: %s@." path e;
    124
  | Ok repro -> (
    match Fuzz.Engine.replay repro with
    | Error e ->
      Fmt.epr "xbgp-fuzz: cannot replay %s: %s@." path e;
      124
    | Ok (case, findings) ->
      Fmt.pr "replaying %a@." Fuzz.Gen.pp_case case;
      if repro.note <> "" then Fmt.pr "recorded: %s@." repro.note;
      (match findings with
      | [] ->
        Fmt.pr "no findings — the reproducer no longer fails@.";
        0
      | fs ->
        List.iter (fun f -> Fmt.pr "%a@." Fuzz.Oracle.pp_finding f) fs;
        1)))

let run_sharded ~cases ~seed ~force_divergence ~quiet =
  let log s = if not quiet then print_endline s in
  let summary =
    Fuzz.Shard_oracle.campaign ~perturb:force_divergence ~log ~seed ~cases ()
  in
  Fmt.pr "%a@." Fuzz.Shard_oracle.pp_summary summary;
  List.iter
    (fun (c, findings) ->
      Fmt.pr "@.FAILING %a@." Fuzz.Shard_oracle.pp_case c;
      List.iter (Fmt.pr "  %s@.") findings)
    summary.failures;
  if summary.failures = [] then 0 else 1

open Cmdliner

let cases =
  let doc = "Number of generated cases in campaign mode." in
  Arg.(value & opt int 1000 & info [ "cases" ] ~docv:"N" ~doc)

let seed =
  let doc = "Master seed; every case derives deterministically from it." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let out =
  let doc = "Directory for minimized reproducer files." in
  Arg.(
    value
    & opt (some string) (Some "fuzz-out")
    & info [ "out" ] ~docv:"DIR" ~doc)

let no_out =
  let doc = "Do not write reproducer files." in
  Arg.(value & flag & info [ "no-out" ] ~doc)

let force_divergence =
  let doc =
    "Artificially corrupt the BIRD-side state (or, on VM scenarios, the \
     block-compiled engine's result) so the oracle, shrinker and replay \
     pipeline demonstrably fire (self-test mode)."
  in
  Arg.(value & flag & info [ "force-divergence" ] ~doc)

let replay =
  let doc = "Replay a reproducer file instead of running a campaign." in
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)

let caches =
  let doc =
    "Force the attribute-conversion caches on or off in both hosts for \
     the whole campaign (default: on, the deployment configuration). \
     Running both settings over the same seed checks that the caches \
     never change the xBGP-visible state."
  in
  Arg.(value & opt bool true & info [ "caches" ] ~docv:"BOOL" ~doc)

let fanout =
  let doc =
    "Run the multi-peer fan-out oracle instead of the main campaign: \
     the same star-topology scenario under grouped and per-peer export \
     must leave byte-identical per-peer UPDATE streams."
  in
  Arg.(value & flag & info [ "fanout" ] ~doc)

let sharded =
  let doc =
    "Run the sharding oracle instead of the main campaign: the same \
     star-topology scenario under shards=1 and shards=N (N in 2/3/8) \
     must leave an identical Loc-RIB, byte-identical per-peer UPDATE \
     streams and provenance, and an identical merged map state."
  in
  Arg.(value & flag & info [ "sharded" ] ~doc)

let shards =
  let doc =
    "Run every star DUT of the fan-out or chaos campaign with this many \
     worker domains (default 1, the sequential daemon) — the CI smoke \
     legs use 4."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let chaos =
  let doc =
    "Run the config-space chaos campaign instead of the main campaign: \
     every case draws a random point in the knob/topology matrix (host, \
     engine, caches, batching, update groups, span sampling, xprog \
     chains), runs it through a generated scenario under a seeded fault \
     schedule (session flaps, link failures, ROA swaps, live xprog \
     detach/attach), and asserts convergence within budget, \
     route-for-route equivalence across the knob grid, and telemetry \
     invariants. Failures are ddmin-shrunk over the fault schedule and \
     route table and written as seed-pinned chaos reproducers."
  in
  Arg.(value & flag & info [ "chaos" ] ~doc)

let quiet =
  let doc = "Only print the final summary." in
  Arg.(value & flag & info [ "quiet" ] ~doc)

let verbose =
  let doc = "Verbose daemon logging." in
  Arg.(value & flag & info [ "verbose" ] ~doc)

let main cases seed out no_out force_divergence caches fanout chaos sharded
    shards replay quiet verbose =
  setup_logs ~quiet verbose;
  Frrouting.Attr_intern.set_conversion_cache caches;
  Bird.Eattr.set_conversion_cache caches;
  match replay with
  | Some path -> run_replay path
  | None when sharded -> run_sharded ~cases ~seed ~force_divergence ~quiet
  | None when fanout -> run_fanout ~cases ~seed ~shards ~force_divergence ~quiet
  | None when chaos ->
    let out = if no_out then None else out in
    run_chaos ~cases ~seed ~out ~shards ~force_divergence ~quiet
  | None ->
    let out = if no_out then None else out in
    run_campaign ~cases ~seed ~out ~force_divergence ~quiet

let cmd =
  let doc = "differential fuzzer for the two xBGP host implementations" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Feeds identical generated route tables, wire frames and extension \
         bytecode through both the FRR-like and the BIRD-like daemon and \
         asserts that the xBGP-visible state (Loc-RIBs rendered in the \
         neutral attribute form) is identical; runs every \
         verifier-accepted generated program on all three eBPF engines \
         (interpreter, closure-threaded, block-compiled) and asserts \
         identical results, register files and helper traces; and checks \
         that the verifier and VM never let an exception escape on \
         arbitrary programs. Every failing case is shrunk and written as \
         a seed-pinned reproducer file (see $(b,--replay)).";
      `P
        "$(b,--chaos) switches to the config-space chaos campaign: \
         randomized knob-matrix points driven through generated \
         star/fabric scenarios under seeded fault schedules, with \
         convergence, cross-knob equivalence and telemetry oracles. \
         Chaos reproducers share the $(b,--replay) flag — the file \
         format is self-describing.";
    ]
  in
  Cmd.v
    (Cmd.info "xbgp-fuzz" ~doc ~man)
    Term.(
      const main $ cases $ seed $ out $ no_out $ force_divergence $ caches
      $ fanout $ chaos $ sharded $ shards $ replay $ quiet $ verbose)

let () = exit (Cmd.eval' cmd)
