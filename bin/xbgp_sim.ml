(* xbgp-sim: command-line front end to the xBGP reproduction.

     xbgp-sim list            -- insertion points, helpers, programs
     xbgp-sim disasm PROG     -- disassemble a registered xBGP program
     xbgp-sim verify PROG     -- run the verifier over a program
     xbgp-sim manifest FILE   -- parse and validate a manifest file
     xbgp-sim run SCENARIO    -- run a scenario (rr|ov|dc) and report
     xbgp-sim show QUERY...   -- build a scenario and answer a live
                                 introspection query (rib, provenance,
                                 update-groups, maps, shards, recorder,
                                 bmp)
*)

open Cmdliner

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

(* --- list --- *)

let list_cmd =
  let run () =
    setup_logs ();
    Fmt.pr "insertion points:@.";
    List.iter
      (fun p -> Fmt.pr "  %s@." (Xbgp.Api.point_name p))
      Xbgp.Api.all_points;
    Fmt.pr "@.helpers:@.";
    List.iter
      (fun id -> Fmt.pr "  %2d %s@." id (Xbgp.Api.helper_name id))
      Xbgp.Api.all_helpers;
    Fmt.pr "@.registered xBGP programs:@.";
    List.iter
      (fun (p : Xbgp.Xprog.t) ->
        Fmt.pr "  %-20s bytecodes: %s  (%d instruction slots, %d maps)@."
          p.name
          (String.concat ", " (List.map fst p.bytecodes))
          (Xbgp.Xprog.total_slots p)
          (List.length p.maps))
      Xprogs.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List insertion points, helpers and programs")
    Term.(const run $ const ())

(* --- disasm --- *)

let prog_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM" ~doc:"Registered xBGP program name")

let disasm_cmd =
  let run name =
    setup_logs ();
    match Xprogs.Registry.find name with
    | None ->
      Fmt.epr "unknown program %S@." name;
      1
    | Some p ->
      List.iter
        (fun (bc, code) ->
          Fmt.pr "=== %s/%s ===@.%s@." name bc
            (Ebpf.Disasm.program_to_string code))
        p.bytecodes;
      0
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a registered xBGP program")
    Term.(const run $ prog_arg)

(* --- verify --- *)

let verify_cmd =
  let run name =
    setup_logs ();
    match Xprogs.Registry.find name with
    | None ->
      Fmt.epr "unknown program %S@." name;
      1
    | Some p ->
      let failures = ref 0 in
      List.iter
        (fun (bc, code) ->
          match
            Ebpf.Verifier.check ?allowed_helpers:p.allowed_helpers code
          with
          | Ok () -> Fmt.pr "%s/%s: OK@." name bc
          | Error es ->
            incr failures;
            Fmt.pr "%s/%s: REJECTED %a@." name bc
              Fmt.(list ~sep:semi Ebpf.Verifier.pp_error)
              es)
        p.bytecodes;
      if !failures = 0 then 0 else 1
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify a registered xBGP program")
    Term.(const run $ prog_arg)

(* --- manifest --- *)

let manifest_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Manifest file")
  in
  let run file =
    setup_logs ();
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Xbgp.Manifest.parse text with
    | Error e ->
      Fmt.epr "parse error: %s@." e;
      1
    | Ok m -> (
      let vmm = Xbgp.Vmm.create ~host:"check" () in
      match Xbgp.Manifest.load vmm ~registry:Xprogs.Registry.find m with
      | Ok () ->
        Fmt.pr "manifest OK: %d program(s), %d attachment(s)@."
          (List.length m.programs)
          (List.length m.attachments);
        0
      | Error e ->
        Fmt.epr "manifest rejected: %s@." e;
        1)
  in
  Cmd.v
    (Cmd.info "manifest" ~doc:"Parse and validate an xBGP manifest file")
    Term.(const run $ file_arg)

(* --- run --- *)

let host_arg =
  let host = Arg.enum [ ("frr", `Frr); ("bird", `Bird) ] in
  Arg.(
    value & opt host `Frr
    & info [ "host" ] ~docv:"HOST" ~doc:"DUT implementation (frr or bird)")

let routes_arg =
  Arg.(
    value & opt int 1000
    & info [ "routes" ] ~docv:"N" ~doc:"Size of the injected routing table")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics to $(docv) in Prometheus text \
           exposition format (enables telemetry)")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's spans to $(docv) as Chrome trace-event JSON, \
           loadable in chrome://tracing or Perfetto (enables telemetry)")

let trace_sample_arg =
  Arg.(
    value & opt int 1
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "Record only one span in $(docv) (deterministic 1-in-N \
           sampling). Counters stay exact; span-derived latency \
           histograms see proportionally fewer observations. 1 records \
           every span.")

(* Telemetry for a CLI run: enabled only when an export was requested,
   with real (wall-clock) nanoseconds for the duration histograms. The
   trace timebase stays the simulated clock — Testbed.create installs
   it. *)
let cli_telemetry ~metrics_out ~trace_out ~trace_sample =
  if metrics_out = None && trace_out = None then None
  else begin
    let t = Telemetry.create ~enabled:true () in
    let t0 = Unix.gettimeofday () in
    Telemetry.set_clock_ns t (fun () ->
        int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
    Telemetry.set_span_sampling t trace_sample;
    Some t
  end

let export_telemetry tele ~metrics_out ~trace_out =
  match tele with
  | None -> ()
  | Some t ->
    let write path s =
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Fmt.pr "wrote %s@." path
    in
    Option.iter (fun p -> write p (Telemetry.to_prometheus t)) metrics_out;
    Option.iter (fun p -> write p (Telemetry.to_chrome_trace t)) trace_out;
    let table = Telemetry.profile_table t in
    if table <> "" then Fmt.pr "@.%s@." table

let run_cmd =
  let scenario =
    Arg.(
      required
      & pos 0 (some (enum [ ("rr", `Rr); ("ov", `Ov); ("dc", `Dc) ])) None
      & info [] ~docv:"SCENARIO"
          ~doc:"rr = route reflection, ov = origin validation, dc = Fig. 5")
  in
  let run scenario host routes metrics_out trace_out trace_sample =
    setup_logs ();
    let tele = cli_telemetry ~metrics_out ~trace_out ~trace_sample in
    let code =
    match scenario with
    | `Rr ->
      let tb =
        Scenario.Testbed.create
          (Scenario.Testbed.mode ~host ~ibgp:true
             ~manifest:Xprogs.Route_reflector.manifest ?telemetry:tele ())
      in
      Scenario.Testbed.establish tb;
      Scenario.Testbed.feed tb
        (Dataset.Ris_gen.generate
           { Dataset.Ris_gen.default_config with count = routes });
      let ok = Scenario.Testbed.run_until_downstream_has tb routes in
      Fmt.pr "route reflection on %s: %d/%d routes reflected downstream@."
        (match host with `Frr -> "xFRRouting" | `Bird -> "xBIRD")
        (Scenario.Testbed.downstream_count tb)
        routes;
      if ok then 0 else 1
    | `Ov ->
      let rts =
        Dataset.Ris_gen.generate
          { Dataset.Ris_gen.default_config with count = routes; disjoint = true }
      in
      let roas =
        Dataset.Ris_gen.roas_for ~seed:7 ~valid_pct:75 ~invalid_pct:13 rts
      in
      let tb =
        Scenario.Testbed.create
          (Scenario.Testbed.mode ~host ~ibgp:false
             ~manifest:Xprogs.Origin_validation.manifest
             ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
             ?telemetry:tele ())
      in
      Scenario.Testbed.establish tb;
      Scenario.Testbed.feed tb rts;
      let ok = Scenario.Testbed.run_until_downstream_has tb routes in
      let tagged tag =
        List.length
          (List.filter
             (fun (r : Dataset.Ris_gen.route) ->
               match
                 Scenario.Daemon.best_communities
                   (Scenario.Daemon.Frr tb.downstream) r.prefix
               with
               | Some cs -> List.mem tag cs
               | None -> false)
             rts)
      in
      Fmt.pr
        "origin validation on %s: %d routes, valid=%d invalid=%d \
         not-found=%d@."
        (match host with `Frr -> "xFRRouting" | `Bird -> "xBIRD")
        routes (tagged 0xFFFF0001) (tagged 0xFFFF0002) (tagged 0xFFFF0003);
      if ok then 0 else 1
    | `Dc ->
      let f = Scenario.Fabric.build ~host ~with_transit:true `Xbgp in
      Scenario.Fabric.start f;
      Scenario.Fabric.settle f 30;
      let pp r t =
        match Scenario.Fabric.path f r t with
        | Some p -> "[" ^ String.concat " " (List.map string_of_int p) ^ "]"
        | None -> "(unreachable)"
      in
      Fmt.pr "Fig. 5 fabric under xBGP valley-free filtering:@.";
      Fmt.pr "  S2  -> external: %s@." (pp "S2" "EXT");
      Fmt.pr "  T20 -> T23:      %s@." (pp "T20" "T23");
      Scenario.Fabric.fail_link f "L10" "S1";
      Scenario.Fabric.fail_link f "L13" "S2";
      Scenario.Fabric.settle f 60;
      Fmt.pr "  after double failure, L10 -> L13: %s@." (pp "L10" "L13");
      0
    in
    export_telemetry tele ~metrics_out ~trace_out;
    code
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a use-case scenario on the simulated testbed")
    Term.(
      const run $ scenario $ host_arg $ routes_arg $ metrics_out_arg
      $ trace_out_arg $ trace_sample_arg)

(* --- show --- *)

(* A deterministic observed scenario: build it, attach a flight recorder
   and a BMP collector, drive a fixed traffic script, and answer live
   `show` queries against the resulting daemon state. Two variants:

   - star: 4 sinks around an origin-validation DUT. Sinks 0 and 1 both
     announce 10.32.0.0/24 (sink 0 wins on AS-path length; the ROA makes
     its announcement Valid and sink 1's Invalid), sink 1 alone
     announces 10.33.0.0/24, and sink 2 announces then withdraws
     10.34.0.0/24 — covering Best/Only_candidate/Withdrawn provenance.

   - fabric: the Fig. 5 Clos under the valley_free extension with the
     transit router; queries are answered at one router (default T20),
     where e.g. `show provenance 8.8.0.0/16` explains a route whose
     import chain ran on every hop. *)

let show_star ~host ~batch_updates ~update_groups ~capacity ~shards =
  let pfx = Bgp.Prefix.of_string in
  let roas = [ Rpki.Roa.v (pfx "10.32.0.0/24") ~max_len:24 ~asn:65101 ] in
  let star =
    Scenario.Star.create ~host ~npeers:4
      ~manifest:Xprogs.Origin_validation.manifest
      ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
      ~batch_updates ~update_groups ~shards ()
  in
  let rc = Obs.Recorder.create ~capacity ~name:"dut" () in
  Scenario.Star.attach_recorder star rc;
  Scenario.Star.attach_collector star (Obs.Bmp.collector ());
  Scenario.Star.establish star;
  let announce i path nlri =
    Scenario.Star.sink_announce star i
      ~attrs:
        Bgp.Attr.
          [
            v (Origin Igp);
            v (As_path [ Seq path ]);
            v (Next_hop (Scenario.Star.sink_address star i));
          ]
      nlri
  in
  announce 0 [ 65101 ] [ pfx "10.32.0.0/24" ];
  announce 1 [ 65102; 64999 ] [ pfx "10.32.0.0/24" ];
  announce 1 [ 65102 ] [ pfx "10.33.0.0/24" ];
  announce 2 [ 65103 ] [ pfx "10.34.0.0/24" ];
  Scenario.Star.settle star;
  Scenario.Star.sink_withdraw star 2 [ pfx "10.34.0.0/24" ];
  Scenario.Star.settle star;
  Scenario.Star.dut star

let show_fabric ~host ~batch_updates ~update_groups ~capacity ~router =
  let f =
    Scenario.Fabric.build ~host ~with_transit:true ~batch_updates
      ~update_groups `Xbgp
  in
  let rc = Obs.Recorder.create ~capacity ~name:"fabric" () in
  Scenario.Fabric.attach_recorder f rc;
  let d =
    match List.assoc_opt router f.daemons with
    | Some d -> d
    | None ->
      Fmt.epr "unknown router %S; fabric routers: %s@." router
        (String.concat " " (List.map fst f.daemons));
      exit 1
  in
  Scenario.Fabric.attach_collector f router (Obs.Bmp.collector ());
  Scenario.Fabric.start f;
  Scenario.Fabric.settle f 30;
  d

let show_cmd =
  let query_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"QUERY"
          ~doc:
            "Query words: $(b,rib) | $(b,provenance) $(i,PREFIX) | \
             $(b,update-groups) | $(b,maps) | $(b,shards) | $(b,recorder) | \
             $(b,bmp)")
  in
  let scenario_arg =
    let s = Arg.enum [ ("star", `Star); ("fabric", `Fabric) ] in
    Arg.(
      value & opt s `Star
      & info [ "scenario" ] ~docv:"SCEN"
          ~doc:"Observed scenario to build: star or fabric (Fig. 5)")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text")
  in
  let since_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "since" ] ~docv:"SEQ"
          ~doc:"For $(b,recorder): only events with seqno >= $(docv)")
  in
  let batch_arg =
    Arg.(
      value & opt bool true
      & info [ "batch-updates" ] ~docv:"BOOL"
          ~doc:"Batched NLRI processing on the daemons")
  in
  let groups_arg =
    Arg.(
      value & opt bool true
      & info [ "update-groups" ] ~docv:"BOOL"
          ~doc:"Update-group export engine on the daemons")
  in
  let capacity_arg =
    Arg.(
      value & opt int 4096
      & info [ "recorder-capacity" ] ~docv:"BYTES"
          ~doc:"Flight-recorder ring size in bytes")
  in
  let router_arg =
    Arg.(
      value & opt string "T20"
      & info [ "router" ] ~docv:"NAME"
          ~doc:"Fabric router to query (fabric scenario only)")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run the star DUT with $(docv) worker domains and a \
             prefix-sharded Loc-RIB (star scenario only); pairs with the \
             $(b,shards) query")
  in
  let run scenario host json since batch_updates update_groups capacity router
      shards query =
    setup_logs ();
    let d =
      match scenario with
      | `Star -> show_star ~host ~batch_updates ~update_groups ~capacity ~shards
      | `Fabric ->
        show_fabric ~host ~batch_updates ~update_groups ~capacity ~router
    in
    let query =
      match (query, since) with
      | [ "recorder" ], Some s -> [ "recorder"; "--since"; string_of_int s ]
      | q, _ -> q
    in
    let code =
      match Scenario.Introspect.query d ~json query with
      | Ok out ->
        print_string out;
        if out = "" || out.[String.length out - 1] <> '\n' then
          print_newline ();
        0
      | Error e ->
        Fmt.epr "%s@." e;
        1
    in
    Scenario.Daemon.shutdown d;
    code
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:
         "Answer a live introspection query against an observed scenario")
    Term.(
      const run $ scenario_arg $ host_arg $ json_arg $ since_arg $ batch_arg
      $ groups_arg $ capacity_arg $ router_arg $ shards_arg $ query_arg)

let () =
  let info =
    Cmd.info "xbgp-sim" ~version:"1.0.0"
      ~doc:"xBGP (HotNets'20) reproduction: programmable BGP via eBPF"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; disasm_cmd; verify_cmd; manifest_cmd; run_cmd; show_cmd ]))
