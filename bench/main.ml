(* The benchmark harness: regenerates every figure of the paper.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig1       -- CDF of IETF standardization delay
     dune exec bench/main.exe fig4       -- extension vs native performance
     dune exec bench/main.exe fig5       -- valley-free fabric audit
     dune exec bench/main.exe micro      -- Bechamel micro-benchmarks
     dune exec bench/main.exe ablation   -- three-engine pipeline comparison
     dune exec bench/main.exe telemetry  -- telemetry on/off overhead
     dune exec bench/main.exe -- --json  -- micro + ablation + telemetry,
                                            and write the measurements to
                                            BENCH_pr3.json

   `--json` composes with a subcommand (`micro --json` writes just the
   micro numbers); alone it runs the micro, ablation and telemetry
   benches — the sources of every number in BENCH_pr3.json.

   Environment knobs for fig4: XBGP_BENCH_ROUTES (table size, default
   8000), XBGP_BENCH_RUNS (runs per configuration, default 15 — the
   paper's count). *)

let routes_n =
  try int_of_string (Sys.getenv "XBGP_BENCH_ROUTES") with Not_found -> 8_000

let runs_n =
  try int_of_string (Sys.getenv "XBGP_BENCH_RUNS") with Not_found -> 15

(* measurements accumulated for --json, in insertion order *)
let json_entries : (string * float) list ref = ref []
let record key value = json_entries := (key, value) :: !json_entries

let write_json path =
  let entries = List.rev !json_entries in
  let oc = open_out path in
  output_string oc "{\n";
  let last = List.length entries - 1 in
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  %S: %.4f%s\n" k v (if i = last then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %s (%d measurements)\n%!" path (List.length entries)

(* ------------------------------------------------------------------ *)
(* Fig. 1: Delay between first IETF draft and RFC publication          *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  Printf.printf "=== Fig. 1: BGP RFC standardization delay (40 RFCs) ===\n";
  Printf.printf "%-8s %s\n" "delay(y)" "CDF";
  List.iter
    (fun (d, f) -> Printf.printf "%-8.1f %.3f\n" d f)
    (Dataset.Rfc_delays.cdf ());
  Printf.printf "median delay: %.2f years (paper: 3.5 years)\n"
    (Dataset.Rfc_delays.median ());
  Printf.printf "max delay:    %.2f years (paper: ~10 years)\n\n"
    (Dataset.Rfc_delays.max_delay ())

(* ------------------------------------------------------------------ *)
(* Fig. 4: relative performance impact of extension vs native code     *)
(* ------------------------------------------------------------------ *)

type usecase = Route_reflection | Origin_validation

let usecase_name = function
  | Route_reflection -> "Route Reflectors"
  | Origin_validation -> "Origin Validation"

let host_name = function `Frr -> "xFRRouting" | `Bird -> "xBIRD"

(* one full Fig. 3 pipeline run; returns the wall-clock seconds between
   the first announcement and the downstream router holding the full
   table *)
let timed_run ~host ~usecase ~extension routes roas =
  let mode =
    match (usecase, extension) with
    | Route_reflection, false ->
      Scenario.Testbed.mode ~host ~ibgp:true ~native_rr:true ()
    | Route_reflection, true ->
      Scenario.Testbed.mode ~host ~ibgp:true
        ~manifest:Xprogs.Route_reflector.manifest ()
    | Origin_validation, false ->
      Scenario.Testbed.mode ~host ~ibgp:false ~native_ov_roas:roas ()
    | Origin_validation, true ->
      Scenario.Testbed.mode ~host ~ibgp:false
        ~manifest:Xprogs.Origin_validation.manifest
        ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
        ()
  in
  let tb = Scenario.Testbed.create mode in
  Scenario.Testbed.establish tb;
  let n = List.length routes in
  let t0 = Unix.gettimeofday () in
  Scenario.Testbed.feed tb routes;
  if not (Scenario.Testbed.run_until_downstream_has tb n) then
    failwith "bench: pipeline did not converge";
  Unix.gettimeofday () -. t0

let median xs =
  let a = Array.of_list (List.sort compare xs) in
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let quartiles xs =
  let a = Array.of_list (List.sort compare xs) in
  let n = Array.length a in
  let q p =
    let i = p *. float_of_int (n - 1) in
    let lo = int_of_float i in
    let hi = min (lo + 1) (n - 1) in
    let frac = i -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  in
  (a.(0), q 0.25, q 0.5, q 0.75, a.(n - 1))

let fig4_one ~host ~usecase routes roas =
  let run extension () = timed_run ~host ~usecase ~extension routes roas in
  let native = ref [] and ext = ref [] in
  ignore (run false ());
  (* warmup *)
  for _ = 1 to runs_n do
    native := run false () :: !native;
    ext := run true () :: !ext
  done;
  let nat_med = median !native in
  let rel = List.map (fun e -> (e -. nat_med) /. nat_med *. 100.) !ext in
  let mn, q1, md, q3, mx = quartiles rel in
  Printf.printf
    "%-12s %-18s native_med=%.3fs ext_med=%.3fs  impact%%: min=%+.1f \
     q1=%+.1f med=%+.1f q3=%+.1f max=%+.1f\n\
     %!"
    (host_name host) (usecase_name usecase) nat_med (median !ext) mn q1 md q3
    mx

let fig4 () =
  Printf.printf
    "=== Fig. 4: performance impact of extension bytecode vs native code \
     ===\n";
  Printf.printf
    "(%d routes, %d runs per configuration; paper: 724k routes, 15 runs)\n"
    routes_n runs_n;
  let routes =
    Dataset.Ris_gen.generate
      { Dataset.Ris_gen.default_config with count = routes_n }
  in
  let ov_routes =
    Dataset.Ris_gen.generate
      {
        Dataset.Ris_gen.default_config with
        count = routes_n;
        disjoint = true;
        seed = 43;
      }
  in
  let roas =
    Dataset.Ris_gen.roas_for ~seed:7 ~valid_pct:75 ~invalid_pct:13 ov_routes
  in
  List.iter
    (fun host ->
      fig4_one ~host ~usecase:Route_reflection routes [];
      fig4_one ~host ~usecase:Origin_validation ov_routes roas)
    [ `Frr; `Bird ];
  Printf.printf
    "expected shape (paper): RR extension <20%% slower on both hosts;\n\
     OV extension ~= native on BIRD and ~10%% FASTER than native on \
     FRRouting (hash vs trie)\n\n"

(* ------------------------------------------------------------------ *)
(* Fig. 5 / §3.3: valley-free fabric audit                             *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  Printf.printf "=== Fig. 5 / §3.3: data-center valley-free audit ===\n";
  let audit config label =
    let f = Scenario.Fabric.build ~with_transit:true config in
    Scenario.Fabric.start f;
    Scenario.Fabric.settle f 30;
    let s2_ext_path =
      match Scenario.Fabric.path f "S2" "EXT" with
      | Some p -> String.concat " " (List.map string_of_int p)
      | None -> "unreachable"
    in
    let t20_t23 = Scenario.Fabric.reaches f "T20" "T23" in
    Printf.printf "%-8s S2->external path: [%s]  T20->T23: %b\n" label
      s2_ext_path t20_t23
  in
  audit `Plain "plain";
  audit `Xbgp "xBGP";
  Printf.printf
    "(xBGP: spine reaches external directly, never via a leaf valley)\n";
  let partition config label =
    let f = Scenario.Fabric.build config in
    Scenario.Fabric.start f;
    Scenario.Fabric.settle f 30;
    Scenario.Fabric.fail_link f "L10" "S1";
    Scenario.Fabric.fail_link f "L13" "S2";
    Scenario.Fabric.settle f 60;
    let ok = Scenario.Fabric.reaches f "L10" "L13" in
    let path =
      match Scenario.Fabric.path f "L10" "L13" with
      | Some p -> String.concat " " (List.map string_of_int p)
      | None -> "-"
    in
    Printf.printf
      "%-8s after L10-S1 and L13-S2 fail: L10 reaches L13: %-5b path=[%s]\n"
      label ok path
  in
  partition `Same_as "same-AS";
  partition `Xbgp "xBGP";
  Printf.printf
    "(paper: duplicate-ASN config partitions; xBGP keeps the recovery path \
     L10-S2-L12-S1-L13)\n\n"

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* one pre-created VM per engine, budget refilled per iteration — the
     VMM's steady state (it keeps one VM per insertion point), and the
     only baseline under which the three engines are comparable *)
  let engine_bench name engine ~helpers program =
    let vm = Ebpf.Vm.create ~engine ~helpers program in
    Test.make ~name
      (Staged.stage (fun () ->
           Ebpf.Vm.set_budget vm 1_000_000;
           ignore (Ebpf.Vm.run vm)))
  in
  let loop_program =
    Ebpf.Asm.(
      assemble
        [
          movi Ebpf.Insn.R0 0;
          movi Ebpf.Insn.R1 1000;
          label "loop";
          addi Ebpf.Insn.R0 3;
          subi Ebpf.Insn.R1 1;
          jnei Ebpf.Insn.R1 0 "loop";
          exit_;
        ])
  in
  let call_program =
    Ebpf.Asm.(
      assemble
        [
          movi Ebpf.Insn.R6 200;
          label "loop";
          call 1;
          subi Ebpf.Insn.R6 1;
          jnei Ebpf.Insn.R6 0 "loop";
          movi Ebpf.Insn.R0 0;
          exit_;
        ])
  in
  let seven = [ (1, fun _ _ -> 7L) ] in
  let vm_loop = engine_bench "ebpf-interp-3k-insns" Ebpf.Vm.Interpreted ~helpers:[] loop_program in
  let vm_loop_compiled =
    engine_bench "ebpf-compiled-3k-insns" Ebpf.Vm.Compiled ~helpers:[] loop_program
  in
  let vm_loop_block =
    engine_bench "ebpf-block-3k-insns" Ebpf.Vm.Block ~helpers:[] loop_program
  in
  let helper_call =
    engine_bench "ebpf-200-helper-calls" Ebpf.Vm.Interpreted ~helpers:seven
      call_program
  in
  let helper_call_compiled =
    engine_bench "ebpf-200-helper-calls-compiled" Ebpf.Vm.Compiled
      ~helpers:seven call_program
  in
  let helper_call_block =
    engine_bench "ebpf-200-helper-calls-block" Ebpf.Vm.Block ~helpers:seven
      call_program
  in
  (* ROA lookup: FRR-style trie vs BIRD-style hash (the §3.4 story) *)
  let routes =
    Dataset.Ris_gen.generate
      { Dataset.Ris_gen.default_config with count = 20_000; disjoint = true }
  in
  let roas =
    Dataset.Ris_gen.roas_for ~seed:7 ~valid_pct:75 ~invalid_pct:13 routes
  in
  let trie = Rpki.Store_trie.of_list roas in
  let hash = Rpki.Store_hash.of_list roas in
  let probe =
    Array.of_list
      (List.map (fun (r : Dataset.Ris_gen.route) -> r.prefix) routes)
  in
  let trie_bench =
    Test.make ~name:"roa-trie-1k-lookups"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore (Rpki.Store_trie.validate trie probe.(i) 1000)
           done))
  in
  let hash_bench =
    Test.make ~name:"roa-hash-1k-lookups"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore (Rpki.Store_hash.validate hash probe.(i) 1000)
           done))
  in
  (* xBGP TLV adapter cost: FRR-like interned record vs BIRD-like eattrs *)
  let attrs =
    [
      Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
      Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq [ 1; 2; 3; 4 ] ]);
      Bgp.Attr.v (Bgp.Attr.Next_hop 0x0A000001);
      Bgp.Attr.v (Bgp.Attr.Communities [ 0x10001; 0x10002 ]);
    ]
  in
  let frr_attrs = Frrouting.Attr_intern.of_attrs attrs in
  let bird_attrs = Bird.Eattr.of_attrs attrs in
  let frr_tlv =
    Test.make ~name:"xbgp-get_attr-frr(convert)"
      (Staged.stage (fun () ->
           for _ = 1 to 100 do
             ignore (Frrouting.Attr_intern.get_tlv frr_attrs 2)
           done))
  in
  let bird_tlv =
    Test.make ~name:"xbgp-get_attr-bird(wire)"
      (Staged.stage (fun () ->
           for _ = 1 to 100 do
             ignore (Bird.Eattr.get_tlv bird_attrs 2)
           done))
  in
  let tests =
    [
      vm_loop; vm_loop_compiled; vm_loop_block; helper_call;
      helper_call_compiled; helper_call_block; trie_bench; hash_bench;
      frr_tlv; bird_tlv;
    ]
  in
  Printf.printf "=== Micro-benchmarks (Bechamel) ===\n%!";
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:4000 ~quota:(Time.second 1.5) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
          Printf.printf "%-36s %12.1f ns/iter\n%!" name est;
          (* bechamel prefixes the group name, e.g. "micro/ebpf-..." *)
          let key =
            match String.index_opt name '/' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          record ("micro." ^ key ^ ".ns_per_iter") est
        | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
      results
  in
  List.iter (fun t -> benchmark (Test.make_grouped ~name:"micro" [ t ])) tests;
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Churn: convergence under withdrawal/re-announcement, extension vs   *)
(* native (supporting experiment: the paper only measures the initial  *)
(* full-table transfer; operators care about churn too)                *)
(* ------------------------------------------------------------------ *)

let churn () =
  Printf.printf
    "=== Churn: withdraw/re-announce half the table (route reflection) ===\n";
  let n = max 1000 (routes_n / 2) in
  let runs = max 3 (runs_n / 3) in
  let routes =
    Dataset.Ris_gen.generate { Dataset.Ris_gen.default_config with count = n }
  in
  let half =
    List.filteri (fun i _ -> i mod 2 = 0) routes
  in
  let timed mode =
    let tb = Scenario.Testbed.create mode in
    Scenario.Testbed.establish tb;
    Scenario.Testbed.feed tb routes;
    if not (Scenario.Testbed.run_until_downstream_has tb n) then
      failwith "churn: initial transfer did not converge";
    let t0 = Unix.gettimeofday () in
    (* withdraw every other prefix, then re-announce *)
    List.iter
      (fun (r : Dataset.Ris_gen.route) ->
        Frrouting.Bgpd.withdraw_local tb.upstream r.prefix)
      half;
    if
      not
        (Netsim.Sched.run_until tb.sched (fun () ->
             Scenario.Testbed.downstream_count tb <= n - List.length half))
    then failwith "churn: withdrawals did not converge";
    Scenario.Testbed.feed tb half;
    if not (Scenario.Testbed.run_until_downstream_has tb n) then
      failwith "churn: re-announcement did not converge";
    Unix.gettimeofday () -. t0
  in
  let native_mode = Scenario.Testbed.mode ~ibgp:true ~native_rr:true () in
  let ext_mode =
    Scenario.Testbed.mode ~ibgp:true
      ~manifest:Xprogs.Route_reflector.manifest ()
  in
  ignore (timed native_mode);
  let native = ref [] and ext = ref [] in
  for _ = 1 to runs do
    native := timed native_mode :: !native;
    ext := timed ext_mode :: !ext
  done;
  let nm = median !native and em = median !ext in
  Printf.printf
    "native churn median=%.3fs  extension churn median=%.3fs  impact: %+.1f%%\n\n%!"
    nm em
    ((em -. nm) /. nm *. 100.)

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the paired enabled/disabled experiment (E11)    *)
(* ------------------------------------------------------------------ *)

(* Every Vmm.run now carries the telemetry hooks, so the number that
   matters is the cost of one dispatch with telemetry disabled — the
   state every test and benchmark runs in. Three identical VMMs run the
   same extension in tight interleaved loops: two with disabled
   registries (the A/A pair — any delta between them is measurement
   noise, since the configurations are byte-identical) and one with a
   fully enabled registry (histograms, spans, helper latency). Blocks
   are interleaved across rounds and the per-round minimum is kept:
   timing noise on a shared machine is one-sided, so the minimum is the
   stable estimator. The disabled path must be indistinguishable from
   noise: the A/A delta lands in telemetry.disabled_overhead_pct and is
   expected within ±2%; the enabled cost is reported next to it. *)
let telemetry_bench () =
  Printf.printf
    "=== Telemetry: disabled-path noise floor (A/A) and enabled cost ===\n";
  (* a representative extension body: a compute loop in the shape of an
     attribute scan, plus a handful of helper calls *)
  let prog =
    Ebpf.Asm.(
      assemble
        [
          movi Ebpf.Insn.R7 60;
          label "compute";
          addi Ebpf.Insn.R0 3;
          subi Ebpf.Insn.R7 1;
          jnei Ebpf.Insn.R7 0 "compute";
          movi Ebpf.Insn.R6 4;
          label "calls";
          call 1;
          subi Ebpf.Insn.R6 1;
          jnei Ebpf.Insn.R6 0 "calls";
          movi Ebpf.Insn.R0 0;
          exit_;
        ])
  in
  let make_vmm tele =
    let xp = Xbgp.Xprog.v ~name:"tele_bench" [ ("main", prog) ] in
    let vmm = Xbgp.Vmm.create ~host:"bench" ~telemetry:tele () in
    (match Xbgp.Vmm.register vmm xp with
    | Ok () -> ()
    | Error e -> failwith ("telemetry bench: register: " ^ e));
    (match
       Xbgp.Vmm.attach vmm ~program:"tele_bench" ~bytecode:"main"
         ~point:Xbgp.Api.Bgp_inbound_filter ~order:0
     with
    | Ok () -> ()
    | Error e -> failwith ("telemetry bench: attach: " ^ e));
    vmm
  in
  let enabled_registry () =
    let t = Telemetry.create ~enabled:true () in
    let t0 = Unix.gettimeofday () in
    Telemetry.set_clock_ns t (fun () ->
        int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
    t
  in
  let vmm_d = make_vmm (Telemetry.create ~enabled:false ()) in
  let vmm_e = make_vmm (enabled_registry ()) in
  let prefix_arg = Bytes.make 5 '\x00' in
  let args =
    Xbgp.Host_intf.Args.of_list [ (Xbgp.Api.arg_prefix, prefix_arg) ]
  in
  let iters = 50_000 in
  let time_block vmm =
    (* pay off the previous block's garbage (the enabled block allocates
       spans and tag lists) before the clock starts, or its collection
       lands in whichever block runs next *)
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore
        (Xbgp.Vmm.run vmm Xbgp.Api.Bgp_inbound_filter
           ~ops:Xbgp.Host_intf.null_ops ~args
           ~default:(fun () -> 0L))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9
  in
  ignore (time_block vmm_d);
  ignore (time_block vmm_e);
  (* warmup *)
  (* the A/A pair is the SAME disabled VMM timed in two blocks per
     round — two instances would differ by allocation layout, which is
     not telemetry's doing; timing the one object twice isolates pure
     measurement noise *)
  let rounds = max 7 (runs_n / 2) in
  let best_a = ref infinity and best_b = ref infinity and best_e = ref infinity in
  for _ = 1 to rounds do
    Telemetry.reset_spans (Xbgp.Vmm.telemetry vmm_e);
    best_a := min !best_a (time_block vmm_d);
    best_b := min !best_b (time_block vmm_d);
    best_e := min !best_e (time_block vmm_e)
  done;
  let dis = min !best_a !best_b in
  let aa = (!best_b -. !best_a) /. !best_a *. 100. in
  let over = (!best_e -. dis) /. dis *. 100. in
  Printf.printf "%-22s best=%.1f ns/run\n%!" "telemetry disabled" dis;
  Printf.printf "%-22s best=%.1f ns/run\n%!" "telemetry enabled" !best_e;
  Printf.printf
    "disabled A/A delta (noise floor): %+.2f%%   enabled overhead: %+.2f%%\n\n%!"
    aa over;
  record "telemetry.disabled.ns_per_run" dis;
  record "telemetry.enabled.ns_per_run" !best_e;
  record "telemetry.disabled_overhead_pct" aa;
  record "telemetry.enabled_overhead_pct" over

(* ------------------------------------------------------------------ *)
(* Ablation: interpreted vs closure-compiled eBPF engine               *)
(* ------------------------------------------------------------------ *)

(* §4 of the paper calls for comparing virtual machines by performance;
   this ablation reruns the E3 (route reflection) and E4 (origin
   validation) pipelines with every eBPF engine and reports each one's
   overhead against the host's native code. *)
let ablation () =
  Printf.printf
    "=== Ablation: eBPF execution engines (E3/E4 pipelines) ===\n";
  let n = max 1000 (routes_n / 2) in
  let runs = max 3 (runs_n / 3) in
  let routes =
    Dataset.Ris_gen.generate { Dataset.Ris_gen.default_config with count = n }
  in
  let ov_routes =
    Dataset.Ris_gen.generate
      {
        Dataset.Ris_gen.default_config with
        count = n;
        disjoint = true;
        seed = 43;
      }
  in
  let roas =
    Dataset.Ris_gen.roas_for ~seed:7 ~valid_pct:75 ~invalid_pct:13 ov_routes
  in
  let timed rts mode =
    let tb = Scenario.Testbed.create mode in
    Scenario.Testbed.establish tb;
    let t0 = Unix.gettimeofday () in
    Scenario.Testbed.feed tb rts;
    if not (Scenario.Testbed.run_until_downstream_has tb n) then
      failwith "ablation: did not converge";
    Unix.gettimeofday () -. t0
  in
  let pipelines =
    [
      ( "route-reflection",
        routes,
        Scenario.Testbed.mode ~ibgp:true ~native_rr:true (),
        fun engine ->
          Scenario.Testbed.mode ~ibgp:true
            ~manifest:Xprogs.Route_reflector.manifest ~engine () );
      ( "origin-validation",
        ov_routes,
        Scenario.Testbed.mode ~ibgp:false ~native_ov_roas:roas (),
        fun engine ->
          Scenario.Testbed.mode ~ibgp:false
            ~manifest:Xprogs.Origin_validation.manifest
            ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
            ~engine () );
    ]
  in
  List.iter
    (fun (label, rts, native_mode, ext_mode) ->
      Printf.printf "--- %s ---\n%!" label;
      (* the four configurations run back-to-back inside each iteration,
         so machine drift is common-mode; the overhead statistic is the
         median of per-iteration ratios against that iteration's native
         run, which cancels the drift a ratio of medians would keep *)
      ignore (timed rts native_mode);
      let native = ref [] in
      let engines = List.map (fun e -> (e, ref [])) Ebpf.Vm.all_engines in
      for _ = 1 to runs do
        let nat = timed rts native_mode in
        native := nat :: !native;
        List.iter
          (fun (e, acc) ->
            let t = timed rts (ext_mode e) in
            acc := (t, ((t -. nat) /. nat) *. 100.) :: !acc)
          engines
      done;
      let nat_med = median !native in
      Printf.printf "%-22s median=%.4fs\n%!" "native" nat_med;
      record (Printf.sprintf "ablation.%s.native.median_s" label) nat_med;
      List.iter
        (fun (e, results) ->
          let med = median (List.map fst !results) in
          let over = median (List.map snd !results) in
          Printf.printf "%-22s median=%.4fs  overhead vs native: %+.1f%%\n%!"
            ("extension/" ^ Ebpf.Vm.engine_name e)
            med over;
          let name = Ebpf.Vm.engine_name e in
          record (Printf.sprintf "ablation.%s.%s.median_s" label name) med;
          record
            (Printf.sprintf "ablation.%s.%s.overhead_pct" label name)
            over)
        engines)
    pipelines;
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Dispatch fast path: caches + batching + sampling ablation           *)
(* ------------------------------------------------------------------ *)

(* Measures the PR-4 dispatch fast path on the full Fig. 3 pipeline, in
   updates/sec at the downstream router. The knobs restore the legacy
   behaviour, giving the pre-PR baseline in the same process:
   - conversion caches off ([Attr_intern] / [Eattr]) = fresh TLV
     conversion on every xBGP boundary crossing;
   - [batch_updates] off = the per-prefix learn path with per-dispatch
     argument allocation.
   Two scenarios per host: "native" (native route reflection, no
   bytecode — exercises the batched NLRI fast path and the encode-side
   caches) and "rr-ext" (the route-reflector extension — every prefix
   crosses the xBGP boundary at the inbound and outbound points, the
   dispatch-heavy case). On top of the fast configuration, a telemetry
   ablation: off / full (every span) / sampled (1-in-16 spans). *)
let set_caches on =
  Frrouting.Attr_intern.set_conversion_cache on;
  Bird.Eattr.set_conversion_cache on

(* --- paired-ratio statistics ---

   BENCH_pr4 reported each leg's best-of-rounds independently; under
   container scheduling noise the independent minima drift apart, which
   is how physically-impossible figures like a negative telemetry
   overhead got published. Every comparison below is paired instead:
   all legs run once per round (warmup pass discarded), the ratio is
   computed within a round where drift is common mode, and the summary
   is the median ratio with the min/max spread alongside, so a noisy
   grid is visible in the artifact instead of laundered by a min. *)

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  if n = 0 then nan
  else if n land 1 = 1 then s.(n / 2)
  else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.

(* Per-round ratios num_i/den_i -> (median, min, max). *)
let ratio_stats num den =
  let n = min (Array.length num) (Array.length den) in
  let r = Array.init n (fun i -> num.(i) /. den.(i)) in
  ( median r,
    Array.fold_left min infinity r,
    Array.fold_left max neg_infinity r )

let record_ratio key (med, lo, hi) =
  record (key ^ ".median") med;
  record (key ^ ".min") lo;
  record (key ^ ".max") hi

(* The extensions-attached dispatch benchmark, isolated from the rest of
   the pipeline. One "update" is what a daemon must dispatch for one
   received UPDATE message; the baseline leg reconstructs the pre-PR
   work (a fresh ops record, a fresh argument list, fresh prefix/source
   buffers and a dispatch per prefix, conversion caches off) and the
   fast leg is what the daemons do now (hoisted ops, a reused argument
   buffer, conversion caches on, and — when [Vmm.batch_invariant] proves
   the chain never reads the prefix — one dispatch shared by the whole
   NLRI list). Two programs bound the spectrum:

   - [ov]: origin validation, prefix-dependent, so both legs dispatch
     per prefix (single-prefix updates); the gap is conversion caching
     plus the calling convention.
   - [rr]: route reflection, statically batch-invariant, dispatched over
     updates carrying [batch_k] prefixes (RIS tables are bursty; updates
     sharing one attribute set across many NLRI are the common case);
     the fast leg collapses the batch to one dispatch. *)
let dispatch_micro () =
  let pi =
    {
      Xbgp.Host_intf.peer_type = Xbgp.Api.ibgp_session;
      peer_as = 65000;
      peer_router_id = 0x0A000003;
      peer_addr = 0x0A000003;
      local_as = 65000;
      local_router_id = 0x0A000002;
      cluster_id = 0x0A000002;
      rr_client = true;
    }
  in
  (* a RIS-like attribute set: a transit-depth AS path, communities (the
     attributes OV converts per call), and reflection attributes from a
     peer reflector (the ones RR probes per call) *)
  let attr_list =
    Bgp.Attr.
      [
        v (Origin Igp);
        v (As_path [ Seq [ 65010; 65020; 65030; 65040; 65050; 65060 ] ]);
        v (Next_hop 0x0A000001);
        v (Local_pref 100);
        v (Communities [ 0x00010001; 0x00010002; 0x00020001 ]);
        v (Originator_id 0x0A000009);
        v (Cluster_list [ 0x0A000007; 0x0A000008 ]);
      ]
  in
  let source =
    {
      Xbgp.Host_intf.src_peer_type = Xbgp.Api.ibgp_session;
      src_router_id = 0x0A000009;
      src_addr = 0x0A000009;
      src_rr_client = true;
      src_is_local = false;
    }
  in
  let batch_k = 8 in
  let rounds = max 7 (runs_n / 2) in
  let point = Xbgp.Api.Bgp_inbound_filter in
  let default () = Xbgp.Api.filter_accept in
  List.iter
    (fun (hname, get_attr) ->
      (* one VMM per engine: the engine is fixed at VM creation, and the
         grid below ablates all four (the whole-chain fused engine is
         the deployment-speed configuration) *)
      let vmm_of engine manifest =
        Xprogs.Registry.vmm_of_manifest ~engine
          ~telemetry:(Telemetry.create ~enabled:false ())
          ~host:"bench" manifest
      in
      let make_ops () =
        {
          Xbgp.Host_intf.null_ops with
          peer_info = (fun () -> Some pi);
          get_attr;
          set_attr = (fun _ -> true);
        }
      in
      (* pre-PR per-prefix dispatch: everything rebuilt per call *)
      let legacy_dispatch vmm i =
        let ops = make_ops () in
        let pbuf = Bytes.create 5 in
        Bytes.set_int32_be pbuf 0 (Int32.of_int i);
        Bytes.set_uint8 pbuf 4 24;
        let args =
          Xbgp.Host_intf.Args.of_list
            [
              (Xbgp.Api.arg_prefix, pbuf);
              (Xbgp.Api.arg_source, Xbgp.Host_intf.source_to_bytes source);
            ]
        in
        ignore (Xbgp.Vmm.run vmm point ~ops ~args ~default)
      in
      (* one timed pass of [body], in per-update seconds *)
      let time ~updates ~cache body =
        set_caches cache;
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        body ();
        (Unix.gettimeofday () -. t0) /. float_of_int updates
      in
      (* paired rounds: one warmup pass of every leg (discarded), then
         every leg once per round so ratios are computed under
         common-mode drift *)
      let paired ~updates legs =
        Array.iter
          (fun (_, cache, body) -> ignore (time ~updates ~cache body))
          legs;
        let times = Array.map (fun _ -> Array.make rounds 0.) legs in
        for r = 0 to rounds - 1 do
          Array.iteri
            (fun i (_, cache, body) ->
              times.(i).(r) <- time ~updates ~cache body)
            legs
        done;
        set_caches true;
        Array.to_list
          (Array.mapi (fun i (name, _, _) -> (name, times.(i))) legs)
      in
      (* A grid = the pre-PR baseline leg plus the hoisted fast loop on
         every engine; "fast" is the whole-chain fused engine, the
         deployment configuration. *)
      let grid group ~updates ~legacy ~fast_of =
        let legs =
          Array.of_list
            (("baseline", false, legacy)
            :: List.map
                 (fun e -> (Ebpf.Vm.engine_name e, true, fast_of e))
                 Ebpf.Vm.all_engines)
        in
        let named = paired ~updates legs in
        let t name = List.assoc name named in
        let base = t "baseline" and fast = t "chain" in
        let ((sp, sp_lo, sp_hi) as speedup) = ratio_stats base fast in
        let key fmt =
          Printf.sprintf ("dispatch.micro.%s.%s." ^^ fmt) hname group
        in
        Printf.printf
          "micro  %-6s %-8s baseline=%.0f up/s  fast=%.0f up/s  \
           speedup=%.2fx [%.2f..%.2f]\n\
           %!"
          hname group
          (1.0 /. median base)
          (1.0 /. median fast)
          sp sp_lo sp_hi;
        record (key "baseline.updates_per_s") (1.0 /. median base);
        record (key "fast.updates_per_s") (1.0 /. median fast);
        record (key "speedup") sp;
        record_ratio (key "speedup_rounds") speedup;
        List.iter
          (fun e ->
            let en = Ebpf.Vm.engine_name e in
            record (key "engine.%s.updates_per_s" en) (1.0 /. median (t en)))
          Ebpf.Vm.all_engines;
        (* the tentpole's own ablation: what fusing the chain buys over
           the per-block engine it is built from *)
        record_ratio (key "chain_vs_block") (ratio_stats (t "block") (t "chain"));
        sp
      in
      let hoisted vmm body_of =
        let ops = make_ops () in
        let pbuf = Bytes.create 5 in
        Bytes.set_uint8 pbuf 4 24;
        let src = Xbgp.Host_intf.source_to_bytes source in
        let args = Xbgp.Host_intf.Args.create () in
        Xbgp.Host_intf.Args.set args Xbgp.Api.arg_prefix pbuf;
        Xbgp.Host_intf.Args.set args Xbgp.Api.arg_source src;
        body_of ~vmm ~ops ~args ~pbuf
      in
      (* --- ov: prefix-dependent, single-prefix updates --- *)
      let iters = 50_000 in
      let ov_vmms =
        List.map
          (fun e -> (e, vmm_of e Xprogs.Origin_validation.manifest))
          Ebpf.Vm.all_engines
      in
      let ov_legacy_vmm = List.assoc Ebpf.Vm.Block ov_vmms in
      let ov_speedup =
        grid "ov" ~updates:iters
          ~legacy:(fun () ->
            for i = 1 to iters do
              legacy_dispatch ov_legacy_vmm i
            done)
          ~fast_of:(fun e ->
            hoisted (List.assoc e ov_vmms) (fun ~vmm ~ops ~args ~pbuf () ->
                for i = 1 to iters do
                  Bytes.set_int32_be pbuf 0 (Int32.of_int i);
                  ignore (Xbgp.Vmm.run vmm point ~ops ~args ~default)
                done))
      in
      ignore ov_speedup;
      (* --- rr: batch-invariant, [batch_k]-prefix updates --- *)
      let updates = 8_000 in
      let rr_vmms =
        List.map
          (fun e -> (e, vmm_of e Xprogs.Route_reflector.manifest))
          Ebpf.Vm.all_engines
      in
      let rr_legacy_vmm = List.assoc Ebpf.Vm.Block rr_vmms in
      let rr_speedup =
        grid "rr_batch" ~updates
          ~legacy:(fun () ->
            for u = 1 to updates do
              for k = 1 to batch_k do
                legacy_dispatch rr_legacy_vmm ((u * batch_k) + k)
              done
            done)
          ~fast_of:(fun e ->
            hoisted (List.assoc e rr_vmms) (fun ~vmm ~ops ~args ~pbuf () ->
                for u = 1 to updates do
                  (* the daemon's guard: one dispatch covers the batch
                     only when the chain is provably prefix-independent *)
                  if
                    Xbgp.Vmm.batch_invariant vmm point
                      ~variant_args:[ Xbgp.Api.arg_prefix ]
                  then begin
                    Bytes.set_int32_be pbuf 0 (Int32.of_int (u * batch_k));
                    ignore (Xbgp.Vmm.run vmm point ~ops ~args ~default)
                  end
                  else
                    for k = 1 to batch_k do
                      Bytes.set_int32_be pbuf 0
                        (Int32.of_int ((u * batch_k) + k));
                      ignore (Xbgp.Vmm.run vmm point ~ops ~args ~default)
                    done
                done))
      in
      record
        (Printf.sprintf "dispatch.micro.%s.rr_batch.batch_k" hname)
        (float_of_int batch_k);
      record (Printf.sprintf "dispatch.micro.%s.headline_speedup" hname)
        rr_speedup)
    [
      ( "frr",
        let attrs = Frrouting.Attr_intern.of_attrs attr_list in
        fun code -> Frrouting.Attr_intern.get_tlv attrs code );
      ( "bird",
        let attrs = Bird.Eattr.of_attrs attr_list in
        fun code -> Bird.Eattr.get_tlv attrs code );
    ]

(* End-to-end: the full Fig. 3 pipeline in updates/sec at the downstream
   router, legs interleaved per round with the per-leg best kept (the
   telemetry-bench methodology — drift is common-mode across a round).
   The knobs restore the legacy behaviour for the baseline leg:
   conversion caches off and [batch_updates] off. On top of the fast
   configuration, a telemetry ablation: off / full / 1-in-16 sampled. *)
let dispatch_pipeline () =
  let n = max 1000 (routes_n / 2) in
  (* the per-leg minimum over rounds is the statistic: individual runs
     drift +/-25% under container scheduling noise, the floor converges
     after a handful of rounds *)
  let rounds = max 6 (runs_n / 2) in
  let routes =
    Dataset.Ris_gen.generate { Dataset.Ris_gen.default_config with count = n }
  in
  let timed mode =
    Gc.compact ();
    let tb = Scenario.Testbed.create mode in
    Scenario.Testbed.establish tb;
    let t0 = Unix.gettimeofday () in
    Scenario.Testbed.feed tb routes;
    if not (Scenario.Testbed.run_until_downstream_has tb n) then
      failwith "dispatch bench: pipeline did not converge";
    Unix.gettimeofday () -. t0
  in
  let sample_n = 16 in
  let telemetry_of = function
    | `Off -> None
    | `Full -> Some (Telemetry.create ~enabled:true ())
    | `Sampled ->
      let t = Telemetry.create ~enabled:true () in
      Telemetry.set_span_sampling t sample_n;
      Some t
  in
  let tele_name = function
    | `Off -> "tele_off"
    | `Full -> "tele_full"
    | `Sampled -> Printf.sprintf "tele_sampled_%d" sample_n
  in
  let roas =
    Dataset.Ris_gen.roas_for ~seed:7 ~valid_pct:75 ~invalid_pct:13 routes
  in
  let hosts = [ (`Frr, "frr"); (`Bird, "bird") ] in
  let scenarios host =
    [
      ( "native",
        fun ~engine:_ ~batch ~tele () ->
          Scenario.Testbed.mode ~host ~ibgp:true ~native_rr:true
            ~batch_updates:batch ?telemetry:(telemetry_of tele) () );
      ( "rr-ext",
        fun ~engine ~batch ~tele () ->
          Scenario.Testbed.mode ~host ~ibgp:true
            ~manifest:Xprogs.Route_reflector.manifest ~engine
            ~batch_updates:batch ?telemetry:(telemetry_of tele) () );
      (* the conversion-heavy extension: OV pulls the AS_PATH and
         COMMUNITIES TLVs for every prefix *)
      ( "ov-ext",
        fun ~engine ~batch ~tele () ->
          Scenario.Testbed.mode ~host ~ibgp:false
            ~manifest:Xprogs.Origin_validation.manifest ~engine
            ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
            ~batch_updates:batch
            ?telemetry:(telemetry_of tele) () );
    ]
  in
  (* Shared paired-rounds driver: warmup pass of every leg (discarded),
     then every leg once per round, rotating the order each round (a
     fixed order hands the early legs a systematically fresher heap —
     a reproducible ~10-20% bias against whichever legs ran last).
     Returns per-leg per-round times for paired-ratio statistics. *)
  let paired_legs legs =
    let times = Hashtbl.create 16 in
    let run_leg round (lname, cache, mode_of) =
      set_caches cache;
      let t = timed (mode_of ()) in
      match round with
      | None -> ()
      | Some r ->
        let a =
          match Hashtbl.find_opt times lname with
          | Some a -> a
          | None ->
            let a = Array.make rounds nan in
            Hashtbl.add times lname a;
            a
        in
        a.(r) <- t
    in
    List.iter (run_leg None) legs;
    let nlegs = List.length legs in
    for round = 0 to rounds - 1 do
      List.iteri
        (fun i _ -> run_leg (Some round) (List.nth legs ((i + round) mod nlegs)))
        legs
    done;
    set_caches true;
    fun lname -> Hashtbl.find times lname
  in
  List.iter
    (fun (host, hname) ->
      List.iter
        (fun (sname, mk) ->
          let key fmt = Printf.sprintf ("dispatch.%s.%s." ^^ fmt) hname sname in
          (* leg list: the legacy baseline, the cache x telemetry grid
             with batching on and the fused chain engine (cache_on.
             tele_off is the fast leg), and — for extension scenarios —
             the remaining engines as an ablation *)
          let legs =
            (("baseline", false, mk ~engine:Ebpf.Vm.Interpreted ~batch:false ~tele:`Off)
            :: List.concat_map
                 (fun cache ->
                   let cname = if cache then "cache_on" else "cache_off" in
                   List.map
                     (fun tele ->
                       ( cname ^ "." ^ tele_name tele,
                         cache,
                         mk ~engine:Ebpf.Vm.Chain ~batch:true ~tele ))
                     [ `Off; `Full; `Sampled ])
                 [ false; true ])
            @
            if sname = "native" then []
            else
              List.map
                (fun e ->
                  ( "engine_" ^ Ebpf.Vm.engine_name e,
                    true,
                    mk ~engine:e ~batch:true ~tele:`Off ))
                [ Ebpf.Vm.Interpreted; Ebpf.Vm.Compiled; Ebpf.Vm.Block ]
          in
          let t = paired_legs legs in
          let ups lname = float_of_int n /. median (t lname) in
          let baseline = ups "baseline" in
          let fast = ups "cache_on.tele_off" in
          let ((sp, sp_lo, sp_hi) as speedup) =
            ratio_stats (t "baseline") (t "cache_on.tele_off")
          in
          Printf.printf
            "%-6s %-8s baseline=%.0f up/s  fast=%.0f up/s  speedup=%.2fx \
             [%.2f..%.2f]\n\
             %!"
            hname sname baseline fast sp sp_lo sp_hi;
          record (key "baseline.updates_per_s") baseline;
          record (key "fast.updates_per_s") fast;
          record (key "speedup") sp;
          record_ratio (key "speedup_rounds") speedup;
          List.iter
            (fun (lname, _, _) ->
              if lname <> "baseline" then begin
                Printf.printf "%-6s %-8s %s: %.0f up/s\n%!" hname sname lname
                  (ups lname);
                record (key "%s.updates_per_s" lname) (ups lname)
              end)
            legs;
          (* per-dispatch telemetry overhead with span sampling, paired
             per round against the same fast configuration with
             telemetry off: the acceptance bound is < 25% *)
          let overhead slow =
            let m, lo, hi =
              ratio_stats (t ("cache_on." ^ tele_name slow)) (t "cache_on.tele_off")
            in
            ((m -. 1.) *. 100., (lo -. 1.) *. 100., (hi -. 1.) *. 100.)
          in
          let ((full, _, _) as fullr) = overhead `Full in
          let ((sampled, _, _) as sampledr) = overhead `Sampled in
          Printf.printf
            "%-6s %-8s telemetry overhead: full=%.1f%%  sampled=%.1f%%\n%!"
            hname sname full sampled;
          record (key "tele_full_overhead_pct") full;
          record_ratio (key "tele_full_overhead_pct_rounds") fullr;
          record (key "tele_sampled_overhead_pct") sampled;
          record_ratio (key "tele_sampled_overhead_pct_rounds") sampledr)
        (scenarios host);
      (* --- extension-attached vs native, the tentpole's acceptance
         figure. Each extension is paired with its *native
         re-implementation of the same function* (native RR for rr,
         native trie/hash OV for ov) in the same rounds; the ratio is
         ext_time / native_time per round (1.0 = native parity, the
         regression guard trips above 1.3). Caches on, batching on,
         telemetry off, chain engine — the deployment configuration. *)
      let ratio_pool =
        [
          ( "rr_native",
            true,
            fun () ->
              Scenario.Testbed.mode ~host ~ibgp:true ~native_rr:true () );
          ( "rr_chain",
            true,
            fun () ->
              Scenario.Testbed.mode ~host ~ibgp:true
                ~manifest:Xprogs.Route_reflector.manifest
                ~engine:Ebpf.Vm.Chain () );
          ( "ov_native",
            true,
            fun () ->
              Scenario.Testbed.mode ~host ~ibgp:false ~native_ov_roas:roas () );
          ( "ov_chain",
            true,
            fun () ->
              Scenario.Testbed.mode ~host ~ibgp:false
                ~manifest:Xprogs.Origin_validation.manifest
                ~engine:Ebpf.Vm.Chain
                ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
                () );
        ]
      in
      let t = paired_legs ratio_pool in
      List.iter
        (fun grid ->
          let ((m, lo, hi) as r) =
            ratio_stats (t (grid ^ "_chain")) (t (grid ^ "_native"))
          in
          Printf.printf
            "%-6s %-8s chain/native ratio: %.3f [%.3f..%.3f]\n%!" hname grid m
            lo hi;
          record_ratio
            (Printf.sprintf "dispatch.%s.%s.chain_native_ratio" hname grid)
            r)
        [ "rr"; "ov" ])
    hosts

let dispatch_bench () =
  Printf.printf
    "=== Dispatch fast path: caches x batching x telemetry ===\n";
  dispatch_micro ();
  dispatch_pipeline ();
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Fan-out: encode-once update groups vs per-peer export               *)
(* ------------------------------------------------------------------ *)

(* Full-table export from a hub DUT to K identical spokes (the Star
   topology), grouped vs per-peer. Every route carries a distinct MED so
   attribute grouping cannot collapse the table into a handful of shared
   frames: the grouped leg's win must come from running export policy,
   outbound dispatch and UPDATE encoding once per group instead of once
   per peer. A group-invariant outbound extension is attached so the
   per-peer baseline also pays K bytecode dispatches per route — the
   deployment shape the update-group engine is for.

   Env knobs: XBGP_BENCH_ROUTES (table size, default 100k here — this is
   a full-table bench), XBGP_BENCH_RUNS (rounds = max 2 runs/5). *)

let fanout_n =
  try int_of_string (Sys.getenv "XBGP_BENCH_ROUTES") with Not_found -> 100_000

let fanout_routes n =
  List.init n (fun i ->
      let a =
        Bgp.Prefix.addr_of_quad
          (32 + (i lsr 16), (i lsr 8) land 255, i land 255, 0)
      in
      ( Bgp.Prefix.v a 24,
        Bgp.Attr.
          [
            v (Origin Igp);
            v (As_path [ Seq [ 64900; 64901 ] ]);
            v (Next_hop 0x0A000001);
            v (Med i);
          ] ))

(* pure compute, no helpers: provably group-invariant, attached at both
   outbound points (filter and encode-message — the realistic "policy
   plus wire rewriter" deployment), so the grouped leg dispatches each
   once per route while the baseline dispatches once per route per
   peer *)
let fanout_vmm () =
  let prog =
    Ebpf.Asm.(
      assemble
        [
          movi Ebpf.Insn.R7 60;
          label "compute";
          addi Ebpf.Insn.R0 3;
          subi Ebpf.Insn.R7 1;
          jnei Ebpf.Insn.R7 0 "compute";
          movi Ebpf.Insn.R0 0;
          (* filter_accept *)
          exit_;
        ])
  in
  let xp = Xbgp.Xprog.v ~name:"fanout_bench" [ ("main", prog) ] in
  let vmm = Xbgp.Vmm.create ~host:"bench" ~engine:Ebpf.Vm.Block () in
  (match Xbgp.Vmm.register vmm xp with
  | Ok () -> ()
  | Error e -> failwith ("fanout bench: register: " ^ e));
  List.iter
    (fun point ->
      match
        Xbgp.Vmm.attach vmm ~program:"fanout_bench" ~bytecode:"main" ~point
          ~order:0
      with
      | Ok () -> ()
      | Error e -> failwith ("fanout bench: attach: " ^ e))
    [ Xbgp.Api.Bgp_outbound_filter; Xbgp.Api.Bgp_encode_message ];
  vmm

(* one full-table export; returns wall-clock seconds between the first
   announcement and every sink holding the whole table, plus the star
   for telemetry readout *)
let fanout_run ~host ~grouped ~npeers routes =
  let star =
    Scenario.Star.create ~host ~vmm:(fanout_vmm ()) ~update_groups:grouped
      ~record_frames:false ~track_rib:false ~npeers ()
  in
  Scenario.Star.establish star;
  let n = List.length routes in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (p, attrs) -> Scenario.Star.originate star p attrs) routes;
  let full () =
    let ok = ref true in
    for i = 0 to npeers - 1 do
      if Scenario.Star.sink_adv_seen star i < n then ok := false
    done;
    !ok
  in
  if not (Scenario.Star.run_until ~timeout_us:3_600_000_000 star full) then
    failwith "fanout bench: export did not converge";
  (Unix.gettimeofday () -. t0, star)

let fanout_bench () =
  Printf.printf
    "=== Fan-out: update groups (encode once) vs per-peer export ===\n";
  let routes = fanout_routes fanout_n in
  let rounds = max 2 (runs_n / 5) in
  let peer_counts = [ 2; 4; 8; 16; 32 ] in
  List.iter
    (fun (host, hname) ->
      List.iter
        (fun npeers ->
          let key fmt =
            Printf.sprintf ("fanout.%s.p%d." ^^ fmt) hname npeers
          in
          let best_g = ref infinity and best_b = ref infinity in
          let saved = ref 0 and groups = ref 0 in
          for round = 0 to rounds - 1 do
            (* alternate leg order across rounds so neither leg
               systematically inherits a fresher heap *)
            let legs =
              if round mod 2 = 0 then [ true; false ] else [ false; true ]
            in
            List.iter
              (fun grouped ->
                Gc.compact ();
                let dt, star = fanout_run ~host ~grouped ~npeers routes in
                if grouped then begin
                  best_g := min !best_g dt;
                  saved :=
                    Telemetry.counter_value
                      (Scenario.Star.telemetry star)
                      ~name:"bgp_fanout_bytes_saved_total"
                      ~labels:[ ("daemon", "dut") ];
                  groups := Scenario.Daemon.group_count (Scenario.Star.dut star)
                end
                else best_b := min !best_b dt)
              legs
          done;
          let n = float_of_int fanout_n in
          let speedup = !best_b /. !best_g in
          Printf.printf
            "%-6s p%-3d baseline=%.0f routes/s  grouped=%.0f routes/s  \
             speedup=%.2fx  groups=%d  bytes_saved=%d\n\
             %!"
            hname npeers (n /. !best_b) (n /. !best_g) speedup !groups !saved;
          record (key "baseline.routes_per_s") (n /. !best_b);
          record (key "grouped.routes_per_s") (n /. !best_g);
          record (key "speedup") speedup;
          record (key "groups") (float_of_int !groups);
          record (key "bytes_saved") (float_of_int !saved))
        peer_counts)
    [ (`Frr, "frr"); (`Bird, "bird") ];
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* shard: multicore import-pipeline scaling (E18)                      *)
(* ------------------------------------------------------------------ *)

let shard_n =
  try int_of_string (Sys.getenv "XBGP_BENCH_SHARD_ROUTES")
  with Not_found -> 4_000

(* A compute-heavy inbound filter that READS the prefix argument: the
   prefix fetch makes the chain prefix-dependent, so the host cannot
   collapse the NLRI batch into one dispatch ([batch_invariant] fails)
   and must run the per-prefix lane — while [h_get_arg] is a batchable
   helper, so [shard_parallel_safe] still holds and the per-prefix lane
   is the PARALLEL one. That is the regime sharding exists for: real
   per-route policy work, fanned out across worker domains. *)
let shard_vmm ~shards () =
  let prog =
    Ebpf.Asm.(
      assemble
        [
          movi Ebpf.Insn.R1 Xbgp.Api.arg_prefix;
          call Xbgp.Api.h_get_arg;
          jeqi Ebpf.Insn.R0 0 "compute_init";
          ldxw Ebpf.Insn.R6 Ebpf.Insn.R0 0;
          (* fold the address word in so the read is load-bearing *)
          label "compute_init";
          movi Ebpf.Insn.R7 120;
          label "compute";
          addi Ebpf.Insn.R6 3;
          subi Ebpf.Insn.R7 1;
          jnei Ebpf.Insn.R7 0 "compute";
          movi Ebpf.Insn.R0 0;
          (* filter_accept *)
          exit_;
        ])
  in
  let xp = Xbgp.Xprog.v ~name:"shard_bench" [ ("main", prog) ] in
  let vmm = Xbgp.Vmm.create ~host:"bench" ~engine:Ebpf.Vm.Block () in
  (if shards > 1 then
     match Xbgp.Vmm.set_shards vmm shards with
     | Ok () -> ()
     | Error e -> failwith ("shard bench: set_shards: " ^ e));
  (match Xbgp.Vmm.register vmm xp with
  | Ok () -> ()
  | Error e -> failwith ("shard bench: register: " ^ e));
  (match
     Xbgp.Vmm.attach vmm ~program:"shard_bench" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:0
   with
  | Ok () -> ()
  | Error e -> failwith ("shard bench: attach: " ^ e));
  vmm

let shard_routes n =
  List.init n (fun i ->
      Bgp.Prefix.v
        (Bgp.Prefix.addr_of_quad (20 + (i lsr 16), (i lsr 8) land 0xff,
                                  i land 0xff, 0))
        24)

(* one full-table import through sink 0 in 16-prefix UPDATEs; returns
   wall-clock seconds until the DUT holds the table and every other
   sink received it, plus the lane counters *)
let shard_run ~host ~shards ~npeers routes =
  let star =
    Scenario.Star.create ~host ~vmm:(shard_vmm ~shards ()) ~shards
      ~record_frames:false ~track_rib:false ~npeers ()
  in
  Scenario.Star.establish star;
  let n = List.length routes in
  let attrs =
    Bgp.Attr.
      [
        v (Origin Igp);
        v (As_path [ Seq [ 65101 ] ]);
        v (Next_hop (Scenario.Star.sink_address star 0));
      ]
  in
  let rec chunks = function
    | [] -> []
    | l ->
      let rec take k acc = function
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | rest -> (List.rev acc, rest)
      in
      let c, rest = take 16 [] l in
      c :: chunks rest
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun c -> Scenario.Star.sink_announce star 0 ~attrs c)
    (chunks routes);
  let full () =
    Scenario.Daemon.loc_count (Scenario.Star.dut star) >= n
    &&
    let ok = ref true in
    for i = 1 to npeers - 1 do
      if Scenario.Star.sink_adv_seen star i < n then ok := false
    done;
    !ok
  in
  if not (Scenario.Star.run_until ~timeout_us:3_600_000_000 star full) then
    failwith "shard bench: import did not converge";
  let dt = Unix.gettimeofday () -. t0 in
  let info = Scenario.Daemon.shard_info (Scenario.Star.dut star) in
  Scenario.Star.shutdown star;
  (dt, info)

let shard_bench () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "=== Shard: multicore import-pipeline scaling (%d routes, %d cores) \
     ===\n"
    shard_n cores;
  record "shard.cores" (float_of_int cores);
  record "shard.routes" (float_of_int shard_n);
  let routes = shard_routes shard_n in
  let rounds = max 2 (runs_n / 5) in
  let shard_counts = [ 1; 2; 4; 8 ] in
  List.iter
    (fun (host, hname) ->
      List.iter
        (fun npeers ->
          let best = Hashtbl.create 4 in
          let lanes = Hashtbl.create 4 in
          let run_leg shards =
            Gc.compact ();
            let dt, info = shard_run ~host ~shards ~npeers routes in
            Hashtbl.replace lanes shards
              (info.Shard.Info.par_batches, info.Shard.Info.seq_batches);
            let prev =
              Option.value ~default:infinity (Hashtbl.find_opt best shards)
            in
            Hashtbl.replace best shards (min prev dt)
          in
          List.iter run_leg shard_counts (* warmup *);
          Hashtbl.reset best;
          let nlegs = List.length shard_counts in
          for round = 0 to rounds - 1 do
            (* rotate the leg order so no shard count systematically
               inherits a fresher heap *)
            List.iteri
              (fun i _ ->
                run_leg (List.nth shard_counts ((i + round) mod nlegs)))
              shard_counts
          done;
          let n = float_of_int shard_n in
          let t1 = Hashtbl.find best 1 in
          List.iter
            (fun shards ->
              let t = Hashtbl.find best shards in
              let par, seq = Hashtbl.find lanes shards in
              let key fmt =
                Printf.sprintf ("shard.%s.p%d.s%d." ^^ fmt) hname npeers
                  shards
              in
              Printf.printf
                "%-6s p%-2d s%d  %8.0f routes/s  speedup=%.2fx  \
                 par_batches=%d seq_batches=%d\n\
                 %!"
                hname npeers shards (n /. t) (t1 /. t) par seq;
              record (key "routes_per_s") (n /. t);
              record (key "speedup") (t1 /. t);
              record (key "par_batches") (float_of_int par);
              record (key "seq_batches") (float_of_int seq))
            shard_counts)
        [ 2; 8 ])
    [ (`Frr, "frr"); (`Bird, "bird") ];
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Flight recorder: record-path cost and pipeline overhead (E16)       *)
(* ------------------------------------------------------------------ *)

(* The observability tax. Micro: nanoseconds per [Recorder.record] in
   the two ring regimes (append-only vs. steady-state eviction). End to
   end: the Fig. 3 pipeline with route-reflection bytecode, run bare,
   with a flight recorder attached (default 64 KiB ring — a full-table
   feed overflows it, so the eviction path is priced in), and with a
   recorder plus a BMP mirror. Legs interleave per round with the
   per-leg best kept (the telemetry-bench methodology: drift is
   common-mode within a round, timing noise is one-sided). *)
let recorder_bench () =
  Printf.printf
    "=== Flight recorder: record cost and pipeline overhead ===\n";
  let micro_rounds = max 5 (runs_n / 3) in
  let micro_record label capacity =
    let fields =
      [
        ("daemon", "dut"); ("peer", "7"); ("prefix", "10.32.0.0/24");
        ("why", "as_path_len");
      ]
    in
    let iters = 200_000 in
    let leg () =
      let rc = Obs.Recorder.create ~capacity ~name:"bench" () in
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        Obs.Recorder.record rc Obs.Recorder.Route_add fields
      done;
      (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9
    in
    ignore (leg ());
    let best = ref infinity in
    for _ = 1 to micro_rounds do
      best := min !best (leg ())
    done;
    Printf.printf "%-34s %8.1f ns/event\n%!" label !best;
    record (Printf.sprintf "recorder.micro.%s.ns_per_event" label) !best
  in
  (* 16 MiB swallows every frame of the loop: pure append *)
  micro_record "record_append" (1 lsl 24);
  (* 4 KiB is full within ~60 events: every record also evicts *)
  micro_record "record_evicting" 4096;
  let n = max 1000 (routes_n / 2) in
  let rounds = max 5 (runs_n / 3) in
  let routes =
    Dataset.Ris_gen.generate { Dataset.Ris_gen.default_config with count = n }
  in
  let mode host =
    Scenario.Testbed.mode ~host ~ibgp:true
      ~manifest:Xprogs.Route_reflector.manifest ()
  in
  let timed host obs =
    Gc.compact ();
    let tb = Scenario.Testbed.create (mode host) in
    let rc =
      if obs = `Off then None
      else begin
        let rc = Obs.Recorder.create ~name:"dut" () in
        Obs.Recorder.set_clock rc (fun () ->
            Netsim.Sched.now tb.Scenario.Testbed.sched);
        Scenario.Daemon.set_recorder tb.Scenario.Testbed.dut (Some rc);
        if obs = `Bmp then
          Scenario.Daemon.set_collector tb.Scenario.Testbed.dut
            (Some (Obs.Bmp.collector ()));
        Some rc
      end
    in
    Scenario.Testbed.establish tb;
    let t0 = Unix.gettimeofday () in
    Scenario.Testbed.feed tb routes;
    if not (Scenario.Testbed.run_until_downstream_has tb n) then
      failwith "recorder bench: pipeline did not converge";
    (Unix.gettimeofday () -. t0, rc)
  in
  List.iter
    (fun (host, hname) ->
      let legs = [ (`Off, "off"); (`Recorder, "recorder"); (`Bmp, "recorder_bmp") ] in
      let best = Hashtbl.create 4 in
      let held = ref 0 and evicted = ref 0 in
      let run_leg (obs, lname) =
        let dt, rc = timed host obs in
        (match rc with
        | Some rc when obs = `Recorder ->
          held := Obs.Recorder.length rc;
          evicted := Obs.Recorder.dropped rc
        | _ -> ());
        let prev =
          Option.value ~default:infinity (Hashtbl.find_opt best lname)
        in
        Hashtbl.replace best lname (min prev dt)
      in
      List.iter run_leg legs;
      (* warmup *)
      Hashtbl.reset best;
      let nlegs = List.length legs in
      for round = 0 to rounds - 1 do
        (* rotate the leg order so no leg systematically inherits a
           fresher heap *)
        List.iteri (fun i _ -> run_leg (List.nth legs ((i + round) mod nlegs))) legs
      done;
      let ups lname = float_of_int n /. Hashtbl.find best lname in
      let off = ups "off" in
      let pct lname = (off -. ups lname) /. off *. 100. in
      Printf.printf
        "%-6s off=%.0f up/s  recorder=%.0f up/s (%+.1f%%)  \
         recorder+bmp=%.0f up/s (%+.1f%%)  ring held=%d evicted=%d\n%!"
        hname off (ups "recorder") (pct "recorder") (ups "recorder_bmp")
        (pct "recorder_bmp") !held !evicted;
      let key fmt = Printf.sprintf ("recorder.%s." ^^ fmt) hname in
      record (key "off.updates_per_s") off;
      record (key "recorder.updates_per_s") (ups "recorder");
      record (key "recorder_overhead_pct") (pct "recorder");
      record (key "recorder_bmp.updates_per_s") (ups "recorder_bmp");
      record (key "recorder_bmp_overhead_pct") (pct "recorder_bmp");
      record (key "ring.events_held") (float_of_int !held);
      record (key "ring.events_evicted") (float_of_int !evicted))
    [ (`Frr, "frr"); (`Bird, "bird") ];
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* chaos: convergence-time distributions from the chaos campaign       *)
(* ------------------------------------------------------------------ *)

let chaos_cases_n =
  try int_of_string (Sys.getenv "XBGP_BENCH_CHAOS_CASES")
  with Not_found -> 200

let chaos_seed =
  try int_of_string (Sys.getenv "XBGP_BENCH_CHAOS_SEED") with Not_found -> 42

let chaos_bench () =
  Printf.printf
    "=== Chaos: per-phase convergence distributions (%d cases, seed %d) \
     ===\n\
     %!"
    chaos_cases_n chaos_seed;
  let s =
    Fuzz.Chaos.campaign ~seed:chaos_seed ~cases:chaos_cases_n ()
  in
  record "chaos.cases" (float_of_int s.cases);
  record "chaos.failures" (float_of_int (List.length s.failures));
  List.iter
    (fun (topo, n) ->
      record (Printf.sprintf "chaos.topology.%s.cases" topo)
        (float_of_int n))
    s.topologies;
  if s.failures <> [] then
    Printf.printf "!! %d failing case(s) — distributions below cover the \
                   passing legs only\n"
      (List.length s.failures);
  (* Convergence samples are (phase label, simulated us) from leg 0 of
     every case. Phase labels carry instance detail after the first ':'
     ("doublefail:13+0"), so bucket by the family prefix. *)
  let family label =
    match String.index_opt label ':' with
    | Some i -> String.sub label 0 i
    | None -> label
  in
  let percentile p xs =
    let a = Array.of_list (List.sort compare xs) in
    let n = Array.length a in
    let i = p *. float_of_int (n - 1) in
    let lo = int_of_float i in
    let hi = min (lo + 1) (n - 1) in
    let frac = i -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  in
  let buckets = Hashtbl.create 16 and order = ref [] in
  List.iter
    (fun (label, us) ->
      let f = family label in
      let l =
        match Hashtbl.find_opt buckets f with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add buckets f l;
          order := f :: !order;
          l
      in
      l := (float_of_int us /. 1e6) :: !l)
    s.convergence;
  let stats name xs =
    let mn, _, md, _, mx = quartiles xs in
    let p90 = percentile 0.9 xs in
    Printf.printf
      "%-14s n=%-5d min=%6.2fs  median=%6.2fs  p90=%6.2fs  max=%6.2fs\n%!"
      name (List.length xs) mn md p90 mx;
    let key fmt = Printf.sprintf ("chaos.%s." ^^ fmt) name in
    record (key "n") (float_of_int (List.length xs));
    record (key "min_s") mn;
    record (key "median_s") md;
    record (key "p90_s") p90;
    record (key "max_s") mx
  in
  List.iter (fun f -> stats f !(Hashtbl.find buckets f)) (List.rev !order);
  (match List.map (fun (_, us) -> float_of_int us /. 1e6) s.convergence with
  | [] -> ()
  | all -> stats "all" all);
  Printf.printf "\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let which =
    match List.filter (fun a -> a <> "--json") args with
    | [] -> if json then "json" else "all"
    | w :: _ -> w
  in
  (match which with
  | "fig1" -> fig1 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "micro" -> micro ()
  | "ablation" -> ablation ()
  | "churn" -> churn ()
  | "telemetry" -> telemetry_bench ()
  | "dispatch" -> dispatch_bench ()
  | "fanout" -> fanout_bench ()
  | "recorder" -> recorder_bench ()
  | "chaos" -> chaos_bench ()
  | "shard" -> shard_bench ()
  | "json" ->
    (* bare --json: run exactly the benches whose numbers land in the file *)
    micro ();
    ablation ();
    telemetry_bench ()
  | "all" ->
    fig1 ();
    fig4 ();
    fig5 ();
    ablation ();
    churn ();
    telemetry_bench ();
    micro ()
  | other ->
    Printf.eprintf
      "unknown bench %S \
       (fig1|fig4|fig5|ablation|churn|telemetry|dispatch|fanout|recorder|chaos|shard|micro|all; \
       add --json to write BENCH_pr3.json, BENCH_pr9.json for dispatch, \
       BENCH_pr5.json for fanout, BENCH_pr6.json for chaos, \
       BENCH_pr8.json for recorder, or BENCH_pr10.json for shard)\n"
      other;
    exit 1);
  if json then
    write_json
      (match which with
      | "dispatch" -> "BENCH_pr9.json"
      | "fanout" -> "BENCH_pr5.json"
      | "chaos" -> "BENCH_pr6.json"
      | "recorder" -> "BENCH_pr8.json"
      | "shard" -> "BENCH_pr10.json"
      | _ -> "BENCH_pr3.json");
  Printf.printf "done.\n"
