(* The dispatch fast path: conversion-cache equivalence (cached and
   fresh conversions must be indistinguishable, for both hosts and under
   mutation), batch-invariance analysis (which import chains may legally
   share one dispatch across an UPDATE's NLRI), batched NLRI processing
   (a K-prefix UPDATE must leave exactly the state of K single-prefix
   UPDATEs), and span sampling (counters exact, spans 1-in-N). *)

let qc = Qc.to_alcotest
let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* --- generators ------------------------------------------------- *)

let gen_asn = QCheck2.Gen.int_range 1 0xFFFF
let gen_u32 = QCheck2.Gen.int_range 1 0xFFFFFFF

(* a well-formed attribute list: mandatory attributes always present,
   optional ones sometimes *)
let gen_attr_list =
  QCheck2.Gen.(
    let opt_attr g = option (map Bgp.Attr.v g) in
    map
      (fun (path, (med, (lp, (comms, (orig, cl))))) ->
        Bgp.Attr.(
          [
            v (Origin Igp);
            v (As_path [ Seq path ]);
            v (Next_hop 0x0A000001);
          ]
          @ List.filter_map Fun.id [ med; lp; comms; orig; cl ]))
      (pair
         (list_size (int_range 1 6) gen_asn)
         (pair
            (opt_attr (map (fun m -> Bgp.Attr.Med m) gen_u32))
            (pair
               (opt_attr (map (fun l -> Bgp.Attr.Local_pref l) gen_u32))
               (pair
                  (opt_attr
                     (map
                        (fun cs -> Bgp.Attr.Communities cs)
                        (list_size (int_range 1 4) gen_u32)))
                  (pair
                     (opt_attr
                        (map (fun o -> Bgp.Attr.Originator_id o) gen_u32))
                     (opt_attr
                        (map
                           (fun cl -> Bgp.Attr.Cluster_list cl)
                           (list_size (int_range 1 3) gen_u32)))))))))

(* a mutation: install/replace an attribute, remove an optional one, or
   prepend to the AS path — the three cache-invalidation paths *)
type mutation =
  | Set of Bgp.Attr.t
  | Remove of int
  | Prepend of int

let gen_mutation =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun m -> Set (Bgp.Attr.v (Bgp.Attr.Med m)))
          gen_u32;
        map
          (fun cs -> Set (Bgp.Attr.v (Bgp.Attr.Communities cs)))
          (list_size (int_range 1 4) gen_u32);
        map (fun l -> Set (Bgp.Attr.v (Bgp.Attr.Local_pref l))) gen_u32;
        map
          (fun c -> Remove c)
          (oneofl
             Bgp.Attr.
               [
                 code_med;
                 code_local_pref;
                 code_communities;
                 code_originator_id;
                 code_cluster_list;
               ]);
        map (fun a -> Prepend a) gen_asn;
      ])

let gen_case =
  QCheck2.Gen.(pair gen_attr_list (list_size (int_range 0 6) gen_mutation))

let all_codes =
  Bgp.Attr.
    [
      code_origin;
      code_as_path;
      code_next_hop;
      code_med;
      code_local_pref;
      code_atomic_aggregate;
      code_aggregator;
      code_communities;
      code_originator_id;
      code_cluster_list;
    ]

(* --- FRR cache equivalence -------------------------------------- *)

(* every xBGP-boundary conversion the record supports, as comparable
   strings (the returned bytes are shared, so copy) *)
let observe_frr t =
  ( Frrouting.Attr_intern.to_attrs t,
    List.filter_map
      (fun c ->
        Option.map
          (fun b -> (c, Bytes.to_string b))
          (Frrouting.Attr_intern.get_tlv t c))
      all_codes )

let apply_frr t = function
  | Set a -> Frrouting.Attr_intern.set_tlv t (Bgp.Attr.to_tlv a)
  | Remove c -> Frrouting.Attr_intern.remove t c
  | Prepend asn -> Frrouting.Attr_intern.prepend_as t asn

(* run the whole build+mutate sequence, observing all conversions twice
   after every step (the second observation exercises the warm path) *)
let trace_frr ~cache (attrs, muts) =
  Frrouting.Attr_intern.set_conversion_cache cache;
  Fun.protect
    ~finally:(fun () -> Frrouting.Attr_intern.set_conversion_cache true)
    (fun () ->
      let t0 = Frrouting.Attr_intern.of_attrs attrs in
      let acc = ref [ observe_frr t0; observe_frr t0 ] in
      let _final =
        List.fold_left
          (fun t m ->
            let t' = apply_frr t m in
            acc := observe_frr t' :: observe_frr t' :: !acc;
            t')
          t0 muts
      in
      List.rev !acc)

let prop_frr_cache_equiv =
  QCheck2.Test.make ~count:300 ~name:"frr cached = fresh conversions"
    gen_case
    (fun case -> trace_frr ~cache:true case = trace_frr ~cache:false case)

(* --- BIRD cache equivalence ------------------------------------- *)

let observe_bird s =
  ( Bird.Eattr.to_attrs s,
    Bytes.to_string (Bird.Eattr.encode_known s),
    List.filter_map
      (fun c ->
        Option.map (fun b -> (c, Bytes.to_string b)) (Bird.Eattr.get_tlv s c))
      all_codes )

let apply_bird s = function
  | Set a -> Bird.Eattr.set_tlv s (Bgp.Attr.to_tlv a)
  | Remove c -> Bird.Eattr.remove_code c s
  | Prepend asn -> Bird.Eattr.prepend_as s asn

let trace_bird ~cache (attrs, muts) =
  Bird.Eattr.set_conversion_cache cache;
  Fun.protect
    ~finally:(fun () -> Bird.Eattr.set_conversion_cache true)
    (fun () ->
      let s0 = Bird.Eattr.of_attrs attrs in
      let acc = ref [ observe_bird s0; observe_bird s0 ] in
      let _final =
        List.fold_left
          (fun s m ->
            let s' = apply_bird s m in
            acc := observe_bird s' :: observe_bird s' :: !acc;
            s')
          s0 muts
      in
      List.rev !acc)

let prop_bird_cache_equiv =
  QCheck2.Test.make ~count:300 ~name:"bird cached = fresh conversions"
    gen_case
    (fun case -> trace_bird ~cache:true case = trace_bird ~cache:false case)

(* the memo actually serves warm probes (otherwise the equivalence
   property would pass vacuously with a cache that never engages) *)
let test_cache_hits () =
  Frrouting.Attr_intern.set_conversion_cache true;
  Frrouting.Attr_intern.reset_intern_table ();
  let t =
    Frrouting.Attr_intern.of_attrs
      Bgp.Attr.
        [
          v (Origin Igp);
          v (As_path [ Seq [ 65001; 65002 ] ]);
          v (Next_hop 0x0A000001);
          v (Communities [ 1; 2; 3 ]);
        ]
  in
  Frrouting.Attr_intern.reset_conversion_cache_stats ();
  for _ = 1 to 10 do
    ignore (Frrouting.Attr_intern.get_tlv t Bgp.Attr.code_as_path);
    ignore (Frrouting.Attr_intern.get_tlv t Bgp.Attr.code_communities)
  done;
  let hits, misses = Frrouting.Attr_intern.conversion_cache_stats () in
  check_int "one miss per distinct code" 2 misses;
  check_int "warm probes hit" 18 hits;
  (* absent attributes are answered from the record, not the memo *)
  Frrouting.Attr_intern.reset_conversion_cache_stats ();
  ignore (Frrouting.Attr_intern.get_tlv t Bgp.Attr.code_med);
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "absent probe touches no memo" (0, 0)
    (Frrouting.Attr_intern.conversion_cache_stats ())

(* --- batch-invariance analysis ---------------------------------- *)

let vmm_of m = Xprogs.Registry.vmm_of_manifest ~host:"test" m

let test_batch_invariant () =
  let inv vmm =
    Xbgp.Vmm.batch_invariant vmm Xbgp.Api.Bgp_inbound_filter
      ~variant_args:[ Xbgp.Api.arg_prefix ]
  in
  (* empty chain: vacuously invariant *)
  check_bool "empty chain" true (inv (Xbgp.Vmm.create ~host:"test" ()));
  (* route reflection reads peer info and attributes only *)
  check_bool "route_reflector import" true
    (inv (vmm_of Xprogs.Route_reflector.manifest));
  (* origin validation fetches the prefix argument: the verdict varies
     across the batch *)
  check_bool "origin_validation import" false
    (inv (vmm_of Xprogs.Origin_validation.manifest));
  (* prefix_limit counts per-call map state: effectful *)
  check_bool "prefix_limit import" false
    (inv (vmm_of Xprogs.Prefix_limit.manifest));
  (* map-writing chains are excluded wholesale *)
  check_bool "flap_damping import" false
    (inv (vmm_of Xprogs.Flap_damping.manifest));
  check_bool "rate_limit import" false
    (inv (vmm_of Xprogs.Rate_limit.manifest));
  (* a read-only lookup is batchable on a hash map but stateful on an
     LRU map, whose recency refresh makes the run count observable *)
  let probe kind =
    let prog =
      let open Ebpf.Asm in
      assemble
        [
          stw R10 (-4) 0;
          movi R1 0;
          mov R2 R10;
          addi R2 (-4);
          call Xbgp.Api.h_map_lookup;
          movi R0 0;
          exit_;
        ]
    in
    let xp =
      Xbgp.Xprog.v ~name:"probe"
        ~maps:[ Xbgp.Xprog.map ~name:"m" ~kind ~key_size:4 ~value_size:4 () ]
        [ ("import", prog) ]
    in
    let vmm = Xbgp.Vmm.create ~host:"test" () in
    (match Xbgp.Vmm.register vmm xp with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    (match
       Xbgp.Vmm.attach vmm ~program:"probe" ~bytecode:"import"
         ~point:Xbgp.Api.Bgp_inbound_filter ~order:0
     with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    vmm
  in
  check_bool "hash-map read-only chain" true (inv (probe Ebpf.Map.Hash));
  check_bool "lru-map read is stateful" false (inv (probe Ebpf.Map.Lru))

let test_dispatch_summary () =
  let summary_of prog bc =
    Xbgp.Xprog.dispatch_summary (List.assoc bc prog.Xbgp.Xprog.bytecodes)
  in
  let rr = summary_of Xprogs.Route_reflector.program "import" in
  check_bool "rr import non-effectful" false rr.Xbgp.Xprog.effectful;
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "rr import arg reads" (Some []) rr.Xbgp.Xprog.arg_reads;
  let ov = summary_of Xprogs.Origin_validation.program "import" in
  check_bool "ov import non-effectful" false ov.Xbgp.Xprog.effectful;
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "ov import reads the prefix"
    (Some [ Xbgp.Api.arg_prefix ])
    ov.Xbgp.Xprog.arg_reads;
  let pl = summary_of Xprogs.Prefix_limit.program "import" in
  check_bool "prefix_limit import effectful (map writes)" true
    pl.Xbgp.Xprog.effectful;
  let fd = summary_of Xprogs.Flap_damping.program "import" in
  check_bool "flap_damping import effectful" true fd.Xbgp.Xprog.effectful;
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "flap_damping import reads map 0" (Some [ 0 ]) fd.Xbgp.Xprog.map_reads;
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "flap_damping import writes map 0" (Some [ 0 ]) fd.Xbgp.Xprog.map_writes;
  let rr = summary_of Xprogs.Route_reflector.program "import" in
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "rr import touches no maps" (Some []) rr.Xbgp.Xprog.map_writes

(* --- batched NLRI processing ≡ sequential ------------------------ *)

(* a table whose prefixes share attribute records in groups, so the
   upstream's flush emits genuine multi-prefix UPDATEs *)
let grouped_routes ~groups ~per_group =
  List.concat
    (List.init groups (fun g ->
         let attrs =
           Bgp.Attr.
             [
               v (Origin Igp);
               v (As_path [ Seq [ 65100 + g; 65200 ] ]);
               v (Next_hop 0x0A000001);
               v (Communities [ 0x00640000 + g ]);
             ]
         in
         List.init per_group (fun i ->
             {
               Dataset.Ris_gen.prefix =
                 Bgp.Prefix.v (0x0B000000 + (((g * per_group) + i) lsl 8)) 24;
               attrs;
             })))

let dut_state tb =
  ( Scenario.Daemon.loc_snapshot tb.Scenario.Testbed.dut,
    Frrouting.Bgpd.loc_snapshot tb.Scenario.Testbed.downstream )

let run_mode mode routes =
  let tb = Scenario.Testbed.create mode in
  Scenario.Testbed.establish tb;
  Scenario.Testbed.feed tb routes;
  check_bool "table converged" true
    (Scenario.Testbed.run_until_downstream_has tb (List.length routes));
  (* the batching scenario must actually see multi-prefix UPDATEs *)
  check_bool "multi-prefix UPDATEs reached the DUT" true
    (Scenario.Daemon.updates_rx tb.Scenario.Testbed.dut < List.length routes);
  dut_state tb

let snap =
  Alcotest.testable
    (fun ppf s ->
      Fmt.pf ppf "%d prefixes, hash %d" (List.length s) (Hashtbl.hash s))
    ( = )

let batch_vs_sequential ~host ~mk_mode () =
  let routes = grouped_routes ~groups:4 ~per_group:8 in
  let batched = run_mode (mk_mode ~host ~batch:true) routes in
  let sequential = run_mode (mk_mode ~host ~batch:false) routes in
  check (Alcotest.pair snap snap) "batched = sequential state" sequential
    batched

(* route reflection: the chain is batch-invariant, so the batched run
   exercises the shared-verdict fast path *)
let rr_mode ~host ~batch =
  Scenario.Testbed.mode ~host ~ibgp:true
    ~manifest:Xprogs.Route_reflector.manifest ~batch_updates:batch ()

(* origin validation reads the prefix: the batched run must detect the
   variance and fall back to per-prefix dispatch, same final state *)
let ov_mode roas ~host ~batch =
  Scenario.Testbed.mode ~host ~ibgp:false
    ~manifest:Xprogs.Origin_validation.manifest
    ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
    ~batch_updates:batch ()

let test_batch_ov ~host () =
  let routes = grouped_routes ~groups:4 ~per_group:8 in
  let roas =
    Dataset.Ris_gen.roas_for ~seed:11 ~valid_pct:50 ~invalid_pct:25 routes
  in
  let batched = run_mode (ov_mode roas ~host ~batch:true) routes in
  let sequential = run_mode (ov_mode roas ~host ~batch:false) routes in
  check (Alcotest.pair snap snap) "batched = sequential state" sequential
    batched

(* rate_limit writes its window map once per prefix: the batch gate must
   force per-prefix dispatch, leaving routing state AND final map state
   identical to the sequential run. The window (5) is smaller than each
   multi-prefix UPDATE (8 prefixes), so the map chain demonstrably bites:
   only 5 prefixes of each UPDATE survive. *)
let test_batch_map_chain ~host () =
  let routes = grouped_routes ~groups:4 ~per_group:8 in
  let admitted = 4 * 5 in
  let run ~batch =
    let tb =
      Scenario.Testbed.create
        (Scenario.Testbed.mode ~host ~ibgp:false
           ~manifest:Xprogs.Rate_limit.manifest
           ~xtras:[ ("rate_limit", Xprogs.Util.encode_u32 5) ]
           ~batch_updates:batch ())
    in
    Scenario.Testbed.establish tb;
    Scenario.Testbed.feed tb routes;
    check_bool "admitted prefixes converged" true
      (Scenario.Testbed.run_until_downstream_has tb admitted);
    check_bool "multi-prefix UPDATEs reached the DUT" true
      (Scenario.Daemon.updates_rx tb.Scenario.Testbed.dut
      < List.length routes);
    let maps =
      match tb.Scenario.Testbed.dut_vmm with
      | Some vmm -> Xbgp.Vmm.map_state vmm
      | None -> []
    in
    (dut_state tb, maps)
  in
  let (b_state, b_maps) = run ~batch:true in
  let (s_state, s_maps) = run ~batch:false in
  check (Alcotest.pair snap snap) "batched = sequential routing state"
    s_state b_state;
  check_bool "final map state non-empty" true (b_maps <> []);
  check_bool "batched = sequential map state" true (b_maps = s_maps)

(* --- differential oracle under forced cache settings ------------- *)

(* the same seed-pinned campaign must be clean with the conversion
   caches forced on and forced off: the cache can never change the
   xBGP-visible state either host exposes *)
let test_oracle_caches () =
  let campaign ~caches =
    Frrouting.Attr_intern.set_conversion_cache caches;
    Bird.Eattr.set_conversion_cache caches;
    Fun.protect
      ~finally:(fun () ->
        Frrouting.Attr_intern.set_conversion_cache true;
        Bird.Eattr.set_conversion_cache true)
      (fun () -> Fuzz.Engine.campaign ~seed:21 ~cases:25 ())
  in
  let on = campaign ~caches:true in
  check_int "caches on: no divergences" 0 (List.length on.Fuzz.Engine.results);
  let off = campaign ~caches:false in
  check_int "caches off: no divergences" 0
    (List.length off.Fuzz.Engine.results)

(* --- span sampling ----------------------------------------------- *)

let test_span_sampling () =
  let runs = 64 and n = 8 in
  let spans_with sampling =
    let tele = Telemetry.create ~enabled:true () in
    Telemetry.set_span_sampling tele sampling;
    let vmm =
      Xprogs.Registry.vmm_of_manifest ~telemetry:tele ~host:"test"
        Xprogs.Route_reflector.manifest
    in
    let pi =
      {
        Xbgp.Host_intf.peer_type = Xbgp.Api.ibgp_session;
        peer_as = 65000;
        peer_router_id = 0x0A000001;
        peer_addr = 0x0A000001;
        local_as = 65000;
        local_router_id = 0x0A000002;
        cluster_id = 0x0A000002;
        rr_client = true;
      }
    in
    let ops =
      {
        Xbgp.Host_intf.null_ops with
        peer_info = (fun () -> Some pi);
        get_attr = (fun _ -> None);
      }
    in
    let args = Xbgp.Host_intf.Args.create () in
    Telemetry.reset_spans tele;
    let before =
      Telemetry.counter_value tele ~name:"xbgp_runs_total" ~labels:[]
    in
    for _ = 1 to runs do
      ignore
        (Xbgp.Vmm.run vmm Xbgp.Api.Bgp_inbound_filter ~ops ~args
           ~default:(fun () -> 0L))
    done;
    (Xbgp.Vmm.stats vmm, List.length (Telemetry.spans tele), before)
  in
  let stats_full, spans_full, _ = spans_with 1 in
  check_int "counters exact (full)" runs stats_full.Xbgp.Vmm.runs;
  check_bool "every dispatch spanned" true (spans_full >= runs);
  let stats_sampled, spans_sampled, _ = spans_with n in
  check_int "counters exact (sampled)" runs stats_sampled.Xbgp.Vmm.runs;
  check_bool
    (Printf.sprintf "1-in-%d sampling recorded %d spans" n spans_sampled)
    true
    (spans_sampled > 0 && spans_sampled <= (runs / n) + n)

let () =
  Alcotest.run "dispatch"
    [
      ( "conversion-cache",
        [
          qc prop_frr_cache_equiv;
          qc prop_bird_cache_equiv;
          Alcotest.test_case "memo engages" `Quick test_cache_hits;
        ] );
      ( "batch-invariance",
        [
          Alcotest.test_case "chain analysis" `Quick test_batch_invariant;
          Alcotest.test_case "bytecode summaries" `Quick
            test_dispatch_summary;
        ] );
      ( "batched-updates",
        [
          Alcotest.test_case "rr frr" `Quick
            (batch_vs_sequential ~host:`Frr ~mk_mode:rr_mode);
          Alcotest.test_case "rr bird" `Quick
            (batch_vs_sequential ~host:`Bird ~mk_mode:rr_mode);
          Alcotest.test_case "ov frr" `Quick (test_batch_ov ~host:`Frr);
          Alcotest.test_case "ov bird" `Quick (test_batch_ov ~host:`Bird);
          Alcotest.test_case "map chain frr" `Quick
            (test_batch_map_chain ~host:`Frr);
          Alcotest.test_case "map chain bird" `Quick
            (test_batch_map_chain ~host:`Bird);
        ] );
      ( "fuzz-oracle",
        [
          Alcotest.test_case "caches forced on/off" `Slow test_oracle_caches;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "span sampling" `Quick test_span_sampling ] );
    ]
