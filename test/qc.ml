(* Deterministic QCheck harness shared by every test executable.

   QCheck_alcotest's default self-initializes its random state, so a
   property that fails on one run may pass on the next — useless for CI
   triage. Every property test therefore runs from a fixed seed,
   overridable with the QCHECK_SEED environment variable, and the seed
   is printed when a property fails so the exact run can be repeated:

     QCHECK_SEED=12345 dune exec test/test_bgp.exe *)

let default_seed = 414243 (* arbitrary but fixed *)

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None ->
      Printf.eprintf "QCHECK_SEED=%S is not an integer; using default %d\n%!"
        s default_seed;
      default_seed)
  | None -> default_seed

(** Drop-in replacement for [QCheck_alcotest.to_alcotest]: same alcotest
    case triple, but seeded from {!seed} and announcing the seed when
    the property fails. *)
let to_alcotest cell =
  let rand = Random.State.make [| seed |] in
  let name, speed, run = QCheck_alcotest.to_alcotest ~rand cell in
  let run switch =
    try run switch
    with e ->
      Printf.eprintf
        "\n[qcheck] property %S failed under seed %d — rerun with \
         QCHECK_SEED=%d\n%!"
        name seed seed;
      raise e
  in
  (name, speed, run)
